module CT = Clustered_pt.Table
module HT = Baselines.Hashed_pt

type table = Clustered of CT.t | Hashed of HT.t

let org = function Clustered _ -> "clustered" | Hashed _ -> "hashed"

type finding = { code : string; detail : string }

type report = { r_org : string; findings : finding list }

let finding_of_c v =
  {
    code = CT.violation_code v;
    detail = Format.asprintf "%a" CT.pp_violation v;
  }

let finding_of_h v =
  {
    code = HT.violation_code v;
    detail = Format.asprintf "%a" HT.pp_violation v;
  }

let check t =
  match t with
  | Clustered c ->
      { r_org = org t; findings = List.map finding_of_c (CT.check c) }
  | Hashed h -> { r_org = org t; findings = List.map finding_of_h (HT.check h) }

let clean r = r.findings = []

type repair_outcome = { pre : report; kept : int; dropped : int }

let repair t =
  match t with
  | Clustered c ->
      let r = CT.repair c in
      {
        pre =
          {
            r_org = org t;
            findings = List.map finding_of_c r.CT.violations;
          };
        kept = r.CT.kept;
        dropped = r.CT.dropped;
      }
  | Hashed h ->
      let r = HT.repair h in
      {
        pre =
          {
            r_org = org t;
            findings = List.map finding_of_h r.HT.violations;
          };
        kept = r.HT.kept;
        dropped = r.HT.dropped;
      }

(* An arbitrary in-range page for the planted torn word; any vpn works
   because the injector creates the node it tears. *)
let torn_vpn = 42L

let clustered_kinds =
  [
    ("cycle", CT.C_cycle);
    ("cross_link", CT.C_cross_link);
    ("misplace", CT.C_misplace);
    ("duplicate", CT.C_duplicate);
    ("stale", CT.C_stale);
    ("torn", CT.C_torn torn_vpn);
    ("torn_replica", CT.C_torn_replica);
    ("head_tag", CT.C_head_tag);
    ("count", CT.C_count);
    ("free_reattach", CT.C_free_reattach);
    ("overlap", CT.C_overlap);
  ]

let hashed_kinds =
  [
    ("cycle", HT.C_cycle);
    ("cross_link", HT.C_cross_link);
    ("misplace", HT.C_misplace);
    ("duplicate", HT.C_duplicate);
    ("torn", HT.C_torn torn_vpn);
    ("count", HT.C_count);
  ]

let corruption_kinds = function
  | Clustered _ -> List.map fst clustered_kinds
  | Hashed _ -> List.map fst hashed_kinds

let corrupt_by_name t name =
  match t with
  | Clustered c -> (
      match List.assoc_opt name clustered_kinds with
      | Some k -> CT.corrupt c k
      | None -> false)
  | Hashed h -> (
      match List.assoc_opt name hashed_kinds with
      | Some k -> HT.corrupt h k
      | None -> false)

(* --- cross-replica agreement (NUMA replication) --- *)

(* Enumerate the live base-table mapping set by walking every fine
   chain through the table's own lookup path: tags name the resident
   blocks (clustered: VPBNs, possibly several nodes per block; hashed:
   VPNs), and [lookup_block] / [lookup] resolve what each tag actually
   maps.  Limbo nodes are unlinked from the chains, so a quiescent
   enumeration never sees a retired mapping. *)
let live_mappings t =
  let out = ref [] in
  (match t with
  | Clustered c ->
      let factor = (CT.config c).Clustered_pt.Config.subblock_factor in
      let seen = Hashtbl.create 1024 in
      for b = 0 to CT.buckets c - 1 do
        CT.iter_chain_tags c ~bucket:b (fun vpbn ->
            if not (Hashtbl.mem seen vpbn) then begin
              Hashtbl.add seen vpbn ();
              let base = Int64.mul vpbn (Int64.of_int factor) in
              let entries, _walk =
                CT.lookup_block c ~vpn:base ~subblock_factor:factor
              in
              List.iter
                (fun (boff, (tr : Pt_common.Types.translation)) ->
                  let vpn = Int64.add base (Int64.of_int boff) in
                  out :=
                    (vpn, tr.Pt_common.Types.ppn, tr.Pt_common.Types.attr)
                    :: !out)
                entries
            end)
      done
  | Hashed h ->
      for b = 0 to HT.buckets h - 1 do
        HT.iter_chain_tags h ~bucket:b (fun vpn ->
            match HT.lookup h ~vpn with
            | Some tr, _ ->
                out :=
                  (vpn, tr.Pt_common.Types.ppn, tr.Pt_common.Types.attr)
                  :: !out
            | None, _ -> ())
      done);
  List.sort_uniq compare !out

let check_replicas ?generations tables =
  if Array.length tables = 0 then
    invalid_arg "Fsck.check_replicas: need at least one replica";
  let r_org = org tables.(0) in
  let findings = ref [] in
  let add code detail = findings := { code; detail } :: !findings in
  let primary = live_mappings tables.(0) in
  for r = 1 to Array.length tables - 1 do
    if org tables.(r) <> r_org then
      add "replica_org"
        (Printf.sprintf "replica %d is %s, primary is %s" r (org tables.(r))
           r_org)
    else begin
      (* merge-walk two vpn-sorted mapping lists *)
      let rec go p l =
        match (p, l) with
        | [], [] -> ()
        | (vpn, _, _) :: p', [] ->
            add "replica_divergence"
              (Printf.sprintf "replica %d: vpn 0x%Lx missing" r vpn);
            go p' []
        | [], (vpn, _, _) :: l' ->
            add "replica_divergence"
              (Printf.sprintf "replica %d: vpn 0x%Lx extra" r vpn);
            go [] l'
        | ((pv, pp, pa) as ph) :: p', ((lv, lp, la) as lh) :: l' ->
            let c = Int64.compare pv lv in
            if c < 0 then begin
              add "replica_divergence"
                (Printf.sprintf "replica %d: vpn 0x%Lx missing" r pv);
              go p' (lh :: l')
            end
            else if c > 0 then begin
              add "replica_divergence"
                (Printf.sprintf "replica %d: vpn 0x%Lx extra" r lv);
              go (ph :: p') l'
            end
            else begin
              if not (Int64.equal pp lp) then
                add "replica_divergence"
                  (Printf.sprintf
                     "replica %d: vpn 0x%Lx maps ppn 0x%Lx, primary has \
                      0x%Lx"
                     r lv lp pp)
              else if not (Pte.Attr.equal pa la) then
                add "replica_divergence"
                  (Printf.sprintf "replica %d: vpn 0x%Lx attr differs" r lv);
              go p' l'
            end
      in
      go primary (live_mappings tables.(r))
    end
  done;
  (match generations with
  | None -> ()
  | Some gens ->
      let g0 = gens.(0) in
      for r = 1 to Array.length gens - 1 do
        let gr = gens.(r) in
        if Array.length gr <> Array.length g0 then
          add "replica_generation"
            (Printf.sprintf "replica %d: %d buckets of generations, primary \
                             has %d"
               r (Array.length gr) (Array.length g0))
        else
          Array.iteri
            (fun b v ->
              if v <> g0.(b) then
                add "replica_generation"
                  (Printf.sprintf
                     "bucket %d: replica %d at generation %d, primary at %d" b
                     r v g0.(b)))
            gr
      done);
  { r_org; findings = List.rev !findings }

(* Cross-shard ASID disjointness (the fleet layer's invariant): tenant
   address spaces are dealt over shards by ASID, so a live ASID must
   be resident in exactly one shard — and, when the caller supplies
   the placement function, in exactly the shard it was dealt to. *)
let check_shards ?(asid_shift = 50) ?expected_shard tables =
  if Array.length tables = 0 then
    invalid_arg "Fsck.check_shards: need at least one shard";
  let r_org = org tables.(0) in
  let findings = ref [] in
  let add code detail = findings := { code; detail } :: !findings in
  let owner : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun s t ->
      (* live_mappings is vpn-sorted and the ASID occupies the top
         bits, so equal ASIDs form runs — dedup by peeking at the last
         one collected *)
      let seen = ref [] in
      List.iter
        (fun (vpn, _, _) ->
          let asid = Int64.to_int (Int64.shift_right_logical vpn asid_shift) in
          match !seen with
          | a :: _ when a = asid -> ()
          | _ -> seen := asid :: !seen)
        (live_mappings t);
      List.iter
        (fun asid ->
          (match Hashtbl.find_opt owner asid with
          | Some s0 when s0 <> s ->
              add "asid_overlap"
                (Printf.sprintf "asid %d live in shards %d and %d" asid s0 s)
          | Some _ -> ()
          | None -> Hashtbl.replace owner asid s);
          match expected_shard with
          | Some f when f asid <> s ->
              add "asid_misplaced"
                (Printf.sprintf "asid %d lives in shard %d, expected shard %d"
                   asid s (f asid))
          | _ -> ())
        (List.rev !seen))
    tables;
  { r_org; findings = List.rev !findings }

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_to_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"org\":\"%s\",\"clean\":%b,\"findings\":["
       (json_escape r.r_org) (clean r));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"code\":\"%s\",\"detail\":\"%s\"}"
           (json_escape f.code) (json_escape f.detail)))
    r.findings;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_report ppf r =
  if clean r then Format.fprintf ppf "%s: clean" r.r_org
  else begin
    Format.fprintf ppf "%s: %d finding(s)@," r.r_org (List.length r.findings);
    List.iter
      (fun f -> Format.fprintf ppf "  [%s] %s@," f.code f.detail)
      r.findings
  end
