module CT = Clustered_pt.Table
module HT = Baselines.Hashed_pt

type table = Clustered of CT.t | Hashed of HT.t

let org = function Clustered _ -> "clustered" | Hashed _ -> "hashed"

type finding = { code : string; detail : string }

type report = { r_org : string; findings : finding list }

let finding_of_c v =
  {
    code = CT.violation_code v;
    detail = Format.asprintf "%a" CT.pp_violation v;
  }

let finding_of_h v =
  {
    code = HT.violation_code v;
    detail = Format.asprintf "%a" HT.pp_violation v;
  }

let check t =
  match t with
  | Clustered c ->
      { r_org = org t; findings = List.map finding_of_c (CT.check c) }
  | Hashed h -> { r_org = org t; findings = List.map finding_of_h (HT.check h) }

let clean r = r.findings = []

type repair_outcome = { pre : report; kept : int; dropped : int }

let repair t =
  match t with
  | Clustered c ->
      let r = CT.repair c in
      {
        pre =
          {
            r_org = org t;
            findings = List.map finding_of_c r.CT.violations;
          };
        kept = r.CT.kept;
        dropped = r.CT.dropped;
      }
  | Hashed h ->
      let r = HT.repair h in
      {
        pre =
          {
            r_org = org t;
            findings = List.map finding_of_h r.HT.violations;
          };
        kept = r.HT.kept;
        dropped = r.HT.dropped;
      }

(* An arbitrary in-range page for the planted torn word; any vpn works
   because the injector creates the node it tears. *)
let torn_vpn = 42L

let clustered_kinds =
  [
    ("cycle", CT.C_cycle);
    ("cross_link", CT.C_cross_link);
    ("misplace", CT.C_misplace);
    ("duplicate", CT.C_duplicate);
    ("stale", CT.C_stale);
    ("torn", CT.C_torn torn_vpn);
    ("torn_replica", CT.C_torn_replica);
    ("head_tag", CT.C_head_tag);
    ("count", CT.C_count);
    ("free_reattach", CT.C_free_reattach);
    ("overlap", CT.C_overlap);
  ]

let hashed_kinds =
  [
    ("cycle", HT.C_cycle);
    ("cross_link", HT.C_cross_link);
    ("misplace", HT.C_misplace);
    ("duplicate", HT.C_duplicate);
    ("torn", HT.C_torn torn_vpn);
    ("count", HT.C_count);
  ]

let corruption_kinds = function
  | Clustered _ -> List.map fst clustered_kinds
  | Hashed _ -> List.map fst hashed_kinds

let corrupt_by_name t name =
  match t with
  | Clustered c -> (
      match List.assoc_opt name clustered_kinds with
      | Some k -> CT.corrupt c k
      | None -> false)
  | Hashed h -> (
      match List.assoc_opt name hashed_kinds with
      | Some k -> HT.corrupt h k
      | None -> false)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_to_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"org\":\"%s\",\"clean\":%b,\"findings\":["
       (json_escape r.r_org) (clean r));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"code\":\"%s\",\"detail\":\"%s\"}"
           (json_escape f.code) (json_escape f.detail)))
    r.findings;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_report ppf r =
  if clean r then Format.fprintf ppf "%s: clean" r.r_org
  else begin
    Format.fprintf ppf "%s: %d finding(s)@," r.r_org (List.length r.findings);
    List.iter
      (fun f -> Format.fprintf ppf "  [%s] %s@," f.code f.detail)
      r.findings
  end
