(** Unified page-table integrity front-end (fsck) over both
    organizations.

    Wraps {!Clustered_pt.Table.check} / {!Baselines.Hashed_pt.check}
    behind one machine-readable report: each violation becomes a
    [finding] with a stable [code] shared across organizations
    (["chain_cycle"], ["bad_word"], ["coverage_overlap"], ...), so the
    CLI, CI gate and tests compare findings without caring which table
    produced them.  Checks run at quiescence — no concurrent
    mutators. *)

type table =
  | Clustered of Clustered_pt.Table.t
  | Hashed of Baselines.Hashed_pt.t

val org : table -> string
(** ["clustered"] or ["hashed"]. *)

type finding = { code : string; detail : string }

type report = { r_org : string; findings : finding list }

val check : table -> report
(** Findings in the underlying checker's deterministic order. *)

val clean : report -> bool

type repair_outcome = {
  pre : report;  (** what the integrity check found before repair *)
  kept : int;  (** PTE entries reinserted *)
  dropped : int;  (** corrupted or conflicting entries discarded *)
}

val repair : table -> repair_outcome
(** Rebuild in place from surviving mappings; afterwards {!check}
    reports clean. *)

val corruption_kinds : table -> string list
(** The corruption classes injectable into this organization — the
    matrix the no-false-negatives test walks.  Every name here, applied
    through {!corrupt_by_name}, must make {!check} report at least one
    finding. *)

val corrupt_by_name : table -> string -> bool
(** Inject one corruption by class name.  False when the name is
    unknown for this organization or the table has no applicable site
    (e.g. ["torn_replica"] with no multi-block superpage present). *)

(** {2 Cross-replica agreement (NUMA replication)}

    A NUMA-replicated table keeps one structurally independent replica
    of the same logical mapping set per node.  Beyond each replica's
    own structural {!check}, the replicated layer must prove the
    replicas {e agree}: same live (vpn → pte) set everywhere (the
    analogue of the clustered checker's multi-block superpage replica
    consistency, lifted from nodes within one table to whole tables),
    and — when the caller versions buckets — the same per-bucket
    generation on every replica. *)

val live_mappings : table -> (int64 * int64 * Pte.Attr.t) list
(** The live base-table mapping set [(vpn, ppn, attr)], sorted by vpn,
    enumerated through the table's own chains and lookup path.  Run at
    quiescence. *)

val check_replicas : ?generations:int array array -> table array -> report
(** Compare every replica's live mapping set against replica 0
    (finding code ["replica_divergence"]: a vpn missing, extra, or
    mapped differently) and, with [?generations], every replica's
    per-bucket generation row against row 0 (["replica_generation"]).
    Mixed organizations report ["replica_org"].  Clean when the
    replicas are exact copies.  Raises [Invalid_argument] on an empty
    array. *)

val check_shards :
  ?asid_shift:int -> ?expected_shard:(int -> int) -> table array -> report
(** Cross-shard ASID disjointness for a fleet of sharded tables: the
    ASID of every live mapping is its vpn shifted right by
    [asid_shift] (default 50, the fleet key layout), and an ASID live
    in two shards reports ["asid_overlap"].  With [?expected_shard],
    an ASID resident outside the shard the placement function assigns
    reports ["asid_misplaced"].  Clean when tenants are disjoint (and
    correctly placed).  Raises [Invalid_argument] on an empty
    array. *)

val report_to_json : report -> string
(** [{"org":...,"clean":...,"findings":[{"code":...,"detail":...}]}] —
    deterministic for a deterministic table state. *)

val pp_report : Format.formatter -> report -> unit
