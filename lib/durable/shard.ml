(* A crash-consistent shard: Service + WAL + checkpoints.

   Ordering discipline (the whole point): LOG, THEN MUTATE.  An op
   that crashes before or during its append was never acknowledged
   and left no complete record — recovery cannot resurrect any part
   of it.  An op whose append completed is durable: replay re-applies
   it even if the process died before the table mutation finished
   (replay is idempotent — insert overwrites, remove of absent is a
   no-op, protect skips unmapped pages).

   A checkpoint is the checksummed serialization of the table's live
   mapping set (Fsck.live_mappings — the logical equivalent of
   snapshotting every bucket image) taken at a WAL offset; compaction
   drops records below the newest complete checkpoint only, so a torn
   checkpoint always leaves its fallback (an older complete one, or
   the empty table) reachable through a longer suffix. *)

module Service = Pt_service.Service

exception Down

type checkpoint = { c_offset : int; c_blob : Bytes.t }

type t = {
  org : Service.org;
  locking : Service.locking;
  buckets : int;
  subblock_factor : int option;
  ppn_of : int64 -> int64;
  attr : Pte.Attr.t;
  wal : Wal.t;
  mutable svc : Service.t;
  mutable is_up : bool;
  mutable checkpoints : checkpoint list;  (* newest first *)
  mutable crash_next_checkpoint : bool;
  mutable crash_in_recovery : int option;
  mutable n_checkpoints : int;
  mutable n_torn_checkpoints : int;
  mutable n_recovery_attempts : int;
  mutable n_recoveries : int;
  mutable n_recovery_crashes : int;
  mutable n_replayed : int;
  mutable n_restored : int;
  mutable n_discarded : int;
}

let bump name = Obs.Metrics.incr (Obs.Ambient.counter name)

let badd name n = if n > 0 then Obs.Metrics.add (Obs.Ambient.counter name) n

let create ?(buckets = 4096) ?subblock_factor ?(attr = Pte.Attr.default) ~org
    ~locking ~ppn_of () =
  {
    org;
    locking;
    buckets;
    subblock_factor;
    ppn_of;
    attr;
    wal = Wal.create ();
    svc = Service.create ~buckets ?subblock_factor ~org ~locking ();
    is_up = true;
    checkpoints = [];
    crash_next_checkpoint = false;
    crash_in_recovery = None;
    n_checkpoints = 0;
    n_torn_checkpoints = 0;
    n_recovery_attempts = 0;
    n_recoveries = 0;
    n_recovery_crashes = 0;
    n_replayed = 0;
    n_restored = 0;
    n_discarded = 0;
  }

let service t = t.svc

let wal t = t.wal

let up t = t.is_up

let checkpoints t = t.n_checkpoints

let torn_checkpoints t = t.n_torn_checkpoints

let recovery_attempts t = t.n_recovery_attempts

let recoveries t = t.n_recoveries

let recovery_crashes t = t.n_recovery_crashes

let replayed_records t = t.n_replayed

let restored_mappings t = t.n_restored

let checkpoints_discarded t = t.n_discarded

let region ~vpn ~pages = Addr.Region.make ~first_vpn:vpn ~pages

let apply t svc (op : Wal.op) =
  match op with
  | Wal.Map { vpn; pages; _ } ->
      Service.map_range svc (region ~vpn ~pages) ~ppn_of:t.ppn_of ~attr:t.attr
  | Wal.Unmap { vpn; pages; _ } -> Service.unmap_range svc (region ~vpn ~pages)
  | Wal.Protect { vpn; pages; writable; _ } ->
      Service.protect_range svc (region ~vpn ~pages) ~writable

(* --- the write path: log, then mutate --- *)

let submit t op =
  if not t.is_up then raise Down;
  (try
     Fault.fire Fault.Shard_crash;
     Wal.append t.wal op
   with Fault.Injected { site = Fault.Shard_crash; _ } as e ->
     t.is_up <- false;
     bump "wal.crashes";
     raise e);
  bump "wal.records";
  apply t t.svc op

let map t ~asid (r : Addr.Region.t) =
  submit t
    (Wal.Map { asid; vpn = r.Addr.Region.first_vpn; pages = r.Addr.Region.pages })

let unmap t ~asid (r : Addr.Region.t) =
  submit t
    (Wal.Unmap
       { asid; vpn = r.Addr.Region.first_vpn; pages = r.Addr.Region.pages })

let protect t ~asid (r : Addr.Region.t) ~writable =
  submit t
    (Wal.Protect
       {
         asid;
         vpn = r.Addr.Region.first_vpn;
         pages = r.Addr.Region.pages;
         writable;
       })

(* --- checkpoints --- *)

let live t = Fsck.live_mappings (Service.fsck_table t.svc)

let entry_bytes = 24

let encode_checkpoint maps =
  let n = List.length maps in
  let b = Bytes.create (4 + (entry_bytes * n) + 8) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  List.iteri
    (fun i (vpn, ppn, attr) ->
      let off = 4 + (entry_bytes * i) in
      Bytes.set_int64_le b off vpn;
      Bytes.set_int64_le b (off + 8) ppn;
      Bytes.set_int64_le b (off + 16) (Pte.Attr.to_bits attr))
    maps;
  let h = ref (Addr.Bits.mix64 (Int64.of_int n)) in
  for i = 0 to (entry_bytes * n / 8) - 1 do
    h := Addr.Bits.mix64 (Int64.add !h (Bytes.get_int64_le b (4 + (8 * i))))
  done;
  Bytes.set_int64_le b (4 + (entry_bytes * n)) !h;
  b

let decode_checkpoint b =
  let len = Bytes.length b in
  if len < 4 + 8 then None
  else
    let n = Int32.to_int (Bytes.get_int32_le b 0) in
    if n < 0 || len <> 4 + (entry_bytes * n) + 8 then None
    else begin
      let h = ref (Addr.Bits.mix64 (Int64.of_int n)) in
      for i = 0 to (entry_bytes * n / 8) - 1 do
        h := Addr.Bits.mix64 (Int64.add !h (Bytes.get_int64_le b (4 + (8 * i))))
      done;
      if not (Int64.equal !h (Bytes.get_int64_le b (4 + (entry_bytes * n)))) then
        None
      else
        Some
          (List.init n (fun i ->
               let off = 4 + (entry_bytes * i) in
               ( Bytes.get_int64_le b off,
                 Bytes.get_int64_le b (off + 8),
                 Pte.Attr.of_bits (Bytes.get_int64_le b (off + 16)) )))
    end

let plan_checkpoint_crash t = t.crash_next_checkpoint <- true

let checkpoint t =
  if not t.is_up then invalid_arg "Durable.Shard.checkpoint: shard is down";
  let off = Wal.length t.wal in
  let blob = encode_checkpoint (live t) in
  if t.crash_next_checkpoint then begin
    (* die halfway through flushing the snapshot: a torn blob whose
       checksum cannot verify, and — critically — no compaction, so
       the fallback (previous checkpoint + longer suffix) survives *)
    t.crash_next_checkpoint <- false;
    let torn = Bytes.sub blob 0 (Bytes.length blob / 2) in
    t.checkpoints <- { c_offset = off; c_blob = torn } :: t.checkpoints;
    t.n_torn_checkpoints <- t.n_torn_checkpoints + 1;
    t.is_up <- false;
    bump "wal.torn_checkpoints";
    raise (Fault.Injected { site = Fault.Shard_crash; key = off })
  end;
  t.n_checkpoints <- t.n_checkpoints + 1;
  bump "wal.checkpoints";
  Wal.compact t.wal ~upto:off;
  (* records below [off] are gone: older checkpoints can no longer be
     replayed forward from, so only the new one is worth keeping *)
  t.checkpoints <- [ { c_offset = off; c_blob = blob } ]

(* --- recovery --- *)

let plan_recovery_crash t ~after_records =
  t.crash_in_recovery <- Some after_records

let recover t =
  t.n_recovery_attempts <- t.n_recovery_attempts + 1;
  bump "recovery.attempts";
  (* recovery must not inject new faults into itself *)
  Fault.suspended (fun () ->
      let rec pick discarded = function
        | [] -> (None, discarded)
        | c :: rest -> (
            match decode_checkpoint c.c_blob with
            | Some maps -> (Some (c, maps), discarded)
            | None -> pick (discarded + 1) rest)
      in
      let picked, discarded = pick 0 t.checkpoints in
      t.n_discarded <- t.n_discarded + discarded;
      badd "recovery.checkpoints_discarded" discarded;
      let maps, from =
        match picked with
        | Some (c, maps) -> (maps, c.c_offset)
        | None -> ([], Wal.base t.wal)
      in
      let ops, truncated = Wal.scan t.wal ~from in
      badd "recovery.truncated_bytes" truncated;
      let svc =
        Service.create ~buckets:t.buckets ?subblock_factor:t.subblock_factor
          ~org:t.org ~locking:t.locking ()
      in
      List.iter (fun (vpn, ppn, attr) -> Service.insert svc ~vpn ~ppn ~attr) maps;
      t.n_restored <- t.n_restored + List.length maps;
      badd "recovery.restored_mappings" (List.length maps);
      let n = ref 0 in
      List.iter
        (fun op ->
          (match t.crash_in_recovery with
          | Some k when !n >= k ->
              (* crash mid-replay: the half-built table is discarded,
                 the WAL (tail already truncated — idempotent) stays
                 readable, and the shard stays down *)
              t.crash_in_recovery <- None;
              t.n_recovery_crashes <- t.n_recovery_crashes + 1;
              bump "recovery.crashes";
              raise (Fault.Injected { site = Fault.Shard_crash; key = !n })
          | _ -> ());
          ignore (apply t svc op);
          incr n;
          t.n_replayed <- t.n_replayed + 1;
          bump "recovery.replayed_records")
        ops;
      t.crash_in_recovery <- None;
      t.svc <- svc;
      t.is_up <- true;
      (* keep only the checkpoint recovery proved usable — torn ones
         above it are dead weight now *)
      (match picked with
      | Some (c, _) -> t.checkpoints <- [ c ]
      | None -> t.checkpoints <- []);
      t.n_recoveries <- t.n_recoveries + 1;
      bump "recovery.completed")
