(* Per-shard write-ahead log over an in-memory "disk" model.

   Layout of one record (all little-endian):

     +0   u32  payload length (always 16; anything else = torn/garbage)
     +4   u8   kind (0 map, 1 unmap, 2 protect)
     +5   u8   prot (bit 0: writable — meaningful for protect)
     +6   u16  asid
     +8   u32  pages
     +12  u64  vpn (first page of the region, shard-tagged)
     +20  u64  checksum: mix64 chain over the length and the two
               payload words

   The checksum chain reuses Addr.Bits.mix64 (the fault plan's
   SplitMix64 finalizer): one finalizer per mixed-in word gives full
   avalanche, so a record torn at any byte fails verification.  A
   record is one LOGICAL op — a batched range op is one record — which
   is what makes torn-tail truncation atomic at op granularity.

   Offsets are absolute: [base] is the absolute offset of buf.(0),
   advanced by compaction, so checkpoint positions and planned crash
   offsets name stable points in history. *)

type op =
  | Map of { asid : int; vpn : int64; pages : int }
  | Unmap of { asid : int; vpn : int64; pages : int }
  | Protect of { asid : int; vpn : int64; pages : int; writable : bool }

let payload_bytes = 16

let record_bytes = 4 + payload_bytes + 8

type t = {
  mutable buf : Bytes.t;
  mutable len : int;  (* live bytes in [buf] *)
  mutable base : int;  (* absolute offset of buf.(0) *)
  mutable records : int;
  mutable crash_at : int option;  (* absolute offset *)
  mutable crashes : int;
  mutable torn_truncations : int;
  mutable truncated_bytes : int;
  mutable compactions : int;
}

let create () =
  {
    buf = Bytes.create 4096;
    len = 0;
    base = 0;
    records = 0;
    crash_at = None;
    crashes = 0;
    torn_truncations = 0;
    truncated_bytes = 0;
    compactions = 0;
  }

let length t = t.base + t.len

let base t = t.base

let records t = t.records

let crashes t = t.crashes

let torn_truncations t = t.torn_truncations

let truncated_bytes t = t.truncated_bytes

let compactions t = t.compactions

let plan_crash t ~at =
  if at < 0 then invalid_arg "Wal.plan_crash: negative offset";
  t.crash_at <- Some at

let planned_crash t = t.crash_at

let ensure t extra =
  let need = t.len + extra in
  if need > Bytes.length t.buf then begin
    let cap = ref (Bytes.length t.buf * 2) in
    while need > !cap do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit t.buf 0 nb 0 t.len;
    t.buf <- nb
  end

let checksum b off len =
  let h = ref (Addr.Bits.mix64 (Int64.of_int len)) in
  for i = 0 to (len / 8) - 1 do
    h := Addr.Bits.mix64 (Int64.add !h (Bytes.get_int64_le b (off + (8 * i))))
  done;
  !h

let encode op =
  let b = Bytes.create record_bytes in
  let kind, prot, asid, pages, vpn =
    match op with
    | Map { asid; vpn; pages } -> (0, 0, asid, pages, vpn)
    | Unmap { asid; vpn; pages } -> (1, 0, asid, pages, vpn)
    | Protect { asid; vpn; pages; writable } ->
        (2, (if writable then 1 else 0), asid, pages, vpn)
  in
  Bytes.set_int32_le b 0 (Int32.of_int payload_bytes);
  Bytes.set_uint8 b 4 kind;
  Bytes.set_uint8 b 5 prot;
  Bytes.set_uint16_le b 6 asid;
  Bytes.set_int32_le b 8 (Int32.of_int pages);
  Bytes.set_int64_le b 12 vpn;
  Bytes.set_int64_le b (4 + payload_bytes) (checksum b 4 payload_bytes);
  b

(* [decode_at t off] (relative offset): [Some (op, next)] for a
   complete, checksum-verified record; [None] marks the torn tail. *)
let decode_at t off =
  if t.len - off < 4 then None
  else
    let plen = Int32.to_int (Bytes.get_int32_le t.buf off) in
    if plen <> payload_bytes then None
    else if t.len - off < 4 + plen + 8 then None
    else if
      not
        (Int64.equal
           (Bytes.get_int64_le t.buf (off + 4 + plen))
           (checksum t.buf (off + 4) plen))
    then None
    else
      let kind = Bytes.get_uint8 t.buf (off + 4) in
      let prot = Bytes.get_uint8 t.buf (off + 5) in
      let asid = Bytes.get_uint16_le t.buf (off + 6) in
      let pages = Int32.to_int (Bytes.get_int32_le t.buf (off + 8)) in
      let vpn = Bytes.get_int64_le t.buf (off + 12) in
      let next = off + 4 + plen + 8 in
      match kind with
      | 0 -> Some (Map { asid; vpn; pages }, next)
      | 1 -> Some (Unmap { asid; vpn; pages }, next)
      | 2 -> Some (Protect { asid; vpn; pages; writable = prot land 1 = 1 }, next)
      | _ -> None

let append t op =
  let b = encode op in
  let n = Bytes.length b in
  let abs = t.base + t.len in
  match t.crash_at with
  | Some at when at < abs + n ->
      (* the crash point falls before or inside this record: flush
         only the bytes below it (possibly none), then die.  The op
         was never durable — recovery must not resurrect any of it. *)
      let part = max 0 (at - abs) in
      ensure t part;
      Bytes.blit b 0 t.buf t.len part;
      t.len <- t.len + part;
      t.crash_at <- None;
      t.crashes <- t.crashes + 1;
      raise (Fault.Injected { site = Fault.Shard_crash; key = at })
  | _ ->
      ensure t n;
      Bytes.blit b 0 t.buf t.len n;
      t.len <- t.len + n;
      t.records <- t.records + 1

let peek t ~from =
  if from < t.base then invalid_arg "Wal.peek: offset below compaction base";
  if from > t.base + t.len then invalid_arg "Wal.peek: offset past the tail";
  let off = ref (from - t.base) in
  let ops = ref [] in
  let continue = ref true in
  while !continue do
    match decode_at t !off with
    | Some (op, next) ->
        ops := op :: !ops;
        off := next
    | None -> continue := false
  done;
  (List.rev !ops, t.len - !off)

let scan t ~from =
  let ops, torn = peek t ~from in
  if torn > 0 then begin
    t.len <- t.len - torn;
    t.torn_truncations <- t.torn_truncations + 1;
    t.truncated_bytes <- t.truncated_bytes + torn
  end;
  (ops, torn)

let compact t ~upto =
  if upto < t.base then invalid_arg "Wal.compact: offset below base";
  if upto > t.base + t.len then invalid_arg "Wal.compact: offset past the tail";
  let drop = upto - t.base in
  if drop > 0 then begin
    Bytes.blit t.buf drop t.buf 0 (t.len - drop);
    t.len <- t.len - drop;
    t.base <- upto;
    t.compactions <- t.compactions + 1
  end
