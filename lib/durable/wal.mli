(** Per-shard write-ahead log over an in-memory "disk" model.

    Every durable-shard mutation appends one checksummed,
    length-prefixed record {e before} the table mutation commits — one
    record per {e logical} op, so a batched range operation journals as
    a single atomic unit and a torn tail can never resurrect half of
    one.  The disk model is a flat byte buffer: a planned crash tears
    an append at an exact byte offset, leaving a partial record whose
    checksum cannot verify — recovery's {!scan} finds the torn tail,
    truncates it (the crash point), and returns the complete records
    for replay.

    Offsets are {e absolute} (monotonic since {!create}): {!compact}
    drops bytes older than a checkpoint but keeps their offsets
    addressable as history, so planned crash offsets and checkpoint
    positions stay stable identifiers for the whole run. *)

type op =
  | Map of { asid : int; vpn : int64; pages : int }
  | Unmap of { asid : int; vpn : int64; pages : int }
  | Protect of { asid : int; vpn : int64; pages : int; writable : bool }

type t

val create : unit -> t

val record_bytes : int
(** On-disk size of one record: a 4-byte length prefix, a fixed
    16-byte payload (kind, prot, asid, pages, vpn) and an 8-byte
    mix64-chain checksum. *)

val length : t -> int
(** Absolute byte length of the log (compacted prefix included). *)

val base : t -> int
(** Absolute offset of the oldest retained byte (0 until the first
    {!compact}). *)

val records : t -> int
(** Complete records appended since {!create}. *)

(** {2 Planned crashes} *)

val plan_crash : t -> at:int -> unit
(** Arm a crash at absolute byte offset [at]: the {!append} whose
    record covers that offset writes only the bytes below it (a torn
    record — or nothing, when [at] falls on a record boundary) and
    raises [Fault.Injected { site = Shard_crash; key = at }].  The
    plan disarms when it fires. *)

val planned_crash : t -> int option

(** {2 The write path} *)

val append : t -> op -> unit
(** Append one record.  May raise [Fault.Injected] with site
    [Shard_crash] when a planned crash offset falls inside (or before)
    this record — the partial bytes are already "on disk" and the op
    must be considered never to have happened. *)

(** {2 Recovery} *)

val peek : t -> from:int -> op list * int
(** The complete records from absolute offset [from] (a record
    boundary) to the tail, plus the torn-tail byte count — without
    modifying the log.  Raises [Invalid_argument] when [from] is below
    {!base}. *)

val scan : t -> from:int -> op list * int
(** {!peek}, then truncate the torn tail so later appends continue
    from the crash point.  Idempotent: a second scan returns the same
    records and truncates nothing. *)

val compact : t -> upto:int -> unit
(** Discard retained bytes below absolute offset [upto] (a record
    boundary at or below {!length}) — called after a checkpoint at
    that offset makes them dead weight. *)

(** {2 Accounting} *)

val crashes : t -> int
(** Planned crashes fired. *)

val torn_truncations : t -> int

val truncated_bytes : t -> int

val compactions : t -> int
