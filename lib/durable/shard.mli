(** A crash-consistent shard: a {!Pt_service.Service} fronted by a
    write-ahead log and periodic checkpoints.

    Write path: every mutation appends one checksummed {!Wal} record
    {e before} the table mutation commits, so any crash — an armed
    [Fault.Shard_crash] site or a planned torn append — loses at most
    the in-flight op, and loses it {e atomically} (a batched range op
    is one record).  A crash marks the shard down; operations on a
    down shard raise {!Down} until {!recover} rebuilds it.

    Checkpoints serialize the table's live mapping set
    ([Fsck.live_mappings], checksummed) at the current WAL offset and
    compact the log below it.  Recovery = newest checkpoint that
    verifies (torn ones are discarded — the fallback is an older
    checkpoint plus a longer WAL suffix) + replay of the WAL records
    after it onto a {e fresh} service, swapped in only on completion:
    a crash mid-replay leaves the log untouched and readable, and the
    next {!recover} converges.

    Progress is mirrored into the ambient [wal.*] / [recovery.*]
    observability counters. *)

module Service = Pt_service.Service

type t

exception Down
(** Raised by the write path while the shard is crashed. *)

val create :
  ?buckets:int ->
  ?subblock_factor:int ->
  ?attr:Pte.Attr.t ->
  org:Service.org ->
  locking:Service.locking ->
  ppn_of:(int64 -> int64) ->
  unit ->
  t
(** [ppn_of] is the placement function replay uses to rebuild PTEs
    from logged vpns; [attr] (default [Pte.Attr.default]) the
    attribute for mapped pages.  Both must be pure: a WAL record plus
    these functions must reconstruct the exact mutation. *)

val service : t -> Service.t
(** The live service.  Replaced by {!recover}. *)

val wal : t -> Wal.t

val up : t -> bool

(** {2 The write path}

    Each mutator returns the write-lock sections the table mutation
    took (the service's batched-path accounting).  All may raise
    [Fault.Injected] with site [Shard_crash] — from the armed fault
    site ahead of the append, or from a planned torn append — after
    which the shard is down. *)

val submit : t -> Wal.op -> int
(** Log then apply one op. *)

val map : t -> asid:int -> Addr.Region.t -> int

val unmap : t -> asid:int -> Addr.Region.t -> int

val protect : t -> asid:int -> Addr.Region.t -> writable:bool -> int

(** {2 Checkpoints} *)

val checkpoint : t -> unit
(** Snapshot the live mapping set at the current WAL offset, then
    compact the log below it.  With a planned checkpoint crash the
    snapshot is left torn on "disk" (its checksum cannot verify), no
    compaction happens, the shard goes down, and [Fault.Injected]
    ([Shard_crash]) is raised — recovery must fall back to the
    previous complete checkpoint and a longer WAL suffix. *)

val plan_checkpoint_crash : t -> unit
(** Tear the next {!checkpoint} halfway. *)

(** {2 Recovery} *)

val recover : t -> unit
(** Rebuild from the newest verifiable checkpoint plus the WAL suffix
    after it, truncating the torn tail, onto a fresh table; swap it in
    and bring the shard back up.  Idempotent; runs with the fault
    context suspended so recovery cannot inject new faults.  With a
    planned recovery crash it raises [Fault.Injected] ([Shard_crash])
    mid-replay, leaving the shard down, the WAL readable and the old
    table untouched — a second {!recover} converges. *)

val plan_recovery_crash : t -> after_records:int -> unit
(** Crash the next {!recover} after it has replayed that many
    records (never fires if the replay is shorter). *)

val live : t -> (int64 * int64 * Pte.Attr.t) list
(** The live mapping set [(vpn, ppn, attr)], sorted by vpn — the
    oracle-comparison view.  Run at quiescence. *)

(** {2 Accounting (monotonic since [create])} *)

val checkpoints : t -> int
(** Complete checkpoints taken. *)

val torn_checkpoints : t -> int

val recovery_attempts : t -> int

val recoveries : t -> int
(** Recoveries that completed. *)

val recovery_crashes : t -> int

val replayed_records : t -> int

val restored_mappings : t -> int
(** Mappings restored from checkpoints across recoveries. *)

val checkpoints_discarded : t -> int
(** Torn checkpoints skipped by recoveries. *)
