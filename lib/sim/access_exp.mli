(** Page-table access-time experiments: Figure 11 (a-d).

    Trap-driven simulation, as in Section 6.1: a synthetic reference
    trace drives a target TLB; every miss triggers a real page-table
    walk over simulated memory and the walk's distinct cache lines are
    counted.  The metric is cache lines per miss normalized by the
    number of misses a 64-entry TLB of the same design incurs.

    The miss *sequence* depends only on the TLB design and the PTE
    policy, not on the page-table organization, so each trace runs
    once per design and the recorded misses replay against every page
    table — the comparisons see identical miss streams.

    Linear page tables get the paper's special treatment: eight of the
    64 TLB entries are reserved for the page table's own mappings, so
    their misses are recorded with a 56-entry TLB while the normalizer
    stays at 64 entries (the "opportunity cost" of reservation), and
    each walk is the single leaf read. *)

type design = Single | Superpage | Psb | Csb

val design_name : design -> string

val policy_of_design : design -> Builder.pte_policy

type result = {
  workload : string;
  pt : string;
  mean_lines : float;
  lines : int;  (** total distinct lines over all replayed misses *)
  misses : int;  (** misses of the 64-entry target TLB (the normalizer) *)
}

type workload_run = {
  spec : Workload.Spec.t;
  base_misses : int;  (** 64-entry single-page-size TLB misses *)
  accesses : int;
  results : result list;
}

val run :
  ?seed:int64 ->
  ?length:int ->
  ?line_size:int ->
  ?placement_p:float ->
  ?subblock_factor:int ->
  design:design ->
  pt_kinds:Factory.kind list ->
  Workload.Spec.t ->
  workload_run
(** Default trace length 80_000 accesses, 256-byte lines, factor 16. *)

val default_pt_kinds : Factory.kind list
(** linear-1L, forward-mapped, hashed (mode per design), clustered —
    Figure 11's four curves.  Call {!run} with [pt_kinds] from
    {!kinds_for} to get the per-design hashed variant. *)

val kinds_for : design -> Factory.kind list

type residency = {
  res_pt : string;
  cold_lines : float;  (** the paper's metric: every line charged *)
  warm_lines : float;
      (** only lines absent from a simulated level-two cache dedicated
          to page-table data *)
  hit_ratio : float;  (** page-table data cache hit ratio *)
}

val run_residency :
  ?seed:int64 ->
  ?length:int ->
  ?placement_p:float ->
  ?line_size:int ->
  ?domains:int ->
  sets:int ->
  ways:int ->
  pt_kinds:Factory.kind list ->
  Workload.Spec.t ->
  residency list
(** Quantifies the metric drawback Section 6.1 concedes: "it ignores
    that some page table data may still be in cache, particularly for
    page tables that are smaller".  Replays the single-page-size TLB
    miss stream through a set-associative LRU cache holding page-table
    data; smaller tables keep more of themselves resident, so the
    *warm* cost gap between clustered and larger tables widens. *)
