(** The appendix's closed-form approximations (Table 2).

    The paper's results come from simulation, with these formulae as
    sanity checks; we use them the same way — tests cross-validate the
    simulators against them. *)

(** {2 Average cache lines accessed per TLB miss} *)

val hashed_lines : load_factor:float -> float
(** 1 + alpha/2, alpha = Nactive(1) / buckets. *)

val clustered_lines : load_factor:float -> float
(** 1 + alpha/2, alpha = Nactive(s) / buckets. *)

val forward_mapped_lines : nlevels:int -> float
(** One line per tree level. *)

val linear_lines : r:float -> m:float -> float
(** 1 + r*m: [r] is the miss ratio on the page table's own
    translations, [m] the lines per such nested miss. *)

(** {2 Page table size in bytes} *)

val hashed_size : nactive1:int -> int
(** 24 bytes per PTE. *)

val clustered_size : subblock_factor:int -> nactive_s:int -> int
(** (8s + 16) per node. *)

val clustered_sp_size :
  subblock_factor:int -> nactive_s:int -> fss:float -> float
(** 24 * N * fss + (8s+16) * N * (1 - fss): [fss] is the fraction of
    page blocks using superpage or partial-subblock PTEs. *)

val multi_level_linear_size : nactive:(int -> int) -> levels:int -> int
(** Sum over levels of 4 KB * Nactive(2^(9i)). *)

val linear_with_hashed_size : nactive512:int -> int
(** (4 KB + 24) * Nactive(512). *)

val forward_mapped_size :
  nactive:(int -> int) -> bits_per_level:int array -> int
(** Sum over levels of n_i * 8 * Nactive(pb_i), where pb_i is the pages
    mapped by a node at level i. *)
