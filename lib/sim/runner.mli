(** One entry point per table or figure of the paper's evaluation,
    each printing its reproduction to stdout and returning the data for
    programmatic use (benchmarks, tests, EXPERIMENTS.md).

    Every entry point takes [?domains]: its independent workloads fan
    out over a {!Exec.Domain_pool} of that many domains (default
    [Domain.recommended_domain_count ()]).  Results are deterministic —
    identical for every domain count, including [~domains:1], which
    runs the legacy serial path. *)

type options = {
  seed : int64;
  length : int;  (** trace accesses per workload *)
  placement_p : float;
  quick : bool;  (** restrict trace workloads for fast smoke runs *)
}

val default_options : options

val table1 :
  ?options:options -> ?domains:int -> unit ->
  (string * int * float * int) list
(** Per workload: (name, measured 64-entry TLB misses, measured % time
    in miss handling at a 40-cycle penalty, measured hashed-table
    bytes); prints paper values alongside. *)

val figure9 : ?options:options -> ?domains:int -> unit -> Size_exp.row list

val figure10 : ?options:options -> ?domains:int -> unit -> Size_exp.row list

val figure11 :
  ?options:options -> ?domains:int -> design:Access_exp.design -> unit ->
  Access_exp.workload_run list

val table2 : ?options:options -> ?domains:int -> unit -> unit
(** Cross-checks simulated sizes against the appendix formulae and
    prints simulated/analytic ratios. *)

val ablation_line_size :
  ?options:options -> ?domains:int -> unit -> (int * float) list
(** Clustered cache-lines-per-miss at 64/128/256-byte lines
    (Section 6.3's sensitivity discussion). *)

val ablation_subblock : ?options:options -> ?domains:int -> unit -> unit
(** Clustered size ratio at subblock factors 2..16 per workload. *)

val ablation_buckets :
  ?options:options -> ?domains:int -> unit -> (int * float * float) list
(** Hash-bucket sweep on the densest workload: (buckets, load factor,
    mean lines per miss) — the Section 7 load-factor discussion. *)

val ablation_residency :
  ?options:options -> ?domains:int -> unit -> Access_exp.residency list
(** Replay Figure 11a's miss stream through a 1 MB 4-way L2 holding
    page-table data: quantifies the cache-residency effect the metric
    ignores (Section 6.1's first drawback). *)

val ablation_reverse_order : ?options:options -> ?domains:int -> unit -> unit
(** Section 6.3: probing the 64 KB table before the 4 KB table under a
    partial-subblock TLB. *)

val ablation_asid :
  ?options:options -> ?domains:int -> unit -> (string * int * int) list
(** Section 7's multiprogramming discussion: TLB misses of the
    multiprogrammed workloads with flush-on-switch vs an ASID-tagged
    TLB.  Returns (workload, flush misses, tagged misses). *)

val ablation_placement : ?options:options -> ?domains:int -> unit -> unit
(** Figure 10's clustered+psb column as reservation success degrades —
    memory pressure per the Section 7 discussion. *)

val ablation_tlb_size : ?options:options -> ?domains:int -> unit -> unit
(** Miss counts at 32/64/128/256 TLB entries (Section 6.1 sensitivity). *)

val ablation_software_tlb : ?options:options -> unit -> unit
(** Section 7: a memory-resident software TLB between the hardware TLB
    and the page table.  Compares a conventional direct-mapped TSB
    against the clustered TSB at a similar byte budget: one tag per
    page block triples the reach, so the clustered TSB's hit ratio and
    lines-per-miss win on block-local workloads.  (Serial: a single
    spec whose software TLBs mutate as the trace runs.) *)

val ablation_guarded : ?options:options -> ?domains:int -> unit -> unit
(** Section 2's guarded page tables [Lied95]: path compression helps
    forward-mapped tables on sparse spaces but remains "partially
    effective" — many levels survive wherever the tree branches. *)

val ablation_shared_table : ?options:options -> ?domains:int -> unit -> unit
(** Section 7: a single page table shared by all processes (VPNs
    tagged with the process id in high bits) vs per-process tables.
    The shared table's chain distribution depends on the whole process
    mix; per-process tables keep it predictable. *)

val ablation_nested_linear : ?options:options -> ?domains:int -> unit -> unit
(** The appendix's linear-table cost formula 1 + r*m, measured: eight
    reserved TLB entries hold the page table's own mappings (footnote
    2: sufficient for the 32-bit workloads, so r = 0), and the
    synthetic 64-bit workload overflows them, paying nested misses
    resolved through a hashed side table ("Linear with Hashed"). *)

val ablation_variable_factor : ?options:options -> ?domains:int -> unit -> unit
(** Section 3 / [Tall95]: PTEs with varying subblock factors.  Sparse
    blocks ride 48-byte quarter nodes, dense blocks merge into full
    nodes — "better memory utilization" across the whole density
    range. *)

val ablation_replacement : ?options:options -> ?domains:int -> unit -> unit
(** TLB replacement policy (the paper assumes LRU; the MIPS R4000
    replaces at random): miss counts under LRU / FIFO / random for a
    64-entry conventional TLB.  The page-table comparison is
    insensitive to this — the metric normalizes per miss — but the
    absolute miss counts move. *)

val extension_future64 : ?options:options -> ?domains:int -> unit -> unit
(** Section 6.2's prediction, instantiated: a large sparse 64-bit
    object store, where linear and forward-mapped tables blow up and
    "both hashed and clustered page tables [become] more
    attractive". *)

type churn_row = {
  churn_name : string;  (** table label, e.g. "clustered-16" *)
  churn_policy : string;  (** "base", "sp" or "psb" *)
  churn_seeds : int;
  churn_peak_kb : float;  (** mean over seeds of the sampled peak footprint *)
  churn_final_bytes : float;  (** mean over seeds, after the drain suffix *)
  churn_insert_lines : float;  (** mean cache lines per insert's walk *)
  churn_delete_lines : float;  (** mean cache lines per delete's walk *)
  churn_promotions : int;  (** summed over seeds *)
  churn_demotions : int;
  churn_cow_breaks : int;
  churn_final_nodes : int;
      (** live nodes left after the drain (seed 0); 0 for organizations
          without a node probe *)
  churn_series : (int * int * int) list;
      (** seed-0 time series: (op index, live pages, page-table bytes) *)
}

val churn :
  ?options:options ->
  ?domains:int ->
  ?seeds:int ->
  ?ops:int ->
  ?procs:int ->
  ?sample_every:int ->
  unit ->
  churn_row list
(** The {!Dynamics} extension: run a seeded mmap/munmap/fork/exit/COW
    churn stream (see {!Dynamics.Churn}) against every page-table
    organization, reporting modify-op cache-line costs, promotion /
    demotion / COW activity, and a footprint-over-time series — the
    dynamic counterpart of Figure 9's static sizes.  One engine run per
    (organization, seed) fans out over the domain pool; results are
    bit-identical for every [domains].  [sample_every <= 0] (the
    default) picks ops/16. *)

val churn_for_suite :
  ?options:options -> ?domains:int -> unit -> churn_row list
(** {!churn} at the suite's standard scale (2 seeds x 6k ops; 1 x 2k
    under [--quick]) — what [ptsim all] and the benchmark harness
    append after the paper suite. *)

val all : ?options:options -> ?domains:int -> unit -> unit
(** Every table and figure in paper order (the churn extension is
    separate — see {!churn_for_suite}). *)

type verify_report = {
  claims : (string * bool) list;
      (** the paper's headline claims, in presentation order:
          (claim name, holds?) *)
  lines_per_miss : (string * string * float) list;
      (** deterministic cache-lines-per-miss numbers backing the
          claims: (design, page table, mean lines) on the nasa7
          workload, designs "single" / "superpage" / "csb" *)
}

val verify_report : ?options:options -> ?domains:int -> unit -> verify_report
(** Re-derive the paper's headline claims (Figure 9's
    clustered-wins-everywhere, Figure 10's compaction magnitudes,
    Figure 11's per-design orderings, the Table 2 formula equalities)
    without printing.  Every field is deterministic for fixed
    [options] — the benchmark JSON embeds this report and CI diffs it
    across commits. *)

val verify : ?options:options -> ?domains:int -> unit -> bool
(** {!verify_report}, printed as PASS/FAIL lines.  Returns true iff
    every claim holds — the release-user analogue of the test
    suite. *)

type throughput_row = {
  tp_org : string;  (** "clustered" or "hashed" *)
  tp_locking : string;  (** "striped", "global" or "seqlock" *)
  tp_domains : int;
  tp_total_ops : int;
  tp_elapsed_s : float;
  tp_ops_per_sec : float;
  tp_read_locks : int;
      (** lock acquisitions inside the timed region; deterministic for
          a fixed config, unlike the timing fields — except under
          seqlock locking, where reads acquire a lock only on
          contention fallback (interleaving-dependent) *)
  tp_write_locks : int;
  tp_read_contention : int;
      (** blocked read acquisitions (interleaving-dependent) *)
  tp_sq_retries : int;
      (** invalidated optimistic walks; 0 outside seqlock locking *)
  tp_sq_fallbacks : int;
  tp_population : int;  (** final mapped pages; deterministic *)
}

val throughput :
  ?domains_list:int list ->
  ?streams:int ->
  ?ops_per_domain:int ->
  ?vpns_per_domain:int ->
  ?seed:int ->
  ?pairs:(Pt_service.Service.org * Pt_service.Service.locking) list ->
  unit ->
  throughput_row list
(** The {!Pt_service} extension: N worker domains issue mixed
    lookup/insert/remove/protect traffic against one shared page table
    (see {!Pt_service.Throughput}), for each (organization, locking)
    pair and each domain count.  Defaults: domains 1/2/4/8, 100k ops
    per domain, all four pairs.  Prints ops/sec and the speedup over
    the pair's first domain count.  [streams] fixes the logical stream
    count across the domain sweep (0, the default, runs one stream per
    domain); fixing it makes the merged telemetry identical for every
    domain count. *)

val throughput_for_suite : ?options:options -> unit -> throughput_row list
(** {!throughput} at the suite's standard scale (1/2/4/8 domains x
    100k ops; 1/2 x 20k under [--quick]) — what the benchmark harness
    appends after churn. *)

val throughput_curve :
  ?domains_list:int list ->
  ?streams:int ->
  ?ops_per_domain:int ->
  ?vpns_per_domain:int ->
  ?buckets:int ->
  ?seed:int ->
  ?reps:int ->
  unit ->
  throughput_row list
(** Lookup-throughput-vs-domains under
    {!Pt_service.Throughput.read_mostly_mix}: the lock-free
    ({!Pt_service.Service.Seqlock}) read path against the striped lock
    on both organizations, over deliberately few buckets (default 256)
    so stripes are genuinely contended.  Each row reports the
    median-rate rep of [reps] (default 5) runs — with domains
    oversubscribed on few cores, a single sub-second sample is noise.
    Logical columns are identical across reps.  Defaults: domains
    1/2/4/8, 8 streams, 50k ops per stream. *)

val throughput_curve_for_suite :
  ?options:options -> unit -> throughput_row list
(** {!throughput_curve} at suite scale; [--quick] keeps 4 domains
    (1/2/4 x 30k ops) because the seqlock-beats-striped claim the
    bench gate checks lives at >= 4 domains. *)

(** {1 Structural inspection (PR 4 telemetry)} *)

type inspect_row = {
  ins_workload : string;
  ins_nodes : int;  (** table nodes summed over the per-process tables *)
  ins_bucket_obs : int;  (** chain-length observations = buckets x procs *)
  ins_chain_mean : float;  (** mean of the probed chain-length histogram *)
  ins_alpha : float;  (** analytic load factor, Nactive(s) / buckets *)
  ins_lines : float;  (** appendix lines-per-miss at [ins_alpha] *)
  ins_report : Obs.Probe.report;
}

val inspect :
  ?options:options ->
  ?domains:int ->
  ?org:[ `Clustered | `Hashed ] ->
  unit ->
  inspect_row list
(** Build each Table 1 workload's per-process tables (Base policy, the
    size experiments' construction), probe their structure with
    {!Obs.Probe}, print the chain-length / occupancy / node-utilization
    histograms, and tabulate the measured chain-length mean against the
    appendix's load factor alpha = Nactive(s)/buckets — the two agree
    within 5% (a tier-1 test holds this).  Also merges each workload's
    histograms into the ambient metrics under [inspect.<workload>.*]
    so [--metrics-out] captures them. *)

(** {1 NUMA replication (PR 7)} *)

type numa_suite = {
  numa_cfg : Numa.Numa_sim.config;
  numa_outcome : Numa.Numa_sim.outcome;
}

val numa_for_suite : ?options:options -> ?domains:int -> unit -> numa_suite
(** The {!Numa} extension at suite scale: the {!Numa.Numa_sim} matrix
    (node counts x organizations x replication modes, plus the
    migration-policy experiment), printed as a table.  The quick
    config rides [--quick].  [domains] sizes the worker pool only —
    the outcome, and hence {!numa_suite_json}, is bit-identical for
    every value. *)

val numa_suite_json : numa_suite -> string
(** {!Numa.Numa_sim.outcome_to_json} of the run — the benchmark
    harness embeds it as [experiments.numa]. *)

val numa_suite_clean : numa_suite -> bool
(** Every row's replicas passed fsck. *)

(** {1 Multi-tenant fleet (PR 8)} *)

type fleet_suite = {
  fleet_cfg : Fleet.Fleet_sim.config;
  fleet_outcome : Fleet.Fleet_sim.outcome;
}

val fleet_for_suite : ?options:options -> ?domains:int -> unit -> fleet_suite
(** The {!Fleet} extension at suite scale: churn tenants over sharded
    services with ASID-tagged TLBs, batched range ops and frame-budget
    eviction, printed as a table.  The quick config rides [--quick].
    [domains] sizes the worker pool only — the outcome is bit-identical
    for every value. *)

val fleet_suite_json : fleet_suite -> string
(** {!Fleet.Fleet_sim.outcome_to_json} with timing fields (the bench
    harness embeds it as [experiments.fleet]; its differ ignores the
    timing). *)

val fleet_suite_clean : fleet_suite -> bool
(** Every row fsck-clean (including cross-shard ASID placement) with
    drained limbo. *)

(** {1 Crash/recovery chaos soak (PR 10)} *)

type chaos_suite = {
  chaos_cfg : Fleet.Chaos_sim.config;
  chaos_outcome : Fleet.Chaos_sim.outcome;
}

val chaos_for_suite : ?options:options -> ?domains:int -> unit -> chaos_suite
(** The {!Fleet.Chaos_sim} soak at suite scale: tenants churning over
    crash-consistent shards (per-shard WAL + checkpoints) while shards
    are killed at planned WAL offsets, at random, mid-checkpoint and
    mid-recovery.  The quick config rides [--quick]; [domains] sizes
    the worker pool only — the outcome is bit-identical for every
    value. *)

val chaos_suite_json : chaos_suite -> string
(** {!Fleet.Chaos_sim.outcome_to_json} with timing fields (the bench
    harness embeds it as [experiments.chaos]; its differ ignores the
    timing). *)

val chaos_suite_clean : chaos_suite -> bool
(** Every recovery converged, every final table oracle-equivalent,
    fsck- and placement-clean, limbo drained. *)
