type cell = { label : string; bytes : int; ratio : float }

type row = {
  workload : string;
  pages : int;
  hashed_bytes : int;
  cells : cell list;
}

let default_seed = 0x5EED_1995L

let assignments_of spec ~seed ~placement_p =
  let snap = Workload.Snapshot.generate spec ~seed in
  List.mapi
    (fun i proc ->
      Builder.assign proc ~placement_p
        ~seed:(Int64.add seed (Int64.of_int (i + 1)))
        ())
    snap.Workload.Snapshot.procs

let size_of kind ~policy ~assignments =
  List.fold_left
    (fun acc assignment ->
      let pt = Factory.make kind in
      Builder.populate pt assignment ~policy;
      acc + Pt_common.Intf.size_bytes pt)
    0 assignments

let row_of spec ~seed ~placement_p ~columns =
  let assignments = assignments_of spec ~seed ~placement_p in
  let hashed_bytes = size_of Factory.Hashed ~policy:`Base ~assignments in
  let cells =
    List.map
      (fun (label, kind, policy) ->
        let bytes = size_of kind ~policy ~assignments in
        {
          label;
          bytes;
          ratio = float_of_int bytes /. float_of_int hashed_bytes;
        })
      columns
  in
  {
    workload = spec.Workload.Spec.name;
    pages =
      List.fold_left (fun acc a -> acc + a.Builder.pages) 0 assignments;
    hashed_bytes;
    cells;
  }

let figure9 ?(seed = default_seed) ?domains
    ?(specs = Workload.Table1.all_with_kernel) () =
  let columns =
    [
      ("linear-6L", Factory.Linear6, `Base);
      ("linear-1L", Factory.Linear1, `Base);
      ("fwd-mapped", Factory.Forward_mapped, `Base);
      ("hashed", Factory.Hashed, `Base);
      ("clustered", Factory.clustered16, `Base);
    ]
  in
  Exec.Domain_pool.map_list ?domains
    (fun _ spec -> row_of spec ~seed ~placement_p:0.95 ~columns)
    specs

let figure10 ?(seed = default_seed) ?domains ?(placement_p = 0.95)
    ?(specs = Workload.Table1.all_with_kernel) () =
  let columns =
    [
      ( "hashed+sp",
        Factory.Hashed_two_tables { coarse_first = false },
        `Superpage );
      ("clustered", Factory.clustered16, `Base);
      ("clustered+sp", Factory.clustered16, `Superpage);
      ("clustered+psb", Factory.clustered16, `Psb);
      ("clustered+both", Factory.clustered16, `Mixed);
    ]
  in
  Exec.Domain_pool.map_list ?domains
    (fun _ spec -> row_of spec ~seed ~placement_p ~columns)
    specs

let subblock_sweep ?(seed = default_seed) ~factors spec =
  let assignments = assignments_of spec ~seed ~placement_p:0.95 in
  let hashed_bytes = size_of Factory.Hashed ~policy:`Base ~assignments in
  List.map
    (fun factor ->
      (* blocks must be re-formed at each factor *)
      let snap = Workload.Snapshot.generate spec ~seed in
      let assignments =
        List.mapi
          (fun i proc ->
            Builder.assign proc ~subblock_factor:factor
              ~seed:(Int64.add seed (Int64.of_int (i + 1)))
              ())
          snap.Workload.Snapshot.procs
      in
      let bytes =
        size_of
          (Factory.Clustered { subblock_factor = factor })
          ~policy:`Base ~assignments
      in
      (factor, float_of_int bytes /. float_of_int hashed_bytes))
    factors
