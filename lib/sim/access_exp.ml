module Intf = Pt_common.Intf

type design = Single | Superpage | Psb | Csb

let design_name = function
  | Single -> "single-page-size"
  | Superpage -> "superpage"
  | Psb -> "partial-subblock"
  | Csb -> "complete-subblock"

let policy_of_design = function
  | Single | Csb -> `Base
  | Superpage -> `Superpage
  | Psb -> `Psb

type result = {
  workload : string;
  pt : string;
  mean_lines : float;
  lines : int;
  misses : int;
}

type workload_run = {
  spec : Workload.Spec.t;
  base_misses : int;
  accesses : int;
  results : result list;
}

let default_pt_kinds =
  [
    Factory.Linear1;
    Factory.Forward_mapped;
    Factory.Hashed;
    Factory.clustered16;
  ]

let kinds_for = function
  | Single ->
      [
        Factory.Linear1;
        Factory.Forward_mapped;
        Factory.Hashed;
        Factory.clustered16;
      ]
  | Superpage | Psb ->
      [
        Factory.Linear1;
        Factory.Forward_mapped;
        Factory.Hashed_two_tables { coarse_first = false };
        Factory.clustered16;
      ]
  | Csb ->
      [
        Factory.Linear1;
        Factory.Forward_mapped;
        Factory.Hashed;
        Factory.clustered16;
      ]

let make_tlb design ~entries ~subblock_factor =
  match design with
  | Single -> Tlb.Intf.fa ~entries ()
  | Superpage -> Tlb.Intf.superpage ~entries ()
  | Psb -> Tlb.Intf.psb ~entries ~subblock_factor ()
  | Csb -> Tlb.Intf.csb ~entries ~subblock_factor ()

type miss = { proc : int; vpn : int64; block_miss : bool }

(* Run the trace through a TLB, filling from the reference tables, and
   record the miss stream.  Prefetch fills apply for Csb designs
   (Section 4.4). *)
let record_misses trace tlb ~reference ~design ~subblock_factor =
  let misses = ref [] and count = ref 0 in
  let acc = Mem.Walk_acc.create () in
  Array.iter
    (function
      | Workload.Trace.Switch _ -> Tlb.Intf.flush tlb
      | Workload.Trace.Access (proc, vpn) -> (
          match Tlb.Intf.access tlb ~vpn with
          | `Hit -> ()
          | (`Block_miss | `Subblock_miss) as m ->
              let block_miss = m = `Block_miss in
              incr count;
              misses := { proc; vpn; block_miss } :: !misses;
              let pt = reference.(proc) in
              if design = Csb && block_miss then begin
                let found, _ = Intf.lookup_block pt ~vpn ~subblock_factor in
                Tlb.Intf.fill_block tlb found
              end
              else begin
                Mem.Walk_acc.reset acc;
                match Intf.lookup_into pt acc ~vpn with
                | Some tr -> Tlb.Intf.fill tlb tr
                | None -> ()
              end)
      | _ -> () (* churn ops never appear in access traces *))
    trace;
  (List.rev !misses, !count)

let replay_misses ?hist misses tables ~design ~line_size ~subblock_factor =
  let counter = Mem.Cache_model.create_counter ~line_size () in
  let acc = Mem.Walk_acc.create () in
  List.iter
    (fun { proc; vpn; block_miss } ->
      let pt = tables.(proc) in
      let lines =
        if design = Csb && block_miss then
          let walk = snd (Intf.lookup_block pt ~vpn ~subblock_factor) in
          Mem.Cache_model.record_walk counter walk.Pt_common.Types.accesses
        else begin
          Mem.Walk_acc.reset acc;
          ignore (Intf.lookup_into pt acc ~vpn);
          Mem.Cache_model.record_acc counter acc
        end
      in
      match hist with Some h -> Obs.Hist.observe h lines | None -> ())
    misses;
  Mem.Cache_model.total_lines counter

type residency = {
  res_pt : string;
  cold_lines : float;
  warm_lines : float;
  hit_ratio : float;
}

let is_linear = function
  | Factory.Linear6 | Factory.Linear1 | Factory.Linear_hashed -> true
  | _ -> false

let run ?(seed = 0x7ACE_1995L) ?(length = 80_000)
    ?(line_size = Mem.Cache_model.default_line_size) ?(placement_p = 0.95)
    ?(subblock_factor = 16) ~design ~pt_kinds spec =
  let policy = policy_of_design design in
  let snap = Workload.Snapshot.generate spec ~seed in
  let assignments =
    List.mapi
      (fun i proc ->
        Builder.assign proc ~placement_p
          ~seed:(Int64.add seed (Int64.of_int (i + 1)))
          ())
      snap.Workload.Snapshot.procs
    |> Array.of_list
  in
  let build kind =
    Array.map
      (fun assignment ->
        let pt = Factory.make kind in
        Builder.populate pt assignment ~policy;
        pt)
      assignments
  in
  (* the clustered table supports every PTE format natively, so it
     serves as the fill reference for the miss-recording pass *)
  let reference = build Factory.clustered16 in
  let trace =
    Workload.Trace.generate spec snap ~seed:(Int64.add seed 0x77L) ~length
  in
  (* the Table 1 metric: misses of a 64-entry single-page-size TLB *)
  let base_misses =
    let tlb = make_tlb Single ~entries:64 ~subblock_factor in
    snd (record_misses trace tlb ~reference ~design:Single ~subblock_factor)
  in
  let tlb64 = make_tlb design ~entries:64 ~subblock_factor in
  let misses64, n64 =
    record_misses trace tlb64 ~reference ~design ~subblock_factor
  in
  (* the linear tables' miss stream uses 56 entries (8 reserved) *)
  let misses56 =
    if List.exists is_linear pt_kinds then begin
      let tlb56 = make_tlb design ~entries:56 ~subblock_factor in
      Some
        (fst (record_misses trace tlb56 ~reference ~design ~subblock_factor))
    end
    else None
  in
  (* merged telemetry: the miss totals the design produced and, per
     organization, the per-miss cache-line distribution the paper's
     Figure 11 averages.  Each spec runs whole on one domain, so the
     shard observations are deterministic and merge order-free. *)
  let shard = Obs.Ambient.get () in
  Obs.Metrics.add
    (Obs.Metrics.counter shard "sim.accesses")
    (Workload.Trace.accesses trace);
  Obs.Metrics.add (Obs.Metrics.counter shard "sim.tlb_misses") n64;
  let results =
    List.map
      (fun kind ->
        let tables = build kind in
        let miss_stream =
          if is_linear kind then Option.get misses56 else misses64
        in
        let lines =
          replay_misses
            ~hist:
              (Obs.Metrics.hist shard ("sim.walk_lines." ^ Factory.name kind))
            miss_stream tables ~design ~line_size ~subblock_factor
        in
        {
          workload = spec.Workload.Spec.name;
          pt = Factory.name kind;
          mean_lines =
            (if n64 = 0 then 0.0 else float_of_int lines /. float_of_int n64);
          lines;
          misses = n64;
        })
      pt_kinds
  in
  {
    spec;
    base_misses;
    accesses = Workload.Trace.accesses trace;
    results;
  }

let run_residency ?(seed = 0x7ACE_1995L) ?(length = 80_000)
    ?(placement_p = 0.95) ?(line_size = Mem.Cache_model.default_line_size)
    ?domains ~sets ~ways ~pt_kinds spec =
  let subblock_factor = 16 in
  let snap = Workload.Snapshot.generate spec ~seed in
  let assignments =
    List.mapi
      (fun i proc ->
        Builder.assign proc ~placement_p
          ~seed:(Int64.add seed (Int64.of_int (i + 1)))
          ())
      snap.Workload.Snapshot.procs
    |> Array.of_list
  in
  let build kind =
    Array.map
      (fun assignment ->
        let pt = Factory.make kind in
        Builder.populate pt assignment ~policy:`Base;
        pt)
      assignments
  in
  let reference = build Factory.clustered16 in
  let trace =
    Workload.Trace.generate spec snap ~seed:(Int64.add seed 0x77L) ~length
  in
  let tlb = make_tlb Single ~entries:64 ~subblock_factor in
  let misses, n =
    record_misses trace tlb ~reference ~design:Single ~subblock_factor
  in
  Exec.Domain_pool.map_list ?domains
    (fun _ kind ->
      let tables = build kind in
      let cache = Mem.Cache_sim.create ~line_size ~sets ~ways () in
      let cold = ref 0 and warm = ref 0 in
      let acc = Mem.Walk_acc.create () in
      let cold_counter = Mem.Cache_model.create_counter ~line_size () in
      List.iter
        (fun { proc; vpn; _ } ->
          Mem.Walk_acc.reset acc;
          ignore (Intf.lookup_into tables.(proc) acc ~vpn);
          cold := !cold + Mem.Cache_model.record_acc cold_counter acc;
          (* replay into the warm cache in the walk list's order
             (reverse-chronological), as the legacy path did *)
          for i = Mem.Walk_acc.count acc - 1 downto 0 do
            let _hits, misses =
              Mem.Cache_sim.access_bytes cache ~addr:(Mem.Walk_acc.addr acc i)
                ~bytes:(Mem.Walk_acc.bytes acc i)
            in
            warm := !warm + misses
          done)
        misses;
      {
        res_pt = Factory.name kind;
        cold_lines = float_of_int !cold /. float_of_int n;
        warm_lines = float_of_int !warm /. float_of_int n;
        hit_ratio = Mem.Cache_sim.hit_ratio cache;
      })
    pt_kinds
