(** Populating page tables from workload snapshots.

    A physical {!assignment} is computed once per (process, seed): each
    page gets a frame, block by block, with probability [placement_p]
    that a block's reservation succeeded and its pages are properly
    placed (memory pressure makes reservations fail sometimes,
    Section 7).  The same assignment then populates any number of page
    tables, so every organization in an experiment maps identical
    (vpn, ppn) pairs and the comparisons are exact. *)

(** Which PTE formats the operating system constructs (Section 6.1). *)
type pte_policy =
  [ `Base  (** base PTEs only: the single-page-size system *)
  | `Superpage
    (** fully-populated, properly-placed blocks become 64 KB superpage
        PTEs; everything else base PTEs *)
  | `Psb
    (** properly-placed blocks become partial-subblock PTEs (full ones
        included); unplaced blocks fall back to base PTEs *)
  | `Mixed
    (** Section 5's "both superpages and partial-subblocking in the
        same clustered page table": full placed blocks become
        superpages, partial placed blocks psb PTEs, the rest base *) ]

type block_info = {
  vpbn : int64;
  vmask : int;  (** populated block offsets *)
  placed : bool;
  ppn_base : int64;  (** block-aligned when [placed] *)
  boffs_ppns : (int * int64) list;  (** per-page frames, ascending boff *)
}

type assignment = {
  blocks : block_info list;  (** ascending VPBN *)
  pages : int;
  factor : int;  (** the subblock factor the blocks were formed with *)
}

val assign :
  Workload.Snapshot.proc ->
  ?subblock_factor:int ->
  ?placement_p:float ->
  seed:int64 ->
  unit ->
  assignment

val fss : assignment -> policy:pte_policy -> float
(** Fraction of active blocks that the policy maps with a superpage or
    partial-subblock PTE (the appendix's fss). *)

val populate :
  Pt_common.Intf.instance -> assignment -> policy:pte_policy -> unit

val attr : Pte.Attr.t
(** The attribute every built mapping uses. *)
