let csv_dir = ref None

let set_csv_dir dir =
  (match dir with
  | Some d -> ( try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | None -> ());
  csv_dir := dir

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> c
      | _ -> '_')
    (String.lowercase_ascii title)

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~title ~header ~rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (slug title ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          List.iter
            (fun row ->
              output_string oc
                (String.concat "," (List.map csv_escape row) ^ "\n"))
            (header :: rows))

let print_table ~title ~header ~rows =
  write_csv ~title ~header ~rows;
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render row =
    String.concat "  " (List.mapi (fun i cell -> pad cell (List.nth widths i)) row)
  in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  Printf.printf "\n== %s ==\n%s\n%s\n" title (render header) rule;
  List.iter (fun row -> print_endline (render row)) rows

let ratio v = if v > 5.0 then ">5.00" else Printf.sprintf "%.2f" v

let lines_metric v = Printf.sprintf "%.2f" v

let kb bytes = Printf.sprintf "%.1fKB" (float_of_int bytes /. 1024.0)

let note s = Printf.printf "   %s\n" s
