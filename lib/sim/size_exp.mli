(** Page-table size experiments: Figures 9 and 10.

    Sizes are computed from real populated tables (not the appendix
    formulae), summed across a workload's processes, and normalized by
    the plain hashed page table's size — the paper's presentation. *)

type cell = { label : string; bytes : int; ratio : float }

type row = {
  workload : string;
  pages : int;
  hashed_bytes : int;  (** the normalizer *)
  cells : cell list;
}

val figure9 :
  ?seed:int64 ->
  ?domains:int ->
  ?specs:Workload.Spec.t list ->
  unit ->
  row list
(** Single-page-size tables: linear 6-level, linear 1-level,
    forward-mapped, hashed, clustered (factor 16).  Workloads fan out
    over [domains] domains (default
    [Domain.recommended_domain_count ()]); results are identical for
    any domain count. *)

val figure10 :
  ?seed:int64 ->
  ?domains:int ->
  ?placement_p:float ->
  ?specs:Workload.Spec.t list ->
  unit ->
  row list
(** Tables below 1.0 with superpage / partial-subblock PTEs: hashed
    with a superpage table, clustered base, clustered + superpage,
    clustered + partial-subblock. *)

val subblock_sweep :
  ?seed:int64 -> factors:int list -> Workload.Spec.t -> (int * float) list
(** Clustered size ratio as a function of subblock factor (the
    Section 3 space tradeoff ablation). *)

val size_of :
  Factory.kind ->
  policy:Builder.pte_policy ->
  assignments:Builder.assignment list ->
  int
(** Build fresh tables (one per process) and sum their sizes. *)
