type pte_policy = [ `Base | `Superpage | `Psb | `Mixed ]

type block_info = {
  vpbn : int64;
  vmask : int;
  placed : bool;
  ppn_base : int64;
  boffs_ppns : (int * int64) list;
}

type assignment = { blocks : block_info list; pages : int; factor : int }

let attr = Pte.Attr.default

let assign proc ?(subblock_factor = 16) ?(placement_p = 0.95) ~seed () =
  let rng = Workload.Prng.create ~seed in
  let vpns = Workload.Snapshot.proc_vpns proc in
  (* group pages into blocks *)
  let tbl = Hashtbl.create 512 in
  Array.iter
    (fun vpn ->
      let vpbn = Addr.Vaddr.vpbn_of_vpn ~subblock_factor vpn in
      let boff = Addr.Vaddr.boff_of_vpn ~subblock_factor vpn in
      let cur = try Hashtbl.find tbl vpbn with Not_found -> 0 in
      Hashtbl.replace tbl vpbn (cur lor (1 lsl boff)))
    vpns;
  let vpbns =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
    |> List.sort Int64.unsigned_compare
  in
  (* frame assignment: a bump allocator of block-aligned frames for
     placed blocks, deliberately unaligned singles otherwise *)
  let next_block = ref 16L (* block index, keeps PPNs small *) in
  let next_single = ref 0x100000L in
  let factor_bits = Addr.Bits.log2_exact subblock_factor in
  let blocks =
    List.map
      (fun vpbn ->
        let vmask = Hashtbl.find tbl vpbn in
        let placed = Workload.Prng.bool rng ~p:placement_p in
        if placed then begin
          let ppn_base = Int64.shift_left !next_block factor_bits in
          next_block := Int64.succ !next_block;
          let boffs_ppns = ref [] in
          for i = subblock_factor - 1 downto 0 do
            if vmask land (1 lsl i) <> 0 then
              boffs_ppns :=
                (i, Int64.add ppn_base (Int64.of_int i)) :: !boffs_ppns
          done;
          { vpbn; vmask; placed; ppn_base; boffs_ppns = !boffs_ppns }
        end
        else begin
          let boffs_ppns = ref [] in
          for i = subblock_factor - 1 downto 0 do
            if vmask land (1 lsl i) <> 0 then begin
              (* skew the frame so the page is (almost surely) not
                 properly placed *)
              let ppn = !next_single in
              next_single := Int64.add !next_single 3L;
              boffs_ppns := (i, ppn) :: !boffs_ppns
            end
          done;
          { vpbn; vmask; placed; ppn_base = 0L; boffs_ppns = !boffs_ppns }
        end)
      vpbns
  in
  (* Shuffle so head-insertion yields uniform chain positions, the
     appendix's "random, uniform distribution" assumption — a real OS
     inserts in demand order, not VPBN order, so ascending order would
     push the dense (hot) blocks to every chain's tail. *)
  let arr = Array.of_list blocks in
  Workload.Prng.shuffle rng arr;
  { blocks = Array.to_list arr; pages = Array.length vpns; factor = subblock_factor }

let block_uses_compact ~factor (b : block_info) ~policy =
  let full_mask = (1 lsl factor) - 1 in
  match policy with
  | `Base -> false
  | `Superpage -> b.placed && b.vmask = full_mask
  | `Psb | `Mixed -> b.placed

let fss assignment ~policy =
  let n = List.length assignment.blocks in
  if n = 0 then 0.0
  else
    let compact =
      List.length
        (List.filter (block_uses_compact ~factor:assignment.factor ~policy) assignment.blocks)
    in
    float_of_int compact /. float_of_int n

let populate pt assignment ~policy =
  let module I = Pt_common.Intf in
  List.iter
    (fun (b : block_info) ->
      if block_uses_compact ~factor:assignment.factor b ~policy then begin
        let full = b.vmask = (1 lsl assignment.factor) - 1 in
        let as_superpage =
          match policy with
          | `Superpage -> true
          | `Mixed -> full
          | `Psb | `Base -> false
        in
        if as_superpage then begin
          let fbits = Addr.Bits.log2_exact assignment.factor in
          I.insert_superpage pt
            ~vpn:(Int64.shift_left b.vpbn fbits)
            ~size:(Addr.Page_size.of_sz_code fbits)
            ~ppn:b.ppn_base ~attr
        end
        else I.insert_psb pt ~vpbn:b.vpbn ~vmask:b.vmask ~ppn:b.ppn_base ~attr
      end
      else
        List.iter
          (fun (boff, ppn) ->
            let fbits = Addr.Bits.log2_exact assignment.factor in
            let vpn =
              Int64.add (Int64.shift_left b.vpbn fbits) (Int64.of_int boff)
            in
            I.insert_base pt ~vpn ~ppn ~attr)
          b.boffs_ppns)
    assignment.blocks
