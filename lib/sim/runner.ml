type options = {
  seed : int64;
  length : int;
  placement_p : float;
  quick : bool;
}

let default_options =
  { seed = 0x1995_5051L; length = 80_000; placement_p = 0.95; quick = false }

let trace_specs options =
  if options.quick then
    [ Workload.Table1.coral; Workload.Table1.gcc; Workload.Table1.nasa7 ]
  else Workload.Table1.all

(* Fan independent jobs (one per workload or configuration) out to a
   domain pool, then print from the joined results.  Each job derives
   its seeds from its own spec/index, never from execution order, so
   every entry point is bit-identical for any [domains], including the
   serial [~domains:1] legacy path. *)
let par_map ?domains f xs =
  Exec.Domain_pool.map_list ?domains (fun _ x -> f x) xs

(* --- Table 1 --- *)

let table1 ?(options = default_options) ?domains () =
  let specs = trace_specs options in
  let computed =
    par_map ?domains
      (fun spec ->
        let run =
          Access_exp.run ~seed:options.seed ~length:options.length
            ~placement_p:options.placement_p ~design:Access_exp.Single
            ~pt_kinds:[ Factory.Hashed ] spec
        in
        let snap = Workload.Snapshot.generate spec ~seed:options.seed in
        let assignments =
          List.mapi
            (fun i proc ->
              Builder.assign proc ~placement_p:options.placement_p
                ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
                ())
            snap.Workload.Snapshot.procs
        in
        let hashed_bytes =
          Size_exp.size_of Factory.Hashed ~policy:`Base ~assignments
        in
        (* 40-cycle miss penalty (Section 6.2).  Trace events are
           page-granular; one event stands for ~25 in-page references of
           a real instruction stream (calibration constant, see
           EXPERIMENTS.md). *)
        let refs_per_event = 25.0 in
        let m = float_of_int run.Access_exp.base_misses in
        let a = float_of_int run.Access_exp.accesses *. refs_per_event in
        let pct = 100.0 *. (m *. 40.0) /. (a +. (m *. 40.0)) in
        let paper = spec.Workload.Spec.paper in
        let row =
          [
            spec.Workload.Spec.name;
            string_of_int paper.Workload.Spec.tlb_misses_k ^ "k";
            string_of_int run.Access_exp.base_misses;
            Printf.sprintf "%d%%" paper.Workload.Spec.pct_tlb;
            Printf.sprintf "%.0f%%" pct;
            string_of_int paper.Workload.Spec.hashed_kb ^ "KB";
            Report.kb hashed_bytes;
          ]
        in
        ( (spec.Workload.Spec.name, run.Access_exp.base_misses, pct,
           hashed_bytes),
          row ))
      specs
  in
  let out = List.map fst computed and rows = List.map snd computed in
  Report.print_table ~title:"Table 1: workload characteristics"
    ~header:
      [
        "workload"; "paper misses"; "sim misses"; "paper %tlb"; "sim %tlb";
        "paper hashed"; "sim hashed";
      ]
    ~rows;
  Report.note
    "Simulated traces are scaled-down (default 80k accesses); compare \
     percentages and sizes, not absolute miss counts.";
  out

(* --- Figures 9 and 10 --- *)

let print_size_rows ~title rows =
  match rows with
  | [] -> ()
  | first :: _ ->
      let header =
        "workload" :: "pages"
        :: List.map (fun c -> c.Size_exp.label) first.Size_exp.cells
      in
      let body =
        List.map
          (fun row ->
            row.Size_exp.workload
            :: string_of_int row.Size_exp.pages
            :: List.map (fun c -> Report.ratio c.Size_exp.ratio) row.Size_exp.cells)
          rows
      in
      Report.print_table ~title ~header ~rows:body;
      Report.note "Normalized to hashed page table size (= 1.00)."

let figure9 ?(options = default_options) ?domains () =
  let rows = Size_exp.figure9 ~seed:options.seed ?domains () in
  print_size_rows ~title:"Figure 9: page table size, single page size" rows;
  rows

let figure10 ?(options = default_options) ?domains () =
  let rows =
    Size_exp.figure10 ~seed:options.seed ?domains
      ~placement_p:options.placement_p ()
  in
  print_size_rows
    ~title:"Figure 10: page table size with superpage/partial-subblock PTEs"
    rows;
  rows

(* --- Figure 11 --- *)

let figure11 ?(options = default_options) ?domains ~design () =
  let specs = trace_specs options in
  let runs =
    par_map ?domains
      (fun spec ->
        Access_exp.run ~seed:options.seed ~length:options.length
          ~placement_p:options.placement_p ~design
          ~pt_kinds:(Access_exp.kinds_for design) spec)
      specs
  in
  (match runs with
  | [] -> ()
  | first :: _ ->
      let header =
        "workload" :: "misses"
        :: List.map (fun r -> r.Access_exp.pt) first.Access_exp.results
      in
      let rows =
        List.map
          (fun run ->
            run.Access_exp.spec.Workload.Spec.name
            :: string_of_int
                 (match run.Access_exp.results with
                 | r :: _ -> r.Access_exp.misses
                 | [] -> 0)
            :: List.map
                 (fun r -> Report.lines_metric r.Access_exp.mean_lines)
                 run.Access_exp.results)
          runs
      in
      Report.print_table
        ~title:
          (Printf.sprintf "Figure 11%s: cache lines per TLB miss, %s TLB"
             (match design with
             | Access_exp.Single -> "a"
             | Access_exp.Superpage -> "b"
             | Access_exp.Psb -> "c"
             | Access_exp.Csb -> "d")
             (Access_exp.design_name design))
        ~header ~rows);
  runs

(* --- Table 2 cross-check --- *)

let nactive snap p =
  List.fold_left
    (fun acc proc -> acc + Workload.Snapshot.active_blocks ~subblock_factor:p proc)
    0 snap.Workload.Snapshot.procs

let table2 ?(options = default_options) ?domains () =
  let rows =
    par_map ?domains
      (fun spec ->
        let snap = Workload.Snapshot.generate spec ~seed:options.seed in
        let assignments =
          List.mapi
            (fun i proc ->
              Builder.assign proc ~placement_p:options.placement_p
                ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
                ())
            snap.Workload.Snapshot.procs
        in
        let sim kind = Size_exp.size_of kind ~policy:`Base ~assignments in
        let n1 = nactive snap 1 in
        let n16 = nactive snap 16 in
        let hashed_ratio =
          float_of_int (sim Factory.Hashed)
          /. float_of_int (Analytic.hashed_size ~nactive1:n1)
        in
        let clustered_ratio =
          float_of_int (sim Factory.clustered16)
          /. float_of_int
               (Analytic.clustered_size ~subblock_factor:16 ~nactive_s:n16)
        in
        let linear_ratio =
          float_of_int (sim Factory.Linear6)
          /. float_of_int
               (Analytic.multi_level_linear_size
                  ~nactive:(fun p -> nactive snap p)
                  ~levels:6)
        in
        let fm_ratio =
          float_of_int (sim Factory.Forward_mapped)
          /. float_of_int
               (Analytic.forward_mapped_size
                  ~nactive:(fun p -> nactive snap p)
                  ~bits_per_level:[| 8; 8; 8; 8; 8; 6; 6 |])
        in
        [
          spec.Workload.Spec.name;
          Printf.sprintf "%.3f" hashed_ratio;
          Printf.sprintf "%.3f" clustered_ratio;
          Printf.sprintf "%.3f" linear_ratio;
          Printf.sprintf "%.3f" fm_ratio;
        ])
      Workload.Table1.all_with_kernel
  in
  Report.print_table
    ~title:"Table 2 cross-check: simulated size / analytic size"
    ~header:[ "workload"; "hashed"; "clustered"; "linear-6L"; "fwd-mapped" ]
    ~rows;
  Report.note
    "1.000 means the simulator matches the appendix formula exactly; \
     clustered deviates upward where psb/superpage single nodes (24B) \
     replace full nodes."

(* --- Ablations (Sections 6.3 and 7) --- *)

let ablation_line_size ?(options = default_options) ?domains () =
  let spec = Workload.Table1.coral in
  let out =
    par_map ?domains
      (fun line_size ->
        let run =
          Access_exp.run ~seed:options.seed ~length:options.length
            ~line_size ~placement_p:options.placement_p
            ~design:Access_exp.Single
            ~pt_kinds:[ Factory.clustered16 ]
            spec
        in
        let mean =
          match run.Access_exp.results with
          | [ r ] -> r.Access_exp.mean_lines
          | _ -> 0.0
        in
        (line_size, mean))
      [ 64; 128; 256 ]
  in
  Report.print_table
    ~title:"Ablation: clustered sensitivity to cache line size (coral)"
    ~header:[ "line size"; "lines/miss" ]
    ~rows:
      (List.map
         (fun (ls, m) -> [ string_of_int ls ^ "B"; Report.lines_metric m ])
         out);
  Report.note
    "A 144-byte clustered node spans multiple small lines: the paper \
     predicts +0.125 at 128B and +0.625 at 64B over the 256B baseline.";
  out

let ablation_subblock ?(options = default_options) ?domains () =
  let factors = [ 2; 4; 8; 16 ] in
  let rows =
    par_map ?domains
      (fun spec ->
        let sweep = Size_exp.subblock_sweep ~seed:options.seed ~factors spec in
        spec.Workload.Spec.name
        :: List.map (fun (_, r) -> Report.ratio r) sweep)
      Workload.Table1.all_with_kernel
  in
  Report.print_table ~title:"Ablation: clustered size vs subblock factor"
    ~header:("workload" :: List.map (fun f -> Printf.sprintf "k=%d" f) factors)
    ~rows

let ablation_buckets ?(options = default_options) ?domains () =
  let spec = Workload.Table1.ml in
  let snap = Workload.Snapshot.generate spec ~seed:options.seed in
  let assignments =
    List.mapi
      (fun i proc ->
        Builder.assign proc ~placement_p:options.placement_p
          ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
          ())
      snap.Workload.Snapshot.procs
  in
  let out =
    par_map ?domains
      (fun buckets ->
        (* build a clustered table with this bucket count and measure
           chain behaviour over every mapped page *)
        let table =
          Clustered_pt.Table.create (Clustered_pt.Config.make ~buckets ())
        in
        let instance =
          Pt_common.Intf.Instance ((module Clustered_pt.Table), table)
        in
        List.iter (fun a -> Builder.populate instance a ~policy:`Base) assignments;
        let counter = Mem.Cache_model.create_counter () in
        let acc = Mem.Walk_acc.create () in
        List.iter
          (fun a ->
            List.iter
              (fun (b : Builder.block_info) ->
                List.iter
                  (fun (boff, _) ->
                    let vpn =
                      Int64.add
                        (Int64.shift_left b.Builder.vpbn 4)
                        (Int64.of_int boff)
                    in
                    Mem.Walk_acc.reset acc;
                    ignore (Clustered_pt.Table.lookup_into table acc ~vpn);
                    ignore (Mem.Cache_model.record_acc counter acc))
                  b.Builder.boffs_ppns)
              a.Builder.blocks)
          assignments;
        ( buckets,
          Clustered_pt.Table.load_factor table,
          Mem.Cache_model.mean_lines counter ))
      [ 256; 512; 1024; 2048; 4096; 8192 ]
  in
  Report.print_table
    ~title:"Ablation: hash buckets vs load factor and lines/lookup (ML)"
    ~header:[ "buckets"; "load factor"; "lines/lookup" ]
    ~rows:
      (List.map
         (fun (b, lf, m) ->
           [
             string_of_int b;
             Printf.sprintf "%.3f" lf;
             Report.lines_metric m;
           ])
         out);
  Report.note
    "Appendix formula: lines = 1 + load/2 under uniform hashing; spatial \
     locality in real lookups lands close to it.";
  out

let ablation_residency ?(options = default_options) ?domains () =
  let spec = Workload.Table1.ml in
  let out =
    Access_exp.run_residency ~seed:options.seed ~length:options.length
      ~placement_p:options.placement_p ?domains ~sets:1024 ~ways:4
      ~pt_kinds:
        [
          Factory.Linear1;
          Factory.Forward_mapped;
          Factory.Hashed;
          Factory.clustered16;
        ]
      spec
  in
  Report.print_table
    ~title:"Ablation: page-table cache residency (ML, 1MB 4-way L2)"
    ~header:[ "page table"; "cold lines/miss"; "warm lines/miss"; "hit ratio" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.Access_exp.res_pt;
             Report.lines_metric r.Access_exp.cold_lines;
             Report.lines_metric r.Access_exp.warm_lines;
             Printf.sprintf "%.2f" r.Access_exp.hit_ratio;
           ])
         out);
  Report.note
    "Section 6.1 concedes the headline metric ignores residency and \
     predicts smaller tables would look even better: the warm column \
     confirms it.";
  out

let ablation_reverse_order ?(options = default_options) ?domains () =
  let specs = trace_specs options in
  let rows =
    par_map ?domains
      (fun spec ->
        let run =
          Access_exp.run ~seed:options.seed ~length:options.length
            ~placement_p:options.placement_p ~design:Access_exp.Psb
            ~pt_kinds:
              [
                Factory.Hashed_two_tables { coarse_first = false };
                Factory.Hashed_two_tables { coarse_first = true };
                Factory.clustered16;
              ]
            spec
        in
        spec.Workload.Spec.name
        :: List.map
             (fun r -> Report.lines_metric r.Access_exp.mean_lines)
             run.Access_exp.results)
      specs
  in
  Report.print_table
    ~title:
      "Ablation: hashed two-table probe order under a partial-subblock TLB"
    ~header:[ "workload"; "4KB first"; "64KB first"; "clustered" ]
    ~rows;
  Report.note
    "Section 6.3: \"doing the page traversals in the reverse order ... \
     would be a better option\" when most misses hit psb PTEs."

let ablation_asid ?(options = default_options) ?domains () =
  let specs = [ Workload.Table1.compress; Workload.Table1.gcc ] in
  let out =
    par_map ?domains
      (fun spec ->
        let snap = Workload.Snapshot.generate spec ~seed:options.seed in
        let reference =
          List.mapi
            (fun i proc ->
              let a =
                Builder.assign proc ~placement_p:options.placement_p
                  ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
                  ()
              in
              let pt = Factory.make Factory.clustered16 in
              Builder.populate pt a ~policy:`Base;
              pt)
            snap.Workload.Snapshot.procs
          |> Array.of_list
        in
        (* pipeline-synchronized processes (compress | sh; make/cc1)
           switch on pipe and wait boundaries, far more often than a
           timer quantum *)
        let trace =
          Workload.Trace.generate ~quantum:120 spec snap
            ~seed:(Int64.add options.seed 0x77L)
            ~length:options.length
        in
        let acc = Mem.Walk_acc.create () in
        let refill proc vpn =
          Mem.Walk_acc.reset acc;
          Pt_common.Intf.lookup_into reference.(proc) acc ~vpn
        in
        let flush_run entries () =
          let tlb = Tlb.Intf.fa ~entries () in
          Array.iter
            (function
              | Workload.Trace.Switch _ -> Tlb.Intf.flush tlb
              | Workload.Trace.Access (proc, vpn) -> (
                  match Tlb.Intf.access tlb ~vpn with
                  | `Hit -> ()
                  | `Block_miss | `Subblock_miss -> (
                      match refill proc vpn with
                      | Some tr -> Tlb.Intf.fill tlb tr
                      | None -> ()))
              | _ -> ())
            trace;
          Tlb.Stats.misses (Tlb.Intf.stats tlb)
        in
        let tagged_run entries () =
          let tlb = Tlb.Tagged_tlb.create (Tlb.Intf.fa ~entries ()) in
          Array.iter
            (function
              | Workload.Trace.Switch proc ->
                  Tlb.Tagged_tlb.set_context tlb ~asid:proc
              | Workload.Trace.Access (proc, vpn) -> (
                  Tlb.Tagged_tlb.set_context tlb ~asid:proc;
                  match Tlb.Tagged_tlb.access tlb ~vpn with
                  | `Hit -> ()
                  | `Block_miss | `Subblock_miss -> (
                      match refill proc vpn with
                      | Some tr -> Tlb.Tagged_tlb.fill tlb tr
                      | None -> ()))
              | _ -> ())
            trace;
          Tlb.Stats.misses (Tlb.Tagged_tlb.stats tlb)
        in
        ( spec.Workload.Spec.name,
          flush_run 64 (),
          tagged_run 64 (),
          flush_run 256 (),
          tagged_run 256 () ))
      specs
  in
  let pct f t =
    Printf.sprintf "%.0f%%" (100.0 *. (1.0 -. (float_of_int t /. float_of_int f)))
  in
  Report.print_table
    ~title:"Ablation: context-switch flush vs ASID-tagged TLB"
    ~header:
      [
        "workload"; "flush@64"; "tagged@64"; "saved"; "flush@256"; "tagged@256";
        "saved";
      ]
    ~rows:
      (List.map
         (fun (name, f64, t64, f256, t256) ->
           [
             name;
             string_of_int f64;
             string_of_int t64;
             pct f64 t64;
             string_of_int f256;
             string_of_int t256;
             pct f256 t256;
           ])
         out);
  Report.note
    "Section 7: multiprogramming inflates TLB misses on untagged TLBs \
     (the paper's SuperSPARC flushes on switch; MIPS-style ASIDs do not). \
     Tagging pays off once the TLB can hold several contexts at once.";
  List.map (fun (name, f64, t64, _, _) -> (name, f64, t64)) out

let ablation_placement ?(options = default_options) ?domains () =
  let spec = Workload.Table1.ml in
  let rows =
    par_map ?domains
      (fun p ->
        let rows =
          Size_exp.figure10 ~seed:options.seed ~domains:1 ~placement_p:p
            ~specs:[ spec ] ()
        in
        let row = List.hd rows in
        let get label =
          (List.find (fun c -> c.Size_exp.label = label) row.Size_exp.cells)
            .Size_exp.ratio
        in
        [
          Printf.sprintf "%.2f" p;
          Report.ratio (get "clustered+sp");
          Report.ratio (get "clustered+psb");
          Report.ratio (get "hashed+sp");
        ])
      [ 0.25; 0.5; 0.75; 0.95; 1.0 ]
  in
  Report.print_table
    ~title:"Ablation: compact-PTE savings vs reservation success (ML)"
    ~header:[ "placement p"; "clustered+sp"; "clustered+psb"; "hashed+sp" ]
    ~rows;
  Report.note
    "Section 7: \"When physical memory demand is high, the operating \
     system may not be able to use superpages or partial-subblocking as \
     effectively\"."

let ablation_tlb_size ?(options = default_options) ?domains () =
  let specs =
    [ Workload.Table1.coral; Workload.Table1.nasa7; Workload.Table1.ml ]
  in
  let rows =
    par_map ?domains
      (fun spec ->
        let snap = Workload.Snapshot.generate spec ~seed:options.seed in
        let reference =
          List.mapi
            (fun i proc ->
              let a =
                Builder.assign proc ~placement_p:options.placement_p
                  ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
                  ()
              in
              let pt = Factory.make Factory.clustered16 in
              Builder.populate pt a ~policy:`Base;
              pt)
            snap.Workload.Snapshot.procs
          |> Array.of_list
        in
        let trace =
          Workload.Trace.generate spec snap
            ~seed:(Int64.add options.seed 0x77L)
            ~length:options.length
        in
        let acc = Mem.Walk_acc.create () in
        let misses entries =
          let tlb = Tlb.Intf.fa ~entries () in
          Array.iter
            (function
              | Workload.Trace.Switch _ -> Tlb.Intf.flush tlb
              | Workload.Trace.Access (proc, vpn) -> (
                  match Tlb.Intf.access tlb ~vpn with
                  | `Hit -> ()
                  | `Block_miss | `Subblock_miss -> (
                      Mem.Walk_acc.reset acc;
                      match
                        Pt_common.Intf.lookup_into reference.(proc) acc ~vpn
                      with
                      | Some tr -> Tlb.Intf.fill tlb tr
                      | None -> ()))
              | _ -> ())
            trace;
          Tlb.Stats.misses (Tlb.Intf.stats tlb)
        in
        spec.Workload.Spec.name
        :: List.map (fun e -> string_of_int (misses e)) [ 32; 64; 128; 256 ])
      specs
  in
  Report.print_table
    ~title:"Ablation: TLB size sensitivity (single-page-size misses)"
    ~header:[ "workload"; "32"; "64"; "128"; "256" ]
    ~rows

let ablation_guarded ?(options = default_options) ?domains () =
  let specs = [ Workload.Table1.gcc; Workload.Table1.ml ] in
  let rows =
    par_map ?domains
      (fun spec ->
        let run =
          Access_exp.run ~seed:options.seed ~length:options.length
            ~placement_p:options.placement_p ~design:Access_exp.Single
            ~pt_kinds:
              [
                Factory.Forward_mapped;
                Factory.Forward_guarded;
                Factory.clustered16;
              ]
            spec
        in
        spec.Workload.Spec.name
        :: List.map
             (fun r -> Report.lines_metric r.Access_exp.mean_lines)
             run.Access_exp.results)
      specs
  in
  Report.print_table
    ~title:"Ablation: guarded page tables [Lied95] vs clustered"
    ~header:[ "workload"; "fwd-mapped"; "fwd-guarded"; "clustered" ]
    ~rows;
  Report.note
    "Guards compress single-child levels, but the tree still branches: \
     Section 2 calls the technique \"partially effective but still \
     require many levels\"."

let ablation_shared_table ?(options = default_options) ?domains () =
  (* gcc: four processes.  Per-process: one clustered table each, its
     own 4096 buckets.  Shared: one table, same total bucket count,
     VPNs tagged with the process id in the top bits. *)
  let spec = Workload.Table1.gcc in
  let snap = Workload.Snapshot.generate spec ~seed:options.seed in
  let assignments =
    List.mapi
      (fun i proc ->
        Builder.assign proc ~placement_p:options.placement_p
          ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
          ())
      snap.Workload.Snapshot.procs
  in
  let tag proc vpn =
    Int64.logor vpn (Int64.shift_left (Int64.of_int (proc + 1)) 52)
  in
  let per_process_tables =
    (* independent tables: build one per domain-pool job.  The shared
       table below stays serial — its chain order depends on global
       insertion order *)
    par_map ?domains
      (fun a ->
        let t = Clustered_pt.Table.create (Clustered_pt.Config.make ()) in
        Builder.populate
          (Pt_common.Intf.Instance ((module Clustered_pt.Table), t))
          a ~policy:`Base;
        t)
      assignments
    |> Array.of_list
  in
  let per_process =
    Array.map
      (fun t -> Pt_common.Intf.Instance ((module Clustered_pt.Table), t))
      per_process_tables
  in
  let shared = Clustered_pt.Table.create (Clustered_pt.Config.make ()) in
  List.iteri
    (fun proc a ->
      List.iter
        (fun (b : Builder.block_info) ->
          List.iter
            (fun (boff, ppn) ->
              let vpn =
                Int64.add
                  (Int64.shift_left b.Builder.vpbn 4)
                  (Int64.of_int boff)
              in
              Clustered_pt.Table.insert_base shared ~vpn:(tag proc vpn) ~ppn
                ~attr:Builder.attr)
            b.Builder.boffs_ppns)
        a.Builder.blocks)
    assignments;
  (* chain statistics *)
  let max_chain table =
    let m = ref 0 in
    for b = 0 to 4095 do
      m := max !m (Clustered_pt.Table.chain_length table ~bucket:b)
    done;
    !m
  in
  (* mean lines over each process's pages, both ways *)
  let counter_pp = Mem.Cache_model.create_counter () in
  let counter_sh = Mem.Cache_model.create_counter () in
  let acc = Mem.Walk_acc.create () in
  List.iteri
    (fun proc a ->
      List.iter
        (fun (b : Builder.block_info) ->
          List.iter
            (fun (boff, _) ->
              let vpn =
                Int64.add
                  (Int64.shift_left b.Builder.vpbn 4)
                  (Int64.of_int boff)
              in
              Mem.Walk_acc.reset acc;
              ignore (Pt_common.Intf.lookup_into per_process.(proc) acc ~vpn);
              ignore (Mem.Cache_model.record_acc counter_pp acc);
              Mem.Walk_acc.reset acc;
              ignore
                (Clustered_pt.Table.lookup_into shared acc ~vpn:(tag proc vpn));
              ignore (Mem.Cache_model.record_acc counter_sh acc))
            b.Builder.boffs_ppns)
        a.Builder.blocks)
    assignments;
  Report.print_table
    ~title:"Ablation: shared vs per-process clustered tables (gcc)"
    ~header:[ "organization"; "tables"; "max chain"; "lines/lookup" ]
    ~rows:
      [
        [
          "per-process";
          string_of_int (Array.length per_process);
          string_of_int
            (Array.fold_left
               (fun acc t -> max acc (max_chain t))
               0 per_process_tables);
          Report.lines_metric (Mem.Cache_model.mean_lines counter_pp);
        ];
        [
          "shared, pid-tagged";
          "1";
          string_of_int (max_chain shared);
          Report.lines_metric (Mem.Cache_model.mean_lines counter_sh);
        ];
      ];
  Report.note
    "Section 7: a shared table's hash distribution depends on the whole \
     process mix; per-process tables keep lookups predictable."

(* Serial: one spec, and both software TLBs mutate as the trace runs. *)
let ablation_software_tlb ?(options = default_options) () =
  let spec = Workload.Table1.ml in
  let snap = Workload.Snapshot.generate spec ~seed:options.seed in
  let assignments =
    List.mapi
      (fun i proc ->
        Builder.assign proc ~placement_p:options.placement_p
          ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
          ())
      snap.Workload.Snapshot.procs
  in
  (* a conventional TSB: 4096 16-byte entries (64 KB, reach 16 MB) and
     the clustered TSB: 512 144-byte slots (72 KB, reach 32 MB) *)
  let conventional = Baselines.Software_tlb.create ~entries:4096 () in
  let conventional_i =
    Pt_common.Intf.Instance ((module Baselines.Software_tlb), conventional)
  in
  let clustered_tsb = Clustered_pt.Clustered_tsb.create ~slots:512 () in
  let clustered_i =
    Pt_common.Intf.Instance ((module Clustered_pt.Clustered_tsb), clustered_tsb)
  in
  List.iter
    (fun a ->
      Builder.populate conventional_i a ~policy:`Base;
      Builder.populate clustered_i a ~policy:`Base)
    assignments;
  let trace =
    Workload.Trace.generate spec snap
      ~seed:(Int64.add options.seed 0x77L)
      ~length:options.length
  in
  let tlb = Tlb.Intf.fa ~entries:64 () in
  let c_conv = Mem.Cache_model.create_counter () in
  let c_clus = Mem.Cache_model.create_counter () in
  let acc = Mem.Walk_acc.create () in
  Array.iter
    (function
      | Workload.Trace.Switch _ -> Tlb.Intf.flush tlb
      | Workload.Trace.Access (_, vpn) -> (
          match Tlb.Intf.access tlb ~vpn with
          | `Hit -> ()
          | `Block_miss | `Subblock_miss -> (
              Mem.Walk_acc.reset acc;
              let tr1 = Pt_common.Intf.lookup_into conventional_i acc ~vpn in
              ignore (Mem.Cache_model.record_acc c_conv acc);
              Mem.Walk_acc.reset acc;
              ignore (Pt_common.Intf.lookup_into clustered_i acc ~vpn);
              ignore (Mem.Cache_model.record_acc c_clus acc);
              match tr1 with
              | Some tr -> Tlb.Intf.fill tlb tr
              | None -> ()))
      | _ -> ())
    trace;
  let ratio hits misses =
    let t = hits + misses in
    if t = 0 then 0.0 else float_of_int hits /. float_of_int t
  in
  Report.print_table
    ~title:"Ablation: conventional TSB vs clustered TSB (ML, ~64KB each)"
    ~header:[ "software TLB"; "bytes"; "reach"; "hit ratio"; "lines/miss" ]
    ~rows:
      [
        [
          "conventional (4096x1 page)";
          string_of_int (4096 * 16);
          "16MB";
          Printf.sprintf "%.2f"
            (ratio
               (Baselines.Software_tlb.tsb_hits conventional)
               (Baselines.Software_tlb.tsb_misses conventional));
          Report.lines_metric (Mem.Cache_model.mean_lines c_conv);
        ];
        [
          "clustered (512x16 pages)";
          string_of_int (512 * 144);
          "32MB";
          Printf.sprintf "%.2f"
            (ratio
               (Clustered_pt.Clustered_tsb.tsb_hits clustered_tsb)
               (Clustered_pt.Clustered_tsb.tsb_misses clustered_tsb));
          Report.lines_metric (Mem.Cache_model.mean_lines c_clus);
        ];
      ];
  Report.note
    "Section 7 / [Tall95]: clustering the software TLB gives one tag per \
     page block, tripling reach at equal bytes."

let ablation_nested_linear ?(options = default_options) ?domains () =
  let rows =
    par_map ?domains
      (fun spec ->
        let snap = Workload.Snapshot.generate spec ~seed:options.seed in
        let assignments =
          List.mapi
            (fun i proc ->
              Builder.assign proc ~placement_p:options.placement_p
                ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
                ())
            snap.Workload.Snapshot.procs
          |> Array.of_list
        in
        let build kind =
          Array.map
            (fun a ->
              let pt = Factory.make kind in
              Builder.populate pt a ~policy:`Base;
              pt)
            assignments
        in
        let reference = build Factory.clustered16 in
        (* concrete linear tables (to ask for leaf-page VPNs) and the
           hashed side table holding the page table's own mappings *)
        let linears =
          Array.map
            (fun a ->
              let t = Baselines.Linear_pt.create () in
              Builder.populate
                (Pt_common.Intf.Instance ((module Baselines.Linear_pt), t))
                a ~policy:`Base;
              t)
            assignments
        in
        let side = Baselines.Hashed_pt.create () in
        Array.iteri
          (fun pi a ->
            List.iter
              (fun (b : Builder.block_info) ->
                List.iter
                  (fun (boff, _) ->
                    let vpn =
                      Int64.add
                        (Int64.shift_left b.Builder.vpbn 4)
                        (Int64.of_int boff)
                    in
                    let leaf =
                      Baselines.Linear_pt.leaf_page_vpn linears.(pi) ~vpn
                    in
                    (* the side table maps page-table pages; tag the
                       process into low PPN bits to keep entries apart *)
                    Baselines.Hashed_pt.insert_base side ~vpn:leaf
                      ~ppn:(Int64.of_int pi) ~attr:Builder.attr)
                  b.Builder.boffs_ppns)
              a.Builder.blocks)
          assignments;
        let trace =
          Workload.Trace.generate spec snap
            ~seed:(Int64.add options.seed 0x77L)
            ~length:options.length
        in
        (* drive the data TLB; on each miss consult the reserved
           8-entry TLB for the page table's own mapping *)
        let tlb = Tlb.Intf.fa ~entries:56 () in
        let reserved = Tlb.Intf.fa ~entries:8 () in
        let misses = ref 0 and nested = ref 0 in
        let counter = Mem.Cache_model.create_counter () in
        let acc = Mem.Walk_acc.create () in
        Array.iter
          (function
            | Workload.Trace.Switch _ -> Tlb.Intf.flush tlb
            | Workload.Trace.Access (proc, vpn) -> (
                match Tlb.Intf.access tlb ~vpn with
                | `Hit -> ()
                | `Block_miss | `Subblock_miss -> (
                    incr misses;
                    let leaf =
                      Baselines.Linear_pt.leaf_page_vpn linears.(proc) ~vpn
                    in
                    Mem.Walk_acc.reset acc;
                    ignore
                      (Baselines.Linear_pt.lookup_into linears.(proc) acc ~vpn);
                    (match Tlb.Intf.access reserved ~vpn:leaf with
                    | `Hit -> ()
                    | `Block_miss | `Subblock_miss -> (
                        incr nested;
                        match
                          Baselines.Hashed_pt.lookup_into side acc ~vpn:leaf
                        with
                        | Some tr -> Tlb.Intf.fill reserved tr
                        | None -> ()));
                    ignore (Mem.Cache_model.record_acc counter acc);
                    Mem.Walk_acc.reset acc;
                    match
                      Pt_common.Intf.lookup_into reference.(proc) acc ~vpn
                    with
                    | Some tr -> Tlb.Intf.fill tlb tr
                    | None -> ()))
            | _ -> ())
          trace;
        let r = float_of_int !nested /. float_of_int (max 1 !misses) in
        [
          spec.Workload.Spec.name;
          string_of_int !misses;
          Printf.sprintf "%.3f" r;
          Report.lines_metric (Mem.Cache_model.mean_lines counter);
        ])
      [ Workload.Table1.coral; Workload.Table1.future64 ]
  in
  Report.print_table
    ~title:
      "Ablation: linear-table nested misses (8 reserved TLB entries, \
       hashed side table)"
    ~header:[ "workload"; "misses"; "r (nested ratio)"; "lines/miss" ]
    ~rows;
  Report.note
    "Table 2's 1 + r*m: the paper's 32-bit workloads never overflow the \
     reserved entries (footnote 2); a sparse 64-bit address space does."

let ablation_variable_factor ?(options = default_options) ?domains () =
  let specs =
    [
      Workload.Table1.ml;
      Workload.Table1.coral;
      Workload.Table1.spice;
      Workload.Table1.gcc;
      Workload.Table1.future64;
    ]
  in
  let rows =
    par_map ?domains
      (fun spec ->
        let assignments =
          let snap = Workload.Snapshot.generate spec ~seed:options.seed in
          List.mapi
            (fun i proc ->
              Builder.assign proc ~placement_p:options.placement_p
                ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
                ())
            snap.Workload.Snapshot.procs
        in
        let hashed = Size_exp.size_of Factory.Hashed ~policy:`Base ~assignments in
        let ratio kind =
          float_of_int (Size_exp.size_of kind ~policy:`Base ~assignments)
          /. float_of_int hashed
        in
        [
          spec.Workload.Spec.name;
          Report.ratio (ratio Factory.clustered16);
          Report.ratio (ratio (Factory.Clustered { subblock_factor = 4 }));
          Report.ratio (ratio Factory.Clustered_variable);
        ])
      specs
  in
  Report.print_table
    ~title:"Ablation: variable subblock factors ([Tall95], Section 3)"
    ~header:[ "workload"; "fixed k=16"; "fixed k=4"; "variable" ]
    ~rows;
  Report.note
    "The variable table matches whichever fixed factor suits each \
     workload's density: \"better memory utilization\" for a few extra \
     miss-handler instructions."

let ablation_replacement ?(options = default_options) ?domains () =
  let specs = trace_specs options in
  let rows =
    par_map ?domains
      (fun spec ->
        let snap = Workload.Snapshot.generate spec ~seed:options.seed in
        let reference =
          List.mapi
            (fun i proc ->
              let a =
                Builder.assign proc ~placement_p:options.placement_p
                  ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
                  ()
              in
              let pt = Factory.make Factory.clustered16 in
              Builder.populate pt a ~policy:`Base;
              pt)
            snap.Workload.Snapshot.procs
          |> Array.of_list
        in
        let trace =
          Workload.Trace.generate spec snap
            ~seed:(Int64.add options.seed 0x77L)
            ~length:options.length
        in
        let acc = Mem.Walk_acc.create () in
        let misses policy =
          let tlb = Tlb.Intf.fa ~policy ~entries:64 () in
          Array.iter
            (function
              | Workload.Trace.Switch _ -> Tlb.Intf.flush tlb
              | Workload.Trace.Access (proc, vpn) -> (
                  match Tlb.Intf.access tlb ~vpn with
                  | `Hit -> ()
                  | `Block_miss | `Subblock_miss -> (
                      Mem.Walk_acc.reset acc;
                      match
                        Pt_common.Intf.lookup_into reference.(proc) acc ~vpn
                      with
                      | Some tr -> Tlb.Intf.fill tlb tr
                      | None -> ()))
              | _ -> ())
            trace;
          Tlb.Stats.misses (Tlb.Intf.stats tlb)
        in
        spec.Workload.Spec.name
        :: List.map
             (fun p -> string_of_int (misses p))
             [ Tlb.Assoc.Lru; Tlb.Assoc.Fifo; Tlb.Assoc.Random 0xC0DEL ])
      specs
  in
  Report.print_table
    ~title:"Ablation: TLB replacement policy (64-entry conventional TLB)"
    ~header:[ "workload"; "LRU"; "FIFO"; "random (R4000-style)" ]
    ~rows;
  Report.note
    "The paper assumes LRU; the MIPS R4000 replaces a random non-wired \
     entry.  Figure 11's lines-per-miss metric is unchanged by policy."

let extension_future64 ?(options = default_options) ?domains () =
  let rows =
    Size_exp.figure9 ~seed:options.seed ?domains
      ~specs:[ Workload.Table1.future64 ] ()
  in
  (match rows with
  | [ row ] ->
      Report.print_table
        ~title:"Extension: the Section 6.2 'future 64-bit workload'"
        ~header:
          ("pages"
          :: List.map (fun c -> c.Size_exp.label) row.Size_exp.cells)
        ~rows:
          [
            string_of_int row.Size_exp.pages
            :: List.map
                 (fun c -> Report.ratio c.Size_exp.ratio)
                 row.Size_exp.cells;
          ]
  | _ -> ());
  Report.note
    "60k pages scattered through 16 TB: linear and forward-mapped tables \
     collapse while clustered stays under the hashed baseline — \"such \
     workloads would make ... both hashed and clustered page tables more \
     attractive\" (Section 6.2)."

(* --- Extension: dynamic address-space churn (lib/dynamics) --- *)

type churn_row = {
  churn_name : string;  (* table label, e.g. "clustered-16" *)
  churn_policy : string;  (* "base" | "sp" | "psb" *)
  churn_seeds : int;
  churn_peak_kb : float;  (* mean over seeds of the sampled peak *)
  churn_final_bytes : float;  (* mean over seeds, after the drain *)
  churn_insert_lines : float;  (* mean cache lines per insert walk *)
  churn_delete_lines : float;
  churn_promotions : int;  (* summed over seeds *)
  churn_demotions : int;
  churn_cow_breaks : int;
  churn_final_nodes : int;  (* seed-0 run; 0 when the org has no probe *)
  churn_series : (int * int * int) list;
      (* seed-0 time series: (op, live pages, pt bytes) *)
}

let churn_policy_tag = function
  | Os_policy.Address_space.Base_only -> "base"
  | Os_policy.Address_space.Partial_subblock -> "psb"
  | Os_policy.Address_space.Superpage_promotion -> "sp"

(* Every organization family, each under the strongest page-size policy
   it supports: orgs without superpage storage run base-only, the rest
   promote, and clustered additionally runs the psb policy. *)
let churn_configs =
  [
    (Factory.Linear1, Os_policy.Address_space.Superpage_promotion);
    (Factory.Forward_mapped, Os_policy.Address_space.Superpage_promotion);
    (Factory.Hashed, Os_policy.Address_space.Base_only);
    ( Factory.Hashed_two_tables { coarse_first = false },
      Os_policy.Address_space.Superpage_promotion );
    (Factory.Inverted, Os_policy.Address_space.Base_only);
    (Factory.Software_tlb, Os_policy.Address_space.Base_only);
    (Factory.clustered16, Os_policy.Address_space.Superpage_promotion);
    (Factory.clustered16, Os_policy.Address_space.Partial_subblock);
    (Factory.Clustered_variable, Os_policy.Address_space.Superpage_promotion);
    (Factory.Clustered_two_tables, Os_policy.Address_space.Superpage_promotion);
  ]

let churn ?(options = default_options) ?domains ?(seeds = 3) ?(ops = 8_000)
    ?(procs = 8) ?(sample_every = 0) () =
  let seeds = max 1 seeds in
  let sample_every =
    if sample_every <= 0 then max 1 (ops / 16) else sample_every
  in
  let spec = { Dynamics.Churn.default with ops; max_procs = max 1 procs } in
  (* jobs are (config, seed-index) pairs; both the trace seed and the
     engine are functions of the pair alone, so the fan-out is
     bit-identical for any domain count *)
  let jobs =
    List.concat_map
      (fun cfg -> List.init seeds (fun s -> (cfg, s)))
      churn_configs
  in
  let results =
    par_map ?domains
      (fun ((kind, policy), s) ->
        let seed = Int64.add options.seed (Int64.of_int (0x6C1 * s)) in
        let trace = Dynamics.Churn.generate ~spec ~seed () in
        let cfg =
          {
            Dynamics.Engine.make_pt = (fun () -> Factory.make_probed kind);
            policy;
            subblock_factor = 16;
            total_pages = 1 lsl 18;
            sample_every;
            line_size = Mem.Cache_model.default_line_size;
          }
        in
        Dynamics.Engine.run cfg trace)
      jobs
  in
  let rec chunk = function
    | [] -> []
    | rs ->
        let rec split i acc = function
          | r :: tl when i < seeds -> split (i + 1) (r :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        let group, rest = split 0 [] rs in
        group :: chunk rest
  in
  let groups = chunk results in
  let mean f rs =
    List.fold_left (fun acc r -> acc +. f r) 0.0 rs /. float_of_int seeds
  in
  let sum f rs = List.fold_left (fun acc r -> acc + f r) 0 rs in
  let rows =
    List.map2
      (fun (kind, policy) rs ->
        let first = List.hd rs in
        {
          churn_name = Factory.name kind;
          churn_policy = churn_policy_tag policy;
          churn_seeds = seeds;
          churn_peak_kb =
            mean
              (fun r ->
                float_of_int r.Dynamics.Engine.peak_pt_bytes /. 1024.0)
              rs;
          churn_final_bytes =
            mean (fun r -> float_of_int r.Dynamics.Engine.final_pt_bytes) rs;
          churn_insert_lines = mean (fun r -> r.Dynamics.Engine.insert_lines) rs;
          churn_delete_lines = mean (fun r -> r.Dynamics.Engine.delete_lines) rs;
          churn_promotions = sum (fun r -> r.Dynamics.Engine.promotions) rs;
          churn_demotions = sum (fun r -> r.Dynamics.Engine.demotions) rs;
          churn_cow_breaks = sum (fun r -> r.Dynamics.Engine.cow_breaks) rs;
          churn_final_nodes = first.Dynamics.Engine.final_pt_nodes;
          churn_series =
            Array.to_list
              (Array.map
                 (fun (s : Dynamics.Engine.sample) ->
                   (s.op, s.live_pages, s.pt_bytes))
                 first.Dynamics.Engine.samples);
        })
      churn_configs groups
  in
  let label row = row.churn_name ^ "/" ^ row.churn_policy in
  (* publish the seed-0 footprint series (already domain-invariant:
     each sample is a pure function of (config, seed 0)) *)
  List.iter
    (fun r ->
      List.iter
        (fun (op, live, bytes) ->
          Obs.Series.push ~label:("churn:" ^ label r) ~index:op
            [ ("churn.live_pages", live); ("churn.pt_bytes", bytes) ])
        r.churn_series)
    rows;
  Report.print_table
    ~title:
      (Printf.sprintf
         "Churn: page-table modify costs under address-space churn (%d ops, \
          %d seed%s)"
         ops seeds
         (if seeds = 1 then "" else "s"))
    ~header:
      [
        "table"; "peak KB"; "final B"; "ins lines"; "del lines"; "promote";
        "demote"; "cow copy";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             label r;
             Printf.sprintf "%.1f" r.churn_peak_kb;
             Printf.sprintf "%.0f" r.churn_final_bytes;
             Report.lines_metric r.churn_insert_lines;
             Report.lines_metric r.churn_delete_lines;
             string_of_int r.churn_promotions;
             string_of_int r.churn_demotions;
             string_of_int r.churn_cow_breaks;
           ])
         rows);
  Report.note
    "Mmap/munmap/fork/exit/COW streams from lib/dynamics: inserts and \
     deletes are charged the cache lines of the walk that finds the slot \
     (Section 3.1); the drain suffix unmaps everything, so 'final B' is \
     each table's empty footprint — node-based and linear tables reclaim \
     fully, forward-mapped keeps its upper-level directory, and the \
     fixed-size structures (inverted frame table, TSB arrays) never \
     shrink.";
  (* the Figure-9-over-time headline: footprint tracking live mappings *)
  (match rows with
  | first :: _ ->
      let steps = List.length first.churn_series in
      let series_rows =
        List.init steps (fun i ->
            let op, live, _ = List.nth first.churn_series i in
            string_of_int op :: string_of_int live
            :: List.map
                 (fun r ->
                   let _, _, bytes = List.nth r.churn_series i in
                   Printf.sprintf "%.1f" (float_of_int bytes /. 1024.0))
                 rows)
      in
      Report.print_table
        ~title:"Churn: page-table KB over time (seed 0)"
        ~header:("op" :: "live pages" :: List.map label rows)
        ~rows:series_rows;
      Report.note
        "Clustered footprints track the live-page curve through the \
         grow/churn/shrink phases and return to the empty-table baseline \
         after the drain; replicating organizations swing far wider for \
         the same mappings."
  | [] -> ());
  rows

let all ?(options = default_options) ?domains () =
  ignore (table1 ~options ?domains ());
  ignore (figure9 ~options ?domains ());
  ignore (figure10 ~options ?domains ());
  ignore (figure11 ~options ?domains ~design:Access_exp.Single ());
  ignore (figure11 ~options ?domains ~design:Access_exp.Superpage ());
  ignore (figure11 ~options ?domains ~design:Access_exp.Psb ());
  ignore (figure11 ~options ?domains ~design:Access_exp.Csb ());
  table2 ~options ?domains ();
  ignore (ablation_line_size ~options ?domains ());
  ablation_subblock ~options ?domains ();
  ignore (ablation_buckets ~options ?domains ());
  ignore (ablation_residency ~options ?domains ());
  ablation_reverse_order ~options ?domains ();
  ignore (ablation_asid ~options ?domains ());
  ablation_placement ~options ?domains ();
  ablation_tlb_size ~options ?domains ();
  ablation_software_tlb ~options ();
  ablation_shared_table ~options ?domains ();
  ablation_guarded ~options ?domains ();
  ablation_nested_linear ~options ?domains ();
  ablation_variable_factor ~options ?domains ();
  ablation_replacement ~options ?domains ();
  extension_future64 ~options ?domains ()

(* churn defaults scaled for [all]-style full runs vs --quick smokes *)
let churn_for_suite ?(options = default_options) ?domains () =
  churn ~options ?domains
    ~seeds:(if options.quick then 1 else 2)
    ~ops:(if options.quick then 2_000 else 6_000)
    ()

type verify_report = {
  claims : (string * bool) list;
  lines_per_miss : (string * string * float) list;
}

let verify_report ?(options = default_options) ?domains () =
  let acc = ref [] in
  let check name cond = acc := (name, cond) :: !acc in
  (* Figure 9 *)
  let rows = Size_exp.figure9 ~seed:options.seed ?domains () in
  let get row label =
    (List.find (fun c -> c.Size_exp.label = label) row.Size_exp.cells)
      .Size_exp.ratio
  in
  check "Fig 9: clustered < hashed on every workload"
    (List.for_all (fun r -> get r "clustered" < 1.0) rows);
  check "Fig 9: clustered <= 1-level linear on every workload"
    (List.for_all (fun r -> get r "clustered" <= get r "linear-1L") rows);
  check "Fig 9: 6-level linear > 5x hashed on gcc and compress"
    (List.for_all
       (fun r -> get r "linear-6L" > 5.0)
       (List.filter
          (fun r ->
            r.Size_exp.workload = "gcc" || r.Size_exp.workload = "compress")
          rows));
  (* Figure 10 *)
  let rows10 =
    Size_exp.figure10 ~seed:options.seed ?domains
      ~placement_p:options.placement_p ()
  in
  (* the paper's claims are "upto 75%" / "upto 80%": best-case cuts *)
  let best f =
    List.fold_left (fun acc r -> max acc (f r)) 0.0 rows10
  in
  check "Fig 10: superpage PTEs never grow the table"
    (List.for_all (fun r -> get r "clustered+sp" <= get r "clustered") rows10);
  check "Fig 10: superpage PTEs cut clustered size by up to >= 55%"
    (best (fun r -> 1.0 -. (get r "clustered+sp" /. get r "clustered")) >= 0.55);
  check "Fig 10: psb PTEs cut clustered size by up to >= 75%"
    (best (fun r -> 1.0 -. (get r "clustered+psb" /. get r "clustered")) >= 0.75);
  (* Figure 11, on a fast subset *)
  let spec = Workload.Table1.nasa7 in
  let mean run pt_prefix =
    (List.find
       (fun r ->
         String.length r.Access_exp.pt >= String.length pt_prefix
         && String.sub r.Access_exp.pt 0 (String.length pt_prefix) = pt_prefix)
       run.Access_exp.results)
      .Access_exp.mean_lines
  in
  let run design =
    Access_exp.run ~seed:options.seed ~length:options.length ~design
      ~pt_kinds:(Access_exp.kinds_for design) spec
  in
  let a = run Access_exp.Single in
  check "Fig 11a: forward-mapped = 7 lines/miss" (mean a "fwd-mapped" = 7.0);
  check "Fig 11a: clustered within 20% of one line" (mean a "clustered" < 1.2);
  let b = run Access_exp.Superpage in
  check "Fig 11b: superpages cut misses by > 50%"
    ((List.hd b.Access_exp.results).Access_exp.misses * 2
    < (List.hd a.Access_exp.results).Access_exp.misses);
  check "Fig 11b: hashed pays more than clustered"
    (mean b "hashed" > mean b "clustered");
  let d = run Access_exp.Csb in
  check "Fig 11d: prefetch from hashed costs > 8 lines" (mean d "hashed" > 8.0);
  check "Fig 11d: prefetch from clustered stays near one line"
    (mean d "clustered" < 1.5);
  (* Table 2 *)
  let snap = Workload.Snapshot.generate spec ~seed:options.seed in
  let assignments =
    List.mapi
      (fun i proc ->
        Builder.assign proc ~placement_p:options.placement_p
          ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
          ())
      snap.Workload.Snapshot.procs
  in
  let n p = nactive snap p in
  check "Table 2: clustered size = (8s+16) * Nactive(16)"
    (Size_exp.size_of Factory.clustered16 ~policy:`Base ~assignments
    = Analytic.clustered_size ~subblock_factor:16 ~nactive_s:(n 16));
  check "Table 2: hashed size = 24 * Nactive(1)"
    (Size_exp.size_of Factory.Hashed ~policy:`Base ~assignments
    = Analytic.hashed_size ~nactive1:(n 1));
  let lines_of tag run =
    List.map
      (fun r -> (tag, r.Access_exp.pt, r.Access_exp.mean_lines))
      run.Access_exp.results
  in
  {
    claims = List.rev !acc;
    lines_per_miss =
      lines_of "single" a @ lines_of "superpage" b @ lines_of "csb" d;
  }

let verify ?(options = default_options) ?domains () =
  Printf.printf "\n== Verifying the paper's headline claims ==\n";
  let report = verify_report ~options ?domains () in
  List.iter
    (fun (name, cond) ->
      Printf.printf "  [%s] %s\n%!" (if cond then "PASS" else "FAIL") name)
    report.claims;
  let ok = List.for_all snd report.claims in
  Printf.printf "%s\n"
    (if ok then "All headline claims hold." else "SOME CLAIMS FAILED.");
  ok

(* --- service throughput (lib/service): ops/sec vs domains --- *)

type throughput_row = {
  tp_org : string;
  tp_locking : string;
  tp_domains : int;
  tp_total_ops : int;
  tp_elapsed_s : float;
  tp_ops_per_sec : float;
  tp_read_locks : int;
  tp_write_locks : int;
  tp_read_contention : int;
  tp_sq_retries : int;
  tp_sq_fallbacks : int;
  tp_population : int;
}

let row_of_result (r : Pt_service.Throughput.result) =
  {
    tp_org = Pt_service.Service.org_name r.Pt_service.Throughput.org;
    tp_locking =
      Pt_service.Service.locking_name r.Pt_service.Throughput.locking;
    tp_domains = r.Pt_service.Throughput.domains;
    tp_total_ops = r.Pt_service.Throughput.total_ops;
    tp_elapsed_s = r.Pt_service.Throughput.elapsed_s;
    tp_ops_per_sec = r.Pt_service.Throughput.ops_per_sec;
    tp_read_locks = r.Pt_service.Throughput.read_locks;
    tp_write_locks = r.Pt_service.Throughput.write_locks;
    tp_read_contention = r.Pt_service.Throughput.read_contention;
    tp_sq_retries = r.Pt_service.Throughput.seqlock_retries;
    tp_sq_fallbacks = r.Pt_service.Throughput.seqlock_fallbacks;
    tp_population = r.Pt_service.Throughput.population;
  }

let throughput ?(domains_list = [ 1; 2; 4; 8 ]) ?(streams = 0)
    ?(ops_per_domain = 100_000) ?(vpns_per_domain = 4_096) ?(seed = 42)
    ?(pairs =
      Pt_service.Service.
        [
          (Clustered, Striped);
          (Clustered, Global);
          (Clustered, Seqlock);
          (Hashed, Striped);
          (Hashed, Global);
          (Hashed, Seqlock);
        ]) () =
  let m = Pt_service.Throughput.default_mix in
  Printf.printf "\n== Service throughput: mixed ops against one shared table ==\n";
  Printf.printf
    "  mix %d/%d/%d/%d lookup/insert/remove/protect; %d ops, %d-page \
     working set per domain\n"
    m.Pt_service.Throughput.lookup_pct m.Pt_service.Throughput.insert_pct
    m.Pt_service.Throughput.remove_pct m.Pt_service.Throughput.protect_pct
    ops_per_domain vpns_per_domain;
  Printf.printf "  %-10s %-8s %8s %14s %9s %12s %12s\n" "table" "locking"
    "domains" "ops/sec" "speedup" "read locks" "write locks";
  List.concat_map
    (fun (org, locking) ->
      let base_rate = ref 0.0 in
      List.mapi
        (fun i domains ->
          let cfg =
            {
              Pt_service.Throughput.default_config with
              domains;
              streams;
              ops_per_domain;
              vpns_per_domain;
              seed;
            }
          in
          let r = Pt_service.Throughput.run ~org ~locking cfg in
          (* series point per completed row; the index is the row's
             position in the sweep, not the domain count, so a
             single-row sweep marks index 0 for any --domains *)
          Obs.Series.mark
            ~label:
              (Printf.sprintf "throughput:%s/%s"
                 (Pt_service.Service.org_name org)
                 (Pt_service.Service.locking_name locking))
            ~index:i;
          if !base_rate = 0.0 then
            base_rate := r.Pt_service.Throughput.ops_per_sec;
          Printf.printf "  %-10s %-8s %8d %14.0f %8.2fx %12d %12d\n%!"
            (Pt_service.Service.org_name org)
            (Pt_service.Service.locking_name locking)
            domains r.Pt_service.Throughput.ops_per_sec
            (r.Pt_service.Throughput.ops_per_sec /. !base_rate)
            r.Pt_service.Throughput.read_locks
            r.Pt_service.Throughput.write_locks;
          row_of_result r)
        domains_list)
    pairs

let throughput_for_suite ?(options = default_options) () =
  if options.quick then
    throughput ~domains_list:[ 1; 2 ] ~ops_per_domain:20_000 ()
  else throughput ()

(* Lookup-throughput-vs-domains under the read-mostly mix: the
   lock-free (seqlock) read path against the striped lock it falls
   back to.  Few buckets on purpose — stripes are genuinely shared
   between domains, so the striped lock pays its cache-line ping-pong
   while optimistic readers touch no lock word at all.  [streams] is
   fixed across the sweep, keeping every logical column of a row
   (ops, write locks, population) identical for any domain count.

   Each row is run [reps] times and the median-rate rep is reported:
   with more domains than cores the timed region is at the mercy of
   the scheduler (and of stop-the-world GC rendezvous), and a single
   sample of a sub-second region is a coin flip.  The logical columns
   are identical across reps — only the clock varies. *)
let throughput_curve ?(domains_list = [ 1; 2; 4; 8 ]) ?(streams = 8)
    ?(ops_per_domain = 50_000) ?(vpns_per_domain = 2_048) ?(buckets = 256)
    ?(seed = 42) ?(reps = 5) () =
  let m = Pt_service.Throughput.read_mostly_mix in
  Printf.printf
    "\n== Lock-free lookup scaling: seqlock vs striped, read-mostly ==\n";
  Printf.printf
    "  mix %d/%d/%d/%d lookup/insert/remove/protect; %d streams over %d \
     buckets, %d ops per stream; median of %d reps\n"
    m.Pt_service.Throughput.lookup_pct m.Pt_service.Throughput.insert_pct
    m.Pt_service.Throughput.remove_pct m.Pt_service.Throughput.protect_pct
    streams buckets ops_per_domain reps;
  Printf.printf "  %-10s %-8s %8s %14s %9s %10s %10s %10s\n" "table" "locking"
    "domains" "ops/sec" "speedup" "rd locks" "retries" "fallbacks";
  List.concat_map
    (fun (org, locking) ->
      let base_rate = ref 0.0 in
      List.map
        (fun domains ->
          let cfg =
            {
              Pt_service.Throughput.default_config with
              domains;
              streams;
              ops_per_domain;
              vpns_per_domain;
              buckets;
              mix = m;
              seed;
            }
          in
          let runs =
            List.init (max 1 reps) (fun _ ->
                Pt_service.Throughput.run ~org ~locking cfg)
          in
          let r =
            List.nth
              (List.sort
                 (fun a b ->
                   compare a.Pt_service.Throughput.ops_per_sec
                     b.Pt_service.Throughput.ops_per_sec)
                 runs)
              (max 1 reps / 2)
          in
          if !base_rate = 0.0 then
            base_rate := r.Pt_service.Throughput.ops_per_sec;
          Printf.printf "  %-10s %-8s %8d %14.0f %8.2fx %10d %10d %10d\n%!"
            (Pt_service.Service.org_name org)
            (Pt_service.Service.locking_name locking)
            domains r.Pt_service.Throughput.ops_per_sec
            (r.Pt_service.Throughput.ops_per_sec /. !base_rate)
            r.Pt_service.Throughput.read_locks
            r.Pt_service.Throughput.seqlock_retries
            r.Pt_service.Throughput.seqlock_fallbacks;
          row_of_result r)
        domains_list)
    Pt_service.Service.
      [
        (Clustered, Seqlock);
        (Clustered, Striped);
        (Hashed, Seqlock);
        (Hashed, Striped);
      ]

let throughput_curve_for_suite ?(options = default_options) () =
  if options.quick then
    (* 4 domains stays in the quick sweep: the scaling claim the bench
       gate checks lives at >= 4.  Ops stay high enough that each row's
       timed region is long against scheduler and GC-rendezvous noise
       — at 10k ops per stream the 4-domain rows were coin flips. *)
    throughput_curve ~domains_list:[ 1; 2; 4 ] ~ops_per_domain:30_000 ()
  else throughput_curve ()

(* --- ptsim inspect: structural telemetry for built tables --- *)

type inspect_row = {
  ins_workload : string;
  ins_nodes : int;
  ins_bucket_obs : int;  (** chain-length observations = buckets x procs *)
  ins_chain_mean : float;
  ins_alpha : float;  (** analytic load factor, Nactive(s) / buckets *)
  ins_lines : float;  (** appendix lines-per-miss at that load factor *)
  ins_report : Obs.Probe.report;
}

(* Build each workload's per-process tables exactly as the size
   experiments do (fresh table per process, Base policy), probe their
   structure, and put the measured chain-length mean next to the
   appendix's load factor.  The probe observes every bucket, so the
   mean is node_count / buckets — with one node per active block under
   [`Base], that is alpha = Nactive(s) / buckets up to builder
   rounding, which is the 5%-agreement check [verify] leans on. *)
let inspect ?(options = default_options) ?domains
    ?(org = `Clustered) () =
  let specs = trace_specs options in
  let factor = match org with `Clustered -> 16 | `Hashed -> 1 in
  let org_name =
    match org with `Clustered -> "clustered" | `Hashed -> "hashed"
  in
  let rows =
    par_map ?domains
      (fun spec ->
        let snap = Workload.Snapshot.generate spec ~seed:options.seed in
        let assignments =
          List.mapi
            (fun i proc ->
              Builder.assign proc ~placement_p:options.placement_p
                ~seed:(Int64.add options.seed (Int64.of_int (i + 1)))
                ())
            snap.Workload.Snapshot.procs
        in
        let report = Obs.Probe.create () in
        let nodes = ref 0
        and buckets = ref 0 in
        List.iter
          (fun a ->
            match org with
            | `Clustered ->
                let table =
                  Clustered_pt.Table.create (Clustered_pt.Config.make ())
                in
                let pt =
                  Pt_common.Intf.Instance ((module Clustered_pt.Table), table)
                in
                Builder.populate pt a ~policy:`Base;
                ignore (Obs.Probe.clustered ~into:report table);
                nodes := !nodes + Clustered_pt.Table.node_count table;
                buckets := !buckets + Clustered_pt.Table.buckets table
            | `Hashed ->
                let table = Baselines.Hashed_pt.create () in
                let pt =
                  Pt_common.Intf.Instance ((module Baselines.Hashed_pt), table)
                in
                Builder.populate pt a ~policy:`Base;
                ignore (Obs.Probe.hashed ~into:report table);
                nodes := !nodes + Baselines.Hashed_pt.node_count table;
                buckets := !buckets + Baselines.Hashed_pt.buckets table)
          assignments;
        let alpha =
          float_of_int (nactive snap factor) /. float_of_int !buckets
        in
        let lines =
          match org with
          | `Clustered -> Analytic.clustered_lines ~load_factor:alpha
          | `Hashed -> Analytic.hashed_lines ~load_factor:alpha
        in
        (* export under a per-workload prefix so --metrics-out carries
           the same distributions the report prints *)
        Obs.Probe.to_metrics (Obs.Ambient.get ())
          ~prefix:("inspect." ^ spec.Workload.Spec.name)
          report;
        {
          ins_workload = spec.Workload.Spec.name;
          ins_nodes = !nodes;
          ins_bucket_obs = !buckets;
          ins_chain_mean = Obs.Hist.mean report.Obs.Probe.chain_length;
          ins_alpha = alpha;
          ins_lines = lines;
          ins_report = report;
        })
      specs
  in
  Printf.printf "\n== Structure: %s tables built per Table 1 workload ==\n"
    org_name;
  List.iter
    (fun row ->
      Printf.printf "\n-- %s (%d nodes over %d buckets) --\n" row.ins_workload
        row.ins_nodes row.ins_bucket_obs;
      Format.printf "%a@." Obs.Probe.pp row.ins_report)
    rows;
  Report.print_table
    ~title:
      (Printf.sprintf "Chain length vs appendix load factor (%s)" org_name)
    ~header:
      [ "workload"; "mean chain"; "analytic alpha"; "delta"; "lines/miss" ]
    ~rows:
      (List.map
         (fun row ->
           let delta =
             if row.ins_alpha = 0.0 then 0.0
             else
               100.0
               *. (row.ins_chain_mean -. row.ins_alpha)
               /. row.ins_alpha
           in
           [
             row.ins_workload;
             Printf.sprintf "%.4f" row.ins_chain_mean;
             Printf.sprintf "%.4f" row.ins_alpha;
             Printf.sprintf "%+.1f%%" delta;
             Printf.sprintf "%.3f" row.ins_lines;
           ])
         rows);
  Report.note
    "mean chain = nodes/buckets over every bucket; the appendix's \
     lines-per-miss is 1 + alpha/2 (Table 2).";
  rows

(* --- NUMA replication (PR 7) --- *)

type numa_suite = {
  numa_cfg : Numa.Numa_sim.config;
  numa_outcome : Numa.Numa_sim.outcome;
}

let numa_for_suite ?(options = default_options) ?(domains = 1) () =
  let base =
    if options.quick then Numa.Numa_sim.quick_config
    else Numa.Numa_sim.default_config
  in
  let cfg = { base with Numa.Numa_sim.domains } in
  let outcome = Numa.Numa_sim.run cfg in
  Format.printf "@.== NUMA-replicated service ==@.%a" Numa.Numa_sim.pp_outcome
    outcome;
  { numa_cfg = cfg; numa_outcome = outcome }

let numa_suite_json s = Numa.Numa_sim.outcome_to_json s.numa_cfg s.numa_outcome
let numa_suite_clean s = Numa.Numa_sim.all_clean s.numa_outcome

(* --- multi-tenant fleet (PR 8) --- *)

type fleet_suite = {
  fleet_cfg : Fleet.Fleet_sim.config;
  fleet_outcome : Fleet.Fleet_sim.outcome;
}

let fleet_for_suite ?(options = default_options) ?(domains = 1) () =
  let base =
    if options.quick then Fleet.Fleet_sim.quick_config
    else Fleet.Fleet_sim.default_config
  in
  let cfg = { base with Fleet.Fleet_sim.domains } in
  let outcome = Fleet.Fleet_sim.run cfg in
  Format.printf "@.== Multi-tenant fleet ==@.%a" Fleet.Fleet_sim.pp_outcome
    outcome;
  { fleet_cfg = cfg; fleet_outcome = outcome }

let fleet_suite_json s =
  Fleet.Fleet_sim.outcome_to_json ~timing:true s.fleet_cfg s.fleet_outcome

let fleet_suite_clean s = Fleet.Fleet_sim.all_clean s.fleet_outcome

(* --- crash/recovery chaos soak (PR 10) --- *)

type chaos_suite = {
  chaos_cfg : Fleet.Chaos_sim.config;
  chaos_outcome : Fleet.Chaos_sim.outcome;
}

let chaos_for_suite ?(options = default_options) ?(domains = 1) () =
  let base =
    if options.quick then Fleet.Chaos_sim.quick_config
    else Fleet.Chaos_sim.default_config
  in
  let cfg = { base with Fleet.Chaos_sim.domains } in
  let outcome = Fleet.Chaos_sim.run cfg in
  Format.printf "@.== Crash/recovery chaos soak ==@.%a"
    Fleet.Chaos_sim.pp_outcome outcome;
  { chaos_cfg = cfg; chaos_outcome = outcome }

let chaos_suite_json s =
  Fleet.Chaos_sim.outcome_to_json ~timing:true s.chaos_cfg s.chaos_outcome

let chaos_suite_clean s = Fleet.Chaos_sim.all_clean s.chaos_outcome
