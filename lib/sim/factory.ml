(** Constructing page-table instances for experiments.

    Each kind is a fresh table with its own simulated-memory arena, so
    size accounting never leaks across instances. *)

module Intf = Pt_common.Intf

type kind =
  | Linear6  (** six-level linear, all levels counted *)
  | Linear1  (** linear, leaf pages only ("1-level" in Figure 9) *)
  | Linear_hashed  (** leaf pages plus hashed upper structure (Table 2) *)
  | Forward_mapped
  | Forward_guarded  (** guarded page tables [Lied95] *)
  | Hashed  (** single page size *)
  | Hashed_two_tables of { coarse_first : bool }
  | Hashed_spindex
  | Hashed_packed  (** 16-byte PTEs, the Section 7 optimization *)
  | Clustered of { subblock_factor : int }
  | Clustered_variable  (** varying subblock factors ([Tall95], Section 3) *)
  | Clustered_two_tables
  | Inverted
  | Software_tlb
  | Clustered_tsb

let name = function
  | Linear6 -> "linear-6L"
  | Linear1 -> "linear-1L"
  | Linear_hashed -> "linear+hash"
  | Forward_mapped -> "fwd-mapped"
  | Forward_guarded -> "fwd-guarded"
  | Hashed -> "hashed"
  | Hashed_two_tables { coarse_first = false } -> "hashed+sp"
  | Hashed_two_tables { coarse_first = true } -> "hashed+sp-rev"
  | Hashed_spindex -> "hashed-spidx"
  | Hashed_packed -> "hashed-packed"
  | Clustered { subblock_factor } -> Printf.sprintf "clustered-%d" subblock_factor
  | Clustered_variable -> "clustered-var"
  | Clustered_two_tables -> "clustered-2t"
  | Inverted -> "inverted"
  | Software_tlb -> "software-tlb"
  | Clustered_tsb -> "clustered-tsb"

let make kind : Intf.instance =
  match kind with
  | Linear6 ->
      Intf.Instance
        ( (module Baselines.Linear_pt),
          Baselines.Linear_pt.create ~size_variant:`Six_level () )
  | Linear1 ->
      Intf.Instance
        ( (module Baselines.Linear_pt),
          Baselines.Linear_pt.create ~size_variant:`One_level () )
  | Linear_hashed ->
      Intf.Instance
        ( (module Baselines.Linear_pt),
          Baselines.Linear_pt.create ~size_variant:`Leaf_plus_hash () )
  | Forward_mapped ->
      Intf.Instance
        ((module Baselines.Forward_mapped_pt), Baselines.Forward_mapped_pt.create ())
  | Forward_guarded ->
      Intf.Instance
        ( (module Baselines.Forward_mapped_pt),
          Baselines.Forward_mapped_pt.create ~guarded:true () )
  | Hashed ->
      Intf.Instance ((module Baselines.Hashed_pt), Baselines.Hashed_pt.create ())
  | Hashed_two_tables { coarse_first } ->
      Intf.Instance
        ( (module Baselines.Hashed_pt),
          Baselines.Hashed_pt.create
            ~mode:(Baselines.Hashed_pt.Two_tables { coarse_first })
            () )
  | Hashed_spindex ->
      Intf.Instance
        ( (module Baselines.Hashed_pt),
          Baselines.Hashed_pt.create ~mode:Baselines.Hashed_pt.Superpage_index
            () )
  | Hashed_packed ->
      Intf.Instance
        ((module Baselines.Hashed_pt), Baselines.Hashed_pt.create ~packed:true ())
  | Clustered { subblock_factor } ->
      Intf.Instance
        ( (module Clustered_pt.Table),
          Clustered_pt.Table.create
            (Clustered_pt.Config.make ~subblock_factor ()) )
  | Clustered_variable ->
      Intf.Instance ((module Clustered_pt.Var_table), Clustered_pt.Var_table.create ())
  | Clustered_two_tables ->
      Intf.Instance ((module Clustered_pt.Multi_size), Clustered_pt.Multi_size.create ())
  | Inverted ->
      (* builder PPNs for unplaced pages start above 1M frames *)
      Intf.Instance
        ( (module Baselines.Inverted_pt),
          Baselines.Inverted_pt.create ~frames:(1 lsl 21) () )
  | Software_tlb ->
      Intf.Instance
        ((module Baselines.Software_tlb), Baselines.Software_tlb.create ())
  | Clustered_tsb ->
      Intf.Instance
        ((module Clustered_pt.Clustered_tsb), Clustered_pt.Clustered_tsb.create ())

let clustered16 = Clustered { subblock_factor = 16 }
