(** Constructing page-table instances for experiments.

    Each kind is a fresh table with its own simulated-memory arena, so
    size accounting never leaks across instances. *)

module Intf = Pt_common.Intf

type kind =
  | Linear6  (** six-level linear, all levels counted *)
  | Linear1  (** linear, leaf pages only ("1-level" in Figure 9) *)
  | Linear_hashed  (** leaf pages plus hashed upper structure (Table 2) *)
  | Forward_mapped
  | Forward_guarded  (** guarded page tables [Lied95] *)
  | Hashed  (** single page size *)
  | Hashed_two_tables of { coarse_first : bool }
  | Hashed_spindex
  | Hashed_packed  (** 16-byte PTEs, the Section 7 optimization *)
  | Clustered of { subblock_factor : int }
  | Clustered_variable  (** varying subblock factors ([Tall95], Section 3) *)
  | Clustered_two_tables
  | Inverted
  | Software_tlb
  | Clustered_tsb

let name = function
  | Linear6 -> "linear-6L"
  | Linear1 -> "linear-1L"
  | Linear_hashed -> "linear+hash"
  | Forward_mapped -> "fwd-mapped"
  | Forward_guarded -> "fwd-guarded"
  | Hashed -> "hashed"
  | Hashed_two_tables { coarse_first = false } -> "hashed+sp"
  | Hashed_two_tables { coarse_first = true } -> "hashed+sp-rev"
  | Hashed_spindex -> "hashed-spidx"
  | Hashed_packed -> "hashed-packed"
  | Clustered { subblock_factor } -> Printf.sprintf "clustered-%d" subblock_factor
  | Clustered_variable -> "clustered-var"
  | Clustered_two_tables -> "clustered-2t"
  | Inverted -> "inverted"
  | Software_tlb -> "software-tlb"
  | Clustered_tsb -> "clustered-tsb"

(* [make_probed] pairs the instance with a live-node-count probe where
   the organization keeps one (node-based tables), so the churn engine
   can report node counts alongside byte footprints.  Organizations
   whose footprint is page- or slot-granular return [None]. *)
let make_probed kind : Intf.instance * (unit -> int) option =
  match kind with
  | Linear6 ->
      let t = Baselines.Linear_pt.create ~size_variant:`Six_level () in
      (Intf.Instance ((module Baselines.Linear_pt), t), None)
  | Linear1 ->
      let t = Baselines.Linear_pt.create ~size_variant:`One_level () in
      (Intf.Instance ((module Baselines.Linear_pt), t), None)
  | Linear_hashed ->
      let t = Baselines.Linear_pt.create ~size_variant:`Leaf_plus_hash () in
      (Intf.Instance ((module Baselines.Linear_pt), t), None)
  | Forward_mapped ->
      let t = Baselines.Forward_mapped_pt.create () in
      ( Intf.Instance ((module Baselines.Forward_mapped_pt), t),
        Some (fun () -> Baselines.Forward_mapped_pt.node_count t) )
  | Forward_guarded ->
      let t = Baselines.Forward_mapped_pt.create ~guarded:true () in
      ( Intf.Instance ((module Baselines.Forward_mapped_pt), t),
        Some (fun () -> Baselines.Forward_mapped_pt.node_count t) )
  | Hashed ->
      let t = Baselines.Hashed_pt.create () in
      ( Intf.Instance ((module Baselines.Hashed_pt), t),
        Some (fun () -> Baselines.Hashed_pt.node_count t) )
  | Hashed_two_tables { coarse_first } ->
      let t =
        Baselines.Hashed_pt.create
          ~mode:(Baselines.Hashed_pt.Two_tables { coarse_first })
          ()
      in
      ( Intf.Instance ((module Baselines.Hashed_pt), t),
        Some (fun () -> Baselines.Hashed_pt.node_count t) )
  | Hashed_spindex ->
      let t =
        Baselines.Hashed_pt.create ~mode:Baselines.Hashed_pt.Superpage_index ()
      in
      ( Intf.Instance ((module Baselines.Hashed_pt), t),
        Some (fun () -> Baselines.Hashed_pt.node_count t) )
  | Hashed_packed ->
      let t = Baselines.Hashed_pt.create ~packed:true () in
      ( Intf.Instance ((module Baselines.Hashed_pt), t),
        Some (fun () -> Baselines.Hashed_pt.node_count t) )
  | Clustered { subblock_factor } ->
      let t =
        Clustered_pt.Table.create (Clustered_pt.Config.make ~subblock_factor ())
      in
      ( Intf.Instance ((module Clustered_pt.Table), t),
        Some (fun () -> Clustered_pt.Table.node_count t) )
  | Clustered_variable ->
      let t = Clustered_pt.Var_table.create () in
      ( Intf.Instance ((module Clustered_pt.Var_table), t),
        Some (fun () -> Clustered_pt.Var_table.node_count t) )
  | Clustered_two_tables ->
      let t = Clustered_pt.Multi_size.create () in
      ( Intf.Instance ((module Clustered_pt.Multi_size), t),
        Some (fun () -> Clustered_pt.Multi_size.node_count t) )
  | Inverted ->
      (* builder PPNs for unplaced pages start above 1M frames *)
      let t = Baselines.Inverted_pt.create ~frames:(1 lsl 21) () in
      (Intf.Instance ((module Baselines.Inverted_pt), t), None)
  | Software_tlb ->
      let t = Baselines.Software_tlb.create () in
      (Intf.Instance ((module Baselines.Software_tlb), t), None)
  | Clustered_tsb ->
      let t = Clustered_pt.Clustered_tsb.create () in
      (Intf.Instance ((module Clustered_pt.Clustered_tsb), t), None)

let make kind : Intf.instance = fst (make_probed kind)

let clustered16 = Clustered { subblock_factor = 16 }
