(** Plain-text table rendering for experiment output. *)

val print_table :
  title:string -> header:string list -> rows:string list list -> unit
(** Column-aligned table with a title banner, printed to stdout.  When
    a CSV directory is set, also written there as
    [<slugified-title>.csv]. *)

val set_csv_dir : string option -> unit
(** Mirror every subsequent table into [dir] as CSV (created if
    needed); [None] turns mirroring off. *)

val ratio : float -> string
(** Format a normalized size like the paper's Figure 9: two decimals,
    truncated to ">5.00" above 5. *)

val lines_metric : float -> string
(** Cache-lines-per-miss with two decimals. *)

val kb : int -> string
(** Bytes as "12.3KB". *)

val note : string -> unit
(** A wrapped free-text footnote under the last table. *)
