(** Constructing page-table instances for experiments.

    Each kind is a fresh table with its own simulated-memory arena, so
    size accounting never leaks across instances. *)

type kind =
  | Linear6  (** six-level linear, all levels counted *)
  | Linear1  (** linear, leaf pages only ("1-level" in Figure 9) *)
  | Linear_hashed  (** leaf pages plus hashed upper structure (Table 2) *)
  | Forward_mapped
  | Forward_guarded  (** guarded page tables [Lied95] *)
  | Hashed  (** single page size *)
  | Hashed_two_tables of { coarse_first : bool }
      (** separate 64 KB-block table for superpage/psb PTEs
          (Section 4.2); [coarse_first] probes it before the 4 KB
          table (the Section 6.3 suggestion) *)
  | Hashed_spindex  (** one table hashed on the 64 KB-block index *)
  | Hashed_packed  (** 16-byte PTEs, the Section 7 optimization *)
  | Clustered of { subblock_factor : int }
  | Clustered_variable  (** varying subblock factors ([Tall95], Section 3) *)
  | Clustered_two_tables  (** fine + coarse tables for many page sizes (Section 7) *)
  | Inverted  (** frame-table inverted (IBM System/38) *)
  | Software_tlb  (** direct-mapped TSB over a hashed backing table *)
  | Clustered_tsb  (** the clustered TSB ([Tall95] / Section 7) *)

val name : kind -> string
(** Short label used in reports and test output. *)

val make : kind -> Pt_common.Intf.instance

val make_probed : kind -> Pt_common.Intf.instance * (unit -> int) option
(** {!make}, paired with a live-node-count probe for node-based
    organizations (hashed, forward-mapped, clustered) — the shape
    {!Dynamics.Engine.config} wants.  [None] for organizations whose
    footprint is page- or slot-granular (linear, inverted, the
    TSBs). *)

val clustered16 : kind
(** The paper's default configuration: factor 16, 4096 buckets. *)
