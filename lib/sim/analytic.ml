let hashed_lines ~load_factor = 1.0 +. (load_factor /. 2.0)

let clustered_lines ~load_factor = 1.0 +. (load_factor /. 2.0)

let forward_mapped_lines ~nlevels = float_of_int nlevels

let linear_lines ~r ~m = 1.0 +. (r *. m)

let hashed_size ~nactive1 = 24 * nactive1

let clustered_size ~subblock_factor ~nactive_s =
  ((8 * subblock_factor) + 16) * nactive_s

let clustered_sp_size ~subblock_factor ~nactive_s ~fss =
  let n = float_of_int nactive_s in
  (24.0 *. n *. fss)
  +. (float_of_int ((8 * subblock_factor) + 16) *. n *. (1.0 -. fss))

let multi_level_linear_size ~nactive ~levels =
  let total = ref 0 in
  for i = 1 to levels do
    (* a level-i node maps 2^(9i) base pages *)
    let pb = 1 lsl (9 * i) in
    total := !total + (4096 * nactive pb)
  done;
  !total

let linear_with_hashed_size ~nactive512 = (4096 + 24) * nactive512

let forward_mapped_size ~nactive ~bits_per_level =
  let nlevels = Array.length bits_per_level in
  (* pages mapped by a node at level i = product of branching factors
     below it (the appendix's pb_i) *)
  let total = ref 0 in
  let below = ref 0 in
  for i = nlevels - 1 downto 0 do
    let pb = 1 lsl !below in
    let n_i = 1 lsl bits_per_level.(i) in
    total := !total + (n_i * 8 * nactive (pb * n_i));
    below := !below + bits_per_level.(i)
  done;
  !total
