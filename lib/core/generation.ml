(* Per-bucket monotone generation counters.

   The NUMA replication layer versions every hash bucket of the shared
   table: each fan-out write bumps the bucket's generation on the
   primary, and each replica records the generation it has applied up
   to.  A replica bucket is stale exactly when [applied < current] —
   the one comparison the lazy pull-on-read catch-up path makes per
   lookup.  Counters are plain [Atomic.t]s padded to one per array
   slot; [set_at_least] is the monotone join used when catch-up replays
   a batch of journal entries. *)

type t = int Atomic.t array

let create ~buckets =
  if buckets < 1 then invalid_arg "Generation.create: buckets must be >= 1";
  Array.init buckets (fun _ -> Atomic.make 0)

let buckets t = Array.length t

let get t ~bucket = Atomic.get t.(bucket)

let bump t ~bucket = Atomic.fetch_and_add t.(bucket) 1 + 1

(* monotone: never moves a counter backwards, so concurrent joiners
   commute *)
let set_at_least t ~bucket v =
  let a = t.(bucket) in
  let rec go () =
    let cur = Atomic.get a in
    if cur >= v then ()
    else if Atomic.compare_and_set a cur v then ()
    else go ()
  in
  go ()

let snapshot t = Array.map Atomic.get t
