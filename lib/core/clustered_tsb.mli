(** A clustered software TLB (TSB).

    Section 7: "constructing hashed or clustered page tables as a
    software TLB can reduce the number of cache lines accessed", and
    [Tall95] describes applying the clustering techniques to software
    TLBs.  This is that structure: a direct-mapped, memory-resident
    array of *clustered* entries — one VPBN tag plus a full block of
    mapping words per slot, no next pointers — indexed by low VPBN
    bits.  A hit costs exactly one slot read and covers a whole page
    block, so the TSB reach is [slots * factor] pages with one tag
    per block (a conventional TSB of equal byte size reaches about a
    third as far).  Conflicts evict to a backing clustered page table,
    probed on a TSB miss.

    Also Section 7's point that a software TLB in front of the page
    table "allows the choice of a larger subblock factor ... than the
    cache line size dictates": the slot is read as a unit regardless.

    Implements {!Pt_common.Intf.PAGE_TABLE}. *)

type t

val name : string

val create :
  ?arena:Mem.Sim_memory.t ->
  ?slots:int ->
  ?subblock_factor:int ->
  ?backing_buckets:int ->
  unit ->
  t
(** Defaults: 512 slots, factor 16 (reach: 8192 pages = 32 MB),
    4096 backing buckets. *)

val lookup :
  t -> vpn:int64 -> Pt_common.Types.translation option * Pt_common.Types.walk

val lookup_into :
  t -> Mem.Walk_acc.t -> vpn:int64 -> Pt_common.Types.translation option
(** Allocation-free {!lookup}: appends the walk's reads and probes to
    the caller's reusable accumulator. *)

val lookup_block :
  t ->
  vpn:int64 ->
  subblock_factor:int ->
  (int * Pt_common.Types.translation) list * Pt_common.Types.walk

val insert_base : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_superpage :
  t -> vpn:int64 -> size:Addr.Page_size.t -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_psb :
  t -> vpbn:int64 -> vmask:int -> ppn:int64 -> attr:Pte.Attr.t -> unit

val remove : t -> vpn:int64 -> unit

val set_attr_range :
  t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int

val size_bytes : t -> int
(** TSB array plus backing-table nodes. *)

val population : t -> int

val clear : t -> unit

val tsb_hits : t -> int

val tsb_misses : t -> int

val reach_pages : t -> int
(** Pages mapped when every slot is full: slots x factor. *)
