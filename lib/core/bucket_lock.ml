type mode = Read | Write

type state = { mutable readers : int; mutable writer : bool }

type t = {
  slots : state array;
  mutable read_acquisitions : int;
  mutable write_acquisitions : int;
}

exception Deadlock of int

let create ~buckets =
  if buckets <= 0 then invalid_arg "Bucket_lock.create";
  {
    slots = Array.init buckets (fun _ -> { readers = 0; writer = false });
    read_acquisitions = 0;
    write_acquisitions = 0;
  }

let slot t bucket =
  if bucket < 0 || bucket >= Array.length t.slots then
    invalid_arg "Bucket_lock: bucket out of range";
  t.slots.(bucket)

let acquire t ~bucket mode =
  let s = slot t bucket in
  match mode with
  | Read ->
      if s.writer then raise (Deadlock bucket);
      s.readers <- s.readers + 1;
      t.read_acquisitions <- t.read_acquisitions + 1
  | Write ->
      if s.writer || s.readers > 0 then raise (Deadlock bucket);
      s.writer <- true;
      t.write_acquisitions <- t.write_acquisitions + 1

let release t ~bucket mode =
  let s = slot t bucket in
  match mode with
  | Read ->
      if s.readers <= 0 then invalid_arg "Bucket_lock.release: not read-held";
      s.readers <- s.readers - 1
  | Write ->
      if not s.writer then invalid_arg "Bucket_lock.release: not write-held";
      s.writer <- false

let try_acquire t ~bucket mode =
  let s = slot t bucket in
  match mode with
  | Read ->
      if s.writer then false
      else begin
        s.readers <- s.readers + 1;
        t.read_acquisitions <- t.read_acquisitions + 1;
        true
      end
  | Write ->
      if s.writer || s.readers > 0 then false
      else begin
        s.writer <- true;
        t.write_acquisitions <- t.write_acquisitions + 1;
        true
      end

let with_lock t ~bucket mode f =
  acquire t ~bucket mode;
  Fun.protect ~finally:(fun () -> release t ~bucket mode) f

let read_acquisitions t = t.read_acquisitions

let write_acquisitions t = t.write_acquisitions

let reset_counters t =
  t.read_acquisitions <- 0;
  t.write_acquisitions <- 0

let currently_held t =
  Array.fold_left
    (fun acc s -> if s.writer || s.readers > 0 then acc + 1 else acc)
    0 t.slots

module Real = struct
  exception Timeout of int

  let () =
    Printexc.register_printer (function
      | Timeout b -> Some (Printf.sprintf "Bucket_lock.Real.Timeout(%d)" b)
      | _ -> None)

  type slot = {
    m : Mutex.t;
    readable : Condition.t;
    writable : Condition.t;
    mutable readers : int;
    mutable writer : bool;
    mutable writers_waiting : int;
    (* acquisition counters live in the slot and are bumped under its
       mutex, so the hot path never touches a shared cache line *)
    mutable reads_granted : int;
    mutable writes_granted : int;
    mutable reads_contended : int;
        (* read acquisitions that could not be granted immediately
           (parked behind a writer or a waiting writer) — the "why is
           the striped read path slow" diagnostic *)
  }

  type t = slot array

  let create ~buckets =
    if buckets <= 0 then invalid_arg "Bucket_lock.Real.create";
    Array.init buckets (fun _ ->
        {
          m = Mutex.create ();
          readable = Condition.create ();
          writable = Condition.create ();
          readers = 0;
          writer = false;
          writers_waiting = 0;
          reads_granted = 0;
          writes_granted = 0;
          reads_contended = 0;
        })

  let buckets t = Array.length t

  let slot t bucket =
    if bucket < 0 || bucket >= Array.length t then
      invalid_arg "Bucket_lock.Real: bucket out of range";
    t.(bucket)

  (* Acquire / release primitives.  Every [with_*] entry point pairs
     them through a single [Fun.protect], so an exception raised by the
     critical section — including an injected fault — can never leak a
     held slot. *)

  let release_read s =
    Mutex.lock s.m;
    s.readers <- s.readers - 1;
    if s.readers = 0 then Condition.signal s.writable;
    Mutex.unlock s.m

  let release_write s =
    Mutex.lock s.m;
    s.writer <- false;
    Condition.signal s.writable;
    Condition.broadcast s.readable;
    Mutex.unlock s.m

  let with_read t ~bucket f =
    let s = slot t bucket in
    (* injected acquisition timeout: fires before any state changes *)
    if Fault.trip Fault.Lock_timeout then raise (Timeout bucket);
    Mutex.lock s.m;
    if s.writer || s.writers_waiting > 0 then
      s.reads_contended <- s.reads_contended + 1;
    (* writer preference: don't starve pending range operations *)
    while s.writer || s.writers_waiting > 0 do
      Condition.wait s.readable s.m
    done;
    s.readers <- s.readers + 1;
    s.reads_granted <- s.reads_granted + 1;
    Mutex.unlock s.m;
    Fun.protect ~finally:(fun () -> release_read s) f

  let with_write t ~bucket f =
    let s = slot t bucket in
    if Fault.trip Fault.Lock_timeout then raise (Timeout bucket);
    Mutex.lock s.m;
    s.writers_waiting <- s.writers_waiting + 1;
    while s.writer || s.readers > 0 do
      Condition.wait s.writable s.m
    done;
    s.writers_waiting <- s.writers_waiting - 1;
    s.writer <- true;
    s.writes_granted <- s.writes_granted + 1;
    Mutex.unlock s.m;
    Fun.protect ~finally:(fun () -> release_write s) f

  let try_with_read t ~bucket f =
    let s = slot t bucket in
    Mutex.lock s.m;
    if s.writer || s.writers_waiting > 0 then begin
      s.reads_contended <- s.reads_contended + 1;
      Mutex.unlock s.m;
      None
    end
    else begin
      s.readers <- s.readers + 1;
      s.reads_granted <- s.reads_granted + 1;
      Mutex.unlock s.m;
      Some (Fun.protect ~finally:(fun () -> release_read s) f)
    end

  let try_with_write t ~bucket f =
    let s = slot t bucket in
    Mutex.lock s.m;
    if s.writer || s.readers > 0 then begin
      Mutex.unlock s.m;
      None
    end
    else begin
      s.writer <- true;
      s.writes_granted <- s.writes_granted + 1;
      Mutex.unlock s.m;
      Some (Fun.protect ~finally:(fun () -> release_write s) f)
    end

  let with_write_bounded t ~bucket ~attempts f =
    if attempts < 1 then
      invalid_arg "Bucket_lock.Real.with_write_bounded: attempts must be >= 1";
    let s = slot t bucket in
    Mutex.lock s.m;
    (* writers_waiting stays raised across the whole spin, so incoming
       readers are gated and the bounded writer cannot be starved by a
       steady read stream: it only loses ticks to readers already in *)
    s.writers_waiting <- s.writers_waiting + 1;
    let acquired = ref false in
    let tries = ref 0 in
    while (not !acquired) && !tries < attempts do
      if (not s.writer) && s.readers = 0 then begin
        s.writer <- true;
        s.writes_granted <- s.writes_granted + 1;
        acquired := true
      end
      else begin
        incr tries;
        if !tries < attempts then begin
          Mutex.unlock s.m;
          Domain.cpu_relax ();
          Mutex.lock s.m
        end
      end
    done;
    s.writers_waiting <- s.writers_waiting - 1;
    if !acquired then begin
      Mutex.unlock s.m;
      Fun.protect ~finally:(fun () -> release_write s) f
    end
    else begin
      Condition.broadcast s.readable;
      Mutex.unlock s.m;
      raise (Timeout bucket)
    end

  let with_read_bounded t ~bucket ~attempts f =
    if attempts < 1 then
      invalid_arg "Bucket_lock.Real.with_read_bounded: attempts must be >= 1";
    let s = slot t bucket in
    Mutex.lock s.m;
    if s.writer || s.writers_waiting > 0 then
      s.reads_contended <- s.reads_contended + 1;
    let acquired = ref false in
    let tries = ref 0 in
    while (not !acquired) && !tries < attempts do
      if (not s.writer) && s.writers_waiting = 0 then begin
        s.readers <- s.readers + 1;
        s.reads_granted <- s.reads_granted + 1;
        acquired := true
      end
      else begin
        incr tries;
        if !tries < attempts then begin
          Mutex.unlock s.m;
          Domain.cpu_relax ();
          Mutex.lock s.m
        end
      end
    done;
    Mutex.unlock s.m;
    if !acquired then Fun.protect ~finally:(fun () -> release_read s) f
    else raise (Timeout bucket)

  (* The inspection entry points take each slot's mutex, so they are
     exact at quiescence and merely consistent-per-slot under load. *)
  let sum_slots t f =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.m;
        let v = f s in
        Mutex.unlock s.m;
        acc + v)
      0 t

  let read_acquisitions t = sum_slots t (fun s -> s.reads_granted)

  let write_acquisitions t = sum_slots t (fun s -> s.writes_granted)

  let read_contention t = sum_slots t (fun s -> s.reads_contended)

  let reset_counters t =
    Array.iter
      (fun s ->
        Mutex.lock s.m;
        s.reads_granted <- 0;
        s.writes_granted <- 0;
        s.reads_contended <- 0;
        Mutex.unlock s.m)
      t

  let currently_held t =
    sum_slots t (fun s -> if s.writer || s.readers > 0 then 1 else 0)
end
