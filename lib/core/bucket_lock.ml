type mode = Read | Write

type state = { mutable readers : int; mutable writer : bool }

type t = {
  slots : state array;
  mutable read_acquisitions : int;
  mutable write_acquisitions : int;
}

exception Deadlock of int

let create ~buckets =
  if buckets <= 0 then invalid_arg "Bucket_lock.create";
  {
    slots = Array.init buckets (fun _ -> { readers = 0; writer = false });
    read_acquisitions = 0;
    write_acquisitions = 0;
  }

let slot t bucket =
  if bucket < 0 || bucket >= Array.length t.slots then
    invalid_arg "Bucket_lock: bucket out of range";
  t.slots.(bucket)

let acquire t ~bucket mode =
  let s = slot t bucket in
  match mode with
  | Read ->
      if s.writer then raise (Deadlock bucket);
      s.readers <- s.readers + 1;
      t.read_acquisitions <- t.read_acquisitions + 1
  | Write ->
      if s.writer || s.readers > 0 then raise (Deadlock bucket);
      s.writer <- true;
      t.write_acquisitions <- t.write_acquisitions + 1

let release t ~bucket mode =
  let s = slot t bucket in
  match mode with
  | Read ->
      if s.readers <= 0 then invalid_arg "Bucket_lock.release: not read-held";
      s.readers <- s.readers - 1
  | Write ->
      if not s.writer then invalid_arg "Bucket_lock.release: not write-held";
      s.writer <- false

let with_lock t ~bucket mode f =
  acquire t ~bucket mode;
  match f () with
  | v ->
      release t ~bucket mode;
      v
  | exception e ->
      release t ~bucket mode;
      raise e

let read_acquisitions t = t.read_acquisitions

let write_acquisitions t = t.write_acquisitions

let reset_counters t =
  t.read_acquisitions <- 0;
  t.write_acquisitions <- 0

let currently_held t =
  Array.fold_left
    (fun acc s -> if s.writer || s.readers > 0 then acc + 1 else acc)
    0 t.slots

module Real = struct
  type slot = {
    m : Mutex.t;
    readable : Condition.t;
    writable : Condition.t;
    mutable readers : int;
    mutable writer : bool;
    mutable writers_waiting : int;
    (* acquisition counters live in the slot and are bumped under its
       mutex, so the hot path never touches a shared cache line *)
    mutable reads_granted : int;
    mutable writes_granted : int;
  }

  type t = slot array

  let create ~buckets =
    if buckets <= 0 then invalid_arg "Bucket_lock.Real.create";
    Array.init buckets (fun _ ->
        {
          m = Mutex.create ();
          readable = Condition.create ();
          writable = Condition.create ();
          readers = 0;
          writer = false;
          writers_waiting = 0;
          reads_granted = 0;
          writes_granted = 0;
        })

  let buckets t = Array.length t

  let slot t bucket =
    if bucket < 0 || bucket >= Array.length t then
      invalid_arg "Bucket_lock.Real: bucket out of range";
    t.(bucket)

  let with_read t ~bucket f =
    let s = slot t bucket in
    Mutex.lock s.m;
    (* writer preference: don't starve pending range operations *)
    while s.writer || s.writers_waiting > 0 do
      Condition.wait s.readable s.m
    done;
    s.readers <- s.readers + 1;
    s.reads_granted <- s.reads_granted + 1;
    Mutex.unlock s.m;
    let finish () =
      Mutex.lock s.m;
      s.readers <- s.readers - 1;
      if s.readers = 0 then Condition.signal s.writable;
      Mutex.unlock s.m
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e

  let with_write t ~bucket f =
    let s = slot t bucket in
    Mutex.lock s.m;
    s.writers_waiting <- s.writers_waiting + 1;
    while s.writer || s.readers > 0 do
      Condition.wait s.writable s.m
    done;
    s.writers_waiting <- s.writers_waiting - 1;
    s.writer <- true;
    s.writes_granted <- s.writes_granted + 1;
    Mutex.unlock s.m;
    let finish () =
      Mutex.lock s.m;
      s.writer <- false;
      Condition.signal s.writable;
      Condition.broadcast s.readable;
      Mutex.unlock s.m
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e

  (* The inspection entry points take each slot's mutex, so they are
     exact at quiescence and merely consistent-per-slot under load. *)
  let sum_slots t f =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.m;
        let v = f s in
        Mutex.unlock s.m;
        acc + v)
      0 t

  let read_acquisitions t = sum_slots t (fun s -> s.reads_granted)

  let write_acquisitions t = sum_slots t (fun s -> s.writes_granted)

  let reset_counters t =
    Array.iter
      (fun s ->
        Mutex.lock s.m;
        s.reads_granted <- 0;
        s.writes_granted <- 0;
        Mutex.unlock s.m)
      t

  let currently_held t =
    sum_slots t (fun s -> if s.writer || s.readers > 0 then 1 else 0)
end
