module Types = Pt_common.Types

(* Chain nodes carry their tag as an immediate [int] (a VPBN fits in
   well under 62 bits) so the hot-path tag comparison is an unboxed
   integer compare instead of [Int64.equal] on two boxed values, and
   links are direct [node] pointers terminated by the [nil] sentinel
   instead of [node option], so traversal never pattern-matches an
   allocation. *)
type node = {
  mutable tag : int;
      (* mutable so a reclaimed node can be retagged on reuse; live
         nodes never change tag in place *)
  mutable words : int64 array;
  addr : int64;
  node_bytes : int;
  mutable next : node;
}

let rec nil = { tag = min_int; words = [||]; addr = -1L; node_bytes = 0; next = nil }

let empty_tag = min_int

type t = {
  config : Config.t;
  arena : Mem.Sim_memory.t;
  heads : node array;  (* nil = empty bucket *)
  head_tags : int array;
      (* the first node's tag, flattened into the bucket array — the
         OCaml mirror of the [heads_addr] embedding below: a probe of
         the bucket decides "empty / head matches / walk the chain"
         without dereferencing any node *)
  heads_addr : int64;
      (* bucket array embedding the first nodes: an empty bucket's
         probe still reads one line *)
  unit_shift : int;  (* page_shift - 12: base pages per table unit *)
  factor_bits : int;
  sz_code_block : int;  (* SZ code of a whole page block *)
  logical_bytes : int Atomic.t;
  nodes : int Atomic.t;
  (* Emptied nodes are kept on per-size free lists (threaded through
     [next]) and reused before the arena grows: under churn, a
     map/unmap cycle settles into a steady state where node memory is
     recycled instead of leaking bump-allocator address space.  Freed
     nodes are excluded from [logical_bytes]/[nodes] — they are
     capacity, not live page-table state. *)
  mutable free_single : node;  (* 24-byte single-word nodes *)
  mutable free_block : node;  (* full block nodes *)
  mutable free_single_n : int;
  mutable free_block_n : int;
  free_lock : Mutex.t;
      (* like the arena's lock: per-bucket locking covers the chains,
         not this cross-bucket reclamation state *)
}

let name = "clustered"

let create ?arena config =
  let arena =
    match arena with Some a -> a | None -> Mem.Sim_memory.create ()
  in
  let factor_bits = Addr.Bits.log2_exact config.Config.subblock_factor in
  let unit_shift = config.Config.page_shift - Addr.Page_size.base_shift in
  {
    config;
    arena;
    heads = Array.make config.Config.buckets nil;
    head_tags = Array.make config.Config.buckets empty_tag;
    heads_addr =
      Mem.Sim_memory.alloc arena
        ~bytes:(config.Config.buckets * 16)
        ~align:4096;
    unit_shift;
    factor_bits;
    sz_code_block = unit_shift + factor_bits;
    logical_bytes = Atomic.make 0;
    nodes = Atomic.make 0;
    free_single = nil;
    free_block = nil;
    free_single_n = 0;
    free_block_n = 0;
    free_lock = Mutex.create ();
  }

let config t = t.config

(* --- unit / block arithmetic (all on 4 KB VPNs from the interface) --- *)

let uvpn_of t vpn = Int64.shift_right_logical vpn t.unit_shift

let split t vpn =
  let uvpn = uvpn_of t vpn in
  let vpbn = Int64.shift_right_logical uvpn t.factor_bits in
  let boff = Int64.to_int (Addr.Bits.extract uvpn ~lo:0 ~width:t.factor_bits) in
  (vpbn, boff)

let factor_mask t = (1 lsl t.config.Config.subblock_factor) - 1

let buckets t = Array.length t.heads

let bucket_of t ~vpn =
  let vpbn, _ = split t vpn in
  Config.hash t.config vpbn

(* --- node management --- *)

let pop_free t ~single =
  Mutex.lock t.free_lock;
  let n = if single then t.free_single else t.free_block in
  if n != nil then
    if single then begin
      t.free_single <- n.next;
      t.free_single_n <- t.free_single_n - 1
    end
    else begin
      t.free_block <- n.next;
      t.free_block_n <- t.free_block_n - 1
    end;
  Mutex.unlock t.free_lock;
  n

let alloc_node t ~tag ~words =
  let node_bytes = 16 + (8 * Array.length words) in
  ignore (Atomic.fetch_and_add t.logical_bytes node_bytes);
  ignore (Atomic.fetch_and_add t.nodes 1);
  let reuse = pop_free t ~single:(Array.length words = 1) in
  if reuse != nil then begin
    (* reuse before growing: same size class, so the arena address and
       byte accounting carry over unchanged *)
    reuse.tag <- tag;
    reuse.words <- words;
    reuse.next <- nil;
    reuse
  end
  else
    let addr =
      Mem.Sim_memory.alloc t.arena ~bytes:node_bytes
        ~align:t.config.Config.node_align
    in
    { tag; words; addr; node_bytes; next = nil }

(* Unlink bookkeeping: the node leaves the live set and parks on its
   size class's free list.  The tag is reset to the unmatchable
   [empty_tag] so a stale pointer can never tag-match. *)
let release_node t n =
  ignore (Atomic.fetch_and_add t.logical_bytes (-n.node_bytes));
  ignore (Atomic.fetch_and_add t.nodes (-1));
  n.tag <- empty_tag;
  Mutex.lock t.free_lock;
  if Array.length n.words = 1 then begin
    n.next <- t.free_single;
    t.free_single <- n;
    t.free_single_n <- t.free_single_n + 1
  end
  else begin
    n.next <- t.free_block;
    t.free_block <- n;
    t.free_block_n <- t.free_block_n + 1
  end;
  Mutex.unlock t.free_lock

(* really return a node's bytes to the arena (only [clear] does) *)
let arena_free t n =
  Mem.Sim_memory.free t.arena ~addr:n.addr ~bytes:n.node_bytes
    ~align:t.config.Config.node_align

let set_head t bucket n =
  t.heads.(bucket) <- n;
  t.head_tags.(bucket) <- if n == nil then empty_tag else n.tag

let link t bucket n =
  n.next <- t.heads.(bucket);
  set_head t bucket n

let invalid_base_word = Pte.Base_pte.(encode invalid)

(* Classification of a node by the S field of its first word: the same
   single decode the paper's miss handler performs after a tag match. *)
type node_class =
  | Single_psb of Pte.Psb_pte.t
  | Single_sp of Pte.Superpage_pte.t
  | Block

let classify t n =
  match Pte.Word.decode n.words.(0) with
  | Pte.Word.Psb p -> Single_psb p
  | Pte.Word.Superpage sp
    when Addr.Page_size.sz_code sp.Pte.Superpage_pte.size >= t.sz_code_block ->
      Single_sp sp
  | Pte.Word.Superpage _ | Pte.Word.Base _ -> Block

(* decode-free classification for the hot paths: reads only the S and
   SZ bits *)
let is_single t n =
  match Pte.Layout.read_s n.words.(0) with
  | Pte.Layout.S_base -> false
  | Pte.Layout.S_partial_subblock -> true
  | Pte.Layout.S_superpage ->
      Int64.to_int
        (Addr.Bits.extract n.words.(0) ~lo:Pte.Layout.sz_lo
           ~width:Pte.Layout.sz_width)
      >= t.sz_code_block

(* --- translations --- *)

let sp_translation vpn (sp : Pte.Superpage_pte.t) =
  let sz = Addr.Page_size.sz_code sp.size in
  let vpn_base = Addr.Bits.align_down vpn sz in
  {
    Types.vpn;
    ppn = Int64.add sp.ppn (Int64.sub vpn vpn_base);
    vpn_base;
    ppn_base = sp.ppn;
    kind = Types.Superpage sp.size;
    attr = sp.attr;
  }

let psb_translation t vpn (p : Pte.Psb_pte.t) =
  let vpbn, boff = split t vpn in
  {
    Types.vpn;
    ppn = Pte.Psb_pte.ppn_for p ~boff;
    vpn_base = Int64.shift_left vpbn t.factor_bits;
    ppn_base = p.ppn;
    kind = Types.Partial_subblock (p.vmask land factor_mask t);
    attr = p.attr;
  }

let base_translation vpn (b : Pte.Base_pte.t) =
  Types.base_translation ~vpn ~ppn:b.ppn ~attr:b.attr

(* Reading the mapping of [vpn] out of a tag-matched node; None means
   "no valid mapping here, keep searching the chain" (Section 5). *)
let node_translation t n ~vpn ~boff =
  match classify t n with
  | Single_psb p ->
      if t.unit_shift = 0 && Pte.Psb_pte.valid_at p ~boff then
        Some (psb_translation t vpn p)
      else None
  | Single_sp sp -> if sp.valid then Some (sp_translation vpn sp) else None
  | Block -> (
      match Pte.Word.decode n.words.(boff) with
      | Pte.Word.Base b when b.valid && t.unit_shift = 0 ->
          Some (base_translation vpn b)
      | Pte.Word.Superpage sp when sp.valid -> Some (sp_translation vpn sp)
      | Pte.Word.Base _ | Pte.Word.Superpage _ | Pte.Word.Psb _ -> None)

(* --- lookup --- *)

let word_addr n i = Int64.add n.addr (Int64.of_int (16 + (8 * i)))

let charge_empty_head_acc t ~bucket acc =
  Mem.Walk_acc.read acc
    ~addr:(Int64.add t.heads_addr (Int64.of_int (bucket * 16)))
    ~bytes:16;
  Mem.Walk_acc.probe acc

let lookup_into t acc ~vpn =
  let vpbn, boff = split t vpn in
  let tag = Int64.to_int vpbn in
  let bucket = Config.hash t.config vpbn in
  if t.head_tags.(bucket) = empty_tag then begin
    charge_empty_head_acc t ~bucket acc;
    None
  end
  else begin
    let rec go n =
      if n == nil then None
      else begin
        (* tag and next pointer: the first sixteen bytes of the node *)
        Mem.Walk_acc.read acc ~addr:n.addr ~bytes:16;
        Mem.Walk_acc.probe acc;
        if n.tag <> tag then go n.next
        else begin
          (* the S check always reads mapping[0] (Figure 8) ... *)
          Mem.Walk_acc.read acc ~addr:(word_addr n 0) ~bytes:8;
          (* ... and a base-format node then reads mapping[Boff] *)
          if boff <> 0 && not (is_single t n) then
            Mem.Walk_acc.read acc ~addr:(word_addr n boff) ~bytes:8;
          match node_translation t n ~vpn ~boff with
          | Some _ as tr -> tr
          | None -> go n.next
        end
      end
    in
    go t.heads.(bucket)
  end

let lookup t ~vpn =
  let acc = Mem.Walk_acc.create ~capacity:8 () in
  let tr = lookup_into t acc ~vpn in
  (tr, Types.acc_to_walk acc)

let lookup_block t ~vpn ~subblock_factor =
  if subblock_factor = t.config.Config.subblock_factor && t.unit_shift = 0 then begin
    (* one chain traversal serves the whole block: mappings for all the
       block's base pages are adjacent in the matching nodes
       (Section 4.4: prefetch penalty is "reasonable" for clustered) *)
    let vpbn, _ = split t vpn in
    let tag = Int64.to_int vpbn in
    let block_base = Int64.shift_left vpbn t.factor_bits in
    let found = Array.make subblock_factor None in
    let acc = Mem.Walk_acc.create ~capacity:8 () in
    let rec go n =
      if n == nil then ()
      else begin
        Mem.Walk_acc.read acc ~addr:n.addr ~bytes:16;
        Mem.Walk_acc.probe acc;
        if n.tag <> tag then go n.next
        else begin
          Mem.Walk_acc.read acc ~addr:(word_addr n 0)
            ~bytes:(8 * Array.length n.words);
          for i = 0 to subblock_factor - 1 do
            if found.(i) = None then
              let page = Int64.add block_base (Int64.of_int i) in
              match node_translation t n ~vpn:page ~boff:i with
              | Some tr -> found.(i) <- Some tr
              | None -> ()
          done;
          go n.next
        end
      end
    in
    let bucket = Config.hash t.config vpbn in
    if t.head_tags.(bucket) = empty_tag then
      charge_empty_head_acc t ~bucket acc
    else go t.heads.(bucket);
    let results = ref [] in
    for i = subblock_factor - 1 downto 0 do
      match found.(i) with
      | Some tr -> results := (i, tr) :: !results
      | None -> ()
    done;
    (!results, Types.acc_to_walk acc)
  end
  else begin
    (* mismatched factor: gather page by page *)
    let block_pages = subblock_factor in
    let base =
      Int64.mul
        (Int64.div vpn (Int64.of_int block_pages))
        (Int64.of_int block_pages)
    in
    let results = ref [] and walk = ref Types.empty_walk in
    for i = block_pages - 1 downto 0 do
      let page = Int64.add base (Int64.of_int i) in
      let tr, w = lookup t ~vpn:page in
      walk := Types.walk_join w !walk;
      match tr with
      | Some tr -> results := (i, tr) :: !results
      | None -> ()
    done;
    (!results, !walk)
  end

(* --- insertion --- *)

let find_block_node t bucket tag =
  let rec go n =
    if n == nil then None
    else if n.tag = tag && not (is_single t n) then Some n
    else go n.next
  in
  go t.heads.(bucket)

let get_or_create_block_node t vpbn =
  let bucket = Config.hash t.config vpbn in
  let tag = Int64.to_int vpbn in
  match find_block_node t bucket tag with
  | Some n -> n
  | None ->
      let words =
        Array.make t.config.Config.subblock_factor invalid_base_word
      in
      let n = alloc_node t ~tag ~words in
      link t bucket n;
      n

let insert_base t ~vpn ~ppn ~attr =
  if t.unit_shift <> 0 then
    invalid_arg "Clustered_pt: base pages not representable in a coarse table";
  let vpbn, boff = split t vpn in
  let n = get_or_create_block_node t vpbn in
  n.words.(boff) <- Pte.Base_pte.(encode (make ~ppn ~attr ()))

let insert_superpage t ~vpn ~size ~ppn ~attr =
  let sz = Addr.Page_size.sz_code size in
  if not (Addr.Bits.is_aligned vpn sz) then
    invalid_arg "Clustered_pt.insert_superpage: VPN not aligned";
  if sz < t.unit_shift then
    invalid_arg "Clustered_pt.insert_superpage: smaller than table unit";
  let word = Pte.Superpage_pte.(encode (make ~size ~ppn ~attr ())) in
  if sz >= t.sz_code_block then begin
    (* replicate once per covered page block (Section 5): one 24-byte
       single node per block, each holding the same superpage word *)
    let n_blocks = 1 lsl (sz - t.sz_code_block) in
    let first_vpbn, _ = split t vpn in
    for i = 0 to n_blocks - 1 do
      let vpbn = Int64.add first_vpbn (Int64.of_int i) in
      let bucket = Config.hash t.config vpbn in
      let tag = Int64.to_int vpbn in
      let rec find n =
        if n == nil then None
        else if n.tag <> tag then find n.next
        else
          match classify t n with Single_sp _ -> Some n | _ -> find n.next
      in
      match find t.heads.(bucket) with
      | Some n -> n.words.(0) <- word
      | None ->
          let n = alloc_node t ~tag ~words:[| word |] in
          link t bucket n
    done
  end
  else begin
    (* smaller than the page block: live inside a block node, the word
       replicated at each covered block offset *)
    let vpbn, boff = split t vpn in
    let n = get_or_create_block_node t vpbn in
    let covered = 1 lsl (sz - t.unit_shift) in
    for i = boff to boff + covered - 1 do
      n.words.(i) <- word
    done
  end

let insert_psb t ~vpbn ~vmask ~ppn ~attr =
  if t.unit_shift <> 0 then
    invalid_arg "Clustered_pt: partial-subblocks only in base-page tables";
  if vmask land lnot (factor_mask t) <> 0 then
    invalid_arg "Clustered_pt.insert_psb: vmask exceeds subblock factor";
  let bucket = Config.hash t.config vpbn in
  let tag = Int64.to_int vpbn in
  let rec find n =
    if n == nil then None
    else if n.tag <> tag then find n.next
    else
      match classify t n with Single_psb p -> Some (n, p) | _ -> find n.next
  in
  match find t.heads.(bucket) with
  | Some (n, existing) when Int64.equal existing.Pte.Psb_pte.ppn ppn ->
      let merged = existing.Pte.Psb_pte.vmask lor vmask in
      n.words.(0) <- Pte.Psb_pte.(encode (make ~vmask:merged ~ppn ~attr))
  | Some (n, _) ->
      n.words.(0) <- Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr))
  | None ->
      let word = Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr)) in
      let n = alloc_node t ~tag ~words:[| word |] in
      link t bucket n

(* --- removal --- *)

(* block nodes only ever hold valid words or the canonical invalid
   word, so emptiness is a plain comparison *)
let block_node_empty n =
  Array.for_all (fun w -> Int64.equal w invalid_base_word) n.words

(* Handle removal of [boff] within a tag-matched node.  [`Removed] with
   [`Unlink] asks the caller to drop the node from the chain. *)
let remove_from_node t n ~boff =
  match classify t n with
  | Single_psb p ->
      if Pte.Psb_pte.valid_at p ~boff then begin
        let p = Pte.Psb_pte.clear_valid p ~boff in
        if p.Pte.Psb_pte.vmask land factor_mask t = 0 then `Unlink
        else begin
          n.words.(0) <- Pte.Psb_pte.encode p;
          `Removed
        end
      end
      else `Not_here
  | Single_sp sp -> if sp.valid then `Unlink else `Not_here
  | Block -> (
      match Pte.Word.decode n.words.(boff) with
      | Pte.Word.Base b when b.valid ->
          n.words.(boff) <- invalid_base_word;
          if block_node_empty n then `Unlink else `Removed
      | Pte.Word.Superpage sp when sp.valid ->
          (* clear every replica of this small superpage's word *)
          let sz = Addr.Page_size.sz_code sp.size in
          let covered = 1 lsl (sz - t.unit_shift) in
          let first = boff land lnot (covered - 1) in
          for i = first to first + covered - 1 do
            n.words.(i) <- invalid_base_word
          done;
          if block_node_empty n then `Unlink else `Removed
      | Pte.Word.Base _ | Pte.Word.Superpage _ | Pte.Word.Psb _ -> `Not_here)

let remove t ~vpn =
  let vpbn, boff = split t vpn in
  let tag = Int64.to_int vpbn in
  let bucket = Config.hash t.config vpbn in
  let rec go n =
    if n == nil then nil
    else if n.tag <> tag then begin
      n.next <- go n.next;
      n
    end
    else
      match remove_from_node t n ~boff with
      | `Unlink ->
          let rest = n.next in
          release_node t n;
          rest
      | `Removed -> n
      | `Not_here ->
          n.next <- go n.next;
          n
  in
  set_head t bucket (go t.heads.(bucket))

(* --- range attribute updates --- *)

let set_attr_range t region ~f =
  if Addr.Region.is_empty region then 0
  else begin
    let first_u = uvpn_of t region.Addr.Region.first_vpn in
    let last_u = uvpn_of t (Addr.Region.last_vpn region) in
    let uregion =
      Addr.Region.make ~first_vpn:first_u
        ~pages:(Int64.to_int (Int64.sub last_u first_u) + 1)
    in
    let blocks =
      Addr.Region.blocks ~subblock_factor:t.config.Config.subblock_factor
        uregion
    in
    let searches = ref 0 in
    List.iter
      (fun (vpbn, first_boff, count) ->
        incr searches;
        let bucket = Config.hash t.config vpbn in
        let tag = Int64.to_int vpbn in
        let rec go n =
          if n == nil then ()
          else begin
            (if n.tag = tag then
               match classify t n with
               | Single_psb _ | Single_sp _ -> (
                   match Pt_common.Decode.reencode_attr n.words.(0) ~f with
                   | Some w -> n.words.(0) <- w
                   | None -> ())
               | Block ->
                   (* update words in range; a small-superpage word is
                      updated across all its replicas for coherence *)
                   let touched = Array.make (Array.length n.words) false in
                   for i = first_boff to first_boff + count - 1 do
                     if not touched.(i) then begin
                       match Pte.Word.decode n.words.(i) with
                       | Pte.Word.Superpage sp when sp.valid ->
                           let sz = Addr.Page_size.sz_code sp.size in
                           let covered = 1 lsl (sz - t.unit_shift) in
                           let first = i land lnot (covered - 1) in
                           (match Pt_common.Decode.reencode_attr n.words.(i) ~f with
                           | Some w ->
                               for j = first to first + covered - 1 do
                                 n.words.(j) <- w;
                                 touched.(j) <- true
                               done
                           | None -> ())
                       | _ -> (
                           match Pt_common.Decode.reencode_attr n.words.(i) ~f with
                           | Some w ->
                               n.words.(i) <- w;
                               touched.(i) <- true
                           | None -> ())
                     end
                   done);
            go n.next
          end
        in
        go t.heads.(bucket))
      blocks;
    !searches
  end

(* --- accounting --- *)

let size_bytes t = Atomic.get t.logical_bytes

let iter_nodes t f =
  Array.iter
    (fun chain ->
      let rec go n =
        if n == nil then ()
        else begin
          f n;
          go n.next
        end
      in
      go chain)
    t.heads

let unit_pages t = 1 lsl t.unit_shift

let population t =
  let count = ref 0 in
  iter_nodes t (fun n ->
      match classify t n with
      | Single_psb p ->
          count :=
            !count
            + Addr.Bits.popcount (Int64.of_int (p.vmask land factor_mask t))
      | Single_sp sp ->
          if sp.valid then
            count := !count + (t.config.Config.subblock_factor * unit_pages t)
      | Block ->
          Array.iter
            (fun w ->
              match Pte.Word.decode w with
              | Pte.Word.Base b -> if b.valid then count := !count + 1
              | Pte.Word.Superpage sp ->
                  if sp.valid then count := !count + unit_pages t
              | Pte.Word.Psb _ -> ())
            n.words);
  !count

let clear t =
  (* [clear] really empties the table: live nodes and parked free-list
     nodes alike give their bytes back to the arena *)
  let to_free = ref [] in
  iter_nodes t (fun n -> to_free := n :: !to_free);
  List.iter
    (fun n ->
      ignore (Atomic.fetch_and_add t.logical_bytes (-n.node_bytes));
      ignore (Atomic.fetch_and_add t.nodes (-1));
      arena_free t n)
    !to_free;
  let rec drain n =
    if n != nil then begin
      let next = n.next in
      arena_free t n;
      drain next
    end
  in
  drain t.free_single;
  drain t.free_block;
  t.free_single <- nil;
  t.free_block <- nil;
  t.free_single_n <- 0;
  t.free_block_n <- 0;
  Array.fill t.heads 0 (Array.length t.heads) nil;
  Array.fill t.head_tags 0 (Array.length t.head_tags) empty_tag

let free_nodes t =
  Mutex.lock t.free_lock;
  let n = t.free_single_n + t.free_block_n in
  Mutex.unlock t.free_lock;
  n

let node_count t = Atomic.get t.nodes

let chain_length t ~bucket =
  let rec go acc n = if n == nil then acc else go (acc + 1) n.next in
  go 0 t.heads.(bucket)

let load_factor t =
  float_of_int (Atomic.get t.nodes) /. float_of_int (Array.length t.heads)

let iter_chain_tags t ~bucket f =
  let rec go n =
    if n == nil then ()
    else begin
      f (Int64.of_int n.tag);
      go n.next
    end
  in
  go t.heads.(bucket)

(* --- promotion support (Section 5) --- *)

type block_summary = {
  base_vmask : int;
  psb_vmask : int;
  superpage_pages : int;
  promotable_ppn : int64 option;
}

let block_summary t ~vpn =
  let vpbn, _ = split t vpn in
  let tag = Int64.to_int vpbn in
  let bucket = Config.hash t.config vpbn in
  let base_vmask = ref 0 and psb_vmask = ref 0 and sp_pages = ref 0 in
  let base_words = Array.make t.config.Config.subblock_factor None in
  let rec go n =
    if n == nil then ()
    else begin
      (if n.tag = tag then
         match classify t n with
         | Single_psb p -> psb_vmask := !psb_vmask lor (p.vmask land factor_mask t)
         | Single_sp sp ->
             if sp.valid then
               sp_pages := !sp_pages + t.config.Config.subblock_factor
         | Block ->
             Array.iteri
               (fun i w ->
                 match Pte.Word.decode w with
                 | Pte.Word.Base b when b.valid ->
                     if !base_vmask land (1 lsl i) = 0 then begin
                       base_vmask := !base_vmask lor (1 lsl i);
                       base_words.(i) <- Some b
                     end
                 | Pte.Word.Superpage sp when sp.valid -> incr sp_pages
                 | Pte.Word.Base _ | Pte.Word.Superpage _ | Pte.Word.Psb _ ->
                     ())
               n.words);
      go n.next
    end
  in
  go t.heads.(bucket);
  let promotable_ppn =
    if !base_vmask <> factor_mask t then None
    else
      match base_words.(0) with
      | Some b0
        when Addr.Bits.is_aligned b0.Pte.Base_pte.ppn t.factor_bits ->
          let ok = ref true in
          Array.iteri
            (fun i w ->
              match w with
              | Some (b : Pte.Base_pte.t) ->
                  if
                    (not
                       (Int64.equal b.ppn
                          (Int64.add b0.Pte.Base_pte.ppn (Int64.of_int i))))
                    || not (Pte.Attr.equal b.attr b0.Pte.Base_pte.attr)
                  then ok := false
              | None -> ok := false)
            base_words;
          if !ok then Some b0.Pte.Base_pte.ppn else None
      | Some _ | None -> None
  in
  {
    base_vmask = !base_vmask;
    psb_vmask = !psb_vmask;
    superpage_pages = !sp_pages;
    promotable_ppn;
  }

let block_size t = Addr.Page_size.of_sz_code t.sz_code_block

let promote_block t ~vpn =
  if t.unit_shift <> 0 then false
  else
    let summary = block_summary t ~vpn in
    match summary.promotable_ppn with
    | None -> false
    | Some ppn ->
        let vpbn, _ = split t vpn in
        let block_base_vpn = Int64.shift_left vpbn t.factor_bits in
        let attr =
          match lookup t ~vpn:block_base_vpn with
          | Some tr, _ -> tr.Types.attr
          | None, _ -> assert false
        in
        for i = 0 to t.config.Config.subblock_factor - 1 do
          remove t ~vpn:(Int64.add block_base_vpn (Int64.of_int i))
        done;
        insert_superpage t ~vpn:block_base_vpn ~size:(block_size t) ~ppn ~attr;
        true

let demote_block t ~vpn =
  if t.unit_shift <> 0 then false
  else
    let vpbn, _ = split t vpn in
    let tag = Int64.to_int vpbn in
    let bucket = Config.hash t.config vpbn in
    let rec find n =
      if n == nil then None
      else if n.tag <> tag then find n.next
      else
        match classify t n with
        | Single_psb p -> Some (`Psb p)
        | Single_sp sp when sp.valid -> Some (`Sp sp)
        | _ -> find n.next
    in
    match find t.heads.(bucket) with
    | None -> false
    | Some payload ->
        let block_base_vpn = Int64.shift_left vpbn t.factor_bits in
        (match payload with
        | `Sp (sp : Pte.Superpage_pte.t) ->
            remove t ~vpn:block_base_vpn;
            for i = 0 to t.config.Config.subblock_factor - 1 do
              insert_base t
                ~vpn:(Int64.add block_base_vpn (Int64.of_int i))
                ~ppn:(Int64.add sp.ppn (Int64.of_int i))
                ~attr:sp.attr
            done
        | `Psb (p : Pte.Psb_pte.t) ->
            let valid = p.vmask land factor_mask t in
            (* drop the psb node first (clearing each bit would do it
               piecemeal), then reinsert the survivors as base pages *)
            for i = 0 to t.config.Config.subblock_factor - 1 do
              if valid land (1 lsl i) <> 0 then
                remove t ~vpn:(Int64.add block_base_vpn (Int64.of_int i))
            done;
            for i = 0 to t.config.Config.subblock_factor - 1 do
              if valid land (1 lsl i) <> 0 then
                insert_base t
                  ~vpn:(Int64.add block_base_vpn (Int64.of_int i))
                  ~ppn:(Pte.Psb_pte.ppn_for p ~boff:i)
                  ~attr:p.attr
            done);
        true
