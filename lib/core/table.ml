module Types = Pt_common.Types

(* Chain nodes carry their tag as an immediate [int] (a VPBN fits in
   well under 62 bits) so the hot-path tag comparison is an unboxed
   integer compare instead of [Int64.equal] on two boxed values, and
   links are direct [node] pointers terminated by the [nil] sentinel
   instead of [node option], so traversal never pattern-matches an
   allocation. *)
type node = {
  mutable tag : int;
      (* mutable so a reclaimed node can be retagged on reuse; live
         nodes never change tag in place *)
  mutable words : int64 array;
  addr : int64;
  node_bytes : int;
  mutable next : node;
}

let rec nil = { tag = min_int; words = [||]; addr = -1L; node_bytes = 0; next = nil }

let empty_tag = min_int

(* Deferred reclamation (lock-free readers).  A limbo shard holds
   unlinked nodes stamped with the epoch of their retirement; sharding
   by domain id keeps retiring writers off each other's mutexes.  The
   list is a side structure — limbo nodes are NOT threaded through
   [next], because a concurrent optimistic reader may still be chasing
   that pointer. *)
type limbo_shard = {
  lm : Mutex.t;
  mutable l_entries : (node * int) list;
  mutable l_count : int;
}

let limbo_shards = 8

type t = {
  config : Config.t;
  arena : Mem.Sim_memory.t;
  heads : node array;  (* nil = empty bucket *)
  head_tags : int array;
      (* the first node's tag, flattened into the bucket array — the
         OCaml mirror of the [heads_addr] embedding below: a probe of
         the bucket decides "empty / head matches / walk the chain"
         without dereferencing any node *)
  heads_addr : int64;
      (* bucket array embedding the first nodes: an empty bucket's
         probe still reads one line *)
  unit_shift : int;  (* page_shift - 12: base pages per table unit *)
  factor_bits : int;
  sz_code_block : int;  (* SZ code of a whole page block *)
  logical_bytes : int Atomic.t;
  nodes : int Atomic.t;
  (* Emptied nodes are kept on per-size free lists (threaded through
     [next]) and reused before the arena grows: under churn, a
     map/unmap cycle settles into a steady state where node memory is
     recycled instead of leaking bump-allocator address space.  Freed
     nodes are excluded from [logical_bytes]/[nodes] — they are
     capacity, not live page-table state. *)
  mutable free_single : node;  (* 24-byte single-word nodes *)
  mutable free_block : node;  (* full block nodes *)
  mutable free_single_n : int;
  mutable free_block_n : int;
  free_lock : Mutex.t;
      (* like the arena's lock: per-bucket locking covers the chains,
         not this cross-bucket reclamation state *)
  mutable reclaim_hook : (unit -> int) option;
      (* when set, unlinked nodes are retired to limbo under the stamp
         this hook returns (an epoch clock) instead of parking on the
         free lists; [reclaim] moves them on once the caller proves no
         reader can still hold them.  A closure so this library does
         not depend on the epoch manager's home library. *)
  limbo : limbo_shard array;
}

let name = "clustered"

let create ?arena config =
  let arena =
    match arena with Some a -> a | None -> Mem.Sim_memory.create ()
  in
  let factor_bits = Addr.Bits.log2_exact config.Config.subblock_factor in
  let unit_shift = config.Config.page_shift - Addr.Page_size.base_shift in
  {
    config;
    arena;
    heads = Array.make config.Config.buckets nil;
    head_tags = Array.make config.Config.buckets empty_tag;
    heads_addr =
      Mem.Sim_memory.alloc arena
        ~bytes:(config.Config.buckets * 16)
        ~align:4096;
    unit_shift;
    factor_bits;
    sz_code_block = unit_shift + factor_bits;
    logical_bytes = Atomic.make 0;
    nodes = Atomic.make 0;
    free_single = nil;
    free_block = nil;
    free_single_n = 0;
    free_block_n = 0;
    free_lock = Mutex.create ();
    reclaim_hook = None;
    limbo =
      Array.init limbo_shards (fun _ ->
          { lm = Mutex.create (); l_entries = []; l_count = 0 });
  }

let config t = t.config

(* --- unit / block arithmetic (all on 4 KB VPNs from the interface) --- *)

let uvpn_of t vpn = Int64.shift_right_logical vpn t.unit_shift

let split t vpn =
  let uvpn = uvpn_of t vpn in
  let vpbn = Int64.shift_right_logical uvpn t.factor_bits in
  let boff = Int64.to_int (Addr.Bits.extract uvpn ~lo:0 ~width:t.factor_bits) in
  (vpbn, boff)

let factor_mask t = (1 lsl t.config.Config.subblock_factor) - 1

let buckets t = Array.length t.heads

let bucket_of t ~vpn =
  let vpbn, _ = split t vpn in
  Config.hash t.config vpbn

(* --- node management --- *)

let pop_free t ~single =
  Mutex.lock t.free_lock;
  let n = if single then t.free_single else t.free_block in
  if n != nil then
    if single then begin
      t.free_single <- n.next;
      t.free_single_n <- t.free_single_n - 1
    end
    else begin
      t.free_block <- n.next;
      t.free_block_n <- t.free_block_n - 1
    end;
  Mutex.unlock t.free_lock;
  n

let alloc_node t ~tag ~words =
  (* injected allocation failure: fires before any counter or free-list
     mutation, so an aborted insert leaves the table exactly as it was
     (modulo words the caller already wrote — its journal's problem) *)
  Fault.fire Fault.Alloc_node;
  let node_bytes = 16 + (8 * Array.length words) in
  ignore (Atomic.fetch_and_add t.logical_bytes node_bytes);
  ignore (Atomic.fetch_and_add t.nodes 1);
  let reuse = pop_free t ~single:(Array.length words = 1) in
  if reuse != nil then begin
    (* reuse before growing: same size class, so the arena address and
       byte accounting carry over unchanged *)
    reuse.tag <- tag;
    reuse.words <- words;
    reuse.next <- nil;
    reuse
  end
  else
    let addr =
      Mem.Sim_memory.alloc t.arena ~bytes:node_bytes
        ~align:t.config.Config.node_align
    in
    { tag; words; addr; node_bytes; next = nil }

let park_free t n =
  Mutex.lock t.free_lock;
  if Array.length n.words = 1 then begin
    n.next <- t.free_single;
    t.free_single <- n;
    t.free_single_n <- t.free_single_n + 1
  end
  else begin
    n.next <- t.free_block;
    t.free_block <- n;
    t.free_block_n <- t.free_block_n + 1
  end;
  Mutex.unlock t.free_lock

(* Unlink bookkeeping: the node leaves the live set and parks on its
   size class's free list.  The tag is reset to the unmatchable
   [empty_tag] so a stale pointer can never tag-match. *)
let release_node t n =
  ignore (Atomic.fetch_and_add t.logical_bytes (-n.node_bytes));
  ignore (Atomic.fetch_and_add t.nodes (-1));
  n.tag <- empty_tag;
  park_free t n

(* Deferred unlink: same accounting and tag reset, but the node waits
   in limbo under the hook's epoch stamp.  [next] and [words] are left
   exactly as they were — an optimistic reader that reached this node
   before the unlink must be able to finish its (doomed, to-be-retried)
   walk without chasing recycled pointers. *)
let retire_node t n stamp_of =
  ignore (Atomic.fetch_and_add t.logical_bytes (-n.node_bytes));
  ignore (Atomic.fetch_and_add t.nodes (-1));
  n.tag <- empty_tag;
  let stamp = stamp_of () in
  let shard = t.limbo.((Domain.self () :> int) land (limbo_shards - 1)) in
  Mutex.lock shard.lm;
  shard.l_entries <- (n, stamp) :: shard.l_entries;
  shard.l_count <- shard.l_count + 1;
  Mutex.unlock shard.lm

let unlink_node t n =
  match t.reclaim_hook with
  | None -> release_node t n
  | Some stamp_of -> retire_node t n stamp_of

let set_reclaim_hook t hook = t.reclaim_hook <- hook

let reclaim t ~upto =
  Array.iter
    (fun shard ->
      Mutex.lock shard.lm;
      let safe, keep =
        List.partition (fun (_, stamp) -> stamp < upto) shard.l_entries
      in
      shard.l_entries <- keep;
      shard.l_count <- List.length keep;
      Mutex.unlock shard.lm;
      (* free-list threading may now scribble on [next]: no reader
         pinned at or before [stamp] remains, per the caller's epoch
         manager *)
      List.iter (fun (n, _) -> park_free t n) safe)
    t.limbo

let limbo_nodes t =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.lm;
      let c = shard.l_count in
      Mutex.unlock shard.lm;
      acc + c)
    0 t.limbo

(* really return a node's bytes to the arena (only [clear] does) *)
let arena_free t n =
  Mem.Sim_memory.free t.arena ~addr:n.addr ~bytes:n.node_bytes
    ~align:t.config.Config.node_align

let set_head t bucket n =
  t.heads.(bucket) <- n;
  t.head_tags.(bucket) <- if n == nil then empty_tag else n.tag

let link t bucket n =
  n.next <- t.heads.(bucket);
  set_head t bucket n

let invalid_base_word = Pte.Base_pte.(encode invalid)

(* Classification of a node by the S field of its first word: the same
   single decode the paper's miss handler performs after a tag match. *)
type node_class =
  | Single_psb of Pte.Psb_pte.t
  | Single_sp of Pte.Superpage_pte.t
  | Block

let classify t n =
  match Pte.Word.decode n.words.(0) with
  | Pte.Word.Psb p -> Single_psb p
  | Pte.Word.Superpage sp
    when Addr.Page_size.sz_code sp.Pte.Superpage_pte.size >= t.sz_code_block ->
      Single_sp sp
  | Pte.Word.Superpage _ | Pte.Word.Base _ -> Block

(* decode-free classification for the hot paths: reads only the S and
   SZ bits *)
let is_single t n =
  match Pte.Layout.read_s n.words.(0) with
  | Pte.Layout.S_base -> false
  | Pte.Layout.S_partial_subblock -> true
  | Pte.Layout.S_superpage ->
      Int64.to_int
        (Addr.Bits.extract n.words.(0) ~lo:Pte.Layout.sz_lo
           ~width:Pte.Layout.sz_width)
      >= t.sz_code_block

(* --- translations --- *)

let sp_translation vpn (sp : Pte.Superpage_pte.t) =
  let sz = Addr.Page_size.sz_code sp.size in
  let vpn_base = Addr.Bits.align_down vpn sz in
  {
    Types.vpn;
    ppn = Int64.add sp.ppn (Int64.sub vpn vpn_base);
    vpn_base;
    ppn_base = sp.ppn;
    kind = Types.Superpage sp.size;
    attr = sp.attr;
  }

let psb_translation t vpn (p : Pte.Psb_pte.t) =
  let vpbn, boff = split t vpn in
  {
    Types.vpn;
    ppn = Pte.Psb_pte.ppn_for p ~boff;
    vpn_base = Int64.shift_left vpbn t.factor_bits;
    ppn_base = p.ppn;
    kind = Types.Partial_subblock (p.vmask land factor_mask t);
    attr = p.attr;
  }

let base_translation vpn (b : Pte.Base_pte.t) =
  Types.base_translation ~vpn ~ppn:b.ppn ~attr:b.attr

(* Reading the mapping of [vpn] out of a tag-matched node; None means
   "no valid mapping here, keep searching the chain" (Section 5). *)
let node_translation t n ~vpn ~boff =
  match classify t n with
  | Single_psb p ->
      if t.unit_shift = 0 && Pte.Psb_pte.valid_at p ~boff then
        Some (psb_translation t vpn p)
      else None
  | Single_sp sp -> if sp.valid then Some (sp_translation vpn sp) else None
  | Block -> (
      match Pte.Word.decode n.words.(boff) with
      | Pte.Word.Base b when b.valid && t.unit_shift = 0 ->
          Some (base_translation vpn b)
      | Pte.Word.Superpage sp when sp.valid -> Some (sp_translation vpn sp)
      | Pte.Word.Base _ | Pte.Word.Superpage _ | Pte.Word.Psb _ -> None)

(* --- lookup --- *)

let word_addr n i = Int64.add n.addr (Int64.of_int (16 + (8 * i)))

let charge_empty_head_acc t ~bucket acc =
  Mem.Walk_acc.read acc
    ~addr:(Int64.add t.heads_addr (Int64.of_int (bucket * 16)))
    ~bytes:16;
  Mem.Walk_acc.probe acc

let lookup_into t acc ~vpn =
  let vpbn, boff = split t vpn in
  let tag = Int64.to_int vpbn in
  let bucket = Config.hash t.config vpbn in
  if t.head_tags.(bucket) = empty_tag then begin
    charge_empty_head_acc t ~bucket acc;
    None
  end
  else begin
    let rec go n =
      if n == nil then None
      else begin
        (* tag and next pointer: the first sixteen bytes of the node *)
        Mem.Walk_acc.read acc ~addr:n.addr ~bytes:16;
        Mem.Walk_acc.probe acc;
        if n.tag <> tag then go n.next
        else begin
          (* the S check always reads mapping[0] (Figure 8) ... *)
          Mem.Walk_acc.read acc ~addr:(word_addr n 0) ~bytes:8;
          (* ... and a base-format node then reads mapping[Boff] *)
          if boff <> 0 && not (is_single t n) then
            Mem.Walk_acc.read acc ~addr:(word_addr n boff) ~bytes:8;
          match node_translation t n ~vpn ~boff with
          | Some _ as tr -> tr
          | None -> go n.next
        end
      end
    in
    go t.heads.(bucket)
  end

let lookup t ~vpn =
  let acc = Mem.Walk_acc.create ~capacity:8 () in
  let tr = lookup_into t acc ~vpn in
  (tr, Types.acc_to_walk acc)

let lookup_block t ~vpn ~subblock_factor =
  if subblock_factor = t.config.Config.subblock_factor && t.unit_shift = 0 then begin
    (* one chain traversal serves the whole block: mappings for all the
       block's base pages are adjacent in the matching nodes
       (Section 4.4: prefetch penalty is "reasonable" for clustered) *)
    let vpbn, _ = split t vpn in
    let tag = Int64.to_int vpbn in
    let block_base = Int64.shift_left vpbn t.factor_bits in
    let found = Array.make subblock_factor None in
    let acc = Mem.Walk_acc.create ~capacity:8 () in
    let rec go n =
      if n == nil then ()
      else begin
        Mem.Walk_acc.read acc ~addr:n.addr ~bytes:16;
        Mem.Walk_acc.probe acc;
        if n.tag <> tag then go n.next
        else begin
          Mem.Walk_acc.read acc ~addr:(word_addr n 0)
            ~bytes:(8 * Array.length n.words);
          for i = 0 to subblock_factor - 1 do
            if found.(i) = None then
              let page = Int64.add block_base (Int64.of_int i) in
              match node_translation t n ~vpn:page ~boff:i with
              | Some tr -> found.(i) <- Some tr
              | None -> ()
          done;
          go n.next
        end
      end
    in
    let bucket = Config.hash t.config vpbn in
    if t.head_tags.(bucket) = empty_tag then
      charge_empty_head_acc t ~bucket acc
    else go t.heads.(bucket);
    let results = ref [] in
    for i = subblock_factor - 1 downto 0 do
      match found.(i) with
      | Some tr -> results := (i, tr) :: !results
      | None -> ()
    done;
    (!results, Types.acc_to_walk acc)
  end
  else begin
    (* mismatched factor: gather page by page *)
    let block_pages = subblock_factor in
    let base =
      Int64.mul
        (Int64.div vpn (Int64.of_int block_pages))
        (Int64.of_int block_pages)
    in
    let results = ref [] and walk = ref Types.empty_walk in
    for i = block_pages - 1 downto 0 do
      let page = Int64.add base (Int64.of_int i) in
      let tr, w = lookup t ~vpn:page in
      walk := Types.walk_join w !walk;
      match tr with
      | Some tr -> results := (i, tr) :: !results
      | None -> ()
    done;
    (!results, !walk)
  end

(* --- insertion --- *)

let find_block_node t bucket tag =
  let rec go n =
    if n == nil then None
    else if n.tag = tag && not (is_single t n) then Some n
    else go n.next
  in
  go t.heads.(bucket)

let get_or_create_block_node t vpbn =
  let bucket = Config.hash t.config vpbn in
  let tag = Int64.to_int vpbn in
  match find_block_node t bucket tag with
  | Some n -> n
  | None ->
      let words =
        Array.make t.config.Config.subblock_factor invalid_base_word
      in
      let n = alloc_node t ~tag ~words in
      link t bucket n;
      n

let insert_base t ~vpn ~ppn ~attr =
  if t.unit_shift <> 0 then
    invalid_arg "Clustered_pt: base pages not representable in a coarse table";
  let vpbn, boff = split t vpn in
  let n = get_or_create_block_node t vpbn in
  n.words.(boff) <- Pte.Base_pte.(encode (make ~ppn ~attr ()))

let insert_superpage t ~vpn ~size ~ppn ~attr =
  let sz = Addr.Page_size.sz_code size in
  if not (Addr.Bits.is_aligned vpn sz) then
    invalid_arg "Clustered_pt.insert_superpage: VPN not aligned";
  if sz < t.unit_shift then
    invalid_arg "Clustered_pt.insert_superpage: smaller than table unit";
  let word = Pte.Superpage_pte.(encode (make ~size ~ppn ~attr ())) in
  if sz >= t.sz_code_block then begin
    (* replicate once per covered page block (Section 5): one 24-byte
       single node per block, each holding the same superpage word *)
    let n_blocks = 1 lsl (sz - t.sz_code_block) in
    let first_vpbn, _ = split t vpn in
    for i = 0 to n_blocks - 1 do
      let vpbn = Int64.add first_vpbn (Int64.of_int i) in
      let bucket = Config.hash t.config vpbn in
      let tag = Int64.to_int vpbn in
      let rec find n =
        if n == nil then None
        else if n.tag <> tag then find n.next
        else
          match classify t n with Single_sp _ -> Some n | _ -> find n.next
      in
      match find t.heads.(bucket) with
      | Some n -> n.words.(0) <- word
      | None ->
          let n = alloc_node t ~tag ~words:[| word |] in
          link t bucket n
    done
  end
  else begin
    (* smaller than the page block: live inside a block node, the word
       replicated at each covered block offset *)
    let vpbn, boff = split t vpn in
    let n = get_or_create_block_node t vpbn in
    let covered = 1 lsl (sz - t.unit_shift) in
    for i = boff to boff + covered - 1 do
      n.words.(i) <- word
    done
  end

let insert_psb t ~vpbn ~vmask ~ppn ~attr =
  if t.unit_shift <> 0 then
    invalid_arg "Clustered_pt: partial-subblocks only in base-page tables";
  if vmask land lnot (factor_mask t) <> 0 then
    invalid_arg "Clustered_pt.insert_psb: vmask exceeds subblock factor";
  let bucket = Config.hash t.config vpbn in
  let tag = Int64.to_int vpbn in
  let rec find n =
    if n == nil then None
    else if n.tag <> tag then find n.next
    else
      match classify t n with Single_psb p -> Some (n, p) | _ -> find n.next
  in
  match find t.heads.(bucket) with
  | Some (n, existing) when Int64.equal existing.Pte.Psb_pte.ppn ppn ->
      let merged = existing.Pte.Psb_pte.vmask lor vmask in
      n.words.(0) <- Pte.Psb_pte.(encode (make ~vmask:merged ~ppn ~attr))
  | Some (n, _) ->
      n.words.(0) <- Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr))
  | None ->
      let word = Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr)) in
      let n = alloc_node t ~tag ~words:[| word |] in
      link t bucket n

(* --- removal --- *)

(* block nodes only ever hold valid words or the canonical invalid
   word, so emptiness is a plain comparison *)
let block_node_empty n =
  Array.for_all (fun w -> Int64.equal w invalid_base_word) n.words

(* Handle removal of [boff] within a tag-matched node.  [`Removed] with
   [`Unlink] asks the caller to drop the node from the chain. *)
let remove_from_node t n ~boff =
  match classify t n with
  | Single_psb p ->
      if Pte.Psb_pte.valid_at p ~boff then begin
        let p = Pte.Psb_pte.clear_valid p ~boff in
        if p.Pte.Psb_pte.vmask land factor_mask t = 0 then `Unlink
        else begin
          n.words.(0) <- Pte.Psb_pte.encode p;
          `Removed
        end
      end
      else `Not_here
  | Single_sp sp -> if sp.valid then `Unlink else `Not_here
  | Block -> (
      match Pte.Word.decode n.words.(boff) with
      | Pte.Word.Base b when b.valid ->
          n.words.(boff) <- invalid_base_word;
          if block_node_empty n then `Unlink else `Removed
      | Pte.Word.Superpage sp when sp.valid ->
          (* clear every replica of this small superpage's word *)
          let sz = Addr.Page_size.sz_code sp.size in
          let covered = 1 lsl (sz - t.unit_shift) in
          let first = boff land lnot (covered - 1) in
          for i = first to first + covered - 1 do
            n.words.(i) <- invalid_base_word
          done;
          if block_node_empty n then `Unlink else `Removed
      | Pte.Word.Base _ | Pte.Word.Superpage _ | Pte.Word.Psb _ -> `Not_here)

let remove t ~vpn =
  let vpbn, boff = split t vpn in
  let tag = Int64.to_int vpbn in
  let bucket = Config.hash t.config vpbn in
  let rec go n =
    if n == nil then nil
    else if n.tag <> tag then begin
      n.next <- go n.next;
      n
    end
    else
      match remove_from_node t n ~boff with
      | `Unlink ->
          let rest = n.next in
          unlink_node t n;
          rest
      | `Removed -> n
      | `Not_here ->
          n.next <- go n.next;
          n
  in
  set_head t bucket (go t.heads.(bucket))

(* --- range attribute updates --- *)

let set_attr_range t region ~f =
  if Addr.Region.is_empty region then 0
  else begin
    let first_u = uvpn_of t region.Addr.Region.first_vpn in
    let last_u = uvpn_of t (Addr.Region.last_vpn region) in
    let uregion =
      Addr.Region.make ~first_vpn:first_u
        ~pages:(Int64.to_int (Int64.sub last_u first_u) + 1)
    in
    let blocks =
      Addr.Region.blocks ~subblock_factor:t.config.Config.subblock_factor
        uregion
    in
    let searches = ref 0 in
    List.iter
      (fun (vpbn, first_boff, count) ->
        incr searches;
        let bucket = Config.hash t.config vpbn in
        let tag = Int64.to_int vpbn in
        let rec go n =
          if n == nil then ()
          else begin
            (if n.tag = tag then
               match classify t n with
               | Single_psb _ | Single_sp _ -> (
                   match Pt_common.Decode.reencode_attr n.words.(0) ~f with
                   | Some w -> n.words.(0) <- w
                   | None -> ())
               | Block ->
                   (* update words in range; a small-superpage word is
                      updated across all its replicas for coherence *)
                   let touched = Array.make (Array.length n.words) false in
                   for i = first_boff to first_boff + count - 1 do
                     if not touched.(i) then begin
                       match Pte.Word.decode n.words.(i) with
                       | Pte.Word.Superpage sp when sp.valid ->
                           let sz = Addr.Page_size.sz_code sp.size in
                           let covered = 1 lsl (sz - t.unit_shift) in
                           let first = i land lnot (covered - 1) in
                           (match Pt_common.Decode.reencode_attr n.words.(i) ~f with
                           | Some w ->
                               for j = first to first + covered - 1 do
                                 n.words.(j) <- w;
                                 touched.(j) <- true
                               done
                           | None -> ())
                       | _ -> (
                           match Pt_common.Decode.reencode_attr n.words.(i) ~f with
                           | Some w ->
                               n.words.(i) <- w;
                               touched.(i) <- true
                           | None -> ())
                     end
                   done);
            go n.next
          end
        in
        go t.heads.(bucket))
      blocks;
    !searches
  end

(* --- accounting --- *)

let size_bytes t = Atomic.get t.logical_bytes

let iter_nodes t f =
  Array.iter
    (fun chain ->
      let rec go n =
        if n == nil then ()
        else begin
          f n;
          go n.next
        end
      in
      go chain)
    t.heads

let unit_pages t = 1 lsl t.unit_shift

let population t =
  let count = ref 0 in
  iter_nodes t (fun n ->
      match classify t n with
      | Single_psb p ->
          count :=
            !count
            + Addr.Bits.popcount (Int64.of_int (p.vmask land factor_mask t))
      | Single_sp sp ->
          if sp.valid then
            count := !count + (t.config.Config.subblock_factor * unit_pages t)
      | Block ->
          Array.iter
            (fun w ->
              match Pte.Word.decode w with
              | Pte.Word.Base b -> if b.valid then count := !count + 1
              | Pte.Word.Superpage sp ->
                  if sp.valid then count := !count + unit_pages t
              | Pte.Word.Psb _ -> ())
            n.words);
  !count

let clear t =
  (* [clear] really empties the table: live nodes and parked free-list
     nodes alike give their bytes back to the arena *)
  let to_free = ref [] in
  iter_nodes t (fun n -> to_free := n :: !to_free);
  List.iter
    (fun n ->
      ignore (Atomic.fetch_and_add t.logical_bytes (-n.node_bytes));
      ignore (Atomic.fetch_and_add t.nodes (-1));
      arena_free t n)
    !to_free;
  let rec drain n =
    if n != nil then begin
      let next = n.next in
      arena_free t n;
      drain next
    end
  in
  drain t.free_single;
  drain t.free_block;
  t.free_single <- nil;
  t.free_block <- nil;
  t.free_single_n <- 0;
  t.free_block_n <- 0;
  (* limbo nodes left the logical accounting at retirement; their
     bytes go back to the arena like the free lists' *)
  Array.iter
    (fun shard ->
      List.iter (fun (n, _) -> arena_free t n) shard.l_entries;
      shard.l_entries <- [];
      shard.l_count <- 0)
    t.limbo;
  Array.fill t.heads 0 (Array.length t.heads) nil;
  Array.fill t.head_tags 0 (Array.length t.head_tags) empty_tag

let free_nodes t =
  Mutex.lock t.free_lock;
  let n = t.free_single_n + t.free_block_n in
  Mutex.unlock t.free_lock;
  n

let node_count t = Atomic.get t.nodes

let chain_length t ~bucket =
  let rec go acc n = if n == nil then acc else go (acc + 1) n.next in
  go 0 t.heads.(bucket)

let load_factor t =
  float_of_int (Atomic.get t.nodes) /. float_of_int (Array.length t.heads)

let iter_chain_tags t ~bucket f =
  let rec go n =
    if n == nil then ()
    else begin
      f (Int64.of_int n.tag);
      go n.next
    end
  in
  go t.heads.(bucket)

(* --- promotion support (Section 5) --- *)

type block_summary = {
  base_vmask : int;
  psb_vmask : int;
  superpage_pages : int;
  promotable_ppn : int64 option;
}

let block_summary t ~vpn =
  let vpbn, _ = split t vpn in
  let tag = Int64.to_int vpbn in
  let bucket = Config.hash t.config vpbn in
  let base_vmask = ref 0 and psb_vmask = ref 0 and sp_pages = ref 0 in
  let base_words = Array.make t.config.Config.subblock_factor None in
  let rec go n =
    if n == nil then ()
    else begin
      (if n.tag = tag then
         match classify t n with
         | Single_psb p -> psb_vmask := !psb_vmask lor (p.vmask land factor_mask t)
         | Single_sp sp ->
             if sp.valid then
               sp_pages := !sp_pages + t.config.Config.subblock_factor
         | Block ->
             Array.iteri
               (fun i w ->
                 match Pte.Word.decode w with
                 | Pte.Word.Base b when b.valid ->
                     if !base_vmask land (1 lsl i) = 0 then begin
                       base_vmask := !base_vmask lor (1 lsl i);
                       base_words.(i) <- Some b
                     end
                 | Pte.Word.Superpage sp when sp.valid -> incr sp_pages
                 | Pte.Word.Base _ | Pte.Word.Superpage _ | Pte.Word.Psb _ ->
                     ())
               n.words);
      go n.next
    end
  in
  go t.heads.(bucket);
  let promotable_ppn =
    if !base_vmask <> factor_mask t then None
    else
      match base_words.(0) with
      | Some b0
        when Addr.Bits.is_aligned b0.Pte.Base_pte.ppn t.factor_bits ->
          let ok = ref true in
          Array.iteri
            (fun i w ->
              match w with
              | Some (b : Pte.Base_pte.t) ->
                  if
                    (not
                       (Int64.equal b.ppn
                          (Int64.add b0.Pte.Base_pte.ppn (Int64.of_int i))))
                    || not (Pte.Attr.equal b.attr b0.Pte.Base_pte.attr)
                  then ok := false
              | None -> ok := false)
            base_words;
          if !ok then Some b0.Pte.Base_pte.ppn else None
      | Some _ | None -> None
  in
  {
    base_vmask = !base_vmask;
    psb_vmask = !psb_vmask;
    superpage_pages = !sp_pages;
    promotable_ppn;
  }

let block_size t = Addr.Page_size.of_sz_code t.sz_code_block

let promote_block t ~vpn =
  if t.unit_shift <> 0 then false
  else
    let summary = block_summary t ~vpn in
    match summary.promotable_ppn with
    | None -> false
    | Some ppn ->
        let vpbn, _ = split t vpn in
        let block_base_vpn = Int64.shift_left vpbn t.factor_bits in
        let attr =
          match lookup t ~vpn:block_base_vpn with
          | Some tr, _ -> tr.Types.attr
          | None, _ -> assert false
        in
        for i = 0 to t.config.Config.subblock_factor - 1 do
          remove t ~vpn:(Int64.add block_base_vpn (Int64.of_int i))
        done;
        insert_superpage t ~vpn:block_base_vpn ~size:(block_size t) ~ppn ~attr;
        true

let demote_block t ~vpn =
  if t.unit_shift <> 0 then false
  else
    let vpbn, _ = split t vpn in
    let tag = Int64.to_int vpbn in
    let bucket = Config.hash t.config vpbn in
    let rec find n =
      if n == nil then None
      else if n.tag <> tag then find n.next
      else
        match classify t n with
        | Single_psb p -> Some (`Psb p)
        | Single_sp sp when sp.valid -> Some (`Sp sp)
        | _ -> find n.next
    in
    match find t.heads.(bucket) with
    | None -> false
    | Some payload ->
        let block_base_vpn = Int64.shift_left vpbn t.factor_bits in
        (match payload with
        | `Sp (sp : Pte.Superpage_pte.t) ->
            remove t ~vpn:block_base_vpn;
            for i = 0 to t.config.Config.subblock_factor - 1 do
              insert_base t
                ~vpn:(Int64.add block_base_vpn (Int64.of_int i))
                ~ppn:(Int64.add sp.ppn (Int64.of_int i))
                ~attr:sp.attr
            done
        | `Psb (p : Pte.Psb_pte.t) ->
            let valid = p.vmask land factor_mask t in
            (* drop the psb node first (clearing each bit would do it
               piecemeal), then reinsert the survivors as base pages *)
            for i = 0 to t.config.Config.subblock_factor - 1 do
              if valid land (1 lsl i) <> 0 then
                remove t ~vpn:(Int64.add block_base_vpn (Int64.of_int i))
            done;
            for i = 0 to t.config.Config.subblock_factor - 1 do
              if valid land (1 lsl i) <> 0 then
                insert_base t
                  ~vpn:(Int64.add block_base_vpn (Int64.of_int i))
                  ~ppn:(Pte.Psb_pte.ppn_for p ~boff:i)
                  ~attr:p.attr
            done);
        true

(* --- integrity verification, corruption injection, repair (fsck) --- *)

type violation =
  | Chain_cycle of { bucket : int }
  | Cross_link of { bucket : int; first_bucket : int }
  | Wrong_bucket of { bucket : int; tag : int64 }
  | Stale_tag of { bucket : int }
  | Head_tag_mismatch of { bucket : int }
  | Dup_node of { bucket : int; tag : int64 }
  | Bad_word of { bucket : int; tag : int64; boff : int }
  | Torn_replica of { bucket : int; tag : int64; boff : int }
  | Coverage_overlap of { bucket : int; tag : int64; boff : int }
  | Free_list_cycle of { single : bool }
  | Free_list_live_tag of { single : bool }
  | Free_live_overlap of { bucket : int }
  | Free_count_mismatch of { single : bool; counted : int; recorded : int }
  | Limbo_live_overlap of { bucket : int }
  | Limbo_free_overlap of { single : bool }
  | Limbo_live_tag
  | Limbo_count_mismatch of { counted : int; recorded : int }
  | Node_count_mismatch of { counted : int; recorded : int }
  | Byte_count_mismatch of { counted : int; recorded : int }

let violation_code = function
  | Chain_cycle _ -> "chain_cycle"
  | Cross_link _ -> "cross_link"
  | Wrong_bucket _ -> "wrong_bucket"
  | Stale_tag _ -> "stale_tag"
  | Head_tag_mismatch _ -> "head_tag_mismatch"
  | Dup_node _ -> "dup_node"
  | Bad_word _ -> "bad_word"
  | Torn_replica _ -> "torn_replica"
  | Coverage_overlap _ -> "coverage_overlap"
  | Free_list_cycle _ -> "free_list_cycle"
  | Free_list_live_tag _ -> "free_list_live_tag"
  | Free_live_overlap _ -> "free_live_overlap"
  | Free_count_mismatch _ -> "free_count_mismatch"
  | Limbo_live_overlap _ -> "limbo_live_overlap"
  | Limbo_free_overlap _ -> "limbo_free_overlap"
  | Limbo_live_tag -> "limbo_live_tag"
  | Limbo_count_mismatch _ -> "limbo_count_mismatch"
  | Node_count_mismatch _ -> "node_count_mismatch"
  | Byte_count_mismatch _ -> "byte_count_mismatch"

let pp_violation ppf = function
  | Chain_cycle { bucket } ->
      Format.fprintf ppf "chain cycle in bucket %d" bucket
  | Cross_link { bucket; first_bucket } ->
      Format.fprintf ppf
        "bucket %d links a node already reachable from bucket %d" bucket
        first_bucket
  | Wrong_bucket { bucket; tag } ->
      Format.fprintf ppf "tag %Ld chained in bucket %d but hashes elsewhere"
        tag bucket
  | Stale_tag { bucket } ->
      Format.fprintf ppf "reclaimed (empty-tag) node live in bucket %d" bucket
  | Head_tag_mismatch { bucket } ->
      Format.fprintf ppf "flattened head tag of bucket %d disagrees with chain"
        bucket
  | Dup_node { bucket; tag } ->
      Format.fprintf ppf "duplicate nodes for tag %Ld in bucket %d" tag bucket
  | Bad_word { bucket; tag; boff } ->
      Format.fprintf ppf
        "malformed mapping word (tag %Ld, bucket %d, offset %d)" tag bucket
        boff
  | Torn_replica { bucket; tag; boff } ->
      Format.fprintf ppf
        "inconsistent superpage replica (tag %Ld, bucket %d, offset %d)" tag
        bucket boff
  | Coverage_overlap { bucket; tag; boff } ->
      Format.fprintf ppf
        "page mapped by two representations (tag %Ld, bucket %d, offset %d)"
        tag bucket boff
  | Free_list_cycle { single } ->
      Format.fprintf ppf "cycle in the %s free list"
        (if single then "single-node" else "block-node")
  | Free_list_live_tag { single } ->
      Format.fprintf ppf "%s free list holds a node with a live tag"
        (if single then "single-node" else "block-node")
  | Free_live_overlap { bucket } ->
      Format.fprintf ppf "free list holds a node still chained in bucket %d"
        bucket
  | Free_count_mismatch { single; counted; recorded } ->
      Format.fprintf ppf "%s free list length %d, recorded %d"
        (if single then "single-node" else "block-node")
        counted recorded
  | Limbo_live_overlap { bucket } ->
      Format.fprintf ppf "limbo holds a node still chained in bucket %d"
        bucket
  | Limbo_free_overlap { single } ->
      Format.fprintf ppf "limbo holds a node also on the %s free list"
        (if single then "single-node" else "block-node")
  | Limbo_live_tag ->
      Format.fprintf ppf "limbo holds a node with a live tag"
  | Limbo_count_mismatch { counted; recorded } ->
      Format.fprintf ppf "limbo length %d, recorded %d" counted recorded
  | Node_count_mismatch { counted; recorded } ->
      Format.fprintf ppf "%d live nodes counted, %d recorded" counted recorded
  | Byte_count_mismatch { counted; recorded } ->
      Format.fprintf ppf "%d live bytes counted, %d recorded" counted recorded

let sz_of_sp (sp : Pte.Superpage_pte.t) = Addr.Page_size.sz_code sp.size

let lowest_bit m =
  let rec go m i = if m land 1 <> 0 then i else go (m lsr 1) (i + 1) in
  if m = 0 then 0 else go m 0

(* Locate the single-node replica of a multi-block superpage for
   [vpbn].  Cycle-safe: bounded by a visited set on node identity
   ([addr] is unique per allocation), so a corrupted chain cannot trap
   the checker itself. *)
let find_sp_replica t vpbn =
  let bucket = Config.hash t.config vpbn in
  let tag = Int64.to_int vpbn in
  let visited = Hashtbl.create 8 in
  let rec go n =
    if n == nil || Hashtbl.mem visited n.addr then None
    else begin
      Hashtbl.add visited n.addr ();
      if n.tag = tag && Array.length n.words = 1 then
        match Pte.Word.decode n.words.(0) with
        | Pte.Word.Superpage sp when sp.valid && sz_of_sp sp >= t.sz_code_block
          ->
            Some n.words.(0)
        | _ -> go n.next
      else go n.next
    end
  in
  go t.heads.(bucket)

(* Per-(bucket, tag) aggregation for duplicate-node and representation-
   exclusivity checks: all representations of one page block hash to
   the same bucket, so a per-bucket pass sees them all. *)
type tag_agg = {
  agg_tag : int;
  mutable a_psb : int;  (* single partial-subblock nodes *)
  mutable a_sp : int;  (* single (full-block) superpage nodes *)
  mutable a_block : int;  (* complete-subblock nodes *)
  mutable a_psb_mask : int;  (* offsets valid through psb nodes *)
  mutable a_word_mask : int;  (* offsets valid inside block nodes *)
}

let check t =
  let out = ref [] in
  let add v = out := v :: !out in
  let factor = t.config.Config.subblock_factor in
  (* node identity -> first bucket that reached it *)
  let seen : (int64, int) Hashtbl.t = Hashtbl.create 256 in
  let counted = ref 0 and counted_bytes = ref 0 in
  let check_block_words b n (agg : tag_agg) =
    let tag64 = Int64.of_int n.tag in
    for i = 0 to Array.length n.words - 1 do
      let w = n.words.(i) in
      match Pte.Word.decode w with
      | Pte.Word.Base bw ->
          if bw.valid then
            if t.unit_shift <> 0 then
              (* base words are not representable in a coarse table *)
              add (Bad_word { bucket = b; tag = tag64; boff = i })
            else agg.a_word_mask <- agg.a_word_mask lor (1 lsl i)
      | Pte.Word.Psb _ ->
          (* a psb word can only head a single node: this is the
             signature a torn multi-word update leaves behind *)
          add (Bad_word { bucket = b; tag = tag64; boff = i })
      | Pte.Word.Superpage sp ->
          if not sp.valid then
            (* block nodes hold the canonical invalid base word as
               filler, never invalid superpage words *)
            add (Bad_word { bucket = b; tag = tag64; boff = i })
          else begin
            let sz = sz_of_sp sp in
            if sz >= t.sz_code_block || sz < t.unit_shift then
              add (Bad_word { bucket = b; tag = tag64; boff = i })
            else begin
              let covered = 1 lsl (sz - t.unit_shift) in
              let first = i land lnot (covered - 1) in
              if i <> first then begin
                if not (Int64.equal n.words.(first) w) then
                  add (Torn_replica { bucket = b; tag = tag64; boff = i })
              end
              else begin
                let torn = ref false in
                for j = first to first + covered - 1 do
                  if not (Int64.equal n.words.(j) w) then torn := true
                done;
                if !torn then
                  add (Torn_replica { bucket = b; tag = tag64; boff = first })
              end;
              agg.a_word_mask <- agg.a_word_mask lor (1 lsl i)
            end
          end
    done
  in
  for b = 0 to Array.length t.heads - 1 do
    let head = t.heads.(b) in
    (if head == nil then begin
       if t.head_tags.(b) <> empty_tag then add (Head_tag_mismatch { bucket = b })
     end
     else if t.head_tags.(b) <> head.tag then
       add (Head_tag_mismatch { bucket = b }));
    let chain_seen = Hashtbl.create 8 in
    let aggs : tag_agg list ref = ref [] in
    let agg_for tag =
      match List.find_opt (fun a -> a.agg_tag = tag) !aggs with
      | Some a -> a
      | None ->
          let a =
            {
              agg_tag = tag;
              a_psb = 0;
              a_sp = 0;
              a_block = 0;
              a_psb_mask = 0;
              a_word_mask = 0;
            }
          in
          aggs := a :: !aggs;
          a
    in
    let rec walk n =
      if n == nil then ()
      else if Hashtbl.mem chain_seen n.addr then
        add (Chain_cycle { bucket = b })
      else
        match Hashtbl.find_opt seen n.addr with
        | Some first_bucket ->
            (* shared tail: already verified from its first bucket *)
            add (Cross_link { bucket = b; first_bucket })
        | None ->
            Hashtbl.add chain_seen n.addr ();
            Hashtbl.add seen n.addr b;
            incr counted;
            counted_bytes := !counted_bytes + n.node_bytes;
            (if n.tag = empty_tag then add (Stale_tag { bucket = b })
             else begin
               let tag64 = Int64.of_int n.tag in
               if Config.hash t.config tag64 <> b then
                 add (Wrong_bucket { bucket = b; tag = tag64 });
               let agg = agg_for n.tag in
               let len = Array.length n.words in
               if len <> 1 && len <> factor then
                 add (Bad_word { bucket = b; tag = tag64; boff = -1 })
               else if len = 1 then begin
                 match Pte.Word.decode n.words.(0) with
                 | Pte.Word.Psb p ->
                     if
                       t.unit_shift <> 0
                       || p.vmask land factor_mask t = 0
                     then add (Bad_word { bucket = b; tag = tag64; boff = 0 })
                     else begin
                       agg.a_psb <- agg.a_psb + 1;
                       agg.a_psb_mask <-
                         agg.a_psb_mask lor (p.vmask land factor_mask t)
                     end
                 | Pte.Word.Superpage sp ->
                     if (not sp.valid) || sz_of_sp sp < t.sz_code_block then
                       add (Bad_word { bucket = b; tag = tag64; boff = 0 })
                     else begin
                       agg.a_sp <- agg.a_sp + 1;
                       (* a multi-block superpage is replicated once per
                          covered block across buckets: the base block's
                          node sweeps its siblings, the others verify the
                          base, so a missing or diverged replica is
                          reported from whichever side survives *)
                       let n_blocks = 1 lsl (sz_of_sp sp - t.sz_code_block) in
                       if n_blocks > 1 then begin
                         let first_vpbn =
                           Int64.logand tag64
                             (Int64.lognot (Int64.of_int (n_blocks - 1)))
                         in
                         if Int64.equal tag64 first_vpbn then
                           for i = 1 to n_blocks - 1 do
                             let sib = Int64.add first_vpbn (Int64.of_int i) in
                             match find_sp_replica t sib with
                             | Some w when Int64.equal w n.words.(0) -> ()
                             | _ ->
                                 add
                                   (Torn_replica
                                      { bucket = b; tag = tag64; boff = i })
                           done
                         else begin
                           match find_sp_replica t first_vpbn with
                           | Some w when Int64.equal w n.words.(0) -> ()
                           | _ ->
                               add
                                 (Torn_replica
                                    { bucket = b; tag = tag64; boff = 0 })
                         end
                       end
                     end
                 | Pte.Word.Base _ ->
                     add (Bad_word { bucket = b; tag = tag64; boff = 0 })
               end
               else begin
                 agg.a_block <- agg.a_block + 1;
                 check_block_words b n agg
               end
             end);
            walk n.next
    in
    walk head;
    List.iter
      (fun a ->
        let tag64 = Int64.of_int a.agg_tag in
        if a.a_psb > 1 || a.a_sp > 1 || a.a_block > 1 then
          add (Dup_node { bucket = b; tag = tag64 });
        let inter = a.a_psb_mask land a.a_word_mask in
        if inter <> 0 then
          add
            (Coverage_overlap
               { bucket = b; tag = tag64; boff = lowest_bit inter })
        else if a.a_sp > 0 && a.a_psb_mask lor a.a_word_mask <> 0 then
          add
            (Coverage_overlap
               {
                 bucket = b;
                 tag = tag64;
                 boff = lowest_bit (a.a_psb_mask lor a.a_word_mask);
               }))
      (List.rev !aggs)
  done;
  let free_seen : (int64, unit) Hashtbl.t = Hashtbl.create 16 in
  let check_free ~single head recorded =
    let visited = Hashtbl.create 16 in
    let count = ref 0 in
    let rec go n =
      if n == nil then ()
      else if Hashtbl.mem visited n.addr then add (Free_list_cycle { single })
      else begin
        Hashtbl.add visited n.addr ();
        Hashtbl.replace free_seen n.addr ();
        incr count;
        if n.tag <> empty_tag then add (Free_list_live_tag { single });
        (match Hashtbl.find_opt seen n.addr with
        | Some bucket -> add (Free_live_overlap { bucket })
        | None -> ());
        go n.next
      end
    in
    go head;
    if !count <> recorded then
      add (Free_count_mismatch { single; counted = !count; recorded })
  in
  check_free ~single:true t.free_single t.free_single_n;
  check_free ~single:false t.free_block t.free_block_n;
  (* three-way disjointness: a limbo node must be neither chained nor
     on a free list — it is exactly the state between unlink and
     recycling — and must already wear the retired tag *)
  let limbo_counted = ref 0 and limbo_recorded = ref 0 in
  Array.iter
    (fun shard ->
      limbo_recorded := !limbo_recorded + shard.l_count;
      List.iter
        (fun ((n : node), _) ->
          incr limbo_counted;
          if n.tag <> empty_tag then add Limbo_live_tag;
          (match Hashtbl.find_opt seen n.addr with
          | Some bucket -> add (Limbo_live_overlap { bucket })
          | None -> ());
          if Hashtbl.mem free_seen n.addr then
            add (Limbo_free_overlap { single = Array.length n.words = 1 }))
        shard.l_entries)
    t.limbo;
  if !limbo_counted <> !limbo_recorded then
    add
      (Limbo_count_mismatch
         { counted = !limbo_counted; recorded = !limbo_recorded });
  let recorded_nodes = Atomic.get t.nodes in
  if !counted <> recorded_nodes then
    add (Node_count_mismatch { counted = !counted; recorded = recorded_nodes });
  let recorded_bytes = Atomic.get t.logical_bytes in
  if !counted_bytes <> recorded_bytes then
    add
      (Byte_count_mismatch
         { counted = !counted_bytes; recorded = recorded_bytes });
  List.rev !out

(* --- repair: rebuild a consistent table from surviving mappings --- *)

type repair_report = {
  violations : violation list;  (* pre-repair findings *)
  kept : int;  (* PTE entries reinserted *)
  dropped : int;  (* corrupted or conflicting entries discarded *)
}

let repair t =
  let violations = check t in
  let factor = t.config.Config.subblock_factor in
  let kept = ref 0 and dropped = ref 0 in
  let visited = Hashtbl.create 256 in
  (* multi-block superpages: vpn_base -> word, to fold replicas into
     one candidate (a diverged replica is a conflict, not a survivor) *)
  let sp_seen : (int64, int64) Hashtbl.t = Hashtbl.create 16 in
  let cands = ref [] in
  let cand c = cands := c :: !cands in
  let dropped_valid_words n =
    Array.iter
      (fun w -> if Pte.Word.is_valid (Pte.Word.decode w) then incr dropped)
      n.words
  in
  let harvest_block_node n =
    let tag64 = Int64.of_int n.tag in
    let block_uvpn = Int64.shift_left tag64 t.factor_bits in
    let len = Array.length n.words in
    let i = ref 0 in
    while !i < len do
      let w = n.words.(!i) in
      match Pte.Word.decode w with
      | Pte.Word.Base bw ->
          (if bw.valid then
             if t.unit_shift = 0 then
               cand
                 (`Base
                   (Int64.add block_uvpn (Int64.of_int !i), bw.ppn, bw.attr))
             else incr dropped);
          incr i
      | Pte.Word.Psb _ ->
          (* torn-write garbage *)
          incr dropped;
          incr i
      | Pte.Word.Superpage sp ->
          if not sp.valid then incr i (* filler, maps nothing *)
          else begin
            let sz = sz_of_sp sp in
            if sz >= t.sz_code_block || sz < t.unit_shift then begin
              incr dropped;
              incr i
            end
            else begin
              let covered = 1 lsl (sz - t.unit_shift) in
              let first = !i land lnot (covered - 1) in
              if !i <> first then begin
                (* orphan replica: its run leader did not claim it *)
                incr dropped;
                incr i
              end
              else begin
                let consistent = ref true in
                for j = first to first + covered - 1 do
                  if not (Int64.equal n.words.(j) w) then consistent := false
                done;
                if !consistent then begin
                  let vpn =
                    Int64.shift_left
                      (Int64.add block_uvpn (Int64.of_int first))
                      t.unit_shift
                  in
                  cand (`Sp (vpn, sp.size, sp.ppn, sp.attr));
                  i := first + covered
                end
                else begin
                  incr dropped;
                  incr i
                end
              end
            end
          end
    done
  in
  Array.iter
    (fun head ->
      let rec walk n =
        if n == nil || Hashtbl.mem visited n.addr then ()
        else begin
          Hashtbl.add visited n.addr ();
          (if n.tag = empty_tag then
             (* a reclaimed node's words are not trustworthy *)
             dropped_valid_words n
           else
             let len = Array.length n.words in
             if len <> 1 && len <> factor then dropped_valid_words n
             else if len = 1 then begin
               match Pte.Word.decode n.words.(0) with
               | Pte.Word.Psb p ->
                   let vmask = p.vmask land factor_mask t in
                   if t.unit_shift = 0 && vmask <> 0 then
                     cand (`Psb (Int64.of_int n.tag, vmask, p.ppn, p.attr))
                   else if vmask <> 0 then incr dropped
               | Pte.Word.Superpage sp ->
                   if sp.valid then begin
                     let sz = sz_of_sp sp in
                     if sz >= t.sz_code_block then begin
                       let block_vpn =
                         Int64.shift_left
                           (Int64.shift_left (Int64.of_int n.tag)
                              t.factor_bits)
                           t.unit_shift
                       in
                       let vpn_base = Addr.Bits.align_down block_vpn sz in
                       match Hashtbl.find_opt sp_seen vpn_base with
                       | Some w0 when Int64.equal w0 n.words.(0) -> ()
                       | Some _ -> incr dropped
                       | None ->
                           Hashtbl.add sp_seen vpn_base n.words.(0);
                           cand (`Sp (vpn_base, sp.size, sp.ppn, sp.attr))
                     end
                     else incr dropped (* small sp can't head a single node *)
                   end
               | Pte.Word.Base bw -> if bw.valid then incr dropped
             end
             else harvest_block_node n);
          walk n.next
        end
      in
      walk head)
    t.heads;
  (* first-wins page claims arbitrate between surviving candidates that
     cover the same base page (e.g. a duplicated node) *)
  let claimed : (int64, unit) Hashtbl.t = Hashtbl.create 1024 in
  let spans c =
    match c with
    | `Base (vpn, _, _) -> [ (vpn, 1) ]
    | `Sp (vpn, size, _, _) -> [ (vpn, Addr.Page_size.base_pages size) ]
    | `Psb (vpbn, vmask, _, _) ->
        let base = Int64.shift_left vpbn t.factor_bits in
        let l = ref [] in
        for i = factor - 1 downto 0 do
          if vmask land (1 lsl i) <> 0 then
            l := (Int64.add base (Int64.of_int i), 1) :: !l
        done;
        !l
  in
  let try_claim c =
    let pages = spans c in
    let free =
      List.for_all
        (fun (v0, np) ->
          let ok = ref true in
          for i = 0 to np - 1 do
            if Hashtbl.mem claimed (Int64.add v0 (Int64.of_int i)) then
              ok := false
          done;
          !ok)
        pages
    in
    if free then
      List.iter
        (fun (v0, np) ->
          for i = 0 to np - 1 do
            Hashtbl.add claimed (Int64.add v0 (Int64.of_int i)) ()
          done)
        pages;
    free
  in
  let survivors = List.rev !cands in
  Fault.suspended (fun () ->
      (* Detach everything and rebuild.  Corrupted chains and free
         lists are unsafe to walk for freeing, so the old nodes' arena
         bytes are abandoned (the arena is a simulator bump allocator;
         [clear] remains the true-freeing path for healthy tables). *)
      Array.fill t.heads 0 (Array.length t.heads) nil;
      Array.fill t.head_tags 0 (Array.length t.head_tags) empty_tag;
      Atomic.set t.nodes 0;
      Atomic.set t.logical_bytes 0;
      t.free_single <- nil;
      t.free_block <- nil;
      t.free_single_n <- 0;
      t.free_block_n <- 0;
      Array.iter
        (fun shard ->
          shard.l_entries <- [];
          shard.l_count <- 0)
        t.limbo;
      List.iter
        (fun c ->
          if not (try_claim c) then incr dropped
          else
            try
              (match c with
              | `Base (vpn, ppn, attr) -> insert_base t ~vpn ~ppn ~attr
              | `Sp (vpn, size, ppn, attr) ->
                  insert_superpage t ~vpn ~size ~ppn ~attr
              | `Psb (vpbn, vmask, ppn, attr) ->
                  insert_psb t ~vpbn ~vmask ~ppn ~attr);
              incr kept
            with Invalid_argument _ -> incr dropped)
        survivors);
  { violations; kept = !kept; dropped = !dropped }

(* --- bucket snapshots (the service's per-operation undo journal) --- *)

type bucket_image = (int * int64 array) list

let snapshot_bucket t ~bucket =
  let rec go acc n =
    if n == nil then List.rev acc
    else go ((n.tag, Array.copy n.words) :: acc) n.next
  in
  go [] t.heads.(bucket)

let restore_bucket t ~bucket image =
  Fault.suspended (fun () ->
      let rec drop n =
        if n != nil then begin
          let next = n.next in
          (* deferred when a reclaim hook is set: the journal rollback
             runs under the write lock while optimistic readers may
             still be walking these nodes *)
          unlink_node t n;
          drop next
        end
      in
      drop t.heads.(bucket);
      set_head t bucket nil;
      (* [link] prepends, so rebuild tail-first to restore chain order *)
      List.iter
        (fun (tag, words) ->
          let n = alloc_node t ~tag ~words:(Array.copy words) in
          link t bucket n)
        (List.rev image))

(* --- corruption injection (tests and the fsck CLI) --- *)

type corruption =
  | C_cycle
  | C_cross_link
  | C_misplace
  | C_duplicate
  | C_stale
  | C_torn of int64
  | C_torn_replica
  | C_head_tag
  | C_count
  | C_free_reattach
  | C_overlap

let first_nonempty t =
  let rec go b =
    if b >= Array.length t.heads then None
    else if t.heads.(b) != nil then Some b
    else go (b + 1)
  in
  go 0

let chain_tail n =
  let rec go n = if n.next == nil then n else go n.next in
  go n

let torn_garbage_word =
  (* a psb-encoded word: structurally illegal at any block-node offset *)
  Pte.Psb_pte.(encode (make ~vmask:1 ~ppn:0L ~attr:Pte.Attr.default))

let corrupt t kind =
  Fault.suspended (fun () ->
      match kind with
      | C_cycle -> (
          match first_nonempty t with
          | None -> false
          | Some b ->
              let head = t.heads.(b) in
              (chain_tail head).next <- head;
              true)
      | C_cross_link -> (
          match first_nonempty t with
          | None -> false
          | Some b -> (
              let rec next_nonempty b' =
                if b' >= Array.length t.heads then None
                else if t.heads.(b') != nil then Some b'
                else next_nonempty (b' + 1)
              in
              match next_nonempty (b + 1) with
              | None -> false
              | Some b2 ->
                  (chain_tail t.heads.(b)).next <- t.heads.(b2);
                  true))
      | C_misplace -> (
          if Array.length t.heads < 2 then false
          else
            match first_nonempty t with
            | None -> false
            | Some b ->
                let n = t.heads.(b) in
                set_head t b n.next;
                let b2 = (b + 1) mod Array.length t.heads in
                n.next <- t.heads.(b2);
                set_head t b2 n;
                true)
      | C_duplicate -> (
          match first_nonempty t with
          | None -> false
          | Some b ->
              let n = t.heads.(b) in
              let clone = alloc_node t ~tag:n.tag ~words:(Array.copy n.words) in
              link t b clone;
              true)
      | C_stale -> (
          match first_nonempty t with
          | None -> false
          | Some b ->
              t.heads.(b).tag <- empty_tag;
              (* keep the mirror consistent so only the stale tag trips *)
              t.head_tags.(b) <- empty_tag;
              true)
      | C_torn vpn ->
          if t.unit_shift <> 0 then false
          else begin
            let vpbn, boff = split t vpn in
            let n = get_or_create_block_node t vpbn in
            n.words.(boff) <- torn_garbage_word;
            true
          end
      | C_torn_replica ->
          (* drop one replica node of a multi-block superpage *)
          let removed = ref false in
          for b = 0 to Array.length t.heads - 1 do
            if not !removed then begin
              let rec go prev n =
                if n == nil || !removed then ()
                else begin
                  (match Pte.Word.decode n.words.(0) with
                  | Pte.Word.Superpage sp
                    when Array.length n.words = 1
                         && sp.valid
                         && sz_of_sp sp > t.sz_code_block ->
                      if prev == nil then set_head t b n.next
                      else prev.next <- n.next;
                      release_node t n;
                      removed := true
                  | _ -> ());
                  if not !removed then go n n.next
                end
              in
              go nil t.heads.(b)
            end
          done;
          !removed
      | C_head_tag -> (
          match first_nonempty t with
          | None -> false
          | Some b ->
              t.head_tags.(b) <- t.head_tags.(b) + 1;
              true)
      | C_count ->
          ignore (Atomic.fetch_and_add t.nodes 1);
          ignore (Atomic.fetch_and_add t.logical_bytes 8);
          true
      | C_free_reattach -> (
          match first_nonempty t with
          | None -> false
          | Some b ->
              let n = t.heads.(b) in
              set_head t b n.next;
              (* park it on its free list with none of the release
                 bookkeeping: a lost-update double-free *)
              Mutex.lock t.free_lock;
              if Array.length n.words = 1 then begin
                n.next <- t.free_single;
                t.free_single <- n;
                t.free_single_n <- t.free_single_n + 1
              end
              else begin
                n.next <- t.free_block;
                t.free_block <- n;
                t.free_block_n <- t.free_block_n + 1
              end;
              Mutex.unlock t.free_lock;
              true)
      | C_overlap ->
          (* shadow a valid base word of some block with a psb node *)
          if t.unit_shift <> 0 then false
          else begin
            let target = ref None in
            for b = 0 to Array.length t.heads - 1 do
              if !target = None then
                let rec go n =
                  if n == nil || !target <> None then ()
                  else begin
                    (if Array.length n.words > 1 then
                       Array.iteri
                         (fun i w ->
                           if !target = None then
                             match Pte.Word.decode w with
                             | Pte.Word.Base bw when bw.valid ->
                                 target := Some (n.tag, i)
                             | _ -> ())
                         n.words);
                    go n.next
                  end
                in
                go t.heads.(b)
            done;
            match !target with
            | None -> false
            | Some (tag, i) ->
                let word =
                  Pte.Psb_pte.(
                    encode (make ~vmask:(1 lsl i) ~ppn:0L ~attr:Pte.Attr.default))
                in
                let node = alloc_node t ~tag ~words:[| word |] in
                link t (Config.hash t.config (Int64.of_int tag)) node;
                true
          end)
