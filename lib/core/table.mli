(** The clustered page table (the paper's central contribution,
    Sections 3 and 5).

    An open hash table keyed by virtual page-block number (VPBN).  Each
    node carries one eight-byte tag, one eight-byte next pointer, and
    either a full array of [subblock_factor] mapping words (a
    complete-subblock / clustered PTE) or a single word (a
    partial-subblock or superpage PTE).  Word formats self-describe
    through their S field, so the miss handler walks the chain exactly
    as a hashed page table would and only branches after a tag match —
    the property that keeps the TLB miss penalty flat (Section 5).

    A chain may carry several nodes with the same tag (e.g. one
    superpage node plus one node of base pages for the rest of the
    block); lookup continues past a tag match that yields no valid
    mapping, as Section 5 requires.

    Superpages larger than the page block are stored replicated once
    per covered block (one 24-byte node each — a factor-of-k saving
    over conventional replication).  Superpages smaller than the page
    block live inside a block node, their word replicated at each
    covered block offset.

    Tables with [page_shift] > 12 cluster superpages instead of base
    pages (the second table of the two-table scheme of Section 7, see
    {!Multi_size}); they accept only [insert_superpage]. *)

type t

val create : ?arena:Mem.Sim_memory.t -> Config.t -> t

val config : t -> Config.t

val name : string

val buckets : t -> int

val bucket_of : t -> vpn:int64 -> int
(** The hash bucket whose chain holds (or would hold) [vpn]'s page
    block.  External per-bucket lock tables (see {!Bucket_lock.Real}
    and [lib/service]) key their stripes by this: every entry point
    that touches [vpn] touches only this bucket's chain, so holding its
    lock makes the operation atomic with respect to other buckets. *)

val lookup : t -> vpn:int64 -> Pt_common.Types.translation option * Pt_common.Types.walk

val lookup_into :
  t -> Mem.Walk_acc.t -> vpn:int64 -> Pt_common.Types.translation option
(** Allocation-free {!lookup}: appends the walk's reads and probes to
    the caller's reusable accumulator instead of building a walk.
    Charges exactly the reads {!lookup} would. *)

val lookup_block :
  t ->
  vpn:int64 ->
  subblock_factor:int ->
  (int * Pt_common.Types.translation) list * Pt_common.Types.walk

val insert_base : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_superpage :
  t -> vpn:int64 -> size:Addr.Page_size.t -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_psb :
  t -> vpbn:int64 -> vmask:int -> ppn:int64 -> attr:Pte.Attr.t -> unit

val remove : t -> vpn:int64 -> unit

val set_attr_range :
  t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int

val size_bytes : t -> int

val population : t -> int

val clear : t -> unit

(** {2 Structure inspection (policies, tests, reports)} *)

type block_summary = {
  base_vmask : int;  (** block offsets holding valid base-page words *)
  psb_vmask : int;  (** offsets valid through a partial-subblock node *)
  superpage_pages : int;  (** offsets covered by superpage words *)
  promotable_ppn : int64 option;
      (** when every base page is present, properly placed and
          attribute-compatible: the block-aligned PPN a promotion to a
          superpage or full partial-subblock PTE would use *)
}

val block_summary : t -> vpn:int64 -> block_summary
(** Inspect the page block containing [vpn]; the information an OS
    promotion policy gathers "for free" from a clustered node
    (Section 5). *)

val promote_block : t -> vpn:int64 -> bool
(** Replace a fully-populated, properly-placed block of base words with
    one block-sized superpage node.  Returns false (and does nothing)
    when the block is not promotable. *)

val demote_block : t -> vpn:int64 -> bool
(** Inverse of {!promote_block}: expand a block-sized superpage or
    partial-subblock node back into base-page words.  False when the
    block holds no such node. *)

val node_count : t -> int
(** Live nodes only; reclaimed free-list nodes are not counted. *)

val free_nodes : t -> int
(** Nodes parked on the reclamation free lists, awaiting reuse.  Their
    bytes stay allocated in the arena but are excluded from
    {!size_bytes}: they are capacity, not page-table state. *)

(** {2 Deferred reclamation (lock-free readers)}

    With a reclaim hook installed, {!remove} (and the journal rollback
    path) retires unlinked nodes to a limbo list stamped by the hook —
    an epoch clock such as [Exec.Epoch.retire_stamp] — instead of
    recycling them onto the free lists.  A retired node keeps its
    [next] pointer and words intact, so an optimistic (lock-free)
    reader that reached it before the unlink can finish walking; only
    {!reclaim} moves nodes whose stamp is proven reader-free onto the
    free lists, where reuse may scribble on them.  Retired nodes leave
    {!size_bytes}/{!node_count} at retirement, exactly like released
    ones. *)

val set_reclaim_hook : t -> (unit -> int) option -> unit
(** Install ([Some stamp_of]) or remove ([None]) the deferred-
    reclamation hook.  Flip only at quiescence. *)

val reclaim : t -> upto:int -> unit
(** Move every limbo node stamped strictly below [upto] — typically
    [Exec.Epoch.safe_before] — onto its free list. *)

val limbo_nodes : t -> int
(** Nodes currently in limbo: unlinked, not yet recyclable. *)

val chain_length : t -> bucket:int -> int

val load_factor : t -> float
(** Nodes per bucket. *)

val iter_chain_tags : t -> bucket:int -> (int64 -> unit) -> unit

(** {2 Integrity verification and repair (fsck)}

    The checker verifies every structural invariant the table relies
    on: chain acyclicity and bucket residency, the flattened head-tag
    mirror, tag liveness, node shape and word formats (a psb word can
    only head a single node — the signature a torn multi-word update
    leaves), superpage replica consistency within and across buckets,
    representation exclusivity (no page reachable through two PTEs),
    free-list acyclicity and disjointness from the live set, and the
    byte/node accounting.  It is cycle-safe: visited sets bound every
    traversal, so corruption cannot trap the checker.  Run at
    quiescence (no concurrent mutators). *)

type violation =
  | Chain_cycle of { bucket : int }
  | Cross_link of { bucket : int; first_bucket : int }
      (** a node reached earlier from [first_bucket] is also linked
          from [bucket] *)
  | Wrong_bucket of { bucket : int; tag : int64 }
  | Stale_tag of { bucket : int }  (** reclaimed node on a live chain *)
  | Head_tag_mismatch of { bucket : int }
  | Dup_node of { bucket : int; tag : int64 }
      (** two nodes of the same class for one tag *)
  | Bad_word of { bucket : int; tag : int64; boff : int }
      (** malformed word or node shape; [boff] = -1 for a bad shape *)
  | Torn_replica of { bucket : int; tag : int64; boff : int }
      (** superpage replica run inconsistent (within a block node) or a
          cross-bucket sibling of a multi-block superpage missing or
          diverged *)
  | Coverage_overlap of { bucket : int; tag : int64; boff : int }
      (** a base page reachable through two representations *)
  | Free_list_cycle of { single : bool }
  | Free_list_live_tag of { single : bool }
  | Free_live_overlap of { bucket : int }
      (** a free-listed node is still chained (double free) *)
  | Free_count_mismatch of { single : bool; counted : int; recorded : int }
  | Limbo_live_overlap of { bucket : int }
      (** a retired limbo node is still chained *)
  | Limbo_free_overlap of { single : bool }
      (** a limbo node is also on a free list (double reclamation) *)
  | Limbo_live_tag  (** a limbo node kept its live tag *)
  | Limbo_count_mismatch of { counted : int; recorded : int }
  | Node_count_mismatch of { counted : int; recorded : int }
  | Byte_count_mismatch of { counted : int; recorded : int }

val violation_code : violation -> string
(** Stable machine-readable code, e.g. ["chain_cycle"]. *)

val pp_violation : Format.formatter -> violation -> unit

val check : t -> violation list
(** All violations, in deterministic bucket-then-chain order; [[]] on a
    healthy table. *)

type repair_report = {
  violations : violation list;  (** what {!check} found before repair *)
  kept : int;  (** PTE entries reinserted *)
  dropped : int;  (** corrupted or conflicting entries discarded *)
}

val repair : t -> repair_report
(** Rebuild a consistent table in place from the surviving mappings:
    harvest every decodable PTE from the (possibly corrupt) chains with
    cycle-safe traversal, arbitrate double-mapped pages first-wins in
    deterministic order, then reset the bucket array, counters and free
    lists and reinsert the survivors.  After [repair], {!check} returns
    [[]].  The old nodes' arena bytes are abandoned (corrupt chains are
    unsafe to walk for freeing); injection sites are suspended for the
    duration, so repair can never itself fault. *)

type bucket_image
(** Opaque deep copy of one bucket's chain: the per-operation undo
    journal of the self-healing service. *)

val snapshot_bucket : t -> bucket:int -> bucket_image
(** Copy [bucket]'s chain (tags and words).  Take it under the
    bucket's write lock, before mutating: the chain must be walkable. *)

val restore_bucket : t -> bucket:int -> bucket_image -> unit
(** Put [bucket]'s chain back exactly as snapshotted (same node order,
    tags and words), releasing the current nodes to the free lists.
    Injection sites are suspended for the duration. *)

type corruption =
  | C_cycle  (** tie a chain's tail back to its head *)
  | C_cross_link  (** link one chain's tail into another bucket's chain *)
  | C_misplace  (** move a node to a bucket its tag doesn't hash to *)
  | C_duplicate  (** clone a node into its own bucket *)
  | C_stale  (** retag a live node with the reclaimed-node tag *)
  | C_torn of int64
      (** write a structurally illegal word at [vpn]'s block offset —
          what a torn multi-word update leaves behind *)
  | C_torn_replica  (** drop one replica of a multi-block superpage *)
  | C_head_tag  (** clobber a bucket's flattened head tag *)
  | C_count  (** drift the node and byte counters *)
  | C_free_reattach  (** double-free a live node onto its free list *)
  | C_overlap  (** shadow a valid base word with a psb node *)

val corrupt : t -> corruption -> bool
(** Inject one corruption of the given class (tests and the fsck CLI
    use this to prove {!check} has no false negatives).  False when the
    table has no applicable site (e.g. no multi-block superpage to
    tear); true means {!check} must now report the matching
    violation. *)
