(** Clustered page table with varying subblock factors.

    Section 3: "to support address spaces with varying degree of
    sparseness, clustered page tables generalize to include PTEs with
    varying subblock factors with only a small increase in page table
    access time (a few extra instructions in the TLB miss handler) but
    with better memory utilization [Tall95]".

    This table hashes on the full page block (factor 16) exactly like
    {!Table}, but a block's mappings may live in *quarter nodes*: four
    mapping words covering an aligned quarter of the block (48 bytes
    instead of 144).  A sparse block with one mapped page costs 48
    bytes; when every quarter of a block fills up, the quarters merge
    into one full node, recovering the dense-case economy.  The miss
    handler's extra work is one comparison against the node's
    quarter offset after the tag match.

    Partial-subblock and superpage PTEs are stored exactly as in
    {!Table} (24-byte single nodes).  Implements
    {!Pt_common.Intf.PAGE_TABLE}. *)

type t

val name : string

val create : ?arena:Mem.Sim_memory.t -> ?buckets:int -> unit -> t
(** Factor is fixed at 16 (quarters of 4); default 4096 buckets. *)

val lookup :
  t -> vpn:int64 -> Pt_common.Types.translation option * Pt_common.Types.walk

val lookup_into :
  t -> Mem.Walk_acc.t -> vpn:int64 -> Pt_common.Types.translation option
(** Allocation-free {!lookup}: appends the walk's reads and probes to
    the caller's reusable accumulator. *)

val lookup_block :
  t ->
  vpn:int64 ->
  subblock_factor:int ->
  (int * Pt_common.Types.translation) list * Pt_common.Types.walk

val insert_base : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_superpage :
  t -> vpn:int64 -> size:Addr.Page_size.t -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_psb :
  t -> vpbn:int64 -> vmask:int -> ppn:int64 -> attr:Pte.Attr.t -> unit

val remove : t -> vpn:int64 -> unit

val set_attr_range :
  t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int

val size_bytes : t -> int

val population : t -> int

val clear : t -> unit

val node_count : t -> int

val quarter_nodes : t -> int
(** Live quarter (48-byte) nodes, for tests and reports. *)

val full_nodes : t -> int
