(** Two-table clustered configuration for many page sizes (Section 7).

    "Two clustered page tables suffice for all page sizes between 4KB
    and 1MB: one clustered page table stores mappings for page sizes
    from 4KB to 64KB and another for larger page sizes upto 1MB."

    The fine table clusters 4 KB pages (64 KB blocks); the coarse table
    clusters 64 KB superpages (1 MB blocks).  Lookup probes fine first
    — the size most likely to miss — then coarse, charging both
    walks. *)

type t

val name : string

val create : ?arena:Mem.Sim_memory.t -> ?buckets:int -> unit -> t

val fine : t -> Table.t

val coarse : t -> Table.t

val lookup :
  t -> vpn:int64 -> Pt_common.Types.translation option * Pt_common.Types.walk

val lookup_into :
  t -> Mem.Walk_acc.t -> vpn:int64 -> Pt_common.Types.translation option
(** Allocation-free {!lookup}: appends the walk's reads and probes to
    the caller's reusable accumulator. *)

val lookup_block :
  t ->
  vpn:int64 ->
  subblock_factor:int ->
  (int * Pt_common.Types.translation) list * Pt_common.Types.walk

val insert_base : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_superpage :
  t -> vpn:int64 -> size:Addr.Page_size.t -> ppn:int64 -> attr:Pte.Attr.t -> unit
(** Sizes up to 64 KB go to the fine table; larger sizes go to the
    coarse table (where a 1 MB superpage costs one node instead of
    sixteen). *)

val insert_psb :
  t -> vpbn:int64 -> vmask:int -> ppn:int64 -> attr:Pte.Attr.t -> unit

val remove : t -> vpn:int64 -> unit

val set_attr_range :
  t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int

val size_bytes : t -> int

val node_count : t -> int
(** Live nodes across both tables. *)

val population : t -> int

val clear : t -> unit
