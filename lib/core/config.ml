type t = {
  subblock_factor : int;
  buckets : int;
  page_shift : int;
  node_align : int;
}

let make ?(subblock_factor = 16) ?(buckets = 4096) ?(page_shift = 12)
    ?(node_align = 256) () =
  if
    (not (Addr.Bits.is_pow2 subblock_factor))
    || subblock_factor > Pte.Layout.vmask_width
  then invalid_arg "Config: subblock factor must be a power of two <= 16";
  if not (Addr.Bits.is_pow2 buckets) then
    invalid_arg "Config: buckets must be a power of two";
  if page_shift < 12 || page_shift > 30 then invalid_arg "Config: page_shift";
  if not (Addr.Bits.is_pow2 node_align) then
    invalid_arg "Config: node_align must be a power of two";
  { subblock_factor; buckets; page_shift; node_align }

let default = make ()

let block_shift t = t.page_shift + Addr.Bits.log2_exact t.subblock_factor

let block_node_bytes t = 16 + (8 * t.subblock_factor)

let single_node_bytes = 24

let hash t vpbn =
  let bits = Addr.Bits.log2_exact t.buckets in
  if bits = 0 then 0
  else
    Int64.to_int
      (Int64.shift_right_logical (Addr.Bits.mix64 vpbn) (64 - bits))
