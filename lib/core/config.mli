(** Clustered-page-table configuration. *)

type t = {
  subblock_factor : int;
      (** base pages per page block (power of two, 1..16; the paper's
          default is 16) *)
  buckets : int;  (** hash buckets (power of two; the paper uses 4096) *)
  page_shift : int;
      (** log2 of the "base page" this table clusters.  12 for an
          ordinary table of 4 KB pages; 16 for the second table of a
          two-table large-superpage configuration, whose "pages" are
          64 KB superpages (paper, Section 7) *)
  node_align : int;
      (** alignment of node placement in simulated memory; the paper's
          accounting puts each PTE on a cache-line boundary, so the
          default is 256 *)
}

val default : t
(** factor 16, 4096 buckets, 4 KB base pages, 256-byte alignment. *)

val make :
  ?subblock_factor:int ->
  ?buckets:int ->
  ?page_shift:int ->
  ?node_align:int ->
  unit ->
  t
(** Validates all fields. *)

val block_shift : t -> int
(** log2 bytes covered by one page block. *)

val block_node_bytes : t -> int
(** Bytes of a complete-subblock node: tag + next + factor words. *)

val single_node_bytes : int
(** 24: tag + next + one word (partial-subblock or superpage node). *)

val hash : t -> int64 -> int
(** Bucket index for a VPBN (full-avalanche SplitMix64 mix). *)
