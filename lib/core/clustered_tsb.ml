module Types = Pt_common.Types

type slot = {
  mutable tag : int64; (* VPBN; empty_tag when invalid *)
  words : int64 array;
  addr : int64;
}

type t = {
  slots : slot array;
  slot_bytes : int;
  factor : int;
  factor_bits : int;
  backing : Table.t;
  mutable hits : int;
  mutable misses : int;
}

let name = "clustered-tsb"

let empty_tag = -1L

let invalid_word = Pte.Base_pte.(encode invalid)

let create ?arena ?(slots = 512) ?(subblock_factor = 16)
    ?(backing_buckets = 4096) () =
  if not (Addr.Bits.is_pow2 slots) then
    invalid_arg "Clustered_tsb: slots must be a power of two";
  if not (Addr.Bits.is_pow2 subblock_factor) then
    invalid_arg "Clustered_tsb: subblock factor must be a power of two";
  let arena =
    match arena with Some a -> a | None -> Mem.Sim_memory.create ()
  in
  let slot_bytes = 16 + (8 * subblock_factor) in
  (* a power-of-two stride keeps each slot within its own line set *)
  let stride =
    let rec up n = if n >= slot_bytes then n else up (2 * n) in
    up 32
  in
  let base = Mem.Sim_memory.alloc arena ~bytes:(slots * stride) ~align:4096 in
  {
    slots =
      Array.init slots (fun i ->
          {
            tag = empty_tag;
            words = Array.make subblock_factor invalid_word;
            addr = Int64.add base (Int64.of_int (i * stride));
          });
    slot_bytes;
    factor = subblock_factor;
    factor_bits = Addr.Bits.log2_exact subblock_factor;
    backing =
      Table.create ~arena
        (Config.make ~subblock_factor ~buckets:backing_buckets ());
    hits = 0;
    misses = 0;
  }

let vpbn t vpn = Int64.shift_right_logical vpn t.factor_bits

let slot_of t vpn =
  t.slots.(Int64.to_int
              (Int64.rem (vpbn t vpn) (Int64.of_int (Array.length t.slots))))

let invalidate t vpn =
  let s = slot_of t vpn in
  if Int64.equal s.tag (vpbn t vpn) then begin
    s.tag <- empty_tag;
    Array.fill s.words 0 t.factor invalid_word
  end

(* Refill a slot word from a translation found in the backing table.
   Single-class words (partial-subblock; block-sized-or-larger
   superpages) own the whole slot. *)
let refill t (tr : Types.translation) =
  let s = slot_of t tr.vpn in
  let this_vpbn = vpbn t tr.vpn in
  let claim () =
    if not (Int64.equal s.tag this_vpbn) then begin
      s.tag <- this_vpbn;
      Array.fill s.words 0 t.factor invalid_word
    end
  in
  let attr = tr.attr in
  match tr.kind with
  | Types.Base ->
      claim ();
      (* a single-word occupant owns the slot; do not mix *)
      (match Pte.Layout.read_s s.words.(0) with
      | Pte.Layout.S_base ->
          let boff = Addr.Vaddr.boff_of_vpn ~subblock_factor:t.factor tr.vpn in
          s.words.(boff) <- Pte.Base_pte.(encode (make ~ppn:tr.ppn ~attr ()))
      | Pte.Layout.S_partial_subblock | Pte.Layout.S_superpage -> ())
  | Types.Partial_subblock vmask ->
      claim ();
      Array.fill s.words 0 t.factor invalid_word;
      s.words.(0) <- Pte.Psb_pte.(encode (make ~vmask ~ppn:tr.ppn_base ~attr))
  | Types.Superpage size ->
      claim ();
      let sz = Addr.Page_size.sz_code size in
      if sz >= t.factor_bits then begin
        Array.fill s.words 0 t.factor invalid_word;
        s.words.(0) <-
          Pte.Superpage_pte.(encode (make ~size ~ppn:tr.ppn_base ~attr ()))
      end
      else if Pte.Layout.read_s s.words.(0) = Pte.Layout.S_base then begin
        let word =
          Pte.Superpage_pte.(encode (make ~size ~ppn:tr.ppn_base ~attr ()))
        in
        let first =
          Addr.Vaddr.boff_of_vpn ~subblock_factor:t.factor tr.vpn_base
        in
        for i = first to first + Addr.Page_size.base_pages size - 1 do
          s.words.(i) <- word
        done
      end

(* On a TSB miss, reload the whole block from the backing table: the
   backing node holds all the block's mappings adjacently, so the
   reload costs one chain traversal and future same-block lookups hit
   the slot (the block-granular analogue of a TSB reload). *)
let reload_block t ~vpn =
  let found, backing_walk =
    Table.lookup_block t.backing ~vpn ~subblock_factor:t.factor
  in
  List.iter (fun (_, tr) -> refill t tr) found;
  let boff = Addr.Vaddr.boff_of_vpn ~subblock_factor:t.factor vpn in
  (List.assoc_opt boff found, backing_walk)

let lookup t ~vpn =
  let s = slot_of t vpn in
  (* the handler reads the slot tag and the mapping word(s): one slot,
     one (or with small lines, few) cache lines *)
  let walk =
    Types.walk_probe
      (Types.walk_read Types.empty_walk ~addr:s.addr ~bytes:t.slot_bytes)
  in
  match
    if Int64.equal s.tag (vpbn t vpn) then
      Pt_common.Decode.translation_in_block ~subblock_factor:t.factor ~vpn
        ~words:s.words
    else None
  with
  | Some tr ->
      t.hits <- t.hits + 1;
      (Some tr, walk)
  | None ->
      t.misses <- t.misses + 1;
      let tr, backing_walk = reload_block t ~vpn in
      (tr, Types.walk_join walk backing_walk)

(* Cold path: translated through the legacy walk, then replayed into
   the caller's accumulator. *)
let lookup_into t acc ~vpn =
  let tr, w = lookup t ~vpn in
  Types.acc_add_walk acc w;
  tr

let lookup_block t ~vpn ~subblock_factor =
  if subblock_factor = t.factor then begin
    let s = slot_of t vpn in
    if Int64.equal s.tag (vpbn t vpn) then begin
      (* one slot read serves the whole block *)
      let walk =
        Types.walk_probe
          (Types.walk_read Types.empty_walk ~addr:s.addr ~bytes:t.slot_bytes)
      in
      let block_base = Int64.shift_left (vpbn t vpn) t.factor_bits in
      let results = ref [] in
      for i = t.factor - 1 downto 0 do
        let page = Int64.add block_base (Int64.of_int i) in
        match
          Pt_common.Decode.translation_in_block ~subblock_factor:t.factor
            ~vpn:page ~words:s.words
        with
        | Some tr -> results := (i, tr) :: !results
        | None -> ()
      done;
      if !results <> [] then begin
        t.hits <- t.hits + 1;
        (!results, walk)
      end
      else begin
        t.misses <- t.misses + 1;
        let found, backing_walk =
          Table.lookup_block t.backing ~vpn ~subblock_factor
        in
        List.iter (fun (_, tr) -> refill t tr) found;
        (found, Types.walk_join walk backing_walk)
      end
    end
    else begin
      t.misses <- t.misses + 1;
      let walk =
        Types.walk_probe
          (Types.walk_read Types.empty_walk ~addr:s.addr ~bytes:t.slot_bytes)
      in
      let found, backing_walk =
        Table.lookup_block t.backing ~vpn ~subblock_factor
      in
      List.iter (fun (_, tr) -> refill t tr) found;
      (found, Types.walk_join walk backing_walk)
    end
  end
  else Table.lookup_block t.backing ~vpn ~subblock_factor

(* All updates go to the backing table; the affected TSB slots are
   invalidated and refill on demand — how an OS maintains a TSB. *)

let insert_base t ~vpn ~ppn ~attr =
  Table.insert_base t.backing ~vpn ~ppn ~attr;
  invalidate t vpn

let insert_superpage t ~vpn ~size ~ppn ~attr =
  Table.insert_superpage t.backing ~vpn ~size ~ppn ~attr;
  let pages = Addr.Page_size.base_pages size in
  let blocks = max 1 (pages / t.factor) in
  for i = 0 to blocks - 1 do
    invalidate t (Int64.add vpn (Int64.of_int (i * t.factor)))
  done

let insert_psb t ~vpbn:block ~vmask ~ppn ~attr =
  Table.insert_psb t.backing ~vpbn:block ~vmask ~ppn ~attr;
  invalidate t (Int64.shift_left block t.factor_bits)

let remove t ~vpn =
  Table.remove t.backing ~vpn;
  invalidate t vpn

let set_attr_range t region ~f =
  let searches = Table.set_attr_range t.backing region ~f in
  Addr.Region.iter_vpns region (fun vpn -> invalidate t vpn);
  searches

let size_bytes t =
  (Array.length t.slots * t.slot_bytes) + Table.size_bytes t.backing

let population t = Table.population t.backing

let clear t =
  Array.iter
    (fun s ->
      s.tag <- empty_tag;
      Array.fill s.words 0 t.factor invalid_word)
    t.slots;
  Table.clear t.backing;
  t.hits <- 0;
  t.misses <- 0

let tsb_hits t = t.hits

let tsb_misses t = t.misses

let reach_pages t = Array.length t.slots * t.factor
