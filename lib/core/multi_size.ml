module Types = Pt_common.Types

type t = { fine : Table.t; coarse : Table.t }

let name = "clustered-2t"

let fine_block_sz_code = 4 (* 64 KB blocks: log2(64KB / 4KB) *)

let create ?arena ?(buckets = 4096) () =
  let arena =
    match arena with Some a -> a | None -> Mem.Sim_memory.create ()
  in
  {
    fine = Table.create ~arena (Config.make ~buckets ());
    coarse =
      Table.create ~arena (Config.make ~buckets ~page_shift:16 ());
  }

let fine t = t.fine

let coarse t = t.coarse

let lookup t ~vpn =
  match Table.lookup t.fine ~vpn with
  | (Some _ as tr), walk -> (tr, walk)
  | None, walk_fine ->
      let tr, walk_coarse = Table.lookup t.coarse ~vpn in
      (tr, Types.walk_join walk_fine walk_coarse)

(* Cold path: translated through the legacy walk, then replayed into
   the caller's accumulator. *)
let lookup_into t acc ~vpn =
  let tr, w = lookup t ~vpn in
  Types.acc_add_walk acc w;
  tr

let lookup_block t ~vpn ~subblock_factor =
  let found, walk = Table.lookup_block t.fine ~vpn ~subblock_factor in
  match found with
  | [] ->
      let found, walk_coarse =
        Table.lookup_block t.coarse ~vpn ~subblock_factor
      in
      (found, Types.walk_join walk walk_coarse)
  | found -> (found, walk)

let insert_base t ~vpn ~ppn ~attr = Table.insert_base t.fine ~vpn ~ppn ~attr

let insert_superpage t ~vpn ~size ~ppn ~attr =
  if Addr.Page_size.sz_code size <= fine_block_sz_code then
    Table.insert_superpage t.fine ~vpn ~size ~ppn ~attr
  else Table.insert_superpage t.coarse ~vpn ~size ~ppn ~attr

let insert_psb t ~vpbn ~vmask ~ppn ~attr =
  Table.insert_psb t.fine ~vpbn ~vmask ~ppn ~attr

let remove t ~vpn =
  match Table.lookup t.fine ~vpn with
  | Some _, _ -> Table.remove t.fine ~vpn
  | None, _ -> Table.remove t.coarse ~vpn

let set_attr_range t region ~f =
  Table.set_attr_range t.fine region ~f + Table.set_attr_range t.coarse region ~f

let size_bytes t = Table.size_bytes t.fine + Table.size_bytes t.coarse

let node_count t = Table.node_count t.fine + Table.node_count t.coarse

let population t = Table.population t.fine + Table.population t.coarse

let clear t =
  Table.clear t.fine;
  Table.clear t.coarse
