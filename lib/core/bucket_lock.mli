(** Per-bucket readers-writer locks (paper, Section 3.1).

    Hashed and clustered page tables associate a lock with each hash
    bucket.  The paper's claim: a range operation on a clustered table
    acquires one lock per *page block* where a hashed table acquires
    one per *base page*, at the cost of coarser exclusion.  This module
    is an operational lock table for a simulated multi-threaded OS: it
    enforces the readers-writer protocol (conflicting acquisition in
    one thread of control is a programming error and raises) and counts
    acquisitions so tests can verify the one-lock-per-block claim. *)

type t

type mode = Read | Write

exception Deadlock of int
(** Raised on an acquisition that would block forever in a
    single-threaded simulation (bucket index attached). *)

val create : buckets:int -> t

val acquire : t -> bucket:int -> mode -> unit

val release : t -> bucket:int -> mode -> unit
(** Raises [Invalid_argument] if the bucket is not held in that
    mode. *)

val try_acquire : t -> bucket:int -> mode -> bool
(** Non-blocking {!acquire}: false (and no state change) where
    [acquire] would raise {!Deadlock}.  A true return must be paired
    with {!release} like any acquisition. *)

val with_lock : t -> bucket:int -> mode -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)

val read_acquisitions : t -> int

val write_acquisitions : t -> int

val reset_counters : t -> unit
(** Zero the acquisition tallies.  Hold state (which buckets are
    locked right now) is live protocol state, not a counter, and is
    untouched. *)

val currently_held : t -> int
(** Number of buckets currently locked in either mode. *)

(** A real per-bucket readers-writer lock for multicore use (OCaml 5
    domains): writers exclusive, readers shared, writers preferred
    once waiting.  This is the protocol Section 3.1 describes for
    multi-threaded operating systems; the single-threaded {!t} above
    is its deadlock-detecting simulation twin. *)
module Real : sig
  type t

  exception Timeout of int
  (** An acquisition gave up (bucket index attached): raised by the
      bounded variants when their attempt budget runs out, and by
      {!with_read} / {!with_write} when an installed {!Fault} plan arms
      [Lock_timeout] for the current operation (the injected timeout
      fires {e before} any lock state changes, so nothing is held). *)

  val create : buckets:int -> t

  val buckets : t -> int

  val with_read : t -> bucket:int -> (unit -> 'a) -> 'a

  val with_write : t -> bucket:int -> (unit -> 'a) -> 'a

  (** {2 Try / bounded acquisition}

      Spec: [try_with_read] / [try_with_write] acquire only if the slot
      is immediately available under the writer-preference protocol (a
      reader also defers to waiting writers) and return [None] without
      blocking or changing any state otherwise.  The bounded variants
      retry up to [attempts] times on a deterministic attempt clock —
      one [Domain.cpu_relax] between tries, no wall-clock timeouts, so
      tests using them stay reproducible — and raise {!Timeout} when
      the budget is exhausted.  [with_write_bounded] keeps the slot's
      [writers_waiting] gate raised for its whole spin, so a steady
      stream of new readers cannot starve a bounded writer: only
      readers already holding the slot delay it. *)

  val try_with_read : t -> bucket:int -> (unit -> 'a) -> 'a option

  val try_with_write : t -> bucket:int -> (unit -> 'a) -> 'a option

  val with_read_bounded : t -> bucket:int -> attempts:int -> (unit -> 'a) -> 'a

  val with_write_bounded : t -> bucket:int -> attempts:int -> (unit -> 'a) -> 'a

  val read_acquisitions : t -> int
  (** Total granted read acquisitions, summed over buckets.  Counters
      are kept per slot (bumped under the slot mutex, so the hot path
      shares no cache line); the sum is exact once the lock is
      quiescent. *)

  val write_acquisitions : t -> int

  val read_contention : t -> int
  (** Read acquisitions that could not be granted immediately — the
      caller parked behind a writer or a waiting writer.  A cheap
      "why are striped reads slow" diagnostic: it counts one per
      blocked acquisition attempt (not per park/wake cycle), summed
      over buckets like {!read_acquisitions}. *)

  val reset_counters : t -> unit
  (** Zero every slot's acquisition tallies, including the contention
      tally (taking each slot mutex).  Call at quiescence; hold state
      is untouched. *)

  val currently_held : t -> int
  (** Number of buckets held in either mode right now; must return to
      zero whenever all critical sections have exited. *)
end
