module Types = Pt_common.Types

let factor = 16

let factor_bits = 4

let quarter = 4

type node = {
  tag : int64; (* VPBN at factor 16 *)
  off : int; (* first covered block offset (0 unless a quarter node) *)
  words : int64 array; (* 16 = full, 4 = quarter, 1 = psb/superpage *)
  addr : int64;
  node_bytes : int;
  mutable next : node option;
}

type t = {
  arena : Mem.Sim_memory.t;
  buckets : node option array;
  heads_addr : int64;
  node_align : int;
  mutable logical_bytes : int;
  mutable nodes : int;
}

let name = "clustered-var"

let create ?arena ?(buckets = 4096) () =
  if not (Addr.Bits.is_pow2 buckets) then
    invalid_arg "Var_table: buckets must be a power of two";
  let arena =
    match arena with Some a -> a | None -> Mem.Sim_memory.create ()
  in
  {
    arena;
    buckets = Array.make buckets None;
    heads_addr = Mem.Sim_memory.alloc arena ~bytes:(buckets * 16) ~align:4096;
    node_align = 256;
    logical_bytes = 0;
    nodes = 0;
  }

let hash t vpbn =
  let bits = Addr.Bits.log2_exact (Array.length t.buckets) in
  Int64.to_int (Int64.shift_right_logical (Addr.Bits.mix64 vpbn) (64 - bits))

let split vpn =
  ( Int64.shift_right_logical vpn factor_bits,
    Int64.to_int (Addr.Bits.extract vpn ~lo:0 ~width:factor_bits) )

let invalid_word = Pte.Base_pte.(encode invalid)

let alloc_node t ~tag ~off ~len =
  let node_bytes = 16 + (8 * len) in
  let addr =
    Mem.Sim_memory.alloc t.arena ~bytes:node_bytes ~align:t.node_align
  in
  t.logical_bytes <- t.logical_bytes + node_bytes;
  t.nodes <- t.nodes + 1;
  { tag; off; words = Array.make len invalid_word; addr; node_bytes; next = None }

let release_node t n =
  Mem.Sim_memory.free t.arena ~addr:n.addr ~bytes:n.node_bytes
    ~align:t.node_align;
  t.logical_bytes <- t.logical_bytes - n.node_bytes;
  t.nodes <- t.nodes - 1

let link t bucket n =
  n.next <- t.buckets.(bucket);
  t.buckets.(bucket) <- Some n

let covers n boff =
  Array.length n.words > 1
  && boff >= n.off
  && boff < n.off + Array.length n.words

(* multi-word nodes only hold valid words or the canonical invalid
   word *)
let node_empty n = Array.for_all (fun w -> Int64.equal w invalid_word) n.words

(* the mapping a tag-matched node provides for boff, if any *)
let node_translation n ~vpn ~boff =
  if Array.length n.words = 1 then
    (* psb or block-sized-or-larger superpage node *)
    Pt_common.Decode.translation_of_word ~subblock_factor:factor ~vpn
      n.words.(0)
  else if covers n boff then
    Pt_common.Decode.translation_of_word ~subblock_factor:factor ~vpn
      n.words.(boff - n.off)
  else None

let charge_empty_head t ~bucket walk =
  Types.walk_probe
    (Types.walk_read walk
       ~addr:(Int64.add t.heads_addr (Int64.of_int (bucket * 16)))
       ~bytes:16)

let lookup t ~vpn =
  let vpbn, boff = split vpn in
  let bucket = hash t vpbn in
  let rec go chain walk =
    match chain with
    | None -> (None, walk)
    | Some n ->
        (* the tag word carries the node's factor and offset in spare
           bits, so the range check costs no extra read *)
        let walk =
          Types.walk_probe (Types.walk_read walk ~addr:n.addr ~bytes:16)
        in
        if not (Int64.equal n.tag vpbn) then go n.next walk
        else if Array.length n.words > 1 && not (covers n boff) then
          go n.next walk
        else
          let word_idx = if Array.length n.words = 1 then 0 else boff - n.off in
          let walk =
            Types.walk_read walk
              ~addr:(Int64.add n.addr (Int64.of_int (16 + (8 * word_idx))))
              ~bytes:8
          in
          (match node_translation n ~vpn ~boff with
          | Some tr -> (Some tr, walk)
          | None -> go n.next walk)
  in
  match t.buckets.(bucket) with
  | None -> (None, charge_empty_head t ~bucket Types.empty_walk)
  | chain -> go chain Types.empty_walk

(* Cold path: translated through the legacy walk, then replayed into
   the caller's accumulator. *)
let lookup_into t acc ~vpn =
  let tr, w = lookup t ~vpn in
  Types.acc_add_walk acc w;
  tr

let lookup_block t ~vpn ~subblock_factor =
  if subblock_factor <> factor then
    invalid_arg "Var_table.lookup_block: factor mismatch";
  let vpbn, _ = split vpn in
  let block_base = Int64.shift_left vpbn factor_bits in
  let bucket = hash t vpbn in
  let found = Array.make factor None in
  let rec go chain walk =
    match chain with
    | None -> walk
    | Some n ->
        let walk =
          Types.walk_probe (Types.walk_read walk ~addr:n.addr ~bytes:16)
        in
        if not (Int64.equal n.tag vpbn) then go n.next walk
        else begin
          let walk =
            Types.walk_read walk ~addr:(Int64.add n.addr 16L)
              ~bytes:(8 * Array.length n.words)
          in
          for i = 0 to factor - 1 do
            if found.(i) = None then
              let page = Int64.add block_base (Int64.of_int i) in
              match node_translation n ~vpn:page ~boff:i with
              | Some tr -> found.(i) <- Some tr
              | None -> ()
          done;
          go n.next walk
        end
  in
  let walk =
    match t.buckets.(bucket) with
    | None -> charge_empty_head t ~bucket Types.empty_walk
    | chain -> go chain Types.empty_walk
  in
  let results = ref [] in
  for i = factor - 1 downto 0 do
    match found.(i) with
    | Some tr -> results := (i, tr) :: !results
    | None -> ()
  done;
  (!results, walk)

(* --- node management for inserts --- *)

let find_node t vpbn ~pred =
  let rec go = function
    | None -> None
    | Some n -> if Int64.equal n.tag vpbn && pred n then Some n else go n.next
  in
  go t.buckets.(hash t vpbn)

let unlink_matching t vpbn ~pred =
  let bucket = hash t vpbn in
  let rec go = function
    | None -> None
    | Some n ->
        if Int64.equal n.tag vpbn && pred n then begin
          release_node t n;
          go n.next
        end
        else begin
          n.next <- go n.next;
          Some n
        end
  in
  t.buckets.(bucket) <- go t.buckets.(bucket)

let is_quarter n = Array.length n.words = quarter

let is_full n = Array.length n.words = factor

(* Merge the block's quarter nodes into one full node.  Triggered when
   a third quarter would appear: 3 x 48 bytes already equals the full
   node, and one node means one probe. *)
let promote_to_full t vpbn =
  let full =
    match find_node t vpbn ~pred:is_full with
    | Some n -> n
    | None ->
        let n = alloc_node t ~tag:vpbn ~off:0 ~len:factor in
        link t (hash t vpbn) n;
        n
  in
  let rec copy_quarters = function
    | None -> ()
    | Some n ->
        if Int64.equal n.tag vpbn && is_quarter n then
          Array.iteri
            (fun i w ->
              if Pte.Word.is_valid (Pte.Word.decode w) then
                full.words.(n.off + i) <- w)
            n.words;
        copy_quarters n.next
  in
  copy_quarters t.buckets.(hash t vpbn);
  unlink_matching t vpbn ~pred:is_quarter;
  full

let insert_base t ~vpn ~ppn ~attr =
  let vpbn, boff = split vpn in
  let word = Pte.Base_pte.(encode (make ~ppn ~attr ())) in
  match find_node t vpbn ~pred:is_full with
  | Some n -> n.words.(boff) <- word
  | None -> (
      let qoff = boff land lnot (quarter - 1) in
      match find_node t vpbn ~pred:(fun n -> is_quarter n && n.off = qoff) with
      | Some n -> n.words.(boff - qoff) <- word
      | None ->
          let existing_quarters =
            let count = ref 0 in
            let rec go = function
              | None -> !count
              | Some n ->
                  if Int64.equal n.tag vpbn && is_quarter n then incr count;
                  go n.next
            in
            go t.buckets.(hash t vpbn)
          in
          if existing_quarters >= 2 then begin
            (* a third quarter: merge everything into a full node *)
            let full = promote_to_full t vpbn in
            full.words.(boff) <- word
          end
          else begin
            let n = alloc_node t ~tag:vpbn ~off:qoff ~len:quarter in
            n.words.(boff - qoff) <- word;
            link t (hash t vpbn) n
          end)

let insert_superpage t ~vpn ~size ~ppn ~attr =
  let sz = Addr.Page_size.sz_code size in
  if not (Addr.Bits.is_aligned vpn sz) then
    invalid_arg "Var_table.insert_superpage: VPN not aligned";
  let word = Pte.Superpage_pte.(encode (make ~size ~ppn ~attr ())) in
  if sz >= factor_bits then begin
    (* one 24-byte single node per covered block, as in Table *)
    let n_blocks = 1 lsl (sz - factor_bits) in
    let first_vpbn, _ = split vpn in
    for i = 0 to n_blocks - 1 do
      let vpbn = Int64.add first_vpbn (Int64.of_int i) in
      match
        find_node t vpbn ~pred:(fun n ->
            Array.length n.words = 1
            && Pte.Layout.read_s n.words.(0) = Pte.Layout.S_superpage)
      with
      | Some n -> n.words.(0) <- word
      | None ->
          let n = alloc_node t ~tag:vpbn ~off:0 ~len:1 in
          n.words.(0) <- word;
          link t (hash t vpbn) n
    done
  end
  else begin
    let vpbn, boff = split vpn in
    let covered = 1 lsl sz in
    (* if the superpage fits inside one quarter, a quarter node will do *)
    let qoff = boff land lnot (quarter - 1) in
    if covered <= quarter && boff + covered <= qoff + quarter then begin
      (match find_node t vpbn ~pred:is_full with
      | Some n ->
          for i = boff to boff + covered - 1 do
            n.words.(i) <- word
          done
      | None -> (
          match
            find_node t vpbn ~pred:(fun n -> is_quarter n && n.off = qoff)
          with
          | Some n ->
              for i = boff to boff + covered - 1 do
                n.words.(i - qoff) <- word
              done
          | None ->
              let n = alloc_node t ~tag:vpbn ~off:qoff ~len:quarter in
              for i = boff to boff + covered - 1 do
                n.words.(i - qoff) <- word
              done;
              link t (hash t vpbn) n))
    end
    else begin
      let full = promote_to_full t vpbn in
      for i = boff to boff + covered - 1 do
        full.words.(i) <- word
      done
    end
  end

let insert_psb t ~vpbn ~vmask ~ppn ~attr =
  if vmask land lnot ((1 lsl factor) - 1) <> 0 then
    invalid_arg "Var_table.insert_psb: vmask exceeds subblock factor";
  match
    find_node t vpbn ~pred:(fun n ->
        Array.length n.words = 1
        && Pte.Layout.read_s n.words.(0) = Pte.Layout.S_partial_subblock)
  with
  | Some n -> (
      match Pte.Word.decode n.words.(0) with
      | Pte.Word.Psb p when Int64.equal p.ppn ppn ->
          n.words.(0) <-
            Pte.Psb_pte.(encode (make ~vmask:(p.vmask lor vmask) ~ppn ~attr))
      | _ -> n.words.(0) <- Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr)))
  | None ->
      let n = alloc_node t ~tag:vpbn ~off:0 ~len:1 in
      n.words.(0) <- Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr));
      link t (hash t vpbn) n

(* --- removal --- *)

let remove t ~vpn =
  let vpbn, boff = split vpn in
  let bucket = hash t vpbn in
  let rec go chain =
    match chain with
    | None -> None
    | Some n ->
        if not (Int64.equal n.tag vpbn) then begin
          n.next <- go n.next;
          Some n
        end
        else if Array.length n.words = 1 then begin
          match Pte.Word.decode n.words.(0) with
          | Pte.Word.Psb p when Pte.Psb_pte.valid_at p ~boff ->
              let p = Pte.Psb_pte.clear_valid p ~boff in
              if p.Pte.Psb_pte.vmask = 0 then begin
                release_node t n;
                n.next
              end
              else begin
                n.words.(0) <- Pte.Psb_pte.encode p;
                Some n
              end
          | Pte.Word.Superpage sp when sp.valid ->
              release_node t n;
              n.next
          | Pte.Word.Psb _ | Pte.Word.Superpage _ | Pte.Word.Base _ ->
              n.next <- go n.next;
              Some n
        end
        else if covers n boff then begin
          let idx = boff - n.off in
          match Pte.Word.decode n.words.(idx) with
          | Pte.Word.Base b when b.valid ->
              n.words.(idx) <- invalid_word;
              if node_empty n then begin
                release_node t n;
                n.next
              end
              else Some n
          | Pte.Word.Superpage sp when sp.valid ->
              (* clear every replica of the small superpage *)
              let covered = 1 lsl Addr.Page_size.sz_code sp.size in
              let first = boff land lnot (covered - 1) in
              for i = first to first + covered - 1 do
                if covers n i then n.words.(i - n.off) <- invalid_word
              done;
              if node_empty n then begin
                release_node t n;
                n.next
              end
              else Some n
          | Pte.Word.Base _ | Pte.Word.Superpage _ | Pte.Word.Psb _ ->
              n.next <- go n.next;
              Some n
        end
        else begin
          n.next <- go n.next;
          Some n
        end
  in
  t.buckets.(bucket) <- go t.buckets.(bucket)

(* --- range attribute updates --- *)

let set_attr_range t region ~f =
  if Addr.Region.is_empty region then 0
  else begin
    let blocks = Addr.Region.blocks ~subblock_factor:factor region in
    let searches = ref 0 in
    List.iter
      (fun (vpbn, first_boff, count) ->
        incr searches;
        let rec go = function
          | None -> ()
          | Some n ->
              (if Int64.equal n.tag vpbn then
                 if Array.length n.words = 1 then (
                   match Pt_common.Decode.reencode_attr n.words.(0) ~f with
                   | Some w -> n.words.(0) <- w
                   | None -> ())
                 else
                   for boff = first_boff to first_boff + count - 1 do
                     if covers n boff then
                       match Pt_common.Decode.reencode_attr n.words.(boff - n.off) ~f with
                       | Some w -> n.words.(boff - n.off) <- w
                       | None -> ()
                   done);
              go n.next
        in
        go t.buckets.(hash t vpbn))
      blocks;
    !searches
  end

(* --- accounting --- *)

let size_bytes t = t.logical_bytes

let iter_nodes t f =
  Array.iter
    (fun chain ->
      let rec go = function
        | None -> ()
        | Some n ->
            f n;
            go n.next
      in
      go chain)
    t.buckets

let population t =
  let count = ref 0 in
  iter_nodes t (fun n ->
      if Array.length n.words = 1 then
        match Pte.Word.decode n.words.(0) with
        | Pte.Word.Psb p ->
            count :=
              !count
              + Addr.Bits.popcount (Int64.of_int (p.vmask land ((1 lsl factor) - 1)))
        | Pte.Word.Superpage sp -> if sp.valid then count := !count + factor
        | Pte.Word.Base _ -> ()
      else
        Array.iter
          (fun w ->
            if Pte.Word.is_valid (Pte.Word.decode w) then incr count)
          n.words);
  !count

let clear t =
  let to_free = ref [] in
  iter_nodes t (fun n -> to_free := n :: !to_free);
  List.iter (release_node t) !to_free;
  Array.fill t.buckets 0 (Array.length t.buckets) None

let node_count t = t.nodes

let quarter_nodes t =
  let c = ref 0 in
  iter_nodes t (fun n -> if is_quarter n then incr c);
  !c

let full_nodes t =
  let c = ref 0 in
  iter_nodes t (fun n -> if is_full n then incr c);
  !c
