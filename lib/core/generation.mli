(** Per-bucket monotone generation counters.

    One atomic counter per hash bucket.  The NUMA replication layer
    bumps a bucket's generation on every fan-out write to the primary
    replica and records, per replica, the generation that replica has
    applied; a replica bucket is stale exactly when its applied
    generation trails the current one, which is the single comparison
    the lazy pull-on-read catch-up makes per lookup. *)

type t

val create : buckets:int -> t
(** All counters start at 0.  Raises [Invalid_argument] if
    [buckets < 1]. *)

val buckets : t -> int

val get : t -> bucket:int -> int

val bump : t -> bucket:int -> int
(** Atomically increment and return the new value. *)

val set_at_least : t -> bucket:int -> int -> unit
(** Monotone join: raise the counter to at least the given value,
    never lowering it — concurrent joiners commute. *)

val snapshot : t -> int array
(** A plain-array copy (for cross-replica agreement checks at
    quiescence). *)
