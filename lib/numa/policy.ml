(* Per-address-space replication policy.

   An address space is profiled for one round (reads per node, write
   count — the counters {!Replicated.stats} and the numa.* Obs
   registry carry), then placed by comparing modeled line costs:

   - Home n: every read from node m <> n pays remote lines; writes pay
     nothing extra (one replica).
   - Replicate: every read is local, but each write fans out to
     [nodes - 1] extra replicas, remote from the writer.

   Costs are charged per access through {!Machine.line_cost} with a
   nominal one line per walk — exactly the clustered table's design
   point, which is what makes the comparison honest: replication pays
   off when remote read lines outweigh fan-out write lines.  The
   decision is a pure function of the counters, so a profiled run
   places spaces deterministically. *)

type decision = Replicate | Home of int

let decision_name = function
  | Replicate -> "replicate"
  | Home n -> Printf.sprintf "home%d" n

(* modeled line cost of homing the space on [n] *)
let home_cost machine ~reads_per_node ~n =
  let cost = ref 0 in
  Array.iteri
    (fun m reads ->
      cost := !cost + (reads * Machine.line_cost machine ~reader:m ~home:n))
    reads_per_node;
  !cost

(* modeled line cost of replicating: local reads everywhere, plus a
   fan-out of [nodes - 1] replica writes per write, charged remote
   (the writer updates every other node's memory) *)
let replicate_cost machine ~reads_per_node ~writes =
  let nodes = Machine.nodes machine in
  let local = Machine.local_cost machine in
  let remote = Machine.remote_cost machine in
  let reads = Array.fold_left ( + ) 0 reads_per_node in
  (reads * local) + (writes * (nodes - 1) * remote)

let decide machine ~reads_per_node ~writes =
  let nodes = Machine.nodes machine in
  if Array.length reads_per_node <> nodes then
    invalid_arg "Policy.decide: reads_per_node must have one slot per node";
  if writes < 0 || Array.exists (fun r -> r < 0) reads_per_node then
    invalid_arg "Policy.decide: counters must be >= 0";
  let best_home = ref 0 in
  let best_cost = ref (home_cost machine ~reads_per_node ~n:0) in
  for n = 1 to nodes - 1 do
    let c = home_cost machine ~reads_per_node ~n in
    if c < !best_cost then begin
      best_home := n;
      best_cost := c
    end
  done;
  let rc = replicate_cost machine ~reads_per_node ~writes in
  if rc < !best_cost then Replicate else Home !best_home
