(** A modeled multi-socket machine: N NUMA nodes, each with its own
    physical memory.

    The experiments charge page-table walks through the existing
    cache-line accounting ([Mem.Cache_model]); this module adds the
    one NUMA-specific fact — a line fetched from a remote node's
    memory costs more than a local one.  Costs are small exact
    integers ("local line units"), so derived figures are
    deterministic. *)

type t

val make : ?local_cost:int -> ?remote_cost:int -> nodes:int -> unit -> t
(** Defaults: local 1, remote 4 (a typical ~4x inter-socket latency
    ratio).  Raises [Invalid_argument] unless
    [1 <= local_cost <= remote_cost] and [nodes >= 1]. *)

val nodes : t -> int

val local_cost : t -> int

val remote_cost : t -> int

val is_local : t -> reader:int -> home:int -> bool
(** Whether a walk by a thread on [reader] against a table homed on
    [home] touches only local memory.  Raises [Invalid_argument] on an
    out-of-range node. *)

val line_cost : t -> reader:int -> home:int -> int

val walk_cost : t -> reader:int -> home:int -> lines:int -> int
(** [lines * line_cost]. *)
