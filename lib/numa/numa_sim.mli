(** The [ptsim numa] / bench driver: a phased multi-round workload
    over {!Replicated} across a (node count x mode x organization)
    matrix, plus the per-address-space {!Policy} experiment.

    Determinism: fixed logical streams pinned to nodes (never to
    domains), bucket-partitioned key pools (each hash chain belongs to
    exactly one stream, so chain order — hence walk line counts — is
    interleaving-invariant), and barriered write/read phases (catch-up
    work is fixed by the preceding write phases).  {!outcome_to_json}
    deliberately omits the domain count and is byte-identical for any
    [domains]. *)

type config = {
  node_counts : int list;
  modes : Replicated.mode list;
  orgs : Pt_service.Service.org list;
  locking : Pt_service.Service.locking;
  domains : int;
  streams_per_node : int;
  rounds : int;
  reads_per_stream : int;  (** lookups per stream per round *)
  writes_per_stream : int;  (** mutations per stream per round *)
  vpns_per_stream : int;
  buckets : int;
  seed : int;
  local_cost : int;
  remote_cost : int;
  fault_rate_ppm : int;  (** 0 = no plan installed *)
  fault_sites : Fault.site list;
  policy_spaces : int;
  policy_reads : int;  (** reads per read-mostly space *)
  policy_writes : int;  (** writes per write-heavy space *)
}

val default_config : config
(** nodes [2; 4], all three modes, both organizations, seqlock
    locking, 1 domain, seed 42, local/remote line costs 1/4, no
    faults. *)

val quick_config : config
(** CI-sized: fewer streams, rounds, ops and spaces. *)

type row = {
  r_nodes : int;
  r_mode : Replicated.mode;
  r_org : Pt_service.Service.org;
  r_locking : Pt_service.Service.locking;
  r_streams : int;
  r_rounds : int;
  r_lookups : int;
  r_hits : int;
  r_local_lines : int;
  r_remote_lines : int;
  r_logical_writes : int;
  r_replica_writes : int;
  r_eager_skips : int;
  r_catchups : int;
  r_replayed_ops : int;
  r_max_catchup_pending : int;
  r_stale_pairs : int;  (** staleness probe summed over rounds *)
  r_sync_replayed : int;  (** pending ops drained at quiesce *)
  r_injected : int;  (** replica-write faults injected *)
  r_population : int;
  r_fsck_clean : bool;
}

val lines_per_miss : int -> int -> float
(** [lines lookups]: every lookup models one TLB-miss walk. *)

val write_amplification : row -> float
(** [replica_writes / logical_writes]. *)

type policy_row = {
  p_org : Pt_service.Service.org;
  p_nodes : int;
  p_spaces : int;
  p_replicated : int;
  p_homed : int;
  p_baseline_remote_lines : int;  (** all spaces homed on node 0 *)
  p_policy_remote_lines : int;
  p_baseline_replica_writes : int;
  p_policy_replica_writes : int;
}

val remote_reduction_pct : policy_row -> float

type outcome = { rows : row list; policy : policy_row list }

val run_one :
  config ->
  org:Pt_service.Service.org ->
  mode:Replicated.mode ->
  nodes:int ->
  row

val run_policy : config -> org:Pt_service.Service.org -> nodes:int -> policy_row

val run : config -> outcome
(** The full matrix: [node_counts x orgs x modes] throughput rows,
    then one policy row per [node_counts x orgs]. *)

val outcome_to_json : config -> outcome -> string
(** Deterministic; omits the domain count (CI diffs runs across
    [--domains]). *)

val pp_outcome : Format.formatter -> outcome -> unit

val all_clean : outcome -> bool
(** Every row's replicas passed {!Replicated.fsck}. *)
