(** Per-address-space migration/replication policy.

    Given one profiling round's counters for a space — reads issued
    per node and total writes — place the space where the modeled
    cache-line cost is lowest: replicate it (reads all local, writes
    fan out) when it is hot and read-mostly, or single-home it on its
    dominant reader when it is write-heavy.  The decision is a pure
    function of the counters and the {!Machine} costs, so profiled
    runs place spaces deterministically. *)

type decision = Replicate | Home of int

val decision_name : decision -> string
(** ["replicate"] or ["home<n>"]. *)

val home_cost : Machine.t -> reads_per_node:int array -> n:int -> int
(** Modeled line cost of serving the profiled reads from one replica
    on node [n] (one line per walk — the clustered table's design
    point). *)

val replicate_cost : Machine.t -> reads_per_node:int array -> writes:int -> int
(** Modeled line cost of replicating: all reads local plus
    [writes * (nodes - 1)] remote fan-out lines. *)

val decide : Machine.t -> reads_per_node:int array -> writes:int -> decision
(** The cheaper of the best single home and replication; ties keep
    the single home (cheaper in memory).  Raises [Invalid_argument]
    if [reads_per_node] doesn't have one slot per node or any counter
    is negative. *)
