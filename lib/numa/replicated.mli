(** A NUMA-replicated page-table service: one full
    {!Pt_service.Service} replica of the same logical hashed/clustered
    table per node.

    Reads walk the reader's local replica — lock-free under [Seqlock]
    locking, each replica with its own epoch-reclamation domain
    (register workers with every epoch of {!reader_epochs}).  Writes
    apply to the primary (replica 0) and fan out per {!mode}:

    - [Single_home]: one replica (at node [?home]) serves every node;
      reads from other nodes pay remote lines.
    - [Eager]: the write applies to all replicas before returning,
      each under its own stripe write lock, serialized per bucket.
    - [Lazy]: only the primary is written; the op is journaled under a
      bumped per-bucket generation ({!Clustered_pt.Generation}) and
      replicas pull the pending suffix on their next read of the
      bucket (pull-on-read catch-up).

    An injected [Fault.Replica_write] drops one eager fan-out write;
    the bucket degrades to lazy on that replica (later eager writes
    skip it rather than reorder its history) until catch-up or
    {!sync} heals it.  Catch-up replays run under [Fault.suspended].

    All statistics are sums of per-op contributions independent of
    interleaving, so drivers that fix their op streams stay
    bit-identical for any domain count. *)

type mode = Single_home | Eager | Lazy

val mode_name : mode -> string

val mode_of_name : string -> mode option

type t

val create :
  ?buckets:int ->
  ?subblock_factor:int ->
  ?home:int ->
  machine:Machine.t ->
  org:Pt_service.Service.org ->
  locking:Pt_service.Service.locking ->
  mode:mode ->
  unit ->
  t
(** Defaults: 4096 buckets, the service's default subblock factor,
    home node 0.  [?home] is only meaningful for [Single_home] (other
    modes place replica [r] on node [r]); passing it with another mode
    raises [Invalid_argument]. *)

val machine : t -> Machine.t

val mode : t -> mode

val nodes : t -> int

val org : t -> Pt_service.Service.org

val locking : t -> Pt_service.Service.locking

val replica_count : t -> int
(** 1 for [Single_home], [nodes] otherwise. *)

val population : t -> int
(** Of the primary replica. *)

val bucket_of : t -> vpn:int64 -> int

val insert :
  ?node:int -> t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit
(** [?node] is the writing thread's node (stats only — writes always
    order through the primary). *)

val remove : ?node:int -> t -> vpn:int64 -> unit

val protect_page : ?node:int -> t -> vpn:int64 -> writable:bool -> unit

val lookup_into :
  t -> Mem.Cache_model.counter -> Mem.Walk_acc.t -> node:int -> vpn:int64 -> bool
(** Walk from [node]: catch the local replica's bucket up if it
    trails (lazy or fault-degraded), then walk it.  The walk's
    distinct cache lines are recorded into [counter] and tallied as
    local or remote by the replica's home.  [counter] and the
    accumulator must be private to the calling domain. *)

val lookup : t -> node:int -> vpn:int64 -> bool
(** {!lookup_into} with per-domain scratch. *)

val stale_buckets : t -> int
(** Stale (replica, bucket) pairs right now — the lazy-staleness
    probe.  Only exact at a phase barrier (no concurrent writers). *)

val pending_ops : t -> int
(** Journal entries some replica still has to apply. *)

val sync : t -> unit
(** Catch every replica up on every bucket (tallied as
    [sync_replayed], not as pull-on-read catch-ups). *)

val reader_epochs : t -> Exec.Epoch.t list
(** The reclamation domains of the replicas ([] unless [Seqlock]) —
    pass to [Exec.Worker_pool.create ?epochs]. *)

val quiesce : t -> unit
(** {!sync}, then reclaim every replica's limbo. *)

type stats = {
  lookups : int;
  hits : int;
  local_lines : int;
  remote_lines : int;
  reads_per_node : int array;
  logical_writes : int;  (** service-level mutations requested *)
  replica_writes : int;  (** mutations applied across all replicas *)
  eager_skips : int;  (** fan-out writes skipped (degraded buckets) *)
  catchups : int;  (** pull-on-read catch-up episodes *)
  replayed_ops : int;  (** journal ops replayed by those catch-ups *)
  max_catchup_pending : int;  (** deepest single catch-up *)
  sync_replayed : int;  (** journal ops replayed by {!sync} *)
}

val stats : t -> stats

val reset_stats : t -> unit

val stats_to_metrics : t -> unit
(** Publish the totals as [numa.*] counters (and the catch-up depth
    histogram) into the calling domain's {!Obs.Ambient} shard.  Call
    at quiescence. *)

val fsck : t -> Fsck.report
(** Every replica's structural check (details prefixed with the
    replica index) plus the cross-replica agreement check
    ([Fsck.check_replicas] with this layer's per-bucket generations).
    Run at quiescence, after {!sync} if lazy divergence is expected. *)

val corruption_kinds : string list
(** ["replica_extra"; "replica_missing"; "replica_ppn";
    "replica_generation"] — each damages a non-primary replica
    directly, bypassing the fan-out. *)

val corrupt : t -> string -> bool
(** Inject one cross-replica corruption by name.  False if the name is
    unknown or the configuration has no applicable site (single
    replica, or nothing live to damage). *)
