(* The `ptsim numa` / bench driver: throughput-style phased rounds
   over a NUMA-replicated service, plus the per-address-space policy
   experiment.

   Determinism contract (bit-identical output for any --domains):

   - Fixed logical streams, dealt round-robin over worker domains
     (stream [s] runs on worker [s mod domains]) and pinned to node
     [s mod nodes] — stream-to-node binding never depends on the
     domain count.
   - Bucket-partitioned key pools: stream [s] only uses VPNs whose
     primary-table bucket satisfies [bucket mod streams = s].  Every
     chain holds one stream's mappings in that stream's program order,
     so chain contents AND order — hence walk line counts, with nodes
     on 256-byte boundaries and 256-byte model lines — are
     interleaving-invariant, the property the shared-pool throughput
     driver deliberately gives up.
   - Phased rounds with barriers: each round is a write phase, a
     staleness probe on the idle main domain, then a read phase.
     Catch-up work observed by a read phase is fixed by the preceding
     write phases, not by scheduling.
   - Fault injection (the replica-write soak) keys every op by
     (stream, op ordinal), so plans fire identically for any domain
     count.

   Outputs deliberately omit the domain count. *)

module Service = Pt_service.Service

type config = {
  node_counts : int list;
  modes : Replicated.mode list;
  orgs : Service.org list;
  locking : Service.locking;
  domains : int;
  streams_per_node : int;
  rounds : int;
  reads_per_stream : int;  (** lookups per stream per round *)
  writes_per_stream : int;  (** mutations per stream per round *)
  vpns_per_stream : int;
  buckets : int;
  seed : int;
  local_cost : int;
  remote_cost : int;
  fault_rate_ppm : int;  (** 0 = no plan installed *)
  fault_sites : Fault.site list;
  policy_spaces : int;
  policy_reads : int;  (** reads per read-mostly space *)
  policy_writes : int;  (** writes per write-heavy space *)
}

let default_config =
  {
    node_counts = [ 2; 4 ];
    modes = [ Replicated.Single_home; Replicated.Eager; Replicated.Lazy ];
    orgs = [ Service.Clustered; Service.Hashed ];
    locking = Service.Seqlock;
    domains = 1;
    streams_per_node = 2;
    rounds = 4;
    reads_per_stream = 2_000;
    writes_per_stream = 400;
    vpns_per_stream = 512;
    buckets = 4096;
    seed = 42;
    local_cost = 1;
    remote_cost = 4;
    fault_rate_ppm = 0;
    fault_sites = [ Fault.Replica_write ];
    policy_spaces = 6;
    policy_reads = 1_500;
    policy_writes = 400;
  }

let quick_config =
  {
    default_config with
    streams_per_node = 1;
    rounds = 2;
    reads_per_stream = 600;
    writes_per_stream = 150;
    vpns_per_stream = 256;
    policy_reads = 500;
    policy_writes = 150;
  }

type row = {
  r_nodes : int;
  r_mode : Replicated.mode;
  r_org : Service.org;
  r_locking : Service.locking;
  r_streams : int;
  r_rounds : int;
  r_lookups : int;
  r_hits : int;
  r_local_lines : int;
  r_remote_lines : int;
  r_logical_writes : int;
  r_replica_writes : int;
  r_eager_skips : int;
  r_catchups : int;
  r_replayed_ops : int;
  r_max_catchup_pending : int;
  r_stale_pairs : int;  (** staleness probe sum over rounds *)
  r_sync_replayed : int;  (** pending drained at quiesce *)
  r_injected : int;  (** replica-write faults injected *)
  r_population : int;
  r_fsck_clean : bool;
}

let lines_per_miss lines lookups =
  if lookups = 0 then 0. else float_of_int lines /. float_of_int lookups

let write_amplification r =
  if r.r_logical_writes = 0 then 0.
  else float_of_int r.r_replica_writes /. float_of_int r.r_logical_writes

(* --- bucket-partitioned key pools --- *)

(* Stream [s] owns the VPNs (scanned in increasing order from a fixed
   base) whose bucket is congruent to [s] mod streams.  The scan is a
   pure function of the table configuration, so every run of a config
   builds identical pools. *)
let build_pools repl ~streams ~vpns_per_stream =
  let pools = Array.init streams (fun _ -> Array.make vpns_per_stream 0L) in
  let fill = Array.make streams 0 in
  let filled = ref 0 in
  let vpn = ref 0x10_0000L in
  let guard = ref 0 in
  while !filled < streams do
    incr guard;
    if !guard > 50_000_000 then
      failwith "Numa_sim.build_pools: key-pool scan did not converge";
    let s = Replicated.bucket_of repl ~vpn:!vpn mod streams in
    if fill.(s) < vpns_per_stream then begin
      pools.(s).(fill.(s)) <- !vpn;
      fill.(s) <- fill.(s) + 1;
      if fill.(s) = vpns_per_stream then incr filled
    end;
    vpn := Int64.add !vpn 1L
  done;
  pools

(* identity placement folded into the PTE's 28-bit PPN field *)
let ppn_for vpn = Int64.logand vpn 0xFFF_FFFFL

(* --- one (org, mode, nodes) run --- *)

let iter_streams ~streams ~domains index f =
  let s = ref index in
  while !s < streams do
    f !s;
    s := !s + domains
  done

let lock_code = function
  | Service.Global -> Obs.Recorder.l_global
  | Service.Striped -> Obs.Recorder.l_striped
  | Service.Seqlock -> Obs.Recorder.l_seqlock

let run_one cfg ~org ~mode ~nodes =
  let machine =
    Machine.make ~local_cost:cfg.local_cost ~remote_cost:cfg.remote_cost
      ~nodes ()
  in
  let repl =
    Replicated.create ~buckets:cfg.buckets ~machine ~org ~locking:cfg.locking
      ~mode ()
  in
  let streams = nodes * cfg.streams_per_node in
  let pools = build_pools repl ~streams ~vpns_per_stream:cfg.vpns_per_stream in
  let node_of s = s mod nodes in
  (* fault keys: one ordinal space per stream, wide enough for every
     phase of every round *)
  let key_budget =
    cfg.vpns_per_stream
    + (cfg.rounds * (cfg.writes_per_stream + cfg.reads_per_stream))
    + 16
  in
  let cursors = Array.make streams 0 in
  let op_key s =
    let k = (s * key_budget) + cursors.(s) in
    cursors.(s) <- cursors.(s) + 1;
    k
  in
  let hits = Array.make streams 0 in
  (* flight-recorder events: stream-owned rings, asid = the stream's
     node, fault = the armed-site bitmask for the op's context *)
  let lock = lock_code cfg.locking in
  let rec_op ~s ~kind ~node ~vpn ~lat =
    Obs.Recorder.record ~stream:s ~kind ~asid:node ~vpn:(Int64.to_int vpn)
      ~pages:1 ~lock ~attempt:0 ~fault:(Pt_service.Faultsim.armed_mask ())
      ~lat
  in
  let prepopulate s =
    let node = node_of s in
    let pool = pools.(s) in
    let i = ref 0 in
    while !i < cfg.vpns_per_stream do
      let vpn = pool.(!i) in
      Fault.set_context ~key:(op_key s);
      rec_op ~s ~kind:Obs.Recorder.k_insert ~node ~vpn ~lat:0;
      Replicated.insert ~node repl ~vpn ~ppn:(ppn_for vpn)
        ~attr:Pte.Attr.default;
      i := !i + 2
    done;
    Fault.clear_context ()
  in
  let write_phase round s =
    let rng = Random.State.make [| cfg.seed; s; round; 0x57 |] in
    let node = node_of s in
    let pool = pools.(s) in
    for _ = 1 to cfg.writes_per_stream do
      let vpn = pool.(Random.State.int rng cfg.vpns_per_stream) in
      let r = Random.State.int rng 100 in
      Fault.set_context ~key:(op_key s);
      if r < 50 then begin
        rec_op ~s ~kind:Obs.Recorder.k_insert ~node ~vpn ~lat:0;
        Replicated.insert ~node repl ~vpn ~ppn:(ppn_for vpn)
          ~attr:Pte.Attr.default
      end
      else if r < 80 then begin
        rec_op ~s ~kind:Obs.Recorder.k_remove ~node ~vpn ~lat:0;
        Replicated.remove ~node repl ~vpn
      end
      else begin
        rec_op ~s ~kind:Obs.Recorder.k_protect ~node ~vpn ~lat:0;
        Replicated.protect_page ~node repl ~vpn ~writable:(r land 1 = 0)
      end
    done;
    Fault.clear_context ()
  in
  let read_phase round s =
    let rng = Random.State.make [| cfg.seed; s; round; 0x52 |] in
    let node = node_of s in
    let pool = pools.(s) in
    let counter = Mem.Cache_model.create_counter () in
    let acc = Mem.Walk_acc.create () in
    let h = ref 0 in
    for _ = 1 to cfg.reads_per_stream do
      let vpn = pool.(Random.State.int rng cfg.vpns_per_stream) in
      Fault.set_context ~key:(op_key s);
      let hit = Replicated.lookup_into repl counter acc ~node ~vpn in
      rec_op ~s ~kind:Obs.Recorder.k_lookup ~node ~vpn
        ~lat:(if hit then 1 else 0);
      if hit then Stdlib.incr h
    done;
    Fault.clear_context ();
    hits.(s) <- hits.(s) + !h
  in
  let stale_pairs = ref 0 in
  let series_label =
    Printf.sprintf "numa:%d/%s/%s" nodes
      (Replicated.mode_name mode)
      (Service.org_name org)
  in
  let phases pool =
    Exec.Worker_pool.run pool (fun index ->
        iter_streams ~streams ~domains:cfg.domains index prepopulate);
    Replicated.sync repl;
    Replicated.reset_stats repl;
    let prev = ref (Replicated.stats repl) in
    for round = 0 to cfg.rounds - 1 do
      Exec.Worker_pool.run pool (fun index ->
          iter_streams ~streams ~domains:cfg.domains index (write_phase round));
      let stale_now = Replicated.stale_buckets repl in
      stale_pairs := !stale_pairs + stale_now;
      Exec.Worker_pool.run pool (fun index ->
          iter_streams ~streams ~domains:cfg.domains index (read_phase round));
      (* workers parked: the round's stat deltas are barrier-stable *)
      let s = Replicated.stats repl in
      let p = !prev in
      Obs.Series.push ~label:series_label ~index:round
        [
          ("numa.lookups", s.Replicated.lookups - p.Replicated.lookups);
          ("numa.local_lines", s.Replicated.local_lines - p.Replicated.local_lines);
          ("numa.remote_lines", s.Replicated.remote_lines - p.Replicated.remote_lines);
          ("numa.logical_writes", s.Replicated.logical_writes - p.Replicated.logical_writes);
          ("numa.replica_writes", s.Replicated.replica_writes - p.Replicated.replica_writes);
          ("numa.catchups", s.Replicated.catchups - p.Replicated.catchups);
          ("numa.stale_pairs", stale_now);
        ];
      prev := s
    done
  in
  let body () =
    Exec.Worker_pool.with_pool
      ~epochs:(Replicated.reader_epochs repl)
      ~domains:cfg.domains phases
  in
  (if cfg.fault_rate_ppm > 0 then
     Fault.with_plan
       (Fault.plan ~rate_ppm:cfg.fault_rate_ppm ~sites:cfg.fault_sites
          ~seed:cfg.seed ())
       body
   else body ());
  (* Fault.install zeroes the tallies, so the count after the run is
     this row's own; without a plan the stale global total is not ours *)
  let injected =
    if cfg.fault_rate_ppm > 0 then Fault.injected Fault.Replica_write else 0
  in
  Replicated.quiesce repl;
  let s = Replicated.stats repl in
  Replicated.stats_to_metrics repl;
  let report = Replicated.fsck repl in
  {
    r_nodes = nodes;
    r_mode = mode;
    r_org = org;
    r_locking = cfg.locking;
    r_streams = streams;
    r_rounds = cfg.rounds;
    r_lookups = s.Replicated.lookups;
    r_hits = Array.fold_left ( + ) 0 hits;
    r_local_lines = s.Replicated.local_lines;
    r_remote_lines = s.Replicated.remote_lines;
    r_logical_writes = s.Replicated.logical_writes;
    r_replica_writes = s.Replicated.replica_writes;
    r_eager_skips = s.Replicated.eager_skips;
    r_catchups = s.Replicated.catchups;
    r_replayed_ops = s.Replicated.replayed_ops;
    r_max_catchup_pending = s.Replicated.max_catchup_pending;
    r_stale_pairs = !stale_pairs;
    r_sync_replayed = s.Replicated.sync_replayed;
    r_injected = injected;
    r_population = Replicated.population repl;
    r_fsck_clean = Fsck.clean report;
  }

(* --- the per-address-space policy experiment ---

   Sequential by construction (placement decisions, not scaling, are
   under test), so it is trivially domain-count invariant.  Spaces
   cycle through two profiles: read-mostly (reads from every node,
   writes rare) and write-heavy (traffic dominated by one node).  Each
   space's op sequence is generated once and replayed three times: a
   profiling round on a single home to collect the policy's input
   counters, a baseline round (everything homed on node 0), and a
   placed round under the policy's decision. *)

type space_op = P_read of { node : int; idx : int } | P_write of { idx : int }

type policy_row = {
  p_org : Service.org;
  p_nodes : int;
  p_spaces : int;
  p_replicated : int;
  p_homed : int;
  p_baseline_remote_lines : int;
  p_policy_remote_lines : int;
  p_baseline_replica_writes : int;
  p_policy_replica_writes : int;
}

let remote_reduction_pct p =
  if p.p_baseline_remote_lines = 0 then 0.
  else
    100.
    *. float_of_int (p.p_baseline_remote_lines - p.p_policy_remote_lines)
    /. float_of_int p.p_baseline_remote_lines

let policy_pool_vpns = 192

let policy_buckets = 512

(* space [i]'s op sequence: a pure function of (seed, org-independent
   ints), shared by all three replays *)
let space_ops cfg ~nodes ~space =
  let read_mostly = space mod 3 < 2 in
  let dominant = space mod nodes in
  let rng = Random.State.make [| cfg.seed; space; 0x90 |] in
  let ops = ref [] in
  let n_reads = if read_mostly then cfg.policy_reads else cfg.policy_reads / 4
  and n_writes =
    if read_mostly then max 1 (cfg.policy_writes / 8) else cfg.policy_writes
  in
  for _ = 1 to n_reads do
    let node =
      if read_mostly then Random.State.int rng nodes
      else if Random.State.int rng 10 < 8 then dominant
      else Random.State.int rng nodes
    in
    ops := P_read { node; idx = Random.State.int rng policy_pool_vpns } :: !ops
  done;
  for _ = 1 to n_writes do
    ops := P_write { idx = Random.State.int rng policy_pool_vpns } :: !ops
  done;
  (* interleave deterministically: shuffle by sort over a hash of the
     position, keeping the generator order as tiebreak *)
  let arr = Array.of_list (List.rev !ops) in
  let keyed =
    Array.mapi
      (fun i op ->
        (Addr.Bits.mix64 (Int64.of_int ((cfg.seed * 1_000_003) + i)), i, op))
      arr
  in
  Array.sort compare keyed;
  (Array.map (fun (_, _, op) -> op) keyed, dominant)

let replay_space repl ~home_node ~space ops =
  (* pool vpns are private to the space: fold the space id in *)
  let vpn_of idx =
    Int64.add 0x20_0000L (Int64.of_int ((space * 4096) + idx))
  in
  for idx = 0 to policy_pool_vpns - 1 do
    Replicated.insert ~node:home_node repl ~vpn:(vpn_of idx)
      ~ppn:(ppn_for (vpn_of idx)) ~attr:Pte.Attr.default
  done;
  Replicated.sync repl;
  Replicated.reset_stats repl;
  let counter = Mem.Cache_model.create_counter () in
  let acc = Mem.Walk_acc.create () in
  Array.iter
    (fun op ->
      match op with
      | P_read { node; idx } ->
          ignore
            (Replicated.lookup_into repl counter acc ~node ~vpn:(vpn_of idx))
      | P_write { idx } ->
          Replicated.insert ~node:home_node repl ~vpn:(vpn_of idx)
            ~ppn:(ppn_for (vpn_of idx)) ~attr:Pte.Attr.default)
    ops;
  Replicated.quiesce repl;
  Replicated.stats repl

let run_policy cfg ~org ~nodes =
  let machine =
    Machine.make ~local_cost:cfg.local_cost ~remote_cost:cfg.remote_cost
      ~nodes ()
  in
  let fresh ?home mode =
    Replicated.create ~buckets:policy_buckets ?home ~machine ~org
      ~locking:cfg.locking ~mode ()
  in
  let replicated = ref 0 in
  let homed = ref 0 in
  let base_remote = ref 0 in
  let base_writes = ref 0 in
  let pol_remote = ref 0 in
  let pol_writes = ref 0 in
  for space = 0 to cfg.policy_spaces - 1 do
    let ops, dominant = space_ops cfg ~nodes ~space in
    (* profile on a single home at the dominant node (where the OS
       would have first-touched it) *)
    let profile =
      replay_space (fresh ~home:dominant Replicated.Single_home)
        ~home_node:dominant ~space ops
    in
    let decision =
      Policy.decide machine
        ~reads_per_node:profile.Replicated.reads_per_node
        ~writes:profile.Replicated.logical_writes
    in
    (* policy input counters, surfaced through the Obs registry *)
    let m = Obs.Ambient.get () in
    Obs.Metrics.add
      (Obs.Metrics.counter m "numa.policy.profile_reads")
      profile.Replicated.lookups;
    Obs.Metrics.add
      (Obs.Metrics.counter m "numa.policy.profile_writes")
      profile.Replicated.logical_writes;
    (* baseline: everything homed on node 0 *)
    let base =
      replay_space (fresh Replicated.Single_home) ~home_node:0 ~space ops
    in
    base_remote := !base_remote + base.Replicated.remote_lines;
    base_writes := !base_writes + base.Replicated.replica_writes;
    (* placed per the decision *)
    let placed =
      match decision with
      | Policy.Replicate ->
          Stdlib.incr replicated;
          Obs.Metrics.incr (Obs.Metrics.counter m "numa.policy.replicated");
          replay_space (fresh Replicated.Lazy) ~home_node:dominant ~space ops
      | Policy.Home n ->
          Stdlib.incr homed;
          Obs.Metrics.incr (Obs.Metrics.counter m "numa.policy.homed");
          replay_space (fresh ~home:n Replicated.Single_home) ~home_node:n
            ~space ops
    in
    pol_remote := !pol_remote + placed.Replicated.remote_lines;
    pol_writes := !pol_writes + placed.Replicated.replica_writes
  done;
  {
    p_org = org;
    p_nodes = nodes;
    p_spaces = cfg.policy_spaces;
    p_replicated = !replicated;
    p_homed = !homed;
    p_baseline_remote_lines = !base_remote;
    p_policy_remote_lines = !pol_remote;
    p_baseline_replica_writes = !base_writes;
    p_policy_replica_writes = !pol_writes;
  }

(* --- the full matrix --- *)

type outcome = { rows : row list; policy : policy_row list }

let run cfg =
  if cfg.domains < 1 then invalid_arg "Numa_sim.run: domains must be >= 1";
  if cfg.node_counts = [] then
    invalid_arg "Numa_sim.run: need at least one node count";
  let max_streams =
    List.fold_left (fun acc n -> max acc (n * cfg.streams_per_node)) 1
      cfg.node_counts
  in
  Obs.Recorder.arm ~streams:max_streams ~capacity:512;
  let rows =
    List.concat_map
      (fun nodes ->
        List.concat_map
          (fun org ->
            List.map
              (fun mode -> run_one cfg ~org ~mode ~nodes)
              cfg.modes)
          cfg.orgs)
      cfg.node_counts
  in
  let policy =
    List.concat_map
      (fun nodes ->
        List.map (fun org -> run_policy cfg ~org ~nodes) cfg.orgs)
      cfg.node_counts
  in
  { rows; policy }

(* --- rendering --- *)

let row_to_json r =
  Printf.sprintf
    "{\"nodes\":%d,\"mode\":\"%s\",\"org\":\"%s\",\"locking\":\"%s\",\
     \"streams\":%d,\"rounds\":%d,\"lookups\":%d,\"hits\":%d,\
     \"local_lines\":%d,\"remote_lines\":%d,\
     \"local_lines_per_miss\":%.4f,\"remote_lines_per_miss\":%.4f,\
     \"logical_writes\":%d,\"replica_writes\":%d,\
     \"write_amplification\":%.4f,\"eager_skips\":%d,\"catchups\":%d,\
     \"replayed_ops\":%d,\"max_catchup_pending\":%d,\"stale_pairs\":%d,\
     \"sync_replayed\":%d,\"injected\":%d,\"population\":%d,\
     \"fsck_clean\":%b}"
    r.r_nodes
    (Replicated.mode_name r.r_mode)
    (Service.org_name r.r_org)
    (Service.locking_name r.r_locking)
    r.r_streams r.r_rounds r.r_lookups r.r_hits r.r_local_lines
    r.r_remote_lines
    (lines_per_miss r.r_local_lines r.r_lookups)
    (lines_per_miss r.r_remote_lines r.r_lookups)
    r.r_logical_writes r.r_replica_writes (write_amplification r)
    r.r_eager_skips r.r_catchups r.r_replayed_ops r.r_max_catchup_pending
    r.r_stale_pairs r.r_sync_replayed r.r_injected r.r_population
    r.r_fsck_clean

let policy_row_to_json p =
  Printf.sprintf
    "{\"org\":\"%s\",\"nodes\":%d,\"spaces\":%d,\"replicated\":%d,\
     \"homed\":%d,\"baseline_remote_lines\":%d,\"policy_remote_lines\":%d,\
     \"remote_reduction_pct\":%.2f,\"baseline_replica_writes\":%d,\
     \"policy_replica_writes\":%d}"
    (Service.org_name p.p_org)
    p.p_nodes p.p_spaces p.p_replicated p.p_homed p.p_baseline_remote_lines
    p.p_policy_remote_lines (remote_reduction_pct p)
    p.p_baseline_replica_writes p.p_policy_replica_writes

(* The JSON deliberately omits the domain count: outputs must be
   byte-identical for any --domains (CI diffs them). *)
let outcome_to_json cfg o =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema_version\":1,\"experiment\":\"numa\",\"seed\":%d,\
        \"locking\":\"%s\",\"fault_rate_ppm\":%d,\"rows\":["
       cfg.seed
       (Service.locking_name cfg.locking)
       cfg.fault_rate_ppm);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (row_to_json r))
    o.rows;
  Buffer.add_string b "],\"policy\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (policy_row_to_json p))
    o.policy;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_outcome ppf o =
  Format.fprintf ppf
    "%-5s %-11s %-9s %8s %9s %9s %7s %8s %9s %6s@."
    "nodes" "mode" "org" "lookups" "loc/miss" "rem/miss" "w-amp"
    "catchups" "stale" "fsck";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-5d %-11s %-9s %8d %9.4f %9.4f %7.3f %8d %9d %6s@."
        r.r_nodes
        (Replicated.mode_name r.r_mode)
        (Service.org_name r.r_org)
        r.r_lookups
        (lines_per_miss r.r_local_lines r.r_lookups)
        (lines_per_miss r.r_remote_lines r.r_lookups)
        (write_amplification r) r.r_catchups r.r_stale_pairs
        (if r.r_fsck_clean then "clean" else "DIRTY"))
    o.rows;
  List.iter
    (fun p ->
      Format.fprintf ppf
        "policy %-9s nodes=%d spaces=%d replicated=%d homed=%d \
         remote lines %d -> %d (-%.1f%%)@."
        (Service.org_name p.p_org)
        p.p_nodes p.p_spaces p.p_replicated p.p_homed
        p.p_baseline_remote_lines p.p_policy_remote_lines
        (remote_reduction_pct p))
    o.policy

let all_clean o = List.for_all (fun r -> r.r_fsck_clean) o.rows
