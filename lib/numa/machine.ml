(* A modeled multi-socket machine.

   N nodes, each with its own physical memory.  The only property the
   page-table experiments need from it is the asymmetry Mitosis
   (arXiv:1910.05398) measures: a cache line of a page-table walk costs
   more to fetch from a remote node's memory than from the local one.
   Costs are small integers in "local line units" so every derived
   figure stays exact and bit-identical across runs. *)

type t = { nodes : int; local_cost : int; remote_cost : int }

let make ?(local_cost = 1) ?(remote_cost = 4) ~nodes () =
  if nodes < 1 then invalid_arg "Machine.make: nodes must be >= 1";
  if local_cost < 1 then invalid_arg "Machine.make: local_cost must be >= 1";
  if remote_cost < local_cost then
    invalid_arg "Machine.make: remote_cost must be >= local_cost";
  { nodes; local_cost; remote_cost }

let nodes t = t.nodes

let local_cost t = t.local_cost

let remote_cost t = t.remote_cost

let check_node t n ~what =
  if n < 0 || n >= t.nodes then
    invalid_arg (Printf.sprintf "Machine: %s node %d out of [0, %d)" what n t.nodes)

let is_local t ~reader ~home =
  check_node t reader ~what:"reader";
  check_node t home ~what:"home";
  reader = home

let line_cost t ~reader ~home =
  if is_local t ~reader ~home then t.local_cost else t.remote_cost

let walk_cost t ~reader ~home ~lines =
  if lines < 0 then invalid_arg "Machine.walk_cost: lines must be >= 0";
  lines * line_cost t ~reader ~home
