(* A NUMA-replicated page-table service.

   One logical hashed/clustered table, one full {!Pt_service.Service}
   replica per node.  Reads walk the replica of the reader's node —
   with [Seqlock] locking that walk is lock-free, and each replica owns
   its own epoch-reclamation domain — so the read-mostly traffic the
   paper's clustered table is built for touches only local lines.

   Writes go through the primary (replica 0) first, then fan out:

   - [Single_home]: no fan-out; one replica serves every node (the
     baseline the replication is measured against, at any home node).
   - [Eager]: the write applies to every replica before returning,
     under each replica's own stripe write lock; the per-bucket
     coordination mutex serializes writers of a bucket across the
     replica set so all replicas see one bucket-order.
   - [Lazy]: only the primary is written; the op is journaled under a
     bumped per-bucket generation ({!Clustered_pt.Generation}), and a
     reader that finds its replica's applied generation trailing pulls
     the pending journal suffix into its replica first (pull-on-read
     catch-up, numaPTE-style).

   An [Eager] fan-out write can be dropped by an injected
   [Fault.Replica_write]; the bucket then *degrades to lazy* on that
   replica — its applied generation stops advancing, later eager
   writes to the bucket skip it (applying them out of order would fork
   history), and the same pull-on-read catch-up heals it.  Catch-up
   replay runs under [Fault.suspended]: healing never injects.

   Determinism: the journal, generations and applied marks of a bucket
   are only touched under that bucket's mutex, so per-bucket histories
   are totally ordered; all cross-bucket stats kept here are sums of
   per-op contributions that do not depend on interleaving. *)

module G = Clustered_pt.Generation
module Service = Pt_service.Service

type mode = Single_home | Eager | Lazy

let mode_name = function
  | Single_home -> "single_home"
  | Eager -> "eager"
  | Lazy -> "lazy"

let mode_of_name = function
  | "single_home" -> Some Single_home
  | "eager" -> Some Eager
  | "lazy" -> Some Lazy
  | _ -> None

type op =
  | O_insert of { vpn : int64; ppn : int64; attr : Pte.Attr.t }
  | O_remove of { vpn : int64 }
  | O_protect of { vpn : int64; writable : bool }

let op_vpn = function
  | O_insert { vpn; _ } | O_remove { vpn } | O_protect { vpn; _ } -> vpn

type t = {
  machine : Machine.t;
  mode : mode;
  home : int;  (* the single replica's node in Single_home mode *)
  replicas : Service.t array;  (* replica r is homed on node r *)
  buckets : int;
  gens : G.t;  (* current write generation per bucket (primary) *)
  applied : G.t array;  (* per replica: generation applied up to *)
  mutable journal : (int * op) list array;  (* newest first, per bucket *)
  jmx : Mutex.t array;  (* per-bucket coordination mutex *)
  (* stats — atomics so concurrent streams tally without locks *)
  s_lookups : int Atomic.t;
  s_hits : int Atomic.t;
  s_local_lines : int Atomic.t;
  s_remote_lines : int Atomic.t;
  s_reads_per_node : int Atomic.t array;  (* length = machine nodes *)
  s_logical_writes : int Atomic.t;
  s_replica_writes : int Atomic.t;
  s_eager_skips : int Atomic.t;
  s_catchups : int Atomic.t;
  s_replayed : int Atomic.t;
  s_max_pending : int Atomic.t;
  s_sync_replayed : int Atomic.t;
}

let create ?(buckets = 4096) ?subblock_factor ?(home = 0) ~machine ~org
    ~locking ~mode () =
  let nodes = Machine.nodes machine in
  if home < 0 || home >= nodes then
    invalid_arg "Replicated.create: home node out of range";
  if mode <> Single_home && home <> 0 then
    invalid_arg "Replicated.create: ?home applies to Single_home only";
  let replica_count = match mode with Single_home -> 1 | _ -> nodes in
  let replicas =
    Array.init replica_count (fun _ ->
        Service.create ~buckets ?subblock_factor ~org ~locking ())
  in
  {
    machine;
    mode;
    home;
    replicas;
    buckets;
    gens = G.create ~buckets;
    applied = Array.init replica_count (fun _ -> G.create ~buckets);
    journal = Array.make buckets [];
    jmx = Array.init buckets (fun _ -> Mutex.create ());
    s_lookups = Atomic.make 0;
    s_hits = Atomic.make 0;
    s_local_lines = Atomic.make 0;
    s_remote_lines = Atomic.make 0;
    s_reads_per_node = Array.init nodes (fun _ -> Atomic.make 0);
    s_logical_writes = Atomic.make 0;
    s_replica_writes = Atomic.make 0;
    s_eager_skips = Atomic.make 0;
    s_catchups = Atomic.make 0;
    s_replayed = Atomic.make 0;
    s_max_pending = Atomic.make 0;
    s_sync_replayed = Atomic.make 0;
  }

let machine t = t.machine

let mode t = t.mode

let nodes t = Machine.nodes t.machine

let org t = Service.org t.replicas.(0)

let locking t = Service.locking t.replicas.(0)

let replica_count t = Array.length t.replicas

let population t = Service.population t.replicas.(0)

let bucket_of t ~vpn = Service.bucket_of t.replicas.(0) ~vpn

(* the node whose memory serves reads issued on [node] *)
let home_of t ~node = match t.mode with Single_home -> t.home | _ -> node

let incr a = ignore (Atomic.fetch_and_add a 1)

let add a k = ignore (Atomic.fetch_and_add a k)

let max_update a v =
  let rec go () =
    let cur = Atomic.get a in
    if v <= cur then ()
    else if Atomic.compare_and_set a cur v then ()
    else go ()
  in
  go ()

let apply_op svc = function
  | O_insert { vpn; ppn; attr } -> Service.insert svc ~vpn ~ppn ~attr
  | O_remove { vpn } -> Service.remove svc ~vpn
  | O_protect { vpn; writable } ->
      ignore
        (Service.protect svc (Addr.Region.make ~first_vpn:vpn ~pages:1)
           ~writable)

(* Under jmx.(bucket).  Drop journal entries every replica has
   applied: the suffix above [min applied] is all catch-up can ever
   need. *)
let prune t ~bucket =
  let floor = ref max_int in
  Array.iter
    (fun a -> floor := min !floor (G.get a ~bucket))
    t.applied;
  t.journal.(bucket) <-
    List.filter (fun (g, _) -> g > !floor) t.journal.(bucket)

(* Under jmx.(bucket): replay the pending suffix oldest-first into
   replica [r].  Recovery must not inject new faults, so replay runs
   suspended. *)
let catch_up_locked t ~r ~bucket ~sync =
  let a = G.get t.applied.(r) ~bucket in
  let g = G.get t.gens ~bucket in
  if a < g then begin
    let pending = List.filter (fun (gg, _) -> gg > a) t.journal.(bucket) in
    let n = List.length pending in
    Fault.suspended (fun () ->
        List.iter (fun (_, op) -> apply_op t.replicas.(r) op) (List.rev pending));
    G.set_at_least t.applied.(r) ~bucket g;
    add t.s_replica_writes n;
    if sync then add t.s_sync_replayed n
    else begin
      incr t.s_catchups;
      add t.s_replayed n;
      max_update t.s_max_pending n
    end;
    prune t ~bucket
  end

let catch_up t ~r ~bucket ~sync =
  Mutex.lock t.jmx.(bucket);
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.jmx.(bucket))
    (fun () -> catch_up_locked t ~r ~bucket ~sync)

let check_node t node ~what =
  if node < 0 || node >= nodes t then
    invalid_arg
      (Printf.sprintf "Replicated: %s node %d out of [0, %d)" what node
         (nodes t))

let write t ~node op =
  check_node t node ~what:"writer";
  incr t.s_logical_writes;
  match t.mode with
  | Single_home ->
      apply_op t.replicas.(0) op;
      incr t.s_replica_writes
  | Eager | Lazy ->
      let b = bucket_of t ~vpn:(op_vpn op) in
      Mutex.lock t.jmx.(b);
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.jmx.(b))
        (fun () ->
          apply_op t.replicas.(0) op;
          let g = G.bump t.gens ~bucket:b in
          G.set_at_least t.applied.(0) ~bucket:b g;
          t.journal.(b) <- (g, op) :: t.journal.(b);
          incr t.s_replica_writes;
          (if t.mode = Eager then
             for r = 1 to replica_count t - 1 do
               (* a replica whose bucket already trails stays lazy:
                  applying just this op would reorder its history *)
               if G.get t.applied.(r) ~bucket:b = g - 1 then begin
                 (* the attempt ordinal distinguishes the replicas of
                    one fan-out, so a plan can drop some and not
                    others — deterministically *)
                 let dropped =
                   Fault.active ()
                   && begin
                        Fault.set_attempt r;
                        let d = Fault.trip Fault.Replica_write in
                        Fault.set_attempt 0;
                        d
                      end
                 in
                 if dropped then incr t.s_eager_skips
                 else begin
                   apply_op t.replicas.(r) op;
                   G.set_at_least t.applied.(r) ~bucket:b g;
                   incr t.s_replica_writes
                 end
               end
               else incr t.s_eager_skips
             done);
          prune t ~bucket:b)

let insert ?(node = 0) t ~vpn ~ppn ~attr =
  write t ~node (O_insert { vpn; ppn; attr })

let remove ?(node = 0) t ~vpn = write t ~node (O_remove { vpn })

let protect_page ?(node = 0) t ~vpn ~writable =
  write t ~node (O_protect { vpn; writable })

let lookup_into t counter acc ~node ~vpn =
  check_node t node ~what:"reader";
  let r = match t.mode with Single_home -> 0 | _ -> node in
  (if t.mode <> Single_home && r > 0 then begin
     let b = bucket_of t ~vpn in
     if G.get t.applied.(r) ~bucket:b < G.get t.gens ~bucket:b then
       catch_up t ~r ~bucket:b ~sync:false
   end);
  Mem.Walk_acc.reset acc;
  let hit = Service.lookup_into t.replicas.(r) acc ~vpn in
  let lines = Mem.Cache_model.record_acc counter acc in
  let home = home_of t ~node in
  if Machine.is_local t.machine ~reader:node ~home then
    add t.s_local_lines lines
  else add t.s_remote_lines lines;
  incr t.s_lookups;
  incr t.s_reads_per_node.(node);
  if hit then incr t.s_hits;
  hit

let scratch_key =
  Domain.DLS.new_key (fun () ->
      (Mem.Cache_model.create_counter (), Mem.Walk_acc.create ()))

let lookup t ~node ~vpn =
  let counter, acc = Domain.DLS.get scratch_key in
  lookup_into t counter acc ~node ~vpn

(* stale (replica, bucket) pairs right now — the lazy-staleness probe
   the driver samples between phases *)
let stale_buckets t =
  let stale = ref 0 in
  for r = 1 to replica_count t - 1 do
    for b = 0 to t.buckets - 1 do
      if G.get t.applied.(r) ~bucket:b < G.get t.gens ~bucket:b then
        Stdlib.incr stale
    done
  done;
  !stale

(* pending journaled ops not yet applied somewhere *)
let pending_ops t =
  let pending = ref 0 in
  for r = 1 to replica_count t - 1 do
    for b = 0 to t.buckets - 1 do
      let a = G.get t.applied.(r) ~bucket:b in
      List.iter
        (fun (g, _) -> if g > a then Stdlib.incr pending)
        t.journal.(b)
    done
  done;
  !pending

let sync t =
  for r = 1 to replica_count t - 1 do
    for b = 0 to t.buckets - 1 do
      if G.get t.applied.(r) ~bucket:b < G.get t.gens ~bucket:b then
        catch_up t ~r ~bucket:b ~sync:true
    done
  done

let reader_epochs t =
  Array.to_list t.replicas
  |> List.filter_map Service.reader_epoch

let quiesce t =
  sync t;
  Array.iter Service.quiesce t.replicas

type stats = {
  lookups : int;
  hits : int;
  local_lines : int;
  remote_lines : int;
  reads_per_node : int array;
  logical_writes : int;
  replica_writes : int;
  eager_skips : int;
  catchups : int;
  replayed_ops : int;
  max_catchup_pending : int;
  sync_replayed : int;
}

let stats t =
  {
    lookups = Atomic.get t.s_lookups;
    hits = Atomic.get t.s_hits;
    local_lines = Atomic.get t.s_local_lines;
    remote_lines = Atomic.get t.s_remote_lines;
    reads_per_node = Array.map Atomic.get t.s_reads_per_node;
    logical_writes = Atomic.get t.s_logical_writes;
    replica_writes = Atomic.get t.s_replica_writes;
    eager_skips = Atomic.get t.s_eager_skips;
    catchups = Atomic.get t.s_catchups;
    replayed_ops = Atomic.get t.s_replayed;
    max_catchup_pending = Atomic.get t.s_max_pending;
    sync_replayed = Atomic.get t.s_sync_replayed;
  }

let reset_stats t =
  Atomic.set t.s_lookups 0;
  Atomic.set t.s_hits 0;
  Atomic.set t.s_local_lines 0;
  Atomic.set t.s_remote_lines 0;
  Array.iter (fun a -> Atomic.set a 0) t.s_reads_per_node;
  Atomic.set t.s_logical_writes 0;
  Atomic.set t.s_replica_writes 0;
  Atomic.set t.s_eager_skips 0;
  Atomic.set t.s_catchups 0;
  Atomic.set t.s_replayed 0;
  Atomic.set t.s_max_pending 0;
  Atomic.set t.s_sync_replayed 0

(* publish run totals into the calling domain's ambient shard — the
   driver calls this once at quiescence, so the merged registry stays
   interleaving-invariant whenever the totals are *)
let stats_to_metrics t =
  let s = stats t in
  let m = Obs.Ambient.get () in
  let put name v = Obs.Metrics.add (Obs.Metrics.counter m name) v in
  put "numa.lookups" s.lookups;
  put "numa.lookup_hits" s.hits;
  put "numa.local_lines" s.local_lines;
  put "numa.remote_lines" s.remote_lines;
  put "numa.logical_writes" s.logical_writes;
  put "numa.replica_writes" s.replica_writes;
  put "numa.eager_skips" s.eager_skips;
  put "numa.catchups" s.catchups;
  put "numa.replayed_ops" s.replayed_ops;
  put "numa.sync_replayed" s.sync_replayed;
  Obs.Hist.observe
    (Obs.Metrics.hist m "numa.catchup_pending")
    s.max_catchup_pending

(* --- integrity: per-replica structural fsck + cross-replica
       agreement --- *)

let fsck t =
  let tables = Array.map Service.fsck_table t.replicas in
  let structural = ref [] in
  Array.iteri
    (fun r tbl ->
      List.iter
        (fun (f : Fsck.finding) ->
          structural :=
            {
              f with
              Fsck.detail = Printf.sprintf "replica %d: %s" r f.Fsck.detail;
            }
            :: !structural)
        (Fsck.check tbl).Fsck.findings)
    tables;
  let agreement =
    Fsck.check_replicas ~generations:(Array.map G.snapshot t.applied) tables
  in
  {
    agreement with
    Fsck.findings = List.rev !structural @ agreement.Fsck.findings;
  }

let corruption_kinds =
  [ "replica_extra"; "replica_missing"; "replica_ppn"; "replica_generation" ]

(* Corrupt a non-primary replica directly, bypassing the fan-out — the
   no-false-negatives test proves {!fsck} sees every kind.  False when
   the configuration has no applicable site (a single replica, or no
   live mapping to damage). *)
let corrupt t kind =
  let last = replica_count t - 1 in
  if last = 0 then false
  else
    let victim = t.replicas.(last) in
    match kind with
    | "replica_extra" ->
        Service.insert victim ~vpn:0xDEAD_0000L ~ppn:0xDEADL
          ~attr:Pte.Attr.default;
        true
    | "replica_missing" -> (
        match Fsck.live_mappings (Service.fsck_table victim) with
        | [] -> false
        | (vpn, _, _) :: _ ->
            Service.remove victim ~vpn;
            true)
    | "replica_ppn" -> (
        match Fsck.live_mappings (Service.fsck_table victim) with
        | [] -> false
        | (vpn, ppn, attr) :: _ ->
            Service.remove victim ~vpn;
            Service.insert victim ~vpn ~ppn:(Int64.add ppn 1L) ~attr;
            true)
    | "replica_generation" ->
        G.set_at_least t.applied.(last) ~bucket:0
          (G.get t.gens ~bucket:0 + 7);
        true
    | _ -> false
