(** The [ptsim chaos] soak: a fleet of crash-consistent shards
    ({!Durable.Shard} — Service + per-shard WAL + checkpoints) driven
    by churning tenants while shards are killed on purpose — at
    planned WAL byte offsets (torn appends), through the random
    [Fault.Shard_crash] site, halfway through a checkpoint, and
    halfway through a recovery replay.

    A crashed shard is {e degraded}: tenant ops get a deterministic
    bounded retry then a typed rejection, and are parked.  After
    [recovery_delay] rounds the supervisor rebuilds the shard from its
    newest verifiable checkpoint plus the WAL suffix, audits the
    rebuilt table against the acknowledged-op oracle, re-admits
    tenants and replays the parked ops.  {!all_clean} demands every
    recovery converged, the final fleet is fsck- and placement-clean,
    and every shard is lookup-equivalent to a never-crashed oracle
    (the tenants' full-trace intent books).

    Deterministic: one worker stream per shard (tenant [asid] lives on
    stream [asid mod shards]), so each WAL's byte offsets — including
    the planned crash points — and the whole outcome are independent
    of [domains].  {!outcome_to_json} is byte-identical for any domain
    count and omits timing unless [~timing:true]. *)

module Service = Pt_service.Service

type config = {
  tenants : int;
  shards : int;  (** one durable shard = one WAL = one worker stream *)
  domains : int;
  rounds : int;
  ops_per_tenant : int;
  switch_every : int;
  checkpoint_every : int;  (** checkpoint cadence, in rounds *)
  crash_offsets : int list;
      (** planned absolute WAL crash offsets, dealt round-robin over
          shards; [] derives a schedule from the seed *)
  crash_recovery : bool;  (** also crash the first recovery mid-replay *)
  crash_checkpoint : bool;  (** also tear one checkpoint halfway *)
  recovery_delay : int;
      (** rounds a crashed shard stays degraded (rejecting tenant ops)
          before the supervisor rebuilds it *)
  retry_budget : int;  (** retries on a degraded shard before rejection *)
  orgs : Service.org list;
  locking : Service.locking;
  buckets : int;
  sites : Fault.site list;  (** random fault plan; [] = none *)
  rate_ppm : int;
  seed : int;
}

val default_config : config
(** 8 tenants over 4 shards, 4 rounds of 1.5k-op churn, checkpoint
    every round, a seed-derived planned crash per shard plus random
    [Shard_crash] at 2000 ppm, one crash-during-recovery and one
    crash-during-checkpoint, both orgs, striped locking, seed 42. *)

val quick_config : config
(** A CI-sized soak (6 tenants, 3 rounds, 800 ops). *)

exception Degraded of { shard : int }
(** The typed rejection tenants receive from a degraded shard once the
    retry budget is exhausted.  Internal to the soak (callers of
    {!run} never see it) — exposed for tests. *)

val planned_offsets : config -> int list
(** The planned crash schedule the run will use ([config.crash_offsets],
    or the seed-derived default when that is empty). *)

type row = {
  c_org : Service.org;
  c_locking : Service.locking;
  c_tenants : int;
  c_shards : int;
  c_rounds : int;
  c_events : int;
  c_mmaps : int;
  c_munmaps : int;
  c_protects : int;
  c_touches : int;
  c_touch_hits : int;
  c_touch_faults : int;
  c_pages_mapped : int;
  c_pages_unmapped : int;
  c_range_pages : int;
  c_crashes : int;  (** shard kills, all causes *)
  c_wal_records : int;
  c_wal_bytes : int;
  c_torn_truncations : int;
  c_truncated_bytes : int;
  c_checkpoints : int;
  c_torn_checkpoints : int;
  c_compactions : int;
  c_checkpoints_discarded : int;
  c_recovery_attempts : int;
  c_recoveries : int;
  c_recovery_crashes : int;
  c_replayed_records : int;
  c_restored_mappings : int;
  c_degraded_retries : int;
  c_degraded_rejections : int;
  c_pending_replayed : int;  (** parked ops replayed after recovery *)
  c_resident : int;
  c_population : int;
  c_limbo : int;
  c_fsck_clean : bool;
  c_placement_clean : bool;
  c_converged : bool;
      (** every post-recovery audit matched the acknowledged-op oracle *)
  c_equivalent : bool;
      (** final tables equal the never-crashed full-trace oracle *)
  c_elapsed_s : float;
  c_ops_per_sec : float;
}

type outcome = { rows : row list }

val run : config -> outcome
(** One seeded soak per org in [config.orgs].  Raises
    [Invalid_argument] on nonsensical configs (e.g. [domains < 1],
    [checkpoint_every < 1], negative crash offsets). *)

val all_clean : outcome -> bool
(** Every row fsck-clean, placement-clean, zero limbo, every recovery
    converged and every final table oracle-equivalent — the chaos
    gate. *)

val row_to_json : ?timing:bool -> row -> string

val outcome_to_json : ?timing:bool -> config -> outcome -> string
(** Deterministic for a config (byte-identical for any [domains],
    which is deliberately omitted); [~timing] adds wall-clock
    fields. *)

val pp_outcome : Format.formatter -> outcome -> unit
