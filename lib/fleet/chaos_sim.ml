(* The `ptsim chaos` driver: a seeded crash/recovery soak over a
   fleet of durable shards.

   Every shard is a {!Durable.Shard} — a Service fronted by a
   write-ahead log and periodic checkpoints — and the soak kills
   shards on purpose: at planned WAL byte offsets (a torn append),
   through the random [Fault.Shard_crash] site, halfway through a
   checkpoint, and halfway through a recovery replay.  The run passes
   only if every recovery converges: the rebuilt table must equal the
   acknowledged-operation oracle exactly, and the final fleet must be
   fsck-clean and lookup-equivalent to a run that never crashed.

   Determinism contract (byte-identical JSON for any --domains):

   - One stream per shard: tenant [asid] runs on stream
     [asid mod shards], so each shard's WAL is appended by exactly one
     worker at a time and its byte offsets — including the planned
     crash offsets — are interleaving-invariant.
   - Touch decisions read the tenant's own intent books (pure
     trace-replay state), never the shard, so the event interpretation
     and therefore the per-shard op sequence is crash-schedule- and
     domain-count-independent.
   - An op the shard could not take (torn mid-append, or rejected
     while degraded) is parked in submission order and replayed by the
     supervisor after recovery, so cursors always advance and the
     fleet converges on the full trace.
   - Crash handling, recovery, checkpoints and the convergence audit
     all run on the coordinating domain between rounds, with workers
     parked at the pool barrier.

   Outputs deliberately omit the domain count; timing fields appear
   only with [~timing:true] (the bench report). *)

module Service = Pt_service.Service
module Wal = Durable.Wal
module Shard = Durable.Shard

type config = {
  tenants : int;
  shards : int;  (** one durable shard = one WAL = one worker stream *)
  domains : int;
  rounds : int;
  ops_per_tenant : int;
  switch_every : int;
  checkpoint_every : int;  (** checkpoint cadence, in rounds *)
  crash_offsets : int list;
      (** planned absolute WAL crash offsets, dealt round-robin over
          shards; [] derives a schedule from the seed *)
  crash_recovery : bool;  (** also crash the first recovery mid-replay *)
  crash_checkpoint : bool;  (** also tear one checkpoint halfway *)
  recovery_delay : int;
      (** rounds a crashed shard stays degraded (rejecting tenant ops)
          before the supervisor rebuilds it *)
  retry_budget : int;  (** retries on a degraded shard before rejection *)
  orgs : Service.org list;
  locking : Service.locking;
  buckets : int;
  sites : Fault.site list;  (** random fault plan; [] = none *)
  rate_ppm : int;
  seed : int;
}

let default_config =
  {
    tenants = 8;
    shards = 4;
    domains = 1;
    rounds = 4;
    ops_per_tenant = 1_500;
    switch_every = 48;
    checkpoint_every = 1;
    crash_offsets = [];
    crash_recovery = true;
    crash_checkpoint = true;
    recovery_delay = 1;
    retry_budget = 3;
    orgs = [ Service.Clustered; Service.Hashed ];
    locking = Service.Striped;
    buckets = 4096;
    sites = [ Fault.Shard_crash ];
    rate_ppm = 2_000;
    seed = 42;
  }

let quick_config =
  { default_config with tenants = 6; rounds = 3; ops_per_tenant = 800 }

exception Degraded of { shard : int }

(* default schedule: one planned crash per shard (up to rounds - 1),
   each a little deeper into its log, landing mid-record so the tail
   really tears *)
let planned_offsets cfg =
  match cfg.crash_offsets with
  | [] ->
      let rb = Wal.record_bytes in
      List.init
        (max 1 (min cfg.shards (cfg.rounds - 1)))
        (fun i ->
          ((((i + 1) * 41) + (cfg.seed land 63)) * rb)
          + ((cfg.seed + (11 * i)) mod rb))
  | offs -> offs

let churn_spec cfg =
  {
    Dynamics.Churn.ops = cfg.ops_per_tenant;
    max_procs = 4;
    max_live_pages = 1_000;
    region_min = 4;
    region_max = 48;
    touch_burst = 12;
    drain = false;
  }

(* --- fleet key layout (same as Sharded) --- *)

let tag ~asid local =
  Int64.logor (Int64.shift_left (Int64.of_int asid) Sharded.asid_shift) local

let ppn_of vpn = Int64.logand vpn 0xFFF_FFFFL

let bump name = Obs.Metrics.incr (Obs.Ambient.counter name)

let lock_code = function
  | Service.Global -> Obs.Recorder.l_global
  | Service.Striped -> Obs.Recorder.l_striped
  | Service.Seqlock -> Obs.Recorder.l_seqlock

(* --- per-shard chaos state --- *)

type shard_state = {
  sx : int;
  ds : Shard.t;
  mutable status : int;  (* -1 active; >= 0 degraded, rebuild at 0 *)
  mutable pending : Wal.op list;  (* parked ops, newest first *)
  mutable planned : int list;  (* crash offsets not yet armed *)
  ack : (int64, bool) Hashtbl.t;  (* acknowledged: tagged vpn -> writable *)
  mutable crashes : int;
  mutable retries : int;
  mutable rejections : int;
  mutable pending_replayed : int;
  mutable converged : bool;
}

let op_asid : Wal.op -> int = function
  | Wal.Map { asid; _ } | Wal.Unmap { asid; _ } | Wal.Protect { asid; _ } ->
      asid

let ack_apply st (op : Wal.op) =
  match op with
  | Wal.Map { vpn; pages; _ } ->
      for i = 0 to pages - 1 do
        Hashtbl.replace st.ack (Int64.add vpn (Int64.of_int i)) true
      done
  | Wal.Unmap { vpn; pages; _ } ->
      for i = 0 to pages - 1 do
        Hashtbl.remove st.ack (Int64.add vpn (Int64.of_int i))
      done
  | Wal.Protect { vpn; pages; writable; _ } ->
      for i = 0 to pages - 1 do
        let k = Int64.add vpn (Int64.of_int i) in
        if Hashtbl.mem st.ack k then Hashtbl.replace st.ack k writable
      done

(* the rebuilt table must equal the acknowledged state, mapping for
   mapping — the crash-consistency oracle *)
let agrees st =
  let expected =
    Hashtbl.fold
      (fun vpn w acc ->
        (vpn, ppn_of vpn, { Pte.Attr.default with Pte.Attr.writable = w })
        :: acc)
      st.ack []
    |> List.sort (fun (a, _, _) (b, _, _) -> Int64.compare a b)
  in
  let actual = Shard.live st.ds in
  List.length actual = List.length expected
  && List.for_all2
       (fun (v1, p1, a1) (v2, p2, a2) ->
         Int64.equal v1 v2 && Int64.equal p1 p2 && Pte.Attr.equal a1 a2)
       actual expected

(* --- the write path seen by tenants --- *)

let backoff attempt =
  for _ = 1 to (attempt + 1) * 32 do
    Domain.cpu_relax ()
  done

let submit_guarded cfg st ~stream ~lock op =
  if st.status >= 0 then begin
    (* degraded: deterministic bounded retry, then a typed rejection —
       never a hang.  Recovery only runs at the round barrier, so the
       retries are doomed; they exist to bound the latency a real
       client would see. *)
    let attempt = ref 0 in
    while !attempt < cfg.retry_budget do
      st.retries <- st.retries + 1;
      bump "fleet.degraded_retries";
      Obs.Recorder.record ~stream ~kind:Obs.Recorder.k_retry ~asid:(op_asid op)
        ~vpn:0 ~pages:0 ~lock ~attempt:!attempt ~fault:0 ~lat:0;
      backoff !attempt;
      incr attempt
    done;
    st.rejections <- st.rejections + 1;
    bump "fleet.degraded_rejections";
    Obs.Recorder.record ~stream ~kind:Obs.Recorder.k_abort ~asid:(op_asid op)
      ~vpn:0 ~pages:0 ~lock ~attempt:cfg.retry_budget ~fault:0 ~lat:0;
    raise (Degraded { shard = st.sx })
  end;
  Shard.submit st.ds op

(* Submit one op; park it instead of losing it when the shard is down.
   [note_crash] is the stream's crash latch — the exception is
   re-raised at the end of the stream's job so the worker domain
   really dies and the pool's supervision respawns it. *)
let perform cfg st ~stream ~lock ~note_crash op =
  match submit_guarded cfg st ~stream ~lock op with
  | sections ->
      ack_apply st op;
      sections
  | exception Degraded _ ->
      st.pending <- op :: st.pending;
      0
  | exception (Fault.Injected { site = Fault.Shard_crash; key } as e) ->
      (* the shard died mid-append: the record tore, nothing applied,
         the op is parked for post-recovery replay *)
      st.crashes <- st.crashes + 1;
      bump "fleet.shard_crashes";
      Obs.Recorder.record ~stream ~kind:Obs.Recorder.k_crash
        ~asid:(op_asid op) ~vpn:key ~pages:0 ~lock ~attempt:0 ~fault:0 ~lat:0;
      st.status <- cfg.recovery_delay;
      st.pending <- op :: st.pending;
      note_crash e;
      0

(* --- supervision (coordinator, workers parked) --- *)

(* Supervisor-side catch-up replay.  Runs fault-suspended: the random
   [Shard_crash] site must not fire here (the coordinator's fault
   context is stale, so one unlucky decision would repeat forever) —
   planned WAL-offset crashes still do, straight out of [Wal.append]. *)
let drain cfg st ~lock =
  let rec go = function
    | [] -> ()
    | op :: rest -> (
        match Shard.submit st.ds op with
        | _sections ->
            ack_apply st op;
            st.pending_replayed <- st.pending_replayed + 1;
            bump "fleet.pending_replayed";
            go rest
        | exception Fault.Injected { site = Fault.Shard_crash; key } ->
            (* a planned offset landed inside the catch-up replay:
               back to degraded, the rest stays parked in order *)
            st.crashes <- st.crashes + 1;
            bump "fleet.shard_crashes";
            Obs.Recorder.record ~stream:st.sx ~kind:Obs.Recorder.k_crash
              ~asid:(op_asid op) ~vpn:key ~pages:0 ~lock ~attempt:0 ~fault:0
              ~lat:0;
            st.status <- cfg.recovery_delay;
            st.pending <- List.rev (op :: rest))
  in
  let ops = List.rev st.pending in
  st.pending <- [];
  Fault.suspended (fun () -> go ops)

let recover_and_drain cfg st ~lock ~recovery_crash_armed =
  if cfg.crash_recovery && !recovery_crash_armed then begin
    recovery_crash_armed := false;
    Shard.plan_recovery_crash st.ds ~after_records:3
  end;
  (try Shard.recover st.ds
   with Fault.Injected { site = Fault.Shard_crash; _ } ->
     (* died mid-replay; the journal is intact — go again, and this
        second recovery must converge *)
     Shard.recover st.ds);
  st.converged <- st.converged && agrees st;
  (* arm the shard's next planned crash, if any *)
  (match st.planned with
  | o :: rest ->
      Wal.plan_crash (Shard.wal st.ds) ~at:o;
      st.planned <- rest
  | [] -> ());
  st.status <- -1;
  (* re-admit tenants: replay the ops parked while the shard was down *)
  drain cfg st ~lock

let supervise cfg state ~lock ~recovery_crash_armed =
  Array.iter
    (fun st ->
      if st.status > 0 then st.status <- st.status - 1
      else if st.status = 0 then
        recover_and_drain cfg st ~lock ~recovery_crash_armed)
    state

let checkpoint_shards cfg state ~round ~lock ~ckpt_crash_armed =
  if (round + 1) mod cfg.checkpoint_every = 0 then
    Array.iter
      (fun st ->
        if st.status < 0 then begin
          if
            cfg.crash_checkpoint && !ckpt_crash_armed
            && round >= cfg.rounds / 2
            && st.sx = cfg.seed mod cfg.shards
          then begin
            ckpt_crash_armed := false;
            Shard.plan_checkpoint_crash st.ds
          end;
          try Shard.checkpoint st.ds
          with Fault.Injected { site = Fault.Shard_crash; key } ->
            st.crashes <- st.crashes + 1;
            bump "fleet.shard_crashes";
            Obs.Recorder.record ~stream:st.sx ~kind:Obs.Recorder.k_crash
              ~asid:0 ~vpn:key ~pages:0 ~lock ~attempt:0 ~fault:0 ~lat:0;
            st.status <- cfg.recovery_delay
        end)
      state

(* after the last round: rebuild whatever is still down and drain every
   parked op.  Terminates: each planned crash fires at most once. *)
let finalize cfg state ~lock ~recovery_crash_armed =
  while Array.exists (fun st -> st.status >= 0) state do
    Array.iter
      (fun st ->
        if st.status >= 0 then begin
          st.status <- 0;
          recover_and_drain cfg st ~lock ~recovery_crash_armed
        end)
      state
  done

(* --- rows --- *)

type row = {
  c_org : Service.org;
  c_locking : Service.locking;
  c_tenants : int;
  c_shards : int;
  c_rounds : int;
  c_events : int;
  c_mmaps : int;
  c_munmaps : int;
  c_protects : int;
  c_touches : int;
  c_touch_hits : int;
  c_touch_faults : int;
  c_pages_mapped : int;
  c_pages_unmapped : int;
  c_range_pages : int;
  c_crashes : int;
  c_wal_records : int;
  c_wal_bytes : int;
  c_torn_truncations : int;
  c_truncated_bytes : int;
  c_checkpoints : int;
  c_torn_checkpoints : int;
  c_compactions : int;
  c_checkpoints_discarded : int;
  c_recovery_attempts : int;
  c_recoveries : int;
  c_recovery_crashes : int;
  c_replayed_records : int;
  c_restored_mappings : int;
  c_degraded_retries : int;
  c_degraded_rejections : int;
  c_pending_replayed : int;
  c_resident : int;
  c_population : int;
  c_limbo : int;
  c_fsck_clean : bool;
  c_placement_clean : bool;
  c_converged : bool;
  c_equivalent : bool;
  (* timing: human/bench report only, never in the deterministic JSON *)
  c_elapsed_s : float;
  c_ops_per_sec : float;
}

(* --- one org run --- *)

let iter_streams ~streams ~domains index f =
  let s = ref index in
  while !s < streams do
    f !s;
    s := !s + domains
  done

let run_one cfg ~org =
  let lock = lock_code cfg.locking in
  let state =
    Array.init cfg.shards (fun sx ->
        {
          sx;
          ds =
            Shard.create ~buckets:cfg.buckets ~org ~locking:cfg.locking
              ~ppn_of ();
          status = -1;
          pending = [];
          planned = [];
          ack = Hashtbl.create 4096;
          crashes = 0;
          retries = 0;
          rejections = 0;
          pending_replayed = 0;
          converged = true;
        })
  in
  (* deal the planned crash offsets round-robin over shards and arm
     each shard's first *)
  List.iteri
    (fun i off ->
      let st = state.(i mod cfg.shards) in
      st.planned <- st.planned @ [ off ])
    (planned_offsets cfg);
  Array.iter
    (fun st ->
      match st.planned with
      | o :: rest ->
          Wal.plan_crash (Shard.wal st.ds) ~at:o;
          st.planned <- rest
      | [] -> ())
    state;
  let recovery_crash_armed = ref cfg.crash_recovery in
  let ckpt_crash_armed = ref cfg.crash_checkpoint in
  let traces =
    Array.init cfg.tenants (fun i ->
        Dynamics.Churn.generate ~spec:(churn_spec cfg)
          ~seed:(Int64.of_int (cfg.seed + (977 * i)))
          ())
  in
  let intents =
    Array.init cfg.tenants (fun _ -> (Hashtbl.create 1024 : (int64, bool) Hashtbl.t))
  in
  (* per-stream crash latch: the first crash the stream hits is
     re-raised at the end of its job so the worker really dies *)
  let crash_exns = Array.make cfg.shards None in
  let ops_for t =
    let asid = t + 1 in
    let s = asid mod cfg.shards in
    let st = state.(s) in
    let intent = intents.(t) in
    let note_crash e =
      if Option.is_none crash_exns.(s) then crash_exns.(s) <- Some e
    in
    let rec_range kind (r : Addr.Region.t) lat =
      Obs.Recorder.record ~stream:s ~kind ~asid
        ~vpn:(Int64.to_int r.Addr.Region.first_vpn)
        ~pages:r.Addr.Region.pages ~lock ~attempt:0 ~fault:0 ~lat
    in
    {
      Dynamics.Fleet_replay.map =
        (fun r ->
          Addr.Region.iter_vpns r (fun v -> Hashtbl.replace intent v true);
          let sections =
            perform cfg st ~stream:s ~lock ~note_crash
              (Wal.Map
                 {
                   asid;
                   vpn = tag ~asid r.Addr.Region.first_vpn;
                   pages = r.Addr.Region.pages;
                 })
          in
          rec_range Obs.Recorder.k_map r sections;
          sections);
      unmap =
        (fun r ->
          Addr.Region.iter_vpns r (fun v -> Hashtbl.remove intent v);
          let sections =
            perform cfg st ~stream:s ~lock ~note_crash
              (Wal.Unmap
                 {
                   asid;
                   vpn = tag ~asid r.Addr.Region.first_vpn;
                   pages = r.Addr.Region.pages;
                 })
          in
          rec_range Obs.Recorder.k_unmap r sections;
          sections);
      protect =
        (fun r ~writable ->
          Addr.Region.iter_vpns r (fun v ->
              if Hashtbl.mem intent v then Hashtbl.replace intent v writable);
          let sections =
            perform cfg st ~stream:s ~lock ~note_crash
              (Wal.Protect
                 {
                   asid;
                   vpn = tag ~asid r.Addr.Region.first_vpn;
                   pages = r.Addr.Region.pages;
                   writable;
                 })
          in
          rec_range Obs.Recorder.k_protect r sections;
          sections);
      touch =
        (fun local ->
          (* intent books, never the shard: touch decisions — and so
             the whole event interpretation — are crash-independent *)
          let hit = Hashtbl.mem intent local in
          Obs.Recorder.record ~stream:s ~kind:Obs.Recorder.k_touch ~asid
            ~vpn:(Int64.to_int local) ~pages:1 ~lock ~attempt:0 ~fault:0
            ~lat:(if hit then 0 else 1);
          hit);
    }
  in
  let cursors =
    Array.init cfg.tenants (fun t ->
        Dynamics.Fleet_replay.create (ops_for t) traces.(t))
  in
  let stream_tenants =
    Array.init cfg.shards (fun s ->
        List.filter
          (fun t -> (t + 1) mod cfg.shards = s)
          (List.init cfg.tenants Fun.id))
  in
  let target t round =
    Dynamics.Fleet_replay.length cursors.(t) * (round + 1) / cfg.rounds
  in
  let stream_job round index =
    let my_crash = ref None in
    iter_streams ~streams:cfg.shards ~domains:cfg.domains index (fun s ->
        let progressed = ref true in
        while !progressed do
          progressed := false;
          List.iter
            (fun t ->
              let cur = cursors.(t) in
              let left = target t round - Dynamics.Fleet_replay.consumed cur in
              if left > 0 then begin
                let quantum = min cfg.switch_every left in
                for _ = 1 to quantum do
                  Fault.set_context
                    ~key:
                      (((t + 1) * 1_048_576)
                      + Dynamics.Fleet_replay.consumed cur);
                  ignore (Dynamics.Fleet_replay.step cur ~max_events:1)
                done;
                Fault.clear_context ();
                if target t round - Dynamics.Fleet_replay.consumed cur > 0
                then progressed := true
              end)
            stream_tenants.(s)
        done;
        if Option.is_none !my_crash then
          match crash_exns.(s) with
          | Some e -> my_crash := Some e
          | None -> ());
    (* the stream finished its whole slice first — other shards lose
       nothing — and only now does the crash kill the worker *)
    match !my_crash with Some e -> raise e | None -> ()
  in
  let series_label = Printf.sprintf "chaos:%s" (Service.org_name org) in
  let t_start = ref 0. and t_stop = ref 0. in
  let body () =
    Exec.Worker_pool.with_pool ~domains:cfg.domains (fun pool ->
        t_start := Unix.gettimeofday ();
        for round = 0 to cfg.rounds - 1 do
          Array.fill crash_exns 0 cfg.shards None;
          (match Exec.Worker_pool.run pool (stream_job round) with
          | () -> ()
          | exception Exec.Worker_pool.Worker_failed failures ->
              (* only shard crashes are expected out of a job; anything
                 else is a real bug and must fail the run *)
              List.iter
                (fun (_, e) ->
                  match e with
                  | Fault.Injected { site = Fault.Shard_crash; _ } -> ()
                  | e -> raise e)
                failures);
          supervise cfg state ~lock ~recovery_crash_armed;
          checkpoint_shards cfg state ~round ~lock ~ckpt_crash_armed;
          Obs.Series.mark ~label:series_label ~index:round
        done;
        t_stop := Unix.gettimeofday ());
    finalize cfg state ~lock ~recovery_crash_armed
  in
  (match cfg.sites with
  | [] -> body ()
  | sites ->
      Fault.with_plan
        (Fault.plan ~rate_ppm:cfg.rate_ppm ~sites ~seed:cfg.seed ())
        body);
  Array.iter (fun st -> Service.quiesce (Shard.service st.ds)) state;
  (* the full-trace oracle: every tenant's intent books, shard by
     shard, must equal both the acknowledged state and the table *)
  let equivalent =
    Array.for_all
      (fun st ->
        let expected = Hashtbl.create 4096 in
        Array.iteri
          (fun t intent ->
            let asid = t + 1 in
            if asid mod cfg.shards = st.sx then
              Hashtbl.iter
                (fun local w -> Hashtbl.replace expected (tag ~asid local) w)
                intent)
          intents;
        Hashtbl.length expected = Hashtbl.length st.ack
        && Hashtbl.fold
             (fun vpn w acc ->
               acc && Hashtbl.find_opt st.ack vpn = Some w)
             expected true
        && agrees st)
      state
  in
  let tally = Dynamics.Fleet_replay.tally_zero () in
  Array.iter
    (fun cur ->
      let y = Dynamics.Fleet_replay.tally cur in
      tally.Dynamics.Fleet_replay.events <- tally.events + y.events;
      tally.mmaps <- tally.mmaps + y.mmaps;
      tally.munmaps <- tally.munmaps + y.munmaps;
      tally.protects <- tally.protects + y.protects;
      tally.touches <- tally.touches + y.touches;
      tally.touch_hits <- tally.touch_hits + y.touch_hits;
      tally.touch_faults <- tally.touch_faults + y.touch_faults;
      tally.pages_mapped <- tally.pages_mapped + y.pages_mapped;
      tally.pages_unmapped <- tally.pages_unmapped + y.pages_unmapped;
      tally.range_pages <- tally.range_pages + y.range_pages)
    cursors;
  let sum f = Array.fold_left (fun acc st -> acc + f st) 0 state in
  let placement =
    Fsck.check_shards ~asid_shift:Sharded.asid_shift
      ~expected_shard:(fun asid -> asid mod cfg.shards)
      (Array.map (fun st -> Service.fsck_table (Shard.service st.ds)) state)
  in
  let fsck_clean =
    Array.for_all (fun st -> Fsck.clean (Service.fsck (Shard.service st.ds))) state
  in
  let elapsed = !t_stop -. !t_start in
  {
    c_org = org;
    c_locking = cfg.locking;
    c_tenants = cfg.tenants;
    c_shards = cfg.shards;
    c_rounds = cfg.rounds;
    c_events = tally.events;
    c_mmaps = tally.mmaps;
    c_munmaps = tally.munmaps;
    c_protects = tally.protects;
    c_touches = tally.touches;
    c_touch_hits = tally.touch_hits;
    c_touch_faults = tally.touch_faults;
    c_pages_mapped = tally.pages_mapped;
    c_pages_unmapped = tally.pages_unmapped;
    c_range_pages = tally.range_pages;
    c_crashes = sum (fun st -> st.crashes);
    c_wal_records = sum (fun st -> Wal.records (Shard.wal st.ds));
    c_wal_bytes = sum (fun st -> Wal.length (Shard.wal st.ds));
    c_torn_truncations = sum (fun st -> Wal.torn_truncations (Shard.wal st.ds));
    c_truncated_bytes = sum (fun st -> Wal.truncated_bytes (Shard.wal st.ds));
    c_checkpoints = sum (fun st -> Shard.checkpoints st.ds);
    c_torn_checkpoints = sum (fun st -> Shard.torn_checkpoints st.ds);
    c_compactions = sum (fun st -> Wal.compactions (Shard.wal st.ds));
    c_checkpoints_discarded = sum (fun st -> Shard.checkpoints_discarded st.ds);
    c_recovery_attempts = sum (fun st -> Shard.recovery_attempts st.ds);
    c_recoveries = sum (fun st -> Shard.recoveries st.ds);
    c_recovery_crashes = sum (fun st -> Shard.recovery_crashes st.ds);
    c_replayed_records = sum (fun st -> Shard.replayed_records st.ds);
    c_restored_mappings = sum (fun st -> Shard.restored_mappings st.ds);
    c_degraded_retries = sum (fun st -> st.retries);
    c_degraded_rejections = sum (fun st -> st.rejections);
    c_pending_replayed = sum (fun st -> st.pending_replayed);
    c_resident =
      Array.fold_left (fun acc i -> acc + Hashtbl.length i) 0 intents;
    c_population = sum (fun st -> Service.population (Shard.service st.ds));
    c_limbo = sum (fun st -> Service.limbo_nodes (Shard.service st.ds));
    c_fsck_clean = fsck_clean;
    c_placement_clean = Fsck.clean placement;
    c_converged = Array.for_all (fun st -> st.converged) state;
    c_equivalent = equivalent;
    c_elapsed_s = elapsed;
    c_ops_per_sec =
      (if elapsed > 0. then float_of_int tally.events /. elapsed else 0.);
  }

(* --- the full run --- *)

type outcome = { rows : row list }

let validate cfg =
  if cfg.domains < 1 then invalid_arg "Chaos_sim.run: domains must be >= 1";
  if cfg.shards < 1 then invalid_arg "Chaos_sim.run: shards must be >= 1";
  if cfg.rounds < 1 then invalid_arg "Chaos_sim.run: rounds must be >= 1";
  if cfg.tenants < 1 then invalid_arg "Chaos_sim.run: tenants must be >= 1";
  if cfg.checkpoint_every < 1 then
    invalid_arg "Chaos_sim.run: checkpoint-every must be >= 1";
  if cfg.retry_budget < 0 then
    invalid_arg "Chaos_sim.run: retry budget must be >= 0";
  if cfg.recovery_delay < 0 then
    invalid_arg "Chaos_sim.run: recovery delay must be >= 0";
  List.iter
    (fun off ->
      if off < 0 then invalid_arg "Chaos_sim.run: crash offsets must be >= 0")
    cfg.crash_offsets

let run cfg =
  validate cfg;
  Obs.Recorder.arm ~streams:cfg.shards ~capacity:512;
  { rows = List.map (fun org -> run_one cfg ~org) cfg.orgs }

let all_clean o =
  List.for_all
    (fun r ->
      r.c_fsck_clean && r.c_placement_clean && r.c_converged && r.c_equivalent
      && r.c_limbo = 0)
    o.rows

(* --- rendering --- *)

let row_to_json ?(timing = false) r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"org\":\"%s\",\"locking\":\"%s\",\"tenants\":%d,\"shards\":%d,\
        \"rounds\":%d,\"events\":%d,\"mmaps\":%d,\"munmaps\":%d,\
        \"protects\":%d,\"touches\":%d,\"touch_hits\":%d,\"touch_faults\":%d,\
        \"pages_mapped\":%d,\"pages_unmapped\":%d,\"range_pages\":%d,\
        \"crashes\":%d,\"wal_records\":%d,\"wal_bytes\":%d,\
        \"torn_truncations\":%d,\"truncated_bytes\":%d,\"checkpoints\":%d,\
        \"torn_checkpoints\":%d,\"compactions\":%d,\
        \"checkpoints_discarded\":%d,\"recovery_attempts\":%d,\
        \"recoveries\":%d,\"recovery_crashes\":%d,\"replayed_records\":%d,\
        \"restored_mappings\":%d,\"degraded_retries\":%d,\
        \"degraded_rejections\":%d,\"pending_replayed\":%d,\"resident\":%d,\
        \"population\":%d,\"limbo_after_quiesce\":%d,\"fsck_clean\":%b,\
        \"placement_clean\":%b,\"recoveries_converged\":%b,\
        \"oracle_equivalent\":%b"
       (Service.org_name r.c_org)
       (Service.locking_name r.c_locking)
       r.c_tenants r.c_shards r.c_rounds r.c_events r.c_mmaps r.c_munmaps
       r.c_protects r.c_touches r.c_touch_hits r.c_touch_faults
       r.c_pages_mapped r.c_pages_unmapped r.c_range_pages r.c_crashes
       r.c_wal_records r.c_wal_bytes r.c_torn_truncations r.c_truncated_bytes
       r.c_checkpoints r.c_torn_checkpoints r.c_compactions
       r.c_checkpoints_discarded r.c_recovery_attempts r.c_recoveries
       r.c_recovery_crashes r.c_replayed_records r.c_restored_mappings
       r.c_degraded_retries r.c_degraded_rejections r.c_pending_replayed
       r.c_resident r.c_population r.c_limbo r.c_fsck_clean r.c_placement_clean
       r.c_converged r.c_equivalent);
  if timing then
    Buffer.add_string b
      (Printf.sprintf ",\"ops_per_sec\":%.1f,\"elapsed_s\":%.4f"
         r.c_ops_per_sec r.c_elapsed_s);
  Buffer.add_char b '}';
  Buffer.contents b

let outcome_to_json ?timing cfg o =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema_version\":1,\"experiment\":\"chaos\",\"seed\":%d,\
        \"locking\":\"%s\",\"tenants\":%d,\"shards\":%d,\"rounds\":%d,\
        \"ops_per_tenant\":%d,\"switch_every\":%d,\"checkpoint_every\":%d,\
        \"recovery_delay\":%d,\"retry_budget\":%d,\"rate_ppm\":%d,\
        \"crash_offsets\":[%s],\"sites\":[%s],\"rows\":["
       cfg.seed
       (Service.locking_name cfg.locking)
       cfg.tenants cfg.shards cfg.rounds cfg.ops_per_tenant cfg.switch_every
       cfg.checkpoint_every cfg.recovery_delay cfg.retry_budget cfg.rate_ppm
       (String.concat "," (List.map string_of_int (planned_offsets cfg)))
       (String.concat ","
          (List.map
             (fun s -> Printf.sprintf "\"%s\"" (Fault.site_name s))
             cfg.sites)));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (row_to_json ?timing r))
    o.rows;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_row ppf r =
  Format.fprintf ppf
    "%-9s %8d %7d %8d %6d %7d %8d %7d %8d %6s %6s %6s@."
    (Service.org_name r.c_org)
    r.c_events r.c_crashes r.c_wal_records r.c_checkpoints
    r.c_recoveries r.c_replayed_records r.c_degraded_rejections
    r.c_pending_replayed
    (if r.c_fsck_clean && r.c_placement_clean then "clean" else "DIRTY")
    (if r.c_converged then "conv" else "DIVERGED")
    (if r.c_equivalent then "equal" else "UNEQUAL")

let pp_outcome ppf o =
  Format.fprintf ppf "%-9s %8s %7s %8s %6s %7s %8s %7s %8s %6s %6s %6s@." "org"
    "events" "crashes" "wal-rec" "ckpts" "recov" "replayed" "reject" "drained"
    "fsck" "conv" "oracle";
  List.iter (pp_row ppf) o.rows
