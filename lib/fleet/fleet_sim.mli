(** The [ptsim fleet] / bench driver: N tenants of churn dealt over M
    {!Sharded} shards, interleaved on fixed streams in context-switch
    quanta, with ASID-tagged vs flush-on-switch TLBs side by side and
    a global frame budget enforced between rounds.

    Determinism: tenant [t] runs on stream [t mod streams], stream [s]
    on worker [s mod domains]; tenants touch disjoint ASID-prefixed
    keys, so cross-tenant interleaving inside a shard cannot change
    tenant-visible state; budget enforcement runs on the main domain
    at round barriers, with victims selected from merged Obs touch
    counters.  {!outcome_to_json} deliberately omits the domain count
    and all timing, and is byte-identical for any [domains]; timing
    (ops/s, p99 from the Obs latency histogram) appears only with
    [~timing:true] (the bench report) and in {!pp_outcome}. *)

type config = {
  tenants : int;
  shards : int;
  streams : int;
  domains : int;
  rounds : int;
  ops_per_tenant : int;  (** churn events generated per tenant *)
  switch_every : int;  (** context-switch quantum, in events *)
  frame_budget : int;  (** fleet-wide page budget; 0 = unlimited *)
  modes : Sharded.range_mode list;
  orgs : Pt_service.Service.org list;
  locking : Pt_service.Service.locking;
  buckets : int;
  tlb_entries : int;
  seed : int;
}

val default_config : config
(** 12 tenants over 4 shards on 4 streams, 3 rounds, both range modes,
    both organizations, seqlock locking, a frame budget tight enough
    to force eviction, seed 42, 1 domain. *)

val quick_config : config
(** CI-sized: 8 tenants, 2 rounds, fewer events. *)

type row = {
  f_mode : Sharded.range_mode;
  f_org : Pt_service.Service.org;
  f_locking : Pt_service.Service.locking;
  f_tenants : int;
  f_shards : int;
  f_streams : int;
  f_rounds : int;
  f_events : int;
  f_mmaps : int;
  f_munmaps : int;
  f_protects : int;
  f_touches : int;
  f_touch_hits : int;
  f_touch_faults : int;
  f_forks : int;
  f_exits : int;
  f_pages_mapped : int;
  f_pages_unmapped : int;
  f_range_pages : int;  (** pages covered by range submissions *)
  f_range_sections : int;  (** write sections those took *)
  f_write_locks : int;  (** write acquisitions summed over shards *)
  f_tagged_hits : int;
  f_tagged_misses : int;
  f_flush_hits : int;
  f_flush_misses : int;
  f_context_switches : int;
  f_shootdowns : int;  (** TLB flushes forced by eviction *)
  f_evictions : int;  (** tenants evicted *)
  f_evicted_pages : int;
  f_resident : int;  (** fleet books at quiesce *)
  f_population : int;  (** shard tables at quiesce *)
  f_footprint_bytes : int;
  f_limbo : int;  (** after quiesce; 0 proves the drain *)
  f_fsck_clean : bool;
  f_elapsed_s : float;
  f_ops_per_sec : float;
  f_p99_ns : int;  (** 99th percentile per-event latency *)
  f_mean_ns : float;
}

val locks_per_page : row -> float
(** [range_sections / range_pages] — the amortisation the batched
    path buys (compare batched vs paged rows). *)

val retained_hits : row -> int
(** Tagged hits in excess of the flush-on-switch baseline: what ASID
    tagging saved across context switches. *)

type outcome = { rows : row list }

val run : config -> outcome
(** One row per (org × range mode).  Raises [Invalid_argument] on a
    non-positive [domains], [streams] or [rounds]. *)

val row_to_json : ?timing:bool -> row -> string

val outcome_to_json : ?timing:bool -> config -> outcome -> string
(** Deterministic for any [domains]; [~timing:true] appends the
    run-to-run varying fields (ops_per_sec, elapsed_s, p99_ns,
    mean_ns) for the bench report, whose differ ignores them. *)

val pp_outcome : Format.formatter -> outcome -> unit

val all_clean : outcome -> bool
(** Every row fsck-clean (shards and cross-shard ASID placement) with
    an empty limbo after quiesce. *)
