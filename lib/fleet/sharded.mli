(** A fleet of tenant address spaces over sharded page-table services.

    N tenants dealt over M shards (independent {!Pt_service.Service}
    instances, any org × locking mode) by ASID: shard [asid mod M]
    holds every mapping of the tenant, keyed with the ASID folded into
    vpn bits 50..62 above the tenant-local key.  Range operations run
    the service's batched path (one write section per stripe group,
    each a single undo-journal unit) or the per-page path, per
    {!range_mode}.  A frame budget forces cross-tenant eviction,
    coldest first; evicted nodes drain through the epoch limbo path of
    seqlock shards.

    Concurrency contract: each tenant is driven from one domain at a
    time; {!enforce_budget}, {!fsck} and the fleet-wide accounting run
    on the coordinating domain while workers are parked. *)

module Service = Pt_service.Service

type range_mode =
  | Batched  (** one submission per region: amortised stripe locking *)
  | Paged  (** one lock acquisition per page: the comparison baseline *)

val range_mode_name : range_mode -> string

val asid_shift : int
(** Bit position of the ASID in shard keys (50). *)

type t

val create :
  ?buckets:int ->
  ?subblock_factor:int ->
  org:Service.org ->
  locking:Service.locking ->
  shards:int ->
  tenants:int ->
  mode:range_mode ->
  unit ->
  t
(** Tenants get ASIDs [1 .. tenants].  Raises [Invalid_argument] if
    [shards < 1] or [tenants] is outside [1, 4094]. *)

val mode : t -> range_mode

val shard_count : t -> int

val tenant_count : t -> int

val shard : t -> int -> Service.t

(** {2 Per-tenant operations}

    Regions and keys are tenant-local (see
    {!Dynamics.Fleet_replay.local_key}); the fleet tags them with the
    ASID before touching the shard.  Each mutator returns the number
    of write-lock sections it took — the quantity the batched-vs-paged
    comparison measures. *)

val map : t -> asid:int -> Addr.Region.t -> int

val unmap : t -> asid:int -> Addr.Region.t -> int

val protect : t -> asid:int -> Addr.Region.t -> writable:bool -> int

val mem : t -> asid:int -> int64 -> bool
(** Tenant-local liveness (the fleet's own books, no table walk). *)

val find : t -> asid:int -> int64 -> Pt_common.Types.translation option
(** Walk the tenant's shard; the returned translation is untagged back
    to tenant-local keys, ready for a TLB fill. *)

val resident : t -> asid:int -> int

val total_resident : t -> int

(** {2 Memory pressure} *)

val evict : t -> asid:int -> int
(** Unmap every page of the tenant (coalesced into maximal runs, each
    a batched range op regardless of {!mode}); returns pages freed.
    The tenant demand-faults back in afterwards. *)

val evictions : t -> asid:int -> int

val enforce_budget : t -> budget:int -> activity:(int -> int) -> int * int
(** Evict coldest tenants ([activity asid] ascending, ties on ASID)
    until {!total_resident} fits [budget]; no-op when [budget <= 0].
    Returns (tenants evicted, pages freed).  The caller owns TLB
    shootdown for the evicted entries. *)

(** {2 Fleet-wide accounting and integrity} *)

val population : t -> int
(** Live mappings summed over shards. *)

val size_bytes : t -> int
(** Table footprint summed over shards. *)

val write_locks : t -> int
(** Write-lock acquisitions summed over shards. *)

val limbo_nodes : t -> int

val reader_epochs : t -> Exec.Epoch.t list
(** Reclamation domains of seqlock shards — pass to the worker pool. *)

val quiesce : t -> unit

type fsck_result = {
  shard_reports : Fsck.report list;
  placement : Fsck.report;
      (** cross-shard ASID disjointness + placement
          ({!Fsck.check_shards}) *)
}

val fsck : t -> fsck_result

val fsck_clean : fsck_result -> bool
