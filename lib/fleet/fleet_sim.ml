(* The `ptsim fleet` / bench driver: N tenants of churn dealt over M
   shards, interleaved on fixed streams in context-switch quanta, with
   ASID-tagged vs flush-on-switch TLBs side by side and a global frame
   budget enforced between rounds.

   Determinism contract (bit-identical output for any --domains):

   - Fixed logical streams: tenant [t] runs on stream [t mod streams],
     stream [s] on worker [s mod domains].  A tenant's event sequence,
     switch quanta and round slices are pure functions of the config,
     so every per-tenant tally, per-stream TLB stat and per-shard
     write-lock total is interleaving-invariant.
   - Tenants touch disjoint keys (the ASID prefix), so cross-tenant
     interleaving inside a shard cannot change any tenant-visible
     state — only contention, which the outputs omit.
   - Budget enforcement runs on the main domain between rounds, with
     every worker parked at the pool barrier; victim selection reads
     the merged Obs touch counters, which are barrier-stable and
     domain-count invariant.
   - Per-op latencies go to an Obs histogram for the human/bench
     report; the deterministic JSON omits them (CI byte-diffs
     --domains 1 against --domains 4).

   Outputs deliberately omit the domain count. *)

module Service = Pt_service.Service

type config = {
  tenants : int;
  shards : int;
  streams : int;
  domains : int;
  rounds : int;
  ops_per_tenant : int;  (** churn events generated per tenant *)
  switch_every : int;  (** context-switch quantum, in events *)
  frame_budget : int;  (** fleet-wide page budget; 0 = unlimited *)
  modes : Sharded.range_mode list;
  orgs : Service.org list;
  locking : Service.locking;
  buckets : int;
  tlb_entries : int;
  seed : int;
}

let default_config =
  {
    tenants = 12;
    shards = 4;
    streams = 4;
    domains = 1;
    rounds = 3;
    ops_per_tenant = 3_000;
    switch_every = 48;
    frame_budget = 500;
    modes = [ Sharded.Batched; Sharded.Paged ];
    orgs = [ Service.Clustered; Service.Hashed ];
    locking = Service.Seqlock;
    buckets = 4096;
    tlb_entries = 128;
    seed = 42;
  }

let quick_config =
  {
    default_config with
    tenants = 8;
    rounds = 2;
    ops_per_tenant = 1_200;
    frame_budget = 300;
  }

(* per-tenant churn: smaller regions and bursts than Churn.default so
   a dozen tenants stay snappy, and no drain suffix — the fleet should
   end with tenants resident (footprint-vs-live is part of the
   report) *)
let churn_spec cfg =
  {
    Dynamics.Churn.ops = cfg.ops_per_tenant;
    max_procs = 4;
    max_live_pages = 1_200;
    region_min = 4;
    region_max = 64;
    touch_burst = 16;
    drain = false;
  }

type row = {
  f_mode : Sharded.range_mode;
  f_org : Service.org;
  f_locking : Service.locking;
  f_tenants : int;
  f_shards : int;
  f_streams : int;
  f_rounds : int;
  f_events : int;
  f_mmaps : int;
  f_munmaps : int;
  f_protects : int;
  f_touches : int;
  f_touch_hits : int;
  f_touch_faults : int;
  f_forks : int;
  f_exits : int;
  f_pages_mapped : int;
  f_pages_unmapped : int;
  f_range_pages : int;
  f_range_sections : int;
  f_write_locks : int;
  f_tagged_hits : int;
  f_tagged_misses : int;
  f_flush_hits : int;
  f_flush_misses : int;
  f_context_switches : int;
  f_shootdowns : int;
  f_evictions : int;
  f_evicted_pages : int;
  f_resident : int;  (** fleet books at quiesce *)
  f_population : int;  (** shard tables at quiesce *)
  f_footprint_bytes : int;
  f_limbo : int;  (** after quiesce; 0 proves the drain *)
  f_fsck_clean : bool;
  (* timing: human/bench report only, never in the deterministic JSON *)
  f_elapsed_s : float;
  f_ops_per_sec : float;
  f_p99_ns : int;
  f_mean_ns : float;
}

let locks_per_page r =
  if r.f_range_pages = 0 then 0.
  else float_of_int r.f_range_sections /. float_of_int r.f_range_pages

let retained_hits r = r.f_tagged_hits - r.f_flush_hits

(* --- one (org, mode) run --- *)

let iter_streams ~streams ~domains index f =
  let s = ref index in
  while !s < streams do
    f !s;
    s := !s + domains
  done

let touch_counter_name asid = Printf.sprintf "fleet.touch.%d" asid

let lock_code = function
  | Service.Global -> Obs.Recorder.l_global
  | Service.Striped -> Obs.Recorder.l_striped
  | Service.Seqlock -> Obs.Recorder.l_seqlock

let run_one cfg ~org ~mode =
  let fleet =
    Sharded.create ~buckets:cfg.buckets ~org ~locking:cfg.locking
      ~shards:cfg.shards ~tenants:cfg.tenants ~mode ()
  in
  let traces =
    Array.init cfg.tenants (fun i ->
        Dynamics.Churn.generate ~spec:(churn_spec cfg)
          ~seed:(Int64.of_int (cfg.seed + (977 * i)))
          ())
  in
  (* per-stream TLB pair: ASID-tagged (survives switches) and
     flush-on-switch (the SuperSPARC baseline), fed identically *)
  let tagged =
    Array.init cfg.streams (fun _ ->
        Tlb.Tagged_tlb.create (Tlb.Intf.fa ~entries:cfg.tlb_entries ()))
  in
  let flushed =
    Array.init cfg.streams (fun _ -> Tlb.Intf.fa ~entries:cfg.tlb_entries ())
  in
  let switches = Array.make cfg.streams 0 in
  let hist_name =
    Printf.sprintf "fleet.op_ns.%s.%s" (Service.org_name org)
      (Sharded.range_mode_name mode)
  in
  (* victim selection reads merged counter deltas against the row's
     starting point (ambient shards persist across rows) *)
  let touch_base = Array.make (cfg.tenants + 1) 0 in
  let m0 = Obs.Ambient.merged () in
  for asid = 1 to cfg.tenants do
    touch_base.(asid) <-
      Obs.Metrics.value (Obs.Metrics.counter m0 (touch_counter_name asid))
  done;
  let lock = lock_code cfg.locking in
  let ops_for t =
    let asid = t + 1 in
    let s = t mod cfg.streams in
    (* flight-recorder events go to stream [s]'s ring: the stream is
       the ownership unit, so the recorded tail is domain-invariant;
       [lat] is the logical cost (lock sections, or 1 on a demand
       fault), never wall-clock *)
    let rec_range kind (r : Addr.Region.t) lat =
      Obs.Recorder.record ~stream:s ~kind ~asid
        ~vpn:(Int64.to_int r.Addr.Region.first_vpn)
        ~pages:r.Addr.Region.pages ~lock ~attempt:0 ~fault:0 ~lat
    in
    let tg = tagged.(s) and fl = flushed.(s) in
    (* ambient handles bind to the executing domain, so resolve them
       lazily on first use from the worker, not here on main *)
    let tc = ref None in
    let bump_touch () =
      let c =
        match !tc with
        | Some c -> c
        | None ->
            let c = Obs.Ambient.counter (touch_counter_name asid) in
            tc := Some c;
            c
      in
      Obs.Metrics.incr c
    in
    {
      Dynamics.Fleet_replay.map =
        (fun r ->
          let sections = Sharded.map fleet ~asid r in
          rec_range Obs.Recorder.k_map r sections;
          sections);
      unmap =
        (fun r ->
          let sections = Sharded.unmap fleet ~asid r in
          rec_range Obs.Recorder.k_unmap r sections;
          sections);
      protect =
        (fun r ~writable ->
          let sections = Sharded.protect fleet ~asid r ~writable in
          rec_range Obs.Recorder.k_protect r sections;
          sections);
      touch =
        (fun local ->
          bump_touch ();
          let mapped = Sharded.mem fleet ~asid local in
          Obs.Recorder.record ~stream:s ~kind:Obs.Recorder.k_touch ~asid
            ~vpn:(Int64.to_int local) ~pages:1 ~lock ~attempt:0 ~fault:0
            ~lat:(if mapped then 0 else 1);
          let th = Tlb.Tagged_tlb.access tg ~vpn:local = `Hit in
          let fh = Tlb.Intf.access fl ~vpn:local = `Hit in
          (if mapped && ((not th) || not fh) then
             match Sharded.find fleet ~asid local with
             | Some tr ->
                 if not th then Tlb.Tagged_tlb.fill tg tr;
                 if not fh then Tlb.Intf.fill fl tr
             | None -> ());
          mapped);
    }
  in
  let cursors =
    Array.init cfg.tenants (fun t ->
        Dynamics.Fleet_replay.create (ops_for t) traces.(t))
  in
  let stream_tenants =
    Array.init cfg.streams (fun s ->
        List.filter
          (fun t -> t mod cfg.streams = s)
          (List.init cfg.tenants Fun.id))
  in
  (* round r lets tenant t advance to this cursor position: fixed
     slices, so a barrier cuts every trace identically for any
     interleaving *)
  let target t round =
    Dynamics.Fleet_replay.length cursors.(t) * (round + 1) / cfg.rounds
  in
  let stream_job round index =
    iter_streams ~streams:cfg.streams ~domains:cfg.domains index (fun s ->
        let hist = Obs.Ambient.hist hist_name in
        let progressed = ref true in
        while !progressed do
          progressed := false;
          List.iter
            (fun t ->
              let st = cursors.(t) in
              let left = target t round - Dynamics.Fleet_replay.consumed st in
              if left > 0 then begin
                (* context switch: tags survive, the baseline flushes *)
                Tlb.Tagged_tlb.set_context tagged.(s) ~asid:(t + 1);
                Tlb.Intf.flush flushed.(s);
                switches.(s) <- switches.(s) + 1;
                let quantum = min cfg.switch_every left in
                for _ = 1 to quantum do
                  let t0 = Unix.gettimeofday () in
                  ignore (Dynamics.Fleet_replay.step st ~max_events:1);
                  let t1 = Unix.gettimeofday () in
                  Obs.Hist.observe hist
                    (int_of_float ((t1 -. t0) *. 1e9))
                done;
                if target t round - Dynamics.Fleet_replay.consumed st > 0 then
                  progressed := true
              end)
            stream_tenants.(s)
        done)
  in
  let evictions = ref 0 and evicted_pages = ref 0 and shootdowns = ref 0 in
  let enforce () =
    if cfg.frame_budget > 0 then begin
      let m = Obs.Ambient.merged () in
      let activity asid =
        Obs.Metrics.value (Obs.Metrics.counter m (touch_counter_name asid))
        - touch_base.(asid)
      in
      let ev, pages =
        Sharded.enforce_budget fleet ~budget:cfg.frame_budget ~activity
      in
      if ev > 0 then begin
        (* TLB shootdown: every stream may cache the victims' entries *)
        Array.iter Tlb.Tagged_tlb.flush tagged;
        Array.iter Tlb.Intf.flush flushed;
        shootdowns := !shootdowns + (2 * cfg.streams);
        evictions := !evictions + ev;
        evicted_pages := !evicted_pages + pages
      end
    end
  in
  let t_start = ref 0. and t_stop = ref 0. in
  Exec.Worker_pool.with_pool
    ~epochs:(Sharded.reader_epochs fleet)
    ~domains:cfg.domains
    (fun pool ->
      let series_label =
        Printf.sprintf "fleet:%s/%s" (Service.org_name org)
          (Sharded.range_mode_name mode)
      in
      t_start := Unix.gettimeofday ();
      for round = 0 to cfg.rounds - 1 do
        Exec.Worker_pool.run pool (stream_job round);
        (* workers parked at the barrier: enforcement is sequential,
           and the series point sees a domain-invariant merge *)
        enforce ();
        Obs.Series.mark ~label:series_label ~index:round
      done;
      t_stop := Unix.gettimeofday ());
  Sharded.quiesce fleet;
  let tally = Dynamics.Fleet_replay.tally_zero () in
  Array.iter
    (fun st ->
      let y = Dynamics.Fleet_replay.tally st in
      tally.Dynamics.Fleet_replay.events <- tally.events + y.events;
      tally.mmaps <- tally.mmaps + y.mmaps;
      tally.munmaps <- tally.munmaps + y.munmaps;
      tally.protects <- tally.protects + y.protects;
      tally.touches <- tally.touches + y.touches;
      tally.touch_hits <- tally.touch_hits + y.touch_hits;
      tally.touch_faults <- tally.touch_faults + y.touch_faults;
      tally.forks <- tally.forks + y.forks;
      tally.exits <- tally.exits + y.exits;
      tally.pages_mapped <- tally.pages_mapped + y.pages_mapped;
      tally.pages_unmapped <- tally.pages_unmapped + y.pages_unmapped;
      tally.range_pages <- tally.range_pages + y.range_pages;
      tally.range_sections <- tally.range_sections + y.range_sections)
    cursors;
  let sum_stats field arr stats_of =
    Array.fold_left (fun acc x -> acc + field (stats_of x)) 0 arr
  in
  let tagged_hits =
    sum_stats (fun s -> s.Tlb.Stats.hits) tagged Tlb.Tagged_tlb.stats
  in
  let tagged_misses =
    sum_stats Tlb.Stats.misses tagged Tlb.Tagged_tlb.stats
  in
  let flush_hits =
    sum_stats (fun s -> s.Tlb.Stats.hits) flushed Tlb.Intf.stats
  in
  let flush_misses = sum_stats Tlb.Stats.misses flushed Tlb.Intf.stats in
  let fsck = Sharded.fsck fleet in
  let elapsed = !t_stop -. !t_start in
  let hist = Obs.Metrics.hist (Obs.Ambient.merged ()) hist_name in
  {
    f_mode = mode;
    f_org = org;
    f_locking = cfg.locking;
    f_tenants = cfg.tenants;
    f_shards = cfg.shards;
    f_streams = cfg.streams;
    f_rounds = cfg.rounds;
    f_events = tally.events;
    f_mmaps = tally.mmaps;
    f_munmaps = tally.munmaps;
    f_protects = tally.protects;
    f_touches = tally.touches;
    f_touch_hits = tally.touch_hits;
    f_touch_faults = tally.touch_faults;
    f_forks = tally.forks;
    f_exits = tally.exits;
    f_pages_mapped = tally.pages_mapped;
    f_pages_unmapped = tally.pages_unmapped;
    f_range_pages = tally.range_pages;
    f_range_sections = tally.range_sections;
    f_write_locks = Sharded.write_locks fleet;
    f_tagged_hits = tagged_hits;
    f_tagged_misses = tagged_misses;
    f_flush_hits = flush_hits;
    f_flush_misses = flush_misses;
    f_context_switches = Array.fold_left ( + ) 0 switches;
    f_shootdowns = !shootdowns;
    f_evictions = !evictions;
    f_evicted_pages = !evicted_pages;
    f_resident = Sharded.total_resident fleet;
    f_population = Sharded.population fleet;
    f_footprint_bytes = Sharded.size_bytes fleet;
    f_limbo = Sharded.limbo_nodes fleet;
    f_fsck_clean = Sharded.fsck_clean fsck;
    f_elapsed_s = elapsed;
    f_ops_per_sec =
      (if elapsed > 0. then float_of_int tally.events /. elapsed else 0.);
    f_p99_ns = Obs.Hist.quantile hist ~q:0.99;
    f_mean_ns = Obs.Hist.mean hist;
  }

(* --- the full matrix --- *)

type outcome = { rows : row list }

let run cfg =
  if cfg.domains < 1 then invalid_arg "Fleet_sim.run: domains must be >= 1";
  if cfg.streams < 1 then invalid_arg "Fleet_sim.run: streams must be >= 1";
  if cfg.rounds < 1 then invalid_arg "Fleet_sim.run: rounds must be >= 1";
  Obs.Recorder.arm ~streams:cfg.streams ~capacity:512;
  {
    rows =
      List.concat_map
        (fun org -> List.map (fun mode -> run_one cfg ~org ~mode) cfg.modes)
        cfg.orgs;
  }

(* --- rendering --- *)

(* The deterministic fields: everything an op tally, lock count, TLB
   model or integrity check produces.  Timing (elapsed, ops/s, p99)
   varies run to run and only appears with [~timing:true] (the bench
   report, whose differ ignores those fields) — never in the `ptsim
   fleet --json` output CI byte-diffs across domain counts. *)
let row_to_json ?(timing = false) r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"mode\":\"%s\",\"org\":\"%s\",\"locking\":\"%s\",\"tenants\":%d,\
        \"shards\":%d,\"streams\":%d,\"rounds\":%d,\"events\":%d,\
        \"mmaps\":%d,\"munmaps\":%d,\"protects\":%d,\"touches\":%d,\
        \"touch_hits\":%d,\"touch_faults\":%d,\"forks\":%d,\"exits\":%d,\
        \"pages_mapped\":%d,\"pages_unmapped\":%d,\"range_pages\":%d,\
        \"range_sections\":%d,\"locks_per_page\":%.4f,\"write_locks\":%d,\
        \"tagged_hits\":%d,\"tagged_misses\":%d,\"flush_hits\":%d,\
        \"flush_misses\":%d,\"retained_hits\":%d,\"context_switches\":%d,\
        \"shootdowns\":%d,\"evictions\":%d,\"evicted_pages\":%d,\
        \"resident\":%d,\"population\":%d,\"footprint_bytes\":%d,\
        \"limbo_after_quiesce\":%d,\"fsck_clean\":%b"
       (Sharded.range_mode_name r.f_mode)
       (Service.org_name r.f_org)
       (Service.locking_name r.f_locking)
       r.f_tenants r.f_shards r.f_streams r.f_rounds r.f_events r.f_mmaps
       r.f_munmaps r.f_protects r.f_touches r.f_touch_hits r.f_touch_faults
       r.f_forks r.f_exits r.f_pages_mapped r.f_pages_unmapped r.f_range_pages
       r.f_range_sections (locks_per_page r) r.f_write_locks r.f_tagged_hits
       r.f_tagged_misses r.f_flush_hits r.f_flush_misses (retained_hits r)
       r.f_context_switches r.f_shootdowns r.f_evictions r.f_evicted_pages
       r.f_resident r.f_population r.f_footprint_bytes r.f_limbo
       r.f_fsck_clean);
  if timing then
    Buffer.add_string b
      (Printf.sprintf
         ",\"ops_per_sec\":%.1f,\"elapsed_s\":%.4f,\"p99_ns\":%d,\
          \"mean_ns\":%.1f"
         r.f_ops_per_sec r.f_elapsed_s r.f_p99_ns r.f_mean_ns);
  Buffer.add_char b '}';
  Buffer.contents b

let outcome_to_json ?timing cfg o =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema_version\":1,\"experiment\":\"fleet\",\"seed\":%d,\
        \"locking\":\"%s\",\"tenants\":%d,\"shards\":%d,\"streams\":%d,\
        \"rounds\":%d,\"ops_per_tenant\":%d,\"switch_every\":%d,\
        \"frame_budget\":%d,\"rows\":["
       cfg.seed
       (Service.locking_name cfg.locking)
       cfg.tenants cfg.shards cfg.streams cfg.rounds cfg.ops_per_tenant
       cfg.switch_every cfg.frame_budget);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (row_to_json ?timing r))
    o.rows;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_row ppf r =
  Format.fprintf ppf
    "%-9s %-7s %8d %8d %9.4f %9d %9d %8d %6d %8d %10.0f %8d %6s@."
    (Service.org_name r.f_org)
    (Sharded.range_mode_name r.f_mode)
    r.f_events r.f_range_pages (locks_per_page r) r.f_tagged_hits
    r.f_flush_hits r.f_evicted_pages r.f_evictions r.f_population
    r.f_ops_per_sec r.f_p99_ns
    (if r.f_fsck_clean then "clean" else "DIRTY")

let pp_outcome ppf o =
  Format.fprintf ppf "%-9s %-7s %8s %8s %9s %9s %9s %8s %6s %8s %10s %8s %6s@."
    "org" "mode" "events" "rg-pages" "locks/pg" "tag-hit" "flush-hit" "evicted"
    "evics" "pop" "ops/s" "p99ns" "fsck";
  List.iter (pp_row ppf) o.rows

let all_clean o =
  List.for_all (fun r -> r.f_fsck_clean && r.f_limbo = 0) o.rows
