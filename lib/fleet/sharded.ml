(* A fleet of tenant address spaces over sharded page-table services.

   N tenants (address spaces) are dealt over M shards — independent
   {!Pt_service.Service} instances in any org × locking mode — by
   folding each tenant's ASID into the key's high bits: shard
   [asid mod shards] holds every mapping of that tenant, and the ASID
   prefix keeps tenants disjoint inside a shard (the invariant
   {!Fsck.check_shards} audits).  Range operations go down the
   service's batched path ({!Service.map_range} and friends: one
   write section per stripe group, one undo-journal unit per section)
   or, for comparison, the per-page path — the {!range_mode} axis the
   fleet experiment measures.

   Concurrency contract: a tenant is driven from one domain at a time
   (the sim pins tenant -> stream -> domain), so per-tenant state here
   is plain mutable.  Cross-tenant contention happens underneath, on
   the shared shard stripes.  Eviction runs on the coordinating domain
   between phases (all streams parked at a barrier). *)

module Service = Pt_service.Service

type range_mode = Batched | Paged

let range_mode_name = function Batched -> "batched" | Paged -> "paged"

(* ASID in vpn bits 50..62: tenant-local keys (pid in bits 32..43 plus
   a sub-2^32 vpn, per Fleet_replay.local_key) stay far below 2^50 *)
let asid_shift = 50

let local_mask = Int64.sub (Int64.shift_left 1L asid_shift) 1L

type tenant = {
  asid : int;
  shard : int;
  live : (int64, unit) Hashtbl.t;  (* tenant-local keys *)
  mutable evictions : int;
}

type t = {
  shards : Service.t array;
  tenants : tenant array;  (* index i holds ASID i + 1 *)
  mode : range_mode;
}

let max_asid = (1 lsl 12) - 1

let shard_of_asid ~shards asid = asid mod shards

let create ?(buckets = 4096) ?subblock_factor ~org ~locking ~shards ~tenants
    ~mode () =
  if shards < 1 then invalid_arg "Fleet.create: shards must be >= 1";
  if tenants < 1 || tenants >= max_asid then
    invalid_arg "Fleet.create: tenants must be in [1, 4094]";
  let mk () = Service.create ~buckets ?subblock_factor ~org ~locking () in
  {
    shards = Array.init shards (fun _ -> mk ());
    tenants =
      Array.init tenants (fun i ->
          let asid = i + 1 in
          {
            asid;
            shard = shard_of_asid ~shards asid;
            live = Hashtbl.create 1024;
            evictions = 0;
          });
    mode;
  }

let mode t = t.mode
let shard_count t = Array.length t.shards
let tenant_count t = Array.length t.tenants
let shard t i = t.shards.(i)

let tenant t ~asid =
  if asid < 1 || asid > Array.length t.tenants then
    invalid_arg "Fleet: bad asid";
  t.tenants.(asid - 1)

let service_of t ten = t.shards.(ten.shard)

let tag ~asid local =
  Int64.logor (Int64.shift_left (Int64.of_int asid) asid_shift) local

let untag k = Int64.logand k local_mask

let tagged_region ~asid (r : Addr.Region.t) =
  Addr.Region.make ~first_vpn:(tag ~asid r.Addr.Region.first_vpn)
    ~pages:r.Addr.Region.pages

(* identity placement folded into the PTE's PPN field, like the other
   drivers *)
let ppn_of vpn = Int64.logand vpn 0xFFF_FFFFL

let attr = Pte.Attr.default

(* --- per-tenant operations (returns: write sections taken) --- *)

let map t ~asid (region : Addr.Region.t) =
  let ten = tenant t ~asid in
  let svc = service_of t ten in
  let tr = tagged_region ~asid region in
  let sections =
    match t.mode with
    | Batched -> Service.map_range svc tr ~ppn_of ~attr
    | Paged ->
        Addr.Region.fold_vpns tr ~init:0 ~f:(fun acc vpn ->
            Service.insert svc ~vpn ~ppn:(ppn_of vpn) ~attr;
            acc + 1)
  in
  Addr.Region.iter_vpns region (fun v -> Hashtbl.replace ten.live v ());
  sections

let unmap t ~asid (region : Addr.Region.t) =
  let ten = tenant t ~asid in
  let svc = service_of t ten in
  let tr = tagged_region ~asid region in
  let sections =
    match t.mode with
    | Batched -> Service.unmap_range svc tr
    | Paged ->
        Addr.Region.fold_vpns tr ~init:0 ~f:(fun acc vpn ->
            Service.remove svc ~vpn;
            acc + 1)
  in
  Addr.Region.iter_vpns region (fun v -> Hashtbl.remove ten.live v);
  sections

let protect t ~asid (region : Addr.Region.t) ~writable =
  let ten = tenant t ~asid in
  let svc = service_of t ten in
  let tr = tagged_region ~asid region in
  match t.mode with
  | Batched -> Service.protect_range svc tr ~writable
  | Paged ->
      Addr.Region.fold_vpns tr ~init:0 ~f:(fun acc vpn ->
          ignore
            (Service.protect svc
               (Addr.Region.make ~first_vpn:vpn ~pages:1)
               ~writable);
          acc + 1)

let mem t ~asid local = Hashtbl.mem (tenant t ~asid).live local

let resident t ~asid = Hashtbl.length (tenant t ~asid).live

let total_resident t =
  Array.fold_left (fun acc ten -> acc + Hashtbl.length ten.live) 0 t.tenants

let find t ~asid local =
  let ten = tenant t ~asid in
  match Service.find (service_of t ten) ~vpn:(tag ~asid local) with
  | None -> None
  | Some tr ->
      Some
        {
          tr with
          Pt_common.Types.vpn = untag tr.Pt_common.Types.vpn;
          vpn_base = untag tr.Pt_common.Types.vpn_base;
        }

(* --- eviction (memory pressure) --- *)

(* maximal runs of consecutive local keys, sorted: eviction unmaps in
   deterministic order and through the batched path regardless of the
   fleet's configured mode (reclamation is inherently a bulk op) *)
let coalesce vpns =
  let sorted = List.sort compare vpns in
  let runs = ref [] in
  let flush first count = if count > 0 then runs := (first, count) :: !runs in
  let first = ref 0L and count = ref 0 in
  List.iter
    (fun v ->
      if !count > 0 && Int64.add !first (Int64.of_int !count) = v then
        incr count
      else begin
        flush !first !count;
        first := v;
        count := 1
      end)
    sorted;
  flush !first !count;
  List.rev !runs

let evict t ~asid =
  let ten = tenant t ~asid in
  let svc = service_of t ten in
  let pages = Hashtbl.fold (fun v () acc -> v :: acc) ten.live [] in
  List.iter
    (fun (first, count) ->
      let region = Addr.Region.make ~first_vpn:first ~pages:count in
      ignore (Service.unmap_range svc (tagged_region ~asid region)))
    (coalesce pages);
  Hashtbl.reset ten.live;
  ten.evictions <- ten.evictions + 1;
  List.length pages

let evictions t ~asid = (tenant t ~asid).evictions

(* Evict coldest-first until the fleet fits the frame budget.
   [activity asid] is the tenant's recent-use signal — the sim feeds
   the per-tenant touch counters mirrored into the Obs registry — and
   ties break on ASID, so victim order is deterministic.  Evicted
   tenants' nodes drain through the service's epoch limbo path (under
   seqlock locking) and the tenant demand-faults back in on its next
   touch. *)
let enforce_budget t ~budget ~activity =
  if budget <= 0 then (0, 0)
  else begin
    let total = ref (total_resident t) in
    let evicted = ref 0 and pages = ref 0 in
    while
      !total > budget
      && Array.exists (fun ten -> Hashtbl.length ten.live > 0) t.tenants
    do
      let victim = ref None in
      Array.iter
        (fun ten ->
          if Hashtbl.length ten.live > 0 then
            let a = activity ten.asid in
            match !victim with
            | Some (best, _) when best <= a -> ()
            | _ -> victim := Some (a, ten.asid))
        t.tenants;
      match !victim with
      | None -> ()
      | Some (_, asid) ->
          let freed = evict t ~asid in
          total := !total - freed;
          pages := !pages + freed;
          incr evicted
    done;
    (!evicted, !pages)
  end

(* --- fleet-wide accounting and integrity --- *)

let population t =
  Array.fold_left (fun acc s -> acc + Service.population s) 0 t.shards

let size_bytes t =
  Array.fold_left (fun acc s -> acc + Service.size_bytes s) 0 t.shards

let write_locks t =
  Array.fold_left
    (fun acc s -> acc + (Service.lock_stats s).Service.write_acquisitions)
    0 t.shards

let limbo_nodes t =
  Array.fold_left (fun acc s -> acc + Service.limbo_nodes s) 0 t.shards

let reader_epochs t =
  Array.to_list t.shards |> List.filter_map Service.reader_epoch

let quiesce t = Array.iter Service.quiesce t.shards

type fsck_result = { shard_reports : Fsck.report list; placement : Fsck.report }

let fsck t =
  let shards = Array.length t.shards in
  {
    shard_reports = Array.to_list (Array.map Service.fsck t.shards);
    placement =
      Fsck.check_shards ~asid_shift
        ~expected_shard:(shard_of_asid ~shards)
        (Array.map Service.fsck_table t.shards);
  }

let fsck_clean r =
  List.for_all Fsck.clean r.shard_reports && Fsck.clean r.placement
