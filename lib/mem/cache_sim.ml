type t = {
  line_size : int;
  sets : int;
  ways : int;
  (* tags.(set) is the set's lines, most-recently-used first *)
  tags : int64 list array;
  mutable hits : int;
  mutable misses : int;
}

let create ?(line_size = Cache_model.default_line_size) ~sets ~ways () =
  if sets <= 0 || not (Addr.Bits.is_pow2 sets) then
    invalid_arg "Cache_sim: sets must be a positive power of two";
  if ways <= 0 then invalid_arg "Cache_sim: ways must be positive";
  if not (Addr.Bits.is_pow2 line_size) then
    invalid_arg "Cache_sim: line size must be a power of two";
  { line_size; sets; ways; tags = Array.make sets []; hits = 0; misses = 0 }

let access t addr =
  let line =
    Int64.shift_right_logical addr (Addr.Bits.log2_exact t.line_size)
  in
  let set = Int64.to_int (Int64.rem line (Int64.of_int t.sets)) in
  let lines = t.tags.(set) in
  let hit = List.mem line lines in
  let others = List.filter (fun l -> l <> line) lines in
  let kept =
    if List.length others >= t.ways then
      List.filteri (fun i _ -> i < t.ways - 1) others
    else others
  in
  t.tags.(set) <- line :: kept;
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  hit

let access_bytes t ~addr ~bytes =
  let lines = Cache_model.lines_of_access ~line_size:t.line_size { addr; bytes } in
  List.fold_left
    (fun (h, m) line ->
      let byte = Int64.shift_left line (Addr.Bits.log2_exact t.line_size) in
      if access t byte then (h + 1, m) else (h, m + 1))
    (0, 0) lines

let hits t = t.hits

let misses t = t.misses

let hit_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let flush t =
  Array.fill t.tags 0 t.sets [];
  t.hits <- 0;
  t.misses <- 0

let capacity_bytes t = t.line_size * t.sets * t.ways
