(** Set-associative LRU cache simulator.

    The paper's headline metric deliberately assumes page-table data is
    never cache-resident (Section 6.1 lists this as the metric's main
    drawback, noting clustered page tables would look even better with
    residency modeled).  This simulator lets us quantify that drawback:
    feed it the line addresses each walk touches and it reports hit
    ratios, turning the paper's qualitative footnote into a measurable
    ablation. *)

type t

val create : ?line_size:int -> sets:int -> ways:int -> unit -> t
(** [sets] and [ways] must be positive; [sets] a power of two.
    Default line size 256 bytes. *)

val access : t -> int64 -> bool
(** [access t addr] touches the line containing byte address [addr];
    returns [true] on hit.  LRU replacement within the set. *)

val access_bytes : t -> addr:int64 -> bytes:int -> int * int
(** Touch every line of a byte range; returns (hits, misses). *)

val hits : t -> int

val misses : t -> int

val hit_ratio : t -> float

val flush : t -> unit
(** Invalidate all lines and reset statistics. *)

val capacity_bytes : t -> int
