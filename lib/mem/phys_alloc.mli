(** Physical page allocator with page reservation [Tall94].

    Superpage and partial-subblock PTEs require *properly placed*
    physical pages: the page backing block offset [i] of a virtual page
    block must sit at offset [i] of an aligned physical block.  The
    reservation policy achieves this: the first fault in a virtual page
    block reserves a whole aligned physical block and later faults in
    the same virtual block take their properly-placed frame from the
    reservation.  Under memory pressure (no aligned block free) the
    allocator degrades to single-frame allocation, and existing
    reservations can be preempted: their unused frames are reclaimed
    while the used ones stay where they are (no page migration). *)

type t

type stats = {
  reservations_made : int;
  reservation_hits : int;  (** pages placed inside an existing reservation *)
  fallback_allocs : int;  (** single frames allocated without reservation *)
  preemptions : int;  (** reservations whose unused frames were reclaimed *)
}

val create : total_pages:int -> subblock_factor:int -> t
(** [total_pages] must be a multiple of [subblock_factor]; the factor a
    power of two. *)

val alloc_page : t -> vpn:int64 -> int64 option
(** Allocate a frame for virtual page [vpn], preferring the properly-
    placed frame of [vpn]'s block reservation.  [None] only when
    physical memory is exhausted — or when an installed {!Fault} plan
    arms [Alloc_phys] for the current operation, which is
    indistinguishable from exhaustion to callers. *)

val free_page : t -> vpn:int64 -> ppn:int64 -> unit
(** Release the frame backing [vpn].  When the last used frame of a
    reservation goes away the whole block returns to the buddy pool. *)

val properly_placed : t -> vpn:int64 -> ppn:int64 -> bool
(** Whether this (vpn, ppn) pair has matching block offsets. *)

val subblock_factor : t -> int

val free_pages : t -> int

val stats : t -> stats
