type t = {
  base : int64;
  mutable next : int64;
  mutable live : int;
  mutable total : int;
  free_lists : (int * int, int64 list ref) Hashtbl.t;
  lock : Mutex.t;
      (* tables sharing one arena may now be driven from several
         domains (per-bucket locking covers the chains, not the
         allocator), so the allocator itself must be serialized *)
}

let create ?(base = 0x1000_0000L) () =
  {
    base;
    next = base;
    live = 0;
    total = 0;
    free_lists = Hashtbl.create 16;
    lock = Mutex.create ();
  }

let check_class bytes align =
  if bytes <= 0 then invalid_arg "Sim_memory: bytes must be positive";
  if not (Addr.Bits.is_pow2 align) then
    invalid_arg "Sim_memory: align must be a power of two"

let free_list t bytes align =
  match Hashtbl.find_opt t.free_lists (bytes, align) with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add t.free_lists (bytes, align) l;
      l

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let alloc t ~bytes ~align =
  check_class bytes align;
  locked t (fun () ->
      t.live <- t.live + bytes;
      let fl = free_list t bytes align in
      match !fl with
      | addr :: rest ->
          fl := rest;
          addr
      | [] ->
          let shift = Addr.Bits.log2_exact align in
          let addr = Addr.Bits.align_up t.next shift in
          t.next <- Int64.add addr (Int64.of_int bytes);
          t.total <- t.total + bytes;
          addr)

let free t ~addr ~bytes ~align =
  check_class bytes align;
  locked t (fun () ->
      t.live <- t.live - bytes;
      let fl = free_list t bytes align in
      fl := addr :: !fl)

let live_bytes t = t.live

let total_allocated_bytes t = t.total

let reset t =
  locked t (fun () ->
      t.next <- t.base;
      t.live <- 0;
      t.total <- 0;
      Hashtbl.reset t.free_lists)
