type access = { addr : int64; bytes : int }

let default_line_size = 256

let check_line_size line_size =
  if not (Addr.Bits.is_pow2 line_size) then
    invalid_arg "Cache_model: line size must be a power of two"

let lines_of_access ~line_size a =
  check_line_size line_size;
  if a.bytes <= 0 then invalid_arg "Cache_model: access bytes";
  let shift = Addr.Bits.log2_exact line_size in
  let first = Int64.shift_right_logical a.addr shift in
  let last_byte = Int64.add a.addr (Int64.of_int (a.bytes - 1)) in
  let last = Int64.shift_right_logical last_byte shift in
  let rec loop l acc =
    if Int64.compare l first < 0 then acc else loop (Int64.pred l) (l :: acc)
  in
  loop last []

let lines_set ~line_size accesses =
  check_line_size line_size;
  List.concat_map (lines_of_access ~line_size) accesses
  |> List.sort_uniq Int64.compare

let distinct_lines ~line_size accesses =
  List.length (lines_set ~line_size accesses)

type counter = {
  line_size : int;
  mutable walks : int;
  mutable total_lines : int;
  mutable scratch : int64 array;
      (* line numbers of the walk being counted; reused across walks *)
}

let create_counter ?(line_size = default_line_size) () =
  check_line_size line_size;
  { line_size; walks = 0; total_lines = 0; scratch = Array.make 64 0L }

let record_walk c accesses =
  let n = distinct_lines ~line_size:c.line_size accesses in
  c.walks <- c.walks + 1;
  c.total_lines <- c.total_lines + n;
  n

(* Count the distinct lines touched by an accumulated walk without
   allocating: expand every access into line numbers in the counter's
   scratch array, insertion-sort it (walks touch a handful of lines),
   and count unique entries. *)
let record_acc c (acc : Walk_acc.t) =
  let shift = Addr.Bits.log2_exact c.line_size in
  let m = ref 0 in
  for i = 0 to Walk_acc.count acc - 1 do
    let addr = Walk_acc.addr acc i and bytes = Walk_acc.bytes acc i in
    if bytes <= 0 then invalid_arg "Cache_model: access bytes";
    let first = Int64.shift_right_logical addr shift in
    let last =
      Int64.shift_right_logical (Int64.add addr (Int64.of_int (bytes - 1))) shift
    in
    let l = ref first in
    while Int64.compare !l last <= 0 do
      if !m = Array.length c.scratch then begin
        let bigger = Array.make (2 * !m) 0L in
        Array.blit c.scratch 0 bigger 0 !m;
        c.scratch <- bigger
      end;
      c.scratch.(!m) <- !l;
      incr m;
      l := Int64.succ !l
    done
  done;
  let lines = c.scratch and n = !m in
  for i = 1 to n - 1 do
    let v = lines.(i) in
    let j = ref i in
    while !j > 0 && Int64.compare lines.(!j - 1) v > 0 do
      lines.(!j) <- lines.(!j - 1);
      decr j
    done;
    lines.(!j) <- v
  done;
  let distinct = ref (if n = 0 then 0 else 1) in
  for i = 1 to n - 1 do
    if not (Int64.equal lines.(i) lines.(i - 1)) then incr distinct
  done;
  c.walks <- c.walks + 1;
  c.total_lines <- c.total_lines + !distinct;
  !distinct

let record_lines c n =
  c.walks <- c.walks + 1;
  c.total_lines <- c.total_lines + n

let walks c = c.walks

let total_lines c = c.total_lines

let mean_lines c =
  if c.walks = 0 then 0.0 else float_of_int c.total_lines /. float_of_int c.walks

let line_size c = c.line_size
