type access = { addr : int64; bytes : int }

let default_line_size = 256

let check_line_size line_size =
  if not (Addr.Bits.is_pow2 line_size) then
    invalid_arg "Cache_model: line size must be a power of two"

let lines_of_access ~line_size a =
  check_line_size line_size;
  if a.bytes <= 0 then invalid_arg "Cache_model: access bytes";
  let shift = Addr.Bits.log2_exact line_size in
  let first = Int64.shift_right_logical a.addr shift in
  let last_byte = Int64.add a.addr (Int64.of_int (a.bytes - 1)) in
  let last = Int64.shift_right_logical last_byte shift in
  let rec loop l acc =
    if Int64.compare l first < 0 then acc else loop (Int64.pred l) (l :: acc)
  in
  loop last []

let lines_set ~line_size accesses =
  check_line_size line_size;
  List.concat_map (lines_of_access ~line_size) accesses
  |> List.sort_uniq Int64.compare

let distinct_lines ~line_size accesses =
  List.length (lines_set ~line_size accesses)

type counter = {
  line_size : int;
  mutable walks : int;
  mutable total_lines : int;
}

let create_counter ?(line_size = default_line_size) () =
  check_line_size line_size;
  { line_size; walks = 0; total_lines = 0 }

let record_walk c accesses =
  let n = distinct_lines ~line_size:c.line_size accesses in
  c.walks <- c.walks + 1;
  c.total_lines <- c.total_lines + n;
  n

let record_lines c n =
  c.walks <- c.walks + 1;
  c.total_lines <- c.total_lines + n

let walks c = c.walks

let total_lines c = c.total_lines

let mean_lines c =
  if c.walks = 0 then 0.0 else float_of_int c.total_lines /. float_of_int c.walks

let line_size c = c.line_size
