(** Cache-line accounting: the paper's access-time metric.

    Section 6.1 measures "the average number of cache lines accessed to
    handle one TLB miss", assuming a 256-byte level-two line and that
    page-table data is not resident.  A walk reports the byte ranges it
    read; this module folds them into the set of distinct lines. *)

type access = { addr : int64; bytes : int }
(** One memory read of [bytes] bytes starting at physical byte address
    [addr]. *)

val default_line_size : int
(** 256 bytes, the paper's assumption. *)

val lines_of_access : line_size:int -> access -> int64 list
(** Line indices (address / line size) covered by one access, in
    ascending order. *)

val distinct_lines : line_size:int -> access list -> int
(** Number of distinct cache lines touched by a walk. *)

val lines_set : line_size:int -> access list -> int64 list
(** The distinct line indices themselves (sorted), for tests. *)

type counter
(** Accumulates the per-miss metric over a run. *)

val create_counter : ?line_size:int -> unit -> counter

val record_walk : counter -> access list -> int
(** Record one TLB miss's walk; returns the lines it touched. *)

val record_acc : counter -> Walk_acc.t -> int
(** Like {!record_walk}, but reads the accesses out of a reusable
    accumulator without allocating (in-place scratch sort). *)

val record_lines : counter -> int -> unit
(** Record a walk whose line count was computed elsewhere (e.g. the
    linear page table's reserved-TLB-entry model). *)

val walks : counter -> int

val total_lines : counter -> int

val mean_lines : counter -> float
(** Average lines per recorded walk; 0 if none. *)

val line_size : counter -> int
