type reservation = {
  base_ppn : int64;
  mutable used_mask : int; (* bit i: frame at offset i handed out *)
}

type stats = {
  reservations_made : int;
  reservation_hits : int;
  fallback_allocs : int;
  preemptions : int;
}

type t = {
  buddy : Buddy.t;
  factor : int;
  order : int;
  reservations : (int64, reservation) Hashtbl.t; (* vpbn -> reservation *)
  (* loose frames handed out individually, so free_page can tell them
     from reservation frames *)
  loose : (int64, unit) Hashtbl.t; (* ppn -> () *)
  mutable reservations_made : int;
  mutable reservation_hits : int;
  mutable fallback_allocs : int;
  mutable preemptions : int;
}

let create ~total_pages ~subblock_factor =
  if not (Addr.Bits.is_pow2 subblock_factor) then
    invalid_arg "Phys_alloc: subblock factor must be a power of two";
  let order = Addr.Bits.log2_exact subblock_factor in
  {
    buddy = Buddy.create ~total_pages ~max_order:order;
    factor = subblock_factor;
    order;
    reservations = Hashtbl.create 256;
    loose = Hashtbl.create 256;
    reservations_made = 0;
    reservation_hits = 0;
    fallback_allocs = 0;
    preemptions = 0;
  }

let vpbn_of t vpn = Addr.Vaddr.vpbn_of_vpn ~subblock_factor:t.factor vpn

let boff_of t vpn = Addr.Vaddr.boff_of_vpn ~subblock_factor:t.factor vpn

(* Preempt some reservation: give its unused frames back to the buddy
   pool so a fallback single-frame allocation can succeed.  The used
   frames become loose. *)
let preempt_one t =
  let victim = ref None in
  (try
     Hashtbl.iter
       (fun vpbn r ->
         victim := Some (vpbn, r);
         raise Exit)
       t.reservations
   with Exit -> ());
  match !victim with
  | None -> false
  | Some (vpbn, r) ->
      Hashtbl.remove t.reservations vpbn;
      t.preemptions <- t.preemptions + 1;
      Buddy.split_booking t.buddy ~ppn:r.base_ppn ~order:t.order;
      for i = 0 to t.factor - 1 do
        let ppn = Int64.add r.base_ppn (Int64.of_int i) in
        if r.used_mask land (1 lsl i) <> 0 then Hashtbl.replace t.loose ppn ()
        else Buddy.free t.buddy ~ppn ~order:0
      done;
      true

let rec alloc_single t =
  match Buddy.alloc t.buddy ~order:0 with
  | Some ppn -> Some ppn
  | None -> if preempt_one t then alloc_single t else None

let alloc_page t ~vpn =
  (* injected exhaustion: indistinguishable from real memory pressure,
     so every caller's OOM path is exercised *)
  if Fault.trip Fault.Alloc_phys then None
  else
  let vpbn = vpbn_of t vpn in
  let boff = boff_of t vpn in
  match Hashtbl.find_opt t.reservations vpbn with
  | Some r when r.used_mask land (1 lsl boff) = 0 ->
      r.used_mask <- r.used_mask lor (1 lsl boff);
      t.reservation_hits <- t.reservation_hits + 1;
      Some (Int64.add r.base_ppn (Int64.of_int boff))
  | Some _ ->
      (* offset already in use (double map of same page): hand out a
         loose frame *)
      (match alloc_single t with
      | Some ppn ->
          t.fallback_allocs <- t.fallback_allocs + 1;
          Hashtbl.replace t.loose ppn ();
          Some ppn
      | None -> None)
  | None -> (
      match Buddy.alloc t.buddy ~order:t.order with
      | Some base_ppn ->
          let r = { base_ppn; used_mask = 1 lsl boff } in
          Hashtbl.replace t.reservations vpbn r;
          t.reservations_made <- t.reservations_made + 1;
          Some (Int64.add base_ppn (Int64.of_int boff))
      | None -> (
          match alloc_single t with
          | Some ppn ->
              t.fallback_allocs <- t.fallback_allocs + 1;
              Hashtbl.replace t.loose ppn ();
              Some ppn
          | None -> None))

let free_page t ~vpn ~ppn =
  if Hashtbl.mem t.loose ppn then begin
    Hashtbl.remove t.loose ppn;
    Buddy.free t.buddy ~ppn ~order:0
  end
  else
    let vpbn = vpbn_of t vpn in
    match Hashtbl.find_opt t.reservations vpbn with
    | Some r
      when Int64.equal
             (Addr.Bits.align_down ppn t.order)
             r.base_ppn ->
        let off = Int64.to_int (Int64.sub ppn r.base_ppn) in
        if r.used_mask land (1 lsl off) = 0 then
          invalid_arg "Phys_alloc.free_page: frame not in use";
        r.used_mask <- r.used_mask land lnot (1 lsl off);
        (* a frame freed inside a live reservation stays reserved (it can
           be re-handed-out properly placed); only when the whole block is
           unused does it return to the buddy pool *)
        if r.used_mask = 0 then begin
          Hashtbl.remove t.reservations vpbn;
          Buddy.free t.buddy ~ppn:r.base_ppn ~order:t.order
        end
    | _ -> invalid_arg "Phys_alloc.free_page: unknown frame"

let properly_placed t ~vpn ~ppn =
  Addr.Paddr.properly_placed ~subblock_factor:t.factor ~vpn ~ppn

let subblock_factor t = t.factor

let free_pages t = Buddy.free_pages t.buddy

let stats t =
  {
    reservations_made = t.reservations_made;
    reservation_hits = t.reservation_hits;
    fallback_allocs = t.fallback_allocs;
    preemptions = t.preemptions;
  }
