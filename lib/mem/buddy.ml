type t = {
  max_order : int;
  total_pages : int;
  (* free_blocks.(o) holds base PPNs of free blocks of 2^o frames *)
  free_blocks : (int64, unit) Hashtbl.t array;
  (* outstanding allocations, for double-free detection *)
  allocated : (int64 * int, unit) Hashtbl.t;
  mutable free_pages : int;
}

let create ~total_pages ~max_order =
  if max_order < 0 || max_order > 30 then invalid_arg "Buddy.create: max_order";
  let block = 1 lsl max_order in
  if total_pages <= 0 || total_pages mod block <> 0 then
    invalid_arg "Buddy.create: total_pages must be a positive multiple of 2^max_order";
  let t =
    {
      max_order;
      total_pages;
      free_blocks = Array.init (max_order + 1) (fun _ -> Hashtbl.create 64);
      allocated = Hashtbl.create 64;
      free_pages = total_pages;
    }
  in
  let n_blocks = total_pages / block in
  for i = 0 to n_blocks - 1 do
    Hashtbl.replace t.free_blocks.(max_order) (Int64.of_int (i * block)) ()
  done;
  t

let pop_any tbl =
  let found = ref None in
  (try
     Hashtbl.iter
       (fun k () ->
         found := Some k;
         raise Exit)
       tbl
   with Exit -> ());
  match !found with
  | Some k ->
      Hashtbl.remove tbl k;
      Some k
  | None -> None

let rec alloc_order t order =
  if order > t.max_order then None
  else
    match pop_any t.free_blocks.(order) with
    | Some base -> Some base
    | None -> (
        (* split a larger block *)
        match alloc_order t (order + 1) with
        | None -> None
        | Some base ->
            let buddy = Int64.add base (Int64.of_int (1 lsl order)) in
            Hashtbl.replace t.free_blocks.(order) buddy ();
            Some base)

let alloc t ~order =
  if order < 0 || order > t.max_order then invalid_arg "Buddy.alloc: order";
  match alloc_order t order with
  | None -> None
  | Some base ->
      t.free_pages <- t.free_pages - (1 lsl order);
      Hashtbl.replace t.allocated (base, order) ();
      Some base

let buddy_of base order =
  Int64.logxor base (Int64.of_int (1 lsl order))

let rec insert_and_coalesce t base order =
  if order < t.max_order then begin
    let buddy = buddy_of base order in
    if Hashtbl.mem t.free_blocks.(order) buddy then begin
      Hashtbl.remove t.free_blocks.(order) buddy;
      let merged = if Int64.compare base buddy < 0 then base else buddy in
      insert_and_coalesce t merged (order + 1)
    end
    else Hashtbl.replace t.free_blocks.(order) base ()
  end
  else Hashtbl.replace t.free_blocks.(order) base ()

let free t ~ppn ~order =
  if order < 0 || order > t.max_order then invalid_arg "Buddy.free: order";
  if not (Addr.Bits.is_aligned ppn order) then
    invalid_arg "Buddy.free: misaligned block";
  if not (Hashtbl.mem t.allocated (ppn, order)) then
    invalid_arg "Buddy.free: double free";
  Hashtbl.remove t.allocated (ppn, order);
  t.free_pages <- t.free_pages + (1 lsl order);
  insert_and_coalesce t ppn order

let split_booking t ~ppn ~order =
  if not (Hashtbl.mem t.allocated (ppn, order)) then
    invalid_arg "Buddy.split_booking: block not outstanding";
  Hashtbl.remove t.allocated (ppn, order);
  for i = 0 to (1 lsl order) - 1 do
    Hashtbl.replace t.allocated (Int64.add ppn (Int64.of_int i), 0) ()
  done

let free_pages t = t.free_pages

let largest_free_order t =
  let rec loop o =
    if o < 0 then None
    else if Hashtbl.length t.free_blocks.(o) > 0 then Some o
    else loop (o - 1)
  in
  loop t.max_order

let total_pages t = t.total_pages
