(** Binary buddy allocator over physical page frames.

    Substrate for the page-reservation allocator: reservations need
    naturally-aligned blocks of 2^order frames, which is exactly what a
    buddy system hands out.  Frame numbers are PPNs (page frame
    indices), not byte addresses. *)

type t

val create : total_pages:int -> max_order:int -> t
(** [create ~total_pages ~max_order] manages frames [0, total_pages).
    [total_pages] must be a positive multiple of [2^max_order]. *)

val alloc : t -> order:int -> int64 option
(** Allocate an aligned block of [2^order] frames; returns its base
    PPN, or [None] if no block of that size can be carved out. *)

val free : t -> ppn:int64 -> order:int -> unit
(** Free a block previously allocated at this order.  Buddies coalesce
    eagerly.  Raises [Invalid_argument] on a misaligned base or
    double-free. *)

val split_booking : t -> ppn:int64 -> order:int -> unit
(** Re-register an outstanding block allocation as [2^order] separate
    single-frame allocations, so the frames can be freed individually.
    Used when a reservation is preempted: its used frames live on as
    loose singles.  Raises [Invalid_argument] if the block is not
    outstanding at that order. *)

val free_pages : t -> int
(** Total frames currently free. *)

val largest_free_order : t -> int option
(** Largest order with a free block; [None] when full. *)

val total_pages : t -> int
