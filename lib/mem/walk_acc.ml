(* Reusable walk accumulator for the TLB-miss hot path.

   The original walk representation accumulated every memory read of a
   page-table search in a fresh cons cell ([Types.walk_read] prepended
   to a list).  Under the parallel experiment runner, each domain
   replays hundreds of thousands of misses, and the per-miss list
   churn dominated minor-GC time.  An accumulator is allocated once
   per replay loop and [reset] per miss; [read] only writes into the
   preallocated arrays (growing them by doubling on the rare overflow,
   so the steady state allocates nothing). *)

type t = {
  mutable addrs : int64 array;
  mutable sizes : int array;
  mutable n : int;
  mutable probes : int;
  mutable nested_misses : int;
}

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Walk_acc.create";
  {
    addrs = Array.make capacity 0L;
    sizes = Array.make capacity 0;
    n = 0;
    probes = 0;
    nested_misses = 0;
  }

let reset t =
  t.n <- 0;
  t.probes <- 0;
  t.nested_misses <- 0

let rewind t ~count ~probes ~nested_misses =
  if count < 0 || count > t.n then invalid_arg "Walk_acc.rewind";
  t.n <- count;
  t.probes <- probes;
  t.nested_misses <- nested_misses

let grow t =
  let cap = 2 * Array.length t.addrs in
  let addrs = Array.make cap 0L and sizes = Array.make cap 0 in
  Array.blit t.addrs 0 addrs 0 t.n;
  Array.blit t.sizes 0 sizes 0 t.n;
  t.addrs <- addrs;
  t.sizes <- sizes

let read t ~addr ~bytes =
  if t.n = Array.length t.addrs then grow t;
  t.addrs.(t.n) <- addr;
  t.sizes.(t.n) <- bytes;
  t.n <- t.n + 1

let probe t = t.probes <- t.probes + 1

let add_nested t k = t.nested_misses <- t.nested_misses + k

let count t = t.n

let probes t = t.probes

let nested_misses t = t.nested_misses

let addr t i = t.addrs.(i)

let bytes t i = t.sizes.(i)

let iter t f =
  for i = 0 to t.n - 1 do
    f t.addrs.(i) t.sizes.(i)
  done
