(** Simulated physical memory arena for page-table nodes.

    Every page-table node in this reproduction is *placed* at a concrete
    simulated physical byte address, so the paper's metric — distinct
    cache lines touched during a page-table walk — falls out of real
    addresses rather than assumptions.  The allocator is a bump
    allocator with per-size free lists, which matches how an OS slab
    allocator would lay out fixed-size PTE nodes: consecutive
    allocations of a size class are adjacent in memory.

    Allocation respects the paper's accounting convention that "each
    PTE starts on a cache line boundary" when [align] is the cache-line
    size; callers pick the alignment. *)

type t

val create : ?base:int64 -> unit -> t
(** [create ~base ()] starts the arena at physical byte address [base]
    (default 0x1000_0000, so address 0 never aliases a node). *)

val alloc : t -> bytes:int -> align:int -> int64
(** Allocate [bytes] bytes aligned to [align] (a power of two); returns
    the simulated physical byte address.  Reuses a freed block of the
    same (bytes, align) class when one exists. *)

val free : t -> addr:int64 -> bytes:int -> align:int -> unit
(** Return a block to its size-class free list.  The block must have
    come from [alloc] with the same size and alignment. *)

val live_bytes : t -> int
(** Bytes currently allocated (allocated minus freed). *)

val total_allocated_bytes : t -> int
(** Bytes ever handed out, ignoring frees (high-water bump). *)

val reset : t -> unit
(** Drop everything; the arena restarts at its base. *)
