(** Reusable walk accumulator for the TLB-miss hot path.

    Replaces the list-building walk representation in replay loops:
    allocate one accumulator per loop, [reset] it per miss, and let the
    page table's [lookup_into] append reads and probes into the
    preallocated arrays.  Steady state allocates nothing. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the initial number of reads the accumulator holds
    without growing (default 64); it grows by doubling. *)

val reset : t -> unit
(** Forget all recorded reads, probes and nested misses. *)

val rewind : t -> count:int -> probes:int -> nested_misses:int -> unit
(** Truncate back to a previously observed state ([count] reads,
    [probes], [nested_misses]) without touching the arrays: the undo
    for an optimistic walk that failed validation and must re-run
    without double-charging its reads.  Raises [Invalid_argument] if
    [count] exceeds the current {!count}. *)

val read : t -> addr:int64 -> bytes:int -> unit
(** Append one memory read. *)

val probe : t -> unit
(** Count one more node/level visit. *)

val add_nested : t -> int -> unit
(** Add nested TLB misses (linear page tables). *)

val count : t -> int
(** Number of reads recorded. *)

val probes : t -> int

val nested_misses : t -> int

val addr : t -> int -> int64
(** [addr t i] is the address of the [i]th read, in chronological
    order. *)

val bytes : t -> int -> int

val iter : t -> (int64 -> int -> unit) -> unit
(** Iterate reads in chronological order as [f addr bytes]. *)
