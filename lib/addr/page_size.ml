type t = int (* the shift: log2 of the size in bytes *)

let base_shift = 12

let max_shift = 36

let of_shift s =
  if s < base_shift || s > max_shift then invalid_arg "Page_size.of_shift";
  s

let base = base_shift

let of_bytes n = of_shift (Bits.log2_exact n)

let shift t = t

let bytes t = 1 lsl t

let base_pages t = 1 lsl (t - base_shift)

let sz_code t = t - base_shift

let of_sz_code c = of_shift (c + base_shift)

let equal = Int.equal

let compare = Int.compare

let pp ppf t =
  let b = bytes t in
  if b >= 1 lsl 30 then Format.fprintf ppf "%dGB" (b lsr 30)
  else if b >= 1 lsl 20 then Format.fprintf ppf "%dMB" (b lsr 20)
  else Format.fprintf ppf "%dKB" (b lsr 10)

let kb16 = of_shift 14
let kb64 = of_shift 16
let kb256 = of_shift 18
let mb1 = of_shift 20
let mb4 = of_shift 22
let mb16 = of_shift 24
