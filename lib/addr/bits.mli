(** Bit-field manipulation on [int64] words.

    All page-table entry formats in this library are encoded into 64-bit
    words with explicit field layouts, so correctness of these helpers
    underpins everything else.  Bit positions use little-endian numbering:
    bit 0 is the least significant bit, as in the paper's Figure 1. *)

val mask : int -> int64
(** [mask n] is an [int64] with the low [n] bits set.  [n] must be in
    [0, 64]. *)

val extract : int64 -> lo:int -> width:int -> int64
(** [extract w ~lo ~width] reads the [width]-bit field whose least
    significant bit is at position [lo]. *)

val insert : int64 -> lo:int -> width:int -> int64 -> int64
(** [insert w ~lo ~width v] returns [w] with the [width]-bit field at
    [lo] replaced by the low [width] bits of [v]. *)

val test_bit : int64 -> int -> bool
(** [test_bit w i] is true iff bit [i] of [w] is set. *)

val set_bit : int64 -> int -> int64

val clear_bit : int64 -> int -> int64

val popcount : int64 -> int
(** Number of set bits. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is true iff [n] is a positive power of two. *)

val log2_exact : int -> int
(** [log2_exact n] is [k] such that [n = 2^k].  Raises [Invalid_argument]
    if [n] is not a positive power of two. *)

val align_down : int64 -> int -> int64
(** [align_down x shift] clears the low [shift] bits of [x]. *)

val align_up : int64 -> int -> int64
(** [align_up x shift] rounds [x] up to the next multiple of
    [2^shift]. *)

val is_aligned : int64 -> int -> bool
(** [is_aligned x shift] is true iff the low [shift] bits of [x] are
    zero. *)

val mix64 : int64 -> int64
(** Full-avalanche 64-bit mix (the SplitMix64 finalizer).  Hash
    functions over page numbers must avalanche: sequential VPNs fed to
    a bare multiplicative hash form aliasing arithmetic progressions
    that systematically double chain lengths. *)

val pp_hex : Format.formatter -> int64 -> unit
(** Print as [0x%Lx]. *)
