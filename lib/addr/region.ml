type t = { first_vpn : int64; pages : int }

let make ~first_vpn ~pages =
  if pages < 0 then invalid_arg "Region.make";
  { first_vpn; pages }

let of_addr_range ~start ~bytes =
  if Int64.compare bytes 0L < 0 then invalid_arg "Region.of_addr_range";
  let first_vpn = Vaddr.vpn start in
  let last_byte = Int64.add start (Int64.sub bytes 1L) in
  if bytes = 0L then { first_vpn; pages = 0 }
  else
    let last_vpn = Vaddr.vpn last_byte in
    { first_vpn; pages = Int64.to_int (Int64.sub last_vpn first_vpn) + 1 }

let last_vpn t = Int64.add t.first_vpn (Int64.of_int (t.pages - 1))

let is_empty t = t.pages = 0

let mem t vpn =
  t.pages > 0
  && Int64.unsigned_compare vpn t.first_vpn >= 0
  && Int64.unsigned_compare vpn (last_vpn t) <= 0

let iter_vpns t f =
  for i = 0 to t.pages - 1 do
    f (Int64.add t.first_vpn (Int64.of_int i))
  done

let fold_vpns t ~init ~f =
  let acc = ref init in
  iter_vpns t (fun vpn -> acc := f !acc vpn);
  !acc

let overlap a b =
  (not (is_empty a)) && (not (is_empty b))
  && Int64.unsigned_compare a.first_vpn (last_vpn b) <= 0
  && Int64.unsigned_compare b.first_vpn (last_vpn a) <= 0

let intersect a b =
  if not (overlap a b) then None
  else
    let first =
      if Int64.unsigned_compare a.first_vpn b.first_vpn >= 0 then a.first_vpn
      else b.first_vpn
    in
    let last =
      if Int64.unsigned_compare (last_vpn a) (last_vpn b) <= 0 then last_vpn a
      else last_vpn b
    in
    Some { first_vpn = first; pages = Int64.to_int (Int64.sub last first) + 1 }

let blocks ~subblock_factor t =
  if t.pages = 0 then []
  else begin
    let rec loop vpn remaining acc =
      if remaining = 0 then List.rev acc
      else
        let vpbn = Vaddr.vpbn_of_vpn ~subblock_factor vpn in
        let boff = Vaddr.boff_of_vpn ~subblock_factor vpn in
        let in_block = min remaining (subblock_factor - boff) in
        loop
          (Int64.add vpn (Int64.of_int in_block))
          (remaining - in_block)
          ((vpbn, boff, in_block) :: acc)
    in
    loop t.first_vpn t.pages []
  end

let pp ppf t =
  Format.fprintf ppf "[vpn %Lx..%Lx (%d pages)]" t.first_vpn (last_vpn t)
    t.pages
