(** 64-bit virtual addresses, virtual page numbers (VPN), and virtual
    page-block numbers (VPBN).

    A virtual address splits as [VPN | page offset]; with subblocking the
    VPN further splits as [VPBN | Boff] where the block offset [Boff]
    indexes a base page within its aligned page block (paper, Section 3).
    Addresses are unsigned 64-bit quantities carried in [int64]. *)

type t = int64
(** A virtual address. *)

val of_int64 : int64 -> t

val to_int64 : t -> int64

val vpn : t -> int64
(** Virtual page number: the address shifted right by the base-page
    shift (12). *)

val of_vpn : int64 -> t
(** Address of the first byte of the given base page. *)

val page_offset : t -> int
(** Offset within the 4 KB base page. *)

val vpbn_of_vpn : subblock_factor:int -> int64 -> int64
(** VPBN of a VPN: the VPN shifted right by log2 of the subblock
    factor.  The subblock factor must be a power of two. *)

val boff_of_vpn : subblock_factor:int -> int64 -> int
(** Block offset of a VPN within its page block: the low log2(factor)
    bits of the VPN. *)

val vpn_of_vpbn : subblock_factor:int -> int64 -> boff:int -> int64
(** Reassemble a VPN from a VPBN and block offset. *)

val vpbn : subblock_factor:int -> t -> int64
(** VPBN of an address ([vpbn_of_vpn] of its VPN). *)

val boff : subblock_factor:int -> t -> int
(** Block offset of an address. *)

val align : Page_size.t -> t -> t
(** Round an address down to the given page-size boundary. *)

val is_aligned : Page_size.t -> t -> bool

val add_pages : t -> int -> t
(** [add_pages a n] advances [a] by [n] base pages. *)

val add_bytes : t -> int64 -> t

val equal : t -> t -> bool

val compare : t -> t -> int
(** Unsigned comparison. *)

val pp : Format.formatter -> t -> unit
