(** Contiguous virtual-address regions, page-granular.

    Workload snapshots and OS range operations (protect, unmap) work on
    regions.  A region is a half-open page range [\[first_vpn,
    first_vpn + pages)]. *)

type t = { first_vpn : int64; pages : int }

val make : first_vpn:int64 -> pages:int -> t
(** Raises [Invalid_argument] if [pages < 0]. *)

val of_addr_range : start:Vaddr.t -> bytes:int64 -> t
(** Smallest page-granular region covering [\[start, start + bytes)]. *)

val last_vpn : t -> int64
(** VPN of the last page; meaningless for empty regions. *)

val is_empty : t -> bool

val mem : t -> int64 -> bool
(** [mem r vpn] is true iff the page [vpn] lies in [r]. *)

val iter_vpns : t -> (int64 -> unit) -> unit
(** Apply to each VPN in ascending order. *)

val fold_vpns : t -> init:'a -> f:('a -> int64 -> 'a) -> 'a

val overlap : t -> t -> bool

val intersect : t -> t -> t option

val blocks : subblock_factor:int -> t -> (int64 * int * int) list
(** [blocks ~subblock_factor r] decomposes [r] into its page blocks:
    a list of [(vpbn, first_boff, count)] triples in ascending VPBN
    order, where the block [vpbn] contributes pages at block offsets
    [\[first_boff, first_boff + count)].  Range operations on clustered
    page tables walk this decomposition: one hash search per block
    rather than one per base page (paper, Section 3.1). *)

val pp : Format.formatter -> t -> unit
