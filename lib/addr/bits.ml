let mask n =
  if n < 0 || n > 64 then invalid_arg "Bits.mask"
  else if n = 64 then -1L
  else Int64.sub (Int64.shift_left 1L n) 1L

let extract w ~lo ~width =
  if lo < 0 || width < 0 || lo + width > 64 then invalid_arg "Bits.extract";
  Int64.logand (Int64.shift_right_logical w lo) (mask width)

let insert w ~lo ~width v =
  if lo < 0 || width < 0 || lo + width > 64 then invalid_arg "Bits.insert";
  let field_mask = Int64.shift_left (mask width) lo in
  let cleared = Int64.logand w (Int64.lognot field_mask) in
  let value = Int64.shift_left (Int64.logand v (mask width)) lo in
  Int64.logor cleared value

let test_bit w i = Int64.logand (Int64.shift_right_logical w i) 1L = 1L

let set_bit w i = Int64.logor w (Int64.shift_left 1L i)

let clear_bit w i = Int64.logand w (Int64.lognot (Int64.shift_left 1L i))

let popcount w =
  let rec loop w acc =
    if w = 0L then acc
    else loop (Int64.shift_right_logical w 1) (acc + Int64.to_int (Int64.logand w 1L))
  in
  loop w 0

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  if not (is_pow2 n) then invalid_arg "Bits.log2_exact";
  let rec loop n k = if n = 1 then k else loop (n lsr 1) (k + 1) in
  loop n 0

let align_down x shift = Int64.logand x (Int64.lognot (mask shift))

let align_up x shift =
  let m = mask shift in
  Int64.logand (Int64.add x m) (Int64.lognot m)

let is_aligned x shift = Int64.logand x (mask shift) = 0L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let pp_hex ppf w = Format.fprintf ppf "0x%Lx" w
