type t = int64

let ppn a = Int64.shift_right_logical a Page_size.base_shift

let of_ppn p = Int64.shift_left p Page_size.base_shift

let page_offset a =
  Int64.to_int (Bits.extract a ~lo:0 ~width:Page_size.base_shift)

let ppn_width = 28

let max_ppn = Bits.mask ppn_width

let ppbn_of_ppn ~subblock_factor ppn =
  Vaddr.vpbn_of_vpn ~subblock_factor ppn

let properly_placed ~subblock_factor ~vpn ~ppn =
  Vaddr.boff_of_vpn ~subblock_factor vpn
  = Vaddr.boff_of_vpn ~subblock_factor ppn

let equal = Int64.equal

let compare = Int64.unsigned_compare

let pp = Bits.pp_hex
