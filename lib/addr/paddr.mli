(** Physical addresses and physical page numbers (PPN).

    The paper assumes 40-bit physical addresses with 4 KB pages, giving a
    28-bit PPN (Figure 1).  We keep the full address in an [int64] and
    validate the PPN width at PTE-encoding time (see {!Pte}). *)

type t = int64
(** A physical address. *)

val ppn : t -> int64
(** Physical page number: the address shifted right by 12. *)

val of_ppn : int64 -> t

val page_offset : t -> int

val ppn_width : int
(** 28: bits available for the PPN in a PTE (40-bit physical address
    space). *)

val max_ppn : int64
(** Largest encodable PPN. *)

val ppbn_of_ppn : subblock_factor:int -> int64 -> int64
(** Physical page-block number: PPN shifted right by log2 factor.  Used
    to decide proper placement for partial-subblock PTEs. *)

val properly_placed : subblock_factor:int -> vpn:int64 -> ppn:int64 -> bool
(** True iff the physical page sits at the same block offset as its
    virtual page, i.e. the pair can be covered by a partial-subblock or
    superpage mapping (paper, Section 4.1). *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
