type t = int64

let of_int64 x = x

let to_int64 x = x

let vpn a = Int64.shift_right_logical a Page_size.base_shift

let of_vpn v = Int64.shift_left v Page_size.base_shift

let page_offset a =
  Int64.to_int (Bits.extract a ~lo:0 ~width:Page_size.base_shift)

let check_factor subblock_factor =
  if not (Bits.is_pow2 subblock_factor) then
    invalid_arg "Vaddr: subblock factor must be a power of two"

let vpbn_of_vpn ~subblock_factor vpn =
  check_factor subblock_factor;
  Int64.shift_right_logical vpn (Bits.log2_exact subblock_factor)

let boff_of_vpn ~subblock_factor vpn =
  check_factor subblock_factor;
  Int64.to_int (Bits.extract vpn ~lo:0 ~width:(Bits.log2_exact subblock_factor))

let vpn_of_vpbn ~subblock_factor vpbn ~boff =
  check_factor subblock_factor;
  if boff < 0 || boff >= subblock_factor then invalid_arg "Vaddr.vpn_of_vpbn";
  Int64.logor
    (Int64.shift_left vpbn (Bits.log2_exact subblock_factor))
    (Int64.of_int boff)

let vpbn ~subblock_factor a = vpbn_of_vpn ~subblock_factor (vpn a)

let boff ~subblock_factor a = boff_of_vpn ~subblock_factor (vpn a)

let align size a = Bits.align_down a (Page_size.shift size)

let is_aligned size a = Bits.is_aligned a (Page_size.shift size)

let add_pages a n =
  Int64.add a (Int64.of_int (n lsl Page_size.base_shift))

let add_bytes = Int64.add

let equal = Int64.equal

let compare = Int64.unsigned_compare

let pp = Bits.pp_hex
