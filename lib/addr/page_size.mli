(** Page sizes.

    The base page is 4 KB, as in the paper.  Superpages are power-of-two
    multiples of the base page (16 KB, 64 KB, ..., 16 MB on the MIPS
    R4000).  A page size is represented by its shift (log2 of its size in
    bytes) so alignment checks are cheap. *)

type t
(** A page size.  Always a power of two and at least the base page. *)

val base_shift : int
(** 12: the base page is 4 KB. *)

val base : t
(** The 4 KB base page. *)

val of_shift : int -> t
(** [of_shift s] is the page size of [2^s] bytes.  Raises
    [Invalid_argument] if [s < base_shift] or [s > 36] (64 GB cap, far
    beyond any page size the paper considers). *)

val of_bytes : int -> t
(** [of_bytes n] is the page size of [n] bytes; [n] must be a power of
    two in range. *)

val shift : t -> int

val bytes : t -> int

val base_pages : t -> int
(** Number of 4 KB base pages covered by one page of this size. *)

val sz_code : t -> int
(** Encoding for the 4-bit SZ field of superpage PTEs (Figure 6):
    [log2 (size / base_size)].  0 for a base page, 4 for 64 KB. *)

val of_sz_code : int -> t
(** Inverse of {!sz_code}. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints e.g. "4KB", "64KB", "1MB". *)

val kb16 : t
val kb64 : t
val kb256 : t
val mb1 : t
val mb4 : t
val mb16 : t
(** The MIPS R4000 superpage sizes, used in tests and examples. *)
