module Types = Pt_common.Types

(* The frame table uses parallel unboxed arrays: a 2M-frame table must
   not cost hundreds of megabytes of OCaml records.  Each frame entry
   models 16 bytes of simulated memory (tag+attr word, chain link). *)
type t = {
  slots : int;
  frames_n : int;
  anchors_addr : int64;
  table_addr : int64;
  anchors : int array; (* head frame index per bucket, or -1 *)
  vpns : int64 array;
  attrs : int array; (* 12-bit attr encodings *)
  used : Bytes.t;
  next : int array; (* next frame in chain, or -1 *)
  (* who points at this entry (for O(1) unlink): -1 free, -2-b anchor
     of bucket b, p >= 0 the frame p *)
  prev : int array;
  mutable used_count : int;
}

let name = "inverted"

let entry_bytes = 16

let create ?arena ?(slots = 4096) ?(frames = 65536) () =
  if not (Addr.Bits.is_pow2 slots) then
    invalid_arg "Inverted_pt: slots must be a power of two";
  if frames <= 0 then invalid_arg "Inverted_pt: frames must be positive";
  let arena =
    match arena with Some a -> a | None -> Mem.Sim_memory.create ()
  in
  let anchors_addr = Mem.Sim_memory.alloc arena ~bytes:(slots * 8) ~align:4096 in
  let table_addr =
    Mem.Sim_memory.alloc arena ~bytes:(frames * entry_bytes) ~align:4096
  in
  {
    slots;
    frames_n = frames;
    anchors_addr;
    table_addr;
    anchors = Array.make slots (-1);
    vpns = Array.make frames 0L;
    attrs = Array.make frames 0;
    used = Bytes.make frames '\000';
    next = Array.make frames (-1);
    prev = Array.make frames (-1);
    used_count = 0;
  }

let frames t = t.frames_n

let is_used t i = Bytes.get t.used i <> '\000'

let hash t vpn =
  Int64.to_int
    (Int64.shift_right_logical (Addr.Bits.mix64 vpn)
       (64 - Addr.Bits.log2_exact t.slots))

let anchor_addr t bucket = Int64.add t.anchors_addr (Int64.of_int (8 * bucket))

let entry_addr t i = Int64.add t.table_addr (Int64.of_int (entry_bytes * i))

let lookup t ~vpn =
  let bucket = hash t vpn in
  (* the anchor dereference is a real memory read here *)
  let walk =
    Types.walk_read Types.empty_walk ~addr:(anchor_addr t bucket) ~bytes:8
  in
  let rec go i walk =
    if i < 0 then (None, walk)
    else
      let walk =
        Types.walk_probe
          (Types.walk_read walk ~addr:(entry_addr t i) ~bytes:entry_bytes)
      in
      if is_used t i && Int64.equal t.vpns.(i) vpn then
        ( Some
            (Types.base_translation ~vpn ~ppn:(Int64.of_int i)
               ~attr:(Pte.Attr.of_bits (Int64.of_int t.attrs.(i)))),
          walk )
      else go t.next.(i) walk
  in
  go t.anchors.(bucket) walk

(* Cold path: translated through the legacy walk, then replayed into
   the caller's accumulator. *)
let lookup_into t acc ~vpn =
  let tr, w = lookup t ~vpn in
  Types.acc_add_walk acc w;
  tr

let lookup_block t ~vpn ~subblock_factor =
  let base =
    Int64.mul
      (Int64.div vpn (Int64.of_int subblock_factor))
      (Int64.of_int subblock_factor)
  in
  let results = ref [] and walk = ref Types.empty_walk in
  for i = subblock_factor - 1 downto 0 do
    let page = Int64.add base (Int64.of_int i) in
    let tr, w = lookup t ~vpn:page in
    walk := Types.walk_join w !walk;
    match tr with Some tr -> results := (i, tr) :: !results | None -> ()
  done;
  (!results, !walk)

(* unlink frame [i] from its chain in O(1) via the back pointer *)
let unlink t i =
  let p = t.prev.(i) in
  (if p >= 0 then t.next.(p) <- t.next.(i)
   else if p <= -2 then t.anchors.(-2 - p) <- t.next.(i));
  if t.next.(i) >= 0 then t.prev.(t.next.(i)) <- p;
  Bytes.set t.used i '\000';
  t.next.(i) <- -1;
  t.prev.(i) <- -1;
  t.used_count <- t.used_count - 1

let find_frame t vpn =
  let rec go i =
    if i < 0 then None
    else if is_used t i && Int64.equal t.vpns.(i) vpn then Some i
    else go t.next.(i)
  in
  go t.anchors.(hash t vpn)

let remove t ~vpn =
  match find_frame t vpn with Some i -> unlink t i | None -> ()

let insert_base t ~vpn ~ppn ~attr =
  let i = Int64.to_int ppn in
  if i < 0 || i >= t.frames_n then
    invalid_arg "Inverted_pt.insert_base: frame out of range";
  (* a vpn maps to one frame and a frame holds one mapping: reclaim
     both sides first *)
  remove t ~vpn;
  if is_used t i then unlink t i;
  let bucket = hash t vpn in
  t.vpns.(i) <- vpn;
  t.attrs.(i) <- Int64.to_int (Pte.Attr.to_bits attr);
  Bytes.set t.used i '\001';
  t.next.(i) <- t.anchors.(bucket);
  t.prev.(i) <- -2 - bucket;
  if t.next.(i) >= 0 then t.prev.(t.next.(i)) <- i;
  t.anchors.(bucket) <- i;
  t.used_count <- t.used_count + 1

let insert_superpage _ ~vpn:_ ~size:_ ~ppn:_ ~attr:_ =
  invalid_arg "Inverted_pt: superpages unsupported"

let insert_psb _ ~vpbn:_ ~vmask:_ ~ppn:_ ~attr:_ =
  invalid_arg "Inverted_pt: partial-subblocks unsupported"

let set_attr_range t region ~f =
  let searches = ref 0 in
  Addr.Region.iter_vpns region (fun vpn ->
      incr searches;
      match find_frame t vpn with
      | Some i ->
          t.attrs.(i) <-
            Int64.to_int
              (Pte.Attr.to_bits (f (Pte.Attr.of_bits (Int64.of_int t.attrs.(i)))))
      | None -> ());
  !searches

let size_bytes t = (t.slots * 8) + (t.frames_n * entry_bytes)

let population t = t.used_count

let clear t =
  Array.fill t.anchors 0 t.slots (-1);
  Bytes.fill t.used 0 t.frames_n '\000';
  Array.fill t.next 0 t.frames_n (-1);
  Array.fill t.prev 0 t.frames_n (-1);
  t.used_count <- 0
