module Types = Pt_common.Types

type sp_mode =
  | No_superpages
  | Two_tables of { coarse_first : bool }
  | Superpage_index

type node = {
  mutable tag : int64;
  mutable word : int64;
  addr : int64;
  mutable next : node option;
}

type t = {
  arena : Mem.Sim_memory.t;
  mode : sp_mode;
  buckets : int;
  factor : int;
  factor_bits : int;
  node_bytes : int;
  node_align : int;
  fine : node option array;
  fine_heads_addr : int64;
      (* the bucket array embeds first nodes (Figure 4: "an array of
         hash nodes"), so probing an empty bucket still reads a line *)
  (* Two_tables mode only; empty array otherwise *)
  coarse : node option array;
  coarse_heads_addr : int64;
  (* atomic: concurrent mutators serialize per bucket (lib/service),
     and the node counts are the only cross-bucket mutable state *)
  fine_nodes : int Atomic.t;
  coarse_nodes : int Atomic.t;
}

let name = "hashed"

let node_align_default = 256

let create ?arena ?(buckets = 4096) ?(subblock_factor = 16) ?(packed = false)
    ?(mode = No_superpages) () =
  if not (Addr.Bits.is_pow2 buckets) then
    invalid_arg "Hashed_pt: buckets must be a power of two";
  if not (Addr.Bits.is_pow2 subblock_factor) then
    invalid_arg "Hashed_pt: subblock factor must be a power of two";
  let arena =
    match arena with Some a -> a | None -> Mem.Sim_memory.create ()
  in
  let node_bytes = if packed then 16 else 24 in
  let fine_heads_addr =
    Mem.Sim_memory.alloc arena ~bytes:(buckets * node_bytes) ~align:4096
  in
  let coarse, coarse_heads_addr =
    match mode with
    | Two_tables _ ->
        ( Array.make buckets None,
          Mem.Sim_memory.alloc arena ~bytes:(buckets * node_bytes) ~align:4096
        )
    | No_superpages | Superpage_index -> ([||], 0L)
  in
  {
    arena;
    mode;
    buckets;
    factor = subblock_factor;
    factor_bits = Addr.Bits.log2_exact subblock_factor;
    node_bytes;
    node_align = node_align_default;
    fine = Array.make buckets None;
    fine_heads_addr;
    coarse;
    coarse_heads_addr;
    fine_nodes = Atomic.make 0;
    coarse_nodes = Atomic.make 0;
  }

let mode t = t.mode

let hash t key =
  let bits = Addr.Bits.log2_exact t.buckets in
  if bits = 0 then 0
  else
    Int64.to_int (Int64.shift_right_logical (Addr.Bits.mix64 key) (64 - bits))

let vpbn t vpn = Int64.shift_right_logical vpn t.factor_bits

let boff t vpn =
  Int64.to_int (Addr.Bits.extract vpn ~lo:0 ~width:t.factor_bits)

let block_base t vpn = Int64.shift_left (vpbn t vpn) t.factor_bits

let factor_mask t = (1 lsl t.factor) - 1

let alloc_node t ~coarse:_ ~tag ~word =
  let addr =
    Mem.Sim_memory.alloc t.arena ~bytes:t.node_bytes ~align:t.node_align
  in
  { tag; word; addr; next = None }

let release_node t n =
  Mem.Sim_memory.free t.arena ~addr:n.addr ~bytes:t.node_bytes
    ~align:t.node_align

(* --- translations --- *)

let translation_of_word t ~vpn word =
  Pt_common.Decode.translation_of_word ~subblock_factor:t.factor ~vpn word

(* Does a node in the coarse or superpage-index table match [vpn]? *)
let node_matches t ~vpn n =
  match Pte.Word.decode n.word with
  | Pte.Word.Base b -> b.valid && Int64.equal n.tag vpn
  | Pte.Word.Superpage sp ->
      sp.valid
      &&
      let sz = Addr.Page_size.sz_code sp.size in
      Int64.equal n.tag (Addr.Bits.align_down vpn sz)
  | Pte.Word.Psb p ->
      Int64.equal n.tag (block_base t vpn)
      && Pte.Psb_pte.valid_at p ~boff:(boff t vpn)

(* --- chain search, charging reads into the caller's accumulator --- *)

(* A probe reads a node's tag and next pointer (16 bytes); interpreting
   the mapping reads its word (8 more bytes in the same node). *)
let probe acc n =
  Mem.Walk_acc.read acc ~addr:n.addr ~bytes:16;
  Mem.Walk_acc.probe acc

let read_word acc n = Mem.Walk_acc.read acc ~addr:(Int64.add n.addr 16L) ~bytes:8

(* An empty bucket still costs one read of its embedded head node. *)
let charge_empty_head t ~heads_addr ~bucket acc =
  Mem.Walk_acc.read acc
    ~addr:(Int64.add heads_addr (Int64.of_int (bucket * t.node_bytes)))
    ~bytes:16;
  Mem.Walk_acc.probe acc

let search_fine t acc ~vpn =
  let rec go chain =
    match chain with
    | None -> None
    | Some n ->
        probe acc n;
        if Int64.equal n.tag vpn then begin
          read_word acc n;
          match translation_of_word t ~vpn n.word with
          | Some _ as tr -> tr
          | None -> go n.next
        end
        else go n.next
  in
  let bucket = hash t vpn in
  match t.fine.(bucket) with
  | None ->
      charge_empty_head t ~heads_addr:t.fine_heads_addr ~bucket acc;
      None
  | chain -> go chain

let search_coarse t acc ~vpn =
  let rec go chain =
    match chain with
    | None -> None
    | Some n ->
        probe acc n;
        if Int64.equal n.tag (vpbn t vpn) then begin
          read_word acc n;
          match translation_of_word t ~vpn n.word with
          | Some _ as tr -> tr
          | None -> go n.next
        end
        else go n.next
  in
  let bucket = hash t (vpbn t vpn) in
  match t.coarse.(bucket) with
  | None ->
      charge_empty_head t ~heads_addr:t.coarse_heads_addr ~bucket acc;
      None
  | chain -> go chain

let search_spindex t acc ~vpn =
  let rec go chain =
    match chain with
    | None -> None
    | Some n ->
        probe acc n;
        if node_matches t ~vpn n then begin
          read_word acc n;
          match translation_of_word t ~vpn n.word with
          | Some _ as tr -> tr
          | None -> go n.next
        end
        else go n.next
  in
  let bucket = hash t (vpbn t vpn) in
  match t.fine.(bucket) with
  | None ->
      charge_empty_head t ~heads_addr:t.fine_heads_addr ~bucket acc;
      None
  | chain -> go chain

let lookup_into t acc ~vpn =
  match t.mode with
  | No_superpages -> search_fine t acc ~vpn
  | Superpage_index -> search_spindex t acc ~vpn
  | Two_tables { coarse_first } ->
      let first, second =
        if coarse_first then (search_coarse, search_fine)
        else (search_fine, search_coarse)
      in
      (match first t acc ~vpn with
      | Some _ as tr -> tr
      | None -> second t acc ~vpn)

let lookup t ~vpn =
  let acc = Mem.Walk_acc.create ~capacity:8 () in
  let tr = lookup_into t acc ~vpn in
  (tr, Types.acc_to_walk acc)

let lookup_block t ~vpn ~subblock_factor =
  (* One probe per base page: the cost that makes complete-subblock
     prefetch "terrible" for hashed tables (Section 6.3 / Figure 11d).
     Pages already covered by a found multi-page entry are skipped. *)
  let base =
    Int64.mul
      (Int64.div vpn (Int64.of_int subblock_factor))
      (Int64.of_int subblock_factor)
  in
  let covered = Array.make subblock_factor false in
  let results = ref [] and walk = ref Types.empty_walk in
  for i = 0 to subblock_factor - 1 do
    if not covered.(i) then begin
      let page = Int64.add base (Int64.of_int i) in
      let tr, w = lookup t ~vpn:page in
      walk := Types.walk_join !walk w;
      match tr with
      | None -> ()
      | Some tr ->
          results := (i, tr) :: !results;
          (* mark the other pages this entry maps *)
          (match tr.Types.kind with
          | Types.Base -> ()
          | Types.Superpage _ | Types.Partial_subblock _ ->
              let first = Int64.sub tr.Types.vpn_base base in
              let span = Types.covered_pages tr in
              (match tr.Types.kind with
              | Types.Partial_subblock vmask ->
                  for j = 0 to subblock_factor - 1 do
                    let idx = Int64.to_int first + j in
                    if
                      vmask land (1 lsl j) <> 0
                      && idx >= 0
                      && idx < subblock_factor
                    then begin
                      covered.(idx) <- true;
                      if idx <> i then
                        results :=
                          (idx, { tr with
                                  Types.vpn = Int64.add base (Int64.of_int idx);
                                  ppn = Int64.add tr.Types.ppn_base (Int64.of_int j) })
                          :: !results
                    end
                  done
              | _ ->
                  for j = 0 to span - 1 do
                    let idx = Int64.to_int first + j in
                    if idx >= 0 && idx < subblock_factor then begin
                      covered.(idx) <- true;
                      if idx <> i then
                        results :=
                          (idx, { tr with
                                  Types.vpn = Int64.add base (Int64.of_int idx);
                                  ppn = Int64.add tr.Types.ppn_base (Int64.of_int j) })
                          :: !results
                    end
                  done))
    end
  done;
  (List.sort (fun (a, _) (b, _) -> compare a b) !results, !walk)

(* --- insertion --- *)

let insert_node t ~coarse ~tag ~word =
  let table = if coarse then t.coarse else t.fine in
  let bucket = hash t tag in
  let rec find = function
    | None -> None
    | Some n -> if Int64.equal n.tag tag then Some n else find n.next
  in
  match find table.(bucket) with
  | Some n -> n.word <- word
  | None ->
      let n = alloc_node t ~coarse ~tag ~word in
      n.next <- table.(bucket);
      table.(bucket) <- Some n;
      ignore
        (Atomic.fetch_and_add
           (if coarse then t.coarse_nodes else t.fine_nodes)
           1)

(* In superpage-index mode, tags of different kinds coexist in a
   bucket; replace only a node of the same tag AND kind. *)
let insert_node_spindex t ~bucket_key ~tag ~word =
  let bucket = hash t bucket_key in
  let same_kind a b =
    match (Pte.Word.decode a, Pte.Word.decode b) with
    | Pte.Word.Base _, Pte.Word.Base _ -> true
    | Pte.Word.Superpage x, Pte.Word.Superpage y ->
        Addr.Page_size.equal x.size y.size
    | Pte.Word.Psb _, Pte.Word.Psb _ -> true
    | _ -> false
  in
  let rec find = function
    | None -> None
    | Some n ->
        if Int64.equal n.tag tag && same_kind n.word word then Some n
        else find n.next
  in
  match find t.fine.(bucket) with
  | Some n -> n.word <- word
  | None ->
      let n = alloc_node t ~coarse:false ~tag ~word in
      n.next <- t.fine.(bucket);
      t.fine.(bucket) <- Some n;
      ignore (Atomic.fetch_and_add t.fine_nodes 1)

let insert_base t ~vpn ~ppn ~attr =
  let word = Pte.Base_pte.(encode (make ~ppn ~attr ())) in
  match t.mode with
  | No_superpages | Two_tables _ -> insert_node t ~coarse:false ~tag:vpn ~word
  | Superpage_index ->
      insert_node_spindex t ~bucket_key:(vpbn t vpn) ~tag:vpn ~word

let insert_superpage t ~vpn ~size ~ppn ~attr =
  let sz = Addr.Page_size.sz_code size in
  if not (Addr.Bits.is_aligned vpn sz) then
    invalid_arg "Hashed_pt.insert_superpage: VPN not aligned";
  let word = Pte.Superpage_pte.(encode (make ~size ~ppn ~attr ())) in
  match t.mode with
  | No_superpages ->
      invalid_arg "Hashed_pt: superpages unsupported in this mode"
  | Two_tables _ ->
      if sz < t.factor_bits then
        invalid_arg "Hashed_pt: superpage smaller than the coarse block";
      (* one coarse node per covered 64 KB block (replication for the
         rare larger sizes, Section 4.2) *)
      let n_blocks = 1 lsl (sz - t.factor_bits) in
      let first = vpbn t vpn in
      for i = 0 to n_blocks - 1 do
        insert_node t ~coarse:true ~tag:(Int64.add first (Int64.of_int i)) ~word
      done
  | Superpage_index ->
      if sz > t.factor_bits then
        invalid_arg
          "Hashed_pt: superpage larger than the hash index block must be \
           handled another way (Section 4.2)";
      insert_node_spindex t ~bucket_key:(vpbn t vpn) ~tag:vpn ~word

let insert_psb t ~vpbn:block ~vmask ~ppn ~attr =
  if vmask land lnot (factor_mask t) <> 0 then
    invalid_arg "Hashed_pt.insert_psb: vmask exceeds subblock factor";
  let merge_into existing =
    match Pte.Word.decode existing with
    | Pte.Word.Psb p when Int64.equal p.ppn ppn ->
        Pte.Psb_pte.(encode (make ~vmask:(p.vmask lor vmask) ~ppn ~attr))
    | _ -> Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr))
  in
  let tag = Int64.shift_left block t.factor_bits in
  match t.mode with
  | No_superpages ->
      invalid_arg "Hashed_pt: partial-subblocks unsupported in this mode"
  | Two_tables _ ->
      let table = t.coarse in
      let bucket = hash t block in
      let rec find = function
        | None -> None
        | Some n -> if Int64.equal n.tag block then Some n else find n.next
      in
      (match find table.(bucket) with
      | Some n -> n.word <- merge_into n.word
      | None ->
          insert_node t ~coarse:true ~tag:block
            ~word:Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr)))
  | Superpage_index ->
      let bucket = hash t block in
      let rec find = function
        | None -> None
        | Some n -> (
            if not (Int64.equal n.tag tag) then find n.next
            else
              match Pte.Word.decode n.word with
              | Pte.Word.Psb _ -> Some n
              | _ -> find n.next)
      in
      (match find t.fine.(bucket) with
      | Some n -> n.word <- merge_into n.word
      | None ->
          insert_node_spindex t ~bucket_key:block ~tag
            ~word:Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr)))

(* --- removal --- *)

let remove_in_chain t table bucket ~select ~coarse =
  let rec go chain =
    match chain with
    | None -> (None, false)
    | Some n -> (
        match select n with
        | `Unlink ->
            release_node t n;
            ignore
              (Atomic.fetch_and_add
                 (if coarse then t.coarse_nodes else t.fine_nodes)
                 (-1));
            (n.next, true)
        | `Updated -> (Some n, true)
        | `Skip ->
            let rest, removed = go n.next in
            n.next <- rest;
            (Some n, removed))
  in
  let chain, removed = go table.(bucket) in
  table.(bucket) <- chain;
  removed

let select_for_remove t ~vpn n =
  match Pte.Word.decode n.word with
  | Pte.Word.Base b when b.valid && Int64.equal n.tag vpn -> `Unlink
  | Pte.Word.Superpage sp when sp.valid -> (
      let sz = Addr.Page_size.sz_code sp.size in
      (* a fine-table sp node is tagged by vpn_base; a coarse node by
         vpbn — accept either tag form *)
      let vpn_base = Addr.Bits.align_down vpn sz in
      if Int64.equal n.tag vpn_base || Int64.equal n.tag (vpbn t vpn) then
        `Unlink
      else `Skip)
  | Pte.Word.Psb p -> (
      let tag_matches =
        Int64.equal n.tag (block_base t vpn) || Int64.equal n.tag (vpbn t vpn)
      in
      let b = boff t vpn in
      if tag_matches && Pte.Psb_pte.valid_at p ~boff:b then begin
        let p = Pte.Psb_pte.clear_valid p ~boff:b in
        if p.Pte.Psb_pte.vmask land factor_mask t = 0 then `Unlink
        else begin
          n.word <- Pte.Psb_pte.encode p;
          `Updated
        end
      end
      else `Skip)
  | Pte.Word.Base _ | Pte.Word.Superpage _ -> `Skip

let remove t ~vpn =
  let removed_fine =
    match t.mode with
    | Superpage_index ->
        remove_in_chain t t.fine
          (hash t (vpbn t vpn))
          ~select:(select_for_remove t ~vpn) ~coarse:false
    | No_superpages | Two_tables _ ->
        remove_in_chain t t.fine (hash t vpn)
          ~select:(fun n ->
            if Int64.equal n.tag vpn then select_for_remove t ~vpn n else `Skip)
          ~coarse:false
  in
  if not removed_fine then
    match t.mode with
    | Two_tables _ ->
        ignore
          (remove_in_chain t t.coarse
             (hash t (vpbn t vpn))
             ~select:(fun n ->
               if Int64.equal n.tag (vpbn t vpn) then
                 select_for_remove t ~vpn n
               else `Skip)
             ~coarse:true)
    | No_superpages | Superpage_index -> ()

(* --- range attribute updates --- *)

let set_attr_range t region ~f =
  (* a hashed table pays one hash search per base page (Section 3.1) *)
  let searches = ref 0 in
  Addr.Region.iter_vpns region (fun vpn ->
      incr searches;
      let update_chain table bucket want_tag =
        let rec go = function
          | None -> ()
          | Some n ->
              (if Int64.equal n.tag want_tag && node_matches t ~vpn n then
                 match Pt_common.Decode.reencode_attr n.word ~f with
                 | Some w -> n.word <- w
                 | None -> ());
              go n.next
        in
        go table.(bucket)
      in
      match t.mode with
      | No_superpages -> update_chain t.fine (hash t vpn) vpn
      | Superpage_index ->
          let bucket = hash t (vpbn t vpn) in
          let rec go = function
            | None -> ()
            | Some n ->
                (if node_matches t ~vpn n then
                   match Pt_common.Decode.reencode_attr n.word ~f with
                   | Some w -> n.word <- w
                   | None -> ());
                go n.next
          in
          go t.fine.(bucket)
      | Two_tables _ ->
          update_chain t.fine (hash t vpn) vpn;
          incr searches;
          let rec go = function
            | None -> ()
            | Some n ->
                (if
                   Int64.equal n.tag (vpbn t vpn)
                   && node_matches t ~vpn n
                 then
                   match Pt_common.Decode.reencode_attr n.word ~f with
                   | Some w -> n.word <- w
                   | None -> ());
                go n.next
          in
          go t.coarse.(hash t (vpbn t vpn)));
  !searches

(* --- accounting --- *)

let size_bytes t =
  (Atomic.get t.fine_nodes + Atomic.get t.coarse_nodes) * t.node_bytes

let buckets t = t.buckets

let bucket_of t ~vpn =
  (* the fine-table bucket: the only chain the single-table modes touch
     for [vpn].  Two-table modes also probe a coarse bucket and need
     coarser exclusion than one stripe. *)
  match t.mode with
  | No_superpages | Two_tables _ -> hash t vpn
  | Superpage_index -> hash t (vpbn t vpn)

let iter_nodes t f =
  let iter_table table =
    Array.iter
      (fun chain ->
        let rec go = function
          | None -> ()
          | Some n ->
              f n;
              go n.next
        in
        go chain)
      table
  in
  iter_table t.fine;
  match t.mode with Two_tables _ -> iter_table t.coarse | _ -> ()

let population t =
  let count = ref 0 in
  iter_nodes t (fun n ->
      match Pte.Word.decode n.word with
      | Pte.Word.Base b -> if b.valid then incr count
      | Pte.Word.Superpage sp ->
          if sp.valid then begin
            (* coarse nodes of a big superpage each cover one block *)
            let pages = Addr.Page_size.base_pages sp.size in
            count := !count + min pages t.factor
          end
      | Pte.Word.Psb p ->
          count :=
            !count + Addr.Bits.popcount (Int64.of_int (p.vmask land factor_mask t)));
  !count

let clear t =
  let nodes = ref [] in
  iter_nodes t (fun n -> nodes := n :: !nodes);
  List.iter (release_node t) !nodes;
  Array.fill t.fine 0 (Array.length t.fine) None;
  if Array.length t.coarse > 0 then
    Array.fill t.coarse 0 (Array.length t.coarse) None;
  Atomic.set t.fine_nodes 0;
  Atomic.set t.coarse_nodes 0

let node_count t = Atomic.get t.fine_nodes + Atomic.get t.coarse_nodes

let subblock_factor t = t.factor

let chain_length t ~bucket =
  let rec go acc = function None -> acc | Some n -> go (acc + 1) n.next in
  go 0 t.fine.(bucket)

let iter_chain_words t ~bucket f =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.word;
        go n.next
  in
  go t.fine.(bucket)

let load_factor t =
  float_of_int (Atomic.get t.fine_nodes) /. float_of_int t.buckets
