module Types = Pt_common.Types

type sp_mode =
  | No_superpages
  | Two_tables of { coarse_first : bool }
  | Superpage_index

type node = {
  mutable tag : int64;
  mutable word : int64;
  addr : int64;
  mutable next : node option;
}

(* Deferred-reclamation limbo (see the clustered table for the full
   story): a side list of unlinked nodes whose [next] pointers stay
   intact so optimistic lock-free readers already past the unlink can
   finish their walk.  Sharded by domain id to keep writer contention
   off one mutex. *)
type limbo_shard = {
  lm : Mutex.t;
  mutable l_entries : (node * int) list;  (* node, retire stamp *)
  mutable l_count : int;
}

let limbo_shards = 8

type t = {
  arena : Mem.Sim_memory.t;
  mode : sp_mode;
  buckets : int;
  factor : int;
  factor_bits : int;
  node_bytes : int;
  node_align : int;
  fine : node option array;
  fine_heads_addr : int64;
      (* the bucket array embeds first nodes (Figure 4: "an array of
         hash nodes"), so probing an empty bucket still reads a line *)
  (* Two_tables mode only; empty array otherwise *)
  coarse : node option array;
  coarse_heads_addr : int64;
  (* atomic: concurrent mutators serialize per bucket (lib/service),
     and the node counts are the only cross-bucket mutable state *)
  fine_nodes : int Atomic.t;
  coarse_nodes : int Atomic.t;
  (* closure, not an [Epoch.t]: this library must not depend on the
     epoch manager's home library *)
  mutable reclaim_hook : (unit -> int) option;
  limbo : limbo_shard array;
}

let name = "hashed"

let node_align_default = 256

let create ?arena ?(buckets = 4096) ?(subblock_factor = 16) ?(packed = false)
    ?(mode = No_superpages) () =
  if not (Addr.Bits.is_pow2 buckets) then
    invalid_arg "Hashed_pt: buckets must be a power of two";
  if not (Addr.Bits.is_pow2 subblock_factor) then
    invalid_arg "Hashed_pt: subblock factor must be a power of two";
  let arena =
    match arena with Some a -> a | None -> Mem.Sim_memory.create ()
  in
  let node_bytes = if packed then 16 else 24 in
  let fine_heads_addr =
    Mem.Sim_memory.alloc arena ~bytes:(buckets * node_bytes) ~align:4096
  in
  let coarse, coarse_heads_addr =
    match mode with
    | Two_tables _ ->
        ( Array.make buckets None,
          Mem.Sim_memory.alloc arena ~bytes:(buckets * node_bytes) ~align:4096
        )
    | No_superpages | Superpage_index -> ([||], 0L)
  in
  {
    arena;
    mode;
    buckets;
    factor = subblock_factor;
    factor_bits = Addr.Bits.log2_exact subblock_factor;
    node_bytes;
    node_align = node_align_default;
    fine = Array.make buckets None;
    fine_heads_addr;
    coarse;
    coarse_heads_addr;
    fine_nodes = Atomic.make 0;
    coarse_nodes = Atomic.make 0;
    reclaim_hook = None;
    limbo =
      Array.init limbo_shards (fun _ ->
          { lm = Mutex.create (); l_entries = []; l_count = 0 });
  }

let mode t = t.mode

let hash t key =
  let bits = Addr.Bits.log2_exact t.buckets in
  if bits = 0 then 0
  else
    Int64.to_int (Int64.shift_right_logical (Addr.Bits.mix64 key) (64 - bits))

let vpbn t vpn = Int64.shift_right_logical vpn t.factor_bits

let boff t vpn =
  Int64.to_int (Addr.Bits.extract vpn ~lo:0 ~width:t.factor_bits)

let block_base t vpn = Int64.shift_left (vpbn t vpn) t.factor_bits

let factor_mask t = (1 lsl t.factor) - 1

let alloc_node t ~coarse:_ ~tag ~word =
  let addr =
    Mem.Sim_memory.alloc t.arena ~bytes:t.node_bytes ~align:t.node_align
  in
  { tag; word; addr; next = None }

let release_node t n =
  Mem.Sim_memory.free t.arena ~addr:n.addr ~bytes:t.node_bytes
    ~align:t.node_align

(* --- deferred reclamation (lock-free readers) --- *)

(* Retired-node tag sentinel.  Every live tag (a vpn, vpbn or block
   base) is non-negative, so this can never match a reader's key: a
   doomed reader walking through a retired node skips it and follows
   the intact [next] pointer. *)
let limbo_tag = Int64.min_int

let retire_node t n stamp_of =
  n.tag <- limbo_tag;
  let stamp = stamp_of () in
  let shard = t.limbo.((Domain.self () :> int) land (limbo_shards - 1)) in
  Mutex.lock shard.lm;
  shard.l_entries <- (n, stamp) :: shard.l_entries;
  shard.l_count <- shard.l_count + 1;
  Mutex.unlock shard.lm

let unlink_node t n =
  match t.reclaim_hook with
  | None -> release_node t n
  | Some stamp_of -> retire_node t n stamp_of

let set_reclaim_hook t hook = t.reclaim_hook <- hook

let reclaim t ~upto =
  Array.iter
    (fun shard ->
      Mutex.lock shard.lm;
      let safe, kept =
        List.partition (fun (_, stamp) -> stamp < upto) shard.l_entries
      in
      shard.l_entries <- kept;
      shard.l_count <- List.length kept;
      Mutex.unlock shard.lm;
      (* the arena has its own lock; free outside the shard mutex *)
      List.iter (fun (n, _) -> release_node t n) safe)
    t.limbo

let limbo_nodes t =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.lm;
      let c = shard.l_count in
      Mutex.unlock shard.lm;
      acc + c)
    0 t.limbo

(* --- translations --- *)

let translation_of_word t ~vpn word =
  Pt_common.Decode.translation_of_word ~subblock_factor:t.factor ~vpn word

(* Does a node in the coarse or superpage-index table match [vpn]? *)
let node_matches t ~vpn n =
  match Pte.Word.decode n.word with
  | Pte.Word.Base b -> b.valid && Int64.equal n.tag vpn
  | Pte.Word.Superpage sp ->
      sp.valid
      &&
      let sz = Addr.Page_size.sz_code sp.size in
      Int64.equal n.tag (Addr.Bits.align_down vpn sz)
  | Pte.Word.Psb p ->
      Int64.equal n.tag (block_base t vpn)
      && Pte.Psb_pte.valid_at p ~boff:(boff t vpn)

(* --- chain search, charging reads into the caller's accumulator --- *)

(* A probe reads a node's tag and next pointer (16 bytes); interpreting
   the mapping reads its word (8 more bytes in the same node). *)
let probe acc n =
  Mem.Walk_acc.read acc ~addr:n.addr ~bytes:16;
  Mem.Walk_acc.probe acc

let read_word acc n = Mem.Walk_acc.read acc ~addr:(Int64.add n.addr 16L) ~bytes:8

(* An empty bucket still costs one read of its embedded head node. *)
let charge_empty_head t ~heads_addr ~bucket acc =
  Mem.Walk_acc.read acc
    ~addr:(Int64.add heads_addr (Int64.of_int (bucket * t.node_bytes)))
    ~bytes:16;
  Mem.Walk_acc.probe acc

let search_fine t acc ~vpn =
  let rec go chain =
    match chain with
    | None -> None
    | Some n ->
        probe acc n;
        if Int64.equal n.tag vpn then begin
          read_word acc n;
          match translation_of_word t ~vpn n.word with
          | Some _ as tr -> tr
          | None -> go n.next
        end
        else go n.next
  in
  let bucket = hash t vpn in
  match t.fine.(bucket) with
  | None ->
      charge_empty_head t ~heads_addr:t.fine_heads_addr ~bucket acc;
      None
  | chain -> go chain

let search_coarse t acc ~vpn =
  let rec go chain =
    match chain with
    | None -> None
    | Some n ->
        probe acc n;
        if Int64.equal n.tag (vpbn t vpn) then begin
          read_word acc n;
          match translation_of_word t ~vpn n.word with
          | Some _ as tr -> tr
          | None -> go n.next
        end
        else go n.next
  in
  let bucket = hash t (vpbn t vpn) in
  match t.coarse.(bucket) with
  | None ->
      charge_empty_head t ~heads_addr:t.coarse_heads_addr ~bucket acc;
      None
  | chain -> go chain

let search_spindex t acc ~vpn =
  let rec go chain =
    match chain with
    | None -> None
    | Some n ->
        probe acc n;
        if node_matches t ~vpn n then begin
          read_word acc n;
          match translation_of_word t ~vpn n.word with
          | Some _ as tr -> tr
          | None -> go n.next
        end
        else go n.next
  in
  let bucket = hash t (vpbn t vpn) in
  match t.fine.(bucket) with
  | None ->
      charge_empty_head t ~heads_addr:t.fine_heads_addr ~bucket acc;
      None
  | chain -> go chain

let lookup_into t acc ~vpn =
  match t.mode with
  | No_superpages -> search_fine t acc ~vpn
  | Superpage_index -> search_spindex t acc ~vpn
  | Two_tables { coarse_first } ->
      let first, second =
        if coarse_first then (search_coarse, search_fine)
        else (search_fine, search_coarse)
      in
      (match first t acc ~vpn with
      | Some _ as tr -> tr
      | None -> second t acc ~vpn)

let lookup t ~vpn =
  let acc = Mem.Walk_acc.create ~capacity:8 () in
  let tr = lookup_into t acc ~vpn in
  (tr, Types.acc_to_walk acc)

let lookup_block t ~vpn ~subblock_factor =
  (* One probe per base page: the cost that makes complete-subblock
     prefetch "terrible" for hashed tables (Section 6.3 / Figure 11d).
     Pages already covered by a found multi-page entry are skipped. *)
  let base =
    Int64.mul
      (Int64.div vpn (Int64.of_int subblock_factor))
      (Int64.of_int subblock_factor)
  in
  let covered = Array.make subblock_factor false in
  let results = ref [] and walk = ref Types.empty_walk in
  for i = 0 to subblock_factor - 1 do
    if not covered.(i) then begin
      let page = Int64.add base (Int64.of_int i) in
      let tr, w = lookup t ~vpn:page in
      walk := Types.walk_join !walk w;
      match tr with
      | None -> ()
      | Some tr ->
          results := (i, tr) :: !results;
          (* mark the other pages this entry maps *)
          (match tr.Types.kind with
          | Types.Base -> ()
          | Types.Superpage _ | Types.Partial_subblock _ ->
              let first = Int64.sub tr.Types.vpn_base base in
              let span = Types.covered_pages tr in
              (match tr.Types.kind with
              | Types.Partial_subblock vmask ->
                  for j = 0 to subblock_factor - 1 do
                    let idx = Int64.to_int first + j in
                    if
                      vmask land (1 lsl j) <> 0
                      && idx >= 0
                      && idx < subblock_factor
                    then begin
                      covered.(idx) <- true;
                      if idx <> i then
                        results :=
                          (idx, { tr with
                                  Types.vpn = Int64.add base (Int64.of_int idx);
                                  ppn = Int64.add tr.Types.ppn_base (Int64.of_int j) })
                          :: !results
                    end
                  done
              | _ ->
                  for j = 0 to span - 1 do
                    let idx = Int64.to_int first + j in
                    if idx >= 0 && idx < subblock_factor then begin
                      covered.(idx) <- true;
                      if idx <> i then
                        results :=
                          (idx, { tr with
                                  Types.vpn = Int64.add base (Int64.of_int idx);
                                  ppn = Int64.add tr.Types.ppn_base (Int64.of_int j) })
                          :: !results
                    end
                  done))
    end
  done;
  (List.sort (fun (a, _) (b, _) -> compare a b) !results, !walk)

(* --- insertion --- *)

let insert_node t ~coarse ~tag ~word =
  let table = if coarse then t.coarse else t.fine in
  let bucket = hash t tag in
  let rec find = function
    | None -> None
    | Some n -> if Int64.equal n.tag tag then Some n else find n.next
  in
  match find table.(bucket) with
  | Some n -> n.word <- word
  | None ->
      let n = alloc_node t ~coarse ~tag ~word in
      n.next <- table.(bucket);
      table.(bucket) <- Some n;
      ignore
        (Atomic.fetch_and_add
           (if coarse then t.coarse_nodes else t.fine_nodes)
           1)

(* In superpage-index mode, tags of different kinds coexist in a
   bucket; replace only a node of the same tag AND kind. *)
let insert_node_spindex t ~bucket_key ~tag ~word =
  let bucket = hash t bucket_key in
  let same_kind a b =
    match (Pte.Word.decode a, Pte.Word.decode b) with
    | Pte.Word.Base _, Pte.Word.Base _ -> true
    | Pte.Word.Superpage x, Pte.Word.Superpage y ->
        Addr.Page_size.equal x.size y.size
    | Pte.Word.Psb _, Pte.Word.Psb _ -> true
    | _ -> false
  in
  let rec find = function
    | None -> None
    | Some n ->
        if Int64.equal n.tag tag && same_kind n.word word then Some n
        else find n.next
  in
  match find t.fine.(bucket) with
  | Some n -> n.word <- word
  | None ->
      let n = alloc_node t ~coarse:false ~tag ~word in
      n.next <- t.fine.(bucket);
      t.fine.(bucket) <- Some n;
      ignore (Atomic.fetch_and_add t.fine_nodes 1)

let insert_base t ~vpn ~ppn ~attr =
  let word = Pte.Base_pte.(encode (make ~ppn ~attr ())) in
  match t.mode with
  | No_superpages | Two_tables _ -> insert_node t ~coarse:false ~tag:vpn ~word
  | Superpage_index ->
      insert_node_spindex t ~bucket_key:(vpbn t vpn) ~tag:vpn ~word

let insert_superpage t ~vpn ~size ~ppn ~attr =
  let sz = Addr.Page_size.sz_code size in
  if not (Addr.Bits.is_aligned vpn sz) then
    invalid_arg "Hashed_pt.insert_superpage: VPN not aligned";
  let word = Pte.Superpage_pte.(encode (make ~size ~ppn ~attr ())) in
  match t.mode with
  | No_superpages ->
      invalid_arg "Hashed_pt: superpages unsupported in this mode"
  | Two_tables _ ->
      if sz < t.factor_bits then
        invalid_arg "Hashed_pt: superpage smaller than the coarse block";
      (* one coarse node per covered 64 KB block (replication for the
         rare larger sizes, Section 4.2) *)
      let n_blocks = 1 lsl (sz - t.factor_bits) in
      let first = vpbn t vpn in
      for i = 0 to n_blocks - 1 do
        insert_node t ~coarse:true ~tag:(Int64.add first (Int64.of_int i)) ~word
      done
  | Superpage_index ->
      if sz > t.factor_bits then
        invalid_arg
          "Hashed_pt: superpage larger than the hash index block must be \
           handled another way (Section 4.2)";
      insert_node_spindex t ~bucket_key:(vpbn t vpn) ~tag:vpn ~word

let insert_psb t ~vpbn:block ~vmask ~ppn ~attr =
  if vmask land lnot (factor_mask t) <> 0 then
    invalid_arg "Hashed_pt.insert_psb: vmask exceeds subblock factor";
  let merge_into existing =
    match Pte.Word.decode existing with
    | Pte.Word.Psb p when Int64.equal p.ppn ppn ->
        Pte.Psb_pte.(encode (make ~vmask:(p.vmask lor vmask) ~ppn ~attr))
    | _ -> Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr))
  in
  let tag = Int64.shift_left block t.factor_bits in
  match t.mode with
  | No_superpages ->
      invalid_arg "Hashed_pt: partial-subblocks unsupported in this mode"
  | Two_tables _ ->
      let table = t.coarse in
      let bucket = hash t block in
      let rec find = function
        | None -> None
        | Some n -> if Int64.equal n.tag block then Some n else find n.next
      in
      (match find table.(bucket) with
      | Some n -> n.word <- merge_into n.word
      | None ->
          insert_node t ~coarse:true ~tag:block
            ~word:Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr)))
  | Superpage_index ->
      let bucket = hash t block in
      let rec find = function
        | None -> None
        | Some n -> (
            if not (Int64.equal n.tag tag) then find n.next
            else
              match Pte.Word.decode n.word with
              | Pte.Word.Psb _ -> Some n
              | _ -> find n.next)
      in
      (match find t.fine.(bucket) with
      | Some n -> n.word <- merge_into n.word
      | None ->
          insert_node_spindex t ~bucket_key:block ~tag
            ~word:Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr)))

(* --- removal --- *)

let remove_in_chain t table bucket ~select ~coarse =
  let rec go chain =
    match chain with
    | None -> (None, false)
    | Some n -> (
        match select n with
        | `Unlink ->
            unlink_node t n;
            ignore
              (Atomic.fetch_and_add
                 (if coarse then t.coarse_nodes else t.fine_nodes)
                 (-1));
            (n.next, true)
        | `Updated -> (Some n, true)
        | `Skip ->
            let rest, removed = go n.next in
            n.next <- rest;
            (Some n, removed))
  in
  let chain, removed = go table.(bucket) in
  table.(bucket) <- chain;
  removed

let select_for_remove t ~vpn n =
  match Pte.Word.decode n.word with
  | Pte.Word.Base b when b.valid && Int64.equal n.tag vpn -> `Unlink
  | Pte.Word.Superpage sp when sp.valid -> (
      let sz = Addr.Page_size.sz_code sp.size in
      (* a fine-table sp node is tagged by vpn_base; a coarse node by
         vpbn — accept either tag form *)
      let vpn_base = Addr.Bits.align_down vpn sz in
      if Int64.equal n.tag vpn_base || Int64.equal n.tag (vpbn t vpn) then
        `Unlink
      else `Skip)
  | Pte.Word.Psb p -> (
      let tag_matches =
        Int64.equal n.tag (block_base t vpn) || Int64.equal n.tag (vpbn t vpn)
      in
      let b = boff t vpn in
      if tag_matches && Pte.Psb_pte.valid_at p ~boff:b then begin
        let p = Pte.Psb_pte.clear_valid p ~boff:b in
        if p.Pte.Psb_pte.vmask land factor_mask t = 0 then `Unlink
        else begin
          n.word <- Pte.Psb_pte.encode p;
          `Updated
        end
      end
      else `Skip)
  | Pte.Word.Base _ | Pte.Word.Superpage _ -> `Skip

let remove t ~vpn =
  let removed_fine =
    match t.mode with
    | Superpage_index ->
        remove_in_chain t t.fine
          (hash t (vpbn t vpn))
          ~select:(select_for_remove t ~vpn) ~coarse:false
    | No_superpages | Two_tables _ ->
        remove_in_chain t t.fine (hash t vpn)
          ~select:(fun n ->
            if Int64.equal n.tag vpn then select_for_remove t ~vpn n else `Skip)
          ~coarse:false
  in
  if not removed_fine then
    match t.mode with
    | Two_tables _ ->
        ignore
          (remove_in_chain t t.coarse
             (hash t (vpbn t vpn))
             ~select:(fun n ->
               if Int64.equal n.tag (vpbn t vpn) then
                 select_for_remove t ~vpn n
               else `Skip)
             ~coarse:true)
    | No_superpages | Superpage_index -> ()

(* --- range attribute updates --- *)

let set_attr_range t region ~f =
  (* a hashed table pays one hash search per base page (Section 3.1) *)
  let searches = ref 0 in
  Addr.Region.iter_vpns region (fun vpn ->
      incr searches;
      let update_chain table bucket want_tag =
        let rec go = function
          | None -> ()
          | Some n ->
              (if Int64.equal n.tag want_tag && node_matches t ~vpn n then
                 match Pt_common.Decode.reencode_attr n.word ~f with
                 | Some w -> n.word <- w
                 | None -> ());
              go n.next
        in
        go table.(bucket)
      in
      match t.mode with
      | No_superpages -> update_chain t.fine (hash t vpn) vpn
      | Superpage_index ->
          let bucket = hash t (vpbn t vpn) in
          let rec go = function
            | None -> ()
            | Some n ->
                (if node_matches t ~vpn n then
                   match Pt_common.Decode.reencode_attr n.word ~f with
                   | Some w -> n.word <- w
                   | None -> ());
                go n.next
          in
          go t.fine.(bucket)
      | Two_tables _ ->
          update_chain t.fine (hash t vpn) vpn;
          incr searches;
          let rec go = function
            | None -> ()
            | Some n ->
                (if
                   Int64.equal n.tag (vpbn t vpn)
                   && node_matches t ~vpn n
                 then
                   match Pt_common.Decode.reencode_attr n.word ~f with
                   | Some w -> n.word <- w
                   | None -> ());
                go n.next
          in
          go t.coarse.(hash t (vpbn t vpn)));
  !searches

(* --- accounting --- *)

let size_bytes t =
  (Atomic.get t.fine_nodes + Atomic.get t.coarse_nodes) * t.node_bytes

let buckets t = t.buckets

let bucket_of t ~vpn =
  (* the fine-table bucket: the only chain the single-table modes touch
     for [vpn].  Two-table modes also probe a coarse bucket and need
     coarser exclusion than one stripe. *)
  match t.mode with
  | No_superpages | Two_tables _ -> hash t vpn
  | Superpage_index -> hash t (vpbn t vpn)

let iter_nodes t f =
  let iter_table table =
    Array.iter
      (fun chain ->
        let rec go = function
          | None -> ()
          | Some n ->
              f n;
              go n.next
        in
        go chain)
      table
  in
  iter_table t.fine;
  match t.mode with Two_tables _ -> iter_table t.coarse | _ -> ()

let population t =
  let count = ref 0 in
  iter_nodes t (fun n ->
      match Pte.Word.decode n.word with
      | Pte.Word.Base b -> if b.valid then incr count
      | Pte.Word.Superpage sp ->
          if sp.valid then begin
            (* coarse nodes of a big superpage each cover one block *)
            let pages = Addr.Page_size.base_pages sp.size in
            count := !count + min pages t.factor
          end
      | Pte.Word.Psb p ->
          count :=
            !count + Addr.Bits.popcount (Int64.of_int (p.vmask land factor_mask t)));
  !count

let clear t =
  let nodes = ref [] in
  iter_nodes t (fun n -> nodes := n :: !nodes);
  List.iter (release_node t) !nodes;
  (* limbo nodes are unlinked, so the chain sweep missed them *)
  Array.iter
    (fun shard ->
      List.iter (fun (n, _) -> release_node t n) shard.l_entries;
      shard.l_entries <- [];
      shard.l_count <- 0)
    t.limbo;
  Array.fill t.fine 0 (Array.length t.fine) None;
  if Array.length t.coarse > 0 then
    Array.fill t.coarse 0 (Array.length t.coarse) None;
  Atomic.set t.fine_nodes 0;
  Atomic.set t.coarse_nodes 0

let node_count t = Atomic.get t.fine_nodes + Atomic.get t.coarse_nodes

let subblock_factor t = t.factor

let chain_length t ~bucket =
  let rec go acc = function None -> acc | Some n -> go (acc + 1) n.next in
  go 0 t.fine.(bucket)

let iter_chain_words t ~bucket f =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.word;
        go n.next
  in
  go t.fine.(bucket)

let iter_chain_tags t ~bucket f =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.tag;
        go n.next
  in
  go t.fine.(bucket)

let load_factor t =
  float_of_int (Atomic.get t.fine_nodes) /. float_of_int t.buckets

(* --- integrity verification, corruption injection, repair (fsck) --- *)

type violation =
  | Chain_cycle of { coarse : bool; bucket : int }
  | Cross_link of { coarse : bool; bucket : int; first_bucket : int }
  | Wrong_bucket of { coarse : bool; bucket : int; tag : int64 }
  | Dup_node of { coarse : bool; bucket : int; tag : int64 }
  | Bad_word of { coarse : bool; bucket : int; tag : int64 }
  | Torn_replica of { bucket : int; tag : int64 }
  | Coverage_overlap of { vpn : int64 }
  | Limbo_live_overlap of { bucket : int }
  | Limbo_live_tag
  | Limbo_count_mismatch of { counted : int; recorded : int }
  | Node_count_mismatch of { coarse : bool; counted : int; recorded : int }

let violation_code = function
  | Chain_cycle _ -> "chain_cycle"
  | Cross_link _ -> "cross_link"
  | Wrong_bucket _ -> "wrong_bucket"
  | Dup_node _ -> "dup_node"
  | Bad_word _ -> "bad_word"
  | Torn_replica _ -> "torn_replica"
  | Coverage_overlap _ -> "coverage_overlap"
  | Limbo_live_overlap _ -> "limbo_live_overlap"
  | Limbo_live_tag -> "limbo_live_tag"
  | Limbo_count_mismatch _ -> "limbo_count_mismatch"
  | Node_count_mismatch _ -> "node_count_mismatch"

let pp_violation ppf =
  let table coarse = if coarse then "coarse" else "fine" in
  function
  | Chain_cycle { coarse; bucket } ->
      Format.fprintf ppf "chain cycle in %s bucket %d" (table coarse) bucket
  | Cross_link { coarse; bucket; first_bucket } ->
      Format.fprintf ppf
        "%s bucket %d links a node already reachable from bucket %d"
        (table coarse) bucket first_bucket
  | Wrong_bucket { coarse; bucket; tag } ->
      Format.fprintf ppf
        "tag %Ld chained in %s bucket %d but hashes elsewhere" tag
        (table coarse) bucket
  | Dup_node { coarse; bucket; tag } ->
      Format.fprintf ppf "duplicate nodes for tag %Ld in %s bucket %d" tag
        (table coarse) bucket
  | Bad_word { coarse; bucket; tag } ->
      Format.fprintf ppf "malformed mapping word (tag %Ld, %s bucket %d)" tag
        (table coarse) bucket
  | Torn_replica { bucket; tag } ->
      Format.fprintf ppf
        "inconsistent superpage replica (tag %Ld, coarse bucket %d)" tag
        bucket
  | Coverage_overlap { vpn } ->
      Format.fprintf ppf "page %Ld mapped by two representations" vpn
  | Limbo_live_overlap { bucket } ->
      Format.fprintf ppf
        "limbo node still chained from fine bucket %d (premature unlink \
         or relink)"
        bucket
  | Limbo_live_tag ->
      Format.fprintf ppf "limbo node carries a live tag"
  | Limbo_count_mismatch { counted; recorded } ->
      Format.fprintf ppf "%d limbo nodes counted, %d recorded" counted
        recorded
  | Node_count_mismatch { coarse; counted; recorded } ->
      Format.fprintf ppf "%d live %s-table nodes counted, %d recorded"
        counted (table coarse) recorded

let sz_of_sp (sp : Pte.Superpage_pte.t) = Addr.Page_size.sz_code sp.size

(* Cycle-safe search for the coarse-table replica of a multi-block
   superpage covering block [block]. *)
let find_sp_replica_h t block =
  let visited = Hashtbl.create 8 in
  let rec go = function
    | None -> None
    | Some n ->
        if Hashtbl.mem visited n.addr then None
        else begin
          Hashtbl.add visited n.addr ();
          if Int64.equal n.tag block then
            match Pte.Word.decode n.word with
            | Pte.Word.Superpage sp when sp.valid -> Some n.word
            | _ -> go n.next
          else go n.next
        end
  in
  go t.coarse.(hash t block)

(* A node's kind discriminator for duplicate detection: mirrors the
   replace-in-place rules of the insert paths. *)
let node_kind w =
  match Pte.Word.decode w with
  | Pte.Word.Base _ -> 0
  | Pte.Word.Psb _ -> 1
  | Pte.Word.Superpage sp -> 2 + sz_of_sp sp

let check t =
  let out = ref [] in
  let add v = out := v :: !out in
  (* every chained node across both tables, for the limbo disjointness
     pass: addr -> bucket *)
  let live_seen : (int64, int) Hashtbl.t = Hashtbl.create 256 in
  let coverage : (int64, unit) Hashtbl.t = Hashtbl.create 256 in
  let claim_coverage vpn pages =
    for i = 0 to pages - 1 do
      let v = Int64.add vpn (Int64.of_int i) in
      if Hashtbl.mem coverage v then add (Coverage_overlap { vpn = v })
      else Hashtbl.add coverage v ()
    done
  in
  (* check one table; [expected_bucket]/[check_node] give the per-mode
     residency and word rules *)
  let scan_table ~coarse table recorded ~expected_bucket ~check_node =
    let seen : (int64, int) Hashtbl.t = Hashtbl.create 256 in
    let counted = ref 0 in
    Array.iteri
      (fun b head ->
        let chain_seen = Hashtbl.create 8 in
        let tags_seen = ref [] in
        let rec walk = function
          | None -> ()
          | Some n ->
              if Hashtbl.mem chain_seen n.addr then
                add (Chain_cycle { coarse; bucket = b })
              else (
                match Hashtbl.find_opt seen n.addr with
                | Some first_bucket ->
                    add (Cross_link { coarse; bucket = b; first_bucket })
                | None ->
                    Hashtbl.add chain_seen n.addr ();
                    Hashtbl.add seen n.addr b;
                    Hashtbl.replace live_seen n.addr b;
                    incr counted;
                    if expected_bucket n <> b then
                      add (Wrong_bucket { coarse; bucket = b; tag = n.tag });
                    let kind = node_kind n.word in
                    if
                      List.exists
                        (fun (tg, k) -> Int64.equal tg n.tag && k = kind)
                        !tags_seen
                    then add (Dup_node { coarse; bucket = b; tag = n.tag })
                    else tags_seen := (n.tag, kind) :: !tags_seen;
                    check_node b n;
                    walk n.next)
        in
        walk head)
      table;
    if !counted <> recorded then
      add
        (Node_count_mismatch { coarse; counted = !counted; recorded })
  in
  let bad ~coarse b n = add (Bad_word { coarse; bucket = b; tag = n.tag }) in
  (* fine table of the single-page-size modes: base words tagged by vpn *)
  let check_fine_base b n =
    match Pte.Word.decode n.word with
    | Pte.Word.Base bw ->
        if not bw.valid then bad ~coarse:false b n
        else claim_coverage n.tag 1
    | Pte.Word.Psb _ | Pte.Word.Superpage _ ->
        (* a torn multi-word update leaves a non-base word here *)
        bad ~coarse:false b n
  in
  (* coarse table (Two_tables): superpage / psb words tagged by vpbn *)
  let check_coarse b n =
    match Pte.Word.decode n.word with
    | Pte.Word.Base _ -> bad ~coarse:true b n
    | Pte.Word.Psb p ->
        if p.vmask land factor_mask t = 0 then bad ~coarse:true b n
        else begin
          let block_vpn = Int64.shift_left n.tag t.factor_bits in
          for i = 0 to t.factor - 1 do
            if p.vmask land (1 lsl i) <> 0 then
              claim_coverage (Int64.add block_vpn (Int64.of_int i)) 1
          done
        end
    | Pte.Word.Superpage sp ->
        if (not sp.valid) || sz_of_sp sp < t.factor_bits then
          bad ~coarse:true b n
        else begin
          (* each replica serves exactly its own block *)
          claim_coverage (Int64.shift_left n.tag t.factor_bits) t.factor;
          let n_blocks = 1 lsl (sz_of_sp sp - t.factor_bits) in
          if n_blocks > 1 then begin
            let first =
              Int64.logand n.tag (Int64.lognot (Int64.of_int (n_blocks - 1)))
            in
            if Int64.equal n.tag first then
              for i = 1 to n_blocks - 1 do
                let sib = Int64.add first (Int64.of_int i) in
                match find_sp_replica_h t sib with
                | Some w when Int64.equal w n.word -> ()
                | _ -> add (Torn_replica { bucket = b; tag = n.tag })
              done
            else
              match find_sp_replica_h t first with
              | Some w when Int64.equal w n.word -> ()
              | _ -> add (Torn_replica { bucket = b; tag = n.tag })
          end
        end
  in
  (* superpage-index fine table: mixed tag kinds, one bucket per block *)
  let check_spindex b n =
    match Pte.Word.decode n.word with
    | Pte.Word.Base bw ->
        if not bw.valid then bad ~coarse:false b n else claim_coverage n.tag 1
    | Pte.Word.Psb p ->
        if
          p.vmask land factor_mask t = 0
          || not (Addr.Bits.is_aligned n.tag t.factor_bits)
        then bad ~coarse:false b n
        else
          for i = 0 to t.factor - 1 do
            if p.vmask land (1 lsl i) <> 0 then
              claim_coverage (Int64.add n.tag (Int64.of_int i)) 1
          done
    | Pte.Word.Superpage sp ->
        let sz = sz_of_sp sp in
        if
          (not sp.valid)
          || sz > t.factor_bits
          || not (Addr.Bits.is_aligned n.tag sz)
        then bad ~coarse:false b n
        else claim_coverage n.tag (1 lsl sz)
  in
  (match t.mode with
  | No_superpages | Two_tables _ ->
      scan_table ~coarse:false t.fine
        (Atomic.get t.fine_nodes)
        ~expected_bucket:(fun n -> hash t n.tag)
        ~check_node:check_fine_base
  | Superpage_index ->
      scan_table ~coarse:false t.fine
        (Atomic.get t.fine_nodes)
        ~expected_bucket:(fun n -> hash t (vpbn t n.tag))
        ~check_node:check_spindex);
  (match t.mode with
  | Two_tables _ ->
      scan_table ~coarse:true t.coarse
        (Atomic.get t.coarse_nodes)
        ~expected_bucket:(fun n -> hash t n.tag)
        ~check_node:check_coarse
  | No_superpages | Superpage_index -> ());
  (* limbo disjointness: a retired node must be off every chain and
     must wear the retired tag (no hashed free list, so two of the
     clustered checker's three ways) *)
  let limbo_counted = ref 0 and limbo_recorded = ref 0 in
  Array.iter
    (fun shard ->
      limbo_recorded := !limbo_recorded + shard.l_count;
      List.iter
        (fun (n, _) ->
          incr limbo_counted;
          if not (Int64.equal n.tag limbo_tag) then add Limbo_live_tag;
          match Hashtbl.find_opt live_seen n.addr with
          | Some bucket -> add (Limbo_live_overlap { bucket })
          | None -> ())
        shard.l_entries)
    t.limbo;
  if !limbo_counted <> !limbo_recorded then
    add
      (Limbo_count_mismatch
         { counted = !limbo_counted; recorded = !limbo_recorded });
  List.rev !out

(* --- repair --- *)

type repair_report = {
  violations : violation list;
  kept : int;
  dropped : int;
}

let repair t =
  let violations = check t in
  let kept = ref 0 and dropped = ref 0 in
  let cands = ref [] in
  let cand c = cands := c :: !cands in
  let sp_seen : (int64, int64) Hashtbl.t = Hashtbl.create 16 in
  let harvest_node ~fine n =
    match Pte.Word.decode n.word with
    | Pte.Word.Base bw ->
        (* base words are fine-table-only in every mode *)
        if bw.valid then
          if fine then cand (`Base (n.tag, bw.ppn, bw.attr))
          else incr dropped
    | Pte.Word.Psb p -> (
        let vmask = p.vmask land factor_mask t in
        if vmask = 0 then incr dropped
        else
          match t.mode with
          | Two_tables _ when not fine ->
              cand (`Psb (n.tag, vmask, p.ppn, p.attr))
          | Superpage_index
            when fine && Addr.Bits.is_aligned n.tag t.factor_bits ->
              cand (`Psb (vpbn t n.tag, vmask, p.ppn, p.attr))
          | _ -> incr dropped)
    | Pte.Word.Superpage sp ->
        if not sp.valid then incr dropped
        else begin
          let sz = sz_of_sp sp in
          match t.mode with
          | Two_tables _ when (not fine) && sz >= t.factor_bits -> (
              let block_vpn = Int64.shift_left n.tag t.factor_bits in
              let vpn_base = Addr.Bits.align_down block_vpn sz in
              match Hashtbl.find_opt sp_seen vpn_base with
              | Some w0 when Int64.equal w0 n.word -> ()
              | Some _ -> incr dropped
              | None ->
                  Hashtbl.add sp_seen vpn_base n.word;
                  cand (`Sp (vpn_base, sp.size, sp.ppn, sp.attr)))
          | Superpage_index
            when fine && sz <= t.factor_bits && Addr.Bits.is_aligned n.tag sz
            ->
              cand (`Sp (n.tag, sp.size, sp.ppn, sp.attr))
          | _ -> incr dropped
        end
  in
  let visited = Hashtbl.create 256 in
  let harvest_table ~fine table =
    Array.iter
      (fun head ->
        let rec walk = function
          | None -> ()
          | Some n ->
              if Hashtbl.mem visited n.addr then ()
              else begin
                Hashtbl.add visited n.addr ();
                harvest_node ~fine n;
                walk n.next
              end
        in
        walk head)
      table
  in
  harvest_table ~fine:true t.fine;
  if Array.length t.coarse > 0 then harvest_table ~fine:false t.coarse;
  (* first-wins page claims, then reset and reinsert.  The old nodes'
     arena bytes are abandoned: corrupted chains are unsafe to walk for
     freeing. *)
  let claimed : (int64, unit) Hashtbl.t = Hashtbl.create 1024 in
  let spans = function
    | `Base (vpn, _, _) -> [ (vpn, 1) ]
    | `Sp (vpn, size, _, _) -> [ (vpn, Addr.Page_size.base_pages size) ]
    | `Psb (block, vmask, _, _) ->
        let base = Int64.shift_left block t.factor_bits in
        let l = ref [] in
        for i = t.factor - 1 downto 0 do
          if vmask land (1 lsl i) <> 0 then
            l := (Int64.add base (Int64.of_int i), 1) :: !l
        done;
        !l
  in
  let try_claim c =
    let pages = spans c in
    let free =
      List.for_all
        (fun (v0, np) ->
          let ok = ref true in
          for i = 0 to np - 1 do
            if Hashtbl.mem claimed (Int64.add v0 (Int64.of_int i)) then
              ok := false
          done;
          !ok)
        pages
    in
    if free then
      List.iter
        (fun (v0, np) ->
          for i = 0 to np - 1 do
            Hashtbl.add claimed (Int64.add v0 (Int64.of_int i)) ()
          done)
        pages;
    free
  in
  let survivors = List.rev !cands in
  Array.fill t.fine 0 (Array.length t.fine) None;
  if Array.length t.coarse > 0 then
    Array.fill t.coarse 0 (Array.length t.coarse) None;
  Atomic.set t.fine_nodes 0;
  Atomic.set t.coarse_nodes 0;
  (* abandon limbo with the rest of the old nodes: corruption may have
     relinked a limbo node into a chain, so freeing could double-free *)
  Array.iter
    (fun shard ->
      shard.l_entries <- [];
      shard.l_count <- 0)
    t.limbo;
  List.iter
    (fun c ->
      if not (try_claim c) then incr dropped
      else
        try
          (match c with
          | `Base (vpn, ppn, attr) -> insert_base t ~vpn ~ppn ~attr
          | `Sp (vpn, size, ppn, attr) ->
              insert_superpage t ~vpn ~size ~ppn ~attr
          | `Psb (block, vmask, ppn, attr) ->
              insert_psb t ~vpbn:block ~vmask ~ppn ~attr);
          incr kept
        with Invalid_argument _ -> incr dropped)
    survivors;
  { violations; kept = !kept; dropped = !dropped }

(* --- fine-bucket snapshots (the service's undo journal) --- *)

type bucket_image = (int64 * int64) list

let snapshot_bucket t ~bucket =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.tag, n.word) :: acc) n.next
  in
  go [] t.fine.(bucket)

let restore_bucket t ~bucket image =
  let removed = ref 0 in
  (* rollback runs under the bucket's write lock, but optimistic
     readers may still be walking the dropped nodes: retire, don't
     recycle *)
  let rec drop = function
    | None -> ()
    | Some n ->
        let next = n.next in
        unlink_node t n;
        incr removed;
        drop next
  in
  drop t.fine.(bucket);
  t.fine.(bucket) <- None;
  let added = ref 0 in
  List.iter
    (fun (tag, word) ->
      let n = alloc_node t ~coarse:false ~tag ~word in
      n.next <- t.fine.(bucket);
      t.fine.(bucket) <- Some n;
      incr added)
    (List.rev image);
  ignore (Atomic.fetch_and_add t.fine_nodes (!added - !removed))

(* --- corruption injection (tests and the fsck CLI) --- *)

type corruption =
  | C_cycle
  | C_cross_link
  | C_misplace
  | C_duplicate
  | C_torn of int64
  | C_count

let torn_garbage_word =
  Pte.Psb_pte.(encode (make ~vmask:1 ~ppn:0L ~attr:Pte.Attr.default))

let first_nonempty_fine t =
  let rec go b =
    if b >= t.buckets then None
    else match t.fine.(b) with Some n -> Some (b, n) | None -> go (b + 1)
  in
  go 0

let fine_tail n =
  let rec go n = match n.next with None -> n | Some m -> go m in
  go n

let corrupt t kind =
  match kind with
  | C_cycle -> (
      match first_nonempty_fine t with
      | None -> false
      | Some (_, head) ->
          (fine_tail head).next <- Some head;
          true)
  | C_cross_link -> (
      match first_nonempty_fine t with
      | None -> false
      | Some (b, head) -> (
          let rec next_nonempty b' =
            if b' >= t.buckets then None
            else
              match t.fine.(b') with
              | Some n -> Some n
              | None -> next_nonempty (b' + 1)
          in
          match next_nonempty (b + 1) with
          | None -> false
          | Some head2 ->
              (fine_tail head).next <- Some head2;
              true))
  | C_misplace -> (
      if t.buckets < 2 then false
      else
        match first_nonempty_fine t with
        | None -> false
        | Some (b, n) ->
            t.fine.(b) <- n.next;
            let b2 = (b + 1) mod t.buckets in
            n.next <- t.fine.(b2);
            t.fine.(b2) <- Some n;
            true)
  | C_duplicate -> (
      match first_nonempty_fine t with
      | None -> false
      | Some (b, n) ->
          let clone = alloc_node t ~coarse:false ~tag:n.tag ~word:n.word in
          clone.next <- t.fine.(b);
          t.fine.(b) <- Some clone;
          ignore (Atomic.fetch_and_add t.fine_nodes 1);
          true)
  | C_torn vpn ->
      (* what a torn multi-word update leaves in a fine bucket: a
         non-base word where only base words belong *)
      let bucket = hash t vpn in
      let n = alloc_node t ~coarse:false ~tag:vpn ~word:torn_garbage_word in
      n.next <- t.fine.(bucket);
      t.fine.(bucket) <- Some n;
      ignore (Atomic.fetch_and_add t.fine_nodes 1);
      true
  | C_count ->
      ignore (Atomic.fetch_and_add t.fine_nodes 1);
      true
