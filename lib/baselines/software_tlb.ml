module Types = Pt_common.Types

type t = {
  entries : int;
  ways : int;
  sets : int;
  tsb_addr : int64;
  tags : int64 array; (* tag of each entry; an empty entry holds -1 *)
  words : int64 array;
  stamps : int array; (* LRU within a set *)
  mutable clock : int;
  backing : Hashed_pt.t;
  mutable hits : int;
  mutable misses : int;
}

let name = "software-tlb"

let empty_tag = -1L

let create ?arena ?(entries = 4096) ?(ways = 1) ?(backing_buckets = 4096) () =
  if not (Addr.Bits.is_pow2 entries) then
    invalid_arg "Software_tlb: entries must be a power of two";
  if (not (Addr.Bits.is_pow2 ways)) || ways > entries then
    invalid_arg "Software_tlb: ways must be a power of two <= entries";
  let arena =
    match arena with Some a -> a | None -> Mem.Sim_memory.create ()
  in
  let tsb_addr =
    Mem.Sim_memory.alloc arena ~bytes:(entries * 16) ~align:4096
  in
  {
    entries;
    ways;
    sets = entries / ways;
    tsb_addr;
    tags = Array.make entries empty_tag;
    words = Array.make entries 0L;
    stamps = Array.make entries 0;
    clock = 0;
    backing = Hashed_pt.create ~arena ~buckets:backing_buckets ();
    hits = 0;
    misses = 0;
  }

let set_of t vpn = Int64.to_int (Int64.rem vpn (Int64.of_int t.sets))

let set_base t vpn = set_of t vpn * t.ways

(* index of the matching entry in vpn's set, if any *)
let find_in_set t vpn =
  let base = set_base t vpn in
  let rec go w =
    if w >= t.ways then None
    else if Int64.equal t.tags.(base + w) vpn then Some (base + w)
    else go (w + 1)
  in
  go 0

let set_addr t vpn = Int64.add t.tsb_addr (Int64.of_int (16 * set_base t vpn))

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* install into the set, evicting the LRU way if necessary *)
let install t vpn word =
  let base = set_base t vpn in
  let slot =
    match find_in_set t vpn with
    | Some i -> i
    | None ->
        let victim = ref base in
        for w = 1 to t.ways - 1 do
          if t.tags.(base + w) = empty_tag && t.tags.(!victim) <> empty_tag
          then victim := base + w
          else if
            t.tags.(base + w) <> empty_tag
            && t.tags.(!victim) <> empty_tag
            && t.stamps.(base + w) < t.stamps.(!victim)
          then victim := base + w
        done;
        !victim
  in
  t.tags.(slot) <- vpn;
  t.words.(slot) <- word;
  t.stamps.(slot) <- tick t

let lookup t ~vpn =
  (* the whole PTE group (set) is read linearly: ways x 16 bytes *)
  let walk =
    Types.walk_probe
      (Types.walk_read Types.empty_walk ~addr:(set_addr t vpn)
         ~bytes:(16 * t.ways))
  in
  match find_in_set t vpn with
  | Some i ->
      t.hits <- t.hits + 1;
      t.stamps.(i) <- tick t;
      ( Pt_common.Decode.translation_of_word ~subblock_factor:16 ~vpn
          t.words.(i),
        walk )
  | None ->
      t.misses <- t.misses + 1;
      let tr, backing_walk = Hashed_pt.lookup t.backing ~vpn in
      (* a backing hit refills the set, like a level-two TLB *)
      (match tr with
      | Some r when r.Types.kind = Types.Base ->
          install t vpn
            Pte.Base_pte.(encode (make ~ppn:r.Types.ppn ~attr:r.Types.attr ()))
      | _ -> ());
      (tr, Types.walk_join walk backing_walk)

(* Cold path: translated through the legacy walk, then replayed into
   the caller's accumulator. *)
let lookup_into t acc ~vpn =
  let tr, w = lookup t ~vpn in
  Types.acc_add_walk acc w;
  tr

let lookup_block t ~vpn ~subblock_factor =
  let base =
    Int64.mul
      (Int64.div vpn (Int64.of_int subblock_factor))
      (Int64.of_int subblock_factor)
  in
  let results = ref [] and walk = ref Types.empty_walk in
  for i = subblock_factor - 1 downto 0 do
    let page = Int64.add base (Int64.of_int i) in
    let tr, w = lookup t ~vpn:page in
    walk := Types.walk_join w !walk;
    match tr with Some tr -> results := (i, tr) :: !results | None -> ()
  done;
  (!results, !walk)

let insert_base t ~vpn ~ppn ~attr =
  (* always insert into the backing table (the source of truth); fill
     the TSB set, evicting the LRU way on conflict *)
  Hashed_pt.insert_base t.backing ~vpn ~ppn ~attr;
  install t vpn Pte.Base_pte.(encode (make ~ppn ~attr ()))

let insert_superpage _ ~vpn:_ ~size:_ ~ppn:_ ~attr:_ =
  invalid_arg "Software_tlb: superpages unsupported"

let insert_psb _ ~vpbn:_ ~vmask:_ ~ppn:_ ~attr:_ =
  invalid_arg "Software_tlb: partial-subblocks unsupported"

let remove t ~vpn =
  (match find_in_set t vpn with
  | Some i ->
      t.tags.(i) <- empty_tag;
      t.words.(i) <- 0L
  | None -> ());
  Hashed_pt.remove t.backing ~vpn

let set_attr_range t region ~f =
  Addr.Region.iter_vpns region (fun vpn ->
      match find_in_set t vpn with
      | Some i -> (
          match Pte.Word.decode t.words.(i) with
          | Pte.Word.Base b when b.valid ->
              t.words.(i) <- Pte.Base_pte.(encode { b with attr = f b.attr })
          | _ -> ())
      | None -> ());
  Hashed_pt.set_attr_range t.backing region ~f

let size_bytes t = (t.entries * 16) + Hashed_pt.size_bytes t.backing

let population t = Hashed_pt.population t.backing

let clear t =
  Array.fill t.tags 0 t.entries empty_tag;
  Array.fill t.words 0 t.entries 0L;
  Array.fill t.stamps 0 t.entries 0;
  Hashed_pt.clear t.backing;
  t.hits <- 0;
  t.misses <- 0

let tsb_hits t = t.hits

let tsb_misses t = t.misses
