(** Multi-level linear page table (paper, Section 2, Figure 2).

    Conceptually a single virtual array of PTEs indexed by VPN,
    physically materialized one 4 KB page (512 PTEs) at a time.  A tree
    of upper-level linear tables maps the page-table pages themselves:
    six levels cover a 64-bit address space, three cover 32 bits.

    A TLB miss reads exactly one leaf PTE; reaching the leaf page
    relies on the page table's own mappings being TLB-resident (the
    paper reserves eight of 64 TLB entries for them — that opportunity
    cost is modeled by the access-time experiment, not here, which is
    why [lookup] walks report a single read).

    Size accounting variants per the paper's Figure 9 / Table 2:
    - [`Six_level]: every allocated page at every level counts.
    - [`One_level]: only leaf pages count ("intermediate nodes are
      stored in a data structure that takes zero space").
    - [`Leaf_plus_hash]: leaf pages plus a 24-byte hashed PTE per leaf
      page for the mappings to the page table itself ("Linear with
      Hashed" in Table 2).

    Superpage and partial-subblock PTEs are stored by replication at
    every (valid) base-page site (Section 4.2), so they cannot shrink a
    linear page table. *)

type size_variant = [ `Six_level | `One_level | `Leaf_plus_hash ]

type t

val name : string

val create :
  ?arena:Mem.Sim_memory.t ->
  ?levels:int ->
  ?bits_per_level:int ->
  ?size_variant:size_variant ->
  unit ->
  t
(** Defaults: 6 levels, 9 bits (512 entries per page), [`Six_level]. *)

val lookup :
  t -> vpn:int64 -> Pt_common.Types.translation option * Pt_common.Types.walk

val lookup_into :
  t -> Mem.Walk_acc.t -> vpn:int64 -> Pt_common.Types.translation option
(** Allocation-free {!lookup}: appends the walk's reads and probes to
    the caller's reusable accumulator. *)

val lookup_block :
  t ->
  vpn:int64 ->
  subblock_factor:int ->
  (int * Pt_common.Types.translation) list * Pt_common.Types.walk
(** Adjacent leaf PTEs: the whole block is one contiguous read. *)

val insert_base : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_superpage :
  t -> vpn:int64 -> size:Addr.Page_size.t -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_psb :
  t -> vpbn:int64 -> vmask:int -> ppn:int64 -> attr:Pte.Attr.t -> unit

val remove : t -> vpn:int64 -> unit

val set_attr_range :
  t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int
(** Direct indexing: one "search" per leaf page touched. *)

val size_bytes : t -> int

val population : t -> int

val clear : t -> unit

val leaf_pages : t -> int
(** Allocated leaf (level-1) pages: Nactive(512). *)

val pages_at_level : t -> level:int -> int

val leaf_page_vpn : t -> vpn:int64 -> int64
(** Virtual page (in the page table's own address space) holding the
    PTE for [vpn]; the access-time experiment uses this to model the
    reserved TLB entries for page-table mappings. *)
