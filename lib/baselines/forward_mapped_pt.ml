module Types = Pt_common.Types

type sp_strategy = [ `Replicate | `Intermediate ]

type slot = Empty | Child of node | Word of int64

and node = {
  addr : int64;
  slots : slot array;
  mutable valid : int;
  level : int; (* 0 = root *)
}

type t = {
  arena : Mem.Sim_memory.t;
  bits : int array;
  shifts : int array; (* VPN bits below each level's index field *)
  sp_strategy : sp_strategy;
  guarded : bool;
  root : node;
  mutable nodes : int;
  mutable bytes : int;
}

let name = "forward-mapped"

let node_align = 256

let default_bits = [| 8; 8; 8; 8; 8; 6; 6 |]

let alloc_node t ~level =
  let entries = 1 lsl t.bits.(level) in
  let bytes = entries * 8 in
  let addr = Mem.Sim_memory.alloc t.arena ~bytes ~align:node_align in
  t.nodes <- t.nodes + 1;
  t.bytes <- t.bytes + bytes;
  { addr; slots = Array.make entries Empty; valid = 0; level }

let release_node t n =
  let bytes = Array.length n.slots * 8 in
  Mem.Sim_memory.free t.arena ~addr:n.addr ~bytes ~align:node_align;
  t.nodes <- t.nodes - 1;
  t.bytes <- t.bytes - bytes

let create ?arena ?(bits_per_level = default_bits) ?(sp_strategy = `Replicate)
    ?(guarded = false) () =
  if Array.length bits_per_level < 2 then
    invalid_arg "Forward_mapped_pt: need at least two levels";
  Array.iter
    (fun b ->
      if b < 1 || b > 12 then invalid_arg "Forward_mapped_pt: bits per level")
    bits_per_level;
  let arena =
    match arena with Some a -> a | None -> Mem.Sim_memory.create ()
  in
  let n = Array.length bits_per_level in
  let shifts = Array.make n 0 in
  let below = ref 0 in
  for i = n - 1 downto 0 do
    shifts.(i) <- !below;
    below := !below + bits_per_level.(i)
  done;
  let t =
    {
      arena;
      bits = bits_per_level;
      shifts;
      sp_strategy;
      guarded;
      root =
        {
          addr = 0L;
          slots = [||];
          valid = 0;
          level = 0;
        };
      nodes = 0;
      bytes = 0;
    }
  in
  (* replace the placeholder root with a real allocated node *)
  let root = alloc_node t ~level:0 in
  { t with root }

let levels t = Array.length t.bits

let index_at t ~level vpn =
  Int64.to_int (Addr.Bits.extract vpn ~lo:t.shifts.(level) ~width:t.bits.(level))

let slot_addr n idx = Int64.add n.addr (Int64.of_int (8 * idx))

(* base pages covered by one slot at [level] *)
let span_at t ~level = Int64.shift_left 1L t.shifts.(level)

(* --- lookup --- *)

(* A single-child intermediate node is compressed away under guarded
   page tables: the guard lives in the parent's pointer, so the node
   costs no read.  The root and the leaf are always real. *)
let compressed t n =
  t.guarded && n.level > 0 && n.level < levels t - 1 && n.valid = 1
  &&
  match n.slots.(
    (* its only slot *)
    let rec first i = if n.slots.(i) = Empty then first (i + 1) else i in
    first 0)
  with
  | Child _ -> true
  | Word _ | Empty -> false

let lookup_into t acc ~vpn =
  let rec descend n =
    let idx = index_at t ~level:n.level vpn in
    if not (compressed t n) then begin
      Mem.Walk_acc.read acc ~addr:(slot_addr n idx) ~bytes:8;
      Mem.Walk_acc.probe acc
    end;
    match n.slots.(idx) with
    | Empty -> None
    | Word w -> Pt_common.Decode.translation_of_word ~subblock_factor:16 ~vpn w
    | Child c -> descend c
  in
  descend t.root

let lookup t ~vpn =
  let acc = Mem.Walk_acc.create ~capacity:8 () in
  let tr = lookup_into t acc ~vpn in
  (tr, Types.acc_to_walk acc)

let lookup_block t ~vpn ~subblock_factor =
  (* descend once, then the block's leaf slots are adjacent memory *)
  let block_base =
    Int64.mul
      (Int64.div vpn (Int64.of_int subblock_factor))
      (Int64.of_int subblock_factor)
  in
  let leaf_level = levels t - 1 in
  let rec descend n walk =
    let idx = index_at t ~level:n.level block_base in
    if n.level = leaf_level then begin
      let walk =
        Types.walk_probe
          (Types.walk_read walk ~addr:(slot_addr n idx)
             ~bytes:(8 * subblock_factor))
      in
      let results = ref [] in
      for i = subblock_factor - 1 downto 0 do
        let page = Int64.add block_base (Int64.of_int i) in
        if idx + i < Array.length n.slots then
          match n.slots.(idx + i) with
          | Word w -> (
              match
                Pt_common.Decode.translation_of_word ~subblock_factor:16
                  ~vpn:page w
              with
              | Some tr -> results := (i, tr) :: !results
              | None -> ())
          | Empty | Child _ -> ()
      done;
      (!results, walk)
    end
    else
      let walk =
        Types.walk_probe
          (Types.walk_read walk ~addr:(slot_addr n idx) ~bytes:8)
      in
      match n.slots.(idx) with
      | Empty -> ([], walk)
      | Word w -> (
          (* an intermediate superpage covers the whole block *)
          let results = ref [] in
          for i = subblock_factor - 1 downto 0 do
            let page = Int64.add block_base (Int64.of_int i) in
            match
              Pt_common.Decode.translation_of_word ~subblock_factor:16
                ~vpn:page w
            with
            | Some tr -> results := (i, tr) :: !results
            | None -> ()
          done;
          (!results, walk))
      | Child c -> descend c walk
  in
  descend t.root Types.empty_walk

(* --- insertion --- *)

let rec ensure_path t n vpn ~down_to =
  if n.level = down_to then n
  else
    let idx = index_at t ~level:n.level vpn in
    match n.slots.(idx) with
    | Child c -> ensure_path t c vpn ~down_to
    | Empty ->
        let c = alloc_node t ~level:(n.level + 1) in
        n.slots.(idx) <- Child c;
        n.valid <- n.valid + 1;
        ensure_path t c vpn ~down_to
    | Word _ ->
        invalid_arg
          "Forward_mapped_pt: mapping conflict with an intermediate superpage"

let set_word_at t vpn ~level word =
  let n = ensure_path t t.root vpn ~down_to:level in
  let idx = index_at t ~level vpn in
  (match n.slots.(idx) with
  | Empty -> n.valid <- n.valid + 1
  | Word _ -> ()
  | Child _ ->
      invalid_arg "Forward_mapped_pt: slot holds a subtree");
  n.slots.(idx) <- Word word

let insert_base t ~vpn ~ppn ~attr =
  set_word_at t vpn ~level:(levels t - 1)
    Pte.Base_pte.(encode (make ~ppn ~attr ()))

let insert_superpage t ~vpn ~size ~ppn ~attr =
  let sz = Addr.Page_size.sz_code size in
  if not (Addr.Bits.is_aligned vpn sz) then
    invalid_arg "Forward_mapped_pt.insert_superpage: VPN not aligned";
  let word = Pte.Superpage_pte.(encode (make ~size ~ppn ~attr ())) in
  let replicate () =
    for i = 0 to Addr.Page_size.base_pages size - 1 do
      set_word_at t (Int64.add vpn (Int64.of_int i)) ~level:(levels t - 1) word
    done
  in
  match t.sp_strategy with
  | `Replicate -> replicate ()
  | `Intermediate -> (
      (* a size matching some level's span stores one word there *)
      let matching = ref None in
      Array.iteri
        (fun level _ ->
          if span_at t ~level = Int64.of_int (Addr.Page_size.base_pages size)
          then matching := Some level)
        t.bits;
      match !matching with
      | Some level -> set_word_at t vpn ~level word
      | None -> replicate ())

let insert_psb t ~vpbn ~vmask ~ppn ~attr =
  let word = Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr)) in
  let block_base = Int64.shift_left vpbn 4 in
  for i = 0 to 15 do
    if vmask land (1 lsl i) <> 0 then
      set_word_at t (Int64.add block_base (Int64.of_int i))
        ~level:(levels t - 1) word
  done

(* --- removal --- *)

let clear_site t vpn =
  (* descend with the path recorded, clear the site, prune empties *)
  let rec descend n path =
    let idx = index_at t ~level:n.level vpn in
    match n.slots.(idx) with
    | Empty -> ()
    | Word _ ->
        n.slots.(idx) <- Empty;
        n.valid <- n.valid - 1;
        prune path n
    | Child c -> descend c ((n, idx) :: path)
  and prune path n =
    if n.valid = 0 && n.level > 0 then
      match path with
      | (parent, idx) :: rest ->
          parent.slots.(idx) <- Empty;
          parent.valid <- parent.valid - 1;
          release_node t n;
          prune rest parent
      | [] -> ()
  in
  descend t.root []

let find_word_site t vpn =
  let rec descend n =
    let idx = index_at t ~level:n.level vpn in
    match n.slots.(idx) with
    | Empty -> None
    | Word w -> Some (w, n.level)
    | Child c -> descend c
  in
  descend t.root


let remove t ~vpn =
  match find_word_site t vpn with
  | None -> ()
  | Some (w, site_level) -> (
      match Pte.Word.decode w with
      | Pte.Word.Base _ -> clear_site t vpn
      | Pte.Word.Superpage sp ->
          if sp.valid then begin
            let sz = Addr.Page_size.sz_code sp.size in
            let vpn_base = Addr.Bits.align_down vpn sz in
            if site_level < levels t - 1 then
              (* stored once at an intermediate node *)
              clear_site t vpn_base
            else
              for i = 0 to Addr.Page_size.base_pages sp.size - 1 do
                clear_site t (Int64.add vpn_base (Int64.of_int i))
              done
          end
      | Pte.Word.Psb p ->
          let boff = Addr.Vaddr.boff_of_vpn ~subblock_factor:16 vpn in
          if Pte.Psb_pte.valid_at p ~boff then begin
            let p' = Pte.Psb_pte.clear_valid p ~boff in
            let block_base = Addr.Bits.align_down vpn 4 in
            clear_site t vpn;
            if p'.Pte.Psb_pte.vmask <> 0 then begin
              let word = Pte.Psb_pte.encode p' in
              for i = 0 to 15 do
                if Pte.Psb_pte.valid_at p' ~boff:i then
                  set_word_at t
                    (Int64.add block_base (Int64.of_int i))
                    ~level:(levels t - 1) word
              done
            end
          end)

(* --- range attribute updates --- *)

let set_attr_range t region ~f =
  if Addr.Region.is_empty region then 0
  else begin
    let touched = Hashtbl.create 8 in
    Addr.Region.iter_vpns region (fun vpn ->
        let rec descend n =
          let idx = index_at t ~level:n.level vpn in
          match n.slots.(idx) with
          | Empty -> ()
          | Word w ->
              Hashtbl.replace touched n.addr ();
              (match Pt_common.Decode.reencode_attr w ~f with
              | Some w' -> n.slots.(idx) <- Word w'
              | None -> ())
          | Child c -> descend c
        in
        descend t.root);
    Hashtbl.length touched
  end

(* --- accounting --- *)

let size_bytes t =
  if not t.guarded then t.bytes
  else begin
    (* compressed nodes store nothing *)
    let saved = ref 0 in
    let rec visit n =
      if compressed t n then saved := !saved + (Array.length n.slots * 8);
      Array.iter (function Child c -> visit c | _ -> ()) n.slots
    in
    visit t.root;
    t.bytes - !saved
  end

let node_count t = t.nodes

let population t =
  let count = ref 0 in
  let rec visit n =
    Array.iter
      (function
        | Empty -> ()
        | Child c -> visit c
        | Word w -> (
            match Pte.Word.decode w with
            | Pte.Word.Base b -> if b.valid then incr count
            | Pte.Word.Superpage sp ->
                if sp.valid then
                  if n.level = levels t - 1 then incr count
                  else
                    count :=
                      !count + Int64.to_int (span_at t ~level:n.level)
            | Pte.Word.Psb _ -> incr count))
      n.slots
  in
  visit t.root;
  !count

let clear t =
  let rec free n =
    Array.iteri
      (fun i slot ->
        match slot with
        | Child c ->
            free c;
            n.slots.(i) <- Empty
        | Word _ -> n.slots.(i) <- Empty
        | Empty -> ())
      n.slots;
    if n.level > 0 then release_node t n
  in
  free t.root;
  t.root.valid <- 0
