(** Software TLB / translation storage buffer (paper, Section 2 and 7;
    swTLB [Huck93], UltraSPARC TSB [Yung95], PowerPC page table
    [Silh93]).

    A memory-resident array of pre-allocated (tag, PTE-word) pairs
    indexed by low VPN bits: a hit costs exactly one set read, there
    are no next pointers.  [ways] > 1 gives the set-associative layout
    of the PowerPC page table (a PTE group per index, searched
    linearly, LRU within the set).  Conflicting insertions evict to a
    backing hashed page table, probed on a TSB miss — "memory-resident
    level-two TLBs with overflow handled in many ways". *)

type t

val name : string

val create :
  ?arena:Mem.Sim_memory.t ->
  ?entries:int ->
  ?ways:int ->
  ?backing_buckets:int ->
  unit ->
  t
(** Default 4096 entries, direct-mapped (ways = 1), 4096 backing
    buckets.  [entries] must be a multiple of [ways], both powers of
    two. *)

val lookup :
  t -> vpn:int64 -> Pt_common.Types.translation option * Pt_common.Types.walk

val lookup_into :
  t -> Mem.Walk_acc.t -> vpn:int64 -> Pt_common.Types.translation option
(** Allocation-free {!lookup}: appends the walk's reads and probes to
    the caller's reusable accumulator. *)

val lookup_block :
  t ->
  vpn:int64 ->
  subblock_factor:int ->
  (int * Pt_common.Types.translation) list * Pt_common.Types.walk

val insert_base : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_superpage :
  t -> vpn:int64 -> size:Addr.Page_size.t -> ppn:int64 -> attr:Pte.Attr.t -> unit
(** Always raises [Invalid_argument] (the paper applies clustering, not
    the TSB, to superpage storage; see [Tall95]). *)

val insert_psb :
  t -> vpbn:int64 -> vmask:int -> ppn:int64 -> attr:Pte.Attr.t -> unit
(** Always raises [Invalid_argument]. *)

val remove : t -> vpn:int64 -> unit

val set_attr_range :
  t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int

val size_bytes : t -> int

val population : t -> int

val clear : t -> unit

val tsb_hits : t -> int

val tsb_misses : t -> int
