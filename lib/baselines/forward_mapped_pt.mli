(** Forward-mapped page table (paper, Section 2, Figure 3).

    A top-down n-ary tree: fixed VPN bit fields index each level; leaf
    nodes hold PTEs, intermediate nodes hold pointers (PTPs).  Seven
    levels cover a 64-bit space, which is why every TLB miss costs
    about seven memory reads — the paper's reason to call the design
    impractical for 64 bits.

    Superpage strategies (Section 4.2):
    - [`Replicate] (the paper's evaluated choice): the superpage word
      is stored at every covered base-page site.
    - [`Intermediate]: superpages whose size matches a subtree boundary
      are stored as PTEs in intermediate nodes (SPARC Reference MMU
      style), short-circuiting the walk; other sizes fall back to
      replication. *)

type sp_strategy = [ `Replicate | `Intermediate ]

type t

val name : string

val create :
  ?arena:Mem.Sim_memory.t ->
  ?bits_per_level:int array ->
  ?sp_strategy:sp_strategy ->
  ?guarded:bool ->
  unit ->
  t
(** Default levels: [|8;8;8;8;8;6;6|] root-to-leaf, covering 52 VPN
    bits; default strategy [`Replicate].

    [guarded] models guarded page tables [Lied95] (Section 2's
    "partially effective" short-circuit): an intermediate node with a
    single occupied slot is compressed away — its parent's pointer
    carries the skipped index bits as a guard — so neither its bytes
    nor its walk read are charged.  Dense trees have few single-child
    nodes, which is exactly why the technique only partially helps. *)

val levels : t -> int

val lookup :
  t -> vpn:int64 -> Pt_common.Types.translation option * Pt_common.Types.walk
(** Charges one read per level descended (a failed walk stops at the
    first missing node). *)

val lookup_into :
  t -> Mem.Walk_acc.t -> vpn:int64 -> Pt_common.Types.translation option
(** Allocation-free {!lookup}: appends the walk's reads and probes to
    the caller's reusable accumulator. *)

val lookup_block :
  t ->
  vpn:int64 ->
  subblock_factor:int ->
  (int * Pt_common.Types.translation) list * Pt_common.Types.walk

val insert_base : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_superpage :
  t -> vpn:int64 -> size:Addr.Page_size.t -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_psb :
  t -> vpbn:int64 -> vmask:int -> ppn:int64 -> attr:Pte.Attr.t -> unit

val remove : t -> vpn:int64 -> unit

val set_attr_range :
  t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int

val size_bytes : t -> int

val population : t -> int

val clear : t -> unit

val node_count : t -> int
