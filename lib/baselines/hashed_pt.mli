(** Hashed (inverted-style) page table with chaining (paper,
    Section 2, Figure 4).

    Each PTE is a 24-byte node: an eight-byte VPN tag, an eight-byte
    next pointer and one eight-byte mapping word.  The [packed] option
    models the Section 7 optimization that squeezes tag and next into
    one word (16-byte PTEs, a 33% size reduction) without changing the
    access pattern.

    Superpage / partial-subblock storage follows the strategies of
    Section 4.2:

    - {!Two_tables}: a second logical table keyed by 64 KB page block
      holds superpage and partial-subblock PTEs; lookup probes the 4 KB
      table first (or the coarse table first with [coarse_first],
      the Section 6.3 suggestion for partial-subblock-heavy loads).
    - {!Superpage_index}: one table hashed on the 64 KB-block index for
      every PTE, so base and superpage PTEs share buckets at the cost
      of longer chains.
    - {!No_superpages}: a plain single-page-size table;
      [insert_superpage] and [insert_psb] raise. *)

type sp_mode =
  | No_superpages
  | Two_tables of { coarse_first : bool }
  | Superpage_index

type t

val name : string

val create :
  ?arena:Mem.Sim_memory.t ->
  ?buckets:int ->
  ?subblock_factor:int ->
  ?packed:bool ->
  ?mode:sp_mode ->
  unit ->
  t
(** Defaults: 4096 buckets, factor 16, unpacked, [No_superpages]. *)

val mode : t -> sp_mode

val buckets : t -> int

val bucket_of : t -> vpn:int64 -> int
(** The fine-table hash bucket serving [vpn] — the stripe an external
    per-bucket lock table (see [lib/service]) must hold to make an
    operation on [vpn] atomic.  Sufficient for [No_superpages] and
    [Superpage_index] modes, whose entry points touch exactly one
    bucket; [Two_tables] mode also probes a coarse bucket and needs
    coarser exclusion. *)

val lookup :
  t -> vpn:int64 -> Pt_common.Types.translation option * Pt_common.Types.walk

val lookup_into :
  t -> Mem.Walk_acc.t -> vpn:int64 -> Pt_common.Types.translation option
(** Allocation-free {!lookup}: appends the walk's reads and probes to
    the caller's reusable accumulator. *)

val lookup_block :
  t ->
  vpn:int64 ->
  subblock_factor:int ->
  (int * Pt_common.Types.translation) list * Pt_common.Types.walk

val insert_base : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_superpage :
  t -> vpn:int64 -> size:Addr.Page_size.t -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_psb :
  t -> vpbn:int64 -> vmask:int -> ppn:int64 -> attr:Pte.Attr.t -> unit

val remove : t -> vpn:int64 -> unit

val set_attr_range :
  t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int
(** One hash search per base page — the Section 3.1 cost a clustered
    table amortizes to one per block. *)

val size_bytes : t -> int

val population : t -> int

val clear : t -> unit

val node_count : t -> int

(** {2 Deferred reclamation (lock-free readers)}

    Mirrors [Clustered_pt.Table]: with a hook installed, unlinked
    nodes go to a stamped limbo list — tags swapped for a sentinel no
    live key matches, [next] pointers intact, so optimistic readers
    already past the unlink finish safely — and return to the arena
    only via {!reclaim} once their stamp is proven reader-free. *)

val set_reclaim_hook : t -> (unit -> int) option -> unit
(** Install ([Some stamp_of]) or remove ([None]) the deferred-
    reclamation hook.  Flip only at quiescence. *)

val reclaim : t -> upto:int -> unit
(** Free every limbo node stamped strictly below [upto]. *)

val limbo_nodes : t -> int
(** Nodes currently in limbo: unlinked, not yet freed. *)

val subblock_factor : t -> int

val load_factor : t -> float
(** Base-table nodes per bucket (the formulae's alpha). *)

(** {2 Structure inspection (telemetry probes, tests)} *)

val chain_length : t -> bucket:int -> int
(** Nodes on the fine-table chain of [bucket]. *)

val iter_chain_words : t -> bucket:int -> (int64 -> unit) -> unit
(** The PTE word of every node on the fine-table chain of [bucket]. *)

val iter_chain_tags : t -> bucket:int -> (int64 -> unit) -> unit
(** The tag of every node on the fine-table chain of [bucket] (the VPN
    in [No_superpages] mode) — the hashed counterpart of
    [Clustered_pt.Table.iter_chain_tags], used by the cross-replica
    live-set enumeration. *)

(** {2 Integrity verification and repair (fsck)}

    Mirrors {!Clustered_pt.Table.check}: chain acyclicity, bucket
    residency for every tag kind of every mode, word-format legality
    (a non-base word on a fine chain is the signature a torn update
    leaves), duplicate (tag, kind) nodes, coarse-table superpage
    replica consistency, representation exclusivity via a global
    page-coverage map, and the node accounting.  Cycle-safe; run at
    quiescence. *)

type violation =
  | Chain_cycle of { coarse : bool; bucket : int }
  | Cross_link of { coarse : bool; bucket : int; first_bucket : int }
  | Wrong_bucket of { coarse : bool; bucket : int; tag : int64 }
  | Dup_node of { coarse : bool; bucket : int; tag : int64 }
  | Bad_word of { coarse : bool; bucket : int; tag : int64 }
  | Torn_replica of { bucket : int; tag : int64 }
      (** a multi-block superpage's coarse replica missing or diverged *)
  | Coverage_overlap of { vpn : int64 }
      (** base page reachable through two PTEs *)
  | Limbo_live_overlap of { bucket : int }
      (** a retired limbo node is still chained *)
  | Limbo_live_tag  (** a limbo node kept its live tag *)
  | Limbo_count_mismatch of { counted : int; recorded : int }
  | Node_count_mismatch of { coarse : bool; counted : int; recorded : int }

val violation_code : violation -> string
(** Stable machine-readable code; shares the clustered checker's
    vocabulary (["chain_cycle"], ["bad_word"], ...). *)

val pp_violation : Format.formatter -> violation -> unit

val check : t -> violation list
(** All violations in deterministic table/bucket/chain order; [[]] on a
    healthy table. *)

type repair_report = {
  violations : violation list;  (** what {!check} found before repair *)
  kept : int;  (** PTE entries reinserted *)
  dropped : int;  (** corrupted or conflicting entries discarded *)
}

val repair : t -> repair_report
(** Harvest surviving mode-legal PTEs cycle-safely, arbitrate
    double-mapped pages first-wins, then reset both tables and
    reinsert.  After [repair], {!check} returns [[]].  The old nodes'
    arena bytes are abandoned. *)

type bucket_image
(** Opaque copy of one fine-table bucket's chain — the per-operation
    undo journal of the self-healing service (which drives hashed
    tables in [No_superpages] mode, where every write touches exactly
    one fine bucket). *)

val snapshot_bucket : t -> bucket:int -> bucket_image

val restore_bucket : t -> bucket:int -> bucket_image -> unit
(** Restore the fine chain exactly as snapshotted (order, tags,
    words); node counts are adjusted by the difference. *)

type corruption =
  | C_cycle  (** tie a fine chain's tail back to its head *)
  | C_cross_link  (** link a fine tail into another bucket's chain *)
  | C_misplace  (** move a fine node to a bucket its tag doesn't hash to *)
  | C_duplicate  (** clone a fine node into its own bucket *)
  | C_torn of int64
      (** plant a structurally illegal word in [vpn]'s fine bucket *)
  | C_count  (** drift the fine-table node counter *)

val corrupt : t -> corruption -> bool
(** Inject one corruption (no false negatives in {!check} is proven
    against these).  False when no applicable site exists. *)
