(** Hashed (inverted-style) page table with chaining (paper,
    Section 2, Figure 4).

    Each PTE is a 24-byte node: an eight-byte VPN tag, an eight-byte
    next pointer and one eight-byte mapping word.  The [packed] option
    models the Section 7 optimization that squeezes tag and next into
    one word (16-byte PTEs, a 33% size reduction) without changing the
    access pattern.

    Superpage / partial-subblock storage follows the strategies of
    Section 4.2:

    - {!Two_tables}: a second logical table keyed by 64 KB page block
      holds superpage and partial-subblock PTEs; lookup probes the 4 KB
      table first (or the coarse table first with [coarse_first],
      the Section 6.3 suggestion for partial-subblock-heavy loads).
    - {!Superpage_index}: one table hashed on the 64 KB-block index for
      every PTE, so base and superpage PTEs share buckets at the cost
      of longer chains.
    - {!No_superpages}: a plain single-page-size table;
      [insert_superpage] and [insert_psb] raise. *)

type sp_mode =
  | No_superpages
  | Two_tables of { coarse_first : bool }
  | Superpage_index

type t

val name : string

val create :
  ?arena:Mem.Sim_memory.t ->
  ?buckets:int ->
  ?subblock_factor:int ->
  ?packed:bool ->
  ?mode:sp_mode ->
  unit ->
  t
(** Defaults: 4096 buckets, factor 16, unpacked, [No_superpages]. *)

val mode : t -> sp_mode

val buckets : t -> int

val bucket_of : t -> vpn:int64 -> int
(** The fine-table hash bucket serving [vpn] — the stripe an external
    per-bucket lock table (see [lib/service]) must hold to make an
    operation on [vpn] atomic.  Sufficient for [No_superpages] and
    [Superpage_index] modes, whose entry points touch exactly one
    bucket; [Two_tables] mode also probes a coarse bucket and needs
    coarser exclusion. *)

val lookup :
  t -> vpn:int64 -> Pt_common.Types.translation option * Pt_common.Types.walk

val lookup_into :
  t -> Mem.Walk_acc.t -> vpn:int64 -> Pt_common.Types.translation option
(** Allocation-free {!lookup}: appends the walk's reads and probes to
    the caller's reusable accumulator. *)

val lookup_block :
  t ->
  vpn:int64 ->
  subblock_factor:int ->
  (int * Pt_common.Types.translation) list * Pt_common.Types.walk

val insert_base : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_superpage :
  t -> vpn:int64 -> size:Addr.Page_size.t -> ppn:int64 -> attr:Pte.Attr.t -> unit

val insert_psb :
  t -> vpbn:int64 -> vmask:int -> ppn:int64 -> attr:Pte.Attr.t -> unit

val remove : t -> vpn:int64 -> unit

val set_attr_range :
  t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int
(** One hash search per base page — the Section 3.1 cost a clustered
    table amortizes to one per block. *)

val size_bytes : t -> int

val population : t -> int

val clear : t -> unit

val node_count : t -> int

val subblock_factor : t -> int

val load_factor : t -> float
(** Base-table nodes per bucket (the formulae's alpha). *)

(** {2 Structure inspection (telemetry probes, tests)} *)

val chain_length : t -> bucket:int -> int
(** Nodes on the fine-table chain of [bucket]. *)

val iter_chain_words : t -> bucket:int -> (int64 -> unit) -> unit
(** The PTE word of every node on the fine-table chain of [bucket]. *)
