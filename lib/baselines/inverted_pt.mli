(** Inverted page table (paper, Section 2; IBM System/38 [IBM78], 801
    [Chan88] style).

    The authentic frame-table design: exactly one PTE per *physical*
    frame, stored at the frame's index, with a hash anchor array of
    frame pointers and chains linked through frame indices — "hash to
    an array of pointers that when dereferenced obtain the first
    element of the hash bucket".  Every lookup therefore pays the
    anchor dereference on top of the chain walk, and table size is
    fixed by physical memory (slots x 8 + frames x 16 bytes),
    independent of how many pages are mapped — the structural
    trade-off that distinguishes inverted tables from the chained
    hashed tables the paper builds on.

    A frame holds one mapping: inserting a new virtual page into an
    occupied frame replaces the frame's previous mapping (the OS freed
    or stole the frame).  Single page size only. *)

type t

val name : string

val create : ?arena:Mem.Sim_memory.t -> ?slots:int -> ?frames:int -> unit -> t
(** Default 4096 anchor slots, 65536 frames (256 MB of physical
    memory). *)

val frames : t -> int

val lookup :
  t -> vpn:int64 -> Pt_common.Types.translation option * Pt_common.Types.walk

val lookup_into :
  t -> Mem.Walk_acc.t -> vpn:int64 -> Pt_common.Types.translation option
(** Allocation-free {!lookup}: appends the walk's reads and probes to
    the caller's reusable accumulator. *)

val lookup_block :
  t ->
  vpn:int64 ->
  subblock_factor:int ->
  (int * Pt_common.Types.translation) list * Pt_common.Types.walk

val insert_base : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit
(** Raises [Invalid_argument] if [ppn >= frames]. *)

val insert_superpage :
  t -> vpn:int64 -> size:Addr.Page_size.t -> ppn:int64 -> attr:Pte.Attr.t -> unit
(** Always raises [Invalid_argument]. *)

val insert_psb :
  t -> vpbn:int64 -> vmask:int -> ppn:int64 -> attr:Pte.Attr.t -> unit
(** Always raises [Invalid_argument]. *)

val remove : t -> vpn:int64 -> unit

val set_attr_range :
  t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int

val size_bytes : t -> int
(** Anchor array plus the whole frame table: constant for a given
    physical memory. *)

val population : t -> int

val clear : t -> unit
