module Types = Pt_common.Types

type size_variant = [ `Six_level | `One_level | `Leaf_plus_hash ]

type page = { addr : int64; words : int64 array; mutable valid : int }

type t = {
  arena : Mem.Sim_memory.t;
  levels : int;
  bits : int;
  size_variant : size_variant;
  (* (level, page index) -> page; level 1 is the leaf level *)
  pages : (int * int64, page) Hashtbl.t;
}

let name = "linear"

let page_bytes = 4096

let create ?arena ?(levels = 6) ?(bits_per_level = 9)
    ?(size_variant = `Six_level) () =
  if levels < 1 || levels > 8 then invalid_arg "Linear_pt: levels";
  if bits_per_level < 1 || bits_per_level > 9 then
    invalid_arg "Linear_pt: bits per level";
  let arena =
    match arena with Some a -> a | None -> Mem.Sim_memory.create ()
  in
  {
    arena;
    levels;
    bits = bits_per_level;
    size_variant;
    pages = Hashtbl.create 256;
  }

let entries t = 1 lsl t.bits

(* page index at [level] covering [vpn] (level 1 = leaf) *)
let index_at t ~level vpn = Int64.shift_right_logical vpn (t.bits * level)

let slot_at t ~level vpn =
  Int64.to_int
    (Addr.Bits.extract vpn ~lo:(t.bits * (level - 1)) ~width:t.bits)

let find_page t ~level vpn = Hashtbl.find_opt t.pages (level, index_at t ~level vpn)

let alloc_page t ~level vpn =
  let addr = Mem.Sim_memory.alloc t.arena ~bytes:page_bytes ~align:page_bytes in
  let p = { addr; words = Array.make (entries t) 0L; valid = 0 } in
  Hashtbl.replace t.pages (level, index_at t ~level vpn) p;
  p

(* Make the leaf page for [vpn] exist, materializing intermediate
   levels bottom-up the way a soft page fault on the page table
   would. *)
let rec ensure_page t ~level vpn =
  match find_page t ~level vpn with
  | Some p -> p
  | None ->
      let p = alloc_page t ~level vpn in
      if level < t.levels then begin
        let parent = ensure_page t ~level:(level + 1) vpn in
        let slot = slot_at t ~level:(level + 1) vpn in
        if parent.words.(slot) = 0L then begin
          parent.words.(slot) <- p.addr;
          parent.valid <- parent.valid + 1
        end
      end;
      p

let rec prune t ~level vpn =
  match find_page t ~level vpn with
  | None -> ()
  | Some p ->
      if p.valid = 0 then begin
        Hashtbl.remove t.pages (level, index_at t ~level vpn);
        Mem.Sim_memory.free t.arena ~addr:p.addr ~bytes:page_bytes
          ~align:page_bytes;
        if level < t.levels then begin
          match find_page t ~level:(level + 1) vpn with
          | Some parent ->
              let slot = slot_at t ~level:(level + 1) vpn in
              if parent.words.(slot) <> 0L then begin
                parent.words.(slot) <- 0L;
                parent.valid <- parent.valid - 1;
                prune t ~level:(level + 1) vpn
              end
          | None -> ()
        end
      end

let set_leaf_word t vpn word =
  let leaf = ensure_page t ~level:1 vpn in
  let slot = slot_at t ~level:1 vpn in
  let was_valid = Pte.Word.is_valid (Pte.Word.decode leaf.words.(slot)) in
  let now_valid = Pte.Word.is_valid (Pte.Word.decode word) in
  leaf.words.(slot) <- word;
  (match (was_valid, now_valid) with
  | false, true -> leaf.valid <- leaf.valid + 1
  | true, false -> leaf.valid <- leaf.valid - 1
  | _ -> ());
  if leaf.valid = 0 then prune t ~level:1 vpn

(* --- lookup --- *)

let lookup_into t acc ~vpn =
  (* one read of the leaf PTE; the page table's own mappings are
     assumed TLB-resident (reserved entries), which the access-time
     experiment charges as opportunity cost *)
  match find_page t ~level:1 vpn with
  | None ->
      Mem.Walk_acc.probe acc;
      None
  | Some leaf ->
      let slot = slot_at t ~level:1 vpn in
      Mem.Walk_acc.read acc
        ~addr:(Int64.add leaf.addr (Int64.of_int (8 * slot)))
        ~bytes:8;
      Mem.Walk_acc.probe acc;
      Pt_common.Decode.translation_of_word ~subblock_factor:16 ~vpn
        leaf.words.(slot)

let lookup t ~vpn =
  let acc = Mem.Walk_acc.create ~capacity:4 () in
  let tr = lookup_into t acc ~vpn in
  (tr, Types.acc_to_walk acc)

let lookup_block t ~vpn ~subblock_factor =
  (* adjacent leaf PTEs: the block is one contiguous read *)
  let block_base =
    Int64.mul
      (Int64.div vpn (Int64.of_int subblock_factor))
      (Int64.of_int subblock_factor)
  in
  match find_page t ~level:1 block_base with
  | None -> ([], Types.walk_probe Types.empty_walk)
  | Some leaf ->
      let slot0 = slot_at t ~level:1 block_base in
      let walk =
        Types.walk_probe
          (Types.walk_read Types.empty_walk
             ~addr:(Int64.add leaf.addr (Int64.of_int (8 * slot0)))
             ~bytes:(8 * subblock_factor))
      in
      let results = ref [] in
      for i = subblock_factor - 1 downto 0 do
        let page = Int64.add block_base (Int64.of_int i) in
        let slot = slot0 + i in
        if slot < Array.length leaf.words then
          match
            Pt_common.Decode.translation_of_word
              ~subblock_factor:(max subblock_factor 16)
              ~vpn:page leaf.words.(slot)
          with
          | Some tr -> results := (i, tr) :: !results
          | None -> ()
      done;
      (!results, walk)

(* --- insertion --- *)

let insert_base t ~vpn ~ppn ~attr =
  set_leaf_word t vpn Pte.Base_pte.(encode (make ~ppn ~attr ()))

let insert_superpage t ~vpn ~size ~ppn ~attr =
  (* replicate-PTEs (Section 4.2): the superpage word is stored at
     every covered base-page site, so superpages cannot shrink a
     linear page table *)
  let sz = Addr.Page_size.sz_code size in
  if not (Addr.Bits.is_aligned vpn sz) then
    invalid_arg "Linear_pt.insert_superpage: VPN not aligned";
  let word = Pte.Superpage_pte.(encode (make ~size ~ppn ~attr ())) in
  for i = 0 to Addr.Page_size.base_pages size - 1 do
    set_leaf_word t (Int64.add vpn (Int64.of_int i)) word
  done

let insert_psb t ~vpbn ~vmask ~ppn ~attr =
  (* replicated at each *valid* base site; missing pages keep faulting *)
  let word = Pte.Psb_pte.(encode (make ~vmask ~ppn ~attr)) in
  let block_base = Int64.shift_left vpbn 4 in
  for i = 0 to 15 do
    if vmask land (1 lsl i) <> 0 then
      set_leaf_word t (Int64.add block_base (Int64.of_int i)) word
  done

(* --- removal --- *)

let remove t ~vpn =
  match find_page t ~level:1 vpn with
  | None -> ()
  | Some leaf -> (
      let slot = slot_at t ~level:1 vpn in
      match Pte.Word.decode leaf.words.(slot) with
      | Pte.Word.Base b -> if b.valid then set_leaf_word t vpn 0L
      | Pte.Word.Superpage sp ->
          if sp.valid then begin
            (* drop every replica of the superpage *)
            let sz = Addr.Page_size.sz_code sp.size in
            let vpn_base = Addr.Bits.align_down vpn sz in
            for i = 0 to Addr.Page_size.base_pages sp.size - 1 do
              set_leaf_word t (Int64.add vpn_base (Int64.of_int i)) 0L
            done
          end
      | Pte.Word.Psb p ->
          let boff = Addr.Vaddr.boff_of_vpn ~subblock_factor:16 vpn in
          if Pte.Psb_pte.valid_at p ~boff then begin
            (* update the remaining replicas' valid vector *)
            let p' = Pte.Psb_pte.clear_valid p ~boff in
            let block_base = Addr.Bits.align_down vpn 4 in
            set_leaf_word t vpn 0L;
            if p'.Pte.Psb_pte.vmask <> 0 then begin
              let word = Pte.Psb_pte.encode p' in
              for i = 0 to 15 do
                if Pte.Psb_pte.valid_at p' ~boff:i then
                  set_leaf_word t (Int64.add block_base (Int64.of_int i)) word
              done
            end
          end)

(* --- range attribute updates --- *)

let set_attr_range t region ~f =
  if Addr.Region.is_empty region then 0
  else begin
    (* direct indexing: cost is one touch per leaf page *)
    let first = region.Addr.Region.first_vpn in
    let last = Addr.Region.last_vpn region in
    let touched = Hashtbl.create 8 in
    let vpn = ref first in
    while Int64.unsigned_compare !vpn last <= 0 do
      (match find_page t ~level:1 !vpn with
      | Some leaf ->
          Hashtbl.replace touched (index_at t ~level:1 !vpn) ();
          let slot = slot_at t ~level:1 !vpn in
          (match Pt_common.Decode.reencode_attr leaf.words.(slot) ~f with
          | Some w -> leaf.words.(slot) <- w
          | None -> ())
      | None -> ());
      vpn := Int64.succ !vpn
    done;
    Hashtbl.length touched
  end

(* --- accounting --- *)

let pages_at_level t ~level =
  Hashtbl.fold
    (fun (l, _) _ acc -> if l = level then acc + 1 else acc)
    t.pages 0

let leaf_pages t = pages_at_level t ~level:1

let size_bytes t =
  match t.size_variant with
  | `Six_level -> Hashtbl.length t.pages * page_bytes
  | `One_level -> leaf_pages t * page_bytes
  | `Leaf_plus_hash -> leaf_pages t * (page_bytes + 24)

let population t =
  Hashtbl.fold
    (fun (level, _) p acc -> if level = 1 then acc + p.valid else acc)
    t.pages 0

let clear t =
  Hashtbl.iter
    (fun _ p ->
      Mem.Sim_memory.free t.arena ~addr:p.addr ~bytes:page_bytes
        ~align:page_bytes)
    t.pages;
  Hashtbl.reset t.pages

let pt_virtual_base_vpn = 0xFF00_0000_0000L

let leaf_page_vpn t ~vpn =
  Int64.add pt_virtual_base_vpn (index_at t ~level:1 vpn)
