(** A concurrent shared-memory page-table service (paper,
    Section 3.1).

    One page table — {!Hashed} or {!Clustered} — shared by N OCaml 5
    domains.  Locking follows the paper's protocol for multi-threaded
    operating systems: a readers-writer lock per hash bucket
    ({!Striped}, stripes keyed by the table's own buckets), or a
    coarse single-mutex baseline ({!Global}).

    Lock-acquisition accounting is part of the service so tests can
    verify the paper's granularity claim: a range {!protect} on a
    clustered table takes one write lock per page {e block} where a
    hashed table takes one per base {e page}.

    The hashed backend runs in [No_superpages] mode (single bucket per
    operation — the precondition for striping). *)

type org = Hashed | Clustered

val org_name : org -> string

type locking = Global | Striped

val locking_name : locking -> string

type t

val create :
  ?buckets:int -> ?subblock_factor:int -> org:org -> locking:locking -> unit -> t
(** Defaults: 4096 buckets, factor 16 (the paper's defaults). *)

val org : t -> org

val locking : t -> locking

val subblock_factor : t -> int

val bucket_of : t -> vpn:int64 -> int
(** The stripe serving [vpn] (the backing table's hash bucket). *)

val lookup : t -> vpn:int64 -> bool
(** Under a read lock on [vpn]'s stripe. *)

val lookup_into : t -> Mem.Walk_acc.t -> vpn:int64 -> bool
(** Allocation-free {!lookup} for benchmark hot loops: walk reads and
    probes append to the caller's accumulator.  The accumulator must
    be private to the calling domain. *)

val insert : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit
(** Insert a base-page mapping under a write lock on [vpn]'s stripe. *)

val remove : t -> vpn:int64 -> unit

val protect : t -> Addr.Region.t -> writable:bool -> int
(** Set the [writable] attribute across a region; returns the number
    of hash searches performed.  Striped locking acquires one write
    lock per page block (clustered) or per base page (hashed); the
    global lock is taken once for the whole range. *)

val population : t -> int

val size_bytes : t -> int

type lock_stats = {
  read_acquisitions : int;
  write_acquisitions : int;
  currently_held : int;
}

val lock_stats : t -> lock_stats
(** Totals since {!create} (or the last {!reset_lock_stats}); exact
    when no operation is in flight.  [currently_held] must be zero at
    quiescence.  Global-lock acquisitions are tallied by intent
    (lookups as reads, mutations as writes) so the two strategies'
    accounting is comparable. *)

val reset_lock_stats : t -> unit
(** Zero the acquisition counters of either locking strategy, leaving
    the service as freshly created as far as {!lock_stats} is
    concerned ([currently_held] is live state, not a counter).  Call
    at quiescence. *)

val probe : ?into:Obs.Probe.report -> t -> Obs.Probe.report
(** Structural telemetry of the backing table (chain lengths, bucket
    occupancy, node utilization).  Takes no locks: only run it while
    no other domain is mutating the service. *)

(** {2 Self-healing and integrity}

    While a {!Fault} plan is installed, every service operation runs
    self-healed: a guarded attempt journals its bucket image under the
    write lock and rolls back on any injected failure — allocation
    failure, lock-acquire timeout, torn multi-word PTE update — so a
    failed attempt is invisible to {!fsck}.  Failed operations retry
    up to {!heal_attempts} times with a deterministic attempt-clock
    backoff, then give up (degraded mode).  Incidents are tallied in
    the {!Fault} counters, mirrored as [fault.*] counters in
    {!Obs.Ambient}, and emitted as [fault_*] trace events.  With no
    plan installed the operations are exactly the unhealed versions.

    The fsck entry points take no locks: run them at quiescence. *)

val heal_attempts : int
(** Attempt budget per operation (including the first try). *)

val fsck : t -> Fsck.report
(** Integrity-check the backing table. *)

val repair : t -> Fsck.repair_outcome
(** Rebuild the backing table from its surviving mappings; afterwards
    {!fsck} reports clean.  Tallied as a repair. *)

val corruption_kinds : t -> string list
(** Corruption classes injectable into this backend (for tests and
    the [fsck --corrupt] CLI). *)

val corrupt : t -> string -> bool
(** Deliberately corrupt the backing table (see
    {!Fsck.corrupt_by_name}). *)
