(** A concurrent shared-memory page-table service (paper,
    Section 3.1).

    One page table — {!Hashed} or {!Clustered} — shared by N OCaml 5
    domains.  Locking follows the paper's protocol for multi-threaded
    operating systems: a readers-writer lock per hash bucket
    ({!Striped}, stripes keyed by the table's own buckets), a coarse
    single-mutex baseline ({!Global}), or a lock-free read path
    ({!Seqlock}): lookups walk optimistically under a per-bucket
    sequence counter with {e zero} lock acquisitions, validated by
    re-checking the counter, with epoch-based reclamation
    ([Exec.Epoch] stamping the tables' limbo lists) keeping removed
    nodes walkable until no reader can hold a pointer into them.
    Writers still serialize on the stripe, so the mutation path — and
    the linearizability argument for it — is unchanged from
    {!Striped}.

    Lock-acquisition accounting is part of the service so tests can
    verify the paper's granularity claim: a range {!protect} on a
    clustered table takes one write lock per page {e block} where a
    hashed table takes one per base {e page}.

    The hashed backend runs in [No_superpages] mode (single bucket per
    operation — the precondition for striping). *)

type org = Hashed | Clustered

val org_name : org -> string

type locking = Global | Striped | Seqlock

val locking_name : locking -> string

type t

val create :
  ?buckets:int -> ?subblock_factor:int -> org:org -> locking:locking -> unit -> t
(** Defaults: 4096 buckets, factor 16 (the paper's defaults). *)

val org : t -> org

val locking : t -> locking

val subblock_factor : t -> int

val bucket_of : t -> vpn:int64 -> int
(** The stripe serving [vpn] (the backing table's hash bucket). *)

val lookup : t -> vpn:int64 -> bool
(** Under a read lock on [vpn]'s stripe — except {!Seqlock}, where
    the walk is optimistic and lock-free: snapshot the bucket's
    sequence counter, walk, re-check; on writer interference retry up
    to {!seqlock_attempts} times, then fall back to the striped read
    lock.  Retries and fallbacks surface via {!seqlock_retries} /
    {!seqlock_fallbacks}, the [service.seqlock_*] ambient counters and
    [seqlock_retry] / [seqlock_fallback] trace events. *)

val lookup_into : t -> Mem.Walk_acc.t -> vpn:int64 -> bool
(** Allocation-free {!lookup} for benchmark hot loops: walk reads and
    probes append to the caller's accumulator.  The accumulator must
    be private to the calling domain. *)

val insert : t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit
(** Insert a base-page mapping under a write lock on [vpn]'s stripe. *)

val remove : t -> vpn:int64 -> unit

val find : t -> vpn:int64 -> Pt_common.Types.translation option
(** {!lookup}, but returning the translation — what a TLB refill
    needs.  Same locking as {!lookup}. *)

val range_lock_sections : t -> Addr.Region.t -> int
(** Number of write-lock acquisitions a batched range op over this
    region takes: 1 under the global lock; one per distinct stripe
    under striped/seqlock locking (for clustered tables all pages of a
    block share a stripe, so this is the block count; for hashed
    tables pages only share a stripe on hash collisions). *)

val map_range : t -> Addr.Region.t -> ppn_of:(int64 -> int64) -> attr:Pte.Attr.t -> int
(** Batched mmap: insert a base mapping for every page of the region
    in {!range_lock_sections} write sections (one per stripe group,
    amortising lock traffic versus per-page {!insert}).  Each group is
    a single undo-journal unit under fault injection: an injected
    failure rolls the whole group back and the heal path retries it.
    Returns the number of write sections taken. *)

val unmap_range : t -> Addr.Region.t -> int
(** Batched munmap, same sectioning and journalling as {!map_range}.
    Unmapped pages of the region are skipped silently.  Returns the
    number of write sections taken. *)

val protect_range : t -> Addr.Region.t -> writable:bool -> int
(** Batched mprotect: same stripe grouping, journalling and return
    value as {!map_range} (sections taken, not hash searches). *)

val protect : t -> Addr.Region.t -> writable:bool -> int
(** Set the [writable] attribute across a region; returns the number
    of hash searches performed.  Striped locking acquires one write
    lock per page block (clustered) or per base page (hashed); the
    global lock is taken once for the whole range. *)

val population : t -> int

val size_bytes : t -> int

type lock_stats = {
  read_acquisitions : int;
  write_acquisitions : int;
  read_contention : int;
      (** blocked read-acquisition attempts (striped and seqlock
          locking; the global mutex reports 0) *)
  currently_held : int;
}

val lock_stats : t -> lock_stats
(** Totals since {!create} (or the last {!reset_lock_stats}); exact
    when no operation is in flight.  [currently_held] must be zero at
    quiescence.  Global-lock acquisitions are tallied by intent
    (lookups as reads, mutations as writes) so the strategies'
    accounting is comparable.  Under {!Seqlock},
    [read_acquisitions] counts only fallback acquisitions — the
    optimistic path takes no locks. *)

val seqlock_attempts : int
(** Optimistic walks attempted per lookup before the {!Seqlock} read
    path falls back to the striped read lock. *)

val seqlock_retries : t -> int
(** Optimistic walks invalidated by writer interference and retried
    since {!create} / {!reset_lock_stats}.  0 unless {!Seqlock}. *)

val seqlock_fallbacks : t -> int
(** Lookups that exhausted {!seqlock_attempts} and took the striped
    read lock.  0 unless {!Seqlock}. *)

val reader_epoch : t -> Exec.Epoch.t option
(** The reclamation domain of a {!Seqlock} service — pass it to
    [Exec.Worker_pool.create ?epoch] so worker domains register for
    their lifetimes.  [None] for the locked modes. *)

val limbo_nodes : t -> int
(** Nodes retired by removals but not yet proven reader-free (always
    0 for the locked modes, which recycle immediately). *)

val quiesce : t -> unit
(** Reclaim every limbo node no longer reachable by a registered
    reader.  Call at quiescence (e.g. after worker domains
    unregister, when {!limbo_nodes} must drain to 0) and before
    integrity checks.  No-op for the locked modes.

    Reads leave the calling domain's epoch pin standing (amortized
    pinning).  A standing pin blocks only retirements made since the
    domain's last read: the next read republishes the advanced epoch
    and releases them, and [Exec.Epoch.unpin] or unregistering
    releases everything.  A domain pinned explicitly via
    [Exec.Epoch.pin] holds every later retirement in limbo until it
    unpins — the property the reclamation tests exercise. *)

val reset_lock_stats : t -> unit
(** Zero the acquisition counters of either locking strategy, leaving
    the service as freshly created as far as {!lock_stats} is
    concerned ([currently_held] is live state, not a counter).  Call
    at quiescence. *)

val probe : ?into:Obs.Probe.report -> t -> Obs.Probe.report
(** Structural telemetry of the backing table (chain lengths, bucket
    occupancy, node utilization).  Takes no locks: only run it while
    no other domain is mutating the service. *)

(** {2 Self-healing and integrity}

    While a {!Fault} plan is installed, every service operation runs
    self-healed: a guarded attempt journals its bucket image under the
    write lock and rolls back on any injected failure — allocation
    failure, lock-acquire timeout, torn multi-word PTE update — so a
    failed attempt is invisible to {!fsck}.  Failed operations retry
    up to {!heal_attempts} times with a deterministic attempt-clock
    backoff, then give up (degraded mode).  Incidents are tallied in
    the {!Fault} counters, mirrored as [fault.*] counters in
    {!Obs.Ambient}, and emitted as [fault_*] trace events.  With no
    plan installed the operations are exactly the unhealed versions.

    The fsck entry points take no locks: run them at quiescence. *)

val heal_attempts : int
(** Attempt budget per operation (including the first try). *)

val fsck_table : t -> Fsck.table
(** The backing table as an {!Fsck} subject — what the cross-replica
    agreement check ([Fsck.check_replicas]) consumes when the same
    logical table is replicated across NUMA nodes. *)

val fsck : t -> Fsck.report
(** Integrity-check the backing table. *)

val repair : t -> Fsck.repair_outcome
(** Rebuild the backing table from its surviving mappings; afterwards
    {!fsck} reports clean.  Tallied as a repair. *)

val corruption_kinds : t -> string list
(** Corruption classes injectable into this backend (for tests and
    the [fsck --corrupt] CLI). *)

val corrupt : t -> string -> bool
(** Deliberately corrupt the backing table (see
    {!Fsck.corrupt_by_name}). *)
