(** A deterministic fault soak over the shared {!Service}.

    Drives [streams] logical operation streams — each owning a
    disjoint VPN window — against one service while a {!Fault} plan
    injects allocation failures, lock timeouts, torn PTE updates and
    worker-domain crashes.  Crashed domains are supervised back by
    {!Exec.Worker_pool} and the soak resumes them from per-stream
    cursors; all other faults are healed inside the service.  Every
    operation and every fault decision is a pure function of
    [(seed, stream, op)], so the {!outcome} — committed mappings,
    tallies, fsck verdict — is identical for any [domains] count, and
    {!outcome_to_json} serializes byte-identically. *)

type config = {
  seed : int;
  rate_ppm : int;  (** per-site arming probability, parts per million *)
  sites : Fault.site list;
  org : Service.org;
  locking : Service.locking;
  domains : int;
  streams : int;  (** logical streams; the unit of determinism *)
  ops : int;  (** operations per stream *)
  buckets : int;
}

val armed_mask : unit -> int
(** Bitmask of fault sites armed for the calling domain's current
    (key, attempt) context, bit position = the site's index in
    {!Fault.all_sites}; 0 with no active plan.  A pure query
    ({!Fault.armed} does not tally), for recording the plan's decision
    in flight-recorder events. *)

val default_config : config
(** seed 1, 2% rate, all sites, clustered/striped, 1 domain,
    4 streams x 2000 ops, 512 buckets. *)

type outcome = {
  o_seed : int;
  o_org : Service.org;
  o_locking : Service.locking;
  o_streams : int;
  o_ops : int;
  injected : (string * int) list;
      (** injections per site, in {!Fault.all_sites} order *)
  retries : int;
  aborts : int;
  crashes : int;
  restarts : int;  (** worker domains respawned by supervision *)
  repairs : int;
  pre_findings : int;  (** fsck findings before any repair *)
  kept : int;
  dropped : int;
  fsck_clean : bool;  (** the end state — the soak's pass criterion *)
  population : int;
}

val run : config -> outcome
(** Install the plan, soak, deactivate, fsck (repairing if needed).
    The installed plan and tallies are process-global: do not run two
    soaks concurrently.  Arms the {!Obs.Recorder} flight recorder with
    one ring per stream (capacity 512) and leaves it armed on return,
    so a caller seeing a dirty outcome can dump the event tail. *)

val outcome_to_json : outcome -> string
(** One JSON object; deliberately omits the domain count so runs
    differing only in [domains] diff byte-identical. *)

val pp_outcome : Format.formatter -> outcome -> unit
