(* Per-domain throughput benchmark for the shared service.

   N worker domains (a long-lived {!Exec.Worker_pool}) issue mixed
   lookup/insert/remove/protect traffic against one shared table.
   Each domain owns a disjoint VPN range — keys never collide, so the
   final table state is independent of interleaving — but ranges hash
   into the same 4096 buckets, so stripes are genuinely contended.

   Phases: prepopulate (each domain inserts every other page of its
   range, untimed) then a timed mixed loop.  The pool is created
   before and shut down after the timed region, so domain startup is
   never measured; lookups go through the allocation-free
   [lookup_into] path with a per-domain accumulator, so the timed loop
   is GC-quiet. *)

type mix = {
  lookup_pct : int;
  insert_pct : int;
  remove_pct : int;
  protect_pct : int;
}

let default_mix =
  { lookup_pct = 70; insert_pct = 15; remove_pct = 10; protect_pct = 5 }

let check_mix m =
  if m.lookup_pct < 0 || m.insert_pct < 0 || m.remove_pct < 0
     || m.protect_pct < 0
     || m.lookup_pct + m.insert_pct + m.remove_pct + m.protect_pct <> 100
  then invalid_arg "Throughput: mix percentages must be >= 0 and sum to 100"

type config = {
  domains : int;
  ops_per_domain : int;
  vpns_per_domain : int;
  protect_pages : int;  (** span of each protect region *)
  mix : mix;
  seed : int;
}

let default_config =
  {
    domains = 1;
    ops_per_domain = 100_000;
    vpns_per_domain = 4_096;
    protect_pages = 64;
    mix = default_mix;
    seed = 42;
  }

type result = {
  org : Service.org;
  locking : Service.locking;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_sec : float;
  lookups_hit : int;
  read_locks : int;
  write_locks : int;
  population : int;
}

(* Each domain's keys start well away from VPN 0 and from each other;
   the stride keeps ranges disjoint for any sane config. *)
let domain_base cfg index =
  Int64.add 0x10_0000L
    (Int64.mul (Int64.of_int index) (Int64.of_int cfg.vpns_per_domain))

(* identity placement folded into the PTE's 28-bit PPN field *)
let ppn_for vpn = Int64.logand vpn 0xFFF_FFFFL

let prepopulate svc cfg index =
  let base = domain_base cfg index in
  let i = ref 0 in
  while !i < cfg.vpns_per_domain do
    let vpn = Int64.add base (Int64.of_int !i) in
    Service.insert svc ~vpn ~ppn:(ppn_for vpn) ~attr:Pte.Attr.default;
    i := !i + 2
  done

let mixed_loop svc cfg index hits =
  let rng = Random.State.make [| cfg.seed; index; 0x9e3779b9 |] in
  let acc = Mem.Walk_acc.create () in
  let base = domain_base cfg index in
  let m = cfg.mix in
  let hit = ref 0 in
  for _ = 1 to cfg.ops_per_domain do
    let o = Random.State.int rng cfg.vpns_per_domain in
    let vpn = Int64.add base (Int64.of_int o) in
    let r = Random.State.int rng 100 in
    if r < m.lookup_pct then begin
      Mem.Walk_acc.reset acc;
      if Service.lookup_into svc acc ~vpn then incr hit
    end
    else if r < m.lookup_pct + m.insert_pct then
      Service.insert svc ~vpn ~ppn:(ppn_for vpn) ~attr:Pte.Attr.default
    else if r < m.lookup_pct + m.insert_pct + m.remove_pct then
      Service.remove svc ~vpn
    else begin
      let pages = min cfg.protect_pages (cfg.vpns_per_domain - o) in
      let region = Addr.Region.make ~first_vpn:vpn ~pages in
      ignore (Service.protect svc region ~writable:(r land 1 = 0))
    end
  done;
  hits.(index) <- !hit

let run ~org ~locking cfg =
  check_mix cfg.mix;
  if cfg.domains < 1 then invalid_arg "Throughput.run: domains must be >= 1";
  if cfg.vpns_per_domain < 2 then
    invalid_arg "Throughput.run: vpns_per_domain must be >= 2";
  let svc = Service.create ~org ~locking () in
  let hits = Array.make cfg.domains 0 in
  Exec.Worker_pool.with_pool ~domains:cfg.domains (fun pool ->
      Exec.Worker_pool.run pool (prepopulate svc cfg);
      let stats0 = Service.lock_stats svc in
      let t0 = Unix.gettimeofday () in
      Exec.Worker_pool.run pool (fun index -> mixed_loop svc cfg index hits);
      let t1 = Unix.gettimeofday () in
      let stats1 = Service.lock_stats svc in
      let total_ops = cfg.domains * cfg.ops_per_domain in
      let elapsed_s = t1 -. t0 in
      {
        org;
        locking;
        domains = cfg.domains;
        total_ops;
        elapsed_s;
        ops_per_sec =
          (if elapsed_s > 0. then float_of_int total_ops /. elapsed_s
           else infinity);
        lookups_hit = Array.fold_left ( + ) 0 hits;
        read_locks =
          stats1.Service.read_acquisitions - stats0.Service.read_acquisitions;
        write_locks =
          stats1.Service.write_acquisitions - stats0.Service.write_acquisitions;
        population = Service.population svc;
      })
