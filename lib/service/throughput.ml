(* Per-domain throughput benchmark for the shared service.

   The unit of work is a *stream*: a seeded, self-contained
   lookup/insert/remove/protect loop over its own disjoint VPN range.
   [streams] logical streams are dealt round-robin over [domains]
   physical worker domains (stream [s] runs on domain [s mod domains]),
   so the set of operations issued — and everything derived from a
   single stream's history — depends only on the stream count, never
   on how many domains execute them.  [streams = 0] (the default)
   means one stream per domain: exactly the pre-streams behaviour.

   Each stream owns a disjoint VPN range — keys never collide, so the
   final table state is independent of interleaving — but ranges hash
   into the same 4096 buckets, so stripes are genuinely contended.

   Phases: prepopulate (each stream inserts every other page of its
   range, untimed) then a timed mixed loop.  The pool is created
   before and shut down after the timed region, so domain startup is
   never measured; lookups go through the allocation-free
   [lookup_into] path with a per-stream accumulator, so the timed loop
   is GC-quiet.

   Telemetry (into the executing domain's {!Obs.Ambient} shard) is
   restricted to interleaving-invariant quantities: per-op-kind
   counters, lookup hits/misses (a stream only looks up its own keys),
   and the protect-search histogram.  Per-lookup walk lengths are NOT
   recorded here — shared chains make them depend on the interleaving
   — so the merged registry of a run is identical for any [domains]
   given the same [streams], seed and op count.  A structural probe of
   the final table (also interleaving-invariant) lands under
   [service.*]. *)

type mix = {
  lookup_pct : int;
  insert_pct : int;
  remove_pct : int;
  protect_pct : int;
}

let default_mix =
  { lookup_pct = 70; insert_pct = 15; remove_pct = 10; protect_pct = 5 }

(* The lock-free read path's showcase mix: lookup-dominated, with just
   enough churn that writers really do bump sequence counters and
   retire nodes through limbo, and no protects (their per-block write
   locking would swamp the signal and make [write_locks]
   interleaving-dependent across lock modes). *)
let read_mostly_mix =
  { lookup_pct = 98; insert_pct = 1; remove_pct = 1; protect_pct = 0 }

let check_mix m =
  if m.lookup_pct < 0 || m.insert_pct < 0 || m.remove_pct < 0
     || m.protect_pct < 0
     || m.lookup_pct + m.insert_pct + m.remove_pct + m.protect_pct <> 100
  then invalid_arg "Throughput: mix percentages must be >= 0 and sum to 100"

type config = {
  domains : int;
  streams : int;  (** 0 = one stream per domain *)
  ops_per_domain : int;
  vpns_per_domain : int;
  protect_pages : int;  (** span of each protect region *)
  buckets : int;  (** table buckets = lock stripes *)
  mix : mix;
  seed : int;
}

let default_config =
  {
    domains = 1;
    streams = 0;
    ops_per_domain = 100_000;
    vpns_per_domain = 4_096;
    protect_pages = 64;
    buckets = 4096;
    mix = default_mix;
    seed = 42;
  }

let stream_count cfg = if cfg.streams = 0 then cfg.domains else cfg.streams

type result = {
  org : Service.org;
  locking : Service.locking;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_sec : float;
  lookups_hit : int;
  read_locks : int;
  write_locks : int;
  read_contention : int;
  seqlock_retries : int;
  seqlock_fallbacks : int;
  population : int;
}

(* Each stream's keys start well away from VPN 0 and from each other;
   the stride keeps ranges disjoint for any sane config. *)
let stream_base cfg stream =
  Int64.add 0x10_0000L
    (Int64.mul (Int64.of_int stream) (Int64.of_int cfg.vpns_per_domain))

(* identity placement folded into the PTE's 28-bit PPN field *)
let ppn_for vpn = Int64.logand vpn 0xFFF_FFFFL

(* streams dealt round-robin: domain [index] runs streams [s] with
   [s mod domains = index], in increasing [s] *)
let iter_streams cfg index f =
  let n = stream_count cfg in
  let s = ref index in
  while !s < n do
    f !s;
    s := !s + cfg.domains
  done

let prepopulate svc cfg stream =
  let base = stream_base cfg stream in
  let i = ref 0 in
  while !i < cfg.vpns_per_domain do
    let vpn = Int64.add base (Int64.of_int !i) in
    Service.insert svc ~vpn ~ppn:(ppn_for vpn) ~attr:Pte.Attr.default;
    i := !i + 2
  done

let mixed_loop svc cfg stream hits =
  let rng = Random.State.make [| cfg.seed; stream; 0x9e3779b9 |] in
  let acc = Mem.Walk_acc.create () in
  let base = stream_base cfg stream in
  let m = cfg.mix in
  let hit = ref 0 in
  (* handles into this domain's metric shard, hoisted off the loop *)
  let shard = Obs.Ambient.get () in
  let c_lookup = Obs.Metrics.counter shard "throughput.ops.lookup"
  and c_insert = Obs.Metrics.counter shard "throughput.ops.insert"
  and c_remove = Obs.Metrics.counter shard "throughput.ops.remove"
  and c_protect = Obs.Metrics.counter shard "throughput.ops.protect"
  and c_hit = Obs.Metrics.counter shard "throughput.lookup.hit"
  and c_miss = Obs.Metrics.counter shard "throughput.lookup.miss"
  and h_searches = Obs.Metrics.hist shard "throughput.protect_searches" in
  for _ = 1 to cfg.ops_per_domain do
    let o = Random.State.int rng cfg.vpns_per_domain in
    let vpn = Int64.add base (Int64.of_int o) in
    let r = Random.State.int rng 100 in
    if r < m.lookup_pct then begin
      Obs.Metrics.incr c_lookup;
      Mem.Walk_acc.reset acc;
      if Service.lookup_into svc acc ~vpn then begin
        incr hit;
        Obs.Metrics.incr c_hit
      end
      else Obs.Metrics.incr c_miss
    end
    else if r < m.lookup_pct + m.insert_pct then begin
      Obs.Metrics.incr c_insert;
      Service.insert svc ~vpn ~ppn:(ppn_for vpn) ~attr:Pte.Attr.default
    end
    else if r < m.lookup_pct + m.insert_pct + m.remove_pct then begin
      Obs.Metrics.incr c_remove;
      Service.remove svc ~vpn
    end
    else begin
      Obs.Metrics.incr c_protect;
      let pages = min cfg.protect_pages (cfg.vpns_per_domain - o) in
      let region = Addr.Region.make ~first_vpn:vpn ~pages in
      let searches = Service.protect svc region ~writable:(r land 1 = 0) in
      Obs.Hist.observe h_searches searches
    end
  done;
  hits.(stream) <- !hit

let run ~org ~locking cfg =
  check_mix cfg.mix;
  if cfg.domains < 1 then invalid_arg "Throughput.run: domains must be >= 1";
  if cfg.streams < 0 then invalid_arg "Throughput.run: streams must be >= 0";
  if cfg.vpns_per_domain < 2 then
    invalid_arg "Throughput.run: vpns_per_domain must be >= 2";
  let streams = stream_count cfg in
  let svc = Service.create ~buckets:cfg.buckets ~org ~locking () in
  let hits = Array.make streams 0 in
  let result =
    Exec.Worker_pool.with_pool
      ?epoch:(Service.reader_epoch svc)
      ~domains:cfg.domains
      (fun pool ->
        Exec.Worker_pool.run pool (fun index ->
            iter_streams cfg index (prepopulate svc cfg));
        let stats0 = Service.lock_stats svc in
        let sqr0 = Service.seqlock_retries svc in
        let sqf0 = Service.seqlock_fallbacks svc in
        let t0 = Unix.gettimeofday () in
        Exec.Worker_pool.run pool (fun index ->
            iter_streams cfg index (fun s -> mixed_loop svc cfg s hits));
        let t1 = Unix.gettimeofday () in
        let stats1 = Service.lock_stats svc in
        let total_ops = streams * cfg.ops_per_domain in
        let elapsed_s = t1 -. t0 in
        {
          org;
          locking;
          domains = cfg.domains;
          total_ops;
          elapsed_s;
          ops_per_sec =
            (if elapsed_s > 0. then float_of_int total_ops /. elapsed_s
             else infinity);
          lookups_hit = Array.fold_left ( + ) 0 hits;
          read_locks =
            stats1.Service.read_acquisitions - stats0.Service.read_acquisitions;
          write_locks =
            stats1.Service.write_acquisitions
            - stats0.Service.write_acquisitions;
          read_contention =
            stats1.Service.read_contention - stats0.Service.read_contention;
          seqlock_retries = Service.seqlock_retries svc - sqr0;
          seqlock_fallbacks = Service.seqlock_fallbacks svc - sqf0;
          population = Service.population svc;
        })
  in
  (* workers have unregistered: every limbo node is now reclaimable *)
  Service.quiesce svc;
  (* structural telemetry of the final table: the mapping set is
     interleaving-invariant (disjoint per-stream key ranges), and the
     histograms cannot see chain order *)
  Obs.Probe.to_metrics (Obs.Ambient.get ()) ~prefix:"service"
    (Service.probe svc);
  result
