(** Per-domain throughput benchmark for the shared {!Service}.

    N long-lived worker domains issue mixed
    lookup/insert/remove/protect traffic against one shared table.
    Each domain owns a disjoint VPN range (final state is independent
    of interleaving) but all ranges hash into the shared buckets, so
    lock stripes are contended.  Prepopulation and domain startup
    happen outside the timed region; lookups use the allocation-free
    path, so the measured loop is GC-quiet. *)

type mix = {
  lookup_pct : int;
  insert_pct : int;
  remove_pct : int;
  protect_pct : int;
}
(** Must sum to 100. *)

val default_mix : mix
(** 70 / 15 / 10 / 5. *)

type config = {
  domains : int;
  ops_per_domain : int;
  vpns_per_domain : int;
  protect_pages : int;  (** span of each protect region *)
  mix : mix;
  seed : int;
}

val default_config : config
(** 1 domain, 100k ops, 4096-page working set per domain, 64-page
    protects, default mix, seed 42. *)

type result = {
  org : Service.org;
  locking : Service.locking;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_sec : float;
  lookups_hit : int;  (** sanity: > 0 under any default-mix run *)
  read_locks : int;  (** lock acquisitions inside the timed region *)
  write_locks : int;
  population : int;  (** final mapped pages; deterministic per config *)
}

val run : org:Service.org -> locking:Service.locking -> config -> result
