(** Per-domain throughput benchmark for the shared {!Service}.

    The unit of work is a {e stream}: a seeded, self-contained mixed
    lookup/insert/remove/protect loop over its own disjoint VPN range.
    [streams] logical streams are dealt round-robin over [domains]
    physical worker domains, so everything derived from the streams'
    operation histories — including the {!Obs.Ambient} telemetry —
    depends only on the stream count, seed and op count, never on the
    domain count.  [streams = 0] (the default) runs one stream per
    domain, the original behaviour.

    Prepopulation and domain startup happen outside the timed region;
    lookups use the allocation-free path, so the measured loop is
    GC-quiet.

    Telemetry recorded per op: [throughput.ops.*] kind counters,
    [throughput.lookup.hit]/[.miss], and the
    [throughput.protect_searches] histogram — all
    interleaving-invariant.  A structural probe of the final table is
    merged into the calling domain's shard under [service.*]. *)

type mix = {
  lookup_pct : int;
  insert_pct : int;
  remove_pct : int;
  protect_pct : int;
}
(** Must sum to 100. *)

val default_mix : mix
(** 70 / 15 / 10 / 5. *)

val read_mostly_mix : mix
(** 98 / 1 / 1 / 0 — the lookup-dominated mix the lock-free
    ({!Service.Seqlock}) read path targets, with enough churn that
    sequence counters move and nodes pass through limbo.  No protects,
    so [write_locks] stays interleaving-invariant across lock modes. *)

type config = {
  domains : int;
  streams : int;
      (** logical streams of work; 0 = one per domain.  Fix this
          across a domain sweep to make the telemetry comparable. *)
  ops_per_domain : int;  (** ops per {e stream} *)
  vpns_per_domain : int;  (** working-set pages per {e stream} *)
  protect_pages : int;  (** span of each protect region *)
  buckets : int;
      (** table buckets = lock stripes; shrink to sharpen stripe
          contention in a domain sweep *)
  mix : mix;
  seed : int;
}

val default_config : config
(** 1 domain, streams follow domains, 100k ops, 4096-page working set
    per stream, 64-page protects, 4096 buckets, default mix, seed
    42. *)

val stream_count : config -> int

type result = {
  org : Service.org;
  locking : Service.locking;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_sec : float;
  lookups_hit : int;  (** sanity: > 0 under any default-mix run *)
  read_locks : int;
      (** lock acquisitions inside the timed region; under
          {!Service.Seqlock} these are fallback acquisitions only *)
  write_locks : int;
  read_contention : int;
      (** blocked read acquisitions (interleaving-dependent) *)
  seqlock_retries : int;
      (** invalidated optimistic walks (interleaving-dependent; 0
          outside {!Service.Seqlock}) *)
  seqlock_fallbacks : int;
  population : int;  (** final mapped pages; deterministic per config *)
}

val run : org:Service.org -> locking:Service.locking -> config -> result
