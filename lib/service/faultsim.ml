(* A deterministic fault soak over the shared service.

   The driver runs [streams] logical operation streams against one
   service.  Streams — not domains — are the unit of work: stream [s]
   owns the disjoint VPN window [s * span, (s+1) * span), every
   operation is a pure function of [(seed, stream, op index)], and the
   fault context key is [stream * ops + op].  Because streams never
   touch each other's pages and every fault decision is a pure
   function of (site, key, attempt), the committed mappings, the
   injection tallies and the final fsck report are identical for any
   [--domains] count — the invariance the CI gate diffs.

   Worker domains deal streams round-robin ([s mod domains]).  At each
   op start the driver fires the [Domain_crash] site; a crash kills
   the worker domain for real, {!Exec.Worker_pool} supervises it back,
   and this driver re-runs the pool until every stream completes —
   per-stream cursors make re-runs resume exactly where the crash
   interrupted.  All other sites are healed inside {!Service}.  The
   soak ends with an fsck, repairing first if (contrary to the
   self-healing contract) findings appear. *)

type config = {
  seed : int;
  rate_ppm : int;
  sites : Fault.site list;
  org : Service.org;
  locking : Service.locking;
  domains : int;
  streams : int;
  ops : int;
  buckets : int;
}

let default_config =
  {
    seed = 1;
    rate_ppm = 20_000;
    sites = Fault.all_sites;
    org = Service.Clustered;
    locking = Service.Striped;
    domains = 1;
    streams = 4;
    ops = 2_000;
    buckets = 512;
  }

type outcome = {
  o_seed : int;
  o_org : Service.org;
  o_locking : Service.locking;
  o_streams : int;
  o_ops : int;
  injected : (string * int) list;  (* per site, [Fault.all_sites] order *)
  retries : int;
  aborts : int;
  crashes : int;
  restarts : int;
  repairs : int;
  pre_findings : int;  (* fsck findings before any repair *)
  kept : int;  (* entries a repair salvaged (0 when none ran) *)
  dropped : int;
  fsck_clean : bool;  (* the end state *)
  population : int;
}

(* Each stream owns [span] pages, whole blocks only, so no page block
   (and no superpage) ever spans two streams — the property that makes
   the committed mapping set independent of commit interleaving. *)
let span = 4096

let mix3 seed a b =
  let open Int64 in
  let h = Addr.Bits.mix64 (of_int seed) in
  let h = Addr.Bits.mix64 (logxor h (of_int (a + 1))) in
  Addr.Bits.mix64 (logxor h (of_int (b + 1)))

let lock_code = function
  | Service.Global -> Obs.Recorder.l_global
  | Service.Striped -> Obs.Recorder.l_striped
  | Service.Seqlock -> Obs.Recorder.l_seqlock

(* Armed-fault-site bitmask for the current (key, attempt) context,
   bit position = the site's index in [Fault.all_sites].  [Fault.armed]
   is a pure query, so this records the plan's decision without
   consuming it — and is therefore domain-invariant. *)
let armed_mask () =
  if not (Fault.active ()) then 0
  else
    let mask = ref 0 and bit = ref 1 in
    List.iter
      (fun site ->
        if Fault.armed site then mask := !mask lor !bit;
        bit := !bit lsl 1)
      Fault.all_sites;
    !mask

(* The op mix leans on writes (the faultable paths): 1/2 insert, 1/4
   remove, 1/8 lookup, 1/8 range protect. *)
let apply_op svc ~seed ~stream ~op ~lock ~fault =
  let r = mix3 seed stream op in
  let kind = Int64.to_int (Int64.logand r 7L) in
  let off = Int64.to_int (Int64.logand (Int64.shift_right_logical r 8) 4095L) in
  let vpn = Int64.of_int ((stream * span) + off) in
  let rec_op k pages =
    Obs.Recorder.record ~stream ~kind:k ~asid:stream
      ~vpn:(Int64.to_int vpn) ~pages ~lock ~attempt:0 ~fault ~lat:pages
  in
  if kind < 4 then begin
    let ppn = Int64.logand (Int64.shift_right_logical r 20) 0xFFFFFL in
    rec_op Obs.Recorder.k_insert 1;
    Service.insert svc ~vpn ~ppn ~attr:Pte.Attr.default
  end
  else if kind < 6 then begin
    rec_op Obs.Recorder.k_remove 1;
    Service.remove svc ~vpn
  end
  else if kind = 6 then begin
    rec_op Obs.Recorder.k_lookup 1;
    ignore (Service.lookup svc ~vpn)
  end
  else begin
    let pages =
      min (span - off) (1 + Int64.to_int (Int64.logand (Int64.shift_right_logical r 32) 31L))
    in
    let region = Addr.Region.make ~first_vpn:vpn ~pages in
    let writable = Int64.logand (Int64.shift_right_logical r 40) 1L = 0L in
    rec_op Obs.Recorder.k_protect pages;
    ignore (Service.protect svc region ~writable)
  end

(* An op whose crash site stays armed attempt after attempt must not
   wedge the soak; past this many consecutive crashes at one op the
   driver stops consulting the site for it.  Deterministic — the cap
   depends only on the per-op crash count. *)
let max_crash_attempts = 8

let run cfg =
  if cfg.streams < 1 then invalid_arg "Faultsim.run: streams must be >= 1";
  if cfg.ops < 1 then invalid_arg "Faultsim.run: ops must be >= 1";
  let svc =
    Service.create ~buckets:cfg.buckets ~org:cfg.org ~locking:cfg.locking ()
  in
  let plan =
    Fault.plan ~rate_ppm:cfg.rate_ppm ~sites:cfg.sites ~seed:cfg.seed ()
  in
  Obs.Recorder.arm ~streams:cfg.streams ~capacity:512;
  let lock = lock_code cfg.locking in
  let cursors = Array.make cfg.streams 0 in
  let crash_attempts = Array.make cfg.streams 0 in
  let job w =
    let s = ref w in
    while !s < cfg.streams do
      while cursors.(!s) < cfg.ops do
        let op = cursors.(!s) in
        Fault.set_context ~key:((!s * cfg.ops) + op);
        Fault.set_attempt 0;
        let fault = armed_mask () in
        Fault.set_attempt crash_attempts.(!s);
        if crash_attempts.(!s) < max_crash_attempts && Fault.armed Fault.Domain_crash
        then begin
          Obs.Recorder.record ~stream:!s ~kind:Obs.Recorder.k_crash ~asid:!s
            ~vpn:0 ~pages:0 ~lock ~attempt:crash_attempts.(!s) ~fault ~lat:0;
          crash_attempts.(!s) <- crash_attempts.(!s) + 1;
          Fault.fire Fault.Domain_crash
        end;
        Fault.set_attempt 0;
        apply_op svc ~seed:cfg.seed ~stream:!s ~op ~lock ~fault;
        Fault.clear_context ();
        crash_attempts.(!s) <- 0;
        cursors.(!s) <- op + 1
      done;
      s := !s + cfg.domains
    done;
    Fault.clear_context ()
  in
  Fault.install plan;
  let pool =
    Exec.Worker_pool.create
      ?epoch:(Service.reader_epoch svc)
      ~domains:cfg.domains ()
  in
  let finished () = Array.for_all (fun c -> c >= cfg.ops) cursors in
  Fun.protect
    ~finally:(fun () ->
      Exec.Worker_pool.shutdown pool;
      Fault.deactivate ())
    (fun () ->
      while not (finished ()) do
        match Exec.Worker_pool.run pool job with
        | () -> ()
        | exception Exec.Worker_pool.Worker_failed failures ->
            (* crashes are supervised (the pool already respawned the
               domains); anything else is a real bug — re-raise it *)
            List.iter
              (fun (_, e) ->
                match e with
                | Fault.Injected { site = Fault.Domain_crash; _ } -> ()
                | e -> raise e)
              failures
      done;
      let injected =
        List.map (fun s -> (Fault.site_name s, Fault.injected s)) Fault.all_sites
      in
      let retries = Fault.retries () in
      let aborts = Fault.aborts () in
      let crashes = Fault.injected Fault.Domain_crash in
      let restarts = Exec.Worker_pool.restarts pool in
      (* workers are parked (registered but unpinned), so this drains
         every limbo node; fsck then checks the drained state *)
      Service.quiesce svc;
      let pre = Service.fsck svc in
      let pre_findings = List.length pre.Fsck.findings in
      let kept, dropped =
        if pre_findings = 0 then (0, 0)
        else
          let r = Service.repair svc in
          (r.Fsck.kept, r.Fsck.dropped)
      in
      let repairs = Fault.repairs () in
      let fsck_clean = Fsck.clean (Service.fsck svc) in
      {
        o_seed = cfg.seed;
        o_org = cfg.org;
        o_locking = cfg.locking;
        o_streams = cfg.streams;
        o_ops = cfg.ops;
        injected;
        retries;
        aborts;
        crashes;
        restarts;
        repairs;
        pre_findings;
        kept;
        dropped;
        fsck_clean;
        population = Service.population svc;
      })

(* Deliberately omits the domain count: two runs differing only in
   [--domains] must serialize byte-identically. *)
let outcome_to_json o =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "{\"seed\":%d,\"org\":\"%s\",\"locking\":\"%s\"" o.o_seed
       (Service.org_name o.o_org)
       (Service.locking_name o.o_locking));
  Buffer.add_string b
    (Printf.sprintf ",\"streams\":%d,\"ops\":%d" o.o_streams o.o_ops);
  Buffer.add_string b ",\"injected\":{";
  List.iteri
    (fun i (name, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" name n))
    o.injected;
  Buffer.add_string b "}";
  Buffer.add_string b
    (Printf.sprintf
       ",\"retries\":%d,\"aborts\":%d,\"crashes\":%d,\"restarts\":%d,\"repairs\":%d"
       o.retries o.aborts o.crashes o.restarts o.repairs);
  Buffer.add_string b
    (Printf.sprintf
       ",\"pre_findings\":%d,\"kept\":%d,\"dropped\":%d,\"fsck_clean\":%b,\"population\":%d}"
       o.pre_findings o.kept o.dropped o.fsck_clean o.population);
  Buffer.contents b

let pp_outcome ppf o =
  Format.fprintf ppf "faultsim seed=%d %s/%s streams=%d ops=%d@," o.o_seed
    (Service.org_name o.o_org)
    (Service.locking_name o.o_locking)
    o.o_streams o.o_ops;
  List.iter
    (fun (name, n) ->
      if n > 0 then Format.fprintf ppf "  injected %-12s %d@," name n)
    o.injected;
  Format.fprintf ppf
    "  retries %d, aborts %d, crashes %d, restarts %d, repairs %d@," o.retries
    o.aborts o.crashes o.restarts o.repairs;
  Format.fprintf ppf "  fsck: %d finding(s) before repair, end state %s@,"
    o.pre_findings
    (if o.fsck_clean then "clean" else "CORRUPT");
  Format.fprintf ppf "  population %d" o.population
