(* A shared-memory page-table service (paper, Section 3.1).

   One page table — hashed or clustered — shared by N domains, with
   the locking protocol the paper describes for multi-threaded
   operating systems: a readers-writer lock per hash bucket, striped
   over the table's own buckets, plus a coarse single-mutex baseline
   for comparison.

   The locking is layered strictly outside the tables.  The tables'
   entry points are bucket-local (every lookup/insert/remove touches
   exactly the chain of [bucket_of vpn]; range protects touch one
   bucket per block or per page), and their cross-bucket shared state
   — node counters, arena allocation, free lists — is independently
   thread-safe (atomics and internal mutexes).  Holding the stripe for
   an operation's bucket therefore makes the operation atomic with
   respect to every other operation.

   The hashed backend is restricted to [No_superpages] mode: its other
   modes probe a second (coarse) bucket per operation, which a single
   stripe does not cover. *)

type org = Hashed | Clustered

let org_name = function Hashed -> "hashed" | Clustered -> "clustered"

type locking = Global | Striped

let locking_name = function Global -> "global" | Striped -> "striped"

type backend = H of Baselines.Hashed_pt.t | C of Clustered_pt.Table.t

(* The coarse baseline is one exclusive mutex.  Acquisitions are
   tallied by intent (read for lookups, write for mutations) so its
   accounting lines up with the striped lock's, even though every
   acquisition excludes everyone. *)
type global_lock = {
  m : Mutex.t;
  mutable g_reads : int;
  mutable g_writes : int;
  mutable g_held : int;
}

type locks =
  | Global_lock of global_lock
  | Striped_lock of Clustered_pt.Bucket_lock.Real.t

type t = {
  org : org;
  locking : locking;
  backend : backend;
  locks : locks;
  subblock_factor : int;
}

let create ?(buckets = 4096) ?(subblock_factor = 16) ~org ~locking () =
  let backend =
    match org with
    | Hashed ->
        H
          (Baselines.Hashed_pt.create ~buckets ~subblock_factor
             ~mode:Baselines.Hashed_pt.No_superpages ())
    | Clustered ->
        C
          (Clustered_pt.Table.create
             (Clustered_pt.Config.make ~buckets ~subblock_factor ()))
  in
  let locks =
    match locking with
    | Global ->
        Global_lock
          { m = Mutex.create (); g_reads = 0; g_writes = 0; g_held = 0 }
    | Striped -> Striped_lock (Clustered_pt.Bucket_lock.Real.create ~buckets)
  in
  { org; locking; backend; locks; subblock_factor }

let org t = t.org
let locking t = t.locking
let subblock_factor t = t.subblock_factor

let bucket_of t ~vpn =
  match t.backend with
  | H h -> Baselines.Hashed_pt.bucket_of h ~vpn
  | C c -> Clustered_pt.Table.bucket_of c ~vpn

(* Lock holds are trace slices (arg: the stripe, or -1 for the global
   mutex).  The begin event precedes acquisition, so the slice also
   shows time spent blocked behind the holder.  With tracing disabled
   each emit point is one branch and the locking code is exactly the
   untraced version — no wrapper closures on the hot path. *)
let traced ev arg body =
  Obs.Tracer.begin_ ev arg;
  match body () with
  | v ->
      Obs.Tracer.end_ ev;
      v
  | exception e ->
      Obs.Tracer.end_ ev;
      raise e

let with_read_global g f =
  Mutex.lock g.m;
  g.g_reads <- g.g_reads + 1;
  g.g_held <- g.g_held + 1;
  Fun.protect
    ~finally:(fun () ->
      g.g_held <- g.g_held - 1;
      Mutex.unlock g.m)
    f

let with_read t ~vpn f =
  match t.locks with
  | Global_lock g ->
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_read (-1) (fun () -> with_read_global g f)
      else with_read_global g f
  | Striped_lock l ->
      let bucket = bucket_of t ~vpn in
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_read bucket (fun () ->
            Clustered_pt.Bucket_lock.Real.with_read l ~bucket f)
      else Clustered_pt.Bucket_lock.Real.with_read l ~bucket f

let with_write_global g f =
  Mutex.lock g.m;
  g.g_writes <- g.g_writes + 1;
  g.g_held <- g.g_held + 1;
  Fun.protect
    ~finally:(fun () ->
      g.g_held <- g.g_held - 1;
      Mutex.unlock g.m)
    f

let with_write t ~vpn f =
  match t.locks with
  | Global_lock g ->
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_write (-1) (fun () -> with_write_global g f)
      else with_write_global g f
  | Striped_lock l ->
      let bucket = bucket_of t ~vpn in
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_write bucket (fun () ->
            Clustered_pt.Bucket_lock.Real.with_write l ~bucket f)
      else Clustered_pt.Bucket_lock.Real.with_write l ~bucket f

let lookup_into t acc ~vpn =
  with_read t ~vpn (fun () ->
      match t.backend with
      | H h -> Baselines.Hashed_pt.lookup_into h acc ~vpn <> None
      | C c -> Clustered_pt.Table.lookup_into c acc ~vpn <> None)

let lookup t ~vpn =
  with_read t ~vpn (fun () ->
      match t.backend with
      | H h -> fst (Baselines.Hashed_pt.lookup h ~vpn) <> None
      | C c -> fst (Clustered_pt.Table.lookup c ~vpn) <> None)

let insert t ~vpn ~ppn ~attr =
  with_write t ~vpn (fun () ->
      match t.backend with
      | H h -> Baselines.Hashed_pt.insert_base h ~vpn ~ppn ~attr
      | C c -> Clustered_pt.Table.insert_base c ~vpn ~ppn ~attr)

let remove t ~vpn =
  with_write t ~vpn (fun () ->
      match t.backend with
      | H h -> Baselines.Hashed_pt.remove h ~vpn
      | C c -> Clustered_pt.Table.remove c ~vpn)

(* Range protect.  This is where lock granularity diverges (the
   Section 3.1 claim the tests verify): clustered takes one write lock
   per page *block*, hashed one per base *page*.  Under the global
   lock both take a single acquisition for the whole range. *)
let protect t region ~writable =
  let f attr = { attr with Pte.Attr.writable } in
  match t.locks with
  | Global_lock _ ->
      (* representative vpn only selects the (single) lock *)
      with_write t ~vpn:region.Addr.Region.first_vpn (fun () ->
          match t.backend with
          | H h -> Baselines.Hashed_pt.set_attr_range h region ~f
          | C c -> Clustered_pt.Table.set_attr_range c region ~f)
  | Striped_lock _ -> (
      match t.backend with
      | C c ->
          let blocks =
            Addr.Region.blocks ~subblock_factor:t.subblock_factor region
          in
          List.fold_left
            (fun acc (vpbn, first_boff, count) ->
              let first_vpn =
                Int64.add
                  (Int64.mul vpbn (Int64.of_int t.subblock_factor))
                  (Int64.of_int first_boff)
              in
              let sub = Addr.Region.make ~first_vpn ~pages:count in
              acc
              + with_write t ~vpn:first_vpn (fun () ->
                    Clustered_pt.Table.set_attr_range c sub ~f))
            0 blocks
      | H h ->
          Addr.Region.fold_vpns region ~init:0 ~f:(fun acc vpn ->
              let sub = Addr.Region.make ~first_vpn:vpn ~pages:1 in
              acc
              + with_write t ~vpn (fun () ->
                    Baselines.Hashed_pt.set_attr_range h sub ~f)))

let population t =
  match t.backend with
  | H h -> Baselines.Hashed_pt.population h
  | C c -> Clustered_pt.Table.population c

let size_bytes t =
  match t.backend with
  | H h -> Baselines.Hashed_pt.size_bytes h
  | C c -> Clustered_pt.Table.size_bytes c

type lock_stats = {
  read_acquisitions : int;
  write_acquisitions : int;
  currently_held : int;
}

let lock_stats t =
  match t.locks with
  | Global_lock g ->
      (* mutate-free reads of monotonic counters; exact when quiescent,
         like the striped per-slot sums *)
      {
        read_acquisitions = g.g_reads;
        write_acquisitions = g.g_writes;
        currently_held = g.g_held;
      }
  | Striped_lock l ->
      {
        read_acquisitions = Clustered_pt.Bucket_lock.Real.read_acquisitions l;
        write_acquisitions = Clustered_pt.Bucket_lock.Real.write_acquisitions l;
        currently_held = Clustered_pt.Bucket_lock.Real.currently_held l;
      }

let reset_lock_stats t =
  match t.locks with
  | Global_lock g ->
      g.g_reads <- 0;
      g.g_writes <- 0
  | Striped_lock l -> Clustered_pt.Bucket_lock.Real.reset_counters l

let probe ?into t =
  match t.backend with
  | H h -> Obs.Probe.hashed ?into h
  | C c -> Obs.Probe.clustered ?into c
