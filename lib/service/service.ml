(* A shared-memory page-table service (paper, Section 3.1).

   One page table — hashed or clustered — shared by N domains, with
   the locking protocol the paper describes for multi-threaded
   operating systems: a readers-writer lock per hash bucket, striped
   over the table's own buckets, plus a coarse single-mutex baseline
   for comparison, plus a lock-free read path ([Seqlock]) where
   lookups take zero lock acquisitions: per-bucket sequence counters
   validate optimistic walks, and epoch-based reclamation (the
   tables' limbo lists stamped by [Exec.Epoch]) keeps removed nodes
   walkable until every reader that could hold a pointer into them
   has moved on.

   The locking is layered strictly outside the tables.  The tables'
   entry points are bucket-local (every lookup/insert/remove touches
   exactly the chain of [bucket_of vpn]; range protects touch one
   bucket per block or per page), and their cross-bucket shared state
   — node counters, arena allocation, free lists — is independently
   thread-safe (atomics and internal mutexes).  Holding the stripe for
   an operation's bucket therefore makes the operation atomic with
   respect to every other operation.

   The hashed backend is restricted to [No_superpages] mode: its other
   modes probe a second (coarse) bucket per operation, which a single
   stripe does not cover. *)

type org = Hashed | Clustered

let org_name = function Hashed -> "hashed" | Clustered -> "clustered"

type locking = Global | Striped | Seqlock

let locking_name = function
  | Global -> "global"
  | Striped -> "striped"
  | Seqlock -> "seqlock"

type backend = H of Baselines.Hashed_pt.t | C of Clustered_pt.Table.t

(* The coarse baseline is one exclusive mutex.  Acquisitions are
   tallied by intent (read for lookups, write for mutations) so its
   accounting lines up with the striped lock's, even though every
   acquisition excludes everyone. *)
type global_lock = {
  m : Mutex.t;
  mutable g_reads : int;
  mutable g_writes : int;
  mutable g_held : int;
}

(* [Seqlock] keeps the striped lock for writers (and as the readers'
   contention fallback) and adds one sequence counter per bucket:
   even = chain stable, odd = a writer is mid-update.  Readers walk
   with no lock at all — snapshot the counter, walk, re-check — so a
   read-mostly mix scales past the stripe's cache-line ping-pong. *)
type seqlock = {
  sl : Clustered_pt.Bucket_lock.Real.t;
  seqs : int Atomic.t array;
  epoch : Exec.Epoch.t;  (* reclamation domain for this table *)
  sq_retries : int Atomic.t;
  sq_fallbacks : int Atomic.t;
  sq_writes : int Atomic.t;  (* paces [reclaim] sweeps, 1 per 64 *)
}

type locks =
  | Global_lock of global_lock
  | Striped_lock of Clustered_pt.Bucket_lock.Real.t
  | Seqlock_lock of seqlock

type t = {
  org : org;
  locking : locking;
  backend : backend;
  locks : locks;
  subblock_factor : int;
}

let create ?(buckets = 4096) ?(subblock_factor = 16) ~org ~locking () =
  let backend =
    match org with
    | Hashed ->
        H
          (Baselines.Hashed_pt.create ~buckets ~subblock_factor
             ~mode:Baselines.Hashed_pt.No_superpages ())
    | Clustered ->
        C
          (Clustered_pt.Table.create
             (Clustered_pt.Config.make ~buckets ~subblock_factor ()))
  in
  let locks =
    match locking with
    | Global ->
        Global_lock
          { m = Mutex.create (); g_reads = 0; g_writes = 0; g_held = 0 }
    | Striped -> Striped_lock (Clustered_pt.Bucket_lock.Real.create ~buckets)
    | Seqlock ->
        let epoch = Exec.Epoch.create () in
        let stamp_of () = Exec.Epoch.retire_stamp epoch in
        (* with the hook installed, the table retires unlinked nodes
           to its limbo list instead of recycling them — the other
           half of the lock-free read path's safety argument *)
        (match backend with
        | H h -> Baselines.Hashed_pt.set_reclaim_hook h (Some stamp_of)
        | C c -> Clustered_pt.Table.set_reclaim_hook c (Some stamp_of));
        Seqlock_lock
          {
            sl = Clustered_pt.Bucket_lock.Real.create ~buckets;
            seqs = Array.init buckets (fun _ -> Atomic.make 0);
            epoch;
            sq_retries = Atomic.make 0;
            sq_fallbacks = Atomic.make 0;
            sq_writes = Atomic.make 0;
          }
  in
  { org; locking; backend; locks; subblock_factor }

let org t = t.org
let locking t = t.locking
let subblock_factor t = t.subblock_factor

let bucket_of t ~vpn =
  match t.backend with
  | H h -> Baselines.Hashed_pt.bucket_of h ~vpn
  | C c -> Clustered_pt.Table.bucket_of c ~vpn

(* Lock holds are trace slices (arg: the stripe, or -1 for the global
   mutex).  The begin event precedes acquisition, so the slice also
   shows time spent blocked behind the holder.  With tracing disabled
   each emit point is one branch and the locking code is exactly the
   untraced version — no wrapper closures on the hot path. *)
let traced ev arg body =
  Obs.Tracer.begin_ ev arg;
  match body () with
  | v ->
      Obs.Tracer.end_ ev;
      v
  | exception e ->
      Obs.Tracer.end_ ev;
      raise e

let bump name = Obs.Metrics.incr (Obs.Ambient.counter name)

let site_ordinal = function
  | Fault.Alloc_node -> 0
  | Fault.Alloc_phys -> 1
  | Fault.Lock_timeout -> 2
  | Fault.Domain_crash -> 3
  | Fault.Torn_write -> 4
  | Fault.Seqlock_stall -> 5
  | Fault.Replica_write -> 6
  | Fault.Shard_crash -> 7

let note_injected site =
  bump ("fault.injected." ^ Fault.site_name site);
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant Obs.Tracer.ev_fault_inject (site_ordinal site)

(* Deterministic backoff: an attempt-clock spin, no wall time. *)
let backoff attempt =
  for _ = 1 to (attempt + 1) * 32 do
    Domain.cpu_relax ()
  done

let with_read_global g f =
  Mutex.lock g.m;
  g.g_reads <- g.g_reads + 1;
  g.g_held <- g.g_held + 1;
  Fun.protect
    ~finally:(fun () ->
      g.g_held <- g.g_held - 1;
      Mutex.unlock g.m)
    f

(* --- the lock-free read path ---

   Why an optimistic walk over a chain being rewritten is memory-safe:
   every pointer a walk chases — a node's [next], a clustered node's
   [words] array, the boxed [int64] tag and word cells — is an OCaml
   heap pointer, loaded and stored word-atomically, so a racing read
   sees some complete former or current value, never a torn one.  A
   stale value is harmless: retired nodes keep their [next] intact and
   wear a tag no live key matches, and epoch-based reclamation
   guarantees nothing a pinned reader can still reach is recycled, so
   there is no ABA re-linking and every reachable chain suffix
   terminates.  The only residual hazard is a logically inconsistent
   *combination* of reads (e.g. a words array swapped mid-walk raising
   [Invalid_argument] on a stale index); the sequence re-check
   detects exactly that — any exception while the counter moved is
   interference, retried; with the counter unmoved it is a real error
   and propagates.

   The fallback after [seqlock_attempts] failed walks takes the
   striped read lock under [Fault.suspended]: whether a walk degrades
   to the lock depends on scheduling, so a planned [Lock_timeout]
   must not get a nondeterministic extra trip site there. *)

let seqlock_attempts = 8

let seqlock_fallback s ~bucket f =
  Atomic.incr s.sq_fallbacks;
  bump "service.seqlock_fallbacks";
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant Obs.Tracer.ev_seqlock_fallback bucket;
  Fault.suspended (fun () ->
      Clustered_pt.Bucket_lock.Real.with_read s.sl ~bucket f)

let seqlock_note_retry s bucket n =
  Atomic.incr s.sq_retries;
  bump "service.seqlock_retries";
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant Obs.Tracer.ev_seqlock_retry bucket;
  backoff n

let rec seqlock_attempt s ~bucket seq f n =
  if n >= seqlock_attempts then seqlock_fallback s ~bucket f
  else
    let s1 = Atomic.get seq in
    if s1 land 1 = 1 then begin
      seqlock_note_retry s bucket n;
      seqlock_attempt s ~bucket seq f (n + 1)
    end
    else
      match f () with
      | v ->
          if Atomic.get seq = s1 then v
          else begin
            seqlock_note_retry s bucket n;
            seqlock_attempt s ~bucket seq f (n + 1)
          end
      | exception e ->
          if Atomic.get seq = s1 then raise e
          else begin
            seqlock_note_retry s bucket n;
            seqlock_attempt s ~bucket seq f (n + 1)
          end

(* Top-level helpers and an explicit exception match keep the happy
   path allocation-free (no [Fun.protect] closures): the optimistic
   walk must stay GC-quiet, because a minor collection is a
   stop-the-world rendezvous across every domain — far more expensive
   than the walk it interrupts.

   Epoch protection is amortized ([Epoch.repin], the classic EBR
   shape): a reader stays pinned between walks and only republishes
   its stamp when a retirement moved the epoch, so the steady-state
   entry cost is two plain loads instead of a fenced store per lookup.
   There is deliberately no unpin on exit — the standing pin only
   blocks reclamation of nodes retired {e after} it (a republish
   always confirms the current epoch, so it never blocks draining of
   the past), and a domain done reading returns its slot through
   [Epoch.unpin]/[Epoch.unregister] — worker pools do the latter when
   a worker retires. *)
let with_read_seqlock s ~bucket f =
  Exec.Epoch.repin s.epoch;
  seqlock_attempt s ~bucket s.seqs.(bucket) f 0

(* Writers serialize on the stripe as in [Striped] mode; the sequence
   bump (odd while mutating) is what invalidates concurrent optimistic
   walks.  A planned [Seqlock_stall] holds the counter odd through a
   long spin — readers of this bucket must ride it out through their
   retry/fallback path; nothing raises, so the self-healing layer
   never sees it. *)
let with_write_seqlock s ~bucket f =
  Clustered_pt.Bucket_lock.Real.with_write s.sl ~bucket (fun () ->
      let seq = s.seqs.(bucket) in
      Atomic.incr seq;
      if Fault.trip Fault.Seqlock_stall then begin
        note_injected Fault.Seqlock_stall;
        for _ = 1 to 2048 do
          Domain.cpu_relax ()
        done
      end;
      match f () with
      | v ->
          Atomic.incr seq;
          v
      | exception e ->
          Atomic.incr seq;
          raise e)

let with_read t ~vpn f =
  match t.locks with
  | Global_lock g ->
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_read (-1) (fun () -> with_read_global g f)
      else with_read_global g f
  | Striped_lock l ->
      let bucket = bucket_of t ~vpn in
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_read bucket (fun () ->
            Clustered_pt.Bucket_lock.Real.with_read l ~bucket f)
      else Clustered_pt.Bucket_lock.Real.with_read l ~bucket f
  | Seqlock_lock s ->
      (* no ev_lock_read slice: the optimistic path holds no lock, and
         a fallback's acquisition is visible as its instant event *)
      let bucket = bucket_of t ~vpn in
      with_read_seqlock s ~bucket f

let with_write_global g f =
  Mutex.lock g.m;
  g.g_writes <- g.g_writes + 1;
  g.g_held <- g.g_held + 1;
  Fun.protect
    ~finally:(fun () ->
      g.g_held <- g.g_held - 1;
      Mutex.unlock g.m)
    f

let with_write t ~vpn f =
  match t.locks with
  | Global_lock g ->
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_write (-1) (fun () -> with_write_global g f)
      else with_write_global g f
  | Striped_lock l ->
      let bucket = bucket_of t ~vpn in
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_write bucket (fun () ->
            Clustered_pt.Bucket_lock.Real.with_write l ~bucket f)
      else Clustered_pt.Bucket_lock.Real.with_write l ~bucket f
  | Seqlock_lock s ->
      let bucket = bucket_of t ~vpn in
      let v =
        if Obs.Tracer.enabled () then
          traced Obs.Tracer.ev_lock_write bucket (fun () ->
              with_write_seqlock s ~bucket f)
        else with_write_seqlock s ~bucket f
      in
      (* amortized reclamation sweep, outside the bucket lock: park
         limbo nodes no current or future reader can reach *)
      if Atomic.fetch_and_add s.sq_writes 1 land 63 = 63 then begin
        let upto = Exec.Epoch.safe_before s.epoch in
        match t.backend with
        | H h -> Baselines.Hashed_pt.reclaim h ~upto
        | C c -> Clustered_pt.Table.reclaim c ~upto
      end;
      v

(* --- self-healing write path (engaged only under a fault plan) ---

   The fault plan can fail an operation three ways: the stripe
   acquisition times out ([Bucket_lock.Real.Timeout], injected before
   any lock state changes), node acquisition fails inside the table
   ([Fault.Injected Alloc_node], fired before any chain mutation), or
   the update itself is torn halfway ([Torn_write] — we plant the torn
   multi-word signature in the bucket, exactly what a real torn store
   of a two-word PTE leaves behind).

   Every guarded attempt journals its bucket image under the write
   lock and rolls back on any exception, so a failed attempt is
   invisible to fsck; the driver retries with a deterministic
   attempt-clock backoff and gives the operation up (degraded mode,
   tallied as an abort) once the budget is spent.  Recovery code runs
   inside [Fault.suspended] — undoing a fault can never inject
   another. *)

let heal_attempts = 4

let observed_site = function
  | Clustered_pt.Bucket_lock.Real.Timeout _ -> Some Fault.Lock_timeout
  | Fault.Injected { site; _ } -> Some site
  | _ -> None

type journal =
  | J_hashed of Baselines.Hashed_pt.bucket_image
  | J_clustered of Clustered_pt.Table.bucket_image

let snapshot t ~bucket =
  match t.backend with
  | H h -> J_hashed (Baselines.Hashed_pt.snapshot_bucket h ~bucket)
  | C c -> J_clustered (Clustered_pt.Table.snapshot_bucket c ~bucket)

let rollback t ~bucket img =
  match (t.backend, img) with
  | H h, J_hashed i -> Baselines.Hashed_pt.restore_bucket h ~bucket i
  | C c, J_clustered i -> Clustered_pt.Table.restore_bucket c ~bucket i
  | _ -> assert false

(* Plant the torn signature a half-completed multi-word PTE store
   leaves in [vpn]'s bucket. *)
let tear t ~vpn =
  ignore
    (match t.backend with
    | H h -> Baselines.Hashed_pt.corrupt h (Baselines.Hashed_pt.C_torn vpn)
    | C c -> Clustered_pt.Table.corrupt c (Clustered_pt.Table.C_torn vpn))

let attempt_write t ~vpn f =
  with_write t ~vpn (fun () ->
      let bucket = bucket_of t ~vpn in
      let img = snapshot t ~bucket in
      match
        if Fault.trip Fault.Torn_write then begin
          tear t ~vpn;
          raise
            (Fault.Injected
               { site = Fault.Torn_write; key = Fault.context_key () })
        end;
        f ()
      with
      | v -> v
      | exception e ->
          Fault.suspended (fun () -> rollback t ~bucket img);
          raise e)

let rec heal t ~vpn ~default ~write f attempt =
  Fault.set_attempt attempt;
  match if write then attempt_write t ~vpn f else with_read t ~vpn f with
  | v ->
      Fault.set_attempt 0;
      v
  | exception e -> (
      match observed_site e with
      | None -> raise e
      | Some site ->
          note_injected site;
          if attempt + 1 < heal_attempts then begin
            Fault.note_retry ();
            bump "fault.retries";
            if Obs.Tracer.enabled () then
              Obs.Tracer.instant Obs.Tracer.ev_fault_retry (attempt + 1);
            backoff attempt;
            heal t ~vpn ~default ~write f (attempt + 1)
          end
          else begin
            Fault.note_abort ();
            bump "fault.aborts";
            if Obs.Tracer.enabled () then
              Obs.Tracer.instant Obs.Tracer.ev_fault_abort heal_attempts;
            Fault.set_attempt 0;
            default
          end)

let read_section t ~vpn ~default f =
  if Fault.active () then heal t ~vpn ~default ~write:false f 0
  else with_read t ~vpn f

let write_section t ~vpn ~default f =
  if Fault.active () then heal t ~vpn ~default ~write:true f 0
  else with_write t ~vpn f

let lookup_into t acc ~vpn =
  (* the body may run several times (optimistic retries, self-healing
     retries); rewinding to the entry state on each attempt keeps the
     accumulator charged for exactly one walk *)
  let count = Mem.Walk_acc.count acc in
  let probes = Mem.Walk_acc.probes acc in
  let nested_misses = Mem.Walk_acc.nested_misses acc in
  read_section t ~vpn ~default:false (fun () ->
      Mem.Walk_acc.rewind acc ~count ~probes ~nested_misses;
      match t.backend with
      | H h -> Baselines.Hashed_pt.lookup_into h acc ~vpn <> None
      | C c -> Clustered_pt.Table.lookup_into c acc ~vpn <> None)

let lookup t ~vpn =
  read_section t ~vpn ~default:false (fun () ->
      match t.backend with
      | H h -> fst (Baselines.Hashed_pt.lookup h ~vpn) <> None
      | C c -> fst (Clustered_pt.Table.lookup c ~vpn) <> None)

let insert t ~vpn ~ppn ~attr =
  write_section t ~vpn ~default:() (fun () ->
      match t.backend with
      | H h -> Baselines.Hashed_pt.insert_base h ~vpn ~ppn ~attr
      | C c -> Clustered_pt.Table.insert_base c ~vpn ~ppn ~attr)

let remove t ~vpn =
  write_section t ~vpn ~default:() (fun () ->
      match t.backend with
      | H h -> Baselines.Hashed_pt.remove h ~vpn
      | C c -> Clustered_pt.Table.remove c ~vpn)

let find t ~vpn =
  read_section t ~vpn ~default:None (fun () ->
      match t.backend with
      | H h -> fst (Baselines.Hashed_pt.lookup h ~vpn)
      | C c -> fst (Clustered_pt.Table.lookup c ~vpn))

(* Batched range ops (Section 3.1's range granularity at service
   scale).  One submission covers a whole region; write-lock
   acquisitions amortise to the backend's natural granularity: a
   single section under the global lock, and one section per distinct
   bucket under stripes.  For clustered tables every page of a block
   hashes to the block's bucket, so the per-bucket grouping degenerates
   to one section per page *block*; for hashed tables pages only share
   a section on hash collisions.  Each group runs inside a single
   write_section, so under fault injection the whole sub-batch shares
   one undo-journal snapshot: an injected failure rolls the sub-batch
   back as a unit and the heal path retries it (insert/remove are
   idempotent, so a retry after partial progress is safe). *)
let range_groups t region =
  match t.locks with
  | Global_lock _ ->
      [ List.rev (Addr.Region.fold_vpns region ~init:[] ~f:(fun acc v -> v :: acc)) ]
  | Striped_lock _ | Seqlock_lock _ ->
      let tbl = Hashtbl.create 64 in
      let order = ref [] in
      Addr.Region.iter_vpns region (fun vpn ->
          let b = bucket_of t ~vpn in
          match Hashtbl.find_opt tbl b with
          | Some cell -> cell := vpn :: !cell
          | None ->
              let cell = ref [ vpn ] in
              Hashtbl.replace tbl b cell;
              order := cell :: !order);
      List.rev_map (fun cell -> List.rev !cell) !order

let range_lock_sections t region = List.length (range_groups t region)

let map_range t region ~ppn_of ~attr =
  List.fold_left
    (fun sections group ->
      match group with
      | [] -> sections
      | rep :: _ ->
          write_section t ~vpn:rep ~default:() (fun () ->
              List.iter
                (fun vpn ->
                  let ppn = ppn_of vpn in
                  match t.backend with
                  | H h -> Baselines.Hashed_pt.insert_base h ~vpn ~ppn ~attr
                  | C c -> Clustered_pt.Table.insert_base c ~vpn ~ppn ~attr)
                group);
          sections + 1)
    0 (range_groups t region)

let unmap_range t region =
  List.fold_left
    (fun sections group ->
      match group with
      | [] -> sections
      | rep :: _ ->
          write_section t ~vpn:rep ~default:() (fun () ->
              List.iter
                (fun vpn ->
                  match t.backend with
                  | H h -> Baselines.Hashed_pt.remove h ~vpn
                  | C c -> Clustered_pt.Table.remove c ~vpn)
                group);
          sections + 1)
    0 (range_groups t region)

let protect_range t region ~writable =
  let f attr = { attr with Pte.Attr.writable } in
  List.fold_left
    (fun sections group ->
      match group with
      | [] -> sections
      | rep :: _ ->
          write_section t ~vpn:rep ~default:() (fun () ->
              List.iter
                (fun vpn ->
                  let sub = Addr.Region.make ~first_vpn:vpn ~pages:1 in
                  match t.backend with
                  | H h -> ignore (Baselines.Hashed_pt.set_attr_range h sub ~f)
                  | C c -> ignore (Clustered_pt.Table.set_attr_range c sub ~f))
                group);
          sections + 1)
    0 (range_groups t region)

(* Range protect.  This is where lock granularity diverges (the
   Section 3.1 claim the tests verify): clustered takes one write lock
   per page *block*, hashed one per base *page*.  Under the global
   lock both take a single acquisition for the whole range. *)
let protect t region ~writable =
  let f attr = { attr with Pte.Attr.writable } in
  match t.locks with
  | Global_lock _ ->
      (* representative vpn only selects the (single) lock *)
      write_section t ~vpn:region.Addr.Region.first_vpn ~default:0 (fun () ->
          match t.backend with
          | H h -> Baselines.Hashed_pt.set_attr_range h region ~f
          | C c -> Clustered_pt.Table.set_attr_range c region ~f)
  | Striped_lock _ | Seqlock_lock _ -> (
      match t.backend with
      | C c ->
          let blocks =
            Addr.Region.blocks ~subblock_factor:t.subblock_factor region
          in
          List.fold_left
            (fun acc (vpbn, first_boff, count) ->
              let first_vpn =
                Int64.add
                  (Int64.mul vpbn (Int64.of_int t.subblock_factor))
                  (Int64.of_int first_boff)
              in
              let sub = Addr.Region.make ~first_vpn ~pages:count in
              acc
              + write_section t ~vpn:first_vpn ~default:0 (fun () ->
                    Clustered_pt.Table.set_attr_range c sub ~f))
            0 blocks
      | H h ->
          Addr.Region.fold_vpns region ~init:0 ~f:(fun acc vpn ->
              let sub = Addr.Region.make ~first_vpn:vpn ~pages:1 in
              acc
              + write_section t ~vpn ~default:0 (fun () ->
                    Baselines.Hashed_pt.set_attr_range h sub ~f)))

let population t =
  match t.backend with
  | H h -> Baselines.Hashed_pt.population h
  | C c -> Clustered_pt.Table.population c

let size_bytes t =
  match t.backend with
  | H h -> Baselines.Hashed_pt.size_bytes h
  | C c -> Clustered_pt.Table.size_bytes c

type lock_stats = {
  read_acquisitions : int;
  write_acquisitions : int;
  read_contention : int;
  currently_held : int;
}

let striped_stats l =
  {
    read_acquisitions = Clustered_pt.Bucket_lock.Real.read_acquisitions l;
    write_acquisitions = Clustered_pt.Bucket_lock.Real.write_acquisitions l;
    read_contention = Clustered_pt.Bucket_lock.Real.read_contention l;
    currently_held = Clustered_pt.Bucket_lock.Real.currently_held l;
  }

let lock_stats t =
  match t.locks with
  | Global_lock g ->
      (* mutate-free reads of monotonic counters; exact when quiescent,
         like the striped per-slot sums.  The single mutex has no
         blocked-reader accounting: contention reads as zero. *)
      {
        read_acquisitions = g.g_reads;
        write_acquisitions = g.g_writes;
        read_contention = 0;
        currently_held = g.g_held;
      }
  | Striped_lock l -> striped_stats l
  | Seqlock_lock s ->
      (* read acquisitions here are fallbacks only: the optimistic
         path's whole point is taking zero read locks *)
      striped_stats s.sl

let reset_lock_stats t =
  match t.locks with
  | Global_lock g ->
      g.g_reads <- 0;
      g.g_writes <- 0
  | Striped_lock l -> Clustered_pt.Bucket_lock.Real.reset_counters l
  | Seqlock_lock s ->
      Clustered_pt.Bucket_lock.Real.reset_counters s.sl;
      Atomic.set s.sq_retries 0;
      Atomic.set s.sq_fallbacks 0

let seqlock_retries t =
  match t.locks with
  | Seqlock_lock s -> Atomic.get s.sq_retries
  | Global_lock _ | Striped_lock _ -> 0

let seqlock_fallbacks t =
  match t.locks with
  | Seqlock_lock s -> Atomic.get s.sq_fallbacks
  | Global_lock _ | Striped_lock _ -> 0

let reader_epoch t =
  match t.locks with
  | Seqlock_lock s -> Some s.epoch
  | Global_lock _ | Striped_lock _ -> None

let limbo_nodes t =
  match t.backend with
  | H h -> Baselines.Hashed_pt.limbo_nodes h
  | C c -> Clustered_pt.Table.limbo_nodes c

let quiesce t =
  match t.locks with
  | Global_lock _ | Striped_lock _ -> ()
  | Seqlock_lock s -> (
      let upto = Exec.Epoch.safe_before s.epoch in
      match t.backend with
      | H h -> Baselines.Hashed_pt.reclaim h ~upto
      | C c -> Clustered_pt.Table.reclaim c ~upto)

let probe ?into t =
  match t.backend with
  | H h -> Obs.Probe.hashed ?into h
  | C c -> Obs.Probe.clustered ?into c

(* --- integrity (fsck) front-end --- *)

let as_fsck t =
  match t.backend with
  | H h -> Fsck.Hashed h
  | C c -> Fsck.Clustered c

let fsck_table = as_fsck

let fsck t = Fsck.check (as_fsck t)

let repair t =
  let r = Fsck.repair (as_fsck t) in
  Fault.note_repair ();
  bump "fault.repairs";
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant Obs.Tracer.ev_fault_repair r.Fsck.dropped;
  r

let corruption_kinds t = Fsck.corruption_kinds (as_fsck t)

let corrupt t name = Fsck.corrupt_by_name (as_fsck t) name
