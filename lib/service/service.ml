(* A shared-memory page-table service (paper, Section 3.1).

   One page table — hashed or clustered — shared by N domains, with
   the locking protocol the paper describes for multi-threaded
   operating systems: a readers-writer lock per hash bucket, striped
   over the table's own buckets, plus a coarse single-mutex baseline
   for comparison.

   The locking is layered strictly outside the tables.  The tables'
   entry points are bucket-local (every lookup/insert/remove touches
   exactly the chain of [bucket_of vpn]; range protects touch one
   bucket per block or per page), and their cross-bucket shared state
   — node counters, arena allocation, free lists — is independently
   thread-safe (atomics and internal mutexes).  Holding the stripe for
   an operation's bucket therefore makes the operation atomic with
   respect to every other operation.

   The hashed backend is restricted to [No_superpages] mode: its other
   modes probe a second (coarse) bucket per operation, which a single
   stripe does not cover. *)

type org = Hashed | Clustered

let org_name = function Hashed -> "hashed" | Clustered -> "clustered"

type locking = Global | Striped

let locking_name = function Global -> "global" | Striped -> "striped"

type backend = H of Baselines.Hashed_pt.t | C of Clustered_pt.Table.t

(* The coarse baseline is one exclusive mutex.  Acquisitions are
   tallied by intent (read for lookups, write for mutations) so its
   accounting lines up with the striped lock's, even though every
   acquisition excludes everyone. *)
type global_lock = {
  m : Mutex.t;
  mutable g_reads : int;
  mutable g_writes : int;
  mutable g_held : int;
}

type locks =
  | Global_lock of global_lock
  | Striped_lock of Clustered_pt.Bucket_lock.Real.t

type t = {
  org : org;
  locking : locking;
  backend : backend;
  locks : locks;
  subblock_factor : int;
}

let create ?(buckets = 4096) ?(subblock_factor = 16) ~org ~locking () =
  let backend =
    match org with
    | Hashed ->
        H
          (Baselines.Hashed_pt.create ~buckets ~subblock_factor
             ~mode:Baselines.Hashed_pt.No_superpages ())
    | Clustered ->
        C
          (Clustered_pt.Table.create
             (Clustered_pt.Config.make ~buckets ~subblock_factor ()))
  in
  let locks =
    match locking with
    | Global ->
        Global_lock
          { m = Mutex.create (); g_reads = 0; g_writes = 0; g_held = 0 }
    | Striped -> Striped_lock (Clustered_pt.Bucket_lock.Real.create ~buckets)
  in
  { org; locking; backend; locks; subblock_factor }

let org t = t.org
let locking t = t.locking
let subblock_factor t = t.subblock_factor

let bucket_of t ~vpn =
  match t.backend with
  | H h -> Baselines.Hashed_pt.bucket_of h ~vpn
  | C c -> Clustered_pt.Table.bucket_of c ~vpn

(* Lock holds are trace slices (arg: the stripe, or -1 for the global
   mutex).  The begin event precedes acquisition, so the slice also
   shows time spent blocked behind the holder.  With tracing disabled
   each emit point is one branch and the locking code is exactly the
   untraced version — no wrapper closures on the hot path. *)
let traced ev arg body =
  Obs.Tracer.begin_ ev arg;
  match body () with
  | v ->
      Obs.Tracer.end_ ev;
      v
  | exception e ->
      Obs.Tracer.end_ ev;
      raise e

let with_read_global g f =
  Mutex.lock g.m;
  g.g_reads <- g.g_reads + 1;
  g.g_held <- g.g_held + 1;
  Fun.protect
    ~finally:(fun () ->
      g.g_held <- g.g_held - 1;
      Mutex.unlock g.m)
    f

let with_read t ~vpn f =
  match t.locks with
  | Global_lock g ->
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_read (-1) (fun () -> with_read_global g f)
      else with_read_global g f
  | Striped_lock l ->
      let bucket = bucket_of t ~vpn in
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_read bucket (fun () ->
            Clustered_pt.Bucket_lock.Real.with_read l ~bucket f)
      else Clustered_pt.Bucket_lock.Real.with_read l ~bucket f

let with_write_global g f =
  Mutex.lock g.m;
  g.g_writes <- g.g_writes + 1;
  g.g_held <- g.g_held + 1;
  Fun.protect
    ~finally:(fun () ->
      g.g_held <- g.g_held - 1;
      Mutex.unlock g.m)
    f

let with_write t ~vpn f =
  match t.locks with
  | Global_lock g ->
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_write (-1) (fun () -> with_write_global g f)
      else with_write_global g f
  | Striped_lock l ->
      let bucket = bucket_of t ~vpn in
      if Obs.Tracer.enabled () then
        traced Obs.Tracer.ev_lock_write bucket (fun () ->
            Clustered_pt.Bucket_lock.Real.with_write l ~bucket f)
      else Clustered_pt.Bucket_lock.Real.with_write l ~bucket f

(* --- self-healing write path (engaged only under a fault plan) ---

   The fault plan can fail an operation three ways: the stripe
   acquisition times out ([Bucket_lock.Real.Timeout], injected before
   any lock state changes), node acquisition fails inside the table
   ([Fault.Injected Alloc_node], fired before any chain mutation), or
   the update itself is torn halfway ([Torn_write] — we plant the torn
   multi-word signature in the bucket, exactly what a real torn store
   of a two-word PTE leaves behind).

   Every guarded attempt journals its bucket image under the write
   lock and rolls back on any exception, so a failed attempt is
   invisible to fsck; the driver retries with a deterministic
   attempt-clock backoff and gives the operation up (degraded mode,
   tallied as an abort) once the budget is spent.  Recovery code runs
   inside [Fault.suspended] — undoing a fault can never inject
   another. *)

let heal_attempts = 4

let site_ordinal = function
  | Fault.Alloc_node -> 0
  | Fault.Alloc_phys -> 1
  | Fault.Lock_timeout -> 2
  | Fault.Domain_crash -> 3
  | Fault.Torn_write -> 4

let bump name = Obs.Metrics.incr (Obs.Ambient.counter name)

let note_injected site =
  bump ("fault.injected." ^ Fault.site_name site);
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant Obs.Tracer.ev_fault_inject (site_ordinal site)

let observed_site = function
  | Clustered_pt.Bucket_lock.Real.Timeout _ -> Some Fault.Lock_timeout
  | Fault.Injected { site; _ } -> Some site
  | _ -> None

(* Deterministic backoff: an attempt-clock spin, no wall time. *)
let backoff attempt =
  for _ = 1 to (attempt + 1) * 32 do
    Domain.cpu_relax ()
  done

type journal =
  | J_hashed of Baselines.Hashed_pt.bucket_image
  | J_clustered of Clustered_pt.Table.bucket_image

let snapshot t ~bucket =
  match t.backend with
  | H h -> J_hashed (Baselines.Hashed_pt.snapshot_bucket h ~bucket)
  | C c -> J_clustered (Clustered_pt.Table.snapshot_bucket c ~bucket)

let rollback t ~bucket img =
  match (t.backend, img) with
  | H h, J_hashed i -> Baselines.Hashed_pt.restore_bucket h ~bucket i
  | C c, J_clustered i -> Clustered_pt.Table.restore_bucket c ~bucket i
  | _ -> assert false

(* Plant the torn signature a half-completed multi-word PTE store
   leaves in [vpn]'s bucket. *)
let tear t ~vpn =
  ignore
    (match t.backend with
    | H h -> Baselines.Hashed_pt.corrupt h (Baselines.Hashed_pt.C_torn vpn)
    | C c -> Clustered_pt.Table.corrupt c (Clustered_pt.Table.C_torn vpn))

let attempt_write t ~vpn f =
  with_write t ~vpn (fun () ->
      let bucket = bucket_of t ~vpn in
      let img = snapshot t ~bucket in
      match
        if Fault.trip Fault.Torn_write then begin
          tear t ~vpn;
          raise
            (Fault.Injected
               { site = Fault.Torn_write; key = Fault.context_key () })
        end;
        f ()
      with
      | v -> v
      | exception e ->
          Fault.suspended (fun () -> rollback t ~bucket img);
          raise e)

let rec heal t ~vpn ~default ~write f attempt =
  Fault.set_attempt attempt;
  match if write then attempt_write t ~vpn f else with_read t ~vpn f with
  | v ->
      Fault.set_attempt 0;
      v
  | exception e -> (
      match observed_site e with
      | None -> raise e
      | Some site ->
          note_injected site;
          if attempt + 1 < heal_attempts then begin
            Fault.note_retry ();
            bump "fault.retries";
            if Obs.Tracer.enabled () then
              Obs.Tracer.instant Obs.Tracer.ev_fault_retry (attempt + 1);
            backoff attempt;
            heal t ~vpn ~default ~write f (attempt + 1)
          end
          else begin
            Fault.note_abort ();
            bump "fault.aborts";
            if Obs.Tracer.enabled () then
              Obs.Tracer.instant Obs.Tracer.ev_fault_abort heal_attempts;
            Fault.set_attempt 0;
            default
          end)

let read_section t ~vpn ~default f =
  if Fault.active () then heal t ~vpn ~default ~write:false f 0
  else with_read t ~vpn f

let write_section t ~vpn ~default f =
  if Fault.active () then heal t ~vpn ~default ~write:true f 0
  else with_write t ~vpn f

let lookup_into t acc ~vpn =
  read_section t ~vpn ~default:false (fun () ->
      match t.backend with
      | H h -> Baselines.Hashed_pt.lookup_into h acc ~vpn <> None
      | C c -> Clustered_pt.Table.lookup_into c acc ~vpn <> None)

let lookup t ~vpn =
  read_section t ~vpn ~default:false (fun () ->
      match t.backend with
      | H h -> fst (Baselines.Hashed_pt.lookup h ~vpn) <> None
      | C c -> fst (Clustered_pt.Table.lookup c ~vpn) <> None)

let insert t ~vpn ~ppn ~attr =
  write_section t ~vpn ~default:() (fun () ->
      match t.backend with
      | H h -> Baselines.Hashed_pt.insert_base h ~vpn ~ppn ~attr
      | C c -> Clustered_pt.Table.insert_base c ~vpn ~ppn ~attr)

let remove t ~vpn =
  write_section t ~vpn ~default:() (fun () ->
      match t.backend with
      | H h -> Baselines.Hashed_pt.remove h ~vpn
      | C c -> Clustered_pt.Table.remove c ~vpn)

(* Range protect.  This is where lock granularity diverges (the
   Section 3.1 claim the tests verify): clustered takes one write lock
   per page *block*, hashed one per base *page*.  Under the global
   lock both take a single acquisition for the whole range. *)
let protect t region ~writable =
  let f attr = { attr with Pte.Attr.writable } in
  match t.locks with
  | Global_lock _ ->
      (* representative vpn only selects the (single) lock *)
      write_section t ~vpn:region.Addr.Region.first_vpn ~default:0 (fun () ->
          match t.backend with
          | H h -> Baselines.Hashed_pt.set_attr_range h region ~f
          | C c -> Clustered_pt.Table.set_attr_range c region ~f)
  | Striped_lock _ -> (
      match t.backend with
      | C c ->
          let blocks =
            Addr.Region.blocks ~subblock_factor:t.subblock_factor region
          in
          List.fold_left
            (fun acc (vpbn, first_boff, count) ->
              let first_vpn =
                Int64.add
                  (Int64.mul vpbn (Int64.of_int t.subblock_factor))
                  (Int64.of_int first_boff)
              in
              let sub = Addr.Region.make ~first_vpn ~pages:count in
              acc
              + write_section t ~vpn:first_vpn ~default:0 (fun () ->
                    Clustered_pt.Table.set_attr_range c sub ~f))
            0 blocks
      | H h ->
          Addr.Region.fold_vpns region ~init:0 ~f:(fun acc vpn ->
              let sub = Addr.Region.make ~first_vpn:vpn ~pages:1 in
              acc
              + write_section t ~vpn ~default:0 (fun () ->
                    Baselines.Hashed_pt.set_attr_range h sub ~f)))

let population t =
  match t.backend with
  | H h -> Baselines.Hashed_pt.population h
  | C c -> Clustered_pt.Table.population c

let size_bytes t =
  match t.backend with
  | H h -> Baselines.Hashed_pt.size_bytes h
  | C c -> Clustered_pt.Table.size_bytes c

type lock_stats = {
  read_acquisitions : int;
  write_acquisitions : int;
  currently_held : int;
}

let lock_stats t =
  match t.locks with
  | Global_lock g ->
      (* mutate-free reads of monotonic counters; exact when quiescent,
         like the striped per-slot sums *)
      {
        read_acquisitions = g.g_reads;
        write_acquisitions = g.g_writes;
        currently_held = g.g_held;
      }
  | Striped_lock l ->
      {
        read_acquisitions = Clustered_pt.Bucket_lock.Real.read_acquisitions l;
        write_acquisitions = Clustered_pt.Bucket_lock.Real.write_acquisitions l;
        currently_held = Clustered_pt.Bucket_lock.Real.currently_held l;
      }

let reset_lock_stats t =
  match t.locks with
  | Global_lock g ->
      g.g_reads <- 0;
      g.g_writes <- 0
  | Striped_lock l -> Clustered_pt.Bucket_lock.Real.reset_counters l

let probe ?into t =
  match t.backend with
  | H h -> Obs.Probe.hashed ?into h
  | C c -> Obs.Probe.clustered ?into c

(* --- integrity (fsck) front-end --- *)

let as_fsck t =
  match t.backend with
  | H h -> Fsck.Hashed h
  | C c -> Fsck.Clustered c

let fsck t = Fsck.check (as_fsck t)

let repair t =
  let r = Fsck.repair (as_fsck t) in
  Fault.note_repair ();
  bump "fault.repairs";
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant Obs.Tracer.ev_fault_repair r.Fsck.dropped;
  r

let corruption_kinds t = Fsck.corruption_kinds (as_fsck t)

let corrupt t name = Fsck.corrupt_by_name (as_fsck t) name
