type policy = Lru | Fifo | Random of int64

type 'e t = {
  slots : 'e option array;
  stamps : int array; (* last-use (Lru) or insertion (Fifo) ticks *)
  policy : policy;
  mutable rng : int64; (* SplitMix64 state for Random *)
  mutable clock : int;
}

let create ?(policy = Lru) ~entries () =
  if entries <= 0 then invalid_arg "Assoc.create";
  let rng = match policy with Random seed -> seed | Lru | Fifo -> 0L in
  {
    slots = Array.make entries None;
    stamps = Array.make entries 0;
    policy;
    rng;
    clock = 0;
  }

let next_random t =
  t.rng <- Int64.add t.rng 0x9E3779B97F4A7C15L;
  let z = t.rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let entries t = Array.length t.slots

let occupied t =
  Array.fold_left (fun acc s -> if s = None then acc else acc + 1) 0 t.slots

let find t ~f =
  let n = Array.length t.slots in
  let rec go i =
    if i >= n then None
    else
      match t.slots.(i) with
      | Some e when f e -> Some e
      | Some _ | None -> go (i + 1)
  in
  go 0

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let touch t ~f =
  (* FIFO and Random ignore recency *)
  if t.policy = Lru then begin
    let n = Array.length t.slots in
    let rec go i =
      if i < n then
        match t.slots.(i) with
        | Some e when f e -> t.stamps.(i) <- tick t
        | Some _ | None -> go (i + 1)
    in
    go 0
  end

let insert t e =
  let n = Array.length t.slots in
  (* a free slot first, otherwise the policy's victim *)
  let free = ref None and victim = ref 0 in
  for i = n - 1 downto 0 do
    if t.slots.(i) = None then free := Some i
    else if t.stamps.(i) < t.stamps.(!victim) || t.slots.(!victim) = None then
      victim := i
  done;
  (match t.policy with
  | Lru | Fifo -> () (* stamp semantics differ; the min is the victim *)
  | Random _ ->
      if !free = None then
        victim :=
          Int64.to_int
            (Int64.rem
               (Int64.shift_right_logical (next_random t) 3)
               (Int64.of_int n)));
  match !free with
  | Some i ->
      t.slots.(i) <- Some e;
      t.stamps.(i) <- tick t;
      None
  | None ->
      let old = t.slots.(!victim) in
      t.slots.(!victim) <- Some e;
      t.stamps.(!victim) <- tick t;
      old

let iter t f =
  Array.iter (function Some e -> f e | None -> ()) t.slots

let flush t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0
