(** Complete-subblock TLB (paper, Sections 4.1 and 4.4).

    One tag per page block, but a full array of PPN/attribute fields —
    any frames, no placement constraint.  Misses divide into *block*
    misses (no entry for the block: allocate, possibly evict) and
    *subblock* misses (entry present, page's slot invalid: add the PPN
    without replacement).

    Subblock prefetching (Section 4.4) eliminates subblock misses by
    loading every mapping of the block's tag on a block miss — use
    {!fill_block} with the page table's [lookup_block] result.  It
    never pollutes the TLB because it never causes extra
    replacements. *)

type t

val name : string

val create :
  ?policy:Assoc.policy -> ?entries:int -> ?subblock_factor:int -> unit -> t

val entries : t -> int

val subblock_factor : t -> int

val access : t -> vpn:int64 -> [ `Hit | `Block_miss | `Subblock_miss ]

val fill : t -> Pt_common.Types.translation -> unit
(** Fill just the faulting page's slot (no prefetch). *)

val fill_block : t -> (int * Pt_common.Types.translation) list -> unit
(** Prefetch fill: install every given (block offset, translation) into
    one entry. *)

val flush : t -> unit

val stats : t -> Stats.t
