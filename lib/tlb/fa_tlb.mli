(** Conventional fully-associative, single-page-size TLB: 64 entries of
    one 4 KB page each (the paper's base case, Section 6.1).

    Superpage or partial-subblock translations fill only the faulting
    base page — exactly what happens when page tables support the new
    formats but the hardware TLB does not. *)

type t

val name : string

val create : ?policy:Assoc.policy -> ?entries:int -> unit -> t
(** Default 64 entries. *)

val entries : t -> int

val access : t -> vpn:int64 -> [ `Hit | `Block_miss | `Subblock_miss ]
(** Updates statistics and LRU state; never returns [`Subblock_miss]. *)

val fill : t -> Pt_common.Types.translation -> unit

val fill_block : t -> (int * Pt_common.Types.translation) list -> unit
(** Fills each translation individually (no subblocking here). *)

val flush : t -> unit

val stats : t -> Stats.t
