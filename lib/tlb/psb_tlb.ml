type entry = {
  vpbn : int64;
  mutable vmask : int;
  mutable sp_mask : int;
      (* vmask bits installed from a superpage translation; a later
         base / partial-subblock fill of the same bit reclaims it *)
  ppn_base : int64; (* PPN of block offset 0; offset i maps to ppn_base+i *)
  attr : Pte.Attr.t;
}

type t = {
  store : entry Assoc.t;
  factor : int;
  factor_bits : int;
  stats : Stats.t;
}

let name = "psb-tlb"

let create ?policy ?(entries = 64) ?(subblock_factor = 16) () =
  if not (Addr.Bits.is_pow2 subblock_factor) then
    invalid_arg "Psb_tlb: subblock factor must be a power of two";
  {
    store = Assoc.create ?policy ~entries ();
    factor = subblock_factor;
    factor_bits = Addr.Bits.log2_exact subblock_factor;
    stats = Stats.create ();
  }

let entries t = Assoc.entries t.store

let subblock_factor t = t.factor

let split t vpn =
  ( Int64.shift_right_logical vpn t.factor_bits,
    Int64.to_int (Addr.Bits.extract vpn ~lo:0 ~width:t.factor_bits) )

let access t ~vpn =
  t.stats.Stats.accesses <- t.stats.Stats.accesses + 1;
  let vpbn, boff = split t vpn in
  let covers e = Int64.equal e.vpbn vpbn && e.vmask land (1 lsl boff) <> 0 in
  match Assoc.find t.store ~f:covers with
  | Some e ->
      Assoc.touch t.store ~f:covers;
      t.stats.Stats.hits <- t.stats.Stats.hits + 1;
      if e.sp_mask land (1 lsl boff) <> 0 then
        t.stats.Stats.sp_hits <- t.stats.Stats.sp_hits + 1
      else t.stats.Stats.base_hits <- t.stats.Stats.base_hits + 1;
      `Hit
  | None ->
      if Assoc.find t.store ~f:(fun e -> Int64.equal e.vpbn vpbn) <> None then begin
        t.stats.Stats.subblock_misses <- t.stats.Stats.subblock_misses + 1;
        `Subblock_miss
      end
      else begin
        t.stats.Stats.block_misses <- t.stats.Stats.block_misses + 1;
        `Block_miss
      end

let insert t e =
  match Assoc.insert t.store e with
  | Some _ -> t.stats.Stats.evictions <- t.stats.Stats.evictions + 1
  | None -> ()

(* Merge the bits [vmask] (whose pages map to [ppn_base] + offset) into
   an existing compatible entry, or install a new entry.  [sp] marks
   the bits as superpage-derived for hit attribution. *)
let fill_bits t ~sp ~vpbn ~vmask ~ppn_base ~attr =
  let compatible e =
    Int64.equal e.vpbn vpbn && Int64.equal e.ppn_base ppn_base
  in
  match Assoc.find t.store ~f:compatible with
  | Some e ->
      e.vmask <- e.vmask lor vmask;
      if sp then e.sp_mask <- e.sp_mask lor vmask
      else e.sp_mask <- e.sp_mask land lnot vmask;
      Assoc.touch t.store ~f:compatible
  | None ->
      insert t
        { vpbn; vmask; sp_mask = (if sp then vmask else 0); ppn_base; attr }

let fill t (tr : Pt_common.Types.translation) =
  let vpbn, boff = split t tr.vpn in
  match tr.kind with
  | Pt_common.Types.Partial_subblock vmask ->
      fill_bits t ~sp:false ~vpbn ~vmask ~ppn_base:tr.ppn_base ~attr:tr.attr
  | Pt_common.Types.Base ->
      (* merging requires proper placement: offset agreement between
         the entry's base PPN and this page's PPN *)
      let candidate_base = Int64.sub tr.ppn (Int64.of_int boff) in
      fill_bits t ~sp:false ~vpbn ~vmask:(1 lsl boff) ~ppn_base:candidate_base
        ~attr:tr.attr
  | Pt_common.Types.Superpage size ->
      let pages = Addr.Page_size.base_pages size in
      if pages >= t.factor then begin
        (* the superpage covers this whole block *)
        let block_base_vpn = Int64.shift_left vpbn t.factor_bits in
        let ppn_base =
          Int64.add tr.ppn_base (Int64.sub block_base_vpn tr.vpn_base)
        in
        fill_bits t ~sp:true ~vpbn
          ~vmask:((1 lsl t.factor) - 1)
          ~ppn_base ~attr:tr.attr
      end
      else begin
        let _, first_boff = split t tr.vpn_base in
        let vmask = ((1 lsl pages) - 1) lsl first_boff in
        let ppn_base = Int64.sub tr.ppn_base (Int64.of_int first_boff) in
        fill_bits t ~sp:true ~vpbn ~vmask ~ppn_base ~attr:tr.attr
      end

let fill_block t trs = List.iter (fun (_, tr) -> fill t tr) trs

let flush t = Assoc.flush t.store

let stats t = t.stats
