type entry = { vpn : int64; ppn : int64; attr : Pte.Attr.t }

type t = { store : entry Assoc.t; stats : Stats.t }

let name = "fa-tlb"

let create ?policy ?(entries = 64) () =
  { store = Assoc.create ?policy ~entries (); stats = Stats.create () }

let entries t = Assoc.entries t.store

let access t ~vpn =
  t.stats.Stats.accesses <- t.stats.Stats.accesses + 1;
  let matches e = Int64.equal e.vpn vpn in
  match Assoc.find t.store ~f:matches with
  | Some _ ->
      Assoc.touch t.store ~f:matches;
      t.stats.Stats.hits <- t.stats.Stats.hits + 1;
      (* every entry maps exactly one base page *)
      t.stats.Stats.base_hits <- t.stats.Stats.base_hits + 1;
      `Hit
  | None ->
      t.stats.Stats.block_misses <- t.stats.Stats.block_misses + 1;
      `Block_miss

let fill t (tr : Pt_common.Types.translation) =
  let e = { vpn = tr.vpn; ppn = tr.ppn; attr = tr.attr } in
  match Assoc.insert t.store e with
  | Some _ -> t.stats.Stats.evictions <- t.stats.Stats.evictions + 1
  | None -> ()

let fill_block t trs = List.iter (fun (_, tr) -> fill t tr) trs

let flush t = Assoc.flush t.store

let stats t = t.stats
