(** TLB access statistics.

    The complete-subblock TLB distinguishes block misses (a new entry
    is allocated, possibly evicting) from subblock misses (an existing
    entry gains one more PPN) — Section 4.4.  For other TLBs every
    miss is a block miss. *)

type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable block_misses : int;
  mutable subblock_misses : int;
  mutable evictions : int;
}

val create : unit -> t

val misses : t -> int
(** Block plus subblock misses. *)

val miss_ratio : t -> float

val reset : t -> unit

val pp : Format.formatter -> t -> unit
