(** TLB access statistics.

    The complete-subblock TLB distinguishes block misses (a new entry
    is allocated, possibly evicting) from subblock misses (an existing
    entry gains one more PPN) — Section 4.4.  For other TLBs every
    miss is a block miss.

    Hits are also attributed to the page size of the mapping that
    served them: [base_hits] for base-page (4 KB) mappings,
    [sp_hits] for mappings a superpage translation installed
    (Section 4's motivation — how much of the hit stream superpages
    actually carry).  Every hit is one or the other, so
    [hits = base_hits + sp_hits] always holds. *)

type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable base_hits : int;  (** hits served by a base-page mapping *)
  mutable sp_hits : int;  (** hits served by a superpage-derived mapping *)
  mutable block_misses : int;
  mutable subblock_misses : int;
  mutable evictions : int;
}

val create : unit -> t

val misses : t -> int
(** Block plus subblock misses. *)

val miss_ratio : t -> float

val reset : t -> unit
(** Zero {e every} field, leaving [t] structurally equal to
    [create ()]. *)

val pp : Format.formatter -> t -> unit
