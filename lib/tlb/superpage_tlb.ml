type entry = {
  vpn_base : int64;
  pages : int; (* power of two *)
  ppn_base : int64;
  attr : Pte.Attr.t;
}

type t = { store : entry Assoc.t; stats : Stats.t }

let name = "sp-tlb"

let create ?policy ?(entries = 64) () =
  { store = Assoc.create ?policy ~entries (); stats = Stats.create () }

let entries t = Assoc.entries t.store

let covers e vpn =
  Int64.unsigned_compare vpn e.vpn_base >= 0
  && Int64.unsigned_compare vpn (Int64.add e.vpn_base (Int64.of_int e.pages)) < 0

let access t ~vpn =
  t.stats.Stats.accesses <- t.stats.Stats.accesses + 1;
  let matches e = covers e vpn in
  match Assoc.find t.store ~f:matches with
  | Some e ->
      Assoc.touch t.store ~f:matches;
      t.stats.Stats.hits <- t.stats.Stats.hits + 1;
      if e.pages > 1 then t.stats.Stats.sp_hits <- t.stats.Stats.sp_hits + 1
      else t.stats.Stats.base_hits <- t.stats.Stats.base_hits + 1;
      `Hit
  | None ->
      t.stats.Stats.block_misses <- t.stats.Stats.block_misses + 1;
      `Block_miss

let fill t (tr : Pt_common.Types.translation) =
  let e =
    match tr.kind with
    | Pt_common.Types.Superpage size ->
        {
          vpn_base = tr.vpn_base;
          pages = Addr.Page_size.base_pages size;
          ppn_base = tr.ppn_base;
          attr = tr.attr;
        }
    | Pt_common.Types.Base | Pt_common.Types.Partial_subblock _ ->
        { vpn_base = tr.vpn; pages = 1; ppn_base = tr.ppn; attr = tr.attr }
  in
  match Assoc.insert t.store e with
  | Some _ -> t.stats.Stats.evictions <- t.stats.Stats.evictions + 1
  | None -> ()

let fill_block t trs = List.iter (fun (_, tr) -> fill t tr) trs

let flush t = Assoc.flush t.store

let stats t = t.stats
