(** First-class-module view of the four TLB designs, so the
    access-time experiments iterate over TLB architectures exactly as
    they iterate over page tables. *)

module type TLB = sig
  type t

  val name : string

  val entries : t -> int

  val access : t -> vpn:int64 -> [ `Hit | `Block_miss | `Subblock_miss ]

  val fill : t -> Pt_common.Types.translation -> unit

  val fill_block : t -> (int * Pt_common.Types.translation) list -> unit

  val flush : t -> unit

  val stats : t -> Stats.t
end

type instance = Instance : (module TLB with type t = 't) * 't -> instance

let instance_name (Instance ((module T), _)) = T.name

let entries (Instance ((module T), t)) = T.entries t

let access (Instance ((module T), t)) ~vpn = T.access t ~vpn

let fill (Instance ((module T), t)) tr = T.fill t tr

let fill_block (Instance ((module T), t)) trs = T.fill_block t trs

let flush (Instance ((module T), t)) = T.flush t

let stats (Instance ((module T), t)) = T.stats t

let fa ?policy ?entries () =
  Instance ((module Fa_tlb), Fa_tlb.create ?policy ?entries ())

let superpage ?policy ?entries () =
  Instance ((module Superpage_tlb), Superpage_tlb.create ?policy ?entries ())

let psb ?policy ?entries ?subblock_factor () =
  Instance ((module Psb_tlb), Psb_tlb.create ?policy ?entries ?subblock_factor ())

let csb ?policy ?entries ?subblock_factor () =
  Instance ((module Csb_tlb), Csb_tlb.create ?policy ?entries ?subblock_factor ())
