(** Address-space tagging (ASIDs) for any TLB model.

    The paper's SuperSPARC context is flushed on every context switch;
    Section 7 notes multiprogramming "can increase the number of TLB
    misses and make TLB miss handling more significant".  MIPS-style
    TLBs instead tag each entry with an address-space identifier so a
    switch costs nothing.  This wrapper adds ASIDs to any underlying
    TLB design by folding the ASID into the tag's high VPN bits — far
    above any real VPN, so page-block arithmetic inside the wrapped
    TLB is untouched.

    The multiprogramming ablation compares flush-on-switch against
    tagged TLBs on the gcc and compress workloads. *)

type t

val create : ?asid_bits:int -> Intf.instance -> t
(** Default 12 ASID bits placed at VPN bits 52..63.  Raises
    [Invalid_argument] if [asid_bits] is outside [1, 12]. *)

val set_context : t -> asid:int -> unit
(** Switch address spaces.  No flush: entries of other contexts stay
    resident.  Raises [Invalid_argument] if [asid] does not fit. *)

val context : t -> int

val access : t -> vpn:int64 -> [ `Hit | `Block_miss | `Subblock_miss ]
(** Access [vpn] in the current context. *)

val fill : t -> Pt_common.Types.translation -> unit
(** Install a translation for the current context. *)

val fill_block : t -> (int * Pt_common.Types.translation) list -> unit

val flush : t -> unit
(** Full flush (e.g. ASID rollover). *)

val stats : t -> Stats.t
(** Aggregate statistics of the wrapped TLB across all contexts,
    including the per-page-size hit split ([base_hits]/[sp_hits]). *)

val context_stats : t -> asid:int -> Stats.t
(** Per-context statistics: accesses made while [asid] was current,
    with hits split into [base_hits]/[sp_hits] and misses into
    block/subblock, attributed from the wrapped TLB's counters.
    [evictions] is always 0 here — an eviction may displace any
    context's entry, so it is only meaningful in [stats].  Returns a
    zeroed record for a context never switched to. *)
