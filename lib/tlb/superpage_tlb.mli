(** Superpage TLB: entries map a power-of-two number of base pages
    (4 KB up to the largest superpage), MIPS R4000 / UltraSPARC style
    (paper, Section 4.1).

    A superpage translation fills one entry covering the whole
    superpage; base and partial-subblock translations fill a one-page
    entry. *)

type t

val name : string

val create : ?policy:Assoc.policy -> ?entries:int -> unit -> t

val entries : t -> int

val access : t -> vpn:int64 -> [ `Hit | `Block_miss | `Subblock_miss ]

val fill : t -> Pt_common.Types.translation -> unit

val fill_block : t -> (int * Pt_common.Types.translation) list -> unit

val flush : t -> unit

val stats : t -> Stats.t
