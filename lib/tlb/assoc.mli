(** Fully-associative entry store shared by all TLB models.  The
    paper's TLBs are 64-entry fully associative with LRU; real parts
    differ — the MIPS R4000's TLB replaces a *random* (non-wired)
    entry, and FIFO is common — so the victim policy is pluggable. *)

type policy =
  | Lru
  | Fifo
  | Random of int64  (** deterministic, seeded *)

type 'e t

val create : ?policy:policy -> entries:int -> unit -> 'e t
(** Default [Lru]. *)

val entries : 'e t -> int

val occupied : 'e t -> int

val find : 'e t -> f:('e -> bool) -> 'e option
(** First live entry satisfying [f]; does not update recency — call
    {!touch} with the same predicate on a hit. *)

val touch : 'e t -> f:('e -> bool) -> unit
(** Mark the matching entry most recently used. *)

val insert : 'e t -> 'e -> 'e option
(** Install into a free slot, or evict the least recently used entry
    and return it. *)

val iter : 'e t -> ('e -> unit) -> unit

val flush : 'e t -> unit
