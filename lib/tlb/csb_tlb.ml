type entry = {
  vpbn : int64;
  mutable vmask : int;
  mutable sp_mask : int;
      (* slots filled from a superpage translation; a later base /
         partial-subblock fill of the same slot reclaims it *)
  ppns : int64 array;
  attrs : Pte.Attr.t array;
}

type t = {
  store : entry Assoc.t;
  factor : int;
  factor_bits : int;
  stats : Stats.t;
}

let name = "csb-tlb"

let create ?policy ?(entries = 64) ?(subblock_factor = 16) () =
  if not (Addr.Bits.is_pow2 subblock_factor) then
    invalid_arg "Csb_tlb: subblock factor must be a power of two";
  {
    store = Assoc.create ?policy ~entries ();
    factor = subblock_factor;
    factor_bits = Addr.Bits.log2_exact subblock_factor;
    stats = Stats.create ();
  }

let entries t = Assoc.entries t.store

let subblock_factor t = t.factor

let split t vpn =
  ( Int64.shift_right_logical vpn t.factor_bits,
    Int64.to_int (Addr.Bits.extract vpn ~lo:0 ~width:t.factor_bits) )

let access t ~vpn =
  t.stats.Stats.accesses <- t.stats.Stats.accesses + 1;
  let vpbn, boff = split t vpn in
  let covers e = Int64.equal e.vpbn vpbn && e.vmask land (1 lsl boff) <> 0 in
  match Assoc.find t.store ~f:covers with
  | Some e ->
      Assoc.touch t.store ~f:covers;
      t.stats.Stats.hits <- t.stats.Stats.hits + 1;
      if e.sp_mask land (1 lsl boff) <> 0 then
        t.stats.Stats.sp_hits <- t.stats.Stats.sp_hits + 1
      else t.stats.Stats.base_hits <- t.stats.Stats.base_hits + 1;
      `Hit
  | None ->
      if Assoc.find t.store ~f:(fun e -> Int64.equal e.vpbn vpbn) <> None then begin
        t.stats.Stats.subblock_misses <- t.stats.Stats.subblock_misses + 1;
        `Subblock_miss
      end
      else begin
        t.stats.Stats.block_misses <- t.stats.Stats.block_misses + 1;
        `Block_miss
      end

let get_or_insert_entry t vpbn =
  let same e = Int64.equal e.vpbn vpbn in
  match Assoc.find t.store ~f:same with
  | Some e ->
      Assoc.touch t.store ~f:same;
      e
  | None ->
      let e =
        {
          vpbn;
          vmask = 0;
          sp_mask = 0;
          ppns = Array.make t.factor 0L;
          attrs = Array.make t.factor Pte.Attr.default;
        }
      in
      (match Assoc.insert t.store e with
      | Some _ -> t.stats.Stats.evictions <- t.stats.Stats.evictions + 1
      | None -> ());
      e

let set_slot e ~sp ~boff ~ppn ~attr =
  e.vmask <- e.vmask lor (1 lsl boff);
  if sp then e.sp_mask <- e.sp_mask lor (1 lsl boff)
  else e.sp_mask <- e.sp_mask land lnot (1 lsl boff);
  e.ppns.(boff) <- ppn;
  e.attrs.(boff) <- attr

(* Slots of the faulting block that [tr] maps. *)
let slots_of t vpbn (tr : Pt_common.Types.translation) =
  match tr.kind with
  | Pt_common.Types.Base ->
      let _, boff = split t tr.vpn in
      [ (boff, tr.ppn, tr.attr) ]
  | Pt_common.Types.Partial_subblock vmask ->
      let out = ref [] in
      for i = t.factor - 1 downto 0 do
        if vmask land (1 lsl i) <> 0 then
          out := (i, Int64.add tr.ppn_base (Int64.of_int i), tr.attr) :: !out
      done;
      !out
  | Pt_common.Types.Superpage size ->
      let pages = Addr.Page_size.base_pages size in
      let block_base_vpn = Int64.shift_left vpbn t.factor_bits in
      let out = ref [] in
      for i = t.factor - 1 downto 0 do
        let page = Int64.add block_base_vpn (Int64.of_int i) in
        let off = Int64.sub page tr.vpn_base in
        if Int64.compare off 0L >= 0 && Int64.compare off (Int64.of_int pages) < 0
        then
          out := (i, Int64.add tr.ppn_base off, tr.attr) :: !out
      done;
      !out

let is_sp (tr : Pt_common.Types.translation) =
  match tr.kind with
  | Pt_common.Types.Superpage _ -> true
  | Pt_common.Types.Base | Pt_common.Types.Partial_subblock _ -> false

let fill t (tr : Pt_common.Types.translation) =
  let vpbn, _ = split t tr.vpn in
  let e = get_or_insert_entry t vpbn in
  match tr.kind with
  | Pt_common.Types.Base ->
      let _, boff = split t tr.vpn in
      set_slot e ~sp:false ~boff ~ppn:tr.ppn ~attr:tr.attr
  | Pt_common.Types.Partial_subblock _ | Pt_common.Types.Superpage _ ->
      let sp = is_sp tr in
      List.iter
        (fun (boff, ppn, attr) -> set_slot e ~sp ~boff ~ppn ~attr)
        (slots_of t vpbn tr)

let fill_block t trs =
  match trs with
  | [] -> ()
  | (_, tr0) :: _ ->
      let vpbn, _ = split t tr0.Pt_common.Types.vpn in
      let e = get_or_insert_entry t vpbn in
      List.iter
        (fun (boff, (tr : Pt_common.Types.translation)) ->
          set_slot e ~sp:(is_sp tr) ~boff ~ppn:tr.ppn ~attr:tr.attr)
        trs

let flush t = Assoc.flush t.store

let stats t = t.stats
