type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable base_hits : int;
  mutable sp_hits : int;
  mutable block_misses : int;
  mutable subblock_misses : int;
  mutable evictions : int;
}

let create () =
  {
    accesses = 0;
    hits = 0;
    base_hits = 0;
    sp_hits = 0;
    block_misses = 0;
    subblock_misses = 0;
    evictions = 0;
  }

let misses t = t.block_misses + t.subblock_misses

let miss_ratio t =
  if t.accesses = 0 then 0.0
  else float_of_int (misses t) /. float_of_int t.accesses

let reset t =
  t.accesses <- 0;
  t.hits <- 0;
  t.base_hits <- 0;
  t.sp_hits <- 0;
  t.block_misses <- 0;
  t.subblock_misses <- 0;
  t.evictions <- 0

let pp ppf t =
  Format.fprintf ppf
    "accesses=%d hits=%d (base=%d sp=%d) block_misses=%d subblock_misses=%d \
     evictions=%d"
    t.accesses t.hits t.base_hits t.sp_hits t.block_misses t.subblock_misses
    t.evictions
