type t = {
  inner : Intf.instance;
  asid_shift : int;
  asid_max : int;
  mutable asid : int;
  contexts : (int, Stats.t) Hashtbl.t;
  (* cache of [Hashtbl.find contexts asid] for the current context, so
     the per-access attribution below costs no hashing on the hot
     path *)
  mutable cur : Stats.t;
}

let create ?(asid_bits = 12) inner =
  if asid_bits < 1 || asid_bits > 12 then
    invalid_arg "Tagged_tlb.create: asid_bits";
  let contexts = Hashtbl.create 16 in
  let cur = Stats.create () in
  Hashtbl.replace contexts 0 cur;
  {
    inner;
    asid_shift = 64 - asid_bits;
    asid_max = (1 lsl asid_bits) - 1;
    asid = 0;
    contexts;
    cur;
  }

let context_stats t ~asid =
  match Hashtbl.find_opt t.contexts asid with
  | Some s -> s
  | None ->
      let s = Stats.create () in
      Hashtbl.replace t.contexts asid s;
      s

let set_context t ~asid =
  if asid < 0 || asid > t.asid_max then invalid_arg "Tagged_tlb.set_context";
  t.asid <- asid;
  t.cur <- context_stats t ~asid

let context t = t.asid

let tag t vpn =
  Int64.logor vpn (Int64.shift_left (Int64.of_int t.asid) t.asid_shift)

(* Per-context attribution: the wrapped TLB tallies base/superpage hit
   splits and miss kinds globally; we read its counters around each
   access and charge the delta to the current context.  Evictions are
   not attributed — the evicted entry may belong to any context. *)
let access t ~vpn =
  let s = Intf.stats t.inner in
  let base0 = s.Stats.base_hits
  and sp0 = s.Stats.sp_hits
  and bm0 = s.Stats.block_misses
  and sm0 = s.Stats.subblock_misses in
  let r = Intf.access t.inner ~vpn:(tag t vpn) in
  let c = t.cur in
  c.Stats.accesses <- c.Stats.accesses + 1;
  let base = s.Stats.base_hits - base0 and sp = s.Stats.sp_hits - sp0 in
  c.Stats.base_hits <- c.Stats.base_hits + base;
  c.Stats.sp_hits <- c.Stats.sp_hits + sp;
  c.Stats.hits <- c.Stats.hits + base + sp;
  c.Stats.block_misses <- c.Stats.block_misses + s.Stats.block_misses - bm0;
  c.Stats.subblock_misses <-
    c.Stats.subblock_misses + s.Stats.subblock_misses - sm0;
  r

let fill t (tr : Pt_common.Types.translation) =
  Intf.fill t.inner
    {
      tr with
      Pt_common.Types.vpn = tag t tr.Pt_common.Types.vpn;
      vpn_base = tag t tr.Pt_common.Types.vpn_base;
    }

let fill_block t trs =
  Intf.fill_block t.inner
    (List.map
       (fun (boff, (tr : Pt_common.Types.translation)) ->
         ( boff,
           {
             tr with
             Pt_common.Types.vpn = tag t tr.Pt_common.Types.vpn;
             vpn_base = tag t tr.Pt_common.Types.vpn_base;
           } ))
       trs)

let flush t = Intf.flush t.inner

let stats t = Intf.stats t.inner
