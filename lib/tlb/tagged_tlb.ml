type t = {
  inner : Intf.instance;
  asid_shift : int;
  asid_max : int;
  mutable asid : int;
}

let create ?(asid_bits = 12) inner =
  if asid_bits < 1 || asid_bits > 12 then
    invalid_arg "Tagged_tlb.create: asid_bits";
  { inner; asid_shift = 64 - asid_bits; asid_max = (1 lsl asid_bits) - 1; asid = 0 }

let set_context t ~asid =
  if asid < 0 || asid > t.asid_max then invalid_arg "Tagged_tlb.set_context";
  t.asid <- asid

let context t = t.asid

let tag t vpn =
  Int64.logor vpn (Int64.shift_left (Int64.of_int t.asid) t.asid_shift)

let access t ~vpn = Intf.access t.inner ~vpn:(tag t vpn)

let fill t (tr : Pt_common.Types.translation) =
  Intf.fill t.inner
    {
      tr with
      Pt_common.Types.vpn = tag t tr.Pt_common.Types.vpn;
      vpn_base = tag t tr.Pt_common.Types.vpn_base;
    }

let fill_block t trs =
  Intf.fill_block t.inner
    (List.map
       (fun (boff, (tr : Pt_common.Types.translation)) ->
         ( boff,
           {
             tr with
             Pt_common.Types.vpn = tag t tr.Pt_common.Types.vpn;
             vpn_base = tag t tr.Pt_common.Types.vpn_base;
           } ))
       trs)

let flush t = Intf.flush t.inner

let stats t = Intf.stats t.inner
