(** Partial-subblock TLB (paper, Section 4.1, [Tall94]).

    Each entry has one tag covering a page block, one PPN, and a valid
    bit-vector: base pages can be resident piecemeal, but every valid
    page must be *properly placed* relative to the single PPN.  A base
    translation whose frame is properly placed merges into an existing
    entry for its block (setting one more valid bit); an improperly
    placed frame consumes its own one-bit entry. *)

type t

val name : string

val create :
  ?policy:Assoc.policy -> ?entries:int -> ?subblock_factor:int -> unit -> t
(** Defaults: 64 entries, factor 16. *)

val entries : t -> int

val subblock_factor : t -> int

val access : t -> vpn:int64 -> [ `Hit | `Block_miss | `Subblock_miss ]
(** [`Subblock_miss] when an entry for the block exists but the page's
    valid bit is clear. *)

val fill : t -> Pt_common.Types.translation -> unit

val fill_block : t -> (int * Pt_common.Types.translation) list -> unit

val flush : t -> unit

val stats : t -> Stats.t
