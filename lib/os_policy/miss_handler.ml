module Intf = Pt_common.Intf
module Types = Pt_common.Types

type outcome = [ `Tlb_hit | `Filled | `Page_fault_filled | `Fault ]

type t = {
  tlb : Tlb.Intf.instance;
  pt : Intf.instance;
  aspace : Address_space.t option;
  prefetch : bool;
  factor : int;
  counter : Mem.Cache_model.counter;
  mutable page_faults : int;
  (* telemetry handles into the creating domain's shard, resolved once
     here so the per-miss cost is a field bump (create the handler on
     the domain that will run it, which every runner does) *)
  m_tlb_hits : Obs.Metrics.counter;
  m_tlb_misses : Obs.Metrics.counter;
  m_page_faults : Obs.Metrics.counter;
  m_walk_reads : Obs.Hist.t;
  m_walk_lines : Obs.Hist.t;
}

let create ~tlb ~pt ?aspace ?(prefetch = false) ?(subblock_factor = 16)
    ?line_size () =
  let shard = Obs.Ambient.get () in
  {
    tlb;
    pt;
    aspace;
    prefetch;
    factor = subblock_factor;
    counter = Mem.Cache_model.create_counter ?line_size ();
    page_faults = 0;
    m_tlb_hits = Obs.Metrics.counter shard "os.tlb_hits";
    m_tlb_misses = Obs.Metrics.counter shard "os.tlb_misses";
    m_page_faults = Obs.Metrics.counter shard "os.page_faults";
    m_walk_reads = Obs.Metrics.hist shard "os.walk_reads";
    m_walk_lines = Obs.Metrics.hist shard "os.walk_lines";
  }

let record t (walk : Types.walk) =
  let lines = Mem.Cache_model.record_walk t.counter walk.accesses in
  Obs.Hist.observe t.m_walk_reads (List.length walk.accesses);
  Obs.Hist.observe t.m_walk_lines lines;
  if Obs.Tracer.enabled () then
    List.iter
      (fun (a : Mem.Cache_model.access) ->
        Obs.Tracer.instant Obs.Tracer.ev_walk_read a.bytes)
      walk.accesses

(* Section 3.1: the handler updates reference/modified bits in place,
   without locks, as part of servicing the miss. *)
let update_ref_mod t ~vpn ~write =
  let region = Addr.Region.make ~first_vpn:vpn ~pages:1 in
  ignore
    (Intf.set_attr_range t.pt region ~f:(fun a ->
         {
           a with
           Pte.Attr.referenced = true;
           modified = a.Pte.Attr.modified || write;
         }))

let walk_and_fill t ~vpn ~block_miss =
  if t.prefetch && block_miss then begin
    let found, walk = Intf.lookup_block t.pt ~vpn ~subblock_factor:t.factor in
    record t walk;
    let boff = Int64.to_int (Int64.rem vpn (Int64.of_int t.factor)) in
    if List.mem_assoc boff found then begin
      Tlb.Intf.fill_block t.tlb found;
      `Filled
    end
    else `Missing
  end
  else begin
    let tr, walk = Intf.lookup t.pt ~vpn in
    record t walk;
    match tr with
    | Some tr ->
        Tlb.Intf.fill t.tlb tr;
        `Filled
    | None -> `Missing
  end

let service_miss t ~vpn ~write ~block_miss =
  match walk_and_fill t ~vpn ~block_miss with
  | `Filled ->
      update_ref_mod t ~vpn ~write;
      `Filled
  | `Missing -> (
      match t.aspace with
      | None -> `Fault
      | Some aspace -> (
          match Address_space.fault aspace ~vpn with
          | `Mapped _ | `Already_mapped _ -> (
              t.page_faults <- t.page_faults + 1;
              Obs.Metrics.incr t.m_page_faults;
              match walk_and_fill t ~vpn ~block_miss with
              | `Filled ->
                  update_ref_mod t ~vpn ~write;
                  `Page_fault_filled
              | `Missing -> `Fault)
          | `Segfault | `Oom -> `Fault))

let access ?(write = false) t ~vpn =
  match Tlb.Intf.access t.tlb ~vpn with
  | `Hit ->
      Obs.Metrics.incr t.m_tlb_hits;
      `Tlb_hit
  | (`Block_miss | `Subblock_miss) as miss ->
      Obs.Metrics.incr t.m_tlb_misses;
      let block_miss = miss = `Block_miss in
      Obs.Tracer.begin_ Obs.Tracer.ev_miss (Int64.to_int vpn land max_int);
      let outcome = service_miss t ~vpn ~write ~block_miss in
      Obs.Tracer.end_ Obs.Tracer.ev_miss;
      outcome

let access_addr ?write t vaddr = access ?write t ~vpn:(Addr.Vaddr.vpn vaddr)

let tlb_misses t = Tlb.Stats.misses (Tlb.Intf.stats t.tlb)

let page_faults t = t.page_faults

let mean_lines_per_miss t = Mem.Cache_model.mean_lines t.counter

let walks t = Mem.Cache_model.walks t.counter

let tlb t = t.tlb
