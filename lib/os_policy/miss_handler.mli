(** The software TLB miss handler: the code path the paper's metric
    times (Section 6.1).

    Wires a TLB model to a page table (and optionally an address space
    for demand paging): every memory access goes through the TLB; on a
    miss the handler walks the page table, records the cache lines the
    walk touched, and fills the TLB.  With a complete-subblock TLB,
    block misses can prefetch the whole block's mappings
    (Section 4.4). *)

type t

type outcome = [ `Tlb_hit | `Filled | `Page_fault_filled | `Fault ]

val create :
  tlb:Tlb.Intf.instance ->
  pt:Pt_common.Intf.instance ->
  ?aspace:Address_space.t ->
  ?prefetch:bool ->
  ?subblock_factor:int ->
  ?line_size:int ->
  unit ->
  t
(** [prefetch] enables subblock prefetching on block misses (only
    meaningful for a complete-subblock TLB).  [aspace], when given,
    demand-faults unmapped pages so a lookup that misses the page table
    retries after the OS maps the page; otherwise unmapped pages yield
    [`Fault]. *)

val access : ?write:bool -> t -> vpn:int64 -> outcome
(** [write] marks the access a store: the handler sets the PTE's
    modified bit as well as its referenced bit.  Section 3.1: "TLB miss
    handlers typically access page tables and update reference and
    modified bits without acquiring any locks" — the update happens on
    the miss path, in place. *)

val access_addr : ?write:bool -> t -> Addr.Vaddr.t -> outcome

val tlb_misses : t -> int

val page_faults : t -> int

val mean_lines_per_miss : t -> float
(** The paper's metric: average distinct cache lines touched per TLB
    miss walk. *)

val walks : t -> int

val tlb : t -> Tlb.Intf.instance
