(** A multiprogrammed mini-system: several processes with their own
    page tables and address spaces, one shared physical memory, one
    TLB, and a context-switch policy.

    This is the piece the paper's Section 7 multiprogramming
    discussion needs: context switches either flush the TLB (the
    paper's SuperSPARC) or switch an ASID (MIPS-style, via
    {!Tlb.Tagged_tlb}), and physical memory pressure is shared — one
    process's reservations can be preempted by another's faults,
    degrading superpage and partial-subblock coverage exactly as
    Section 7 warns. *)

type switch_policy = Flush | Asid

type t

type outcome = [ `Tlb_hit | `Filled | `Page_fault_filled | `Fault ]

val create :
  ?entries:int ->
  ?switch_policy:switch_policy ->
  ?policy:Address_space.policy ->
  ?line_size:int ->
  make_pt:(unit -> Pt_common.Intf.instance) ->
  total_pages:int ->
  names:string list ->
  unit ->
  t
(** One process per name, each with a fresh page table from [make_pt];
    all share one physical memory of [total_pages] frames.  Default: a
    64-entry conventional TLB, [Flush] on switch, [Base_only]
    paging. *)

val process_count : t -> int

val aspace : t -> pid:int -> Address_space.t

val page_table : t -> pid:int -> Pt_common.Intf.instance

val mmap : t -> pid:int -> Addr.Region.t -> Pte.Attr.t -> unit
(** Declare a demand-paged region in one process. *)

val switch_to : t -> pid:int -> unit
(** Context switch: flushes the TLB or changes the ASID per the
    policy.  Switching to the current process is a no-op. *)

val current : t -> int

val access : t -> vpn:int64 -> outcome
(** One memory access by the current process: TLB, then page-table
    walk (cache lines recorded), demand-faulting unmapped pages in
    declared regions. *)

val run_trace : t -> Workload.Trace.t -> unit
(** Replay an access trace: [Access (pid, vpn)] switches to [pid] if
    needed and performs the access; [Switch pid] is an explicit yield.
    Raises [Invalid_argument] on lifecycle (churn) events — those need
    the interpreter in [Dynamics.Engine], which creates and destroys
    address spaces as the trace demands. *)

val tlb_misses : t -> int

val page_faults : t -> int

val switches : t -> int

val mean_lines_per_miss : t -> float

val total_mapped_pages : t -> int

val free_frames : t -> int
