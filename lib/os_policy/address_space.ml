module Intf = Pt_common.Intf

type policy = Base_only | Partial_subblock | Superpage_promotion

type area = { region : Addr.Region.t; attr : Pte.Attr.t }

type fault_result =
  [ `Mapped of int64 | `Already_mapped of int64 | `Segfault | `Oom ]

type t = {
  pt : Intf.instance;
  alloc : Mem.Phys_alloc.t;
  uid : int;
      (* distinguishes this address space's reservations from other
         spaces sharing the allocator: two processes faulting the same
         VPN must not collide on one page-block reservation *)
  pol : policy;
  factor : int;
  factor_bits : int;
  mutable areas : area list;
  mappings : (int64, int64) Hashtbl.t; (* vpn -> ppn *)
  mutable promotions : int;
}

let next_uid = ref 0

let create ~pt ?allocator ~total_pages ?(policy = Base_only)
    ?(subblock_factor = 16) () =
  incr next_uid;
  let alloc =
    match allocator with
    | Some a ->
        if Mem.Phys_alloc.subblock_factor a <> subblock_factor then
          invalid_arg "Address_space.create: allocator factor mismatch";
        a
    | None -> Mem.Phys_alloc.create ~total_pages ~subblock_factor
  in
  {
    pt;
    alloc;
    uid = !next_uid;
    pol = policy;
    factor = subblock_factor;
    factor_bits = Addr.Bits.log2_exact subblock_factor;
    areas = [];
    mappings = Hashtbl.create 1024;
    promotions = 0;
  }

let policy t = t.pol

let page_table t = t.pt

let area_of t vpn = List.find_opt (fun a -> Addr.Region.mem a.region vpn) t.areas

let declare_region t region attr =
  if List.exists (fun a -> Addr.Region.overlap a.region region) t.areas then
    invalid_arg "Address_space.declare_region: overlapping area";
  t.areas <- { region; attr } :: t.areas

(* the allocator key: the VPN tagged with this space's identity in
   bits far above any real VPN (block offsets are unaffected) *)
let alloc_key t vpn =
  Int64.logor vpn (Int64.shift_left (Int64.of_int (t.uid land 0xFFF)) 52)

let vpbn t vpn = Int64.shift_right_logical vpn t.factor_bits

let block_base t vpn = Int64.shift_left (vpbn t vpn) t.factor_bits

(* Current population of [vpn]'s page block, from OS bookkeeping. *)
let block_state t vpn =
  let base = block_base t vpn in
  let vmask = ref 0 and placed = ref true and ppn0 = ref None in
  for i = 0 to t.factor - 1 do
    let page = Int64.add base (Int64.of_int i) in
    match Hashtbl.find_opt t.mappings page with
    | None -> ()
    | Some ppn ->
        vmask := !vmask lor (1 lsl i);
        if
          not
            (Addr.Paddr.properly_placed ~subblock_factor:t.factor ~vpn:page
               ~ppn)
        then placed := false
        else if !ppn0 = None then
          ppn0 := Some (Int64.sub ppn (Int64.of_int i))
        else if !ppn0 <> Some (Int64.sub ppn (Int64.of_int i)) then
          placed := false
  done;
  (!vmask, !placed, !ppn0)

let full_mask t = (1 lsl t.factor) - 1

let block_size t = Addr.Page_size.of_sz_code t.factor_bits

(* Update the page table after [vpn] got frame [ppn], per policy. *)
let update_page_table t ~vpn ~ppn ~attr =
  match t.pol with
  | Base_only -> Intf.insert_base t.pt ~vpn ~ppn ~attr
  | Partial_subblock ->
      let vmask, placed, ppn0 = block_state t vpn in
      let boff =
        Addr.Vaddr.boff_of_vpn ~subblock_factor:t.factor vpn
      in
      if
        placed
        && Addr.Paddr.properly_placed ~subblock_factor:t.factor ~vpn ~ppn
      then
        match ppn0 with
        | Some base ->
            (* the whole block's resident pages ride one psb PTE *)
            Intf.insert_psb t.pt ~vpbn:(vpbn t vpn) ~vmask ~ppn:base ~attr
        | None -> Intf.insert_base t.pt ~vpn ~ppn ~attr
      else begin
        ignore boff;
        Intf.insert_base t.pt ~vpn ~ppn ~attr
      end
  | Superpage_promotion ->
      Intf.insert_base t.pt ~vpn ~ppn ~attr;
      let vmask, placed, ppn0 = block_state t vpn in
      if vmask = full_mask t && placed then begin
        match ppn0 with
        | Some base ->
            (* fully populated and properly placed: promote *)
            let first = block_base t vpn in
            for i = 0 to t.factor - 1 do
              Intf.remove t.pt ~vpn:(Int64.add first (Int64.of_int i))
            done;
            Intf.insert_superpage t.pt ~vpn:first ~size:(block_size t)
              ~ppn:base ~attr;
            t.promotions <- t.promotions + 1
        | None -> ()
      end

let fault t ~vpn =
  match area_of t vpn with
  | None -> `Segfault
  | Some area -> (
      match Hashtbl.find_opt t.mappings vpn with
      | Some ppn -> `Already_mapped ppn
      | None -> (
          match Mem.Phys_alloc.alloc_page t.alloc ~vpn:(alloc_key t vpn) with
          | None -> `Oom
          | Some ppn ->
              Hashtbl.replace t.mappings vpn ppn;
              update_page_table t ~vpn ~ppn ~attr:area.attr;
              `Mapped ppn))

let map_region t region attr =
  declare_region t region attr;
  Addr.Region.iter_vpns region (fun vpn ->
      match fault t ~vpn with
      | `Mapped _ | `Already_mapped _ -> ()
      | `Segfault -> assert false
      | `Oom -> invalid_arg "Address_space.map_region: out of memory")

let unmap_region t region =
  Addr.Region.iter_vpns region (fun vpn ->
      match Hashtbl.find_opt t.mappings vpn with
      | None -> ()
      | Some ppn ->
          Intf.remove t.pt ~vpn;
          Mem.Phys_alloc.free_page t.alloc ~vpn:(alloc_key t vpn) ~ppn;
          Hashtbl.remove t.mappings vpn)

let protect_region t region ~f =
  (* keep the declared areas' attributes in step for future faults *)
  t.areas <-
    List.map
      (fun a ->
        if Addr.Region.overlap a.region region then { a with attr = f a.attr }
        else a)
      t.areas;
  Intf.set_attr_range t.pt region ~f

let translate t ~vpn = Hashtbl.find_opt t.mappings vpn

let mapped_pages t = Hashtbl.length t.mappings

let properly_placed_pages t =
  Hashtbl.fold
    (fun vpn ppn acc ->
      if Addr.Paddr.properly_placed ~subblock_factor:t.factor ~vpn ~ppn then
        acc + 1
      else acc)
    t.mappings 0

let allocator_stats t = Mem.Phys_alloc.stats t.alloc

let promotions t = t.promotions
