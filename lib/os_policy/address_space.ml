module Intf = Pt_common.Intf

type policy = Base_only | Partial_subblock | Superpage_promotion

type area = { region : Addr.Region.t; attr : Pte.Attr.t }

type fault_result =
  [ `Mapped of int64 | `Already_mapped of int64 | `Segfault | `Oom ]

type touch_result =
  [ fault_result | `Write | `Cow_copied of int64 | `Cow_adopted ]

(* A frame shared COW-style across a fork family.  [owner_key] is the
   allocator key the frame was originally handed out under; the final
   release must use it, whichever space does the releasing, because
   the allocator validates frees against the reservation it made for
   that key. *)
type share = { mutable refs : int; owner_key : int64 }

type t = {
  pt : Intf.instance;
  alloc : Mem.Phys_alloc.t;
  uid : int;
      (* distinguishes this address space's reservations from other
         spaces sharing the allocator: two processes faulting the same
         VPN must not collide on one page-block reservation *)
  pol : policy;
  factor : int;
  factor_bits : int;
  mutable areas : area list;
  mappings : (int64, int64) Hashtbl.t; (* vpn -> ppn *)
  family : (int64, share) Hashtbl.t;
      (* ppn -> share, one table per fork family (shared with children) *)
  cow : (int64, unit) Hashtbl.t;  (* this space's COW-shared vpns *)
  mutable promotions : int;
  mutable demotions : int;
}

let next_uid = ref 0

let fresh_uid = function
  | Some uid -> uid
  | None ->
      incr next_uid;
      !next_uid

let create ~pt ?allocator ~total_pages ?(policy = Base_only)
    ?(subblock_factor = 16) ?uid () =
  let alloc =
    match allocator with
    | Some a ->
        if Mem.Phys_alloc.subblock_factor a <> subblock_factor then
          invalid_arg "Address_space.create: allocator factor mismatch";
        a
    | None -> Mem.Phys_alloc.create ~total_pages ~subblock_factor
  in
  {
    pt;
    alloc;
    uid = fresh_uid uid;
    pol = policy;
    factor = subblock_factor;
    factor_bits = Addr.Bits.log2_exact subblock_factor;
    areas = [];
    mappings = Hashtbl.create 1024;
    family = Hashtbl.create 64;
    cow = Hashtbl.create 64;
    promotions = 0;
    demotions = 0;
  }

let policy t = t.pol

let page_table t = t.pt

let area_of t vpn = List.find_opt (fun a -> Addr.Region.mem a.region vpn) t.areas

let declare_region t region attr =
  if List.exists (fun a -> Addr.Region.overlap a.region region) t.areas then
    invalid_arg "Address_space.declare_region: overlapping area";
  t.areas <- { region; attr } :: t.areas

(* the allocator key: the VPN tagged with this space's identity in
   bits far above any real VPN (block offsets are unaffected) *)
let alloc_key t vpn =
  Int64.logor vpn (Int64.shift_left (Int64.of_int (t.uid land 0xFFF)) 52)

let vpbn t vpn = Int64.shift_right_logical vpn t.factor_bits

let block_base t vpn = Int64.shift_left (vpbn t vpn) t.factor_bits

(* Current population of [vpn]'s page block, from OS bookkeeping. *)
let block_state t vpn =
  let base = block_base t vpn in
  let vmask = ref 0 and placed = ref true and ppn0 = ref None in
  for i = 0 to t.factor - 1 do
    let page = Int64.add base (Int64.of_int i) in
    match Hashtbl.find_opt t.mappings page with
    | None -> ()
    | Some ppn ->
        vmask := !vmask lor (1 lsl i);
        if
          not
            (Addr.Paddr.properly_placed ~subblock_factor:t.factor ~vpn:page
               ~ppn)
        then placed := false
        else if !ppn0 = None then
          ppn0 := Some (Int64.sub ppn (Int64.of_int i))
        else if !ppn0 <> Some (Int64.sub ppn (Int64.of_int i)) then
          placed := false
  done;
  (!vmask, !placed, !ppn0)

let full_mask t = (1 lsl t.factor) - 1

let block_size t = Addr.Page_size.of_sz_code t.factor_bits

(* Update the page table after [vpn] got frame [ppn], per policy. *)
let update_page_table t ~vpn ~ppn ~attr =
  match t.pol with
  | Base_only -> Intf.insert_base t.pt ~vpn ~ppn ~attr
  | Partial_subblock ->
      let vmask, placed, ppn0 = block_state t vpn in
      let boff =
        Addr.Vaddr.boff_of_vpn ~subblock_factor:t.factor vpn
      in
      if
        placed
        && Addr.Paddr.properly_placed ~subblock_factor:t.factor ~vpn ~ppn
      then
        match ppn0 with
        | Some base ->
            (* the whole block's resident pages ride one psb PTE; drop
               any per-page PTEs first (a block can reach placed state
               after earlier stragglers were base-mapped and unmapped)
               so no page is ever represented twice *)
            let first = block_base t vpn in
            for i = 0 to t.factor - 1 do
              if vmask land (1 lsl i) <> 0 then
                Intf.remove t.pt ~vpn:(Int64.add first (Int64.of_int i))
            done;
            Intf.insert_psb t.pt ~vpbn:(vpbn t vpn) ~vmask ~ppn:base ~attr
        | None -> Intf.insert_base t.pt ~vpn ~ppn ~attr
      else begin
        ignore boff;
        Intf.insert_base t.pt ~vpn ~ppn ~attr
      end
  | Superpage_promotion ->
      Intf.insert_base t.pt ~vpn ~ppn ~attr;
      let vmask, placed, ppn0 = block_state t vpn in
      if vmask = full_mask t && placed then begin
        match ppn0 with
        | Some base ->
            (* fully populated and properly placed: promote *)
            let first = block_base t vpn in
            for i = 0 to t.factor - 1 do
              Intf.remove t.pt ~vpn:(Int64.add first (Int64.of_int i))
            done;
            Intf.insert_superpage t.pt ~vpn:first ~size:(block_size t)
              ~ppn:base ~attr;
            t.promotions <- t.promotions + 1
        | None -> ()
      end

let fault t ~vpn =
  match area_of t vpn with
  | None -> `Segfault
  | Some area -> (
      match Hashtbl.find_opt t.mappings vpn with
      | Some ppn -> `Already_mapped ppn
      | None -> (
          match Mem.Phys_alloc.alloc_page t.alloc ~vpn:(alloc_key t vpn) with
          | None -> `Oom
          | Some ppn ->
              Hashtbl.replace t.mappings vpn ppn;
              update_page_table t ~vpn ~ppn ~attr:area.attr;
              `Mapped ppn))

let map_region t region attr =
  declare_region t region attr;
  Addr.Region.iter_vpns region (fun vpn ->
      match fault t ~vpn with
      | `Mapped _ | `Already_mapped _ -> ()
      | `Segfault -> assert false
      | `Oom -> invalid_arg "Address_space.map_region: out of memory")

let attr_at t vpn =
  match area_of t vpn with Some a -> a.attr | None -> Pte.Attr.default

(* Remove [vpn]'s PTE.  Under a promotion policy the covering PTE may
   be a block superpage, and the organizations' contract is that
   removing any covered page drops the whole superpage — so the OS
   must reinsert the surviving pages of the block as base PTEs.  That
   is a demotion, and it is exactly the modify-cost the paper charges
   against superpages under churn. *)
let remove_page_pte t ~vpn =
  match t.pol with
  | Base_only | Partial_subblock -> Intf.remove t.pt ~vpn
  | Superpage_promotion -> (
      match fst (Intf.lookup t.pt ~vpn) with
      | Some { Pt_common.Types.kind = Pt_common.Types.Superpage size; _ } ->
          Intf.remove t.pt ~vpn;
          let sz = Addr.Page_size.sz_code size in
          let base = Addr.Bits.align_down vpn sz in
          for i = 0 to Addr.Page_size.base_pages size - 1 do
            let page = Int64.add base (Int64.of_int i) in
            if not (Int64.equal page vpn) then
              match Hashtbl.find_opt t.mappings page with
              | Some ppn ->
                  Intf.insert_base t.pt ~vpn:page ~ppn ~attr:(attr_at t page)
              | None -> ()
          done;
          t.demotions <- t.demotions + 1
      | Some _ | None -> Intf.remove t.pt ~vpn)

(* Give [ppn] back: COW-shared frames only really free on the last
   reference, and then under the key of whichever space first faulted
   them in. *)
let release_frame t ~vpn ~ppn =
  match Hashtbl.find_opt t.family ppn with
  | Some s ->
      s.refs <- s.refs - 1;
      if s.refs = 0 then begin
        Hashtbl.remove t.family ppn;
        Mem.Phys_alloc.free_page t.alloc ~vpn:s.owner_key ~ppn
      end
  | None -> Mem.Phys_alloc.free_page t.alloc ~vpn:(alloc_key t vpn) ~ppn

let remove_page t ~vpn =
  match Hashtbl.find_opt t.mappings vpn with
  | None -> ()
  | Some ppn ->
      remove_page_pte t ~vpn;
      release_frame t ~vpn ~ppn;
      Hashtbl.remove t.mappings vpn;
      Hashtbl.remove t.cow vpn

let unmap_region t region =
  Addr.Region.iter_vpns region (fun vpn -> remove_page t ~vpn)

let munmap_region t region =
  unmap_region t region;
  (* areas wholly inside the unmapped range are undeclared, so the
     range can be mapped again later; partial overlaps stay declared *)
  let covers (a : area) =
    Addr.Region.is_empty a.region
    || Addr.Region.mem region a.region.Addr.Region.first_vpn
       && Addr.Region.mem region (Addr.Region.last_vpn a.region)
  in
  t.areas <- List.filter (fun a -> not (covers a)) t.areas

let protect_region t region ~f =
  (* keep the declared areas' attributes in step for future faults *)
  t.areas <-
    List.map
      (fun a ->
        if Addr.Region.overlap a.region region then { a with attr = f a.attr }
        else a)
      t.areas;
  Intf.set_attr_range t.pt region ~f

let sorted_mappings t =
  let kvs = Hashtbl.fold (fun v p acc -> (v, p) :: acc) t.mappings [] in
  List.sort (fun (a, _) (b, _) -> Int64.compare a b) kvs

let write_protect = Pte.Attr.(fun a -> { a with writable = false })

let fork t ~pt ?uid () =
  let child =
    {
      pt;
      alloc = t.alloc;
      uid = fresh_uid uid;
      pol = t.pol;
      factor = t.factor;
      factor_bits = t.factor_bits;
      areas = t.areas;
      mappings = Hashtbl.create (max 16 (Hashtbl.length t.mappings));
      family = t.family;  (* one share table per fork family *)
      cow = Hashtbl.create 64;
      promotions = 0;
      demotions = 0;
    }
  in
  (* sorted so the child's page table build is independent of the
     parent's hash-table iteration order *)
  let kvs = sorted_mappings t in
  List.iter
    (fun (vpn, ppn) ->
      Hashtbl.replace child.mappings vpn ppn;
      (match Hashtbl.find_opt t.family ppn with
      | Some s -> s.refs <- s.refs + 1
      | None ->
          (* first share of this frame: remember the key it was
             allocated under — only that key can free it *)
          Hashtbl.add t.family ppn { refs = 2; owner_key = alloc_key t vpn });
      Hashtbl.replace t.cow vpn ();
      Hashtbl.replace child.cow vpn ();
      (* the child's table mirrors the parent's mappings, the page-size
         policy reapplied as the pages land *)
      update_page_table child ~vpn ~ppn ~attr:(attr_at child vpn))
    kvs;
  (* write-protect both copies so stores fault and break the share *)
  List.iter
    (fun a ->
      ignore (Intf.set_attr_range t.pt a.region ~f:write_protect);
      ignore (Intf.set_attr_range pt a.region ~f:write_protect))
    t.areas;
  child

let touch t ~vpn =
  match Hashtbl.find_opt t.mappings vpn with
  | None -> (fault t ~vpn :> touch_result)
  | Some ppn ->
      if not (Hashtbl.mem t.cow vpn) then `Write
      else begin
        let s =
          match Hashtbl.find_opt t.family ppn with
          | Some s -> s
          | None -> assert false (* cow flag implies a family share *)
        in
        if s.refs = 1 then begin
          (* last sharer: adopt the frame in place, write-enable *)
          Hashtbl.remove t.cow vpn;
          ignore
            (Intf.set_attr_range t.pt
               (Addr.Region.make ~first_vpn:vpn ~pages:1)
               ~f:(fun _ -> attr_at t vpn));
          `Cow_adopted
        end
        else
          match Mem.Phys_alloc.alloc_page t.alloc ~vpn:(alloc_key t vpn) with
          | None -> `Oom
          | Some new_ppn ->
              s.refs <- s.refs - 1;
              Hashtbl.remove t.cow vpn;
              Hashtbl.replace t.mappings vpn new_ppn;
              remove_page_pte t ~vpn;
              update_page_table t ~vpn ~ppn:new_ppn ~attr:(attr_at t vpn);
              `Cow_copied new_ppn
      end

let release_all t =
  List.iter
    (fun (vpn, ppn) -> release_frame t ~vpn ~ppn)
    (sorted_mappings t);
  Hashtbl.reset t.mappings;
  Hashtbl.reset t.cow;
  t.areas <- [];
  Intf.clear t.pt

let translate t ~vpn = Hashtbl.find_opt t.mappings vpn

let shared_frames t =
  Hashtbl.fold (fun _ s acc -> if s.refs > 1 then acc + 1 else acc) t.family 0

let cow_pages t = Hashtbl.length t.cow

let mapped_pages t = Hashtbl.length t.mappings

let properly_placed_pages t =
  Hashtbl.fold
    (fun vpn ppn acc ->
      if Addr.Paddr.properly_placed ~subblock_factor:t.factor ~vpn ~ppn then
        acc + 1
      else acc)
    t.mappings 0

let allocator_stats t = Mem.Phys_alloc.stats t.alloc

let promotions t = t.promotions

let demotions t = t.demotions
