module Intf = Pt_common.Intf

type switch_policy = Flush | Asid

type outcome = [ `Tlb_hit | `Filled | `Page_fault_filled | `Fault ]

type proc = { name : string; aspace : Address_space.t; pt : Intf.instance }

type tlb_front = F_plain of Tlb.Intf.instance | F_tagged of Tlb.Tagged_tlb.t

type t = {
  procs : proc array;
  tlb : tlb_front;
  switch_policy : switch_policy;
  counter : Mem.Cache_model.counter;
  allocator : Mem.Phys_alloc.t;
  mutable cur : int;
  mutable page_faults : int;
  mutable switches : int;
}

let create ?(entries = 64) ?(switch_policy = Flush)
    ?(policy = Address_space.Base_only) ?line_size ~make_pt ~total_pages
    ~names () =
  if names = [] then invalid_arg "System.create: no processes";
  let allocator = Mem.Phys_alloc.create ~total_pages ~subblock_factor:16 in
  let procs =
    Array.of_list
      (List.map
         (fun name ->
           let pt = make_pt () in
           {
             name;
             pt;
             aspace = Address_space.create ~pt ~allocator ~total_pages ~policy ();
           })
         names)
  in
  let tlb =
    match switch_policy with
    | Flush -> F_plain (Tlb.Intf.fa ~entries ())
    | Asid -> F_tagged (Tlb.Tagged_tlb.create (Tlb.Intf.fa ~entries ()))
  in
  {
    procs;
    tlb;
    switch_policy;
    counter = Mem.Cache_model.create_counter ?line_size ();
    allocator;
    cur = 0;
    page_faults = 0;
    switches = 0;
  }

let process_count t = Array.length t.procs

let check_pid t pid =
  if pid < 0 || pid >= Array.length t.procs then
    invalid_arg "System: pid out of range"

let aspace t ~pid =
  check_pid t pid;
  t.procs.(pid).aspace

let page_table t ~pid =
  check_pid t pid;
  t.procs.(pid).pt

let mmap t ~pid region attr =
  check_pid t pid;
  Address_space.declare_region t.procs.(pid).aspace region attr

let current t = t.cur

let switch_to t ~pid =
  check_pid t pid;
  if pid <> t.cur then begin
    t.cur <- pid;
    t.switches <- t.switches + 1;
    match t.tlb with
    | F_plain tlb -> Tlb.Intf.flush tlb
    | F_tagged tlb -> Tlb.Tagged_tlb.set_context tlb ~asid:pid
  end

let tlb_access t ~vpn =
  match t.tlb with
  | F_plain tlb -> Tlb.Intf.access tlb ~vpn
  | F_tagged tlb -> Tlb.Tagged_tlb.access tlb ~vpn

let tlb_fill t tr =
  match t.tlb with
  | F_plain tlb -> Tlb.Intf.fill tlb tr
  | F_tagged tlb -> Tlb.Tagged_tlb.fill tlb tr

let walk t ~vpn =
  let p = t.procs.(t.cur) in
  let tr, w = Intf.lookup p.pt ~vpn in
  ignore (Mem.Cache_model.record_walk t.counter w.Pt_common.Types.accesses);
  tr

let access t ~vpn =
  match tlb_access t ~vpn with
  | `Hit -> `Tlb_hit
  | `Block_miss | `Subblock_miss -> (
      match walk t ~vpn with
      | Some tr ->
          tlb_fill t tr;
          `Filled
      | None -> (
          let p = t.procs.(t.cur) in
          match Address_space.fault p.aspace ~vpn with
          | `Mapped _ | `Already_mapped _ -> (
              t.page_faults <- t.page_faults + 1;
              match walk t ~vpn with
              | Some tr ->
                  tlb_fill t tr;
                  `Page_fault_filled
              | None -> `Fault)
          | `Segfault | `Oom -> `Fault))

let run_trace t trace =
  Array.iter
    (function
      | Workload.Trace.Switch pid -> switch_to t ~pid
      | Workload.Trace.Access (pid, vpn) ->
          switch_to t ~pid;
          ignore (access t ~vpn)
      | Workload.Trace.Mmap _ | Workload.Trace.Munmap _
      | Workload.Trace.Protect _ | Workload.Trace.Fork _
      | Workload.Trace.Exit _ | Workload.Trace.Touch _ ->
          (* lifecycle ops need an interpreter that creates and destroys
             address spaces — that is [Dynamics.Engine]'s job; this
             replay loop runs over a fixed process set *)
          invalid_arg "System.run_trace: churn event in an access trace")
    trace

let tlb_stats t =
  match t.tlb with
  | F_plain tlb -> Tlb.Intf.stats tlb
  | F_tagged tlb -> Tlb.Tagged_tlb.stats tlb

let tlb_misses t = Tlb.Stats.misses (tlb_stats t)

let page_faults t = t.page_faults

let switches t = t.switches

let mean_lines_per_miss t = Mem.Cache_model.mean_lines t.counter

let total_mapped_pages t =
  Array.fold_left
    (fun acc p -> acc + Address_space.mapped_pages p.aspace)
    0 t.procs

let free_frames t = Mem.Phys_alloc.free_pages t.allocator
