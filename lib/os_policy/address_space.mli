(** A process address space: VM areas, a physical allocator with page
    reservation, and a page table kept in sync under a page-size
    policy.

    This is the operating-system layer the paper says superpage and
    partial-subblock TLBs cannot work without (Section 4.1): the
    dynamic page-size assignment policy chooses between 4 KB pages and
    64 KB superpages, and page reservation allocates aligned physical
    blocks so promotions are possible. *)

(** How faults populate the page table (Section 6.1's policies). *)
type policy =
  | Base_only  (** every page gets a base PTE *)
  | Partial_subblock
      (** properly-placed pages accumulate into a partial-subblock PTE
          for their block; stragglers get base PTEs *)
  | Superpage_promotion
      (** base PTEs, promoted to a 64 KB superpage PTE when a block
          becomes fully populated and properly placed *)

type t

type fault_result = [ `Mapped of int64 | `Already_mapped of int64 | `Segfault | `Oom ]

type touch_result =
  [ fault_result | `Write | `Cow_copied of int64 | `Cow_adopted ]

val create :
  pt:Pt_common.Intf.instance ->
  ?allocator:Mem.Phys_alloc.t ->
  total_pages:int ->
  ?policy:policy ->
  ?subblock_factor:int ->
  ?uid:int ->
  unit ->
  t
(** [total_pages] sizes simulated physical memory; pass [allocator] to
    share one physical memory between several address spaces (the
    multi-process case — see {!System}).  When [allocator] is given its
    subblock factor must equal [subblock_factor].  [uid] overrides the
    global identity counter — deterministic drivers (the churn engine)
    pass explicit uids so results cannot depend on how many spaces
    other domains have created; uids must be unique among spaces
    sharing one allocator. *)

val policy : t -> policy

val page_table : t -> Pt_common.Intf.instance

val declare_region : t -> Addr.Region.t -> Pte.Attr.t -> unit
(** Make a virtual range legal to touch (like [mmap] without
    populating).  Raises [Invalid_argument] on overlap with an existing
    area. *)

val map_region : t -> Addr.Region.t -> Pte.Attr.t -> unit
(** [declare_region] followed by faulting in every page. *)

val fault : t -> vpn:int64 -> fault_result
(** Demand-fault one page: allocate a frame (preferring the block
    reservation), update the page table per the policy. *)

val unmap_region : t -> Addr.Region.t -> unit
(** Remove mappings and free frames; the area stays declared.  Under
    [Superpage_promotion], removing one page of a promoted block
    demotes the block: the covering superpage PTE is dropped and the
    surviving pages are reinserted as base PTEs (counted in
    {!demotions}). *)

val munmap_region : t -> Addr.Region.t -> unit
(** {!unmap_region}, and areas wholly inside the range are undeclared
    so the range can be declared again later (the churn engine's
    munmap).  Partially-overlapped areas stay declared. *)

val fork : t -> pt:Pt_common.Intf.instance -> ?uid:int -> unit -> t
(** A child sharing this space's areas, frames and physical allocator,
    with its own page table built from [pt].  Every currently-mapped
    frame becomes copy-on-write: both copies are write-protected and a
    store ({!touch}) breaks the share.  Frames are reference-counted
    across the fork family and freed under the original owner's
    allocator key on last release. *)

val touch : t -> vpn:int64 -> touch_result
(** A store to [vpn].  Unmapped: demand-faults like {!fault}.  Mapped
    and private: [`Write].  Mapped and COW-shared: the share is broken
    — [`Cow_copied ppn] when other references remain (a fresh frame is
    allocated and the page table updated), [`Cow_adopted] when this was
    the last reference (the frame is kept and write-enabled in
    place). *)

val release_all : t -> unit
(** Process exit: free every frame (COW frames only on last family
    reference), clear the page table and undeclare every area.  The
    page table ends at its empty-table footprint. *)

val protect_region : t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int
(** Change attributes over a range; returns the number of page-table
    searches (the Section 3.1 cost). *)

val translate : t -> vpn:int64 -> int64 option
(** The OS's own vpn -> ppn bookkeeping (ground truth for tests). *)

val mapped_pages : t -> int

val properly_placed_pages : t -> int

val allocator_stats : t -> Mem.Phys_alloc.stats

val promotions : t -> int
(** Blocks promoted to superpages so far ([Superpage_promotion]). *)

val demotions : t -> int
(** Promoted blocks broken back into base PTEs by partial unmaps or
    COW breaks. *)

val shared_frames : t -> int
(** Frames in this space's fork family currently shared by more than
    one space. *)

val cow_pages : t -> int
(** This space's pages still marked copy-on-write. *)
