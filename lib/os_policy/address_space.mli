(** A process address space: VM areas, a physical allocator with page
    reservation, and a page table kept in sync under a page-size
    policy.

    This is the operating-system layer the paper says superpage and
    partial-subblock TLBs cannot work without (Section 4.1): the
    dynamic page-size assignment policy chooses between 4 KB pages and
    64 KB superpages, and page reservation allocates aligned physical
    blocks so promotions are possible. *)

(** How faults populate the page table (Section 6.1's policies). *)
type policy =
  | Base_only  (** every page gets a base PTE *)
  | Partial_subblock
      (** properly-placed pages accumulate into a partial-subblock PTE
          for their block; stragglers get base PTEs *)
  | Superpage_promotion
      (** base PTEs, promoted to a 64 KB superpage PTE when a block
          becomes fully populated and properly placed *)

type t

type fault_result = [ `Mapped of int64 | `Already_mapped of int64 | `Segfault | `Oom ]

val create :
  pt:Pt_common.Intf.instance ->
  ?allocator:Mem.Phys_alloc.t ->
  total_pages:int ->
  ?policy:policy ->
  ?subblock_factor:int ->
  unit ->
  t
(** [total_pages] sizes simulated physical memory; pass [allocator] to
    share one physical memory between several address spaces (the
    multi-process case — see {!System}).  When [allocator] is given its
    subblock factor must equal [subblock_factor]. *)

val policy : t -> policy

val page_table : t -> Pt_common.Intf.instance

val declare_region : t -> Addr.Region.t -> Pte.Attr.t -> unit
(** Make a virtual range legal to touch (like [mmap] without
    populating).  Raises [Invalid_argument] on overlap with an existing
    area. *)

val map_region : t -> Addr.Region.t -> Pte.Attr.t -> unit
(** [declare_region] followed by faulting in every page. *)

val fault : t -> vpn:int64 -> fault_result
(** Demand-fault one page: allocate a frame (preferring the block
    reservation), update the page table per the policy. *)

val unmap_region : t -> Addr.Region.t -> unit
(** Remove mappings and free frames; the area stays declared. *)

val protect_region : t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int
(** Change attributes over a range; returns the number of page-table
    searches (the Section 3.1 cost). *)

val translate : t -> vpn:int64 -> int64 option
(** The OS's own vpn -> ppn bookkeeping (ground truth for tests). *)

val mapped_pages : t -> int

val properly_placed_pages : t -> int

val allocator_stats : t -> Mem.Phys_alloc.stats

val promotions : t -> int
(** Blocks promoted to superpages so far ([Superpage_promotion]). *)
