(* Interpreter for churn streams: applies lifecycle events through
   [Os_policy.Address_space] onto one page-table organization and
   records the time-series the paper's Figure 9 and Section 3.1 modify
   costs are about — resident page-table bytes, live node count, and
   cache lines touched per insert / delete.

   The run is strictly sequential and allocator uids are derived from
   pids, so a (trace, config) pair produces one exact result no matter
   what other domains are doing — [Runner.churn] relies on this to be
   bit-identical for any [--domains]. *)

module Intf = Pt_common.Intf
module A = Os_policy.Address_space
module Trace = Workload.Trace

type config = {
  make_pt : unit -> Intf.instance * (unit -> int) option;
      (* fresh table + optional live-node probe; called once per
         process (fork children get their own table) *)
  policy : A.policy;
  subblock_factor : int;
  total_pages : int;  (* simulated physical memory, shared by all procs *)
  sample_every : int;  (* ops between time-series samples *)
  line_size : int;
}

type sample = { op : int; live_pages : int; pt_bytes : int; pt_nodes : int }

type result = {
  samples : sample array;
  ops : int;
  inserts : int;
  deletes : int;
  touches : int;
  protects : int;
  protect_searches : int;
  forks : int;
  exits : int;
  cow_breaks : int;
  cow_adoptions : int;
  promotions : int;
  demotions : int;
  ooms : int;
  insert_lines : float;  (* mean cache lines per insert's walk *)
  delete_lines : float;  (* mean cache lines per delete's walk *)
  peak_pt_bytes : int;  (* highest sampled total footprint *)
  final_pt_bytes : int;
  final_pt_nodes : int;
  final_live_pages : int;
}

type proc = {
  space : A.t;
  pt : Intf.instance;
  nodes : (unit -> int) option;
}

let sum_over procs f =
  Hashtbl.fold (fun _ p acc -> acc + f p) procs 0

let node_probe p = match p.nodes with Some f -> f () | None -> 0

(* uids must be unique per allocator and independent of domain
   scheduling; pids already are both *)
let uid_of_pid pid = pid + 1

let run (cfg : config) (trace : Trace.t) : result =
  let procs : (int, proc) Hashtbl.t = Hashtbl.create 16 in
  let alloc =
    Mem.Phys_alloc.create ~total_pages:cfg.total_pages
      ~subblock_factor:cfg.subblock_factor
  in
  let spawn pid =
    let pt, nodes = cfg.make_pt () in
    let space =
      A.create ~pt ~allocator:alloc ~total_pages:cfg.total_pages
        ~policy:cfg.policy ~subblock_factor:cfg.subblock_factor
        ~uid:(uid_of_pid pid) ()
    in
    let p = { space; pt; nodes } in
    Hashtbl.replace procs pid p;
    p
  in
  ignore (spawn 0);
  let acc = Mem.Walk_acc.create () in
  let ins_ctr = Mem.Cache_model.create_counter ~line_size:cfg.line_size () in
  let del_ctr = Mem.Cache_model.create_counter ~line_size:cfg.line_size () in
  (* telemetry handles, hoisted: the interpreter runs inside one
     domain, so its shard is fixed for the whole trace *)
  let shard = Obs.Ambient.get () in
  let m_ops = Obs.Metrics.counter shard "churn.ops"
  and m_inserts = Obs.Metrics.counter shard "churn.inserts"
  and m_deletes = Obs.Metrics.counter shard "churn.deletes"
  and h_insert_lines = Obs.Metrics.hist shard "churn.insert_lines"
  and h_delete_lines = Obs.Metrics.hist shard "churn.delete_lines" in
  let inserts = ref 0
  and deletes = ref 0
  and touches = ref 0
  and protects = ref 0
  and protect_searches = ref 0
  and forks = ref 0
  and exits = ref 0
  and cow_breaks = ref 0
  and cow_adoptions = ref 0
  and promotions = ref 0
  and demotions = ref 0
  and ooms = ref 0 in
  (* the walk a miss on [vpn] would do right now: the paper's
     cache-line metric applied to the modify op's search phase *)
  let charge p ctr hist vpn =
    Mem.Walk_acc.reset acc;
    ignore (Intf.lookup_into p.pt acc ~vpn);
    Obs.Hist.observe hist (Mem.Cache_model.record_acc ctr acc)
  in
  let fault_in p vpn =
    match A.fault p.space ~vpn with
    | `Mapped _ ->
        incr inserts;
        Obs.Metrics.incr m_inserts;
        charge p ins_ctr h_insert_lines vpn
    | `Already_mapped _ -> ()
    | `Oom -> incr ooms
    | `Segfault -> ()
  in
  let do_mmap pid first pages =
    match Hashtbl.find_opt procs pid with
    | None -> ()
    | Some p ->
        let region = Addr.Region.make ~first_vpn:first ~pages in
        A.declare_region p.space region Pte.Attr.default;
        Addr.Region.iter_vpns region (fun vpn -> fault_in p vpn)
  in
  let do_munmap pid first pages =
    match Hashtbl.find_opt procs pid with
    | None -> ()
    | Some p ->
        let region = Addr.Region.make ~first_vpn:first ~pages in
        (* charge each page's delete with the walk that finds it, page
           by page, so demotions mid-region are priced correctly *)
        Addr.Region.iter_vpns region (fun vpn ->
            match A.translate p.space ~vpn with
            | Some _ ->
                charge p del_ctr h_delete_lines vpn;
                incr deletes;
                Obs.Metrics.incr m_deletes;
                A.unmap_region p.space
                  (Addr.Region.make ~first_vpn:vpn ~pages:1)
            | None -> ());
        A.munmap_region p.space region
  in
  let do_protect pid first pages writable =
    match Hashtbl.find_opt procs pid with
    | None -> ()
    | Some p ->
        let region = Addr.Region.make ~first_vpn:first ~pages in
        incr protects;
        protect_searches :=
          !protect_searches
          + A.protect_region p.space region
              ~f:Pte.Attr.(fun a -> { a with writable })
  in
  let do_fork parent child =
    match Hashtbl.find_opt procs parent with
    | None -> ()
    | Some p ->
        let pt, nodes = cfg.make_pt () in
        let space = A.fork p.space ~pt ~uid:(uid_of_pid child) () in
        Hashtbl.replace procs child { space; pt; nodes };
        incr forks
  in
  let harvest p =
    promotions := !promotions + A.promotions p.space;
    demotions := !demotions + A.demotions p.space
  in
  let do_exit pid =
    match Hashtbl.find_opt procs pid with
    | None -> ()
    | Some p ->
        harvest p;
        A.release_all p.space;
        Hashtbl.remove procs pid;
        incr exits
  in
  let do_touch pid vpn =
    match Hashtbl.find_opt procs pid with
    | None -> ()
    | Some p -> (
        incr touches;
        match A.touch p.space ~vpn with
        | `Mapped _ ->
            incr inserts;
            Obs.Metrics.incr m_inserts;
            charge p ins_ctr h_insert_lines vpn
        | `Cow_copied _ ->
            incr cow_breaks;
            charge p ins_ctr h_insert_lines vpn
        | `Cow_adopted -> incr cow_adoptions
        | `Write | `Already_mapped _ | `Segfault -> ()
        | `Oom -> incr ooms)
  in
  let samples = ref [] in
  let take_sample op =
    samples :=
      {
        op;
        live_pages = sum_over procs (fun p -> A.mapped_pages p.space);
        pt_bytes = sum_over procs (fun p -> Intf.size_bytes p.pt);
        pt_nodes = sum_over procs node_probe;
      }
      :: !samples
  in
  take_sample 0;
  Array.iteri
    (fun i ev ->
      (match ev with
      | Trace.Mmap (pid, first, pages) ->
          Obs.Metrics.incr m_ops;
          Obs.Tracer.instant Obs.Tracer.ev_churn_mmap pages;
          do_mmap pid first pages
      | Trace.Munmap (pid, first, pages) ->
          Obs.Metrics.incr m_ops;
          Obs.Tracer.instant Obs.Tracer.ev_churn_munmap pages;
          do_munmap pid first pages
      | Trace.Protect (pid, first, pages, writable) ->
          Obs.Metrics.incr m_ops;
          Obs.Tracer.instant Obs.Tracer.ev_churn_protect pages;
          do_protect pid first pages writable
      | Trace.Fork (parent, child) ->
          Obs.Metrics.incr m_ops;
          Obs.Tracer.instant Obs.Tracer.ev_churn_fork child;
          do_fork parent child
      | Trace.Exit pid ->
          Obs.Metrics.incr m_ops;
          Obs.Tracer.instant Obs.Tracer.ev_churn_exit pid;
          do_exit pid
      | Trace.Touch (pid, vpn) ->
          Obs.Metrics.incr m_ops;
          Obs.Tracer.instant Obs.Tracer.ev_churn_touch
            (Int64.to_int vpn land max_int);
          do_touch pid vpn
      (* plain access streams belong to System.run_trace; a mixed
         trace's accesses and switches are no-ops here *)
      | Trace.Access _ | Trace.Switch _ -> ());
      if (i + 1) mod cfg.sample_every = 0 then take_sample (i + 1))
    trace;
  if Array.length trace mod cfg.sample_every <> 0 then
    take_sample (Array.length trace);
  Hashtbl.iter (fun _ p -> harvest p) procs;
  let samples = Array.of_list (List.rev !samples) in
  {
    samples;
    ops = Array.length trace;
    inserts = !inserts;
    deletes = !deletes;
    touches = !touches;
    protects = !protects;
    protect_searches = !protect_searches;
    forks = !forks;
    exits = !exits;
    cow_breaks = !cow_breaks;
    cow_adoptions = !cow_adoptions;
    promotions = !promotions;
    demotions = !demotions;
    ooms = !ooms;
    insert_lines = Mem.Cache_model.mean_lines ins_ctr;
    delete_lines = Mem.Cache_model.mean_lines del_ctr;
    peak_pt_bytes =
      Array.fold_left (fun m s -> max m s.pt_bytes) 0 samples;
    final_pt_bytes = sum_over procs (fun p -> Intf.size_bytes p.pt);
    final_pt_nodes = sum_over procs node_probe;
    final_live_pages = sum_over procs (fun p -> A.mapped_pages p.space);
  }
