(** Resumable churn interpretation for one fleet tenant.

    Interprets a {!Churn}-style lifecycle trace against an abstract
    {!ops} record of per-tenant callbacks, so the fleet layer can plug
    in sharded services, ASID-tagged TLBs and eviction without this
    library depending on it.  Region events ([Mmap]/[Munmap]/[Protect])
    become one callback per region — the batched range-op submission
    shape — and [Fork]/[Exit] coalesce the pid's live pages into
    maximal runs submitted the same way.  [Touch] probes [ops.touch]
    and demand-faults the page back on a miss, so an evicted tenant
    transparently repopulates.

    Pids fold into bits 32..43 of the tenant-local key; the fleet owns
    the bits above. *)

type ops = {
  map : Addr.Region.t -> int;
      (** map every page of the region; returns lock sections taken *)
  unmap : Addr.Region.t -> int;
  protect : Addr.Region.t -> writable:bool -> int;
  touch : int64 -> bool;
      (** one store to a tenant-local key; [false] = not currently
          mapped (the interpreter then demand-faults it in) *)
}

type tally = {
  mutable events : int;
  mutable mmaps : int;
  mutable munmaps : int;
  mutable protects : int;
  mutable touches : int;
  mutable touch_hits : int;
  mutable touch_faults : int;
  mutable forks : int;
  mutable exits : int;
  mutable pages_mapped : int;
  mutable pages_unmapped : int;
  mutable range_pages : int;  (** pages covered by range submissions *)
  mutable range_sections : int;
      (** lock sections those submissions took — [range_sections /
          range_pages] is the amortisation the batched path buys *)
}

val tally_zero : unit -> tally
(** A fresh all-zero tally (an accumulator for summing tallies). *)

type t
(** A cursor over one trace: interpretation state (per-pid live sets)
    plus a running {!tally}.  Step it from exactly one domain at a
    time. *)

val create : ops -> Workload.Trace.t -> t

val step : t -> max_events:int -> int
(** Interpret up to [max_events] further events; returns the number
    actually consumed (0 iff {!finished}). *)

val finished : t -> bool

val consumed : t -> int
(** Events interpreted so far. *)

val length : t -> int
(** Total events in the trace. *)

val tally : t -> tally

val run : ops -> Workload.Trace.t -> tally
(** One-shot interpretation of the whole trace. *)

val local_key : pid:int -> vpn:int64 -> int64
(** The tenant-local key: [vpn] with [pid] folded into bits 32..43. *)
