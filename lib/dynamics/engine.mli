(** Interpreter for churn streams.

    Applies a lifecycle trace (see {!Churn}) through
    {!Os_policy.Address_space} onto one page-table organization,
    recording time-series footprint samples and per-modify-op cache-line
    costs (the paper's Section 3.1 insert / delete costs and Figure 9's
    size-over-time, under dynamic churn instead of a static snapshot).

    Runs are strictly sequential and derive allocator uids from pids,
    so a (trace, config) pair always produces the identical result —
    regardless of how many domains {!Sim.Runner.churn} spreads seeds
    over. *)

type config = {
  make_pt : unit -> Pt_common.Intf.instance * (unit -> int) option;
      (** fresh page table plus an optional live-node-count probe;
          called once per process — fork children get their own table *)
  policy : Os_policy.Address_space.policy;
  subblock_factor : int;
  total_pages : int;
      (** simulated physical frames shared by every process; must
          comfortably exceed the generator's [max_live_pages] *)
  sample_every : int;  (** ops between time-series samples *)
  line_size : int;  (** cache-line size for modify-cost accounting *)
}

type sample = {
  op : int;  (** index into the trace at which the sample was taken *)
  live_pages : int;  (** mapped pages summed over live processes *)
  pt_bytes : int;  (** page-table bytes summed over live processes *)
  pt_nodes : int;  (** live nodes (0 for organizations without a probe) *)
}

type result = {
  samples : sample array;  (** chronological, first at op 0 *)
  ops : int;
  inserts : int;  (** demand faults that installed a PTE *)
  deletes : int;  (** pages removed by munmap *)
  touches : int;
  protects : int;
  protect_searches : int;  (** page-table searches done by mprotects *)
  forks : int;
  exits : int;
  cow_breaks : int;  (** stores that copied a shared frame *)
  cow_adoptions : int;  (** stores that adopted the last reference *)
  promotions : int;
  demotions : int;
  ooms : int;
  insert_lines : float;  (** mean cache lines walked per insert *)
  delete_lines : float;  (** mean cache lines walked per delete *)
  peak_pt_bytes : int;  (** largest sampled total footprint *)
  final_pt_bytes : int;  (** footprint left after the whole trace *)
  final_pt_nodes : int;
  final_live_pages : int;
}

val run : config -> Workload.Trace.t -> result
(** Interpret [trace] from a single initial process (pid 0).  [Access]
    and [Switch] events are ignored — plain access streams belong to
    {!Os_policy.System.run_trace}. *)
