(* Churn replay against one tenant of a fleet.

   {!Service_replay} folds pids into one shared table's keys and
   replays whole traces per domain.  The fleet layer needs something
   different: each *tenant* runs its own churn trace against its own
   address space, many tenants interleave on one worker stream in
   context-switch quanta, and the layer underneath (shard placement,
   ASID tagging, TLBs, eviction) belongs to lib/fleet — which this
   library must not depend on.  So the interpreter here is abstract
   over an {!ops} record of per-tenant callbacks and exposes a
   resumable cursor: [step] consumes a bounded number of events, so a
   stream can round-robin its tenants and a round barrier can cut the
   trace into deterministic slices.

   Region events become ONE callback per region (the batched range-op
   submission shape); [Fork] and [Exit] coalesce the pid's live pages
   into maximal runs and submit each run as a region.  Pids are folded
   into the tenant-local key's bits 32..43 (churn vpns stay far below
   2^32), leaving the high bits free for the fleet's ASID tag. *)

type ops = {
  map : Addr.Region.t -> int;
      (** map every page of the region; returns lock sections taken *)
  unmap : Addr.Region.t -> int;
  protect : Addr.Region.t -> writable:bool -> int;
  touch : int64 -> bool;
      (** one store to a tenant-local key; false = not mapped (the
          interpreter then demand-faults the page back in) *)
}

type tally = {
  mutable events : int;
  mutable mmaps : int;
  mutable munmaps : int;
  mutable protects : int;
  mutable touches : int;
  mutable touch_hits : int;
  mutable touch_faults : int;
  mutable forks : int;
  mutable exits : int;
  mutable pages_mapped : int;
  mutable pages_unmapped : int;
  mutable range_pages : int;
  mutable range_sections : int;
}

let tally_zero () =
  {
    events = 0;
    mmaps = 0;
    munmaps = 0;
    protects = 0;
    touches = 0;
    touch_hits = 0;
    touch_faults = 0;
    forks = 0;
    exits = 0;
    pages_mapped = 0;
    pages_unmapped = 0;
    range_pages = 0;
    range_sections = 0;
  }

let local_key ~pid ~vpn = Int64.logor (Int64.shift_left (Int64.of_int pid) 32) vpn

type t = {
  ops : ops;
  trace : Workload.Trace.t;
  mutable pos : int;
  tally : tally;
  (* per-pid live vpns (pid-local, untagged) — needed to expand Fork
     and Exit into page runs *)
  live : (int, (int64, unit) Hashtbl.t) Hashtbl.t;
}

let create ops trace = { ops; trace; pos = 0; tally = tally_zero (); live = Hashtbl.create 16 }

let tally t = t.tally
let consumed t = t.pos
let length t = Array.length t.trace
let finished t = t.pos >= Array.length t.trace

let live_of t pid =
  match Hashtbl.find_opt t.live pid with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 256 in
      Hashtbl.add t.live pid s;
      s

(* maximal runs of consecutive vpns, as (first_vpn, pages), sorted —
   deterministic regardless of Hashtbl iteration order *)
let coalesce vpns =
  let sorted = List.sort compare vpns in
  let runs = ref [] in
  let flush first count = if count > 0 then runs := (first, count) :: !runs in
  let first = ref 0L and count = ref 0 in
  List.iter
    (fun v ->
      if !count > 0 && Int64.add !first (Int64.of_int !count) = v then incr count
      else begin
        flush !first !count;
        first := v;
        count := 1
      end)
    sorted;
  flush !first !count;
  List.rev !runs

let submit_range t pid ~unmap runs =
  List.iter
    (fun (vpn, pages) ->
      let region = Addr.Region.make ~first_vpn:(local_key ~pid ~vpn) ~pages in
      let sections = if unmap then t.ops.unmap region else t.ops.map region in
      t.tally.range_pages <- t.tally.range_pages + pages;
      t.tally.range_sections <- t.tally.range_sections + sections)
    runs

let interpret t ev =
  let y = t.tally in
  match (ev : Workload.Trace.event) with
  | Workload.Trace.Mmap (pid, vpn, pages) ->
      let s = live_of t pid in
      for i = 0 to pages - 1 do
        Hashtbl.replace s (Int64.add vpn (Int64.of_int i)) ()
      done;
      submit_range t pid ~unmap:false [ (vpn, pages) ];
      y.mmaps <- y.mmaps + 1;
      y.pages_mapped <- y.pages_mapped + pages
  | Workload.Trace.Munmap (pid, vpn, pages) ->
      let s = live_of t pid in
      for i = 0 to pages - 1 do
        Hashtbl.remove s (Int64.add vpn (Int64.of_int i))
      done;
      submit_range t pid ~unmap:true [ (vpn, pages) ];
      y.munmaps <- y.munmaps + 1;
      y.pages_unmapped <- y.pages_unmapped + pages
  | Workload.Trace.Protect (pid, vpn, pages, writable) ->
      let region = Addr.Region.make ~first_vpn:(local_key ~pid ~vpn) ~pages in
      let sections = t.ops.protect region ~writable in
      y.range_pages <- y.range_pages + pages;
      y.range_sections <- y.range_sections + sections;
      y.protects <- y.protects + 1
  | Workload.Trace.Touch (pid, vpn) ->
      y.touches <- y.touches + 1;
      if t.ops.touch (local_key ~pid ~vpn) then y.touch_hits <- y.touch_hits + 1
      else begin
        (* demand fault: a single-page map, outside the range-op
           tallies so locks-per-page stays a statement about range
           submissions *)
        ignore (t.ops.map (Addr.Region.make ~first_vpn:(local_key ~pid ~vpn) ~pages:1));
        Hashtbl.replace (live_of t pid) vpn ();
        y.touch_faults <- y.touch_faults + 1;
        y.pages_mapped <- y.pages_mapped + 1
      end
  | Workload.Trace.Fork (parent, child) ->
      let pages = Hashtbl.fold (fun vpn () acc -> vpn :: acc) (live_of t parent) [] in
      let s = live_of t child in
      List.iter (fun vpn -> Hashtbl.replace s vpn ()) pages;
      submit_range t child ~unmap:false (coalesce pages);
      y.forks <- y.forks + 1;
      y.pages_mapped <- y.pages_mapped + List.length pages
  | Workload.Trace.Exit pid ->
      let pages = Hashtbl.fold (fun vpn () acc -> vpn :: acc) (live_of t pid) [] in
      Hashtbl.remove t.live pid;
      submit_range t pid ~unmap:true (coalesce pages);
      y.exits <- y.exits + 1;
      y.pages_unmapped <- y.pages_unmapped + List.length pages
  | Workload.Trace.Access _ | Workload.Trace.Switch _ -> ()

let step t ~max_events =
  let n = min max_events (Array.length t.trace - t.pos) in
  for i = t.pos to t.pos + n - 1 do
    interpret t t.trace.(i)
  done;
  t.pos <- t.pos + n;
  t.tally.events <- t.tally.events + n;
  n

let run ops trace =
  let t = create ops trace in
  while not (finished t) do
    ignore (step t ~max_events:max_int)
  done;
  t.tally
