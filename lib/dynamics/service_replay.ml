(* Churn replay through the concurrent page-table service.

   {!Engine} interprets a lifecycle trace sequentially, one private
   table per process.  This replay drives the same trace at a shared
   {!Pt_service.Service.t}: every process's pages live in ONE table
   (the pid folded into the key, as a global hashed/clustered table
   tags PTEs with an address-space id), and independent process
   families replay on separate domains concurrently.

   Fork ties parent and child into one family, so a union-find over
   the trace's [Fork] events partitions pids into families whose
   event streams touch disjoint keys.  Each family replays in trace
   order on one domain; cross-family interleaving is arbitrary but
   irrelevant to the final state, so the replay is deterministic —
   identical populations and lock totals for every [domains] count —
   while the stripes underneath are genuinely contended. *)

type result = {
  events : int;
  families : int;
  inserts : int;
  removes : int;
  protects : int;
  protect_searches : int;
  touch_hits : int;
  touch_faults : int;
  forks : int;
  exits : int;
  final_population : int;
  read_locks : int;
  write_locks : int;
}

(* pid folded into the key's high bits: one shared table, per-process
   address spaces (the churn generator keeps VPNs far below 2^44) *)
let key ~pid ~vpn = Int64.logor (Int64.shift_left (Int64.of_int pid) 44) vpn

let attr = Pte.Attr.default

(* union-find over pids, grown on demand *)
module Families = struct
  type t = { mutable parent : int array }

  let create () = { parent = Array.init 16 (fun i -> i) }

  let ensure t pid =
    let n = Array.length t.parent in
    if pid >= n then begin
      let m = max (pid + 1) (2 * n) in
      let p = Array.init m (fun i -> if i < n then t.parent.(i) else i) in
      t.parent <- p
    end

  let rec find t pid =
    ensure t pid;
    if t.parent.(pid) = pid then pid
    else begin
      let root = find t t.parent.(pid) in
      t.parent.(pid) <- root;
      root
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then t.parent.(max ra rb) <- min ra rb
end

(* per-domain tally, merged after the join *)
type tally = {
  mutable t_inserts : int;
  mutable t_removes : int;
  mutable t_protects : int;
  mutable t_searches : int;
  mutable t_hits : int;
  mutable t_faults : int;
  mutable t_forks : int;
  mutable t_exits : int;
}

let replay_events svc events tally =
  (* per-pid live VPNs; parent and child are always in the same
     family, so this state never crosses domains *)
  let live : (int, (int64, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let live_of pid =
    match Hashtbl.find_opt live pid with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 256 in
        Hashtbl.add live pid s;
        s
  in
  let insert_page pid vpn =
    let k = key ~pid ~vpn in
    Pt_service.Service.insert svc ~vpn:k ~ppn:(Int64.logand k 0xFFF_FFFFL)
      ~attr;
    Hashtbl.replace (live_of pid) vpn ()
  in
  let remove_page pid vpn =
    Pt_service.Service.remove svc ~vpn:(key ~pid ~vpn);
    Hashtbl.remove (live_of pid) vpn
  in
  Array.iter
    (fun ev ->
      match (ev : Workload.Trace.event) with
      | Workload.Trace.Mmap (pid, vpn, pages) ->
          for i = 0 to pages - 1 do
            insert_page pid (Int64.add vpn (Int64.of_int i))
          done;
          tally.t_inserts <- tally.t_inserts + pages
      | Workload.Trace.Munmap (pid, vpn, pages) ->
          for i = 0 to pages - 1 do
            remove_page pid (Int64.add vpn (Int64.of_int i))
          done;
          tally.t_removes <- tally.t_removes + pages
      | Workload.Trace.Protect (pid, vpn, pages, writable) ->
          let region =
            Addr.Region.make ~first_vpn:(key ~pid ~vpn) ~pages
          in
          tally.t_searches <-
            tally.t_searches + Pt_service.Service.protect svc region ~writable;
          tally.t_protects <- tally.t_protects + 1
      | Workload.Trace.Touch (pid, vpn) ->
          if Pt_service.Service.lookup svc ~vpn:(key ~pid ~vpn) then
            tally.t_hits <- tally.t_hits + 1
          else begin
            (* demand fault *)
            insert_page pid vpn;
            tally.t_faults <- tally.t_faults + 1
          end
      | Workload.Trace.Fork (parent, child) ->
          Hashtbl.iter
            (fun vpn () -> insert_page child vpn)
            (live_of parent);
          tally.t_forks <- tally.t_forks + 1
      | Workload.Trace.Exit pid ->
          Hashtbl.iter (fun vpn () -> remove_page pid vpn)
            (Hashtbl.copy (live_of pid));
          Hashtbl.remove live pid;
          tally.t_exits <- tally.t_exits + 1
      | Workload.Trace.Access _ | Workload.Trace.Switch _ -> ())
    events

let pid_of = function
  | Workload.Trace.Mmap (pid, _, _)
  | Workload.Trace.Munmap (pid, _, _)
  | Workload.Trace.Protect (pid, _, _, _)
  | Workload.Trace.Touch (pid, _)
  | Workload.Trace.Access (pid, _)
  | Workload.Trace.Switch pid
  | Workload.Trace.Exit pid
  | Workload.Trace.Fork (pid, _) ->
      pid

let run ?(domains = 1) ~org ~locking (trace : Workload.Trace.t) =
  if domains < 1 then invalid_arg "Service_replay.run: domains must be >= 1";
  let fam = Families.create () in
  Array.iter
    (function
      | Workload.Trace.Fork (parent, child) -> Families.union fam parent child
      | _ -> ())
    trace;
  (* family roots in first-appearance order -> domain slots *)
  let order = Hashtbl.create 16 in
  Array.iter
    (fun ev ->
      let root = Families.find fam (pid_of ev) in
      if not (Hashtbl.mem order root) then
        Hashtbl.add order root (Hashtbl.length order))
    trace;
  let families = Hashtbl.length order in
  let slot_of ev = Hashtbl.find order (Families.find fam (pid_of ev)) mod domains in
  let per_slot = Array.init domains (fun _ -> ref []) in
  Array.iter
    (fun ev ->
      match ev with
      | Workload.Trace.Access _ | Workload.Trace.Switch _ -> ()
      | _ -> per_slot.(slot_of ev) := ev :: !(per_slot.(slot_of ev)))
    trace;
  let slots = Array.map (fun l -> Array.of_list (List.rev !l)) per_slot in
  let svc = Pt_service.Service.create ~org ~locking () in
  let tallies =
    Array.init domains (fun _ ->
        {
          t_inserts = 0;
          t_removes = 0;
          t_protects = 0;
          t_searches = 0;
          t_hits = 0;
          t_faults = 0;
          t_forks = 0;
          t_exits = 0;
        })
  in
  Exec.Worker_pool.with_pool ~domains (fun pool ->
      Exec.Worker_pool.run pool (fun i ->
          replay_events svc slots.(i) tallies.(i)));
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let stats = Pt_service.Service.lock_stats svc in
  {
    events = Array.length trace;
    families;
    inserts = sum (fun t -> t.t_inserts);
    removes = sum (fun t -> t.t_removes);
    protects = sum (fun t -> t.t_protects);
    protect_searches = sum (fun t -> t.t_searches);
    touch_hits = sum (fun t -> t.t_hits);
    touch_faults = sum (fun t -> t.t_faults);
    forks = sum (fun t -> t.t_forks);
    exits = sum (fun t -> t.t_exits);
    final_population = Pt_service.Service.population svc;
    read_locks = stats.Pt_service.Service.read_acquisitions;
    write_locks = stats.Pt_service.Service.write_acquisitions;
  }
