(* Deterministic generator of address-space lifecycle (churn) streams.

   Like [Workload.Trace.generate] for access streams: everything comes
   out of one seeded PRNG, so a (spec, seed) pair names one exact op
   sequence.  The stream cycles through three phases — grow
   (mmap-heavy), churn (balanced map/unmap with touch bursts) and
   shrink (munmap-heavy) — so a page table under it sees its live
   population rise, oscillate and fall, the pattern the paper's modify
   costs (Section 3.1) are about.  Forks clone a process COW-style;
   touch bursts after a fork are what break the sharing. *)

module Prng = Workload.Prng
module Trace = Workload.Trace

type spec = {
  ops : int;  (** events to generate (before the drain suffix) *)
  max_procs : int;  (** cap on simultaneously-live processes *)
  max_live_pages : int;  (** cap on mapped pages summed over processes *)
  region_min : int;  (** smallest mmap, in pages *)
  region_max : int;  (** largest mmap, in pages *)
  touch_burst : int;  (** longest touch burst, in pages *)
  drain : bool;  (** end by unmapping every region of every process *)
}

let default =
  {
    ops = 20_000;
    max_procs = 8;
    max_live_pages = 24_000;
    region_min = 4;
    region_max = 384;
    touch_burst = 64;
    drain = true;
  }

type proc_state = {
  pid : int;
  mutable regions : (int64 * int) list;  (* (first_vpn, pages), any order *)
  mutable cursor : int64;  (* next unclaimed vpn in this space *)
  mutable live : int;  (* pages currently mapped *)
}

let generate ?(spec = default) ~seed () : Trace.t =
  let rng = Prng.create ~seed in
  let events = ref [] and n = ref 0 in
  let emit e =
    events := e :: !events;
    incr n
  in
  let procs : (int, proc_state) Hashtbl.t = Hashtbl.create 16 in
  let new_proc pid = { pid; regions = []; cursor = 4096L; live = 0 } in
  Hashtbl.add procs 0 (new_proc 0);
  let next_pid = ref 1 in
  let total_live = ref 0 in
  let phase_len = max 64 (spec.ops / 6) in
  let sorted_pids () =
    List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) procs [])
  in
  let pick_any () =
    let ps = sorted_pids () in
    Hashtbl.find procs (List.nth ps (Prng.int rng ~bound:(List.length ps)))
  in
  let pick_mapped () =
    match
      List.filter
        (fun p -> (Hashtbl.find procs p).regions <> [])
        (sorted_pids ())
    with
    | [] -> None
    | ps ->
        Some (Hashtbl.find procs (List.nth ps (Prng.int rng ~bound:(List.length ps))))
  in
  let pick_region st =
    let rs = List.sort compare st.regions in
    List.nth rs (Prng.int rng ~bound:(List.length rs))
  in
  let do_mmap () =
    let st = pick_any () in
    let pages =
      spec.region_min
      + Prng.int rng ~bound:(spec.region_max - spec.region_min + 1)
    in
    let pages = min pages (max 1 (spec.max_live_pages - !total_live)) in
    (* usually block-aligned, so blocks can complete and promote;
       sometimes offset by a page to seed partial blocks *)
    let first =
      if Prng.bool rng ~p:0.8 then Addr.Bits.align_up st.cursor 4
      else Int64.add st.cursor 1L
    in
    st.cursor <- Int64.add first (Int64.of_int (pages + 1));
    st.regions <- (first, pages) :: st.regions;
    st.live <- st.live + pages;
    total_live := !total_live + pages;
    emit (Trace.Mmap (st.pid, first, pages))
  in
  let do_munmap st =
    let ((first, pages) as r) = pick_region st in
    st.regions <- List.filter (fun x -> x <> r) st.regions;
    st.live <- st.live - pages;
    total_live := !total_live - pages;
    emit (Trace.Munmap (st.pid, first, pages))
  in
  let do_touch st =
    let first, pages = pick_region st in
    let start = Prng.int rng ~bound:pages in
    let len = 1 + Prng.int rng ~bound:(min spec.touch_burst (pages - start)) in
    for i = start to start + len - 1 do
      emit (Trace.Touch (st.pid, Int64.add first (Int64.of_int i)))
    done
  in
  let do_protect st =
    let first, pages = pick_region st in
    let writable = Prng.bool rng ~p:0.5 in
    emit (Trace.Protect (st.pid, first, pages, writable))
  in
  let do_fork st =
    let child = !next_pid in
    incr next_pid;
    let c =
      { pid = child; regions = st.regions; cursor = st.cursor; live = st.live }
    in
    Hashtbl.add procs child c;
    total_live := !total_live + st.live;
    emit (Trace.Fork (st.pid, child))
  in
  let do_exit () =
    match List.filter (fun p -> p <> 0) (sorted_pids ()) with
    | [] -> None
    | ps ->
        let pid = List.nth ps (Prng.int rng ~bound:(List.length ps)) in
        let st = Hashtbl.find procs pid in
        total_live := !total_live - st.live;
        Hashtbl.remove procs pid;
        emit (Trace.Exit pid);
        Some ()
  in
  while !n < spec.ops do
    let phase = (!n / phase_len) mod 3 in
    let r = Prng.int rng ~bound:100 in
    let op =
      if phase = 0 then
        if r < 45 then `Mmap
        else if r < 78 then `Touch
        else if r < 84 then `Protect
        else if r < 91 then `Fork
        else if r < 97 then `Munmap
        else `Exit
      else if phase = 1 then
        if r < 20 then `Mmap
        else if r < 42 then `Munmap
        else if r < 74 then `Touch
        else if r < 84 then `Protect
        else if r < 92 then `Fork
        else `Exit
      else if r < 45 then `Munmap
      else if r < 70 then `Touch
      else if r < 78 then `Mmap
      else if r < 88 then `Protect
      else if r < 95 then `Exit
      else `Fork
    in
    (* capacity fallbacks: an op that cannot apply becomes the nearest
       one that can, so the stream always makes progress *)
    match op with
    | `Mmap ->
        if !total_live >= spec.max_live_pages then
          match pick_mapped () with Some st -> do_munmap st | None -> do_mmap ()
        else do_mmap ()
    | `Munmap -> (
        match pick_mapped () with Some st -> do_munmap st | None -> do_mmap ())
    | `Touch -> (
        match pick_mapped () with Some st -> do_touch st | None -> do_mmap ())
    | `Protect -> (
        match pick_mapped () with Some st -> do_protect st | None -> do_mmap ())
    | `Fork -> (
        let st = pick_any () in
        if
          Hashtbl.length procs >= spec.max_procs
          || !total_live + st.live > spec.max_live_pages
        then
          match pick_mapped () with
          | Some st -> do_touch st
          | None -> do_mmap ()
        else do_fork st)
    | `Exit -> (
        match do_exit () with
        | Some () -> ()
        | None -> (
            match pick_mapped () with
            | Some st -> do_munmap st
            | None -> do_mmap ()))
  done;
  if spec.drain then
    List.iter
      (fun pid ->
        let st = Hashtbl.find procs pid in
        List.iter
          (fun (first, pages) -> emit (Trace.Munmap (pid, first, pages)))
          (List.sort compare st.regions);
        st.regions <- [];
        st.live <- 0)
      (sorted_pids ());
  Array.of_list (List.rev !events)
