(** Deterministic address-space churn generator.

    Emits a {!Workload.Trace.t} of lifecycle events — [Mmap], [Munmap],
    [Protect], [Fork], [Exit] and [Touch] bursts — driven entirely by
    one seeded PRNG, so a (spec, seed) pair names exactly one stream.
    The stream cycles grow / churn / shrink phases so the page tables
    driven by {!Engine} see their live population rise, oscillate and
    fall. *)

type spec = {
  ops : int;  (** events to generate (before the drain suffix) *)
  max_procs : int;  (** cap on simultaneously-live processes *)
  max_live_pages : int;  (** cap on mapped pages summed over processes *)
  region_min : int;  (** smallest mmap, in pages *)
  region_max : int;  (** largest mmap, in pages *)
  touch_burst : int;  (** longest touch burst, in pages *)
  drain : bool;  (** end by unmapping every region of every process *)
}

val default : spec
(** 20k ops, 8 processes, 24k live pages, 4–384-page regions, 64-page
    bursts, drained. *)

val generate : ?spec:spec -> seed:int64 -> unit -> Workload.Trace.t
(** Deterministic in [seed].  Process 0 always exists and never exits.
    When [spec.drain] is true the stream ends with [Munmap]s (sorted,
    no [Exit]s) covering every live region of every process, so after
    interpretation each page table holds zero mappings and its
    footprint can be compared against an empty table. *)
