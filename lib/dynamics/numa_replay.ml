(* Churn replay across a NUMA-replicated service.

   {!Service_replay} drives a lifecycle trace at one shared service;
   this replay drives the same trace at a {!Numa.Replicated} table
   set: process families (the union-find partition over Fork events)
   are pinned round-robin to NUMA nodes — a family's mmap/touch/exit
   traffic originates on its node — and dealt round-robin over worker
   domains.  The family-to-node binding depends only on the trace,
   never on the domain count.

   Determinism: families touch disjoint keys, so per-family tallies
   (inserts, touch hits/faults, ...) and the final mapping set are
   interleaving-invariant.  Replica-write totals are read {e after}
   quiesce, where every journaled op has been applied to every replica
   exactly once — [replica_writes = logical_writes x nodes] in every
   mode — so the result is bit-identical for any [domains] even under
   lazy replication, whose mid-run catch-up schedule is scheduling
   -dependent.  Walk-line and catch-up-episode figures are exactly the
   quantities that are NOT invariant here (families share hash
   chains); the bucket-partitioned {!Numa.Numa_sim} driver owns
   those. *)

module R = Numa.Replicated

type result = {
  events : int;
  families : int;
  nodes : int;
  mode : R.mode;
  inserts : int;
  removes : int;
  protects : int;
  touch_hits : int;
  touch_faults : int;
  forks : int;
  exits : int;
  logical_writes : int;
  replica_writes : int;  (** read after quiesce: logical x replicas *)
  population : int;
  fsck_clean : bool;
}

let key ~pid ~vpn = Int64.logor (Int64.shift_left (Int64.of_int pid) 44) vpn

let attr = Pte.Attr.default

module Families = struct
  type t = { mutable parent : int array }

  let create () = { parent = Array.init 16 (fun i -> i) }

  let ensure t pid =
    let n = Array.length t.parent in
    if pid >= n then begin
      let m = max (pid + 1) (2 * n) in
      let p = Array.init m (fun i -> if i < n then t.parent.(i) else i) in
      t.parent <- p
    end

  let rec find t pid =
    ensure t pid;
    if t.parent.(pid) = pid then pid
    else begin
      let root = find t t.parent.(pid) in
      t.parent.(pid) <- root;
      root
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then t.parent.(max ra rb) <- min ra rb
end

type tally = {
  mutable t_inserts : int;
  mutable t_removes : int;
  mutable t_protects : int;
  mutable t_hits : int;
  mutable t_faults : int;
  mutable t_forks : int;
  mutable t_exits : int;
}

let replay_events repl ~node_of events tally =
  (* per-pid live VPNs; parent and child are always in the same
     family, so this state never crosses domains *)
  let live : (int, (int64, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let live_of pid =
    match Hashtbl.find_opt live pid with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 256 in
        Hashtbl.add live pid s;
        s
  in
  let insert_page ~node pid vpn =
    let k = key ~pid ~vpn in
    R.insert ~node repl ~vpn:k ~ppn:(Int64.logand k 0xFFF_FFFFL) ~attr;
    Hashtbl.replace (live_of pid) vpn ()
  in
  let remove_page ~node pid vpn =
    R.remove ~node repl ~vpn:(key ~pid ~vpn);
    Hashtbl.remove (live_of pid) vpn
  in
  Array.iter
    (fun ev ->
      let node = node_of ev in
      match (ev : Workload.Trace.event) with
      | Workload.Trace.Mmap (pid, vpn, pages) ->
          for i = 0 to pages - 1 do
            insert_page ~node pid (Int64.add vpn (Int64.of_int i))
          done;
          tally.t_inserts <- tally.t_inserts + pages
      | Workload.Trace.Munmap (pid, vpn, pages) ->
          for i = 0 to pages - 1 do
            remove_page ~node pid (Int64.add vpn (Int64.of_int i))
          done;
          tally.t_removes <- tally.t_removes + pages
      | Workload.Trace.Protect (pid, vpn, pages, writable) ->
          for i = 0 to pages - 1 do
            R.protect_page ~node repl
              ~vpn:(key ~pid ~vpn:(Int64.add vpn (Int64.of_int i)))
              ~writable
          done;
          tally.t_protects <- tally.t_protects + 1
      | Workload.Trace.Touch (pid, vpn) ->
          if R.lookup repl ~node ~vpn:(key ~pid ~vpn) then
            tally.t_hits <- tally.t_hits + 1
          else begin
            (* demand fault *)
            insert_page ~node pid vpn;
            tally.t_faults <- tally.t_faults + 1
          end
      | Workload.Trace.Fork (parent, child) ->
          Hashtbl.iter (fun vpn () -> insert_page ~node child vpn)
            (live_of parent);
          tally.t_forks <- tally.t_forks + 1
      | Workload.Trace.Exit pid ->
          Hashtbl.iter
            (fun vpn () -> remove_page ~node pid vpn)
            (Hashtbl.copy (live_of pid));
          Hashtbl.remove live pid;
          tally.t_exits <- tally.t_exits + 1
      | Workload.Trace.Access _ | Workload.Trace.Switch _ -> ())
    events

let pid_of = function
  | Workload.Trace.Mmap (pid, _, _)
  | Workload.Trace.Munmap (pid, _, _)
  | Workload.Trace.Protect (pid, _, _, _)
  | Workload.Trace.Touch (pid, _)
  | Workload.Trace.Access (pid, _)
  | Workload.Trace.Switch pid
  | Workload.Trace.Exit pid
  | Workload.Trace.Fork (pid, _) ->
      pid

let run ?(domains = 1) ~machine ~org ~locking ~mode (trace : Workload.Trace.t)
    =
  if domains < 1 then invalid_arg "Numa_replay.run: domains must be >= 1";
  let nodes = Numa.Machine.nodes machine in
  let fam = Families.create () in
  Array.iter
    (function
      | Workload.Trace.Fork (parent, child) -> Families.union fam parent child
      | _ -> ())
    trace;
  (* family roots in first-appearance order; a family's slot in that
     order fixes both its node (mod nodes) and its worker (mod
     domains) *)
  let order = Hashtbl.create 16 in
  Array.iter
    (fun ev ->
      let root = Families.find fam (pid_of ev) in
      if not (Hashtbl.mem order root) then
        Hashtbl.add order root (Hashtbl.length order))
    trace;
  let families = Hashtbl.length order in
  let slot_of ev = Hashtbl.find order (Families.find fam (pid_of ev)) in
  (* a family's slot in first-appearance order fixes both its node
     (mod nodes — never mod domains) and its worker (mod domains) *)
  let node_of ev = slot_of ev mod nodes in
  let per_worker = Array.init domains (fun _ -> ref []) in
  Array.iter
    (fun ev ->
      match ev with
      | Workload.Trace.Access _ | Workload.Trace.Switch _ -> ()
      | _ ->
          let w = slot_of ev mod domains in
          per_worker.(w) := ev :: !(per_worker.(w)))
    trace;
  let slots = Array.map (fun l -> Array.of_list (List.rev !l)) per_worker in
  let repl = R.create ~machine ~org ~locking ~mode () in
  let tallies =
    Array.init domains (fun _ ->
        {
          t_inserts = 0;
          t_removes = 0;
          t_protects = 0;
          t_hits = 0;
          t_faults = 0;
          t_forks = 0;
          t_exits = 0;
        })
  in
  Exec.Worker_pool.with_pool ~epochs:(R.reader_epochs repl) ~domains
    (fun pool ->
      Exec.Worker_pool.run pool (fun i ->
          replay_events repl ~node_of slots.(i) tallies.(i)));
  R.quiesce repl;
  let stats = R.stats repl in
  let clean = Fsck.clean (R.fsck repl) in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  {
    events = Array.length trace;
    families;
    nodes;
    mode;
    inserts = sum (fun t -> t.t_inserts);
    removes = sum (fun t -> t.t_removes);
    protects = sum (fun t -> t.t_protects);
    touch_hits = sum (fun t -> t.t_hits);
    touch_faults = sum (fun t -> t.t_faults);
    forks = sum (fun t -> t.t_forks);
    exits = sum (fun t -> t.t_exits);
    logical_writes = stats.R.logical_writes;
    replica_writes = stats.R.replica_writes;
    population = R.population repl;
    fsck_clean = clean;
  }
