(** Churn replay through the concurrent page-table service.

    Where {!Engine} interprets a lifecycle trace sequentially with one
    private table per process, this replay drives the same trace at a
    shared {!Pt_service.Service.t}: all processes' pages in ONE table
    (pid folded into the key, like an address-space id tag), with
    independent process families — pids connected by [Fork] — replayed
    concurrently on separate worker domains.

    Families touch disjoint keys and each replays in trace order, so
    the result is deterministic: identical populations, tallies and
    lock totals for every [domains] count, while the bucket stripes
    underneath are genuinely contended. *)

type result = {
  events : int;  (** trace length, including ignored access events *)
  families : int;  (** independent process families found *)
  inserts : int;  (** pages mapped by [Mmap] and [Fork] copies *)
  removes : int;  (** pages unmapped by [Munmap] (not [Exit] teardown) *)
  protects : int;  (** [Protect] range operations *)
  protect_searches : int;  (** hash searches those protects performed *)
  touch_hits : int;  (** [Touch] lookups that hit *)
  touch_faults : int;  (** [Touch] lookups that demand-faulted a page *)
  forks : int;
  exits : int;
  final_population : int;  (** mapped pages left in the shared table *)
  read_locks : int;  (** total lock acquisitions over the replay *)
  write_locks : int;
}

val run :
  ?domains:int ->
  org:Pt_service.Service.org ->
  locking:Pt_service.Service.locking ->
  Workload.Trace.t ->
  result
(** Replay a {!Churn}-generated trace (default [domains:1]).  [Access]
    and [Switch] events are ignored, as in {!Engine}. *)
