(** Churn replay across a NUMA-replicated service.

    Where {!Service_replay} drives a lifecycle trace at one shared
    {!Pt_service.Service.t}, this replay drives the same trace at a
    {!Numa.Replicated} table set: process families (pids connected by
    [Fork]) are pinned round-robin to NUMA nodes — a family's
    mmap/touch/exit traffic originates on its node — and dealt
    round-robin over worker domains.  The family-to-node binding
    depends only on the trace, never on the domain count.

    Families touch disjoint keys, so the tallies and final mapping set
    are interleaving-invariant; replica-write totals are read after
    quiesce, where every journaled op has applied to every replica
    exactly once ([replica_writes = logical_writes x replicas] in
    every mode).  The result is therefore bit-identical for any
    [domains], even under lazy replication whose mid-run catch-up
    schedule is scheduling-dependent — which is why catch-up episode
    counts and walk-line totals are deliberately absent here (families
    share hash chains; the bucket-partitioned {!Numa.Numa_sim} driver
    owns those figures). *)

type result = {
  events : int;  (** trace length, including ignored access events *)
  families : int;  (** independent process families found *)
  nodes : int;
  mode : Numa.Replicated.mode;
  inserts : int;  (** pages mapped by [Mmap] and [Fork] copies *)
  removes : int;  (** pages unmapped by [Munmap] (not [Exit] teardown) *)
  protects : int;  (** [Protect] range operations *)
  touch_hits : int;  (** [Touch] lookups that hit the local replica *)
  touch_faults : int;  (** [Touch] lookups that demand-faulted a page *)
  forks : int;
  exits : int;
  logical_writes : int;  (** service-level mutations requested *)
  replica_writes : int;  (** after quiesce: [logical x replicas] *)
  population : int;  (** mapped pages left in the primary replica *)
  fsck_clean : bool;  (** per-replica and cross-replica checks *)
}

val run :
  ?domains:int ->
  machine:Numa.Machine.t ->
  org:Pt_service.Service.org ->
  locking:Pt_service.Service.locking ->
  mode:Numa.Replicated.mode ->
  Workload.Trace.t ->
  result
(** Replay a {!Churn}-generated trace (default [domains:1]).  [Access]
    and [Switch] events are ignored, as in {!Engine}. *)
