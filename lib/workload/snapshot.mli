(** Address-space snapshots: the set of mapped pages of each process
    "at a point near the program's maximum memory use" (Section 6.1),
    generated from a {!Spec} profile.

    The page-table size experiments (Figures 9 and 10) consume
    snapshots directly; the trace generators walk their segment
    structure. *)

type seg_kind = Dense | Chunk | Sparse

type segment = { kind : seg_kind; first_vpn : int64; pages : int }

type proc = { pname : string; segments : segment list }

type t = { workload : string; procs : proc list }

val generate : Spec.t -> seed:int64 -> t
(** Deterministic in [seed].  Segment placement never overlaps; the
    total page count equals the spec's calibrated target exactly. *)

val proc_pages : proc -> int

val total_pages : t -> int

val proc_vpns : proc -> int64 array
(** All mapped VPNs of the process, ascending. *)

val dense_runs : proc -> (int64 * int) array
(** (first VPN, length) of each dense segment, for trace sweeps. *)

val chunk_runs : proc -> (int64 * int) array

val active_blocks : subblock_factor:int -> proc -> int
(** Number of page blocks with at least one mapped page:
    Nactive(factor) of the appendix formulae. *)

val save : t -> string -> unit
(** Write to a file in a line-oriented text format (one [proc] line
    per process, one [seg] line per segment). *)

val load : string -> t
(** Inverse of {!save}.  Raises [Failure] on malformed input. *)

val pp : Format.formatter -> t -> unit
