type trace_kind = Array_sweep | Pointer_chase | Join | Gc_scan | Multiprog

type profile = {
  dense_frac : float;
  chunk_pages : int * int;
  sparse_frac : float;
  spread_pages : int64;
}

type process = { pname : string; target_pages : int; profile : profile }

type paper_row = {
  total_time_s : float;
  user_time_s : float;
  tlb_misses_k : int;
  pct_tlb : int;
  hashed_kb : int;
}

type t = {
  name : string;
  processes : process list;
  trace : trace_kind;
  locality : float;
  paper : paper_row;
}

let target_pages t =
  List.fold_left (fun acc p -> acc + p.target_pages) 0 t.processes

let pp ppf t =
  Format.fprintf ppf "%s (%d processes, %d pages)" t.name
    (List.length t.processes) (target_pages t)
