(** Synthetic page-reference traces.

    Page-granular event streams whose miss behaviour under the four TLB
    designs reproduces each workload's published character: array codes
    sweep large dense runs (superpages help enormously), pointer codes
    jump within a slowly-drifting hot set, the join nests sweeps, the
    GC alternates an allocation front with full-heap scans, and
    multiprogrammed workloads interleave processes with a TLB flush at
    each context switch (no address-space tags, as on the paper's
    SuperSPARC). *)

type event =
  | Access of int * int64  (** (process index, VPN) *)
  | Switch of int  (** context switch to process index: TLB flush *)

type t = event array

val generate :
  ?quantum:int -> Spec.t -> Snapshot.t -> seed:int64 -> length:int -> t
(** Deterministic in [seed].  [length] counts [Access] events.
    [quantum] is the scheduling quantum (in events) between context
    switches of multiprogrammed workloads; the default 400 models a
    timer quantum (each page-granular event stands for ~25 real
    references), while pipeline-synchronized processes switch far more
    often. *)

val save : t -> string -> unit
(** One line per event: ["A <pid> <vpn-hex>"] or ["S <pid>"]. *)

val load : string -> t
(** Inverse of {!save}.  Raises [Failure] on malformed input. *)

val accesses : t -> int

val distinct_pages : t -> int
