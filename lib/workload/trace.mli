(** Synthetic page-reference traces.

    Page-granular event streams whose miss behaviour under the four TLB
    designs reproduces each workload's published character: array codes
    sweep large dense runs (superpages help enormously), pointer codes
    jump within a slowly-drifting hot set, the join nests sweeps, the
    GC alternates an allocation front with full-heap scans, and
    multiprogrammed workloads interleave processes with a TLB flush at
    each context switch (no address-space tags, as on the paper's
    SuperSPARC). *)

type event =
  | Access of int * int64  (** (process index, VPN) *)
  | Switch of int  (** context switch to process index: TLB flush *)
  | Mmap of int * int64 * int
      (** (process, first VPN, pages): map an anonymous region *)
  | Munmap of int * int64 * int  (** (process, first VPN, pages) *)
  | Protect of int * int64 * int * bool
      (** (process, first VPN, pages, writable): mprotect a range *)
  | Fork of int * int
      (** (parent, child): child shares the parent's frames COW-style *)
  | Exit of int  (** process exits; every mapping is released *)
  | Touch of int * int64
      (** (process, VPN): a store — faults the page in if needed and
          breaks copy-on-write sharing *)

type t = event array

val format_version : int
(** Version written by {!save} (["# ptsim-trace v2"]).  v1 is the
    headerless access/switch-only format of earlier builds; {!load}
    reads both and rejects anything newer. *)

val generate :
  ?quantum:int -> Spec.t -> Snapshot.t -> seed:int64 -> length:int -> t
(** Deterministic in [seed].  [length] counts [Access] events.
    [quantum] is the scheduling quantum (in events) between context
    switches of multiprogrammed workloads; the default 400 models a
    timer quantum (each page-granular event stands for ~25 real
    references), while pipeline-synchronized processes switch far more
    often. *)

val save : t -> string -> unit
(** A version header, then one line per event: ["A <pid> <vpn-hex>"],
    ["S <pid>"], ["M <pid> <vpn-hex> <pages>"] (mmap),
    ["U <pid> <vpn-hex> <pages>"] (munmap),
    ["P <pid> <vpn-hex> <pages> <0|1>"] (protect),
    ["F <parent> <child>"], ["X <pid>"] (exit) or ["T <pid> <vpn-hex>"]
    (touch). *)

val load : string -> t
(** Inverse of {!save}; also reads headerless v1 files.  Raises
    [Failure] on malformed input or an unsupported format version. *)

val accesses : t -> int

val distinct_pages : t -> int
