(** Deterministic SplitMix64 PRNG.

    Every workload generator takes an explicit seed so each experiment
    is reproducible bit-for-bit; the OCaml [Random] module is never
    used. *)

type t

val create : seed:int64 -> t

val copy : t -> t

val next : t -> int64
(** Next 64-bit value. *)

val int : t -> bound:int -> int
(** Uniform in [0, bound); [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> p:float -> bool
(** True with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
