type event =
  | Access of int * int64
  | Switch of int
  | Mmap of int * int64 * int
  | Munmap of int * int64 * int
  | Protect of int * int64 * int * bool
  | Fork of int * int
  | Exit of int
  | Touch of int * int64

type t = event array

let format_version = 2

(* Emission buffer *)
type buf = { mutable events : event list; mutable n_accesses : int }

let emit b proc vpn =
  b.events <- Access (proc, vpn) :: b.events;
  b.n_accesses <- b.n_accesses + 1

let emit_switch b proc = b.events <- Switch proc :: b.events

(* Re-touch a page a few times: real code makes many references per
   page, so hits dominate and misses come from page transitions.  The
   workload's locality scales the revisit count. *)
let touch b proc rng ~locality ~reuse vpn =
  let reuse =
    max 1 (int_of_float (float_of_int reuse *. (0.4 +. (1.8 *. locality))))
  in
  for _ = 1 to 1 + Prng.int rng ~bound:reuse do
    emit b proc vpn
  done

let run_page (first, _pages) i = Int64.add first (Int64.of_int i)

(* Sweep a run from its start, [reuse] touches per page. *)
let sweep b proc rng ~locality ~reuse run =
  let _, pages = run in
  for i = 0 to pages - 1 do
    touch b proc rng ~locality ~reuse (run_page run i)
  done

let array_sweep (pr : Snapshot.proc) b proc rng ~locality ~length =
  let runs = Snapshot.dense_runs pr in
  let chunks = Snapshot.chunk_runs pr in
  if Array.length runs = 0 then ()
  else begin
    (* interleave the arrays with a block-sized stride, the way a
       stencil or FFT reads several operands together *)
    let cursors = Array.make (Array.length runs) 0 in
    let k = ref 0 in
    while b.n_accesses < length do
      let r = !k mod Array.length runs in
      let run = runs.(r) in
      let _, pages = run in
      let i = cursors.(r) in
      touch b proc rng ~locality ~reuse:6 (run_page run (i mod pages));
      cursors.(r) <- i + 8;
      (* occasional scalar / temp access *)
      if Array.length chunks > 0 && Prng.bool rng ~p:0.02 then begin
        let c = chunks.(Prng.int rng ~bound:(Array.length chunks)) in
        let _, cp = c in
        touch b proc rng ~locality ~reuse:2 (run_page c (Prng.int rng ~bound:cp))
      end;
      incr k
    done
  end

let pointer_chase (pr : Snapshot.proc) b proc rng ~locality ~length =
  let vpns = Snapshot.proc_vpns pr in
  let n = Array.length vpns in
  if n = 0 then ()
  else begin
    (* hot set drifting through the heap: tighter when locality is
       high, so it fits the TLB and misses come from drift *)
    let hot =
      max 16 (min (n - 1) (int_of_float (320.0 *. (1.05 -. locality))))
    in
    let p_hot = 0.80 +. (0.15 *. locality) in
    let base = ref 0 in
    while b.n_accesses < length do
      let vpn =
        if Prng.bool rng ~p:p_hot then
          vpns.((!base + Prng.int rng ~bound:hot) mod n)
        else vpns.(Prng.int rng ~bound:n)
      in
      touch b proc rng ~locality ~reuse:3 vpn;
      if Prng.bool rng ~p:0.002 then base := Prng.int rng ~bound:n
    done
  end

let join (pr : Snapshot.proc) b proc rng ~locality ~length =
  let runs = Snapshot.dense_runs pr in
  if Array.length runs < 2 then pointer_chase pr b proc rng ~locality ~length
  else begin
    (* nested-loop join: outer relation swept once per pass, inner
       relation fully re-swept for every outer segment *)
    let outer = runs.(Array.length runs - 1) in
    let inner = runs.(Array.length runs - 2) in
    let _, outer_pages = outer in
    let _, inner_pages = inner in
    let inner_window = min inner_pages 256 in
    let o = ref 0 in
    while b.n_accesses < length do
      touch b proc rng ~locality ~reuse:4 (run_page outer (!o mod outer_pages));
      let start = Prng.int rng ~bound:(max 1 (inner_pages - inner_window)) in
      for i = start to start + inner_window - 1 do
        if b.n_accesses < length then
          touch b proc rng ~locality ~reuse:2 (run_page inner i)
      done;
      incr o
    done
  end

let gc_scan (pr : Snapshot.proc) b proc rng ~locality ~length =
  let runs = Snapshot.dense_runs pr in
  if Array.length runs = 0 then ()
  else begin
    let heap = runs.(Array.length runs - 1) in
    let _, heap_pages = heap in
    let alloc = ref 0 in
    while b.n_accesses < length do
      (* allocation front: fresh pages, heavy reuse *)
      for _ = 1 to 32 do
        if b.n_accesses < length then begin
          touch b proc rng ~locality ~reuse:10 (run_page heap (!alloc mod heap_pages));
          incr alloc
        end
      done;
      (* minor collection: scan a window behind the front (a young
         generation sized by the workload's locality) *)
      let window = max 32 (int_of_float (320.0 *. (1.0 -. locality))) in
      let start = max 0 ((!alloc mod heap_pages) - window) in
      for i = start to (!alloc mod heap_pages) - 1 do
        if b.n_accesses < length then
          touch b proc rng ~locality ~reuse:1 (run_page heap i)
      done;
      (* occasional major collection: sweep everything *)
      if Prng.bool rng ~p:(0.012 *. (1.2 -. locality)) then
        Array.iter
          (fun run ->
            if b.n_accesses < length then sweep b proc rng ~locality ~reuse:1 run)
          runs
    done
  end

let for_proc kind (pr : Snapshot.proc) b proc rng ~locality ~length =
  match kind with
  | Spec.Array_sweep -> array_sweep pr b proc rng ~locality ~length
  | Spec.Pointer_chase -> pointer_chase pr b proc rng ~locality ~length
  | Spec.Join -> join pr b proc rng ~locality ~length
  | Spec.Gc_scan -> gc_scan pr b proc rng ~locality ~length
  | Spec.Multiprog -> assert false

let generate ?(quantum = 400) (spec : Spec.t) (snap : Snapshot.t) ~seed ~length =
  let rng = Prng.create ~seed in
  let locality = spec.Spec.locality in
  let b = { events = []; n_accesses = 0 } in
  (match spec.Spec.trace with
  | Spec.Multiprog ->
      (* quanta of the main process interleaved with its helpers; the
         TLB is flushed at every switch *)
      let procs = Array.of_list snap.Snapshot.procs in
      let n = Array.length procs in
      let current = ref 0 in
      while b.n_accesses < length do
        emit_switch b !current;
        let stop = min length (b.n_accesses + quantum) in
        let pr = procs.(!current) in
        let kind =
          (* the main program computes; the helpers behave like shells *)
          if !current = 0 then Spec.Array_sweep else Spec.Pointer_chase
        in
        for_proc kind pr b !current rng ~locality ~length:stop;
        current := (!current + 1) mod n
      done
  | kind -> (
      match snap.Snapshot.procs with
      | [ pr ] -> for_proc kind pr b 0 rng ~locality ~length
      | pr :: _ -> for_proc kind pr b 0 rng ~locality ~length
      | [] -> ()));
  Array.of_list (List.rev b.events)

let header_prefix = "# ptsim-trace v"

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s%d\n" header_prefix format_version;
      Array.iter
        (function
          | Access (p, vpn) -> Printf.fprintf oc "A %d %Lx\n" p vpn
          | Switch p -> Printf.fprintf oc "S %d\n" p
          | Mmap (p, vpn, pages) -> Printf.fprintf oc "M %d %Lx %d\n" p vpn pages
          | Munmap (p, vpn, pages) ->
              Printf.fprintf oc "U %d %Lx %d\n" p vpn pages
          | Protect (p, vpn, pages, w) ->
              Printf.fprintf oc "P %d %Lx %d %d\n" p vpn pages
                (if w then 1 else 0)
          | Fork (parent, child) -> Printf.fprintf oc "F %d %d\n" parent child
          | Exit p -> Printf.fprintf oc "X %d\n" p
          | Touch (p, vpn) -> Printf.fprintf oc "T %d %Lx\n" p vpn)
        t)

let parse_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "A"; p; vpn ] ->
      Some (Access (int_of_string p, Int64.of_string ("0x" ^ vpn)))
  | [ "S"; p ] -> Some (Switch (int_of_string p))
  | [ "M"; p; vpn; pages ] ->
      Some
        (Mmap
           (int_of_string p, Int64.of_string ("0x" ^ vpn), int_of_string pages))
  | [ "U"; p; vpn; pages ] ->
      Some
        (Munmap
           (int_of_string p, Int64.of_string ("0x" ^ vpn), int_of_string pages))
  | [ "P"; p; vpn; pages; w ] ->
      Some
        (Protect
           ( int_of_string p,
             Int64.of_string ("0x" ^ vpn),
             int_of_string pages,
             int_of_string w <> 0 ))
  | [ "F"; parent; child ] ->
      Some (Fork (int_of_string parent, int_of_string child))
  | [ "X"; p ] -> Some (Exit (int_of_string p))
  | [ "T"; p; vpn ] ->
      Some (Touch (int_of_string p, Int64.of_string ("0x" ^ vpn)))
  | [ "" ] | [] -> None
  | _ -> failwith ("Trace.load: bad line: " ^ line)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let events = ref [] in
      let first = ref true in
      (try
         while true do
           let line = input_line ic in
           if !first then begin
             first := false;
             let n = String.length header_prefix in
             if
               String.length line > n && String.sub line 0 n = header_prefix
             then begin
               (* versioned header: reject files written by a format we
                  do not know how to read *)
               let v =
                 match
                   int_of_string_opt
                     (String.trim
                        (String.sub line n (String.length line - n)))
                 with
                 | Some v -> v
                 | None -> failwith ("Trace.load: bad header: " ^ line)
               in
               if v < 1 || v > format_version then
                 failwith
                   (Printf.sprintf
                      "Trace.load: unsupported trace format v%d (this build \
                       reads up to v%d)"
                      v format_version)
             end
             else begin
               (* headerless v1 file: first line is already an event *)
               match parse_line line with
               | Some e -> events := e :: !events
               | None -> ()
             end
           end
           else
             match parse_line line with
             | Some e -> events := e :: !events
             | None -> ()
         done
       with End_of_file -> ());
      Array.of_list (List.rev !events))

let accesses t =
  Array.fold_left
    (fun acc -> function Access _ -> acc + 1 | _ -> acc)
    0 t

let distinct_pages t =
  let seen = Hashtbl.create 1024 in
  Array.iter
    (function
      | Access (p, vpn) | Touch (p, vpn) -> Hashtbl.replace seen (p, vpn) ()
      | _ -> ())
    t;
  Hashtbl.length seen
