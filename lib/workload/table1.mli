(** The paper's workload suite (Table 1), as calibrated {!Spec}
    values.

    Ordering matches the table: most to least percent of user time
    spent in TLB miss handling, then kernel space (size-only).  The
    [hashed_kb] paper figures calibrate each spec's page target
    (24 bytes per mapped page, Section 6.1). *)

val coral : Spec.t
val nasa7 : Spec.t
val compress : Spec.t
val fftpde : Spec.t
val wave5 : Spec.t
val mp3d : Spec.t
val spice : Spec.t
val pthor : Spec.t
val ml : Spec.t
val gcc : Spec.t

val kernel : Spec.t
(** Kernel address space; appears in the size figures only. *)

val future64 : Spec.t
(** Not from the paper's Table 1: the "future 64-bit workload" its
    Section 6.2 predicts — a much larger, sparser address space
    (an object store scattering thousands of medium objects through
    64 bits).  Used by the extension experiments to show hashed and
    clustered tables becoming "more attractive". *)

val all : Spec.t list
(** The ten workloads, Table 1 order. *)

val all_with_kernel : Spec.t list

val find : string -> Spec.t option
(** Look a spec up by name (case-insensitive). *)
