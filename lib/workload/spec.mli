(** Workload models.

    Each of the paper's ten workloads (plus kernel space) is described
    by a generative profile per process: how its mapped pages divide
    into large dense segments, medium "bursty" chunks (the
    few-to-many-page objects Section 3 argues clustering exploits), and
    isolated sparse pages; how widely the pieces scatter through the
    address space; and which reference pattern its trace follows.

    Profiles are calibrated so the hashed-page-table footprint matches
    the paper's Table 1 (24 bytes per mapped page), and the
    density/sparseness ordering matches Figure 9's discussion:
    coral/ML/kernel dense, gcc/compress sparse and multiprogrammed. *)

(** Reference-trace character (drives Figure 11). *)
type trace_kind =
  | Array_sweep  (** strided sweeps over large arrays (nasa7, fftpde, wave5) *)
  | Pointer_chase  (** randomized heap dereferences (mp3d, spice, pthor) *)
  | Join  (** nested-loop join: outer sweep x inner sweeps (coral) *)
  | Gc_scan  (** allocation sweep plus periodic full-heap scans (ML) *)
  | Multiprog  (** processes interleaved in quanta, TLB flushed on switch *)

type profile = {
  dense_frac : float;  (** fraction of pages in large contiguous segments *)
  chunk_pages : int * int;  (** (min, max) pages per medium chunk *)
  sparse_frac : float;  (** fraction of pages mapped in isolation *)
  spread_pages : int64;
      (** scatter radius (in pages) for chunk/sparse placement *)
}

type process = { pname : string; target_pages : int; profile : profile }

(** Paper numbers from Table 1, kept for side-by-side reporting. *)
type paper_row = {
  total_time_s : float;
  user_time_s : float;
  tlb_misses_k : int;  (** user TLB misses, thousands *)
  pct_tlb : int;  (** % user time in TLB miss handling *)
  hashed_kb : int;  (** hashed page table size, KB *)
}

type t = {
  name : string;
  processes : process list;
  trace : trace_kind;
  locality : float;
      (** 0..1: temporal locality of the reference trace.  0 = TLB-hostile
          (coral's join), 1 = tight loops (gcc).  Calibrated so the
          workloads' relative TLB miss intensity follows Table 1. *)
  paper : paper_row;
}

val target_pages : t -> int
(** Sum over processes. *)

val pp : Format.formatter -> t -> unit
