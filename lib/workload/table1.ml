(* Page targets are the paper's hashed-page-table sizes divided by the
   24-byte PTE: e.g. coral 119 KB -> 5077 pages.  Density profiles
   follow each program's published character: coral and ML are dense
   (deductive-database relations; copying-GC semispaces); gcc and
   compress are multiprogrammed with small, scattered helper processes
   (the paper's footnote 3). *)

open Spec

let dense_profile =
  {
    dense_frac = 0.85;
    chunk_pages = (8, 24);
    sparse_frac = 0.003;
    spread_pages = 0x2000L (* chunks clump within 32 MB *);
  }

let kb kilobytes = kilobytes * 1024 / 24

let coral =
  {
    name = "coral";
    processes =
      [
        {
          pname = "coral";
          target_pages = kb 119;
          profile = { dense_profile with dense_frac = 0.72 };
        };
      ];
    trace = Join;
    locality = 0.00;
    paper =
      {
        total_time_s = 177.;
        user_time_s = 172.;
        tlb_misses_k = 85974;
        pct_tlb = 50;
        hashed_kb = 119;
      };
  }

let nasa7 =
  {
    name = "nasa7";
    processes =
      [
        {
          pname = "nasa7";
          target_pages = kb 21;
          profile =
            {
              dense_frac = 0.85;
              chunk_pages = (4, 16);
              sparse_frac = 0.005;
              spread_pages = 0x1000L;
            };
        };
      ];
    trace = Array_sweep;
    locality = 0.10;
    paper =
      {
        total_time_s = 387.;
        user_time_s = 385.;
        tlb_misses_k = 152357;
        pct_tlb = 40;
        hashed_kb = 21;
      };
  }

let compress =
  {
    name = "compress";
    processes =
      [
        {
          pname = "compress";
          target_pages = kb 8 * 3 / 4;
          profile =
            {
              dense_frac = 0.85;
              chunk_pages = (6, 12);
              sparse_frac = 0.01;
              spread_pages = 0x8000L;
            };
        };
        {
          pname = "sh";
          target_pages = kb 8 / 4;
          profile =
            {
              dense_frac = 0.80;
              chunk_pages = (4, 10);
              sparse_frac = 0.04;
              spread_pages = 0x80000L (* scattered over 2 GB *);
            };
        };
      ];
    trace = Multiprog;
    locality = 0.30;
    paper =
      {
        total_time_s = 104.;
        user_time_s = 82.;
        tlb_misses_k = 21347;
        pct_tlb = 26;
        hashed_kb = 8;
      };
  }

let fftpde =
  {
    name = "fftpde";
    processes =
      [
        {
          pname = "fftpde";
          target_pages = kb 88;
          profile = { dense_profile with dense_frac = 0.90 };
        };
      ];
    trace = Array_sweep;
    locality = 0.35;
    paper =
      {
        total_time_s = 55.;
        user_time_s = 53.;
        tlb_misses_k = 11280;
        pct_tlb = 21;
        hashed_kb = 88;
      };
  }

let wave5 =
  {
    name = "wave5";
    processes =
      [
        { pname = "wave5"; target_pages = kb 86; profile = dense_profile };
      ];
    trace = Array_sweep;
    locality = 0.50;
    paper =
      {
        total_time_s = 110.;
        user_time_s = 107.;
        tlb_misses_k = 14511;
        pct_tlb = 14;
        hashed_kb = 86;
      };
  }

let mp3d =
  {
    name = "mp3d";
    processes =
      [
        {
          pname = "mp3d";
          target_pages = kb 29;
          profile = { dense_profile with dense_frac = 0.80 };
        };
      ];
    trace = Pointer_chase;
    locality = 0.55;
    paper =
      {
        total_time_s = 36.;
        user_time_s = 36.;
        tlb_misses_k = 4050;
        pct_tlb = 11;
        hashed_kb = 29;
      };
  }

let spice =
  {
    name = "spice";
    processes =
      [
        {
          pname = "spice";
          target_pages = kb 22;
          profile =
            {
              dense_frac = 0.60;
              chunk_pages = (6, 16);
              sparse_frac = 0.03;
              spread_pages = 0x8000L;
            };
        };
      ];
    trace = Pointer_chase;
    locality = 0.70;
    paper =
      {
        total_time_s = 620.;
        user_time_s = 617.;
        tlb_misses_k = 41922;
        pct_tlb = 7;
        hashed_kb = 22;
      };
  }

let pthor =
  {
    name = "pthor";
    processes =
      [
        {
          pname = "pthor";
          target_pages = kb 92;
          profile =
            {
              dense_frac = 0.50;
              chunk_pages = (8, 20);
              sparse_frac = 0.02;
              spread_pages = 0x8000L;
            };
        };
      ];
    trace = Pointer_chase;
    locality = 0.75;
    paper =
      {
        total_time_s = 48.;
        user_time_s = 35.;
        tlb_misses_k = 2580;
        pct_tlb = 7;
        hashed_kb = 92;
      };
  }

let ml =
  {
    name = "ML";
    processes =
      [
        {
          pname = "ml";
          target_pages = kb 194;
          profile = { dense_profile with dense_frac = 0.90 };
        };
      ];
    trace = Gc_scan;
    locality = 0.85;
    paper =
      {
        total_time_s = 950.;
        user_time_s = 919.;
        tlb_misses_k = 38423;
        pct_tlb = 4;
        hashed_kb = 194;
      };
  }

let gcc =
  {
    name = "gcc";
    processes =
      [
        {
          pname = "cc1";
          target_pages = 950;
          profile =
            {
              dense_frac = 0.82;
              chunk_pages = (8, 16);
              sparse_frac = 0.03;
              spread_pages = 0x100000L;
            };
        };
        {
          pname = "make";
          target_pages = 200;
          profile =
            {
              dense_frac = 0.82;
              chunk_pages = (6, 12);
              sparse_frac = 0.04;
              spread_pages = 0x100000L;
            };
        };
        {
          pname = "sh";
          target_pages = 150;
          profile =
            {
              dense_frac = 0.80;
              chunk_pages = (4, 10);
              sparse_frac = 0.04;
              spread_pages = 0x100000L;
            };
        };
        {
          pname = "script";
          target_pages = 150;
          profile =
            {
              dense_frac = 0.80;
              chunk_pages = (4, 10);
              sparse_frac = 0.04;
              spread_pages = 0x100000L;
            };
        };
      ];
    trace = Multiprog;
    locality = 0.90;
    paper =
      {
        total_time_s = 159.;
        user_time_s = 133.;
        tlb_misses_k = 2440;
        pct_tlb = 2;
        hashed_kb = 34;
      };
  }

let kernel =
  {
    name = "kernel";
    processes =
      [
        {
          pname = "kernel";
          target_pages = kb 186;
          profile = { dense_profile with dense_frac = 0.80 };
        };
      ];
    trace = Pointer_chase;
    locality = 0.50;
    paper =
      {
        total_time_s = 0.;
        user_time_s = 0.;
        tlb_misses_k = 0;
        pct_tlb = 0;
        hashed_kb = 186;
      };
  }

let future64 =
  {
    name = "future64";
    processes =
      [
        {
          pname = "objstore";
          target_pages = 60_000 (* a 234 MB resident set *);
          profile =
            {
              dense_frac = 0.25;
              chunk_pages = (8, 32);
              sparse_frac = 0.02;
              spread_pages = 0x10_0000_0000L (* scattered through 16 TB *);
            };
        };
      ];
    trace = Pointer_chase;
    locality = 0.6;
    paper =
      {
        total_time_s = 0.;
        user_time_s = 0.;
        tlb_misses_k = 0;
        pct_tlb = 0;
        hashed_kb = 1406 (* 60000 pages x 24 B *);
      };
  }

let all =
  [ coral; nasa7; compress; fftpde; wave5; mp3d; spice; pthor; ml; gcc ]

let all_with_kernel = all @ [ kernel ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt
    (fun s -> String.lowercase_ascii s.Spec.name = lower)
    (all_with_kernel @ [ future64 ])
