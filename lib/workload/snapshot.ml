type seg_kind = Dense | Chunk | Sparse

type segment = { kind : seg_kind; first_vpn : int64; pages : int }

type proc = { pname : string; segments : segment list }

type t = { workload : string; procs : proc list }

(* Non-overlap bookkeeping: a sorted list of (first, last) VPN
   intervals.  Segment counts are a few hundred, so a list is fine. *)
module Intervals = struct
  let create () : (int64 * int64) list ref = ref []

  let overlaps t first last =
    List.exists
      (fun (f, l) ->
        Int64.unsigned_compare first l <= 0 && Int64.unsigned_compare f last <= 0)
      !t

  let add t first last = t := (first, last) :: !t
end

let place rng used ~base ~spread ~pages =
  let spread = Int64.to_int (Int64.min spread 0x4000000L) in
  let rec try_place attempts =
    if attempts > 200 then
      invalid_arg "Snapshot: cannot place segment (profile too crowded)"
    else begin
      let off = Prng.int rng ~bound:(max 1 spread) in
      let first = Int64.add base (Int64.of_int off) in
      let last = Int64.add first (Int64.of_int (pages - 1)) in
      if Intervals.overlaps used first last then try_place (attempts + 1)
      else begin
        Intervals.add used first last;
        first
      end
    end
  in
  try_place 0

let gen_proc rng (p : Spec.process) =
  let used = Intervals.create () in
  let target = p.Spec.target_pages in
  let prof = p.Spec.profile in
  let dense_total =
    min target (int_of_float (float_of_int target *. prof.Spec.dense_frac))
  in
  (* fractions are clamped so any profile hits its target exactly *)
  let sparse_total =
    min (target - dense_total)
      (int_of_float (float_of_int target *. prof.Spec.sparse_frac))
  in
  let chunk_total = target - dense_total - sparse_total in
  let segments = ref [] in
  (* dense part: text / data / heap, the classic Unix triple *)
  let dense_split = [ (0.10, 0x400L); (0.25, 0x20000L); (0.65, 0x80000L) ] in
  let placed = ref 0 in
  List.iteri
    (fun i (frac, base) ->
      let pages =
        if i = List.length dense_split - 1 then dense_total - !placed
        else int_of_float (float_of_int dense_total *. frac)
      in
      if pages > 0 then begin
        placed := !placed + pages;
        let first_vpn = place rng used ~base ~spread:0x1000L ~pages in
        segments := { kind = Dense; first_vpn; pages } :: !segments
      end)
    dense_split;
  (* bursty chunks: medium objects scattered through the space *)
  let chunk_base = 0x200000L in
  let lo, hi = prof.Spec.chunk_pages in
  let remaining = ref chunk_total in
  while !remaining > 0 do
    let pages = min !remaining (Prng.int_in rng ~lo ~hi) in
    let first_vpn =
      place rng used ~base:chunk_base ~spread:prof.Spec.spread_pages ~pages
    in
    segments := { kind = Chunk; first_vpn; pages } :: !segments;
    remaining := !remaining - pages
  done;
  (* isolated sparse pages *)
  let sparse_base = 0x4000000L in
  for _ = 1 to sparse_total do
    let first_vpn =
      place rng used ~base:sparse_base ~spread:prof.Spec.spread_pages ~pages:1
    in
    segments := { kind = Sparse; first_vpn; pages = 1 } :: !segments
  done;
  { pname = p.Spec.pname; segments = List.rev !segments }

let generate (spec : Spec.t) ~seed =
  let rng = Prng.create ~seed in
  {
    workload = spec.Spec.name;
    procs = List.map (gen_proc rng) spec.Spec.processes;
  }

let proc_pages p = List.fold_left (fun acc s -> acc + s.pages) 0 p.segments

let total_pages t = List.fold_left (fun acc p -> acc + proc_pages p) 0 t.procs

let proc_vpns p =
  let out = Array.make (proc_pages p) 0L in
  let i = ref 0 in
  List.iter
    (fun s ->
      for j = 0 to s.pages - 1 do
        out.(!i) <- Int64.add s.first_vpn (Int64.of_int j);
        incr i
      done)
    p.segments;
  Array.sort Int64.unsigned_compare out;
  out

let runs_of_kind kind p =
  p.segments
  |> List.filter (fun s -> s.kind = kind)
  |> List.map (fun s -> (s.first_vpn, s.pages))
  |> Array.of_list

let dense_runs = runs_of_kind Dense

let chunk_runs = runs_of_kind Chunk

let active_blocks ~subblock_factor p =
  let blocks = Hashtbl.create 256 in
  List.iter
    (fun s ->
      for j = 0 to s.pages - 1 do
        let vpn = Int64.add s.first_vpn (Int64.of_int j) in
        Hashtbl.replace blocks
          (Addr.Vaddr.vpbn_of_vpn ~subblock_factor vpn)
          ()
      done)
    p.segments;
  Hashtbl.length blocks

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "workload %s\n" t.workload;
      List.iter
        (fun p ->
          Printf.fprintf oc "proc %s\n" p.pname;
          List.iter
            (fun s ->
              let kind =
                match s.kind with
                | Dense -> "dense"
                | Chunk -> "chunk"
                | Sparse -> "sparse"
              in
              Printf.fprintf oc "seg %s %Lx %d\n" kind s.first_vpn s.pages)
            p.segments)
        t.procs)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let workload = ref "" and procs = ref [] and segs = ref [] in
      let cur = ref None in
      let flush_proc () =
        match !cur with
        | Some pname ->
            procs := { pname; segments = List.rev !segs } :: !procs;
            segs := []
        | None -> ()
      in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ' ' (String.trim line) with
           | [ "workload"; name ] -> workload := name
           | [ "proc"; pname ] ->
               flush_proc ();
               cur := Some pname
           | [ "seg"; kind; first; pages ] ->
               let kind =
                 match kind with
                 | "dense" -> Dense
                 | "chunk" -> Chunk
                 | "sparse" -> Sparse
                 | k -> failwith ("Snapshot.load: bad segment kind " ^ k)
               in
               segs :=
                 {
                   kind;
                   first_vpn = Int64.of_string ("0x" ^ first);
                   pages = int_of_string pages;
                 }
                 :: !segs
           | [ "" ] | [] -> ()
           | _ -> failwith ("Snapshot.load: bad line: " ^ line)
         done
       with End_of_file -> ());
      flush_proc ();
      { workload = !workload; procs = List.rev !procs })

let pp ppf t =
  Format.fprintf ppf "%s:" t.workload;
  List.iter
    (fun p ->
      Format.fprintf ppf " %s=%dp/%dseg" p.pname (proc_pages p)
        (List.length p.segments))
    t.procs
