let lock = Mutex.create ()

let shards : Metrics.t list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let m = Metrics.create () in
      Mutex.lock lock;
      shards := m :: !shards;
      Mutex.unlock lock;
      m)

let get () = Domain.DLS.get key

let counter name = Metrics.counter (get ()) name

let hist name = Metrics.hist (get ()) name

let all_shards () =
  Mutex.lock lock;
  let l = !shards in
  Mutex.unlock lock;
  l

let merged () =
  let dst = Metrics.create () in
  List.iter (fun src -> Metrics.merge_into ~src ~dst) (all_shards ());
  dst

let reset () = List.iter Metrics.clear (all_shards ())
