type sample = {
  index : int;
  counters : (string * int) list;  (* deltas (mark) or values (push) *)
  quantiles : (string * int * int * int) list;  (* name, p50, p90, p99 *)
}

type group = { label : string; mutable samples : sample list (* reversed *) }

let groups : group list ref = ref []  (* reversed *)

let prev : (string, int) Hashtbl.t = Hashtbl.create 64

let reset () =
  groups := [];
  Hashtbl.reset prev

let group_for label =
  match List.find_opt (fun g -> g.label = label) !groups with
  | Some g -> g
  | None ->
      let g = { label; samples = [] } in
      groups := g :: !groups;
      g

(* Timing metrics ("..._ns", "...op_ns.clustered...") vary run to run;
   the series must stay byte-identical for any --domains, so they are
   excluded. *)
let timing_name name =
  let n = String.length name in
  let rec scan i =
    if i + 3 > n then false
    else if
      name.[i] = '_'
      && name.[i + 1] = 'n'
      && name.[i + 2] = 's'
      && (i + 3 = n || name.[i + 3] = '.')
    then true
    else scan (i + 1)
  in
  scan 0

let push ~label ~index counters =
  let g = group_for label in
  g.samples <- { index; counters; quantiles = [] } :: g.samples

(* Snapshot the merged ambient registry: counter deltas since the last
   [mark] (any label), cumulative p50/p90/p99 per histogram.  Only
   valid at a barrier, where the merge is domain-invariant. *)
let mark ~label ~index =
  let m = Ambient.merged () in
  let counters =
    List.filter_map
      (fun (name, v) ->
        if timing_name name then None
        else begin
          let before =
            match Hashtbl.find_opt prev name with Some p -> p | None -> 0
          in
          Hashtbl.replace prev name v;
          if v = before then None else Some (name, v - before)
        end)
      (Metrics.counters m)
  in
  let quantiles =
    List.filter_map
      (fun (name, h) ->
        if timing_name name || Hist.count h = 0 then None
        else
          Some
            ( name,
              Hist.quantile h ~q:0.5,
              Hist.quantile h ~q:0.9,
              Hist.quantile h ~q:0.99 ))
      (Metrics.hists m)
  in
  let g = group_for label in
  g.samples <- { index; counters; quantiles } :: g.samples

let max_points = 64

let downsample samples =
  let n = List.length samples in
  if n <= max_points then samples
  else begin
    let stride = (n + max_points - 1) / max_points in
    let arr = Array.of_list samples in
    let kept = ref [] in
    let i = ref 0 in
    while !i < n do
      kept := arr.(!i) :: !kept;
      i := !i + stride
    done;
    (* keep the final point so the series ends where the run ended *)
    (match !kept with
    | last :: _ when last != arr.(n - 1) -> kept := arr.(n - 1) :: !kept
    | _ -> ());
    List.rev !kept
  end

let write_sample buf s =
  Buffer.add_string buf (Printf.sprintf "{\"i\":%d,\"counters\":[" s.index);
  List.iteri
    (fun j (name, d) ->
      if j > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":\"";
      Metrics.add_escaped buf name;
      Buffer.add_string buf (Printf.sprintf "\",\"delta\":%d}" d))
    s.counters;
  Buffer.add_string buf "],\"quantiles\":[";
  List.iteri
    (fun j (name, p50, p90, p99) ->
      if j > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":\"";
      Metrics.add_escaped buf name;
      Buffer.add_string buf
        (Printf.sprintf "\",\"p50\":%d,\"p90\":%d,\"p99\":%d}" p50 p90 p99))
    s.quantiles;
  Buffer.add_string buf "]}"

let write_json_fields buf =
  Buffer.add_string buf "\"series\":[";
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"label\":\"";
      Metrics.add_escaped buf g.label;
      Buffer.add_string buf "\",\"points\":[";
      List.iteri
        (fun j s ->
          if j > 0 then Buffer.add_char buf ',';
          write_sample buf s)
        (downsample (List.rev g.samples));
      Buffer.add_string buf "]}")
    (List.rev !groups);
  Buffer.add_char buf ']'

let point_count () =
  List.fold_left (fun acc g -> acc + List.length g.samples) 0 !groups
