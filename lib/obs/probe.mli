(** Structural probes: walk a built page table and histogram the
    shapes the paper's averages hide (Sections 3–4) — hash-chain
    lengths, per-bucket mapping occupancy, and per-node slot
    utilization.

    A probe reads the table through its public inspection interface;
    it never mutates and is meant to run after a build or a run, not
    on the miss path.  Probing histograms {e every} bucket, including
    empty ones, so [Hist.mean report.chain_length] is exactly
    [node_count / buckets] — the load factor the analytic model
    ({!Sim.Analytic}-style alpha) predicts. *)

type report = {
  chain_length : Hist.t;
      (** Nodes per hash-bucket chain (one observation per bucket). *)
  occupancy : Hist.t;
      (** Valid mappings reachable per bucket (one observation per
          bucket). *)
  node_util : Hist.t;
      (** Valid mapping slots used per node: up to the subblock factor
          for a clustered block node, 1 for a hashed base PTE. *)
}

val create : unit -> report

val clustered : ?into:report -> Clustered_pt.Table.t -> report
(** Probe a clustered table.  [into] accumulates across tables (e.g.
    the per-process tables of one workload). *)

val hashed : ?into:report -> Baselines.Hashed_pt.t -> report
(** Probe a hashed table's fine table. *)

val to_metrics : Metrics.t -> prefix:string -> report -> unit
(** Merge the report's histograms into a registry as
    [prefix.chain_length], [prefix.occupancy], [prefix.node_util]. *)

val pp : Format.formatter -> report -> unit
