(** A registry of named counters and {!Hist} histograms.

    One registry is a single-domain object: lookups hand back mutable
    handles ([counter], [hist]) that hot paths cache once and then bump
    without hashing, allocating, or locking.  Cross-domain use goes
    through {!Ambient}, which gives every domain its own shard and
    merges them after the joins.

    JSON output sorts entries by name, so two registries holding the
    same data serialize identically regardless of insertion order. *)

type t

type counter

val create : unit -> t

val counter : t -> string -> counter
(** Find or register the named counter.  Allocates only on first
    registration — cache the handle outside loops. *)

val hist : t -> string -> Hist.t
(** Find or register the named histogram. *)

val incr : counter -> unit
(** Zero allocation. *)

val add : counter -> int -> unit
(** Zero allocation. *)

val value : counter -> int

val clear : t -> unit
(** Zero every counter and histogram, keeping registrations. *)

val merge_into : src:t -> dst:t -> unit
(** Add [src]'s counters and histograms into [dst], registering any
    names [dst] lacks.  Order-independent: merging shards in any order
    yields the same registry. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val hists : t -> (string * Hist.t) list
(** Sorted by name. *)

val equal : t -> t -> bool
(** Equality of contents, ignoring zero-valued counters and empty
    histograms (a registered-but-untouched name is not data). *)

val add_escaped : Buffer.t -> string -> unit
(** Append [s] with JSON string escaping (no surrounding quotes). *)

val write_json_fields : Buffer.t -> t -> unit
(** Append ["counters":[...],"histograms":[...]] — the fields of a
    JSON object, without the surrounding braces, for embedding in a
    larger document. *)

val to_json : t -> string
(** The two fields of {!write_json_fields} wrapped in an object. *)

val to_openmetrics : t -> string
(** Prometheus/OpenMetrics text exposition: each counter as a
    [_total] sample, each histogram as cumulative [_bucket{le="..."}]
    samples (one per nonzero log2 bucket, plus [+Inf]) with [_sum] and
    [_count], terminated by [# EOF].  Dotted metric names are
    sanitized to [[a-zA-Z0-9_:]] and prefixed ["ptsim_"].  Entries are
    sorted by name, so output is deterministic. *)

val pp : Format.formatter -> t -> unit
