(* --- event codes --- *)

let ev_miss = 0

let ev_walk_read = 1

let ev_lock_read = 2

let ev_lock_write = 3

let ev_churn_mmap = 4

let ev_churn_munmap = 5

let ev_churn_protect = 6

let ev_churn_fork = 7

let ev_churn_exit = 8

let ev_churn_touch = 9

let ev_fault_inject = 10

let ev_fault_retry = 11

let ev_fault_abort = 12

let ev_fault_repair = 13

let ev_seqlock_retry = 14

let ev_seqlock_fallback = 15

let names =
  [|
    "miss";
    "walk_read";
    "lock_read";
    "lock_write";
    "churn_mmap";
    "churn_munmap";
    "churn_protect";
    "churn_fork";
    "churn_exit";
    "churn_touch";
    "fault_inject";
    "fault_retry";
    "fault_abort";
    "fault_repair";
    "seqlock_retry";
    "seqlock_fallback";
  |]

let name_of_code c =
  if c >= 0 && c < Array.length names then names.(c) else "event"

(* --- state --- *)

type ring = {
  tid : int;
  cap : int;
  codes : int array;
  phases : Bytes.t;
  args : int array;
  stamps : int array;
  mutable pos : int;  (* next write slot *)
  mutable total : int;  (* events ever recorded *)
}

let on = Atomic.make false

let clock = Atomic.make 0

let ring_capacity = Atomic.make 65536

let lock = Mutex.create ()

let rings : ring list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let cap = Atomic.get ring_capacity in
      let r =
        {
          tid = (Domain.self () :> int);
          cap;
          codes = Array.make cap 0;
          phases = Bytes.make cap 'i';
          args = Array.make cap 0;
          stamps = Array.make cap 0;
          pos = 0;
          total = 0;
        }
      in
      Mutex.lock lock;
      rings := r :: !rings;
      Mutex.unlock lock;
      r)

let enabled () = Atomic.get on

let enable ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Tracer.enable: capacity must be positive";
  Atomic.set ring_capacity capacity;
  Atomic.set on true

let disable () = Atomic.set on false

let all_rings () =
  Mutex.lock lock;
  let l = !rings in
  Mutex.unlock lock;
  l

let reset () =
  List.iter
    (fun r ->
      r.pos <- 0;
      r.total <- 0)
    (all_rings ());
  Atomic.set clock 0

(* --- recording --- *)

let record phase code arg =
  let r = Domain.DLS.get key in
  let i = r.pos in
  r.codes.(i) <- code;
  Bytes.unsafe_set r.phases i phase;
  r.args.(i) <- arg;
  r.stamps.(i) <- Atomic.fetch_and_add clock 1;
  r.pos <- (if i + 1 = r.cap then 0 else i + 1);
  r.total <- r.total + 1

let begin_ code arg = if Atomic.get on then record 'B' code arg

let end_ code = if Atomic.get on then record 'E' code 0

let instant code arg = if Atomic.get on then record 'i' code arg

(* --- export --- *)

let held r = min r.total r.cap

let event_count () =
  List.fold_left (fun acc r -> acc + held r) 0 (all_rings ())

let dropped_count () =
  List.fold_left (fun acc r -> acc + (r.total - held r)) 0 (all_rings ())

let export_drop_counter m =
  Metrics.add (Metrics.counter m "obs.trace.dropped") (dropped_count ())

let to_chrome_json () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit r =
    let n = held r in
    let start = if r.total <= r.cap then 0 else r.pos in
    for j = 0 to n - 1 do
      let i = (start + j) mod r.cap in
      if not !first then Buffer.add_char buf ',';
      first := false;
      let ph = Bytes.get r.phases i in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"pt\",\"ph\":\"%c\",%s\"ts\":%d,\"pid\":0,\"tid\":%d,\"args\":{\"v\":%d}}"
           (name_of_code r.codes.(i))
           ph
           (if ph = 'i' then "\"s\":\"t\"," else "")
           r.stamps.(i) r.tid r.args.(i))
    done
  in
  (* sort rings by tid so the file is deterministic regardless of
     which domain registered first *)
  List.iter emit
    (List.sort (fun a b -> compare a.tid b.tid) (all_rings ()));
  Buffer.add_string buf "]}";
  Buffer.contents buf
