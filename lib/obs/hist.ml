type t = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;
}

let bucket_count = 64

let create () =
  {
    count = 0;
    sum = 0;
    vmin = max_int;
    vmax = min_int;
    buckets = Array.make bucket_count 0;
  }

(* Bucket 0 for v <= 0; otherwise 1 + floor(log2 v), so bucket k holds
   [2^(k-1), 2^k - 1].  A loop, not a float log: no allocation and no
   rounding at bucket edges. *)
let index_of_value v =
  if v <= 0 then 0
  else begin
    let x = ref v and i = ref 0 in
    while !x > 0 do
      incr i;
      x := !x lsr 1
    done;
    !i
  end

let observe t v =
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let i = index_of_value v in
  t.buckets.(i) <- t.buckets.(i) + 1

let clear t =
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- min_int;
  Array.fill t.buckets 0 bucket_count 0

let count t = t.count

let sum t = t.sum

let min_value t = if t.count = 0 then 0 else t.vmin

let max_value t = if t.count = 0 then 0 else t.vmax

let mean t =
  if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let bucket_lo k = if k <= 0 then 0 else 1 lsl (k - 1)

let bucket_hi k = if k <= 0 then 0 else (1 lsl k) - 1

let iter_nonzero t f =
  for k = 0 to bucket_count - 1 do
    if t.buckets.(k) <> 0 then f k t.buckets.(k)
  done

let merge_into ~src ~dst =
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.vmin < dst.vmin then dst.vmin <- src.vmin;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax;
  for k = 0 to bucket_count - 1 do
    dst.buckets.(k) <- dst.buckets.(k) + src.buckets.(k)
  done

let copy t =
  let c = create () in
  merge_into ~src:t ~dst:c;
  c

let equal a b =
  a.count = b.count && a.sum = b.sum
  && a.buckets = b.buckets
  && (a.count = 0 || (a.vmin = b.vmin && a.vmax = b.vmax))

(* The q-quantile with within-bucket interpolation.  The rank walk
   finds the bucket holding rank [ceil (q * count)]; within it the
   estimate moves linearly from the bucket's clamped lower bound (first
   rank) to its clamped upper bound (last rank).  Clamping to
   [vmin, vmax] makes a single distinct value exact and keeps every
   estimate inside the observed range; bucket 0 (values <= 0) extends
   down to the observed minimum, since its nominal bounds are [0, 0].
   Monotone in [q]: within a bucket the rank interpolation is
   nondecreasing, and a bucket's clamped upper bound never exceeds the
   next nonempty bucket's clamped lower bound. *)
let quantile t ~q =
  if not (q > 0.0 && q <= 1.0) then
    invalid_arg "Hist.quantile: q must be in (0, 1]";
  if t.count = 0 then 0
  else begin
    let target =
      max 1 (min t.count (int_of_float (Float.ceil (q *. float_of_int t.count))))
    in
    let seen = ref 0 and result = ref (max_value t) in
    (try
       for k = 0 to bucket_count - 1 do
         let here = t.buckets.(k) in
         if here <> 0 && !seen + here >= target then begin
           let lo =
             if k = 0 then min 0 t.vmin else max (bucket_lo k) t.vmin
           in
           let hi = min (bucket_hi k) t.vmax in
           let pos = target - !seen in
           (* rank 1 -> lo, rank [here] -> hi; integer interpolation
              rounding toward hi so one-observation buckets keep the
              old upper-bound semantics *)
           result :=
             (if here = 1 then hi
              else hi - ((hi - lo) * (here - pos) / (here - 1)));
           raise Exit
         end;
         seen := !seen + here
       done
     with Exit -> ());
    !result
  end

let pp ppf t =
  Format.fprintf ppf "count=%d mean=%.3f min=%d max=%d" t.count (mean t)
    (min_value t) (max_value t);
  let widest =
    let w = ref 0 in
    iter_nonzero t (fun _ c -> if c > !w then w := c);
    !w
  in
  iter_nonzero t (fun k c ->
      let bar = if widest = 0 then 0 else max 1 (c * 40 / widest) in
      Format.fprintf ppf "@\n  [%6d, %6d] %8d %s" (bucket_lo k) (bucket_hi k)
        c
        (String.make bar '#'))
