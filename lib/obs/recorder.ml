(* --- operation kind codes --- *)

let k_insert = 0

let k_remove = 1

let k_lookup = 2

let k_protect = 3

let k_map = 4

let k_unmap = 5

let k_touch = 6

let k_fork = 7

let k_exit = 8

let k_read = 9

let k_write = 10

let k_crash = 11

let k_abort = 12

let k_retry = 13

let kind_names =
  [|
    "insert";
    "remove";
    "lookup";
    "protect";
    "map";
    "unmap";
    "touch";
    "fork";
    "exit";
    "read";
    "write";
    "crash";
    "abort";
    "retry";
  |]

let kind_name k =
  if k >= 0 && k < Array.length kind_names then kind_names.(k) else "op"

(* --- lock-mode codes --- *)

let l_none = 0

let l_striped = 1

let l_global = 2

let l_seqlock = 3

let lock_names = [| "none"; "striped"; "global"; "seqlock" |]

let lock_name l =
  if l >= 0 && l < Array.length lock_names then lock_names.(l) else "lock"

(* --- state --- *)

(* One ring per logical stream, not per domain: a stream is owned by
   exactly one worker at a time (streams are dealt round-robin to
   workers), so stream rings need no locking, and the recorded tail
   for a given seed is identical for any --domains.  Event fields live
   in parallel int arrays so [record] allocates nothing. *)
type ring = {
  cap : int;
  kinds : int array;
  asids : int array;
  vpns : int array;
  pages : int array;
  locks : int array;
  attempts : int array;
  faults : int array;
  lats : int array;
  mutable pos : int;  (* next write slot *)
  mutable total : int;  (* events ever recorded *)
}

type t = { rings : ring array }

let live : t option Atomic.t = Atomic.make None

let make_ring cap =
  {
    cap;
    kinds = Array.make cap 0;
    asids = Array.make cap 0;
    vpns = Array.make cap 0;
    pages = Array.make cap 0;
    locks = Array.make cap 0;
    attempts = Array.make cap 0;
    faults = Array.make cap 0;
    lats = Array.make cap 0;
    pos = 0;
    total = 0;
  }

let arm ~streams ~capacity =
  if streams < 1 then invalid_arg "Recorder.arm: streams must be positive";
  if capacity < 1 then invalid_arg "Recorder.arm: capacity must be positive";
  Atomic.set live (Some { rings = Array.init streams (fun _ -> make_ring capacity) })

let disarm () = Atomic.set live None

let armed () = Atomic.get live <> None

let record ~stream ~kind ~asid ~vpn ~pages ~lock ~attempt ~fault ~lat =
  match Atomic.get live with
  | None -> ()
  | Some t ->
      if stream >= 0 && stream < Array.length t.rings then begin
        let r = t.rings.(stream) in
        let i = r.pos in
        r.kinds.(i) <- kind;
        r.asids.(i) <- asid;
        r.vpns.(i) <- vpn;
        r.pages.(i) <- pages;
        r.locks.(i) <- lock;
        r.attempts.(i) <- attempt;
        r.faults.(i) <- fault;
        r.lats.(i) <- lat;
        r.pos <- (if i + 1 = r.cap then 0 else i + 1);
        r.total <- r.total + 1
      end

let held r = min r.total r.cap

let event_count () =
  match Atomic.get live with
  | None -> 0
  | Some t -> Array.fold_left (fun acc r -> acc + held r) 0 t.rings

(* --- crash dump --- *)

let write_event buf r i =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"kind\":\"%s\",\"asid\":%d,\"vpn\":%d,\"pages\":%d,\"lock\":\"%s\",\"attempt\":%d,\"fault\":%d,\"lat\":%d}"
       (kind_name r.kinds.(i))
       r.asids.(i) r.vpns.(i) r.pages.(i)
       (lock_name r.locks.(i))
       r.attempts.(i) r.faults.(i) r.lats.(i))

let dump_json ?last ~label () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema_version\":1,\"kind\":\"crash_dump\",\"label\":\"%s\""
       label);
  Buffer.add_string buf ",\"streams\":[";
  (match Atomic.get live with
  | None -> ()
  | Some t ->
      Array.iteri
        (fun s r ->
          if s > 0 then Buffer.add_char buf ',';
          let n = held r in
          let keep = match last with None -> n | Some k -> min k n in
          let start =
            (* oldest retained slot, advanced to keep only [keep] *)
            let oldest = if r.total <= r.cap then 0 else r.pos in
            (oldest + (n - keep)) mod r.cap
          in
          Buffer.add_string buf
            (Printf.sprintf "{\"stream\":%d,\"recorded\":%d,\"events\":[" s
               r.total);
          for j = 0 to keep - 1 do
            if j > 0 then Buffer.add_char buf ',';
            write_event buf r ((start + j) mod r.cap)
          done;
          Buffer.add_string buf "]}")
        t.rings);
  Buffer.add_string buf "]}";
  Buffer.contents buf
