(** Per-domain metric shards.

    Threading a registry through every entry point of the simulator
    would touch twenty signatures; instead each domain lazily gets its
    own private {!Metrics.t} shard (domain-local storage), instrumented
    code bumps the current domain's shard with no locking or sharing,
    and a reader merges all shards after the parallel sections join.

    Because {!Metrics.merge_into} is a commutative, associative sum,
    the merged registry does not depend on how work was split over
    domains: an experiment that is bit-identical for any [--domains]
    count produces bit-identical merged metrics too.

    Shards persist for the life of their domain; [reset] zeroes every
    shard's contents (call it at the start of a CLI run).  [merged]
    must only be called while no other domain is mutating its shard —
    i.e. after the pool joins, which is the only place the runner reads
    metrics. *)

val get : unit -> Metrics.t
(** The calling domain's shard. *)

val counter : string -> Metrics.counter
(** [Metrics.counter (get ()) name] — cache the handle in setup code
    running on the domain that will bump it. *)

val hist : string -> Hist.t

val merged : unit -> Metrics.t
(** A fresh registry holding the sum of every live shard. *)

val reset : unit -> unit
(** Zero the contents of every shard (registrations persist). *)
