(** Per-round / per-phase time-series sampler over the ambient
    metrics.

    Long-running drivers call {!mark} at every round barrier: it
    snapshots the merged ambient registry and stores counter deltas
    since the previous mark plus cumulative p50/p90/p99 per histogram.
    Because the merge at a barrier is domain-invariant and timing
    metrics (names ending [_ns] or containing [_ns.]) are excluded,
    the emitted series is byte-identical for any [--domains] count.

    Drivers without barriers (churn's independent per-row jobs) use
    {!push} with values they computed deterministically themselves.

    State is global and single-writer: call {!mark}/{!push} only from
    the main domain at a barrier, and {!reset} at the start of a CLI
    run (the telemetry wrapper does). *)

val reset : unit -> unit

val mark : label:string -> index:int -> unit
(** Record one point for [label] at position [index]: nonzero counter
    deltas since the previous [mark] (of any label) and cumulative
    histogram quantiles.  Only call at a barrier. *)

val push : label:string -> index:int -> (string * int) list -> unit
(** Record a driver-computed point: [(name, value)] pairs stored
    verbatim (no delta against ambient state). *)

val point_count : unit -> int

val write_json_fields : Buffer.t -> unit
(** Append ["series":[{"label":...,"points":[...]}]] — a field for
    embedding in the metrics JSON document.  Each label's points are
    downsampled to at most 64 (even stride, final point kept); labels
    appear in first-recorded order, points in record order. *)
