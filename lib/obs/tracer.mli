(** Bounded ring-buffer event tracer with a Chrome trace-event
    exporter.

    Each domain owns a preallocated ring (the {!Mem.Walk_acc} idiom:
    parallel int arrays, no per-event boxing); recording an event
    writes four array slots and takes one ticket from a global atomic
    logical clock.  When the ring fills it wraps, keeping the most
    recent [capacity] events per domain.

    Cost discipline: with tracing disabled every emit point is a
    single atomic-load-and-branch — no allocation, no ring access —
    so instrumented hot paths stay allocation-free and the benchmark
    baselines are unaffected.  With tracing enabled, recording
    allocates nothing after a domain's first event (which builds its
    ring).

    Timestamps are logical (a global sequence number), not wall-clock:
    exported traces are deterministic for deterministic runs and still
    order events globally.  The exporter emits Chrome trace-event JSON
    ([{"traceEvents":[...]}]) loadable in Perfetto or
    [about://tracing]; durations use ph "B"/"E" pairs, point events ph
    "i". *)

(** {2 Event codes} *)

val ev_miss : int
(** A TLB miss being serviced (B/E pair around the walk + fill). *)

val ev_walk_read : int
(** One page-table read during a walk; arg = bytes read. *)

val ev_lock_read : int
(** A service read lock held (B/E pair); arg = stripe (bucket) or -1
    for the global lock. *)

val ev_lock_write : int
(** A service write lock held (B/E pair); arg as [ev_lock_read]. *)

val ev_churn_mmap : int

val ev_churn_munmap : int

val ev_churn_protect : int

val ev_churn_fork : int

val ev_churn_exit : int

val ev_churn_touch : int
(** Churn ops are instant events; arg = operation-specific size (pages
    touched, etc.). *)

val ev_fault_inject : int
(** An injected fault observed by the service (instant; arg = fault
    site ordinal). *)

val ev_fault_retry : int
(** A self-healing retry of a faulted operation (instant; arg = the
    attempt ordinal being started). *)

val ev_fault_abort : int
(** An operation abandoned after exhausting its retry budget
    (instant; arg = attempts made). *)

val ev_fault_repair : int
(** An fsck repair pass (instant; arg = entries dropped). *)

val ev_seqlock_retry : int
(** An optimistic seqlock walk invalidated by writer interference and
    retried (instant; arg = bucket). *)

val ev_seqlock_fallback : int
(** An optimistic walk that exhausted its retry budget and took the
    striped read lock (instant; arg = bucket). *)

val name_of_code : int -> string

(** {2 Control} *)

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Turn recording on.  [capacity] (default 65536) sizes rings created
    from now on; rings already built by earlier enables keep their
    size. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded events and restart the logical clock. *)

(** {2 Recording (hot path)} *)

val begin_ : int -> int -> unit
(** [begin_ code arg] opens a duration slice. *)

val end_ : int -> unit

val instant : int -> int -> unit
(** [instant code arg]. *)

(** {2 Export} *)

val event_count : unit -> int
(** Events currently held across all rings (post-wrap). *)

val dropped_count : unit -> int
(** Events lost to ring wrap-around. *)

val export_drop_counter : Metrics.t -> unit
(** Add {!dropped_count} to the [obs.trace.dropped] counter in [m], so
    ring overflow is visible in the metrics JSON and not only in the
    trace footer.  Only call after parallel sections join. *)

val to_chrome_json : unit -> string
(** Only call after parallel sections join. *)
