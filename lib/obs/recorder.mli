(** Always-on flight recorder: fixed-capacity rings of structured
    operation events, dumped as a JSON crash dump on failure.

    Rings are per {e logical stream}, not per domain.  Drivers deal
    streams round-robin to worker domains, so a stream is written by
    exactly one worker at a time: recording needs no locking, and —
    because the per-stream operation sequence is seed-determined — the
    retained tail is bit-identical for any [--domains].  Event fields
    live in parallel int arrays; {!record} allocates nothing, and when
    the recorder is disarmed every call site is a single atomic load
    and branch.

    The [lat] field is a logical cost (pages touched, retries — never
    wall-clock), keeping dumps deterministic.  [fault] carries the
    armed-fault-site bitmask for the operation (0 when no plan is
    active), and [attempt] the self-healing retry ordinal.

    Arm/disarm/dump only from the main domain, outside parallel
    sections. *)

(** {2 Operation kinds} *)

val k_insert : int

val k_remove : int

val k_lookup : int

val k_protect : int

val k_map : int

val k_unmap : int

val k_touch : int

val k_fork : int

val k_exit : int

val k_read : int

val k_write : int

val k_crash : int
(** A domain-crash fault firing mid-operation. *)

val k_abort : int
(** An operation abandoned after exhausting its retry budget. *)

val k_retry : int
(** A self-healing retry being started. *)

val kind_name : int -> string

(** {2 Lock modes} *)

val l_none : int

val l_striped : int

val l_global : int

val l_seqlock : int

val lock_name : int -> string

(** {2 Control} *)

val arm : streams:int -> capacity:int -> unit
(** Allocate one ring of [capacity] events per stream and start
    recording.  Replaces any previous arming. *)

val disarm : unit -> unit

val armed : unit -> bool

(** {2 Recording (hot path)} *)

val record :
  stream:int ->
  kind:int ->
  asid:int ->
  vpn:int ->
  pages:int ->
  lock:int ->
  attempt:int ->
  fault:int ->
  lat:int ->
  unit
(** Append one event to [stream]'s ring, overwriting the oldest on
    wrap.  No-op when disarmed or [stream] is out of range.  Zero
    allocation. *)

(** {2 Crash dump} *)

val event_count : unit -> int
(** Events currently held across all rings (post-wrap). *)

val dump_json : ?last:int -> label:string -> unit -> string
(** The retained event tail per stream as a JSON document
    ([{"kind":"crash_dump",...}]).  [last] keeps only the most recent
    that many events per stream (default: all retained).  Streams
    appear in index order; with a disarmed recorder the stream list is
    empty. *)
