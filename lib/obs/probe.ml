module Table = Clustered_pt.Table
module Hashed = Baselines.Hashed_pt

type report = {
  chain_length : Hist.t;
  occupancy : Hist.t;
  node_util : Hist.t;
}

let create () =
  {
    chain_length = Hist.create ();
    occupancy = Hist.create ();
    node_util = Hist.create ();
  }

let or_fresh = function Some r -> r | None -> create ()

let clustered ?into t =
  let r = or_fresh into in
  let cfg = Table.config t in
  let factor = cfg.Clustered_pt.Config.subblock_factor in
  let factor_bits = Addr.Bits.log2_exact factor in
  let unit_shift =
    cfg.Clustered_pt.Config.page_shift - Addr.Page_size.base_shift
  in
  for bucket = 0 to Table.buckets t - 1 do
    Hist.observe r.chain_length (Table.chain_length t ~bucket);
    (* a chain can hold several nodes with one tag (Section 5:
       superpage node + residual base node); summarize each distinct
       page block once *)
    let tags = ref [] in
    Table.iter_chain_tags t ~bucket (fun tag ->
        if not (List.mem tag !tags) then tags := tag :: !tags);
    let occupancy = ref 0 in
    List.iter
      (fun tag ->
        let vpn = Int64.shift_left tag (factor_bits + unit_shift) in
        let s = Table.block_summary t ~vpn in
        let util =
          min factor
            (Addr.Bits.popcount
               (Int64.of_int (s.Table.base_vmask lor s.Table.psb_vmask))
            + min s.Table.superpage_pages factor)
        in
        Hist.observe r.node_util util;
        occupancy := !occupancy + util)
      !tags;
    Hist.observe r.occupancy !occupancy
  done;
  r

let hashed ?into t =
  let r = or_fresh into in
  let factor = Hashed.subblock_factor t in
  let factor_mask = (1 lsl factor) - 1 in
  let util_of_word word =
    match Pte.Word.decode word with
    | Pte.Word.Base b -> if b.valid then 1 else 0
    | Pte.Word.Superpage sp ->
        if sp.valid then min (Addr.Page_size.base_pages sp.size) factor else 0
    | Pte.Word.Psb p ->
        Addr.Bits.popcount (Int64.of_int (p.vmask land factor_mask))
  in
  for bucket = 0 to Hashed.buckets t - 1 do
    Hist.observe r.chain_length (Hashed.chain_length t ~bucket);
    let occupancy = ref 0 in
    Hashed.iter_chain_words t ~bucket (fun word ->
        let util = util_of_word word in
        Hist.observe r.node_util util;
        occupancy := !occupancy + util);
    Hist.observe r.occupancy !occupancy
  done;
  r

let to_metrics m ~prefix r =
  Hist.merge_into ~src:r.chain_length
    ~dst:(Metrics.hist m (prefix ^ ".chain_length"));
  Hist.merge_into ~src:r.occupancy
    ~dst:(Metrics.hist m (prefix ^ ".occupancy"));
  Hist.merge_into ~src:r.node_util
    ~dst:(Metrics.hist m (prefix ^ ".node_util"))

let pp ppf r =
  Format.fprintf ppf "chain length (nodes/bucket): %a@\n" Hist.pp
    r.chain_length;
  Format.fprintf ppf "bucket occupancy (mappings/bucket): %a@\n" Hist.pp
    r.occupancy;
  Format.fprintf ppf "node utilization (mappings/node): %a" Hist.pp
    r.node_util
