(** Fixed-bucket log2 histogram.

    Values land in power-of-two buckets: bucket 0 holds values [<= 0],
    bucket [k >= 1] holds values in [[2^(k-1), 2^k - 1]].  Alongside
    the buckets the histogram keeps the exact count, sum, minimum and
    maximum, so the mean is exact even though the distribution is
    bucketed.

    [observe] allocates nothing — it is safe on the per-TLB-miss hot
    path.  Merging is a field-wise sum (min/max fold), so it is
    associative and commutative: per-domain shards merged in any order
    produce the same histogram as a single-domain run over the same
    observations. *)

type t

val bucket_count : int
(** Number of buckets (64: one underflow bucket plus one per power of
    two an OCaml [int] can hold). *)

val create : unit -> t

val observe : t -> int -> unit
(** Record one value.  Zero allocation. *)

val clear : t -> unit

val count : t -> int

val sum : t -> int

val min_value : t -> int
(** 0 when the histogram is empty. *)

val max_value : t -> int
(** 0 when the histogram is empty. *)

val mean : t -> float
(** Exact mean ([sum/count]); 0 when empty. *)

val quantile : t -> q:float -> int
(** [quantile t ~q] estimates the [q]-quantile of the observed values
    with within-bucket interpolation: the rank [ceil (q * count)] is
    located in its bucket, and the estimate moves linearly from the
    bucket's lower bound (first rank in the bucket) to its upper bound
    (last rank), both clamped to the observed [min]/[max].  The
    estimate is monotone in [q], always within [[min_value t,
    max_value t]], and exact when all observations share one bucket
    boundary value (in particular for a single distinct value).  0
    when the histogram is empty.  Raises [Invalid_argument] unless
    [0 < q <= 1]. *)

val bucket_lo : int -> int
(** Smallest value landing in bucket [k]. *)

val bucket_hi : int -> int
(** Largest value landing in bucket [k]. *)

val iter_nonzero : t -> (int -> int -> unit) -> unit
(** [iter_nonzero t f] calls [f k count] for every bucket with a
    nonzero count, in increasing bucket order. *)

val merge_into : src:t -> dst:t -> unit
(** Add [src]'s observations into [dst].  [src] is unchanged. *)

val copy : t -> t

val equal : t -> t -> bool
(** Structural equality of the observation multiset as the histogram
    sees it: counts, sums, bucket contents, and (when nonempty)
    min/max. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering: summary line plus one bar per nonzero
    bucket. *)
