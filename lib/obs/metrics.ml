type counter = { mutable value : int }

type t = {
  counters : (string, counter) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; hists = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { value = 0 } in
      Hashtbl.add t.counters name c;
      c

let hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = Hist.create () in
      Hashtbl.add t.hists name h;
      h

let incr c = c.value <- c.value + 1

let add c n = c.value <- c.value + n

let value c = c.value

let clear t =
  Hashtbl.iter (fun _ c -> c.value <- 0) t.counters;
  Hashtbl.iter (fun _ h -> Hist.clear h) t.hists

let merge_into ~src ~dst =
  Hashtbl.iter
    (fun name (c : counter) ->
      let d = counter dst name in
      d.value <- d.value + c.value)
    src.counters;
  Hashtbl.iter
    (fun name h -> Hist.merge_into ~src:h ~dst:(hist dst name))
    src.hists

let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let counters t =
  by_name (Hashtbl.fold (fun k c acc -> (k, c.value) :: acc) t.counters [])

let hists t = by_name (Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.hists [])

let equal a b =
  let nonzero l = List.filter (fun (_, v) -> v <> 0) l in
  let nonempty l = List.filter (fun (_, h) -> Hist.count h <> 0) l in
  nonzero (counters a) = nonzero (counters b)
  &&
  let ha = nonempty (hists a) and hb = nonempty (hists b) in
  List.length ha = List.length hb
  && List.for_all2
       (fun (na, va) (nb, vb) -> String.equal na nb && Hist.equal va vb)
       ha hb

(* --- JSON --- *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let write_json_fields buf t =
  Buffer.add_string buf "\"counters\":[";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":\"";
      add_escaped buf name;
      Buffer.add_string buf (Printf.sprintf "\",\"value\":%d}" v))
    (counters t);
  Buffer.add_string buf "],\"histograms\":[";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":\"";
      add_escaped buf name;
      Buffer.add_string buf
        (Printf.sprintf "\",\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d"
           (Hist.count h) (Hist.sum h) (Hist.min_value h) (Hist.max_value h));
      Buffer.add_string buf ",\"buckets\":[";
      let first = ref true in
      Hist.iter_nonzero h (fun k c ->
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf
            (Printf.sprintf "{\"lo\":%d,\"hi\":%d,\"count\":%d}"
               (Hist.bucket_lo k) (Hist.bucket_hi k) c));
      Buffer.add_string buf "]}")
    (hists t);
  Buffer.add_char buf ']'

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '{';
  write_json_fields buf t;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* --- OpenMetrics (Prometheus text exposition) --- *)

(* Metric names allow only [a-zA-Z0-9_:]; our dotted names become
   underscored ("throughput.ops.insert" -> "ptsim_throughput_ops_insert"). *)
let add_sanitized buf name =
  Buffer.add_string buf "ptsim_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
          Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name

let to_openmetrics t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf "# TYPE ";
      add_sanitized buf name;
      Buffer.add_string buf " counter\n";
      add_sanitized buf name;
      Buffer.add_string buf (Printf.sprintf "_total %d\n" v))
    (counters t);
  List.iter
    (fun (name, h) ->
      Buffer.add_string buf "# TYPE ";
      add_sanitized buf name;
      Buffer.add_string buf " histogram\n";
      let cum = ref 0 in
      Hist.iter_nonzero h (fun k c ->
          cum := !cum + c;
          add_sanitized buf name;
          Buffer.add_string buf
            (Printf.sprintf "_bucket{le=\"%d\"} %d\n" (Hist.bucket_hi k) !cum));
      add_sanitized buf name;
      Buffer.add_string buf
        (Printf.sprintf "_bucket{le=\"+Inf\"} %d\n" (Hist.count h));
      add_sanitized buf name;
      Buffer.add_string buf (Printf.sprintf "_sum %d\n" (Hist.sum h));
      add_sanitized buf name;
      Buffer.add_string buf (Printf.sprintf "_count %d\n" (Hist.count h)))
    (hists t);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let pp ppf t =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@\n" name v)
    (counters t);
  List.iter
    (fun (name, h) -> Format.fprintf ppf "%s: %a@\n" name Hist.pp h)
    (hists t)
