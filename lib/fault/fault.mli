(** Deterministic fault injection.

    A {!plan} is a pure function of [(seed, site, key, attempt)]: it
    names, up front, every point at which this run will fail.  Code
    under test asks the globally installed plan whether the fault at a
    named {!site} is {e armed} for the operation identified by the
    calling domain's current context ([key] — typically
    [stream * ops + op] — and [attempt], the retry ordinal).  Because
    the decision depends only on those integers, never on scheduling,
    wall-clock or allocation order, a fault soak injects the same
    faults at the same operations for any [--domains] count — the
    property the faultsim invariance tests pin down.

    Cost discipline: with no plan installed, every injection site is
    one atomic load and branch — hot paths stay allocation-free and
    fault-free builds measure nothing new.  Sites also stay silent
    while the calling domain has no context set, so installing a plan
    perturbs only code the driver explicitly keys. *)

(** {2 Sites} *)

type site =
  | Alloc_node  (** page-table node acquisition ({!Clustered_pt.Table}) *)
  | Alloc_phys  (** physical frame allocation ({!Mem.Phys_alloc}) *)
  | Lock_timeout  (** lock acquisition ({!Clustered_pt.Bucket_lock.Real}) *)
  | Domain_crash  (** worker-domain death ({!Exec.Worker_pool} jobs) *)
  | Torn_write  (** a multi-word PTE update torn halfway (service) *)
  | Seqlock_stall
      (** a writer held mid-bump of a bucket sequence counter, forcing
          concurrent optimistic readers through retry/fallback
          (service, seqlock mode) *)
  | Replica_write
      (** an eager fan-out write to a non-primary NUMA replica dropped
          before it applies — the bucket degrades to lazy and must be
          healed by pull-on-read catch-up ({!Numa.Replicated}) *)
  | Shard_crash
      (** a whole durable shard killed mid-operation: the write-ahead
          log keeps the bytes already flushed (possibly a torn record
          tail), the in-memory table is lost, and the fleet must
          rebuild the shard from checkpoint + WAL replay
          ({!Durable.Shard}, {!Fleet.Chaos_sim}) *)

val all_sites : site list

val site_name : site -> string

val site_of_name : string -> site option

exception Injected of { site : site; key : int }
(** Raised by {!fire} at an armed site.  Deterministic given the plan
    and context. *)

(** {2 Plans} *)

type plan

val plan : ?rate_ppm:int -> ?sites:site list -> seed:int -> unit -> plan
(** A plan arming [sites] (default: all) with probability
    [rate_ppm] / 1e6 (default 20_000, i.e. 2%) per (site, key,
    attempt) triple. *)

val decide : plan -> site:site -> key:int -> attempt:int -> bool
(** Pure: same arguments, same answer, on any domain. *)

val seed : plan -> int

val rate_ppm : plan -> int

val sites : plan -> site list

(** {2 The installed plan and per-domain context} *)

val install : plan -> unit
(** Make [plan] the process-wide active plan and zero the tallies. *)

val deactivate : unit -> unit
(** Remove the active plan; every site goes back to one-branch cost. *)

val active : unit -> bool

val with_plan : plan -> (unit -> 'a) -> 'a
(** [install], run, [deactivate] (also on exception). *)

val set_context : key:int -> unit
(** Set the calling domain's operation key and reset its attempt to 0.
    Sites only arm while a context is set. *)

val set_attempt : int -> unit
(** Update the retry ordinal of the current operation (the key is
    unchanged). *)

val clear_context : unit -> unit

val context_key : unit -> int
(** The calling domain's current key, or -1 when no context is set. *)

val suspended : (unit -> 'a) -> 'a
(** Run [f] with the calling domain's context cleared — all sites
    silent — then restore the saved key and attempt.  Recovery code
    (journal rollback, fsck repair) wraps itself in this so undoing a
    fault can never inject another one. *)

(** {2 Injection sites (hot path)} *)

val armed : site -> bool
(** Whether the active plan arms [site] for the calling domain's
    current (key, attempt).  False when no plan or no context. *)

val trip : site -> bool
(** {!armed}, plus: when armed, tally the injection and return true.
    For sites that fail by return value (e.g. an allocator returning
    [None]). *)

val fire : site -> unit
(** {!trip}, raising {!Injected} when armed.  For sites that fail by
    exception. *)

(** {2 Degraded-mode accounting}

    Atomic process-wide counters, deterministic for a deterministic
    run; zeroed by {!install}. *)

val injected : site -> int
(** Faults tripped or fired at [site] since {!install}. *)

val injected_total : unit -> int

val note_retry : unit -> unit

val note_abort : unit -> unit

val note_restart : unit -> unit

val note_repair : unit -> unit

val retries : unit -> int

val aborts : unit -> int

val restarts : unit -> int

val repairs : unit -> int

val reset_tallies : unit -> unit
