type site =
  | Alloc_node
  | Alloc_phys
  | Lock_timeout
  | Domain_crash
  | Torn_write
  | Seqlock_stall
  | Replica_write
  | Shard_crash

let all_sites =
  [
    Alloc_node;
    Alloc_phys;
    Lock_timeout;
    Domain_crash;
    Torn_write;
    Seqlock_stall;
    Replica_write;
    Shard_crash;
  ]

let site_name = function
  | Alloc_node -> "alloc_node"
  | Alloc_phys -> "alloc_phys"
  | Lock_timeout -> "lock_timeout"
  | Domain_crash -> "domain_crash"
  | Torn_write -> "torn_write"
  | Seqlock_stall -> "seqlock_stall"
  | Replica_write -> "replica_write"
  | Shard_crash -> "shard_crash"

let site_of_name = function
  | "alloc_node" -> Some Alloc_node
  | "alloc_phys" -> Some Alloc_phys
  | "lock_timeout" -> Some Lock_timeout
  | "domain_crash" -> Some Domain_crash
  | "torn_write" -> Some Torn_write
  | "seqlock_stall" -> Some Seqlock_stall
  | "replica_write" -> Some Replica_write
  | "shard_crash" -> Some Shard_crash
  | _ -> None

let site_code = function
  | Alloc_node -> 0
  | Alloc_phys -> 1
  | Lock_timeout -> 2
  | Domain_crash -> 3
  | Torn_write -> 4
  | Seqlock_stall -> 5
  | Replica_write -> 6
  | Shard_crash -> 7

exception Injected of { site : site; key : int }

let () =
  Printexc.register_printer (function
    | Injected { site; key } ->
        Some (Printf.sprintf "Fault.Injected(%s, key=%d)" (site_name site) key)
    | _ -> None)

type plan = { p_seed : int; p_rate_ppm : int; p_mask : int }

let plan ?(rate_ppm = 20_000) ?(sites = all_sites) ~seed () =
  if rate_ppm < 0 || rate_ppm > 1_000_000 then
    invalid_arg "Fault.plan: rate_ppm must be in [0, 1_000_000]";
  let mask = List.fold_left (fun m s -> m lor (1 lsl site_code s)) 0 sites in
  { p_seed = seed; p_rate_ppm = rate_ppm; p_mask = mask }

let seed p = p.p_seed

let rate_ppm p = p.p_rate_ppm

let sites p =
  List.filter (fun s -> p.p_mask land (1 lsl site_code s) <> 0) all_sites

(* One SplitMix64 finalizer per mixed-in integer: full avalanche over
   (seed, site, key, attempt), so arming is uncorrelated across sites
   and attempts and identical on every domain. *)
let decide p ~site ~key ~attempt =
  p.p_mask land (1 lsl site_code site) <> 0
  && p.p_rate_ppm > 0
  &&
  let h = Addr.Bits.mix64 (Int64.of_int p.p_seed) in
  let h = Addr.Bits.mix64 (Int64.add h (Int64.of_int (site_code site + 1))) in
  let h = Addr.Bits.mix64 (Int64.add h (Int64.of_int key)) in
  let h = Addr.Bits.mix64 (Int64.add h (Int64.of_int attempt)) in
  let v = Int64.rem (Int64.logand h Int64.max_int) 1_000_000L in
  Int64.to_int v < p.p_rate_ppm

(* --- the installed plan --- *)

let installed : plan option Atomic.t = Atomic.make None

let active () = Atomic.get installed <> None

(* --- per-site / degraded-mode tallies --- *)

let n_sites = List.length all_sites

let site_tallies = Array.init n_sites (fun _ -> Atomic.make 0)

let retries_c = Atomic.make 0

let aborts_c = Atomic.make 0

let restarts_c = Atomic.make 0

let repairs_c = Atomic.make 0

let reset_tallies () =
  Array.iter (fun a -> Atomic.set a 0) site_tallies;
  Atomic.set retries_c 0;
  Atomic.set aborts_c 0;
  Atomic.set restarts_c 0;
  Atomic.set repairs_c 0

let injected site = Atomic.get site_tallies.(site_code site)

let injected_total () =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 site_tallies

let note_retry () = ignore (Atomic.fetch_and_add retries_c 1)

let note_abort () = ignore (Atomic.fetch_and_add aborts_c 1)

let note_restart () = ignore (Atomic.fetch_and_add restarts_c 1)

let note_repair () = ignore (Atomic.fetch_and_add repairs_c 1)

let retries () = Atomic.get retries_c

let aborts () = Atomic.get aborts_c

let restarts () = Atomic.get restarts_c

let repairs () = Atomic.get repairs_c

let install p =
  reset_tallies ();
  Atomic.set installed (Some p)

let deactivate () = Atomic.set installed None

let with_plan p f =
  install p;
  Fun.protect ~finally:deactivate f

(* --- per-domain operation context --- *)

type context = { mutable key : int; mutable attempt : int }

let context_dls =
  Domain.DLS.new_key (fun () -> { key = -1; attempt = 0 })

let set_context ~key =
  let c = Domain.DLS.get context_dls in
  c.key <- key;
  c.attempt <- 0

let set_attempt a = (Domain.DLS.get context_dls).attempt <- a

let clear_context () =
  let c = Domain.DLS.get context_dls in
  c.key <- -1;
  c.attempt <- 0

let context_key () = (Domain.DLS.get context_dls).key

let suspended f =
  let c = Domain.DLS.get context_dls in
  let k = c.key and a = c.attempt in
  c.key <- -1;
  c.attempt <- 0;
  Fun.protect
    ~finally:(fun () ->
      let c = Domain.DLS.get context_dls in
      c.key <- k;
      c.attempt <- a)
    f

(* --- injection sites --- *)

let armed site =
  match Atomic.get installed with
  | None -> false
  | Some p ->
      let c = Domain.DLS.get context_dls in
      c.key >= 0 && decide p ~site ~key:c.key ~attempt:c.attempt

let trip site =
  armed site
  &&
  begin
    ignore (Atomic.fetch_and_add site_tallies.(site_code site) 1);
    true
  end

let fire site =
  if trip site then
    raise (Injected { site; key = (Domain.DLS.get context_dls).key })
