(** A pool of long-lived worker domains.

    {!Domain_pool} forks and joins fresh domains on every call, which
    puts domain startup inside any timed region and gives each phase a
    cold set of domains.  A [Worker_pool.t] spawns its domains once at
    {!create}; each {!run} dispatches one job to all of them and
    barriers until every worker has finished, so repeated phases (warm
    up, measure, verify) reuse the same domains against the same shared
    structures — the shape a shared-memory page-table service benchmark
    needs. *)

type t

exception Worker_failed of (int * exn) list
(** Raised by {!run} with {e every} exception workers raised during
    that job, as [(worker index, exception)] pairs sorted by index —
    two workers failing the same job both appear.  The run always
    waits for every worker to finish first, so the list is complete. *)

val create : ?epoch:Epoch.t -> ?epochs:Epoch.t list -> domains:int -> unit -> t
(** Spawn [domains] worker domains, parked awaiting work.  The calling
    domain never executes jobs: with [domains:n], exactly [n] workers
    run each job, so scaling measurements compare like with like.
    Raises [Invalid_argument] if [domains < 1].

    With [?epoch], every worker registers with the epoch manager for
    its whole lifetime (and unregisters on the way out, even via an
    injected crash — a supervised respawn registers its replacement),
    so optimistic readers pin pre-registered slots and a dead domain
    never stalls reclamation.  [?epochs] is the plural form for
    NUMA-replicated services, whose per-node replicas each own a
    reclamation domain: workers register with every manager in list
    order and unregister in reverse.  Passing both [?epoch] and
    [?epochs] raises [Invalid_argument]. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f index] on every worker, [index] ranging over
    [0 .. size t - 1], and returns once all have completed.  Not
    reentrant: one job at a time per pool.

    Supervision: a worker whose job dies of an injected
    [Fault.Injected { site = Domain_crash | Shard_crash; _ }]
    terminates its domain for real.  [run] joins each such domain and respawns a fresh worker
    in its slot {e before} raising {!Worker_failed}, so the pool is
    back at full strength for the next job; every respawn is tallied
    (see {!restarts} and [Fault.restarts]). *)

val restarts : t -> int
(** Worker domains respawned by supervision since {!create}. *)

val shutdown : t -> unit
(** Stop and join all workers.  Idempotent; {!run} after [shutdown]
    raises [Invalid_argument]. *)

val with_pool :
  ?epoch:Epoch.t -> ?epochs:Epoch.t list -> domains:int -> (t -> 'a) -> 'a
(** [create], apply, [shutdown] — also on exception. *)
