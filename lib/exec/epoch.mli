(** Epoch-based reclamation for optimistic (lock-free) readers.

    A writer that unlinks a node calls {!retire_stamp} and parks the
    node in a limbo list under the returned stamp; the node's memory
    may be recycled only once its stamp drops below {!safe_before}.  A
    reader brackets every optimistic walk in {!pin}/{!unpin}; while
    pinned, no node retired at or after its pin can be recycled, so the
    reader can never chase a pointer into reused memory.

    One [t] is one reclamation domain (typically one per shared
    table).  Participation is per OCaml domain: {!pin} lazily claims a
    slot for the calling domain, and supervised pools should bracket a
    worker's lifetime in {!register}/{!unregister} so slots are
    returned when domains exit or are respawned. *)

type t

val create : ?slots:int -> unit -> t
(** A fresh reclamation domain with capacity for [slots] (default 128)
    concurrently registered domains.  Raises [Invalid_argument] if
    [slots < 1]. *)

val register : t -> unit
(** Claim a reader slot for the calling domain (idempotent).  Raises
    [Failure] if all slots are taken. *)

val unregister : t -> unit
(** Release the calling domain's slot, if any.  Quiesces it first, so
    pending retirements become reclaimable. *)

val registered : t -> int
(** Currently claimed slots (racy snapshot; exact at quiescence). *)

val pin : t -> unit
(** Enter an optimistic read section: publish the current epoch and
    confirm it.  Registers the calling domain if needed.  Nestable only
    as a no-op refresh — a nested pin may advance the published epoch,
    so bracket each walk individually. *)

val repin : t -> unit
(** Amortized {!pin} for back-to-back read sections: keep the calling
    domain pinned but bring its published stamp up to the current
    epoch.  When the epoch has not moved since the last pin this is two
    plain loads — no store, no fence — which is what makes per-lookup
    epoch protection affordable; only a retirement in between forces a
    republish.  A domain that stops reading keeps its last stamp
    published (blocking reclamation of {e later} retirements only)
    until it calls {!unpin} or {!unregister}. *)

val unpin : t -> unit
(** Leave the read section; the calling domain blocks no reclamation
    afterwards. *)

val pinned : t -> bool
(** Is the calling domain currently inside a pin? *)

val retire_stamp : t -> int
(** Advance the global epoch and return the stamp under which a node
    unlinked {e before} this call must wait in limbo. *)

val safe_before : t -> int
(** Retirements stamped strictly below this are invisible to every
    current and future reader and may be recycled.  [max_int] when no
    registered domain is pinned. *)
