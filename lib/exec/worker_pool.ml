(* Long-lived worker domains.

   Domain_pool forks and joins a fresh set of domains per call, which
   is fine for coarse experiment fan-out but wrong for a shared-memory
   service benchmark: domain startup (~hundreds of microseconds plus
   GC registration) would sit inside the timed region, and a
   lookup/insert service wants the same domains to run phase after
   phase against the same shared structure.

   A pool spawns its domains once.  Each [run] publishes one job under
   the pool mutex, bumps an epoch, and wakes every worker; workers run
   the job with their domain index and report back, and [run] returns
   when all of them have.  The caller's domain never runs jobs — with
   [domains:n] exactly [n] workers execute, so scaling curves compare
   like with like. *)

type job = int -> unit

type t = {
  n : int;
  m : Mutex.t;
  wake : Condition.t;  (* workers wait here for a new epoch / shutdown *)
  idle : Condition.t;  (* the caller waits here for completions *)
  mutable epoch : int;
  mutable job : job option;
  mutable completed : int;
  mutable failure : exn option;  (* first failure of the current epoch *)
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

exception Worker_failed of exn

let () =
  Printexc.register_printer (function
    | Worker_failed e ->
        Some (Printf.sprintf "Worker_pool.Worker_failed(%s)" (Printexc.to_string e))
    | _ -> None)

let worker_at t index () =
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.m;
    while t.epoch = !seen && not t.stopping do
      Condition.wait t.wake t.m
    done;
    if t.stopping then begin
      Mutex.unlock t.m;
      continue := false
    end
    else begin
      seen := t.epoch;
      let job = Option.get t.job in
      Mutex.unlock t.m;
      let outcome = match job index with () -> None | exception e -> Some e in
      Mutex.lock t.m;
      (match outcome with
      | Some e when t.failure = None -> t.failure <- Some e
      | Some _ | None -> ());
      t.completed <- t.completed + 1;
      if t.completed = t.n then Condition.signal t.idle;
      Mutex.unlock t.m
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Worker_pool.create: domains must be >= 1";
  let t =
    {
      n = domains;
      m = Mutex.create ();
      wake = Condition.create ();
      idle = Condition.create ();
      epoch = 0;
      job = None;
      completed = 0;
      failure = None;
      stopping = false;
      workers = [||];
    }
  in
  t.workers <- Array.init domains (fun i -> Domain.spawn (worker_at t i));
  t

let size t = t.n

let run t f =
  Mutex.lock t.m;
  if t.stopping then begin
    Mutex.unlock t.m;
    invalid_arg "Worker_pool.run: pool is shut down"
  end;
  t.job <- Some f;
  t.completed <- 0;
  t.failure <- None;
  t.epoch <- t.epoch + 1;
  Condition.broadcast t.wake;
  while t.completed < t.n do
    Condition.wait t.idle t.m
  done;
  let failure = t.failure in
  t.job <- None;
  Mutex.unlock t.m;
  match failure with Some e -> raise (Worker_failed e) | None -> ()

let shutdown t =
  Mutex.lock t.m;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.wake
  end;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ~domains f =
  let t = create ~domains in
  match f t with
  | v ->
      shutdown t;
      v
  | exception e ->
      shutdown t;
      raise e
