(* Long-lived worker domains.

   Domain_pool forks and joins a fresh set of domains per call, which
   is fine for coarse experiment fan-out but wrong for a shared-memory
   service benchmark: domain startup (~hundreds of microseconds plus
   GC registration) would sit inside the timed region, and a
   lookup/insert service wants the same domains to run phase after
   phase against the same shared structure.

   A pool spawns its domains once.  Each [run] publishes one job under
   the pool mutex, bumps an epoch, and wakes every worker; workers run
   the job with their domain index and report back, and [run] returns
   when all of them have.  The caller's domain never runs jobs — with
   [domains:n] exactly [n] workers execute, so scaling curves compare
   like with like.

   Failure handling: every worker exception of an epoch is collected
   (not just the first), and a worker that dies of an injected
   [Fault.Domain_crash] or [Fault.Shard_crash] really exits its
   domain — [run] joins and respawns it before reporting, so the pool
   supervises its own workers back to full strength.  (A shard crash
   also loses the shard's in-memory table; rebuilding it from its
   write-ahead log is the fleet supervisor's job, not the pool's.) *)

type job = int -> unit

type t = {
  n : int;
  m : Mutex.t;
  wake : Condition.t;  (* workers wait here for a new epoch / shutdown *)
  idle : Condition.t;  (* the caller waits here for completions *)
  mutable epoch : int;
  mutable job : job option;
  mutable completed : int;
  mutable failures : (int * exn) list;  (* all failures of the epoch *)
  mutable crashed : int list;  (* workers whose domains exited *)
  mutable restarts_total : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  (* epoch managers every worker registers with for its lifetime, so
     optimistic readers can pin without a first-pin registration race
     and crashed workers give their reclamation slots back.  One entry
     per manager: a NUMA-replicated service has one reclamation domain
     per replica, and every worker must be registered with all of
     them. *)
  reader_epochs : Epoch.t list;
}

exception Worker_failed of (int * exn) list

let () =
  Printexc.register_printer (function
    | Worker_failed fs ->
        Some
          (Printf.sprintf "Worker_pool.Worker_failed([%s])"
             (String.concat "; "
                (List.map
                   (fun (i, e) ->
                     Printf.sprintf "%d: %s" i (Printexc.to_string e))
                   fs)))
    | _ -> None)

(* [birth_epoch] is the last epoch already dealt with when the worker
   was spawned — 0 at [create], the crashed job's epoch at a respawn —
   and must be read by the {e spawner}: the new domain's body may only
   start running after the next [run] has already bumped [t.epoch], and
   adopting that value here would skip the job (and deadlock [run]). *)
let worker_body t index ~birth_epoch =
  let seen = ref birth_epoch in
  let continue = ref true in
  while !continue do
    Mutex.lock t.m;
    while t.epoch = !seen && not t.stopping do
      Condition.wait t.wake t.m
    done;
    if t.stopping then begin
      Mutex.unlock t.m;
      continue := false
    end
    else begin
      seen := t.epoch;
      let job = Option.get t.job in
      Mutex.unlock t.m;
      let outcome = match job index with () -> None | exception e -> Some e in
      let crash =
        match outcome with
        | Some
            (Fault.Injected
              { site = Fault.Domain_crash | Fault.Shard_crash; _ }) ->
            true
        | _ -> false
      in
      Mutex.lock t.m;
      (match outcome with
      | Some e -> t.failures <- (index, e) :: t.failures
      | None -> ());
      if crash then t.crashed <- index :: t.crashed;
      t.completed <- t.completed + 1;
      if t.completed = t.n then Condition.signal t.idle;
      Mutex.unlock t.m;
      (* an injected domain crash terminates the domain for real *)
      if crash then continue := false
    end
  done

(* Register/unregister around the whole worker loop: [Fun.protect]
   returns the reclamation slots even when the loop exits by crash or
   exception, and a supervised respawn re-registers its fresh domain.
   Unregistration runs in reverse registration order, and a failure to
   register leaves no partial registration behind. *)
let rec with_registered epochs body =
  match epochs with
  | [] -> body ()
  | e :: rest ->
      Epoch.register e;
      Fun.protect
        ~finally:(fun () -> Epoch.unregister e)
        (fun () -> with_registered rest body)

let worker_at t index ~birth_epoch () =
  match t.reader_epochs with
  | [] -> worker_body t index ~birth_epoch
  | epochs -> with_registered epochs (fun () -> worker_body t index ~birth_epoch)

let epoch_list ?epoch ?epochs () =
  match (epoch, epochs) with
  | None, None -> []
  | Some e, None -> [ e ]
  | None, Some es -> es
  | Some _, Some _ ->
      invalid_arg "Worker_pool: pass either ?epoch or ?epochs, not both"

let create ?epoch ?epochs ~domains () =
  if domains < 1 then invalid_arg "Worker_pool.create: domains must be >= 1";
  let reader_epochs = epoch_list ?epoch ?epochs () in
  let t =
    {
      n = domains;
      m = Mutex.create ();
      wake = Condition.create ();
      idle = Condition.create ();
      epoch = 0;
      job = None;
      completed = 0;
      failures = [];
      crashed = [];
      restarts_total = 0;
      stopping = false;
      workers = [||];
      reader_epochs;
    }
  in
  t.workers <-
    Array.init domains (fun i -> Domain.spawn (worker_at t i ~birth_epoch:0));
  t

let size t = t.n

let restarts t =
  Mutex.lock t.m;
  let r = t.restarts_total in
  Mutex.unlock t.m;
  r

let run t f =
  Mutex.lock t.m;
  if t.stopping then begin
    Mutex.unlock t.m;
    invalid_arg "Worker_pool.run: pool is shut down"
  end;
  t.job <- Some f;
  t.completed <- 0;
  t.failures <- [];
  t.crashed <- [];
  t.epoch <- t.epoch + 1;
  Condition.broadcast t.wake;
  while t.completed < t.n do
    Condition.wait t.idle t.m
  done;
  let failures =
    List.sort (fun (a, _) (b, _) -> compare a b) t.failures
  in
  let crashed = t.crashed in
  let epoch = t.epoch in
  t.job <- None;
  Mutex.unlock t.m;
  (* supervised restart: join each crashed domain (it has exited its
     loop) and put a fresh one in its slot, so the pool runs the next
     job at full strength.  The replacement is born having seen the
     epoch that killed its predecessor. *)
  List.iter
    (fun i ->
      Domain.join t.workers.(i);
      t.workers.(i) <- Domain.spawn (worker_at t i ~birth_epoch:epoch);
      Fault.note_restart ())
    crashed;
  if crashed <> [] then begin
    Mutex.lock t.m;
    t.restarts_total <- t.restarts_total + List.length crashed;
    Mutex.unlock t.m
  end;
  match failures with [] -> () | fs -> raise (Worker_failed fs)

let shutdown t =
  Mutex.lock t.m;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.wake
  end;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?epoch ?epochs ~domains f =
  let t = create ?epoch ?epochs ~domains () in
  match f t with
  | v ->
      shutdown t;
      v
  | exception e ->
      shutdown t;
      raise e
