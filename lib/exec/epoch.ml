(* Epoch-based reclamation for optimistic (lock-free) readers.

   The protocol is the classic three-step handshake:

   - a reader {e pins} before touching shared pointers: it publishes
     the current global stamp in its slot and re-reads the global until
     the published value is confirmed current;
   - a writer that unlinks a node {e retires} it under a fresh stamp
     ([retire_stamp] advances the global clock);
   - retired memory is recycled only once its stamp is below
     [safe_before] — the minimum stamp any registered reader has
     published.

   Soundness rests on sequentially consistent atomics.  A retirement
   whose stamp [s] satisfies [s < safe_before] incremented the global
   clock to at most the value every pinned reader confirmed, so that
   increment (and the unlink program-ordered before it) happens-before
   the reader's confirming re-read: the reader can no longer reach the
   node.  Conversely any retirement after a reader's confirmation draws
   a stamp at least equal to the reader's published value and stays in
   limbo until the reader unpins.

   Slots are claimed per domain and cached in domain-local storage, so
   the pin/unpin fast path is two plain atomic accesses on a slot no
   other domain writes.  Registration is lazy — the first [pin] of an
   unknown domain claims a slot — and explicit [register]/[unregister]
   lets supervised worker pools return slots when domains die or are
   respawned. *)

type slot = {
  state : int Atomic.t;  (* [quiescent], or the pinned stamp *)
  owner : int Atomic.t;  (* claiming domain id, or -1 when free *)
}

let quiescent = max_int

type t = {
  global : int Atomic.t;
  slots : slot array;
  my_slot : int ref Domain.DLS.key;
      (* this domain's claimed slot index in [slots], -1 if none; the
         key is per-manager, so one domain can participate in several
         independent epoch domains (one per service under test) *)
}

let default_slots = 128

let create ?(slots = default_slots) () =
  if slots < 1 then invalid_arg "Epoch.create: slots must be >= 1";
  {
    global = Atomic.make 0;
    slots =
      Array.init slots (fun _ ->
          { state = Atomic.make quiescent; owner = Atomic.make (-1) });
    my_slot = Domain.DLS.new_key (fun () -> ref (-1));
  }

let register t =
  let r = Domain.DLS.get t.my_slot in
  if !r < 0 then begin
    let id = (Domain.self () :> int) in
    let n = Array.length t.slots in
    let rec claim i =
      if i >= n then
        failwith "Epoch.register: slot table exhausted"
      else if Atomic.compare_and_set t.slots.(i).owner (-1) id then i
      else claim (i + 1)
    in
    let i = claim 0 in
    (* a freed slot is always parked quiescent, but re-assert it so a
       slot can never be adopted mid-pin *)
    Atomic.set t.slots.(i).state quiescent;
    r := i
  end

let unregister t =
  let r = Domain.DLS.get t.my_slot in
  if !r >= 0 then begin
    let s = t.slots.(!r) in
    Atomic.set s.state quiescent;
    Atomic.set s.owner (-1);
    r := -1
  end

let registered t =
  Array.fold_left
    (fun acc s -> if Atomic.get s.owner >= 0 then acc + 1 else acc)
    0 t.slots

(* publish-and-confirm: after the re-read agrees with what we
   published, every already-reclaimable retirement happens-before us
   (we read the global value its increment produced or a later one)
   and every later retirement draws a stamp >= our published value.
   Top-level so [pin] allocates nothing — it sits on lock-free read
   fast paths where a minor collection means a stop-the-world
   rendezvous across every domain. *)
let rec publish global state =
  let e = Atomic.get global in
  Atomic.set state e;
  if Atomic.get global <> e then publish global state

let pin t =
  let r = Domain.DLS.get t.my_slot in
  if !r < 0 then register t;
  let s = t.slots.(!r) in
  publish t.global s.state

(* Amortized pin: when the published stamp already equals the global
   epoch, the section is covered by the standing pin and nothing need
   be written — the common case between retirements, and the reason the
   per-lookup cost is two plain loads rather than a fenced store.  The
   soundness argument is [publish]'s: a fresh republish confirms, and a
   skipped one means the confirmed stamp is still the global epoch, so
   every reclaimable retirement still happens-before the original
   confirming read. *)
let repin t =
  let r = Domain.DLS.get t.my_slot in
  if !r < 0 then register t;
  let s = t.slots.(!r) in
  if Atomic.get s.state <> Atomic.get t.global then publish t.global s.state

let unpin t =
  let r = Domain.DLS.get t.my_slot in
  if !r >= 0 then Atomic.set t.slots.(!r).state quiescent

let pinned t =
  let r = Domain.DLS.get t.my_slot in
  !r >= 0 && Atomic.get t.slots.(!r).state <> quiescent

let retire_stamp t = Atomic.fetch_and_add t.global 1

let safe_before t =
  Array.fold_left
    (fun acc s ->
      if Atomic.get s.owner >= 0 then min acc (Atomic.get s.state) else acc)
    quiescent t.slots
