(** Deterministic fork/join map over OCaml 5 domains.

    Jobs are keyed by input index: a job must derive any seeds from its
    index, not from execution order, and must not observe the others'
    results.  Under that contract the result array is identical for any
    domain count, including the serial [domains:1] path. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val clamp_domains : ?domains:int -> int -> int
(** The pool size actually used for [n] jobs: [domains] (default
    {!default_domains}) clamped to at least 1 and at most [n].  Raises
    [Invalid_argument] when [domains < 1]. *)

exception Job_failed of int * exn
(** Raised by {!map} when job [i] raised; carries the original
    exception. *)

val map : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [map ~domains f inputs] computes [f i inputs.(i)] for every [i],
    distributing indices over [domains] domains (work-stealing via a
    shared claim counter).  [domains:1] runs serially in ascending
    index order on the calling domain. *)

val map_list : ?domains:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)
