(* A tiny fork/join pool over OCaml 5 domains.

   Experiments fan out per-workload (or per-configuration) jobs; each
   job is pure with respect to the others (it builds its own snapshot,
   tables and trace from a seed derived from the *index*, never from
   execution order), so [map] can hand indices to domains in any order
   and still produce a deterministic result array.

   Work distribution is a single shared counter: domains claim the next
   unclaimed index with [Atomic.fetch_and_add], which degenerates to
   work stealing when job costs are uneven — a finished domain
   immediately claims whatever index is left, no per-domain deques
   needed at this job granularity (tens of jobs, each millions of
   simulated references). *)

let default_domains () = Domain.recommended_domain_count ()

let clamp_domains ?domains n =
  let d = match domains with Some d -> d | None -> default_domains () in
  if d < 1 then invalid_arg "Domain_pool: domains must be >= 1";
  min d (max 1 n)

exception Job_failed of int * exn

let map ?domains f inputs =
  let n = Array.length inputs in
  if n = 0 then [||]
  else begin
    let domains = clamp_domains ?domains n in
    if domains = 1 then begin
      (* serial path: explicit ascending loop — [f] runs in index
         order, exactly as the pre-pool runner iterated *)
      let results = Array.make n None in
      for i = 0 to n - 1 do
        results.(i) <- Some (f i inputs.(i))
      done;
      Array.map Option.get results
    end
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n || Atomic.get failure <> None then continue := false
          else
            match f i inputs.(i) with
            | v -> results.(i) <- Some v
            | exception e ->
                (* first failure wins; the rest of the pool drains *)
                ignore
                  (Atomic.compare_and_set failure None (Some (i, e)))
        done
      in
      let spawned =
        Array.init (domains - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      Array.iter Domain.join spawned;
      match Atomic.get failure with
      | Some (i, e) -> raise (Job_failed (i, e))
      | None ->
          Array.map
            (function
              | Some v -> v
              | None ->
                  (* only reachable if a job was skipped after a
                     failure, which the re-raise above precludes *)
                  assert false)
            results
    end
  end

let map_list ?domains f inputs =
  Array.to_list (map ?domains (fun i x -> f i x) (Array.of_list inputs))
