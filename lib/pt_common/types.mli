(** Shared types for page-table implementations: the result a TLB miss
    handler loads, and the walk-cost record an experiment charges. *)

(** Granularity of the mapping a lookup produced — this is what decides
    which TLB entry format the handler loads. *)
type kind =
  | Base  (** one 4 KB page *)
  | Superpage of Addr.Page_size.t
  | Partial_subblock of int  (** valid vector over the page block *)

type translation = {
  vpn : int64;  (** the faulting base page *)
  ppn : int64;  (** physical page backing [vpn] *)
  vpn_base : int64;  (** first VPN covered by the loaded entry *)
  ppn_base : int64;  (** PPN backing [vpn_base] *)
  kind : kind;
  attr : Pte.Attr.t;
}

val base_translation :
  vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> translation

val covered_pages : translation -> int
(** Base pages covered by the loaded entry (1, superpage size, or the
    subblock factor). *)

(** Cost of one page-table walk, charged by the simulated TLB miss
    handler. *)
type walk = {
  accesses : Mem.Cache_model.access list;
      (** byte ranges read, most recent first *)
  probes : int;  (** hash nodes or tree levels visited *)
  nested_misses : int;
      (** linear page tables: TLB misses taken on the page table's own
          virtual mappings *)
}

val empty_walk : walk

val walk_read : walk -> addr:int64 -> bytes:int -> walk
(** Charge one memory read to a walk. *)

val walk_probe : walk -> walk
(** Count one more node/level visit. *)

val walk_join : walk -> walk -> walk
(** Combine two walks (e.g. probing a second page table). *)

val walk_lines : ?line_size:int -> walk -> int
(** Distinct cache lines the walk touched (default 256-byte lines). *)

type acc = Mem.Walk_acc.t
(** Reusable walk accumulator threaded through the allocation-free
    lookup path ([lookup_into]). *)

val acc_to_walk : acc -> walk
(** Materialize a legacy {!walk} from an accumulator.  The accesses
    list is reverse-chronological, exactly as {!walk_read} builds it. *)

val acc_add_walk : acc -> walk -> unit
(** Append a walk's reads, probes and nested misses to an accumulator
    in chronological order. *)

val pp_translation : Format.formatter -> translation -> unit
