(** Turning a raw PTE word into the translation a miss handler loads.

    Shared by every page table that stores the {!Pte.Word} formats at
    base-page sites (linear, forward-mapped, hashed, clustered): given
    the faulting VPN and the word found at its site, produce the
    translation, or [None] when the word does not map the page. *)

val translation_of_word :
  subblock_factor:int ->
  vpn:int64 ->
  int64 ->
  Types.translation option
(** Decodes by S field.  For a superpage word the VPN base is the
    faulting VPN aligned down to the superpage size; for a
    partial-subblock word the block offset's valid bit decides. *)

val translation_in_block :
  subblock_factor:int ->
  vpn:int64 ->
  words:int64 array ->
  Types.translation option
(** Interpret a clustered block of mapping words (a clustered node or
    TSB slot): the S field of word 0 decides whether the block is a
    single partial-subblock/superpage word or an array indexed by
    block offset (the Figure 8 dispatch). *)

val reencode_attr : int64 -> f:(Pte.Attr.t -> Pte.Attr.t) -> int64 option
(** Apply an attribute transform to a valid mapping word of any
    format, re-encoding in place; [None] for invalid words (range
    operations skip them). *)
