(** The interface every page table implements.

    The five organizations (linear, forward-mapped, hashed, inverted /
    software-TLB, clustered) all satisfy [PAGE_TABLE], so experiments,
    tests and benchmarks treat them uniformly through {!instance}
    first-class modules.

    Superpage and partial-subblock insertion follow the strategy the
    paper evaluates for each organization (Section 6.1): linear and
    forward-mapped page tables replicate the PTE at every base-page
    site; hashed page tables keep two logical tables (4 KB searched
    first, then 64 KB blocks); clustered page tables store the new
    formats natively in their nodes. *)

module type PAGE_TABLE = sig
  type t

  val name : string
  (** Short identifier used in reports, e.g. "clustered". *)

  val lookup : t -> vpn:int64 -> Types.translation option * Types.walk
  (** TLB-miss service: translate the faulting base page.  The walk
      records every memory read the handler performed, successful or
      not. *)

  val lookup_into :
    t -> Mem.Walk_acc.t -> vpn:int64 -> Types.translation option
  (** Allocation-free variant of {!lookup} for miss-replay hot loops:
      the handler's reads and probes are appended to the caller's
      reusable accumulator (not reset here) instead of materializing a
      {!Types.walk}.  Charges exactly the reads {!lookup} would. *)

  val lookup_block :
    t ->
    vpn:int64 ->
    subblock_factor:int ->
    (int * Types.translation) list * Types.walk
  (** Complete-subblock prefetch (Section 4.4): return all valid
      translations in the faulting page's block as [(block offset,
      translation)] pairs, charging the full cost of gathering them —
      one probe per base page for a hashed table, adjacent reads for
      linear and clustered tables. *)

  val insert_base :
    t -> vpn:int64 -> ppn:int64 -> attr:Pte.Attr.t -> unit

  val insert_superpage :
    t ->
    vpn:int64 ->
    size:Addr.Page_size.t ->
    ppn:int64 ->
    attr:Pte.Attr.t ->
    unit
  (** [vpn] and [ppn] must be aligned to [size]. *)

  val insert_psb :
    t -> vpbn:int64 -> vmask:int -> ppn:int64 -> attr:Pte.Attr.t -> unit
  (** Insert a partial-subblock mapping for a whole page block.  [ppn]
      is the block-aligned base frame. *)

  val remove : t -> vpn:int64 -> unit
  (** Remove the base page [vpn].  Removing a page of a partial-
      subblock mapping clears its valid bit; removing a page of a
      superpage removes the whole superpage (demotion is an OS-level
      operation, see {!Os_policy}). *)

  val set_attr_range :
    t -> Addr.Region.t -> f:(Pte.Attr.t -> Pte.Attr.t) -> int
  (** Apply [f] to the attributes of every mapping in the region;
      returns the number of *page-table searches* performed, the cost
      the paper compares in Section 3.1 (hashed: one per base page;
      clustered: one per page block). *)

  val size_bytes : t -> int
  (** Bytes of page-table memory currently in use, by the paper's
      Section 6.1 accounting for this organization. *)

  val population : t -> int
  (** Number of base pages currently mapped (each page under a
      superpage or valid psb bit counts once). *)

  val clear : t -> unit
end

type instance =
  | Instance : (module PAGE_TABLE with type t = 't) * 't -> instance

let instance_name (Instance ((module P), _)) = P.name

let lookup (Instance ((module P), t)) ~vpn = P.lookup t ~vpn

let lookup_into (Instance ((module P), t)) acc ~vpn = P.lookup_into t acc ~vpn

let lookup_block (Instance ((module P), t)) ~vpn ~subblock_factor =
  P.lookup_block t ~vpn ~subblock_factor

let insert_base (Instance ((module P), t)) ~vpn ~ppn ~attr =
  P.insert_base t ~vpn ~ppn ~attr

let insert_superpage (Instance ((module P), t)) ~vpn ~size ~ppn ~attr =
  P.insert_superpage t ~vpn ~size ~ppn ~attr

let insert_psb (Instance ((module P), t)) ~vpbn ~vmask ~ppn ~attr =
  P.insert_psb t ~vpbn ~vmask ~ppn ~attr

let remove (Instance ((module P), t)) ~vpn = P.remove t ~vpn

let set_attr_range (Instance ((module P), t)) region ~f =
  P.set_attr_range t region ~f

let size_bytes (Instance ((module P), t)) = P.size_bytes t

let population (Instance ((module P), t)) = P.population t

let clear (Instance ((module P), t)) = P.clear t
