type kind =
  | Base
  | Superpage of Addr.Page_size.t
  | Partial_subblock of int

type translation = {
  vpn : int64;
  ppn : int64;
  vpn_base : int64;
  ppn_base : int64;
  kind : kind;
  attr : Pte.Attr.t;
}

let base_translation ~vpn ~ppn ~attr =
  { vpn; ppn; vpn_base = vpn; ppn_base = ppn; kind = Base; attr }

let covered_pages t =
  match t.kind with
  | Base -> 1
  | Superpage size -> Addr.Page_size.base_pages size
  | Partial_subblock vmask -> Addr.Bits.popcount (Int64.of_int vmask)

type walk = {
  accesses : Mem.Cache_model.access list;
  probes : int;
  nested_misses : int;
}

let empty_walk = { accesses = []; probes = 0; nested_misses = 0 }

let walk_read w ~addr ~bytes =
  { w with accesses = { Mem.Cache_model.addr; bytes } :: w.accesses }

let walk_probe w = { w with probes = w.probes + 1 }

let walk_join a b =
  {
    accesses = b.accesses @ a.accesses;
    probes = a.probes + b.probes;
    nested_misses = a.nested_misses + b.nested_misses;
  }

let walk_lines ?(line_size = Mem.Cache_model.default_line_size) w =
  Mem.Cache_model.distinct_lines ~line_size w.accesses

(* --- reusable accumulator bridge (the allocation-free miss path) ---

   Hot paths thread a {!Mem.Walk_acc.t} through [lookup_into] instead
   of building [walk] lists.  These helpers convert between the two
   representations; [acc_to_walk] reproduces the exact list a
   [walk_read]-built walk would hold (reverse-chronological, from
   prepending), so legacy callers observe bit-identical walks. *)

type acc = Mem.Walk_acc.t

let acc_to_walk (acc : acc) =
  let accesses = ref [] in
  for i = 0 to Mem.Walk_acc.count acc - 1 do
    accesses :=
      { Mem.Cache_model.addr = Mem.Walk_acc.addr acc i;
        bytes = Mem.Walk_acc.bytes acc i }
      :: !accesses
  done;
  {
    accesses = !accesses;
    probes = Mem.Walk_acc.probes acc;
    nested_misses = Mem.Walk_acc.nested_misses acc;
  }

(* Append a walk's reads to an accumulator in chronological order
   (walk lists are reverse-chronological). *)
let acc_add_walk (acc : acc) w =
  List.iter
    (fun (a : Mem.Cache_model.access) ->
      Mem.Walk_acc.read acc ~addr:a.addr ~bytes:a.bytes)
    (List.rev w.accesses);
  for _ = 1 to w.probes do
    Mem.Walk_acc.probe acc
  done;
  Mem.Walk_acc.add_nested acc w.nested_misses

let pp_kind ppf = function
  | Base -> Format.fprintf ppf "base"
  | Superpage size -> Format.fprintf ppf "sp:%a" Addr.Page_size.pp size
  | Partial_subblock vmask -> Format.fprintf ppf "psb:%04x" vmask

let pp_translation ppf t =
  Format.fprintf ppf "{vpn=%Lx -> ppn=%Lx (%a at %Lx)}" t.vpn t.ppn pp_kind
    t.kind t.vpn_base
