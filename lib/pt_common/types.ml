type kind =
  | Base
  | Superpage of Addr.Page_size.t
  | Partial_subblock of int

type translation = {
  vpn : int64;
  ppn : int64;
  vpn_base : int64;
  ppn_base : int64;
  kind : kind;
  attr : Pte.Attr.t;
}

let base_translation ~vpn ~ppn ~attr =
  { vpn; ppn; vpn_base = vpn; ppn_base = ppn; kind = Base; attr }

let covered_pages t =
  match t.kind with
  | Base -> 1
  | Superpage size -> Addr.Page_size.base_pages size
  | Partial_subblock vmask -> Addr.Bits.popcount (Int64.of_int vmask)

type walk = {
  accesses : Mem.Cache_model.access list;
  probes : int;
  nested_misses : int;
}

let empty_walk = { accesses = []; probes = 0; nested_misses = 0 }

let walk_read w ~addr ~bytes =
  { w with accesses = { Mem.Cache_model.addr; bytes } :: w.accesses }

let walk_probe w = { w with probes = w.probes + 1 }

let walk_join a b =
  {
    accesses = b.accesses @ a.accesses;
    probes = a.probes + b.probes;
    nested_misses = a.nested_misses + b.nested_misses;
  }

let walk_lines ?(line_size = Mem.Cache_model.default_line_size) w =
  Mem.Cache_model.distinct_lines ~line_size w.accesses

let pp_kind ppf = function
  | Base -> Format.fprintf ppf "base"
  | Superpage size -> Format.fprintf ppf "sp:%a" Addr.Page_size.pp size
  | Partial_subblock vmask -> Format.fprintf ppf "psb:%04x" vmask

let pp_translation ppf t =
  Format.fprintf ppf "{vpn=%Lx -> ppn=%Lx (%a at %Lx)}" t.vpn t.ppn pp_kind
    t.kind t.vpn_base
