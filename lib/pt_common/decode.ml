let translation_of_word ~subblock_factor ~vpn word =
  let factor_bits = Addr.Bits.log2_exact subblock_factor in
  match Pte.Word.decode word with
  | Pte.Word.Base b when b.valid ->
      Some (Types.base_translation ~vpn ~ppn:b.ppn ~attr:b.attr)
  | Pte.Word.Superpage sp when sp.valid ->
      let sz = Addr.Page_size.sz_code sp.size in
      let vpn_base = Addr.Bits.align_down vpn sz in
      Some
        {
          Types.vpn;
          ppn = Int64.add sp.ppn (Int64.sub vpn vpn_base);
          vpn_base;
          ppn_base = sp.ppn;
          kind = Types.Superpage sp.size;
          attr = sp.attr;
        }
  | Pte.Word.Psb p ->
      let boff = Addr.Vaddr.boff_of_vpn ~subblock_factor vpn in
      if Pte.Psb_pte.valid_at p ~boff then
        Some
          {
            Types.vpn;
            ppn = Pte.Psb_pte.ppn_for p ~boff;
            vpn_base = Addr.Bits.align_down vpn factor_bits;
            ppn_base = p.ppn;
            kind =
              Types.Partial_subblock (p.vmask land ((1 lsl subblock_factor) - 1));
            attr = p.attr;
          }
      else None
  | Pte.Word.Base _ | Pte.Word.Superpage _ -> None

let translation_in_block ~subblock_factor ~vpn ~words =
  let factor_bits = Addr.Bits.log2_exact subblock_factor in
  let single_class w =
    match Pte.Layout.read_s w with
    | Pte.Layout.S_partial_subblock -> true
    | Pte.Layout.S_superpage ->
        Addr.Page_size.sz_code (Pte.Superpage_pte.decode w).Pte.Superpage_pte.size
        >= factor_bits
    | Pte.Layout.S_base -> false
  in
  if single_class words.(0) then
    translation_of_word ~subblock_factor ~vpn words.(0)
  else
    let boff = Addr.Vaddr.boff_of_vpn ~subblock_factor vpn in
    if boff < Array.length words then
      translation_of_word ~subblock_factor ~vpn words.(boff)
    else None

let reencode_attr word ~f =
  match Pte.Word.decode word with
  | Pte.Word.Base b when b.valid ->
      Some (Pte.Base_pte.encode { b with attr = f b.attr })
  | Pte.Word.Superpage sp when sp.valid ->
      Some (Pte.Superpage_pte.encode { sp with attr = f sp.attr })
  | Pte.Word.Psb p when p.vmask <> 0 ->
      Some (Pte.Psb_pte.encode { p with attr = f p.attr })
  | Pte.Word.Base _ | Pte.Word.Superpage _ | Pte.Word.Psb _ -> None
