(** Shared bit positions of the 64-bit PTE word formats (Figures 1, 6
    and 7 of the paper).

    Little-endian bit numbering.  Common to all formats: the PPN
    occupies bits 39..12 (28 bits: a 40-bit physical address space with
    4 KB pages) and the attributes occupy bits 11..0.

    {v
    base PTE (Fig 1):      | V63 | PAD 62..42 | S 41..40 | PPN 39..12 | ATTR 11..0 |
    superpage (Fig 6 top): | V63 | SZ 62..59 | PAD | S | PPN | ATTR |
    partial-subblock:      | V16 63..48 | PAD 47..42 | S | PPN | ATTR |
    v}

    The paper leaves the exact position of the S
    (subblock/superpage) discriminator unspecified ("consults the new S
    field"); we give it two bits at 41..40, in PAD space that every
    format has free, so a single read of the word classifies it:
    0 = base, 1 = partial-subblock, 2 = superpage. *)

val valid_bit : int
(** 63: V bit of base and superpage formats. *)

val sz_lo : int
(** 59: low bit of the 4-bit SZ field of superpage PTEs. *)

val sz_width : int
(** 4. *)

val vmask_lo : int
(** 48: low bit of the 16-bit valid vector of partial-subblock PTEs. *)

val vmask_width : int
(** 16. *)

val s_lo : int
(** 40: low bit of the 2-bit S discriminator. *)

val s_width : int
(** 2. *)

val ppn_lo : int
(** 12. *)

val ppn_width : int
(** 28. *)

val attr_lo : int
(** 0. *)

val attr_width : int
(** 12. *)

type s_class = S_base | S_partial_subblock | S_superpage

val s_class_to_code : s_class -> int64

val s_class_of_code : int64 -> s_class
(** Raises [Invalid_argument] on the reserved code 3. *)

val read_s : int64 -> s_class
(** Classify a PTE word by its S field. *)

val pte_bytes : int
(** 8: every mapping word is eight bytes (paper, Section 2). *)

val tag_bytes : int
(** 8: a hash-node tag is an eight-byte VPN/VPBN. *)

val next_bytes : int
(** 8: a hash-node next pointer is eight bytes. *)
