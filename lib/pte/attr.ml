type t = {
  referenced : bool;
  modified : bool;
  writable : bool;
  executable : bool;
  user : bool;
  cacheable : bool;
  global : bool;
  locked : bool;
  soft : int;
}

let width = 12

let default =
  {
    referenced = false;
    modified = false;
    writable = true;
    executable = false;
    user = true;
    cacheable = true;
    global = false;
    locked = false;
    soft = 0;
  }

let kernel_text =
  {
    default with
    writable = false;
    executable = true;
    user = false;
    global = true;
    locked = true;
  }

let kernel_data = { default with user = false; global = true; locked = true }

let bit b i = if b then Int64.shift_left 1L i else 0L

let to_bits t =
  if t.soft < 0 || t.soft > 15 then invalid_arg "Attr.to_bits: soft";
  List.fold_left Int64.logor
    (Int64.shift_left (Int64.of_int t.soft) 8)
    [
      bit t.referenced 0;
      bit t.modified 1;
      bit t.writable 2;
      bit t.executable 3;
      bit t.user 4;
      bit t.cacheable 5;
      bit t.global 6;
      bit t.locked 7;
    ]

let of_bits w =
  {
    referenced = Addr.Bits.test_bit w 0;
    modified = Addr.Bits.test_bit w 1;
    writable = Addr.Bits.test_bit w 2;
    executable = Addr.Bits.test_bit w 3;
    user = Addr.Bits.test_bit w 4;
    cacheable = Addr.Bits.test_bit w 5;
    global = Addr.Bits.test_bit w 6;
    locked = Addr.Bits.test_bit w 7;
    soft = Int64.to_int (Addr.Bits.extract w ~lo:8 ~width:4);
  }

let equal a b = a = b

let pp ppf t =
  let flag c b = if b then c else '-' in
  Format.fprintf ppf "%c%c%c%c%c%c%c%c/s%x" (flag 'r' t.referenced)
    (flag 'm' t.modified) (flag 'w' t.writable) (flag 'x' t.executable)
    (flag 'u' t.user) (flag 'c' t.cacheable) (flag 'g' t.global)
    (flag 'l' t.locked) t.soft
