(** Partial-subblock PTE: Figure 6 (bottom).

    One word maps up to [subblock_factor] properly-placed base pages of
    one page block: the 16-bit valid vector (bits 63..48) says which
    block offsets are resident, and the single PPN is the physical page
    of block offset 0 (so page at block offset [i] maps to [ppn + i]).
    Valid only when the physical pages are properly placed, i.e. the
    block occupies an aligned physical block. *)

type t = { vmask : int; ppn : int64; attr : Attr.t }
(** [vmask] bit [i] set means block offset [i] is valid. *)

val make : vmask:int -> ppn:int64 -> attr:Attr.t -> t
(** Raises [Invalid_argument] if [vmask] is outside 16 bits, the PPN
    exceeds 28 bits, or the PPN is not aligned to a 16-page block.  A
    smaller subblock factor simply uses fewer vmask bits. *)

val encode : t -> int64
(** Encode with S = partial-subblock. *)

val decode : int64 -> t

val valid_at : t -> boff:int -> bool

val set_valid : t -> boff:int -> t

val clear_valid : t -> boff:int -> t

val ppn_for : t -> boff:int -> int64
(** PPN of the page at block offset [boff]; the caller must have
    checked [valid_at]. *)

val population : t -> int
(** Number of valid base pages. *)

val is_full : subblock_factor:int -> t -> bool
(** All [subblock_factor] pages valid: the PTE is promotable to a
    superpage of the block size. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
