(** The 12-bit attribute field of a PTE (Figure 1).

    The paper allocates "12 bits of software and hardware attributes".
    We pick a concrete assignment: six hardware bits (referenced,
    modified, writable, executable, user, cacheable), two OS bits
    (global, locked) and a 4-bit software-defined nibble.  TLB miss
    handlers update [referenced]/[modified] in place, so these live in
    the low bits where a hardware walker would put them. *)

type t = {
  referenced : bool;  (** set by hardware/handler on access (bit 0) *)
  modified : bool;  (** set on write (bit 1) *)
  writable : bool;  (** write permission (bit 2) *)
  executable : bool;  (** execute permission (bit 3) *)
  user : bool;  (** user-mode accessible (bit 4) *)
  cacheable : bool;  (** cacheable memory (bit 5) *)
  global : bool;  (** shared across address spaces (bit 6) *)
  locked : bool;  (** pinned, not pageable (bit 7) *)
  soft : int;  (** 4 software-defined bits (bits 8-11) *)
}

val width : int
(** 12. *)

val default : t
(** Readable, cacheable, user data page: referenced/modified clear,
    writable, not executable, user, cacheable, not global, not locked,
    soft 0. *)

val kernel_text : t
(** Executable, global, locked, not user. *)

val kernel_data : t
(** Writable, global, locked, not user. *)

val to_bits : t -> int64
(** Encode into the low 12 bits. Raises [Invalid_argument] if [soft] is
    outside [0, 15]. *)

val of_bits : int64 -> t
(** Decode from the low 12 bits of a word. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
