let valid_bit = 63
let sz_lo = 59
let sz_width = 4
let vmask_lo = 48
let vmask_width = 16
let s_lo = 40
let s_width = 2
let ppn_lo = 12
let ppn_width = 28
let attr_lo = 0
let attr_width = 12

type s_class = S_base | S_partial_subblock | S_superpage

let s_class_to_code = function
  | S_base -> 0L
  | S_partial_subblock -> 1L
  | S_superpage -> 2L

let s_class_of_code = function
  | 0L -> S_base
  | 1L -> S_partial_subblock
  | 2L -> S_superpage
  | _ -> invalid_arg "Layout.s_class_of_code"

let read_s w = s_class_of_code (Addr.Bits.extract w ~lo:s_lo ~width:s_width)

let pte_bytes = 8
let tag_bytes = 8
let next_bytes = 8
