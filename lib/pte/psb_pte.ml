type t = { vmask : int; ppn : int64; attr : Attr.t }

let max_factor = 16

let check t =
  if t.vmask < 0 || t.vmask >= 1 lsl max_factor then
    invalid_arg "Psb_pte: vmask exceeds 16 bits";
  if Int64.unsigned_compare t.ppn Addr.Paddr.max_ppn > 0 then
    invalid_arg "Psb_pte: PPN exceeds 28 bits";
  if not (Addr.Bits.is_aligned t.ppn (Addr.Bits.log2_exact max_factor)) then
    invalid_arg "Psb_pte: PPN not block-aligned"

let make ~vmask ~ppn ~attr =
  let t = { vmask; ppn; attr } in
  check t;
  t

let encode t =
  check t;
  let open Addr.Bits in
  let w = 0L in
  let w =
    insert w ~lo:Layout.vmask_lo ~width:Layout.vmask_width
      (Int64.of_int t.vmask)
  in
  let w =
    insert w ~lo:Layout.s_lo ~width:Layout.s_width
      (Layout.s_class_to_code Layout.S_partial_subblock)
  in
  let w = insert w ~lo:Layout.ppn_lo ~width:Layout.ppn_width t.ppn in
  insert w ~lo:Layout.attr_lo ~width:Layout.attr_width (Attr.to_bits t.attr)

let decode w =
  let open Addr.Bits in
  {
    vmask =
      Int64.to_int (extract w ~lo:Layout.vmask_lo ~width:Layout.vmask_width);
    ppn = extract w ~lo:Layout.ppn_lo ~width:Layout.ppn_width;
    attr = Attr.of_bits (extract w ~lo:Layout.attr_lo ~width:Layout.attr_width);
  }

let check_boff boff =
  if boff < 0 || boff >= max_factor then invalid_arg "Psb_pte: block offset"

let valid_at t ~boff =
  check_boff boff;
  t.vmask land (1 lsl boff) <> 0

let set_valid t ~boff =
  check_boff boff;
  { t with vmask = t.vmask lor (1 lsl boff) }

let clear_valid t ~boff =
  check_boff boff;
  { t with vmask = t.vmask land lnot (1 lsl boff) }

let ppn_for t ~boff =
  check_boff boff;
  Int64.add t.ppn (Int64.of_int boff)

let population t = Addr.Bits.popcount (Int64.of_int t.vmask)

let is_full ~subblock_factor t =
  if subblock_factor < 1 || subblock_factor > max_factor then
    invalid_arg "Psb_pte.is_full";
  t.vmask land ((1 lsl subblock_factor) - 1) = (1 lsl subblock_factor) - 1

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "psb{v=%04x ppn=%Lx %a}" t.vmask t.ppn Attr.pp t.attr
