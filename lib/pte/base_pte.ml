type t = { valid : bool; ppn : int64; attr : Attr.t }

let check_ppn ppn =
  if Int64.unsigned_compare ppn Addr.Paddr.max_ppn > 0 then
    invalid_arg "Base_pte: PPN exceeds 28 bits"

let make ?(valid = true) ~ppn ~attr () =
  check_ppn ppn;
  { valid; ppn; attr }

let invalid = { valid = false; ppn = 0L; attr = Attr.of_bits 0L }

let encode t =
  check_ppn t.ppn;
  let open Addr.Bits in
  let w = 0L in
  let w = if t.valid then set_bit w Layout.valid_bit else w in
  let w =
    insert w ~lo:Layout.s_lo ~width:Layout.s_width
      (Layout.s_class_to_code Layout.S_base)
  in
  let w = insert w ~lo:Layout.ppn_lo ~width:Layout.ppn_width t.ppn in
  insert w ~lo:Layout.attr_lo ~width:Layout.attr_width (Attr.to_bits t.attr)

let decode w =
  let open Addr.Bits in
  {
    valid = test_bit w Layout.valid_bit;
    ppn = extract w ~lo:Layout.ppn_lo ~width:Layout.ppn_width;
    attr = Attr.of_bits (extract w ~lo:Layout.attr_lo ~width:Layout.attr_width);
  }

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "base{%c ppn=%Lx %a}"
    (if t.valid then 'V' else '-')
    t.ppn Attr.pp t.attr
