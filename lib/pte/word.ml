type t =
  | Base of Base_pte.t
  | Superpage of Superpage_pte.t
  | Psb of Psb_pte.t

let encode = function
  | Base p -> Base_pte.encode p
  | Superpage p -> Superpage_pte.encode p
  | Psb p -> Psb_pte.encode p

let decode w =
  match Layout.read_s w with
  | Layout.S_base -> Base (Base_pte.decode w)
  | Layout.S_partial_subblock -> Psb (Psb_pte.decode w)
  | Layout.S_superpage -> Superpage (Superpage_pte.decode w)

let is_valid = function
  | Base p -> p.Base_pte.valid
  | Superpage p -> p.Superpage_pte.valid
  | Psb p -> p.Psb_pte.vmask <> 0

let equal a b = a = b

let pp ppf = function
  | Base p -> Base_pte.pp ppf p
  | Superpage p -> Superpage_pte.pp ppf p
  | Psb p -> Psb_pte.pp ppf p
