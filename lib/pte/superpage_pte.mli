(** Superpage PTE: Figure 6 (top).

    One word maps a power-of-two-sized, virtually- and physically-aligned
    superpage.  The 4-bit SZ field encodes log2(size / 4 KB).  The PPN
    stored is the PPN of the superpage's first base page; its low
    SZ bits are necessarily zero (alignment), which tests enforce. *)

type t = { valid : bool; size : Addr.Page_size.t; ppn : int64; attr : Attr.t }

val make :
  ?valid:bool -> size:Addr.Page_size.t -> ppn:int64 -> attr:Attr.t -> unit -> t
(** Raises [Invalid_argument] if [ppn] exceeds 28 bits or is not aligned
    to [size]. *)

val encode : t -> int64
(** Encode with S = superpage. *)

val decode : int64 -> t

val covers : t -> vpn_base:int64 -> vpn:int64 -> bool
(** [covers t ~vpn_base ~vpn] is true iff the superpage anchored at
    virtual page [vpn_base] contains the base page [vpn]. *)

val ppn_for : t -> vpn_base:int64 -> vpn:int64 -> int64
(** Physical page backing base page [vpn] inside the superpage anchored
    at [vpn_base]: the stored PPN plus the page's offset in the
    superpage. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
