type t = { valid : bool; size : Addr.Page_size.t; ppn : int64; attr : Attr.t }

let check t =
  if Int64.unsigned_compare t.ppn Addr.Paddr.max_ppn > 0 then
    invalid_arg "Superpage_pte: PPN exceeds 28 bits";
  let sz = Addr.Page_size.sz_code t.size in
  if not (Addr.Bits.is_aligned t.ppn sz) then
    invalid_arg "Superpage_pte: PPN not aligned to superpage size"

let make ?(valid = true) ~size ~ppn ~attr () =
  let t = { valid; size; ppn; attr } in
  check t;
  t

let encode t =
  check t;
  let open Addr.Bits in
  let w = 0L in
  let w = if t.valid then set_bit w Layout.valid_bit else w in
  let w =
    insert w ~lo:Layout.sz_lo ~width:Layout.sz_width
      (Int64.of_int (Addr.Page_size.sz_code t.size))
  in
  let w =
    insert w ~lo:Layout.s_lo ~width:Layout.s_width
      (Layout.s_class_to_code Layout.S_superpage)
  in
  let w = insert w ~lo:Layout.ppn_lo ~width:Layout.ppn_width t.ppn in
  insert w ~lo:Layout.attr_lo ~width:Layout.attr_width (Attr.to_bits t.attr)

let decode w =
  let open Addr.Bits in
  {
    valid = test_bit w Layout.valid_bit;
    size =
      Addr.Page_size.of_sz_code
        (Int64.to_int (extract w ~lo:Layout.sz_lo ~width:Layout.sz_width));
    ppn = extract w ~lo:Layout.ppn_lo ~width:Layout.ppn_width;
    attr = Attr.of_bits (extract w ~lo:Layout.attr_lo ~width:Layout.attr_width);
  }

let covers t ~vpn_base ~vpn =
  let pages = Int64.of_int (Addr.Page_size.base_pages t.size) in
  Int64.unsigned_compare vpn vpn_base >= 0
  && Int64.unsigned_compare vpn (Int64.add vpn_base pages) < 0

let ppn_for t ~vpn_base ~vpn =
  if not (covers t ~vpn_base ~vpn) then invalid_arg "Superpage_pte.ppn_for";
  Int64.add t.ppn (Int64.sub vpn vpn_base)

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "sp{%c %a ppn=%Lx %a}"
    (if t.valid then 'V' else '-')
    Addr.Page_size.pp t.size t.ppn Attr.pp t.attr
