(** Base-page PTE: the eight-byte mapping word of Figure 1.

    Maps one 4 KB virtual page to one 4 KB physical page. *)

type t = { valid : bool; ppn : int64; attr : Attr.t }

val make : ?valid:bool -> ppn:int64 -> attr:Attr.t -> unit -> t
(** Raises [Invalid_argument] if [ppn] exceeds 28 bits. *)

val invalid : t
(** An all-clear invalid word. *)

val encode : t -> int64
(** Encode with S = base. *)

val decode : int64 -> t
(** Field-wise decode; ignores PAD and S. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
