(** Uniform view of the three eight-byte PTE word formats.

    A raw word self-describes via its S field (see {!Layout}), which is
    what lets the clustered-page-table miss handler traverse the hash
    chain format-blind and only branch when reading the mapping
    (paper, Section 5). *)

type t =
  | Base of Base_pte.t
  | Superpage of Superpage_pte.t
  | Psb of Psb_pte.t

val encode : t -> int64

val decode : int64 -> t
(** Classify by S field, then decode. *)

val is_valid : t -> bool
(** Whether the word maps anything at all (V bit, or any vmask bit). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
