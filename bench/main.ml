(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Table 1, Figures 9/10/11a-d, the appendix Table 2 cross-check, and
   the Section 6.3/7 ablations) through Sim.Runner.

   Part 2 runs Bechamel micro-benchmarks — one group per experiment
   family — timing the real data-structure operations the figures
   proxy: lookups, inserts, block prefetches and range operations on
   every page-table organization, plus the TLB models.  Pass --quick
   to restrict the trace-driven experiments to three workloads. *)

open Bechamel
open Toolkit

module Intf = Pt_common.Intf

let attr = Pte.Attr.default

(* --- fixtures: tables populated with the nasa7 snapshot --- *)

let seed = 0xBE7CL

let assignments =
  lazy
    (let snap = Workload.Snapshot.generate Workload.Table1.nasa7 ~seed in
     List.mapi
       (fun i proc ->
         Sim.Builder.assign proc ~seed:(Int64.add seed (Int64.of_int i)) ())
       snap.Workload.Snapshot.procs)

let populated kind ~policy =
  let pt = Sim.Factory.make kind in
  List.iter (fun a -> Sim.Builder.populate pt a ~policy) (Lazy.force assignments);
  pt

let sample_vpns =
  lazy
    (let out = ref [] in
     List.iter
       (fun a ->
         List.iter
           (fun (b : Sim.Builder.block_info) ->
             match b.Sim.Builder.boffs_ppns with
             | (boff, _) :: _ ->
                 out :=
                   Int64.add
                     (Int64.shift_left b.Sim.Builder.vpbn 4)
                     (Int64.of_int boff)
                   :: !out
             | [] -> ())
           a.Sim.Builder.blocks)
       (Lazy.force assignments);
     Array.of_list !out)

let lookup_bench kind ~policy =
  let pt = populated kind ~policy in
  let vpns = Lazy.force sample_vpns in
  (* warm caching structures (the TSBs) so the estimate is the hit
     path, comparable across organizations *)
  Array.iter (fun vpn -> ignore (Intf.lookup pt ~vpn)) vpns;
  let n = Array.length vpns in
  let i = ref 0 in
  Staged.stage (fun () ->
      let vpn = vpns.(!i) in
      i := (!i + 1) mod n;
      Sys.opaque_identity (ignore (Intf.lookup pt ~vpn)))

let lookup_block_bench kind =
  let pt = populated kind ~policy:`Base in
  let vpns = Lazy.force sample_vpns in
  let n = Array.length vpns in
  let i = ref 0 in
  Staged.stage (fun () ->
      let vpn = vpns.(!i) in
      i := (!i + 1) mod n;
      Sys.opaque_identity (ignore (Intf.lookup_block pt ~vpn ~subblock_factor:16)))

let insert_remove_bench kind =
  let pt = Sim.Factory.make kind in
  let i = ref 0 in
  Staged.stage (fun () ->
      let vpn = Int64.of_int (!i land 0xFFFF) in
      incr i;
      Intf.insert_base pt ~vpn ~ppn:(Int64.of_int (!i land 0xFFFFF)) ~attr;
      Intf.remove pt ~vpn)

(* Section 3.1: "Clustered page tables amortize the overhead of
   allocating memory for a PTE and inserting in the hash list over
   multiple PTE insertions for the same page block" — so the fair
   insertion benchmark is a whole block at a time. *)
let insert_block_bench kind =
  let pt = Sim.Factory.make kind in
  let i = ref 0 in
  Staged.stage (fun () ->
      let base = Int64.of_int ((!i land 0xFFF) * 16) in
      incr i;
      for j = 0 to 15 do
        Intf.insert_base pt
          ~vpn:(Int64.add base (Int64.of_int j))
          ~ppn:(Int64.of_int j) ~attr
      done;
      for j = 0 to 15 do
        Intf.remove pt ~vpn:(Int64.add base (Int64.of_int j))
      done)

let range_op_bench kind =
  let pt = populated kind ~policy:`Base in
  let region = Addr.Region.make ~first_vpn:0x80000L ~pages:64 in
  Staged.stage (fun () ->
      Sys.opaque_identity
        (ignore
           (Intf.set_attr_range pt region ~f:(fun a ->
                { a with Pte.Attr.referenced = true }))))

let tlb_bench make_tlb =
  let tlb = make_tlb () in
  let pt = populated Sim.Factory.clustered16 ~policy:`Base in
  let vpns = Lazy.force sample_vpns in
  let n = Array.length vpns in
  let i = ref 0 in
  Staged.stage (fun () ->
      let vpn = vpns.(!i) in
      i := (!i + 1) mod n;
      match Tlb.Intf.access tlb ~vpn with
      | `Hit -> ()
      | `Block_miss | `Subblock_miss -> (
          match Intf.lookup pt ~vpn with
          | Some tr, _ -> Tlb.Intf.fill tlb tr
          | None, _ -> ()))

let grouped name elts = Test.make_grouped ~name ~fmt:"%s/%s" elts

let tests =
  lazy
    [
      (* Figure 11a's primitive: one TLB-miss walk per organization *)
      grouped "fig11a-lookup"
        [
          Test.make ~name:"clustered"
            (lookup_bench Sim.Factory.clustered16 ~policy:`Base);
          Test.make ~name:"hashed" (lookup_bench Sim.Factory.Hashed ~policy:`Base);
          Test.make ~name:"linear" (lookup_bench Sim.Factory.Linear1 ~policy:`Base);
          Test.make ~name:"fwd-mapped"
            (lookup_bench Sim.Factory.Forward_mapped ~policy:`Base);
          Test.make ~name:"inverted"
            (lookup_bench Sim.Factory.Inverted ~policy:`Base);
          Test.make ~name:"software-tlb"
            (lookup_bench Sim.Factory.Software_tlb ~policy:`Base);
          Test.make ~name:"clustered-tsb"
            (lookup_bench Sim.Factory.Clustered_tsb ~policy:`Base);
          Test.make ~name:"fwd-guarded"
            (lookup_bench Sim.Factory.Forward_guarded ~policy:`Base);
          Test.make ~name:"clustered-var"
            (lookup_bench Sim.Factory.Clustered_variable ~policy:`Base);
        ];
      (* Figure 11b/c: lookups against superpage/psb-bearing tables *)
      grouped "fig11bc-lookup"
        [
          Test.make ~name:"clustered+sp"
            (lookup_bench Sim.Factory.clustered16 ~policy:`Superpage);
          Test.make ~name:"clustered+psb"
            (lookup_bench Sim.Factory.clustered16 ~policy:`Psb);
          Test.make ~name:"hashed-2t+sp"
            (lookup_bench
               (Sim.Factory.Hashed_two_tables { coarse_first = false })
               ~policy:`Superpage);
          Test.make ~name:"hashed-2t+psb"
            (lookup_bench
               (Sim.Factory.Hashed_two_tables { coarse_first = false })
               ~policy:`Psb);
        ];
      (* Figure 11d's primitive: whole-block prefetch *)
      grouped "fig11d-prefetch"
        [
          Test.make ~name:"clustered" (lookup_block_bench Sim.Factory.clustered16);
          Test.make ~name:"linear" (lookup_block_bench Sim.Factory.Linear1);
          Test.make ~name:"hashed" (lookup_block_bench Sim.Factory.Hashed);
        ];
      (* Figures 9/10 exercise construction: insert/remove cycles *)
      grouped "fig9-insert-remove"
        [
          Test.make ~name:"clustered" (insert_remove_bench Sim.Factory.clustered16);
          Test.make ~name:"hashed" (insert_remove_bench Sim.Factory.Hashed);
          Test.make ~name:"linear" (insert_remove_bench Sim.Factory.Linear1);
          Test.make ~name:"fwd-mapped"
            (insert_remove_bench Sim.Factory.Forward_mapped);
          Test.make ~name:"clustered-var"
            (insert_remove_bench Sim.Factory.Clustered_variable);
        ];
      (* Section 3.1: block-at-a-time insertion (the amortization claim) *)
      grouped "sec3.1-insert-block16"
        [
          Test.make ~name:"clustered" (insert_block_bench Sim.Factory.clustered16);
          Test.make ~name:"hashed" (insert_block_bench Sim.Factory.Hashed);
          Test.make ~name:"linear" (insert_block_bench Sim.Factory.Linear1);
        ];
      (* Section 3.1: range operations *)
      grouped "sec3.1-range-op"
        [
          Test.make ~name:"clustered" (range_op_bench Sim.Factory.clustered16);
          Test.make ~name:"clustered-var"
            (range_op_bench Sim.Factory.Clustered_variable);
          Test.make ~name:"hashed" (range_op_bench Sim.Factory.Hashed);
        ];
      (* Table 1's instrument: the TLB models themselves *)
      grouped "tlb-access"
        [
          Test.make ~name:"fa-64" (tlb_bench (fun () -> Tlb.Intf.fa ~entries:64 ()));
          Test.make ~name:"superpage"
            (tlb_bench (fun () -> Tlb.Intf.superpage ~entries:64 ()));
          Test.make ~name:"psb" (tlb_bench (fun () -> Tlb.Intf.psb ~entries:64 ()));
          Test.make ~name:"csb" (tlb_bench (fun () -> Tlb.Intf.csb ~entries:64 ()));
        ];
    ]

let run_micro () =
  (* no GC stabilization between samples: it eats the quota and leaves
     only tiny run counts, letting per-sample overhead dominate the
     regression *)
  let cfg =
    Benchmark.cfg ~limit:3000 ~stabilize:false
      ~sampling:(`Geometric 1.3) ~quota:(Time.second 0.4) ~kde:None ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "\n== Microbenchmarks (ns per operation) ==\n%!";
  List.concat_map
    (fun test ->
      List.filter_map
        (fun elt ->
          let m = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock m in
          match Analyze.OLS.estimates est with
          | Some (t :: _) ->
              Printf.printf "%-36s %10.1f ns/op\n%!" (Test.Elt.name elt) t;
              Some (Test.Elt.name elt, t)
          | _ ->
              Printf.printf "%-36s (no estimate)\n%!" (Test.Elt.name elt);
              None)
        (Test.elements test))
    (Lazy.force tests)

(* --json FILE: machine-readable results for cross-commit comparison.
   schema_version 3: results grouped per experiment name under
   "experiments" — the paper-claim booleans and cache-lines-per-miss
   values ("claims", "lines_per_miss"), the churn tables, and the
   concurrent-service throughput rows — plus the flat micro list.  CI
   diffs the deterministic fields of this file against a committed
   baseline (tools/bench_diff); timing fields (wall clocks, ops/sec,
   ns/op) are emitted for humans and skipped by the diff. *)
let emit_json path ~quick ~domains ~experiments_s ~churn_s ~churn_rows
    ~(report : Sim.Runner.verify_report) ~throughput_rows ~curve_rows
    ~numa_json ~fleet_json ~chaos_json ~micro =
  let oc = open_out path in
  let json_string s =
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (function
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema_version\": 3,\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"domains\": %d,\n" domains;
  Printf.fprintf oc "  \"experiments\": {\n";
  Printf.fprintf oc "    \"paper_suite\": { \"wall_clock_s\": %.3f },\n"
    experiments_s;
  Printf.fprintf oc "    \"claims\": [\n";
  List.iteri
    (fun i (name, holds) ->
      Printf.fprintf oc "      { \"claim\": %s, \"holds\": %b }%s\n"
        (json_string name) holds
        (if i = List.length report.Sim.Runner.claims - 1 then "" else ","))
    report.Sim.Runner.claims;
  Printf.fprintf oc "    ],\n";
  Printf.fprintf oc "    \"lines_per_miss\": [\n";
  List.iteri
    (fun i (design, pt, lines) ->
      Printf.fprintf oc
        "      { \"design\": %s, \"pt\": %s, \"lines\": %.4f }%s\n"
        (json_string design) (json_string pt) lines
        (if i = List.length report.Sim.Runner.lines_per_miss - 1 then ""
         else ","))
    report.Sim.Runner.lines_per_miss;
  Printf.fprintf oc "    ],\n";
  Printf.fprintf oc "    \"churn\": {\n";
  Printf.fprintf oc "      \"wall_clock_s\": %.3f,\n" churn_s;
  Printf.fprintf oc "      \"tables\": [\n";
  List.iteri
    (fun i (r : Sim.Runner.churn_row) ->
      Printf.fprintf oc
        "        { \"table\": %s, \"policy\": %s, \"seeds\": %d, \
         \"peak_kb\": %.1f, \"final_bytes\": %.0f, \"insert_lines\": %.3f, \
         \"delete_lines\": %.3f, \"promotions\": %d, \"demotions\": %d, \
         \"cow_breaks\": %d, \"final_nodes\": %d }%s\n"
        (json_string r.Sim.Runner.churn_name)
        (json_string r.Sim.Runner.churn_policy)
        r.Sim.Runner.churn_seeds r.Sim.Runner.churn_peak_kb
        r.Sim.Runner.churn_final_bytes r.Sim.Runner.churn_insert_lines
        r.Sim.Runner.churn_delete_lines r.Sim.Runner.churn_promotions
        r.Sim.Runner.churn_demotions r.Sim.Runner.churn_cow_breaks
        r.Sim.Runner.churn_final_nodes
        (if i = List.length churn_rows - 1 then "" else ","))
    churn_rows;
  Printf.fprintf oc "      ]\n    },\n";
  let emit_tp_rows rows =
    List.iteri
      (fun i (r : Sim.Runner.throughput_row) ->
        Printf.fprintf oc
          "        { \"table\": %s, \"locking\": %s, \"domains\": %d, \
           \"total_ops\": %d, \"read_locks\": %d, \"write_locks\": %d, \
           \"read_contention\": %d, \"seqlock_retries\": %d, \
           \"seqlock_fallbacks\": %d, \"population\": %d, \"ops_per_sec\": \
           %.0f, \"elapsed_s\": %.3f }%s\n"
          (json_string r.Sim.Runner.tp_org)
          (json_string r.Sim.Runner.tp_locking)
          r.Sim.Runner.tp_domains r.Sim.Runner.tp_total_ops
          r.Sim.Runner.tp_read_locks r.Sim.Runner.tp_write_locks
          r.Sim.Runner.tp_read_contention r.Sim.Runner.tp_sq_retries
          r.Sim.Runner.tp_sq_fallbacks r.Sim.Runner.tp_population
          r.Sim.Runner.tp_ops_per_sec r.Sim.Runner.tp_elapsed_s
          (if i = List.length rows - 1 then "" else ","))
      rows
  in
  Printf.fprintf oc "    \"throughput\": {\n";
  Printf.fprintf oc "      \"rows\": [\n";
  emit_tp_rows throughput_rows;
  Printf.fprintf oc "      ],\n";
  (* seqlock-vs-striped read-mostly scaling (see Runner.throughput_curve) *)
  Printf.fprintf oc "      \"curve\": [\n";
  emit_tp_rows curve_rows;
  Printf.fprintf oc "      ]\n    },\n";
  (* the NUMA replication matrix (Runner.numa_for_suite) — every field
     is deterministic (no timing columns), so bench_diff compares the
     whole object *)
  Printf.fprintf oc "    \"numa\": %s,\n" numa_json;
  (* the multi-tenant fleet matrix (Runner.fleet_for_suite) — emitted
     with its timing columns (ops_per_sec, elapsed_s, p99_ns, mean_ns)
     for humans; bench_diff compares only the deterministic fields *)
  Printf.fprintf oc "    \"fleet\": %s,\n" fleet_json;
  (* the crash/recovery chaos soak (Runner.chaos_for_suite) — same
     contract as fleet: timing columns for humans, everything else
     deterministic and diffed *)
  Printf.fprintf oc "    \"chaos\": %s,\n" chaos_json;
  (* every counter and histogram the suite's instrumented paths
     recorded, merged across domains; bench_diff ignores this section
     (histogram sums carry no timing, but the set of metrics grows
     with instrumentation and should not fail the baseline diff) *)
  Printf.fprintf oc "    \"telemetry\": {";
  let buf = Buffer.create 4096 in
  Obs.Metrics.write_json_fields buf (Obs.Ambient.merged ());
  output_string oc (Buffer.contents buf);
  Printf.fprintf oc "}\n  },\n";
  Printf.fprintf oc "  \"micro_ns_per_op\": [\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    { \"name\": %s, \"ns\": %.1f }%s\n"
        (json_string name) ns
        (if i = List.length micro - 1 then "" else ","))
    micro;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n%!" path

let arg_value flag =
  let rec go i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let json = arg_value "--json" in
  let domains =
    match arg_value "--domains" with
    | Some s -> (
        match int_of_string_opt s with
        | Some d when d >= 1 -> d
        | _ ->
            Printf.eprintf "bench: --domains expects an integer >= 1, got %S\n"
              s;
            exit 2)
    | None -> Exec.Domain_pool.default_domains ()
  in
  let options = { Sim.Runner.default_options with quick } in
  let t0 = Unix.gettimeofday () in
  Sim.Runner.all ~options ~domains ();
  let experiments_s = Unix.gettimeofday () -. t0 in
  Printf.printf "\nexperiments wall clock: %.1fs (%d domains)\n%!"
    experiments_s domains;
  let t1 = Unix.gettimeofday () in
  let churn_rows = Sim.Runner.churn_for_suite ~options ~domains () in
  let churn_s = Unix.gettimeofday () -. t1 in
  Printf.printf "\nchurn wall clock: %.1fs (%d domains)\n%!" churn_s domains;
  let report = Sim.Runner.verify_report ~options ~domains () in
  Printf.printf "\nheadline claims: %d/%d hold\n%!"
    (List.length (List.filter snd report.Sim.Runner.claims))
    (List.length report.Sim.Runner.claims);
  let throughput_rows = Sim.Runner.throughput_for_suite ~options () in
  let curve_rows = Sim.Runner.throughput_curve_for_suite ~options () in
  let t2 = Unix.gettimeofday () in
  let numa = Sim.Runner.numa_for_suite ~options ~domains () in
  Printf.printf "\nnuma wall clock: %.1fs (%d domains, fsck %s)\n%!"
    (Unix.gettimeofday () -. t2)
    domains
    (if Sim.Runner.numa_suite_clean numa then "clean" else "DIRTY");
  let t3 = Unix.gettimeofday () in
  let fleet = Sim.Runner.fleet_for_suite ~options ~domains () in
  Printf.printf "\nfleet wall clock: %.1fs (%d domains, fsck %s)\n%!"
    (Unix.gettimeofday () -. t3)
    domains
    (if Sim.Runner.fleet_suite_clean fleet then "clean" else "DIRTY");
  let t4 = Unix.gettimeofday () in
  let chaos = Sim.Runner.chaos_for_suite ~options ~domains () in
  Printf.printf "\nchaos wall clock: %.1fs (%d domains, recoveries %s)\n%!"
    (Unix.gettimeofday () -. t4)
    domains
    (if Sim.Runner.chaos_suite_clean chaos then "converged" else "DIVERGED");
  let micro = run_micro () in
  Option.iter
    (fun path ->
      emit_json path ~quick ~domains ~experiments_s ~churn_s ~churn_rows
        ~report ~throughput_rows ~curve_rows
        ~numa_json:(Sim.Runner.numa_suite_json numa)
        ~fleet_json:(Sim.Runner.fleet_suite_json fleet)
        ~chaos_json:(Sim.Runner.chaos_suite_json chaos)
        ~micro)
    json
