(* bench_diff BASELINE.json CURRENT.json

   CI regression gate for the benchmark harness's --json output
   (schema_version 3).  Compares only the fields that are
   deterministic for a fixed (seed, --quick, --domains) invocation:

     - schema_version, quick, domains, the experiment key set
     - every claim name and its boolean
     - every lines-per-miss value
     - the churn tables minus wall clocks
     - the throughput rows minus ops/sec and elapsed time
     - the micro-benchmark name list (not the timings)

   Timing numbers vary run to run and machine to machine, so they are
   ignored; everything else drifting means the simulation's behaviour
   changed and the committed baseline must be regenerated consciously.

   Exit 0 when equivalent, 1 on drift (each difference on stderr),
   2 on usage or parse errors.  No dependencies beyond the stdlib. *)

(* --- a minimal JSON reader (objects keep field order) --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              (* the emitter only escapes control characters; decode
                 the low byte and move past the four hex digits *)
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              Buffer.add_char b (Char.chr (code land 0xFF));
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape \\%C" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- accessors --- *)

let obj_find key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get path root =
  List.fold_left
    (fun acc key ->
      match acc with Some v -> obj_find key v | None -> None)
    (Some root) path

let to_list = function List l -> Some l | _ -> None

let pp = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "%S" s
  | List _ -> "<list>"
  | Obj _ -> "<object>"

(* --- the comparison --- *)

let drift = ref 0

let report fmt =
  Printf.ksprintf
    (fun msg ->
      incr drift;
      Printf.eprintf "DRIFT: %s\n" msg)
    fmt

let check_scalar label path a b =
  match (get path a, get path b) with
  | Some va, Some vb when va = vb -> ()
  | Some va, Some vb -> report "%s: baseline %s, current %s" label (pp va) (pp vb)
  | None, Some _ -> report "%s: missing from baseline" label
  | Some _, None -> report "%s: missing from current" label
  | None, None -> report "%s: missing from both files" label

let rows_of path root =
  match get path root with Some v -> to_list v | None -> None

(* compare two row lists field-by-field, ignoring [ignored] keys;
   [key_of] names a row in messages; [row_ignored] adds per-row
   ignores keyed on the row itself (e.g. seqlock rows take read locks
   only on contention fallback, so their count is
   interleaving-dependent where every other mode's is exact) *)

let check_row_list label path ~key_of ?(row_ignored = fun _ -> []) ~ignored a b
    =
  match (rows_of path a, rows_of path b) with
  | None, None -> report "%s: missing from both files" label
  | None, Some _ -> report "%s: missing from baseline" label
  | Some _, None -> report "%s: missing from current" label
  | Some ra, Some rb ->
      if List.length ra <> List.length rb then
        report "%s: %d rows in baseline, %d in current" label
          (List.length ra) (List.length rb)
      else
        List.iter2
          (fun rowa rowb ->
            let name = key_of rowa in
            let ignored = ignored @ row_ignored rowa in
            match (rowa, rowb) with
            | Obj fa, Obj fb ->
                let keys l = List.map fst l in
                if
                  List.filter (fun k -> not (List.mem k ignored)) (keys fa)
                  <> List.filter (fun k -> not (List.mem k ignored)) (keys fb)
                then report "%s[%s]: field sets differ" label name
                else
                  List.iter
                    (fun (k, va) ->
                      if not (List.mem k ignored) then
                        match List.assoc_opt k fb with
                        | Some vb when va = vb -> ()
                        | Some vb ->
                            report "%s[%s].%s: baseline %s, current %s" label
                              name k (pp va) (pp vb)
                        | None -> ())
                    fa
            | _ -> report "%s[%s]: row is not an object" label name)
          ra rb

let key_str k row = match obj_find k row with Some (Str s) -> s | _ -> "?"

let () =
  (match Sys.argv with
  | [| _; _; _ |] -> ()
  | _ ->
      prerr_endline "usage: bench_diff BASELINE.json CURRENT.json";
      exit 2);
  let load path =
    let ic =
      try open_in_bin path
      with Sys_error e ->
        Printf.eprintf "bench_diff: %s\n" e;
        exit 2
    in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match parse s with
    | v -> v
    | exception Parse_error e ->
        Printf.eprintf "bench_diff: %s: %s\n" path e;
        exit 2
  in
  let a = load Sys.argv.(1) and b = load Sys.argv.(2) in
  check_scalar "schema_version" [ "schema_version" ] a b;
  check_scalar "quick" [ "quick" ] a b;
  check_scalar "domains" [ "domains" ] a b;
  (* the experiment set itself; "telemetry" (the merged metrics dump,
     schema_version >= 3 with PR 4) is skipped entirely — the metric
     set grows with instrumentation and carries histogram totals, not
     paper results *)
  (match (get [ "experiments" ] a, get [ "experiments" ] b) with
  | Some (Obj ea), Some (Obj eb) ->
      let keys l =
        List.filter (fun k -> k <> "telemetry") (List.map fst l)
      in
      if keys ea <> keys eb then
        report "experiments: key sets differ (baseline %s; current %s)"
          (String.concat "," (keys ea))
          (String.concat "," (keys eb))
  | _ -> report "experiments: missing object");
  check_row_list "claims"
    [ "experiments"; "claims" ]
    ~key_of:(key_str "claim") ~ignored:[] a b;
  check_row_list "lines_per_miss"
    [ "experiments"; "lines_per_miss" ]
    ~key_of:(fun row ->
      Printf.sprintf "%s/%s" (key_str "design" row) (key_str "pt" row))
    ~ignored:[] a b;
  check_row_list "churn"
    [ "experiments"; "churn"; "tables" ]
    ~key_of:(fun row ->
      Printf.sprintf "%s/%s" (key_str "table" row) (key_str "policy" row))
    ~ignored:[] a b;
  (* contention counters are interleaving-dependent everywhere; under
     seqlock so is read_locks (fallback acquisitions only) *)
  let tp_key row =
    Printf.sprintf "%s/%s/%s" (key_str "table" row) (key_str "locking" row)
      (match obj_find "domains" row with
      | Some (Num d) -> string_of_int (int_of_float d)
      | _ -> "?")
  in
  let tp_ignored =
    [
      "ops_per_sec";
      "elapsed_s";
      "read_contention";
      "seqlock_retries";
      "seqlock_fallbacks";
    ]
  in
  let tp_row_ignored row =
    if key_str "locking" row = "seqlock" then [ "read_locks" ] else []
  in
  check_row_list "throughput"
    [ "experiments"; "throughput"; "rows" ]
    ~key_of:tp_key ~row_ignored:tp_row_ignored ~ignored:tp_ignored a b;
  check_row_list "throughput_curve"
    [ "experiments"; "throughput"; "curve" ]
    ~key_of:tp_key ~row_ignored:tp_row_ignored ~ignored:tp_ignored a b;
  (* the NUMA replication matrix carries no timing columns — every
     field is deterministic and compared *)
  check_scalar "numa.seed" [ "experiments"; "numa"; "seed" ] a b;
  check_scalar "numa.locking" [ "experiments"; "numa"; "locking" ] a b;
  check_row_list "numa"
    [ "experiments"; "numa"; "rows" ]
    ~key_of:(fun row ->
      Printf.sprintf "%s/%s/%s"
        (match obj_find "nodes" row with
        | Some (Num d) -> string_of_int (int_of_float d)
        | _ -> "?")
        (key_str "mode" row) (key_str "org" row))
    ~ignored:[] a b;
  check_row_list "numa_policy"
    [ "experiments"; "numa"; "policy" ]
    ~key_of:(fun row ->
      Printf.sprintf "%s/%s" (key_str "org" row)
        (match obj_find "nodes" row with
        | Some (Num d) -> string_of_int (int_of_float d)
        | _ -> "?"))
    ~ignored:[] a b;
  (* the multi-tenant fleet matrix: deterministic fields only — the
     per-event timing columns vary run to run and are ignored *)
  check_scalar "fleet.seed" [ "experiments"; "fleet"; "seed" ] a b;
  check_scalar "fleet.locking" [ "experiments"; "fleet"; "locking" ] a b;
  check_scalar "fleet.tenants" [ "experiments"; "fleet"; "tenants" ] a b;
  check_scalar "fleet.shards" [ "experiments"; "fleet"; "shards" ] a b;
  check_scalar "fleet.frame_budget"
    [ "experiments"; "fleet"; "frame_budget" ]
    a b;
  check_row_list "fleet"
    [ "experiments"; "fleet"; "rows" ]
    ~key_of:(fun row ->
      Printf.sprintf "%s/%s" (key_str "org" row) (key_str "mode" row))
    ~ignored:[ "ops_per_sec"; "elapsed_s"; "p99_ns"; "mean_ns" ]
    a b;
  (* the chaos soak: every field is a deterministic function of (seed,
     schedule) except the two timing columns *)
  check_scalar "chaos.seed" [ "experiments"; "chaos"; "seed" ] a b;
  check_scalar "chaos.locking" [ "experiments"; "chaos"; "locking" ] a b;
  check_scalar "chaos.tenants" [ "experiments"; "chaos"; "tenants" ] a b;
  check_scalar "chaos.shards" [ "experiments"; "chaos"; "shards" ] a b;
  check_scalar "chaos.checkpoint_every"
    [ "experiments"; "chaos"; "checkpoint_every" ]
    a b;
  check_scalar "chaos.crash_offsets"
    [ "experiments"; "chaos"; "crash_offsets" ]
    a b;
  check_row_list "chaos"
    [ "experiments"; "chaos"; "rows" ]
    ~key_of:(key_str "org")
    ~ignored:[ "ops_per_sec"; "elapsed_s" ]
    a b;
  (* micro-benchmark names (the set of measured operations), not times *)
  (let names root =
     match rows_of [ "micro_ns_per_op" ] root with
     | Some rows -> Some (List.map (key_str "name") rows)
     | None -> None
   in
   match (names a, names b) with
   | Some na, Some nb when na = nb -> ()
   | Some _, Some _ -> report "micro_ns_per_op: benchmark name lists differ"
   | _ -> report "micro_ns_per_op: missing from a file");
  if !drift = 0 then begin
    print_endline "bench_diff: no drift in deterministic fields";
    exit 0
  end
  else begin
    Printf.eprintf "bench_diff: %d field(s) drifted\n" !drift;
    exit 1
  end
